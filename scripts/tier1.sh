#!/usr/bin/env bash
# Tier-1 verification: the standard build + full ctest run, followed by a
# ThreadSanitizer build of the threaded experiment-runner tests so data
# races in src/run/ are caught structurally, not by luck.
#
# Usage: scripts/tier1.sh            (from the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== tier-1: TSan build of the runner tests =="
# Separate build tree; only the threaded test binaries are built (the
# full suite under TSan would be slow and adds nothing — the rest of the
# library is single-threaded). sweep_runner_test runs a sweep with
# counters hot and both trace sinks open, so the src/obs sharding and the
# tracer mutex are exercised under real concurrency here.
cmake -B build-tsan -S . -DESCHED_SANITIZE=thread \
  -DESCHED_BUILD_BENCH=OFF -DESCHED_BUILD_EXAMPLES=OFF
# event_queue_test and snapshot_fork_test are single-threaded but pin the
# fast-core determinism contracts (calendar-vs-heap differential,
# fork-at-every-prefix); running them in the TSan tree keeps the sanitized
# build honest about the same code the threaded sweep tests exercise.
cmake --build build-tsan -j \
  --target thread_pool_test sweep_runner_test obs_registry_test \
  event_queue_test snapshot_fork_test
./build-tsan/tests/thread_pool_test
./build-tsan/tests/sweep_runner_test
./build-tsan/tests/obs_registry_test
./build-tsan/tests/event_queue_test
./build-tsan/tests/snapshot_fork_test

echo "== tier-1: all green =="
