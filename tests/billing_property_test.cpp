// Property tests crossing module boundaries:
//  * BillingMeter vs a per-second reference integrator, for every tariff
//    family (on/off-peak, weekend-aware, TOU, hourly series, misforecast
//    wrapper, with and without facility models) on random power signals;
//  * the simulator's time-of-day utilization curve must integrate back to
//    the Eq. 3 overall utilization.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/greedy_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/billing.hpp"
#include "power/facility.hpp"
#include "power/forecast.hpp"
#include "power/profile.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"
#include "util/time_util.hpp"

namespace esched {
namespace {

using power::BillingMeter;
using power::FacilityModel;
using power::PricingModel;

// Per-second reference: bill = sum over seconds of price(t) * watts(t).
struct Reference {
  double bill = 0.0;
  double energy = 0.0;
};

Reference integrate_per_second(const PricingModel& tariff,
                               const FacilityModel* facility,
                               const std::vector<std::pair<TimeSec, Watts>>&
                                   change_points,
                               TimeSec end) {
  Reference ref;
  Watts watts = 0.0;
  std::size_t next = 0;
  for (TimeSec t = 0; t < end; ++t) {
    while (next < change_points.size() && change_points[next].first == t) {
      watts = change_points[next].second;
      ++next;
    }
    const Watts billed =
        facility != nullptr ? facility->facility_watts(watts, t) : watts;
    ref.energy += billed;
    ref.bill += joules_to_kwh(billed) * tariff.price_at(t);
  }
  return ref;
}

class BillingCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BillingCrossCheck, MeterMatchesPerSecondReference) {
  Rng rng(GetParam());
  // Tariff zoo. Raw pointers into locals kept alive for the test body.
  power::OnOffPeakPricing onoff(0.03, 3.0);
  power::OnOffPeakPricing weekend(0.05, 4.0, 8 * kSecondsPerHour,
                                  20 * kSecondsPerHour,
                                  /*weekends_off_peak=*/true);
  power::TouPricing tou({{0, 0.02},
                         {6 * kSecondsPerHour, 0.05},
                         {18 * kSecondsPerHour, 0.11}},
                        0.11);
  power::HourlyPriceSeries hourly(
      {0.02, 0.03, 0.05, 0.08, 0.13, 0.08, 0.04});
  power::MisforecastTariff forecast(onoff, 0.3, 9);
  const std::vector<const PricingModel*> tariffs{&onoff, &weekend, &tou,
                                                 &hourly, &forecast};

  power::ConstantPue flat_pue(1.37);
  power::PeriodPue period_pue(onoff, 1.1, 1.55);
  const std::vector<const FacilityModel*> facilities{nullptr, &flat_pue,
                                                     &period_pue};

  for (const PricingModel* tariff : tariffs) {
    for (const FacilityModel* facility : facilities) {
      // PeriodPue is keyed on `onoff`; only pair it with that tariff to
      // honor the segment-constancy contract.
      if (facility == &period_pue && tariff != &onoff) continue;

      // Random piecewise-constant power over ~3 days.
      const TimeSec end = 3 * kSecondsPerDay + rng.uniform_int(0, 3600);
      std::vector<std::pair<TimeSec, Watts>> changes;
      TimeSec t = 0;
      while (t < end) {
        changes.push_back(
            {t, static_cast<double>(rng.uniform_int(0, 5000))});
        t += rng.uniform_int(1, 8 * kSecondsPerHour);
      }

      BillingMeter meter(*tariff, 0, facility);
      for (const auto& [at, watts] : changes) meter.set_power(at, watts);
      meter.finish(end);
      const Reference ref =
          integrate_per_second(*tariff, facility, changes, end);

      // Relative tolerance: the per-second reference accumulates ~1e5
      // floating-point additions over ~1e9 J.
      EXPECT_NEAR(meter.total_bill(), ref.bill,
                  1e-9 * ref.bill + 1e-9)
          << tariff->name() << " / "
          << (facility != nullptr ? facility->name() : "no-facility");
      EXPECT_NEAR(meter.total_energy(), ref.energy,
                  1e-9 * ref.energy + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BillingCrossCheck,
                         ::testing::Values(1u, 2u, 3u));

TEST(CurveConsistencyTest, UtilizationCurveIntegratesToEq3) {
  // The time-of-day utilization curve is a reshuffled view of the same
  // busy-node integral Eq. 3 computes: the coverage-weighted mean of the
  // curve must equal overall utilization.
  trace::Trace t = trace::make_anl_bgp_like(1, 91);
  power::assign_profiles(t, power::ProfileConfig{}, 91);
  power::OnOffPeakPricing pricing(0.03, 3.0);
  core::GreedyPowerPolicy policy;
  sim::SimConfig cfg;
  cfg.daily_curve_bins = 96;
  const sim::SimResult r = sim::simulate(t, pricing, policy, cfg);

  // Recover coverage per bin from the horizon (every bin's coverage is
  // the number of times its time-of-day slot occurs in the horizon).
  const auto bins = r.utilization_curve.size();
  const DurationSec width = kSecondsPerDay / static_cast<DurationSec>(bins);
  double weighted = 0.0;
  double coverage_total = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    // Count seconds of this bin inside [horizon_begin, horizon_end).
    double coverage = 0.0;
    for (TimeSec day = start_of_day(r.horizon_begin);
         day < r.horizon_end; day += kSecondsPerDay) {
      const TimeSec lo =
          std::max(r.horizon_begin,
                   day + static_cast<DurationSec>(b) * width);
      const TimeSec hi =
          std::min(r.horizon_end,
                   day + static_cast<DurationSec>(b + 1) * width);
      if (hi > lo) coverage += static_cast<double>(hi - lo);
    }
    weighted += r.utilization_curve[b] * coverage;
    coverage_total += coverage;
  }
  ASSERT_GT(coverage_total, 0.0);
  EXPECT_NEAR(weighted / coverage_total,
              metrics::overall_utilization(r), 1e-9);
}

}  // namespace
}  // namespace esched
