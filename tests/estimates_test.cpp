// Tests for the walltime-estimate transforms.
#include "trace/estimates.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace esched::trace {
namespace {

Trace make_trace() {
  Trace t("est", 64);
  for (int i = 0; i < 50; ++i) {
    Job j;
    j.id = i + 1;
    j.submit = i * 10;
    j.nodes = 4;
    j.runtime = 600 + i * 137;  // 10 min .. ~2.3 h
    j.walltime = j.runtime * 3;
    j.user = i % 5;
    t.add_job(j);
  }
  return t;
}

TEST(EstimatesTest, ExactSetsWalltimeToRuntime) {
  const Trace t = with_exact_estimates(make_trace());
  for (const Job& j : t.jobs()) EXPECT_EQ(j.walltime, j.runtime);
  EXPECT_DOUBLE_EQ(estimate_accuracy(t), 1.0);
}

TEST(EstimatesTest, FactorScalesAndValidates) {
  const Trace t = with_estimate_factor(make_trace(), 2.0);
  for (const Job& j : t.jobs()) {
    EXPECT_EQ(j.walltime, 2 * j.runtime);
  }
  EXPECT_NEAR(estimate_accuracy(t), 0.5, 1e-12);
  EXPECT_THROW(with_estimate_factor(make_trace(), 0.9), Error);
}

TEST(EstimatesTest, FactorRoundsUp) {
  Trace t("odd", 8);
  Job j;
  j.id = 1;
  j.submit = 0;
  j.nodes = 1;
  j.runtime = 101;
  j.walltime = 101;
  t.add_job(j);
  const Trace out = with_estimate_factor(t, 1.5);
  EXPECT_EQ(out[0].walltime, 152);  // ceil(151.5)
}

TEST(EstimatesTest, MenuPicksSmallestCoveringEntry) {
  const Trace t = with_menu_estimates(make_trace(), /*sloppy=*/0.0, 1);
  for (const Job& j : t.jobs()) {
    EXPECT_GE(j.walltime, j.runtime);
    // Menu entries are >= 30 minutes; a 10-minute job requests 30 min.
    if (j.runtime <= 1800) {
      EXPECT_EQ(j.walltime, 1800);
    }
    // Never more than the next menu step above the runtime (2x spacing).
    EXPECT_LE(j.walltime, std::max<DurationSec>(1800, 2 * j.runtime + 1));
  }
}

TEST(EstimatesTest, SloppyUsersRequestTheMaximum) {
  const Trace all_sloppy = with_menu_estimates(make_trace(), 1.0, 1);
  DurationSec expected = 0;
  for (const Job& j : all_sloppy.jobs())
    expected = std::max(expected, j.walltime);
  for (const Job& j : all_sloppy.jobs()) EXPECT_EQ(j.walltime, expected);

  // Fractional sloppiness is deterministic in the seed.
  const Trace a = with_menu_estimates(make_trace(), 0.3, 9);
  const Trace b = with_menu_estimates(make_trace(), 0.3, 9);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].walltime, b[i].walltime);
  EXPECT_THROW(with_menu_estimates(make_trace(), 1.5, 1), Error);
}

TEST(EstimatesTest, AccuracyOrdering) {
  const Trace base = make_trace();
  const double exact = estimate_accuracy(with_exact_estimates(base));
  const double x2 = estimate_accuracy(with_estimate_factor(base, 2.0));
  const double menu = estimate_accuracy(with_menu_estimates(base, 0.0, 1));
  const double sloppy = estimate_accuracy(with_menu_estimates(base, 1.0, 1));
  EXPECT_GT(exact, x2);
  EXPECT_GT(menu, sloppy);
  EXPECT_DOUBLE_EQ(estimate_accuracy(Trace("empty", 4)), 1.0);
}

}  // namespace
}  // namespace esched::trace
