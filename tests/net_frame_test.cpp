// Unit tests for the TCP transport building blocks (src/net): agent
// address parsing, the session-protocol payload codecs, incremental
// frame reassembly from arbitrarily chunked byte streams, and FrameConn
// partial-write/partial-read handling over a real socketpair.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/frame_io.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "run/endpoint.hpp"
#include "run/wire.hpp"
#include "util/error.hpp"

namespace esched::net {
namespace {

namespace wire = run::wire;

TEST(HostPortTest, ParsesAcceptedForms) {
  const HostPort a = parse_host_port("127.0.0.1:9555");
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 9555);
  EXPECT_EQ(a.text(), "127.0.0.1:9555");

  const HostPort b = parse_host_port("node1.cluster:80");
  EXPECT_EQ(b.host, "node1.cluster");
  EXPECT_EQ(b.port, 80);

  const HostPort c = parse_host_port("[::1]:65535");
  EXPECT_EQ(c.host, "::1");
  EXPECT_EQ(c.port, 65535);
}

TEST(HostPortTest, RejectsMalformedEntriesNamingAcceptedForms) {
  for (const char* bad :
       {"", "localhost", ":9555", "host:", "host:0", "host:65536",
        "host:-1", "host:abc", "[::1]", "[::1:9555", "host:95 55"}) {
    try {
      parse_host_port(bad);
      FAIL() << "expected rejection of \"" << bad << "\"";
    } catch (const Error& e) {
      // The error must teach the accepted forms, not just say "bad".
      EXPECT_NE(std::string(e.what()).find("accepted forms"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(HostPortTest, ParsesCommaSeparatedAgentLists) {
  const std::vector<HostPort> agents =
      parse_agent_list("127.0.0.1:9555,node1:9556,[::1]:9557");
  ASSERT_EQ(agents.size(), 3u);
  EXPECT_EQ(agents[0], (HostPort{"127.0.0.1", 9555}));
  EXPECT_EQ(agents[1], (HostPort{"node1", 9556}));
  EXPECT_EQ(agents[2], (HostPort{"::1", 9557}));
  EXPECT_TRUE(parse_agent_list("").empty());
  EXPECT_THROW(parse_agent_list("host:1,,host:2"), Error);
  EXPECT_THROW(parse_agent_list("host:1,host"), Error);
}

TEST(NetProtocolTest, HelloAndWelcomeRoundTrip) {
  Hello hello;
  hello.protocol = 7;
  const Hello hello2 = decode_hello(encode_hello(hello));
  EXPECT_EQ(hello2.protocol, 7u);

  Welcome welcome;
  welcome.protocol = kNetProtocolVersion;
  welcome.slots = 16;
  const Welcome welcome2 = decode_welcome(encode_welcome(welcome));
  EXPECT_EQ(welcome2.protocol, kNetProtocolVersion);
  EXPECT_EQ(welcome2.slots, 16u);
}

TEST(NetProtocolTest, HelloRejectsForeignMagic) {
  std::vector<std::uint8_t> payload = encode_hello(Hello{});
  payload[0] ^= 0xFF;
  EXPECT_THROW(decode_hello(payload), Error);
  EXPECT_THROW(decode_hello({1, 2, 3}), Error);
}

TEST(FrameAssemblerTest, ReassemblesByteByByte) {
  // The torture case for partial reads: every byte of two back-to-back
  // frames arrives alone, and each frame must pop exactly once, intact.
  const std::vector<std::uint8_t> payload1 = wire::encode_error("first");
  const std::vector<std::uint8_t> payload2 = {};
  std::vector<std::uint8_t> stream =
      wire::encode_frame(wire::FrameType::kError, 7, 1, payload1);
  const std::vector<std::uint8_t> frame2 =
      wire::encode_frame(wire::FrameType::kPong, 9, 0, payload2);
  stream.insert(stream.end(), frame2.begin(), frame2.end());

  run::FrameAssembler assembler;
  std::vector<std::pair<wire::FrameHeader, std::vector<std::uint8_t>>> got;
  for (const std::uint8_t byte : stream) {
    assembler.append(&byte, 1);
    for (;;) {
      wire::FrameHeader header;
      std::vector<std::uint8_t> body;
      std::string corrupt;
      const auto status = assembler.next(header, body, corrupt);
      if (status != run::FrameAssembler::Status::kFrame) {
        ASSERT_EQ(status, run::FrameAssembler::Status::kNeedMore) << corrupt;
        break;
      }
      got.emplace_back(header, std::move(body));
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first.type, wire::FrameType::kError);
  EXPECT_EQ(got[0].first.task_id, 7u);
  EXPECT_EQ(got[0].first.attempt, 1u);
  EXPECT_EQ(wire::decode_error(got[0].second), "first");
  EXPECT_EQ(got[1].first.type, wire::FrameType::kPong);
  EXPECT_EQ(got[1].first.task_id, 9u);
  EXPECT_TRUE(got[1].second.empty());
  EXPECT_FALSE(assembler.mid_frame());
}

TEST(FrameAssemblerTest, FlagsCorruptMagicAndCrc) {
  {
    run::FrameAssembler assembler;
    std::vector<std::uint8_t> frame =
        wire::encode_frame(wire::FrameType::kResult, 0, 0,
                           wire::encode_error("x"));
    frame[0] ^= 0xFF;  // magic
    assembler.append(frame.data(), frame.size());
    wire::FrameHeader header;
    std::vector<std::uint8_t> body;
    std::string corrupt;
    EXPECT_EQ(assembler.next(header, body, corrupt),
              run::FrameAssembler::Status::kCorrupt);
    EXPECT_FALSE(corrupt.empty());
  }
  {
    run::FrameAssembler assembler;
    std::vector<std::uint8_t> frame =
        wire::encode_frame(wire::FrameType::kResult, 0, 0,
                           wire::encode_error("x"));
    frame[wire::kHeaderSize] ^= 0xFF;  // payload byte; CRC now mismatches
    assembler.append(frame.data(), frame.size());
    wire::FrameHeader header;
    std::vector<std::uint8_t> body;
    std::string corrupt;
    EXPECT_EQ(assembler.next(header, body, corrupt),
              run::FrameAssembler::Status::kCorrupt);
    EXPECT_NE(corrupt.find("CRC"), std::string::npos) << corrupt;
  }
}

/// A connected non-blocking socketpair, each end wrapped in a FrameConn.
struct ConnPair {
  FrameConn a;
  FrameConn b;

  static ConnPair make() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    set_nonblocking(fds[0]);
    set_nonblocking(fds[1]);
    return ConnPair{FrameConn(Fd(fds[0])), FrameConn(Fd(fds[1]))};
  }
};

/// Drain `from` until `count` frames arrived (bounded spin — the pair is
/// local, so data is available as soon as the peer flushed).
std::vector<std::pair<wire::FrameHeader, std::vector<std::uint8_t>>>
read_frames(FrameConn& from, FrameConn& peer, std::size_t count) {
  std::vector<std::pair<wire::FrameHeader, std::vector<std::uint8_t>>> got;
  for (int spin = 0; spin < 100000 && got.size() < count; ++spin) {
    peer.flush();  // keep pushing queued bytes through the kernel buffer
    EXPECT_NE(from.fill(), FrameConn::ReadStatus::kError);
    for (;;) {
      wire::FrameHeader header;
      std::vector<std::uint8_t> body;
      std::string corrupt;
      const auto status = from.frames().next(header, body, corrupt);
      if (status != run::FrameAssembler::Status::kFrame) {
        EXPECT_EQ(status, run::FrameAssembler::Status::kNeedMore) << corrupt;
        break;
      }
      got.emplace_back(header, std::move(body));
    }
  }
  return got;
}

TEST(FrameConnTest, CarriesFramesBothWays) {
  ConnPair pair = ConnPair::make();
  ASSERT_TRUE(pair.a.send(
      wire::encode_frame(wire::FrameType::kPing, 3, 0, {})));
  auto at_b = read_frames(pair.b, pair.a, 1);
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].first.type, wire::FrameType::kPing);
  EXPECT_EQ(at_b[0].first.task_id, 3u);

  ASSERT_TRUE(pair.b.send(
      wire::encode_frame(wire::FrameType::kPong, 3, 0, {})));
  auto at_a = read_frames(pair.a, pair.b, 1);
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0].first.type, wire::FrameType::kPong);
  EXPECT_GT(pair.a.bytes_tx(), 0u);
  EXPECT_GT(pair.a.bytes_rx(), 0u);
}

TEST(FrameConnTest, QueuesPartialWritesUntilFlushed) {
  // A payload far beyond the socket buffer: send() must accept the whole
  // frame (queueing what the kernel refused), wants_write() must report
  // the backlog, and the frame must arrive intact once the reader drains.
  ConnPair pair = ConnPair::make();
  std::string big(8 << 20, 'x');
  const std::vector<std::uint8_t> frame = wire::encode_frame(
      wire::FrameType::kError, 42, 2, wire::encode_error(big));
  ASSERT_TRUE(pair.a.send(frame));
  EXPECT_TRUE(pair.a.wants_write());  // 8 MB cannot fit a socket buffer

  auto got = read_frames(pair.b, pair.a, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first.task_id, 42u);
  EXPECT_EQ(wire::decode_error(got[0].second), big);
  EXPECT_FALSE(pair.a.wants_write());
}

TEST(FrameConnTest, ReportsPeerCloseAsClosed) {
  ConnPair pair = ConnPair::make();
  pair.a.close();
  EXPECT_EQ(pair.b.fill(), FrameConn::ReadStatus::kClosed);
}

}  // namespace
}  // namespace esched::net
