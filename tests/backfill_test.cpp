// Tests for the EASY reservation computation and admission test.
#include "core/backfill.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace esched::core {
namespace {

TEST(ReservationTest, UnblockedStartsNow) {
  const std::vector<RunningJob> running{{10, 500}};
  const Reservation r = compute_reservation(4, 6, 100, running);
  EXPECT_EQ(r.shadow_time, 100);
  EXPECT_EQ(r.extra_nodes, 2);
}

TEST(ReservationTest, WaitsForEarliestSufficientRelease) {
  // free=2, need 8. Releases: 4 nodes @ t=300, 4 @ t=500, 8 @ t=900.
  const std::vector<RunningJob> running{{4, 300}, {4, 500}, {8, 900}};
  const Reservation r = compute_reservation(8, 2, 100, running);
  EXPECT_EQ(r.shadow_time, 500);  // 2+4+4 = 10 >= 8
  EXPECT_EQ(r.extra_nodes, 2);
}

TEST(ReservationTest, UnsortedRunningSetHandled) {
  const std::vector<RunningJob> running{{8, 900}, {4, 300}, {4, 500}};
  const Reservation r = compute_reservation(8, 2, 100, running);
  EXPECT_EQ(r.shadow_time, 500);
}

TEST(ReservationTest, OverdueEstimatesClampToNow) {
  // A job past its walltime estimate (est_end < now) is treated as "could
  // end any moment", i.e. at `now`.
  const std::vector<RunningJob> running{{6, 50}};
  const Reservation r = compute_reservation(8, 2, 100, running);
  EXPECT_EQ(r.shadow_time, 100);
  EXPECT_EQ(r.extra_nodes, 0);
}

TEST(ReservationTest, BlockerLargerThanMachineThrows) {
  const std::vector<RunningJob> running{{4, 300}};
  EXPECT_THROW(compute_reservation(100, 2, 0, running), Error);
  EXPECT_THROW(compute_reservation(0, 2, 0, running), Error);
}

TEST(CanBackfillTest, MustFitNow) {
  const Reservation r{1000, 4};
  const PendingJob big{1, 0, 10, 100, 30.0};
  EXPECT_FALSE(can_backfill(big, 8, 0, r));
}

TEST(CanBackfillTest, ShortJobEndingBeforeShadowPasses) {
  const Reservation r{1000, 0};
  const PendingJob job{1, 0, 8, 900, 30.0};  // ends at 900 <= 1000
  EXPECT_TRUE(can_backfill(job, 8, 0, r));
  const PendingJob exact{2, 0, 8, 1000, 30.0};  // ends exactly at shadow
  EXPECT_TRUE(can_backfill(exact, 8, 0, r));
  const PendingJob late{3, 0, 8, 1001, 30.0};
  EXPECT_FALSE(can_backfill(late, 8, 0, r));
}

TEST(CanBackfillTest, SmallJobUsingExtraNodesPasses) {
  const Reservation r{1000, 4};
  const PendingJob long_small{1, 0, 4, 999999, 30.0};
  EXPECT_TRUE(can_backfill(long_small, 8, 0, r));
  const PendingJob long_big{2, 0, 5, 999999, 30.0};
  EXPECT_FALSE(can_backfill(long_big, 8, 0, r));
}

TEST(CanBackfillTest, NowOffsetMatters) {
  const Reservation r{1000, 0};
  const PendingJob job{1, 0, 2, 600, 30.0};
  EXPECT_TRUE(can_backfill(job, 8, 300, r));   // 300+600 <= 1000
  EXPECT_FALSE(can_backfill(job, 8, 500, r));  // 500+600 > 1000
}

}  // namespace
}  // namespace esched::core
