// Tests for the 0-1 knapsack solver (Eq. 2), including randomized
// equivalence with brute force.
#include "core/knapsack.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace esched::core {
namespace {

TEST(KnapsackTest, EmptyInputs) {
  const std::vector<KnapsackItem> none;
  auto s = solve_knapsack(none, 100, KnapsackObjective::kMaximizeValue);
  EXPECT_TRUE(s.chosen.empty());
  EXPECT_EQ(s.total_weight, 0);
  EXPECT_DOUBLE_EQ(s.total_value, 0.0);

  const std::vector<KnapsackItem> items{{5, 10.0}};
  s = solve_knapsack(items, 0, KnapsackObjective::kMaximizeValue);
  EXPECT_TRUE(s.chosen.empty());
}

TEST(KnapsackTest, ClassicMaximize) {
  // Weights 1,3,4,5; values 1,4,5,7; capacity 7 -> {3,4} value 9.
  const std::vector<KnapsackItem> items{{1, 1.0}, {3, 4.0}, {4, 5.0},
                                        {5, 7.0}};
  const auto s = solve_knapsack(items, 7, KnapsackObjective::kMaximizeValue);
  EXPECT_DOUBLE_EQ(s.total_value, 9.0);
  EXPECT_EQ(s.total_weight, 7);
  EXPECT_EQ(s.chosen, (std::vector<std::size_t>{1, 2}));
}

TEST(KnapsackTest, OversizedItemIgnored) {
  const std::vector<KnapsackItem> items{{100, 1000.0}, {2, 3.0}};
  const auto s = solve_knapsack(items, 10, KnapsackObjective::kMaximizeValue);
  EXPECT_EQ(s.chosen, (std::vector<std::size_t>{1}));
  EXPECT_DOUBLE_EQ(s.total_value, 3.0);
}

TEST(KnapsackTest, FillObjectivePrefersMoreNodes) {
  // One hot 8-node job vs two cool 3-node jobs, capacity 8: maximal fill
  // is 8 nodes; the cheap 6-node packing loses on weight.
  const std::vector<KnapsackItem> items{{8, 400.0}, {3, 60.0}, {3, 60.0}};
  const auto s = solve_knapsack(
      items, 8, KnapsackObjective::kMaximizeWeightMinimizeValue);
  EXPECT_EQ(s.total_weight, 8);
  EXPECT_EQ(s.chosen, (std::vector<std::size_t>{0}));
}

TEST(KnapsackTest, FillObjectiveBreaksTiesByMinValue) {
  // Two ways to reach weight 6: {0} value 300 or {1,2} value 120.
  const std::vector<KnapsackItem> items{{6, 300.0}, {3, 60.0}, {3, 60.0}};
  const auto s = solve_knapsack(
      items, 6, KnapsackObjective::kMaximizeWeightMinimizeValue);
  EXPECT_EQ(s.total_weight, 6);
  EXPECT_DOUBLE_EQ(s.total_value, 120.0);
  EXPECT_EQ(s.chosen, (std::vector<std::size_t>{1, 2}));
}

TEST(KnapsackTest, MaximizeIsAutomaticallyMaximal) {
  // With all-positive values the off-peak optimum never leaves room for an
  // unchosen item (the paper's utilization rule for free).
  Rng rng(17);
  for (int round = 0; round < 200; ++round) {
    std::vector<KnapsackItem> items;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 12));
    for (std::size_t i = 0; i < n; ++i)
      items.push_back({rng.uniform_int(1, 30),
                       static_cast<double>(rng.uniform_int(1, 500))});
    const std::int64_t cap = rng.uniform_int(1, 60);
    const auto s =
        solve_knapsack(items, cap, KnapsackObjective::kMaximizeValue);
    std::vector<bool> chosen(items.size(), false);
    for (const auto i : s.chosen) chosen[i] = true;
    const std::int64_t leftover = cap - s.total_weight;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!chosen[i]) {
        EXPECT_GT(items[i].weight, leftover);
      }
    }
  }
}

TEST(KnapsackTest, GcdScalingGivesSameAnswer) {
  // Rack-granular weights (multiples of 1024) with a rack-granular
  // capacity exercise the gcd fast path; compare with an offset capacity
  // that breaks the gcd.
  const std::vector<KnapsackItem> items{
      {1024, 50.0}, {2048, 120.0}, {4096, 180.0}, {1024, 90.0}};
  const auto a =
      solve_knapsack(items, 5120, KnapsackObjective::kMaximizeValue);
  // capacity 5120 = 5 racks: best is {2048,4096}? 6144 > 5120; so
  // {4096,1024(90)} = 270 vs {2048,1024,1024} = 260 -> 270.
  EXPECT_DOUBLE_EQ(a.total_value, 270.0);
  EXPECT_EQ(a.total_weight, 5120);
  const auto b =
      solve_knapsack(items, 5121, KnapsackObjective::kMaximizeValue);
  EXPECT_DOUBLE_EQ(b.total_value, 270.0);
}

TEST(KnapsackTest, RejectsBadInputs) {
  const std::vector<KnapsackItem> bad_w{{0, 1.0}};
  EXPECT_THROW(
      solve_knapsack(bad_w, 10, KnapsackObjective::kMaximizeValue), Error);
  const std::vector<KnapsackItem> bad_v{{1, -1.0}};
  EXPECT_THROW(
      solve_knapsack(bad_v, 10, KnapsackObjective::kMaximizeValue), Error);
  const std::vector<KnapsackItem> ok{{1, 1.0}};
  EXPECT_THROW(
      solve_knapsack(ok, -1, KnapsackObjective::kMaximizeValue), Error);
}

TEST(KnapsackTest, WorkspaceOverloadMatchesPlainOverload) {
  Rng rng(31);
  KnapsackWorkspace ws;  // one workspace reused across every round
  for (int round = 0; round < 80; ++round) {
    std::vector<KnapsackItem> items;
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 16));
    for (std::size_t i = 0; i < n; ++i)
      items.push_back({rng.uniform_int(1, 30),
                       static_cast<double>(rng.uniform_int(0, 300))});
    const std::int64_t cap = rng.uniform_int(0, 90);
    for (const auto obj : {KnapsackObjective::kMaximizeValue,
                           KnapsackObjective::kMaximizeWeightMinimizeValue}) {
      const auto plain = solve_knapsack(items, cap, obj);
      const auto reused = solve_knapsack(items, cap, obj, ws);
      EXPECT_EQ(plain.chosen, reused.chosen);
      EXPECT_EQ(plain.total_weight, reused.total_weight);
      EXPECT_DOUBLE_EQ(plain.total_value, reused.total_value);
    }
  }
}

TEST(KnapsackTest, WarmWorkspacePerformsNoPerCallAllocations) {
  // Warm the workspace on the largest problem in the mix, then assert
  // that re-solving (same size and smaller) neither grows the buffer
  // capacities nor moves the allocations — i.e. the reconstruction table
  // costs zero heap traffic per call once warm.
  const std::vector<KnapsackItem> big{{3, 30.0}, {5, 50.0}, {7, 70.0},
                                      {4, 40.0}, {6, 60.0}};
  const std::vector<KnapsackItem> small{{2, 20.0}, {3, 30.0}};
  KnapsackWorkspace ws;
  solve_knapsack(big, 15, KnapsackObjective::kMaximizeValue, ws);

  const double* value_data = ws.best_value.data();
  const std::int64_t* weight_data = ws.best_weight.data();
  const std::uint8_t* taken_data = ws.taken.data();
  const std::size_t value_cap = ws.best_value.capacity();
  const std::size_t weight_cap = ws.best_weight.capacity();
  const std::size_t taken_cap = ws.taken.capacity();

  for (int round = 0; round < 10; ++round) {
    for (const auto obj : {KnapsackObjective::kMaximizeValue,
                           KnapsackObjective::kMaximizeWeightMinimizeValue}) {
      solve_knapsack(big, 15, obj, ws);
      solve_knapsack(small, 9, obj, ws);
    }
  }
  EXPECT_EQ(ws.best_value.data(), value_data);
  EXPECT_EQ(ws.best_weight.data(), weight_data);
  EXPECT_EQ(ws.taken.data(), taken_data);
  EXPECT_EQ(ws.best_value.capacity(), value_cap);
  EXPECT_EQ(ws.best_weight.capacity(), weight_cap);
  EXPECT_EQ(ws.taken.capacity(), taken_cap);
}

// Randomized equivalence with exhaustive search, both objectives.
class KnapsackFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackFuzz, MatchesBruteForceMaximize) {
  Rng rng(GetParam());
  for (int round = 0; round < 60; ++round) {
    std::vector<KnapsackItem> items;
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 14));
    for (std::size_t i = 0; i < n; ++i)
      items.push_back({rng.uniform_int(1, 25),
                       static_cast<double>(rng.uniform_int(0, 400))});
    const std::int64_t cap = rng.uniform_int(0, 70);
    const auto dp =
        solve_knapsack(items, cap, KnapsackObjective::kMaximizeValue);
    const auto bf = solve_knapsack_bruteforce(
        items, cap, KnapsackObjective::kMaximizeValue);
    EXPECT_DOUBLE_EQ(dp.total_value, bf.total_value);
    EXPECT_LE(dp.total_weight, cap);
  }
}

TEST_P(KnapsackFuzz, MatchesBruteForceFillThenMinimize) {
  Rng rng(GetParam() + 1000);
  for (int round = 0; round < 60; ++round) {
    std::vector<KnapsackItem> items;
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 14));
    for (std::size_t i = 0; i < n; ++i)
      items.push_back({rng.uniform_int(1, 25),
                       static_cast<double>(rng.uniform_int(0, 400))});
    const std::int64_t cap = rng.uniform_int(0, 70);
    const auto dp = solve_knapsack(
        items, cap, KnapsackObjective::kMaximizeWeightMinimizeValue);
    const auto bf = solve_knapsack_bruteforce(
        items, cap, KnapsackObjective::kMaximizeWeightMinimizeValue);
    EXPECT_EQ(dp.total_weight, bf.total_weight);
    EXPECT_DOUBLE_EQ(dp.total_value, bf.total_value);
  }
}

TEST_P(KnapsackFuzz, ChosenSetIsConsistent) {
  Rng rng(GetParam() + 2000);
  for (int round = 0; round < 40; ++round) {
    std::vector<KnapsackItem> items;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 20));
    for (std::size_t i = 0; i < n; ++i)
      items.push_back({rng.uniform_int(1, 40),
                       static_cast<double>(rng.uniform_int(0, 100))});
    const std::int64_t cap = rng.uniform_int(1, 120);
    for (const auto obj : {KnapsackObjective::kMaximizeValue,
                           KnapsackObjective::kMaximizeWeightMinimizeValue}) {
      const auto s = solve_knapsack(items, cap, obj);
      std::int64_t w = 0;
      double v = 0.0;
      std::size_t prev = 0;
      bool first = true;
      for (const auto i : s.chosen) {
        ASSERT_LT(i, items.size());
        if (!first) {
          ASSERT_GT(i, prev);  // ascending, no duplicates
        }
        prev = i;
        first = false;
        w += items[i].weight;
        v += items[i].value;
      }
      EXPECT_EQ(w, s.total_weight);
      EXPECT_DOUBLE_EQ(v, s.total_value);
      EXPECT_LE(w, cap);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace esched::core
