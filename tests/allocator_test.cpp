// Tests for the node-allocation models, especially the contiguous
// (fragmentation-prone) allocator.
#include "sim/allocator.hpp"

#include <gtest/gtest.h>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/profile.hpp"
#include "power/pricing.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace esched::sim {
namespace {

TEST(CountingAllocatorTest, MirrorsCluster) {
  CountingAllocator a(100, 2.0);
  EXPECT_EQ(a.total_nodes(), 100);
  EXPECT_EQ(a.free_nodes(), 100);
  EXPECT_TRUE(a.can_allocate(100));
  EXPECT_TRUE(a.try_allocate(1, 60, 30.0));
  EXPECT_FALSE(a.can_allocate(41));
  EXPECT_FALSE(a.try_allocate(2, 41, 30.0));
  EXPECT_TRUE(a.try_allocate(2, 40, 30.0));
  // 60*30 + 40*30 busy, 0 idle.
  EXPECT_DOUBLE_EQ(a.current_power(), 3000.0);
  a.release(1);
  EXPECT_EQ(a.free_nodes(), 60);
  EXPECT_EQ(a.name(), "counting");
}

TEST(ContiguousAllocatorTest, BasicPlacementAndRelease) {
  ContiguousAllocator a(10);
  EXPECT_TRUE(a.try_allocate(1, 4, 10.0));
  EXPECT_TRUE(a.try_allocate(2, 4, 10.0));
  EXPECT_EQ(a.free_nodes(), 2);
  EXPECT_TRUE(a.can_allocate(2));
  EXPECT_FALSE(a.can_allocate(3));
  a.release(1);
  a.release(2);
  EXPECT_EQ(a.free_nodes(), 10);
  EXPECT_EQ(a.largest_hole(), 10);
  EXPECT_EQ(a.hole_count(), 1u);
}

TEST(ContiguousAllocatorTest, FragmentationBlocksByCountFeasibleJobs) {
  // Fill 0..3 and 6..9, free 4..5 plus... arrange a split hole: allocate
  // three 3-node jobs (0-2, 3-5, 6-8), release the middle one. Free = 4
  // nodes (3..5 and 9) but the largest hole is 3.
  ContiguousAllocator a(10);
  ASSERT_TRUE(a.try_allocate(1, 3, 10.0));  // 0..2
  ASSERT_TRUE(a.try_allocate(2, 3, 10.0));  // 3..5
  ASSERT_TRUE(a.try_allocate(3, 3, 10.0));  // 6..8
  a.release(2);
  EXPECT_EQ(a.free_nodes(), 4);
  EXPECT_EQ(a.largest_hole(), 3);
  EXPECT_EQ(a.hole_count(), 2u);
  EXPECT_FALSE(a.can_allocate(4));  // count-feasible, placement-infeasible
  EXPECT_FALSE(a.try_allocate(4, 4, 10.0));
  EXPECT_TRUE(a.try_allocate(5, 3, 10.0));  // fits the 3..5 hole
}

TEST(ContiguousAllocatorTest, BestFitPrefersSmallestHole) {
  // Holes of size 2 (after releasing a 2-node job) and a big tail. A
  // 2-node request should take the small hole, preserving the tail.
  ContiguousAllocator a(20);
  ASSERT_TRUE(a.try_allocate(1, 2, 10.0));   // 0..1
  ASSERT_TRUE(a.try_allocate(2, 2, 10.0));   // 2..3
  ASSERT_TRUE(a.try_allocate(3, 2, 10.0));   // 4..5
  a.release(2);                              // hole 2..3, tail 6..19
  ASSERT_TRUE(a.try_allocate(4, 2, 10.0));
  // The tail must still be 14 wide: a 14-node job fits.
  EXPECT_TRUE(a.can_allocate(14));
  EXPECT_EQ(a.largest_hole(), 14);
}

TEST(ContiguousAllocatorTest, PowerAccounting) {
  ContiguousAllocator a(10, /*idle=*/1.0);
  EXPECT_DOUBLE_EQ(a.current_power(), 10.0);
  a.try_allocate(1, 4, 25.0);
  EXPECT_DOUBLE_EQ(a.current_power(), 100.0 + 6.0);
  a.release(1);
  EXPECT_DOUBLE_EQ(a.current_power(), 10.0);
}

TEST(ContiguousAllocatorTest, Misuse) {
  ContiguousAllocator a(10);
  EXPECT_THROW(a.try_allocate(1, 0, 10.0), Error);
  EXPECT_TRUE(a.try_allocate(1, 4, 10.0));
  EXPECT_THROW(a.try_allocate(1, 2, 10.0), Error);  // duplicate id
  EXPECT_THROW(a.release(99), Error);
  EXPECT_THROW(ContiguousAllocator(0), Error);
}

TEST(MakeAllocatorTest, FactorySelectsModel) {
  EXPECT_EQ(make_allocator(false, 10, 0.0)->name(), "counting");
  EXPECT_EQ(make_allocator(true, 10, 0.0)->name(), "contiguous");
}

TEST(ContiguousSimulationTest, CompletesAndStaysValid) {
  trace::Trace t = trace::make_anl_bgp_like(1, 21);
  power::assign_profiles(t, power::ProfileConfig{}, 21);
  power::OnOffPeakPricing pricing(0.03, 3.0);
  core::GreedyPowerPolicy greedy;
  SimConfig cfg;
  cfg.contiguous_allocation = true;
  const SimResult r = simulate(t, pricing, greedy, cfg);
  EXPECT_EQ(r.records.size(), t.size());
  EXPECT_NO_THROW(metrics::validate_result(r));
}

TEST(ContiguousSimulationTest, FragmentationCostsUtilization) {
  trace::Trace t = trace::make_sdsc_blue_like(1, 22);
  power::assign_profiles(t, power::ProfileConfig{}, 22);
  power::OnOffPeakPricing pricing(0.03, 3.0);
  core::FcfsPolicy fcfs;
  const SimResult pool = simulate(t, pricing, fcfs);
  SimConfig cfg;
  cfg.contiguous_allocation = true;
  core::FcfsPolicy fcfs2;
  const SimResult contig = simulate(t, pricing, fcfs2, cfg);
  // The fungible pool never fails placement; the contiguous model does,
  // and pays in wait time (and possibly utilization/makespan).
  EXPECT_EQ(pool.placement_failures, 0u);
  EXPECT_GT(contig.placement_failures, 0u);
  EXPECT_GE(contig.mean_wait_seconds(), pool.mean_wait_seconds());
}

}  // namespace
}  // namespace esched::sim
