// Tests for the facility (PUE) power models and their billing integration.
#include "power/facility.hpp"

#include <gtest/gtest.h>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/billing.hpp"
#include "power/profile.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::power {
namespace {

TEST(ConstantPueTest, ScalesPower) {
  ConstantPue pue(1.5);
  EXPECT_DOUBLE_EQ(pue.facility_watts(1000.0, 0), 1500.0);
  EXPECT_DOUBLE_EQ(pue.facility_watts(0.0, 12345), 0.0);
  EXPECT_EQ(pue.name(), "pue(1.50)");
  EXPECT_THROW(ConstantPue(0.9), Error);
}

TEST(PeriodPueTest, TracksTariffPeriod) {
  OnOffPeakPricing tariff(0.03, 3.0);
  PeriodPue pue(tariff, 1.2, 1.6);
  const TimeSec morning = 6 * kSecondsPerHour;
  const TimeSec afternoon = 15 * kSecondsPerHour;
  EXPECT_DOUBLE_EQ(pue.facility_watts(1000.0, morning), 1200.0);
  EXPECT_DOUBLE_EQ(pue.facility_watts(1000.0, afternoon), 1600.0);
  EXPECT_THROW(PeriodPue(tariff, 0.5, 1.5), Error);
}

TEST(BillingWithFacilityTest, ConstantPueMultipliesTheBill) {
  FlatPricing pricing(0.10);
  ConstantPue pue(1.5);
  BillingMeter plain(pricing, 0);
  BillingMeter facility(pricing, 0, &pue);
  plain.set_power(0, 1000.0);
  facility.set_power(0, 1000.0);
  plain.finish(kSecondsPerHour);
  facility.finish(kSecondsPerHour);
  EXPECT_NEAR(facility.total_bill(), 1.5 * plain.total_bill(), 1e-12);
  EXPECT_NEAR(facility.total_energy(), 1.5 * plain.total_energy(), 1e-6);
  EXPECT_NEAR(facility.it_energy(), plain.total_energy(), 1e-6);
}

TEST(BillingWithFacilityTest, PeriodPueSplitsExactly) {
  OnOffPeakPricing pricing(0.03, 3.0);
  PeriodPue pue(pricing, 1.2, 1.6);
  BillingMeter meter(pricing, 0, &pue);
  meter.set_power(0, 1000.0);  // 1 kW IT for a full day
  meter.finish(kSecondsPerDay);
  // Off-peak 12 h: 1.2 kW at 0.03; on-peak 12 h: 1.6 kW at 0.09.
  EXPECT_NEAR(meter.bill_in(PricePeriod::kOffPeak), 12 * 1.2 * 0.03, 1e-9);
  EXPECT_NEAR(meter.bill_in(PricePeriod::kOnPeak), 12 * 1.6 * 0.09, 1e-9);
  EXPECT_NEAR(meter.it_energy(), 24.0 * 3.6e6, 1e-3);
  EXPECT_NEAR(meter.total_energy(), (12 * 1.2 + 12 * 1.6) * 3.6e6, 1e-3);
}

TEST(FacilitySimulationTest, PeriodPueAmplifiesSavings) {
  trace::Trace t = trace::make_anl_bgp_like(1, 61);
  assign_profiles(t, ProfileConfig{}, 61);
  OnOffPeakPricing pricing(0.03, 3.0);

  auto saving_with = [&](const FacilityModel* facility) {
    sim::SimConfig cfg;
    cfg.facility_model = facility;
    core::FcfsPolicy fcfs;
    core::GreedyPowerPolicy greedy;
    const auto rf = sim::simulate(t, pricing, fcfs, cfg);
    const auto rg = sim::simulate(t, pricing, greedy, cfg);
    return metrics::bill_saving_percent(rf, rg);
  };

  const double base = saving_with(nullptr);
  ConstantPue flat(1.4);
  const double with_flat = saving_with(&flat);
  PeriodPue diurnal(pricing, 1.15, 1.6);
  const double with_diurnal = saving_with(&diurnal);

  // A flat PUE multiplies both bills equally: relative saving unchanged.
  EXPECT_NEAR(with_flat, base, 1e-9);
  // A period-tracking PUE makes on-peak watts dearer still: the
  // power-aware policy saves strictly more.
  EXPECT_GT(with_diurnal, base);
}

TEST(FacilitySimulationTest, ItEnergyIsPolicyAndPueInvariant) {
  trace::Trace t = trace::make_anl_bgp_like(1, 62);
  assign_profiles(t, ProfileConfig{}, 62);
  OnOffPeakPricing pricing(0.03, 3.0);
  ConstantPue pue(1.3);
  sim::SimConfig with_pue;
  with_pue.facility_model = &pue;
  core::FcfsPolicy fcfs;
  const auto plain = sim::simulate(t, pricing, fcfs);
  core::FcfsPolicy fcfs2;
  const auto facility = sim::simulate(t, pricing, fcfs2, with_pue);
  EXPECT_NEAR(facility.it_energy, plain.it_energy, 1e-3);
  EXPECT_NEAR(facility.total_energy, 1.3 * plain.total_energy, 1.0);
}

}  // namespace
}  // namespace esched::power
