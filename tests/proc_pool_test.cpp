// Tests for the multi-process sweep supervisor (run/proc.hpp) and its
// failure model, driven by deterministic fault injection (run/fault.hpp):
// crash -> requeue -> succeed, hang -> timeout-kill -> retry, corrupted
// frames detected by CRC, attempt-budget exhaustion with a diagnostic
// naming the cell — and through all of it, results bit-identical to the
// in-process reference. Every fault scenario first *proves* via
// FaultPlan::decide that the faults it claims to exercise actually fire
// for its seed, so a silently fault-free run cannot pass.
#include "run/proc.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "run/fault.hpp"
#include "run/spec.hpp"
#include "run/sweep.hpp"
#include "util/error.hpp"

namespace esched::run {
namespace {

/// Set ESCHED_FAULT for the scope of one test; workers inherit it across
/// fork/exec. Restores the prior value on destruction.
class ScopedFaultEnv {
 public:
  explicit ScopedFaultEnv(const std::string& plan) {
    const char* prev = std::getenv("ESCHED_FAULT");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::setenv("ESCHED_FAULT", plan.c_str(), 1);
  }
  ~ScopedFaultEnv() {
    if (had_prev_) {
      ::setenv("ESCHED_FAULT", prev_.c_str(), 1);
    } else {
      ::unsetenv("ESCHED_FAULT");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

std::vector<JobSpec> three_policy_specs() {
  std::vector<JobSpec> sweep;
  for (const char* policy : {"fcfs", "greedy", "knapsack"}) {
    JobSpec spec;
    spec.trace.source = "sdsc-blue";
    spec.trace.months = 1;
    spec.pricing.model = "paper";
    spec.pricing.ratio = 3.0;
    spec.policy.name = policy;
    spec.label = std::string(policy) + "/sdsc-blue";
    sweep.push_back(spec);
  }
  return sweep;
}

/// In-process reference results for a spec sweep (the determinism
/// baseline every multi-process run is compared against).
std::vector<sim::SimResult> reference_results(
    const std::vector<JobSpec>& sweep) {
  std::vector<sim::SimResult> results;
  results.reserve(sweep.size());
  for (const JobSpec& spec : sweep) results.push_back(execute_job_spec(spec));
  return results;
}

void expect_identical(const std::vector<sim::SimResult>& reference,
                      const std::vector<sim::SimResult>& actual,
                      const std::vector<JobSpec>& sweep) {
  ASSERT_EQ(actual.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(results_identical(reference[i], actual[i]))
        << "cell " << i << " (" << sweep[i].label << ") diverged";
  }
}

/// True when, under `plan`, every task in [0, tasks) reaches a fault-free
/// attempt within `budget` attempts — i.e. the sweep is guaranteed to
/// complete. Used as an ASSERT precondition so a fault seed chosen at
/// test-writing time stays valid forever (decide() is deterministic).
bool all_tasks_complete(const FaultPlan& plan, std::uint32_t tasks,
                        std::uint32_t budget) {
  for (std::uint32_t t = 0; t < tasks; ++t) {
    bool ok = false;
    for (std::uint32_t a = 0; a < budget && !ok; ++a) {
      ok = plan.decide(t, a) == FaultPlan::Action::kNone;
    }
    if (!ok) return false;
  }
  return true;
}

std::uint32_t count_faults(const FaultPlan& plan, std::uint32_t tasks,
                           std::uint32_t budget, FaultPlan::Action kind) {
  std::uint32_t n = 0;
  for (std::uint32_t t = 0; t < tasks; ++t) {
    // Walk the retry sequence the supervisor would: attempts happen until
    // the first fault-free one (or the budget).
    for (std::uint32_t a = 0; a < budget; ++a) {
      const FaultPlan::Action action = plan.decide(t, a);
      if (action == FaultPlan::Action::kNone) break;
      if (action == kind) ++n;
    }
  }
  return n;
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

TEST(ProcPoolTest, WorkerBinaryIsAvailable) {
  // The build places esched-worker at the build root, one directory above
  // the test binaries; find_worker must locate it without ESCHED_WORKER.
  EXPECT_FALSE(SubprocessPool::find_worker().empty());
  EXPECT_TRUE(SubprocessPool::available());
}

TEST(ProcPoolTest, MatchesInProcessReferenceWithoutFaults) {
  const std::vector<JobSpec> sweep = three_policy_specs();
  const auto reference = reference_results(sweep);

  SubprocessPoolConfig config;
  config.workers = 3;
  SubprocessPool pool(config);
  const auto results = pool.run(sweep);
  expect_identical(reference, results, sweep);
  EXPECT_EQ(pool.last_stats().tasks, sweep.size());
  EXPECT_GT(pool.last_stats().wall_seconds, 0.0);
}

TEST(ProcPoolTest, EmptySweepIsANoOp) {
  SubprocessPool pool;
  EXPECT_TRUE(pool.run({}).empty());
  EXPECT_EQ(pool.last_stats().tasks, 0u);
}

TEST(ProcPoolTest, ProgressReportsEveryTask) {
  const std::vector<JobSpec> sweep = three_policy_specs();
  SubprocessPoolConfig config;
  config.workers = 2;
  SubprocessPool pool(config);
  std::vector<SweepProgress> seen;
  pool.set_progress([&seen](const SweepProgress& p) { seen.push_back(p); });
  pool.run(sweep);
  ASSERT_EQ(seen.size(), sweep.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].done, i + 1);
    EXPECT_EQ(seen[i].total, sweep.size());
  }
}

TEST(ProcPoolTest, CrashedWorkersAreRespawnedAndTasksRetried) {
  const std::vector<JobSpec> sweep = three_policy_specs();
  const FaultPlan plan = FaultPlan::parse("crash:0.5,seed:11");
  const auto tasks = static_cast<std::uint32_t>(sweep.size());
  // The seed must actually inject at least one crash and still let every
  // task complete within the budget — proven, not hoped.
  ASSERT_GT(count_faults(plan, tasks, 8, FaultPlan::Action::kCrash), 0u);
  ASSERT_TRUE(all_tasks_complete(plan, tasks, 8));

  const auto reference = reference_results(sweep);
  ScopedFaultEnv env("crash:0.5,seed:11");
  obs::set_counters_enabled(true);
  const std::uint64_t retries_before = counter_value("pool.retries");
  const std::uint64_t deaths_before = counter_value("pool.worker_deaths");

  SubprocessPoolConfig config;
  config.workers = 2;
  config.max_attempts = 8;
  config.backoff_initial_seconds = 0.01;
  config.backoff_max_seconds = 0.05;
  SubprocessPool pool(config);
  const auto results = pool.run(sweep);
  obs::set_counters_enabled(false);

  expect_identical(reference, results, sweep);
  EXPECT_GT(counter_value("pool.retries"), retries_before);
  EXPECT_GT(counter_value("pool.worker_deaths"), deaths_before);
}

TEST(ProcPoolTest, HungWorkersAreKilledOnTimeoutAndTasksRetried) {
  const std::vector<JobSpec> sweep = three_policy_specs();
  const FaultPlan plan = FaultPlan::parse("hang:0.4,seed:3");
  const auto tasks = static_cast<std::uint32_t>(sweep.size());
  ASSERT_GT(count_faults(plan, tasks, 8, FaultPlan::Action::kHang), 0u);
  ASSERT_TRUE(all_tasks_complete(plan, tasks, 8));

  const auto reference = reference_results(sweep);
  ScopedFaultEnv env("hang:0.4,seed:3");
  obs::set_counters_enabled(true);
  const std::uint64_t timeouts_before = counter_value("pool.timeouts");

  SubprocessPoolConfig config;
  config.workers = 2;
  config.max_attempts = 8;
  config.task_timeout_seconds = 1.0;
  config.backoff_initial_seconds = 0.01;
  config.backoff_max_seconds = 0.05;
  SubprocessPool pool(config);
  const auto results = pool.run(sweep);
  obs::set_counters_enabled(false);

  expect_identical(reference, results, sweep);
  EXPECT_GT(counter_value("pool.timeouts"), timeouts_before);
}

TEST(ProcPoolTest, CorruptedFramesAreDetectedAndTasksRetried) {
  const std::vector<JobSpec> sweep = three_policy_specs();
  const FaultPlan plan = FaultPlan::parse("garbage:0.5,seed:5");
  const auto tasks = static_cast<std::uint32_t>(sweep.size());
  ASSERT_GT(count_faults(plan, tasks, 8, FaultPlan::Action::kGarbage), 0u);
  ASSERT_TRUE(all_tasks_complete(plan, tasks, 8));

  const auto reference = reference_results(sweep);
  ScopedFaultEnv env("garbage:0.5,seed:5");
  obs::set_counters_enabled(true);
  const std::uint64_t corrupt_before = counter_value("pool.corrupt_frames");

  SubprocessPoolConfig config;
  config.workers = 2;
  config.max_attempts = 8;
  config.backoff_initial_seconds = 0.01;
  config.backoff_max_seconds = 0.05;
  SubprocessPool pool(config);
  const auto results = pool.run(sweep);
  obs::set_counters_enabled(false);

  expect_identical(reference, results, sweep);
  EXPECT_GT(counter_value("pool.corrupt_frames"), corrupt_before);
}

TEST(ProcPoolTest, AttemptBudgetExhaustionNamesTheCell) {
  const std::vector<JobSpec> sweep = three_policy_specs();
  ScopedFaultEnv env("crash:1.0,seed:1");  // every attempt crashes

  SubprocessPoolConfig config;
  config.workers = 2;
  config.max_attempts = 2;
  config.backoff_initial_seconds = 0.01;
  config.backoff_max_seconds = 0.02;
  SubprocessPool pool(config);
  try {
    pool.run(sweep);
    FAIL() << "expected attempt-budget exhaustion to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    // The diagnostic must name a concrete cell and the exhausted budget,
    // and carry the per-attempt failure history.
    EXPECT_NE(what.find("sweep cell \""), std::string::npos) << what;
    EXPECT_NE(what.find("/sdsc-blue\""), std::string::npos) << what;
    EXPECT_NE(what.find("failed after 2 attempt"), std::string::npos) << what;
    EXPECT_NE(what.find("attempt 1:"), std::string::npos) << what;
    EXPECT_NE(what.find("attempt 2:"), std::string::npos) << what;
  }
}

TEST(ProcPoolTest, MultiProcessBitIdenticalToSerialUnderMixedFaults) {
  // The headline acceptance criterion: a 4-worker sweep under a mix of
  // crashes and corrupted frames produces byte-identical results to the
  // serial in-process reference.
  const std::vector<JobSpec> sweep = three_policy_specs();
  const FaultPlan plan = FaultPlan::parse("crash:0.25,garbage:0.25,seed:7");
  const auto tasks = static_cast<std::uint32_t>(sweep.size());
  ASSERT_TRUE(all_tasks_complete(plan, tasks, 8));

  const auto reference = reference_results(sweep);
  ScopedFaultEnv env("crash:0.25,garbage:0.25,seed:7");

  SubprocessPoolConfig config;
  config.workers = 4;
  config.max_attempts = 8;
  config.backoff_initial_seconds = 0.01;
  config.backoff_max_seconds = 0.05;
  SubprocessPool pool(config);
  const auto first = pool.run(sweep);
  const auto second = pool.run(sweep);  // pool instances are reusable

  expect_identical(reference, first, sweep);
  expect_identical(reference, second, sweep);
}

TEST(ProcPoolTest, MissingWorkerBinaryFailsWithDiagnostic) {
  SubprocessPoolConfig config;
  config.worker_path = "/nonexistent/esched-worker";
  SubprocessPool pool(config);
  try {
    pool.run(three_policy_specs());
    FAIL() << "expected spawn failure to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot execute worker binary"),
              std::string::npos)
        << e.what();
  }
}

TEST(ProcPoolTest, DeterministicSpecErrorFailsFastWithoutRetry) {
  // A kError frame (bad spec) is a deterministic failure: the supervisor
  // must fail fast instead of burning the attempt budget on it.
  std::vector<JobSpec> sweep = three_policy_specs();
  sweep[1].policy.name = "no-such-policy";
  SubprocessPoolConfig config;
  config.workers = 2;
  config.max_attempts = 5;
  SubprocessPool pool(config);
  try {
    pool.run(sweep);
    FAIL() << "expected deterministic worker error to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-policy"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultPlanTest, ParseAcceptsAnySubsetInAnyOrder) {
  const FaultPlan plan = FaultPlan::parse("seed:42,garbage:0.2,crash:0.3");
  EXPECT_DOUBLE_EQ(plan.crash, 0.3);
  EXPECT_DOUBLE_EQ(plan.hang, 0.0);
  EXPECT_DOUBLE_EQ(plan.garbage, 0.2);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_TRUE(plan.any());
  EXPECT_FALSE(FaultPlan{}.any());
  EXPECT_FALSE(FaultPlan::parse("").any());
}

TEST(FaultPlanTest, ParseRejectsMalformedPlans) {
  EXPECT_THROW(FaultPlan::parse("crash"), Error);
  EXPECT_THROW(FaultPlan::parse("crash:1.5"), Error);
  EXPECT_THROW(FaultPlan::parse("crash:-0.1"), Error);
  EXPECT_THROW(FaultPlan::parse("explode:0.5"), Error);
  EXPECT_THROW(FaultPlan::parse("crash:abc"), Error);
}

TEST(FaultPlanTest, ParsesNetFaultBands) {
  const FaultPlan plan = FaultPlan::parse(
      "netdrop:0.1,netslow:0.2,netgarbage:0.3,netslow_seconds:0.7,seed:5");
  EXPECT_DOUBLE_EQ(plan.net_drop, 0.1);
  EXPECT_DOUBLE_EQ(plan.net_slow, 0.2);
  EXPECT_DOUBLE_EQ(plan.net_garbage, 0.3);
  EXPECT_DOUBLE_EQ(plan.net_slow_seconds, 0.7);
  EXPECT_EQ(plan.seed, 5u);
  EXPECT_TRUE(plan.any());
  EXPECT_THROW(FaultPlan::parse("netdrop:1.5"), Error);
  EXPECT_THROW(FaultPlan::parse("netslow_seconds:-1"), Error);
}

TEST(FaultPlanTest, NetBandsDecideDeterministically) {
  // A saturated net plan: every (task, attempt) lands in one of the three
  // net bands, the same one every time it is asked.
  const FaultPlan plan =
      FaultPlan::parse("netdrop:0.4,netslow:0.3,netgarbage:0.3,seed:11");
  bool drop = false;
  bool slow = false;
  bool garbage = false;
  for (std::uint32_t t = 0; t < 64; ++t) {
    const FaultPlan::Action action = plan.decide(t, 0);
    EXPECT_EQ(action, plan.decide(t, 0));
    drop = drop || action == FaultPlan::Action::kNetDrop;
    slow = slow || action == FaultPlan::Action::kNetSlow;
    garbage = garbage || action == FaultPlan::Action::kNetGarbage;
    EXPECT_NE(action, FaultPlan::Action::kNone);
  }
  EXPECT_TRUE(drop);
  EXPECT_TRUE(slow);
  EXPECT_TRUE(garbage);
}

TEST(FaultPlanTest, DecideIsDeterministicAndAttemptKeyed) {
  const FaultPlan plan = FaultPlan::parse("crash:0.3,hang:0.2,garbage:0.2");
  bool rerolls = false;
  for (std::uint32_t t = 0; t < 64; ++t) {
    EXPECT_EQ(plan.decide(t, 0), plan.decide(t, 0));
    EXPECT_EQ(plan.decide(t, 3), plan.decide(t, 3));
    if (plan.decide(t, 0) != plan.decide(t, 1)) rerolls = true;
  }
  // A retried attempt re-rolls — that is what lets crash-then-succeed
  // scenarios exist at all.
  EXPECT_TRUE(rerolls);
}

}  // namespace
}  // namespace esched::run
