// Tests for the Scheduler's dispatch semantics: EASY for strict-order
// policies, window first-fit for power-aware ones, beyond-window
// backfilling, and the starvation guard.
#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "util/error.hpp"

namespace esched::core {
namespace {

using power::PricePeriod;

PendingJob job(JobId id, NodeCount nodes, DurationSec walltime,
               Watts power = 30.0, TimeSec submit = 0) {
  return PendingJob{id, submit, nodes, walltime, power};
}

ScheduleContext ctx(NodeCount free, NodeCount total,
                    PricePeriod period = PricePeriod::kOffPeak,
                    TimeSec now = 0) {
  return ScheduleContext{now, free, total, period};
}

TEST(SchedulerEasyTest, InOrderUntilBlockedThenBackfills) {
  FcfsPolicy policy;
  Scheduler scheduler(policy, SchedulerConfig{});
  // 10 free. J1 takes 6. J2 needs 8 -> blocked (reservation at t=1000
  // when the 6-node J1 ends by estimate). J3 (4 nodes, short) fits and
  // ends by 1000 -> backfilled. J4 (4 nodes, long) would delay -> no.
  const std::vector<PendingJob> queue{
      job(1, 6, 1000),
      job(2, 8, 500),
      job(3, 4, 900),
      job(4, 4, 5000),
  };
  const auto starts = scheduler.decide(ctx(10, 10), queue, {});
  EXPECT_EQ(starts, (std::vector<std::size_t>{0, 2}));
}

TEST(SchedulerEasyTest, ExtraNodesBackfillConsumesBudget) {
  FcfsPolicy policy;
  Scheduler scheduler(policy, SchedulerConfig{});
  // 10 free. J1 blocked (needs 12, machine 16 with 6 running until 2000).
  // Reservation: shadow=2000, extra = (10+6)-12 = 4.
  // J2 (3 nodes, long) uses extra -> allowed, extra drops to 1.
  // J3 (3 nodes, long) no longer fits in extra -> rejected.
  // J4 (1 node, long) fits the remaining extra -> allowed.
  const std::vector<RunningJob> running{{6, 2000}};
  const std::vector<PendingJob> queue{
      job(1, 12, 1000),
      job(2, 3, 100000),
      job(3, 3, 100000),
      job(4, 1, 100000),
  };
  const auto starts = scheduler.decide(ctx(10, 16), queue, running);
  EXPECT_EQ(starts, (std::vector<std::size_t>{1, 3}));
}

TEST(SchedulerEasyTest, StartedJobsExtendTheReservationBase) {
  FcfsPolicy policy;
  Scheduler scheduler(policy, SchedulerConfig{});
  // J1 starts now (walltime 100). J2 needs everything; shadow must account
  // for J1's own estimated end, not just pre-existing running jobs.
  const std::vector<PendingJob> queue{
      job(1, 4, 100),
      job(2, 8, 500),
      job(3, 4, 50),  // 0+50 <= shadow(100) -> backfills
  };
  const auto starts = scheduler.decide(ctx(8, 8), queue, {});
  EXPECT_EQ(starts, (std::vector<std::size_t>{0, 2}));
}

TEST(SchedulerWindowTest, FirstFitOverPolicyOrder) {
  GreedyPowerPolicy policy;
  SchedulerConfig cfg;
  cfg.window_size = 10;
  Scheduler scheduler(policy, cfg);
  // Off-peak descending power: 50, 40, 20. The 40 W job doesn't fit after
  // the 50 W one; first-fit skips to the 20 W job.
  const std::vector<PendingJob> queue{
      job(1, 6, 100, 50.0),
      job(2, 6, 100, 40.0),
      job(3, 2, 100, 20.0),
  };
  const auto starts = scheduler.decide(
      ctx(8, 8, PricePeriod::kOffPeak), queue, {});
  EXPECT_EQ(starts, (std::vector<std::size_t>{0, 2}));
}

TEST(SchedulerWindowTest, WindowLimitsTheScope) {
  GreedyPowerPolicy policy;
  SchedulerConfig cfg;
  cfg.window_size = 2;
  Scheduler scheduler(policy, cfg);
  // The 10 W job sits outside the 2-job window and must not be chosen even
  // though on-peak ordering would love it.
  const std::vector<PendingJob> queue{
      job(1, 4, 100, 50.0),
      job(2, 4, 100, 40.0),
      job(3, 4, 100, 10.0),
  };
  const auto starts =
      scheduler.decide(ctx(4, 12, PricePeriod::kOnPeak), queue, {});
  EXPECT_EQ(starts, (std::vector<std::size_t>{1}));  // cheapest in-window
}

TEST(SchedulerWindowTest, BeyondWindowBackfillRespectsReservation) {
  GreedyPowerPolicy policy;
  SchedulerConfig cfg;
  cfg.window_size = 1;
  cfg.backfill_beyond_window = true;
  Scheduler scheduler(policy, cfg);
  // Window = {J1} which is blocked (needs 8, free 4, 4 running until 1000).
  // Beyond window: J2 short (ends by shadow) backfills; J3 long doesn't.
  const std::vector<RunningJob> running{{4, 1000}};
  const std::vector<PendingJob> queue{
      job(1, 8, 500),
      job(2, 4, 1000, 30.0),
      job(3, 4, 5000, 30.0),
  };
  const auto starts = scheduler.decide(ctx(4, 8), queue, running);
  EXPECT_EQ(starts, (std::vector<std::size_t>{1}));
}

TEST(SchedulerWindowTest, BeyondWindowBackfillCanBeDisabled) {
  GreedyPowerPolicy policy;
  SchedulerConfig cfg;
  cfg.window_size = 1;
  cfg.backfill_beyond_window = false;
  Scheduler scheduler(policy, cfg);
  const std::vector<RunningJob> running{{4, 1000}};
  const std::vector<PendingJob> queue{
      job(1, 8, 500),
      job(2, 4, 100, 30.0),
  };
  const auto starts = scheduler.decide(ctx(4, 8), queue, running);
  EXPECT_TRUE(starts.empty());
}

TEST(SchedulerWindowTest, StarvationGuardPromotesOldJobs) {
  GreedyPowerPolicy policy;
  SchedulerConfig cfg;
  cfg.window_size = 10;
  cfg.starvation_age = 1000;
  Scheduler scheduler(policy, cfg);
  // On-peak would start the coolest job first, but J1 has waited 2000 s
  // (>= guard) and is promoted; it consumes all free nodes.
  const std::vector<PendingJob> queue{
      job(1, 4, 100, 50.0, /*submit=*/0),
      job(2, 4, 100, 10.0, /*submit=*/4900),
  };
  const auto starts = scheduler.decide(
      ctx(4, 8, PricePeriod::kOnPeak, /*now=*/5000), queue, {});
  EXPECT_EQ(starts, (std::vector<std::size_t>{0}));
}

TEST(SchedulerWindowTest, StarvationGuardKeepsArrivalOrderAmongStarved) {
  GreedyPowerPolicy policy;
  SchedulerConfig cfg;
  cfg.window_size = 10;
  cfg.starvation_age = 10;
  Scheduler scheduler(policy, cfg);
  // Both starved; arrival order (not power order) must apply.
  const std::vector<PendingJob> queue{
      job(1, 4, 100, 50.0, 0),
      job(2, 4, 100, 10.0, 1),
  };
  const auto starts = scheduler.decide(
      ctx(4, 8, PricePeriod::kOnPeak, 5000), queue, {});
  EXPECT_EQ(starts, (std::vector<std::size_t>{0}));
}

TEST(SchedulerTest, EmptyQueueOrNoFreeNodes) {
  GreedyPowerPolicy policy;
  Scheduler scheduler(policy, SchedulerConfig{});
  EXPECT_TRUE(scheduler.decide(ctx(8, 8), {}, {}).empty());
  const std::vector<PendingJob> queue{job(1, 4, 100)};
  EXPECT_TRUE(scheduler.decide(ctx(0, 8), queue, {}).empty());
}

TEST(SchedulerTest, ReturnedStartsAlwaysFitCollectively) {
  KnapsackPolicy policy;
  SchedulerConfig cfg;
  cfg.window_size = 5;
  Scheduler scheduler(policy, cfg);
  const std::vector<PendingJob> queue{
      job(1, 5, 100, 50.0), job(2, 3, 100, 20.0), job(3, 4, 100, 45.0),
      job(4, 2, 100, 35.0), job(5, 6, 100, 15.0), job(6, 1, 100, 25.0),
  };
  for (const auto period : {PricePeriod::kOnPeak, PricePeriod::kOffPeak}) {
    for (NodeCount free = 0; free <= 12; ++free) {
      const auto starts =
          scheduler.decide(ctx(free, 12, period), queue, {});
      NodeCount used = 0;
      for (const auto qi : starts) used += queue[qi].nodes;
      EXPECT_LE(used, free);
    }
  }
}

TEST(SchedulerTest, ConfigValidation) {
  GreedyPowerPolicy policy;
  SchedulerConfig cfg;
  cfg.window_size = 0;
  EXPECT_THROW(Scheduler(policy, cfg), Error);
}

TEST(SchedulerTest, RejectsInconsistentContext) {
  GreedyPowerPolicy policy;
  Scheduler scheduler(policy, SchedulerConfig{});
  const std::vector<PendingJob> queue{job(1, 4, 100)};
  EXPECT_THROW(scheduler.decide(ctx(16, 8), queue, {}), Error);
}

}  // namespace
}  // namespace esched::core
