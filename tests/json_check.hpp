// A tiny recursive-descent JSON *validator* for the golden-file tests of
// the src/obs emitters (and metrics/export's summary JSON). This is not a
// JSON library — it accepts exactly RFC 8259 syntax and reports the byte
// offset of the first violation, which is all "did we emit valid JSON"
// tests need, without taking on a dependency.
#pragma once

#include <cstddef>
#include <string>

namespace esched::testjson {

class Validator {
 public:
  explicit Validator(const std::string& text) : s_(text) {}

  /// True when the whole input is one valid JSON value (surrounding
  /// whitespace allowed). On failure, `error` (if non-null) describes the
  /// first offense and its byte offset.
  bool validate(std::string* error = nullptr) {
    pos_ = 0;
    error_.clear();
    skip_ws();
    const bool ok = value() && (skip_ws(), pos_ == s_.size());
    if (!ok && error_.empty()) fail("trailing characters");
    if (!ok && error != nullptr) *error = error_;
    return ok;
  }

 private:
  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ >= s_.size() || s_[pos_] != expected) {
      return fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return true;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) {
        return fail(std::string("bad literal (want ") + word + ")");
      }
      ++pos_;
    }
    return true;
  }

  bool value() {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') return consume('}');
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') return consume(']');
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') return consume('"');
      if (c < 0x20) return fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return fail("dangling escape");
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !is_hex(s_[pos_])) {
              return fail("bad \\u escape");
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return fail("bad escape character");
        }
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (!digits()) return fail("bad number");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (!digits()) return fail("bad number fraction");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!digits()) return fail("bad number exponent");
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    return pos_ > start;
  }

  static bool is_hex(char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
           (c >= 'A' && c <= 'F');
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

inline bool is_valid_json(const std::string& text,
                          std::string* error = nullptr) {
  Validator v(text);
  return v.validate(error);
}

}  // namespace esched::testjson
