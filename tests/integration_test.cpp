// End-to-end integration tests: full trace -> profiles -> simulation ->
// metrics pipelines, checking the paper's qualitative claims on
// reduced-size synthetic workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"
#include "power/billing.hpp"
#include "power/profile.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace esched {
namespace {

using core::FcfsPolicy;
using core::GreedyPowerPolicy;
using core::KnapsackPolicy;
using power::OnOffPeakPricing;
using sim::simulate;
using sim::SimConfig;
using sim::SimResult;

struct Suite {
  SimResult fcfs;
  SimResult greedy;
  SimResult knapsack;
};

Suite run_suite(trace::Trace& trace, double price_ratio = 3.0,
                const SimConfig& config = {}) {
  OnOffPeakPricing pricing(0.03, price_ratio);
  FcfsPolicy fcfs;
  GreedyPowerPolicy greedy;
  KnapsackPolicy knapsack;
  return Suite{simulate(trace, pricing, fcfs, config),
               simulate(trace, pricing, greedy, config),
               simulate(trace, pricing, knapsack, config)};
}

class IntegrationTest : public ::testing::Test {
 protected:
  static trace::Trace make_capability_trace() {
    trace::Trace t = trace::make_anl_bgp_like(1, 101);
    power::assign_profiles(t, power::ProfileConfig{}, 101);
    return t;
  }
  static trace::Trace make_capacity_trace() {
    trace::Trace t = trace::make_sdsc_blue_like(1, 202);
    power::assign_profiles(t, power::ProfileConfig{}, 202);
    return t;
  }
};

TEST_F(IntegrationTest, AllPoliciesProduceValidSchedules) {
  auto t = make_capability_trace();
  const Suite s = run_suite(t);
  for (const SimResult* r : {&s.fcfs, &s.greedy, &s.knapsack}) {
    EXPECT_NO_THROW(metrics::validate_result(*r));
    EXPECT_EQ(r->records.size(), t.size());
  }
}

TEST_F(IntegrationTest, EnergyIsPolicyInvariant) {
  // Scheduling order shifts *when* jobs run, never how much energy they
  // use (idle power is 0 here) — total energy must agree across policies
  // up to float noise.
  auto t = make_capability_trace();
  const Suite s = run_suite(t);
  EXPECT_NEAR(s.greedy.total_energy / s.fcfs.total_energy, 1.0, 1e-9);
  EXPECT_NEAR(s.knapsack.total_energy / s.fcfs.total_energy, 1.0, 1e-9);
}

TEST_F(IntegrationTest, PowerAwarePoliciesCutTheBill) {
  auto t = make_capability_trace();
  const Suite s = run_suite(t);
  const double greedy_saving = metrics::bill_saving_percent(s.fcfs, s.greedy);
  const double knap_saving = metrics::bill_saving_percent(s.fcfs, s.knapsack);
  // Paper Fig. 8: monthly savings of roughly 2-10% on ANL-BGP.
  EXPECT_GT(greedy_saving, 0.5);
  EXPECT_GT(knap_saving, 0.5);
  EXPECT_LT(greedy_saving, 25.0);
  EXPECT_LT(knap_saving, 25.0);
}

TEST_F(IntegrationTest, SavingsComeFromShiftingEnergyOffPeak) {
  // The mechanism: the power-aware policies move energy from on-peak to
  // off-peak hours relative to FCFS.
  auto t = make_capability_trace();
  const Suite s = run_suite(t);
  const double fcfs_on_share =
      s.fcfs.energy_on_peak / s.fcfs.total_energy;
  const double greedy_on_share =
      s.greedy.energy_on_peak / s.greedy.total_energy;
  const double knap_on_share =
      s.knapsack.energy_on_peak / s.knapsack.total_energy;
  EXPECT_LT(greedy_on_share, fcfs_on_share);
  EXPECT_LT(knap_on_share, fcfs_on_share);
}

TEST_F(IntegrationTest, UtilizationImpactIsSmall) {
  // Paper Figs. 5/6: utilization change < 5 percentage points.
  auto t = make_capability_trace();
  const Suite s = run_suite(t);
  const double base = metrics::overall_utilization(s.fcfs);
  EXPECT_NEAR(metrics::overall_utilization(s.greedy), base, 0.05);
  EXPECT_NEAR(metrics::overall_utilization(s.knapsack), base, 0.05);
}

TEST_F(IntegrationTest, WaitTimeImpactIsBounded) {
  // Paper Figs. 9/10: mean wait change is small (they report < 10 s on
  // month-scale traces; we allow a looser band on 1-month synthetics).
  auto t = make_capacity_trace();
  const Suite s = run_suite(t);
  const double base = s.fcfs.mean_wait_seconds();
  EXPECT_NEAR(s.greedy.mean_wait_seconds(), base,
              0.25 * base + 120.0);
  EXPECT_NEAR(s.knapsack.mean_wait_seconds(), base,
              0.25 * base + 120.0);
}

TEST_F(IntegrationTest, HigherPriceRatioRaisesSavings) {
  // Paper Tables 2/3: savings increase with the on/off price ratio.
  auto t = make_capability_trace();
  const Suite s3 = run_suite(t, 3.0);
  const Suite s5 = run_suite(t, 5.0);
  EXPECT_GT(metrics::bill_saving_percent(s5.fcfs, s5.knapsack),
            metrics::bill_saving_percent(s3.fcfs, s3.knapsack));
}

TEST_F(IntegrationTest, HigherPowerRatioRaisesSavings) {
  // Paper Tables 2/3: savings increase with the job power-profile ratio.
  trace::Trace t2 = trace::make_anl_bgp_like(1, 101);
  trace::Trace t4 = trace::make_anl_bgp_like(1, 101);
  power::ProfileConfig cfg2;
  cfg2.ratio = 2.0;
  power::ProfileConfig cfg4;
  cfg4.ratio = 4.0;
  power::assign_profiles(t2, cfg2, 101);
  power::assign_profiles(t4, cfg4, 101);
  const Suite s2 = run_suite(t2);
  const Suite s4 = run_suite(t4);
  EXPECT_GT(metrics::bill_saving_percent(s4.fcfs, s4.greedy),
            metrics::bill_saving_percent(s2.fcfs, s2.greedy));
}

TEST_F(IntegrationTest, LongerTickIntervalRaisesSavings) {
  // Paper Table 4: longer scheduling periods accumulate more nodes per
  // decision and save more.
  auto t = make_capability_trace();
  SimConfig c10;
  c10.tick_interval = 10;
  SimConfig c30;
  c30.tick_interval = 30;
  const Suite s10 = run_suite(t, 3.0, c10);
  const Suite s30 = run_suite(t, 3.0, c30);
  EXPECT_GE(metrics::bill_saving_percent(s30.fcfs, s30.knapsack) + 0.5,
            metrics::bill_saving_percent(s10.fcfs, s10.knapsack));
}

TEST_F(IntegrationTest, WindowSizeSweepIsStable) {
  // Paper §6.4: metrics vary little across window sizes 10-200.
  auto t = make_capacity_trace();
  OnOffPeakPricing pricing(0.03, 3.0);
  double min_util = 1.0;
  double max_util = 0.0;
  for (const std::size_t w : {10u, 30u, 100u}) {
    GreedyPowerPolicy greedy;
    SimConfig cfg;
    cfg.scheduler.window_size = w;
    const SimResult r = simulate(t, pricing, greedy, cfg);
    const double u = metrics::overall_utilization(r);
    min_util = std::min(min_util, u);
    max_util = std::max(max_util, u);
  }
  EXPECT_LT(max_util - min_util, 0.05);
}

TEST_F(IntegrationTest, MiraCaseStudyRunsEndToEnd) {
  trace::MiraConfig mc;
  mc.job_count = 600;  // reduced for test speed
  trace::Trace t = trace::make_mira_like(mc, 7);
  OnOffPeakPricing pricing(0.03, 3.0);
  FcfsPolicy fcfs;
  KnapsackPolicy knapsack;
  const SimResult rf = simulate(t, pricing, fcfs);
  const SimResult rk = simulate(t, pricing, knapsack);
  EXPECT_NO_THROW(metrics::validate_result(rf));
  EXPECT_NO_THROW(metrics::validate_result(rk));
  // Off-peak energy share should not decrease under the knapsack policy.
  EXPECT_GE(rk.energy_off_peak / rk.total_energy,
            rf.energy_off_peak / rf.total_energy - 0.01);
}

TEST_F(IntegrationTest, ReportTablesRenderForRealResults) {
  auto t = make_capability_trace();
  const Suite s = run_suite(t);
  const std::vector<SimResult> results{s.fcfs, s.greedy, s.knapsack};
  const auto months = metrics::horizon_months(s.fcfs);
  EXPECT_GT(metrics::monthly_utilization_table(results, months)
                .render()
                .size(),
            0u);
  EXPECT_GT(metrics::monthly_saving_table(results, months).render().size(),
            0u);
  EXPECT_GT(metrics::monthly_wait_table(results, months).render().size(),
            0u);
  EXPECT_GT(
      metrics::daily_curve_table(results, true, 8, 100.0, "%").render_csv()
          .size(),
      0u);
  EXPECT_FALSE(metrics::summary_line(s.fcfs).empty());
}

TEST_F(IntegrationTest, StarvationGuardBoundsWorstCaseWait) {
  auto t = make_capability_trace();
  OnOffPeakPricing pricing(0.03, 3.0);
  GreedyPowerPolicy greedy;
  SimConfig guarded;
  guarded.scheduler.starvation_age = 2 * 3600;
  const SimResult rg = simulate(t, pricing, greedy);
  const SimResult rb = simulate(t, pricing, greedy, guarded);
  EXPECT_NO_THROW(metrics::validate_result(rb));
  // The guard must not increase the maximum wait.
  DurationSec max_unguarded = 0;
  DurationSec max_guarded = 0;
  for (const auto& r : rg.records)
    max_unguarded = std::max(max_unguarded, r.wait());
  for (const auto& r : rb.records)
    max_guarded = std::max(max_guarded, r.wait());
  EXPECT_LE(max_guarded, max_unguarded + 3600);
}

}  // namespace
}  // namespace esched
