// Tests for the event-driven simulator: hand-computable scenarios.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/profile.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::sim {
namespace {

using core::FcfsPolicy;
using core::GreedyPowerPolicy;
using power::FlatPricing;
using power::OnOffPeakPricing;

trace::Job make_job(JobId id, TimeSec submit, NodeCount nodes,
                    DurationSec runtime, Watts power,
                    DurationSec walltime = 0) {
  trace::Job j;
  j.id = id;
  j.submit = submit;
  j.nodes = nodes;
  j.runtime = runtime;
  j.walltime = walltime > 0 ? walltime : runtime;
  j.power_per_node = power;
  return j;
}

TEST(SimulatorTest, SingleJobLifecycleAndBill) {
  trace::Trace t("one", 16);
  t.add_job(make_job(1, 0, 10, 3600, 20.0));
  FlatPricing pricing(0.10);
  FcfsPolicy policy;
  const SimResult r = simulate(t, pricing, policy);

  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].start, 0);   // tick boundary at t=0
  EXPECT_EQ(r.records[0].finish, 3600);
  EXPECT_EQ(r.records[0].wait(), 0);
  EXPECT_EQ(r.horizon_begin, 0);
  EXPECT_EQ(r.horizon_end, 3600);
  // 200 W for 1 h = 0.2 kWh at $0.10.
  EXPECT_NEAR(r.total_energy, 200.0 * 3600.0, 1e-6);
  EXPECT_NEAR(r.total_bill, 0.02, 1e-9);
}

TEST(SimulatorTest, SubmissionOffTickWaitsForBoundary) {
  trace::Trace t("offtick", 16);
  t.add_job(make_job(1, 7, 4, 600, 30.0));
  FlatPricing pricing(0.10);
  FcfsPolicy policy;
  SimConfig cfg;
  cfg.tick_interval = 10;
  const SimResult r = simulate(t, pricing, policy, cfg);
  EXPECT_EQ(r.records[0].start, 10);  // next 10 s boundary after t=7
  EXPECT_EQ(r.records[0].wait(), 3);
}

TEST(SimulatorTest, TickIntervalDelaysFreedNodes) {
  // Two full-machine jobs back to back: the second starts at the first
  // tick boundary after the first finishes — the Table 4/5 mechanism.
  for (const DurationSec interval : {10, 20, 30}) {
    trace::Trace t("pair", 10);
    t.add_job(make_job(1, 0, 10, 100, 25.0));
    t.add_job(make_job(2, 0, 10, 100, 25.0));
    FlatPricing pricing(0.10);
    FcfsPolicy policy;
    SimConfig cfg;
    cfg.tick_interval = interval;
    const SimResult r = simulate(t, pricing, policy, cfg);
    EXPECT_EQ(r.records[0].start, 0);
    const TimeSec expected_start = next_tick_at_or_after(100, interval);
    EXPECT_EQ(r.records[1].start, expected_start)
        << "interval=" << interval;
    EXPECT_EQ(r.horizon_end, expected_start + 100);
  }
}

TEST(SimulatorTest, FcfsOrderPreservedUnderContention) {
  trace::Trace t("fcfs", 10);
  t.add_job(make_job(1, 0, 10, 500, 25.0));
  t.add_job(make_job(2, 10, 6, 500, 25.0));
  t.add_job(make_job(3, 20, 6, 100, 25.0));
  FlatPricing pricing(0.10);
  FcfsPolicy policy;
  const SimResult r = simulate(t, pricing, policy);
  // At t=500 jobs 2 and 3 are both waiting; only 2 fits (6+6 > 10). Job 3
  // then needs 6 > the 4 leftover nodes, so it waits for job 2's end.
  EXPECT_EQ(r.records[1].start, 500);
  EXPECT_EQ(r.records[2].start, 1000);
}

TEST(SimulatorTest, EasyBackfillLetsShortJobJumpQueue) {
  trace::Trace t("easy", 10);
  t.add_job(make_job(1, 0, 6, 1000, 25.0, 1000));
  t.add_job(make_job(2, 10, 8, 500, 25.0, 500));    // blocked until 1000
  t.add_job(make_job(3, 20, 4, 500, 25.0, 500));    // fits & ends by 1000
  FlatPricing pricing(0.10);
  FcfsPolicy policy;
  const SimResult r = simulate(t, pricing, policy);
  EXPECT_EQ(r.records[0].start, 0);
  EXPECT_EQ(r.records[2].start, 20);    // backfilled at its arrival tick
  EXPECT_EQ(r.records[1].start, 1000);  // reservation honoured
}

TEST(SimulatorTest, BillSplitsAcrossPricePeriods) {
  // One job spanning noon: 1 h before, 1 h after.
  trace::Trace t("noon", 16);
  const TimeSec start = 11 * kSecondsPerHour;
  t.add_job(make_job(1, start, 10, 2 * kSecondsPerHour, 100.0));
  OnOffPeakPricing pricing(0.03, 3.0);
  FcfsPolicy policy;
  const SimResult r = simulate(t, pricing, policy);
  // 1 kW: 1 h off-peak at 0.03 + 1 h on-peak at 0.09.
  EXPECT_NEAR(r.bill_off_peak, 0.03, 1e-9);
  EXPECT_NEAR(r.bill_on_peak, 0.09, 1e-9);
  EXPECT_NEAR(r.total_bill, 0.12, 1e-9);
  EXPECT_NEAR(r.energy_on_peak, r.energy_off_peak, 1e-6);
}

TEST(SimulatorTest, IdlePowerAppearsInBill) {
  trace::Trace t("idle", 10);
  t.add_job(make_job(1, 0, 10, 3600, 20.0));
  t.add_job(make_job(2, 2 * 3600, 10, 3600, 20.0));  // 1 h idle gap
  FlatPricing pricing(0.10);
  FcfsPolicy policy;
  SimConfig cfg;
  cfg.idle_watts_per_node = 5.0;
  const SimResult r = simulate(t, pricing, policy, cfg);
  // Busy: 2 jobs * 200 W * 1 h. Idle: machine idle 1 h at 50 W, and free
  // nodes are 0 while jobs run.
  const double busy_j = 2 * 200.0 * 3600.0;
  const double idle_j = 50.0 * 3600.0;
  EXPECT_NEAR(r.total_energy, busy_j + idle_j, 1e-3);
}

TEST(SimulatorTest, GreedyReordersWithinWindowOnPeak) {
  // Three jobs submitted 10 minutes before midnight (end of on-peak).
  // Greedy runs the two cool jobs during the expensive tail and defers the
  // hot one into off-peak; FCFS does the opposite. Same total energy,
  // different bill — the paper's mechanism in miniature.
  const TimeSec submit = kSecondsPerDay - 600;
  trace::Trace t("greedy", 10);
  t.add_job(make_job(1, submit, 10, 600, 50.0));  // hot: 500 W
  t.add_job(make_job(2, submit, 5, 600, 10.0));   // cool: 50 W
  t.add_job(make_job(3, submit, 5, 600, 20.0));   // cool: 100 W
  OnOffPeakPricing pricing(0.03, 3.0);

  FcfsPolicy fcfs;
  const SimResult rf = simulate(t, pricing, fcfs);
  EXPECT_EQ(rf.records[0].start, submit);
  EXPECT_EQ(rf.records[1].start, kSecondsPerDay);

  GreedyPowerPolicy greedy;
  const SimResult rg = simulate(t, pricing, greedy);
  EXPECT_EQ(rg.records[1].start, submit);
  EXPECT_EQ(rg.records[2].start, submit);
  EXPECT_EQ(rg.records[0].start, kSecondsPerDay);

  EXPECT_NEAR(rg.total_energy, rf.total_energy, 1e-6);
  // Greedy: 150 W on-peak + 500 W off-peak; FCFS: 500 W on + 150 W off.
  const double hours = 600.0 / 3600.0;
  const double expected_fcfs = 0.5 * hours * 0.09 + 0.15 * hours * 0.03;
  const double expected_greedy = 0.15 * hours * 0.09 + 0.5 * hours * 0.03;
  EXPECT_NEAR(rf.total_bill, expected_fcfs, 1e-9);
  EXPECT_NEAR(rg.total_bill, expected_greedy, 1e-9);
  EXPECT_LT(rg.total_bill, rf.total_bill);
}

TEST(SimulatorTest, DeterministicRepeatability) {
  trace::Trace t = trace::make_anl_bgp_like(1, 5);
  power::assign_profiles(t, power::ProfileConfig{}, 5);
  OnOffPeakPricing pricing(0.03, 3.0);
  core::KnapsackPolicy policy;
  const SimResult a = simulate(t, pricing, policy);
  const SimResult b = simulate(t, pricing, policy);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].start, b.records[i].start);
    EXPECT_EQ(a.records[i].finish, b.records[i].finish);
  }
  EXPECT_DOUBLE_EQ(a.total_bill, b.total_bill);
  EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
}

TEST(SimulatorTest, DailyCurvesReflectLoad) {
  // A job running 00:00-06:00 every value bin in [0,6) should show the
  // full power; bins after 06:00 show zero.
  trace::Trace t("curve", 10);
  t.add_job(make_job(1, 0, 10, 6 * kSecondsPerHour, 30.0));
  FlatPricing pricing(0.10);
  FcfsPolicy policy;
  SimConfig cfg;
  cfg.daily_curve_bins = 24;
  const SimResult r = simulate(t, pricing, policy, cfg);
  ASSERT_EQ(r.power_curve.size(), 24u);
  EXPECT_NEAR(r.power_curve[0], 300.0, 1e-9);
  EXPECT_NEAR(r.power_curve[5], 300.0, 1e-9);
  EXPECT_NEAR(r.utilization_curve[3], 1.0, 1e-9);
  // Bin 6+ has zero observed time (horizon ends at 06:00), so average 0.
  EXPECT_DOUBLE_EQ(r.power_curve[7], 0.0);
}

TEST(SimulatorTest, SinglePassPerTickDefersRefill) {
  // Window of 1: the quiescence loop starts both queued jobs at the same
  // tick (window refills within the tick); single-pass mode leaves the
  // second job for the next tick even though nodes are free.
  trace::Trace t("refill", 10);
  t.add_job(make_job(1, 0, 4, 600, 30.0));
  t.add_job(make_job(2, 0, 4, 600, 30.0));
  FlatPricing pricing(0.10);

  GreedyPowerPolicy policy;
  SimConfig quiescent;
  quiescent.scheduler.window_size = 1;
  const SimResult rq = simulate(t, pricing, policy, quiescent);
  EXPECT_EQ(rq.records[0].start, 0);
  EXPECT_EQ(rq.records[1].start, 0);

  SimConfig single = quiescent;
  single.max_passes_per_tick = 1;
  single.scheduler.backfill_beyond_window = false;
  const SimResult rs = simulate(t, pricing, policy, single);
  EXPECT_EQ(rs.records[0].start, 0);
  EXPECT_EQ(rs.records[1].start, 10);  // next tick
}

TEST(SimulatorTest, SinglePassStillCompletesEverything) {
  trace::Trace t = trace::make_anl_bgp_like(1, 8);
  power::assign_profiles(t, power::ProfileConfig{}, 8);
  OnOffPeakPricing pricing(0.03, 3.0);
  core::KnapsackPolicy policy;
  SimConfig cfg;
  cfg.max_passes_per_tick = 1;
  const SimResult r = simulate(t, pricing, policy, cfg);
  EXPECT_EQ(r.records.size(), t.size());
  EXPECT_NO_THROW(metrics::validate_result(r));
}

TEST(SimulatorTest, CurvesCanBeDisabled) {
  trace::Trace t("nocurve", 10);
  t.add_job(make_job(1, 0, 10, 600, 30.0));
  FlatPricing pricing(0.10);
  FcfsPolicy policy;
  SimConfig cfg;
  cfg.record_daily_curves = false;
  const SimResult r = simulate(t, pricing, policy, cfg);
  EXPECT_TRUE(r.power_curve.empty());
  EXPECT_TRUE(r.utilization_curve.empty());
}

TEST(SimulatorTest, EmptyTraceYieldsEmptyResult) {
  trace::Trace t("empty", 10);
  FlatPricing pricing(0.10);
  FcfsPolicy policy;
  const SimResult r = simulate(t, pricing, policy);
  EXPECT_TRUE(r.records.empty());
  EXPECT_DOUBLE_EQ(r.total_bill, 0.0);
}

TEST(SimulatorTest, RejectsBadConfig) {
  trace::Trace t("bad", 10);
  t.add_job(make_job(1, 0, 4, 60, 20.0));
  FlatPricing pricing(0.10);
  FcfsPolicy policy;
  SimConfig cfg;
  cfg.tick_interval = 0;
  EXPECT_THROW(simulate(t, pricing, policy, cfg), Error);
}

TEST(SimulatorTest, ResultPassesInvariantValidation) {
  trace::Trace t = trace::make_sdsc_blue_like(1, 3);
  power::assign_profiles(t, power::ProfileConfig{}, 3);
  OnOffPeakPricing pricing(0.03, 3.0);
  for (int which = 0; which < 3; ++which) {
    FcfsPolicy fcfs;
    GreedyPowerPolicy greedy;
    core::KnapsackPolicy knapsack;
    core::SchedulingPolicy& policy =
        which == 0 ? static_cast<core::SchedulingPolicy&>(fcfs)
        : which == 1 ? static_cast<core::SchedulingPolicy&>(greedy)
                     : static_cast<core::SchedulingPolicy&>(knapsack);
    const SimResult r = simulate(t, pricing, policy);
    EXPECT_NO_THROW(metrics::validate_result(r));
    EXPECT_EQ(r.records.size(), t.size());
  }
}

}  // namespace
}  // namespace esched::sim
