// Tests for the power-capping baseline policy and the scheduler's budget
// enforcement.
#include "core/powercap_policy.hpp"

#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "util/error.hpp"

namespace esched::core {
namespace {

using power::PricePeriod;

PendingJob job(JobId id, NodeCount nodes, Watts power) {
  return PendingJob{id, 0, nodes, 3600, power};
}

TEST(PowerCapPolicyTest, BudgetOnlyAppliesOnPeak) {
  PowerCapPolicy policy(1000.0);
  ScheduleContext on{0, 8, 8, PricePeriod::kOnPeak};
  ScheduleContext off{0, 8, 8, PricePeriod::kOffPeak};
  EXPECT_DOUBLE_EQ(policy.power_budget(on), 1000.0);
  EXPECT_EQ(policy.power_budget(off), SchedulingPolicy::kNoPowerBudget);
  EXPECT_EQ(policy.on_peak_budget(), 1000.0);
  EXPECT_EQ(policy.name(), "PowerCap(1kW)");
}

TEST(PowerCapPolicyTest, RejectsNonPositiveBudget) {
  EXPECT_THROW(PowerCapPolicy(0.0), Error);
  EXPECT_THROW(PowerCapPolicy(-5.0), Error);
}

TEST(PowerCapPolicyTest, DispatchStopsAtBudgetDespiteIdleNodes) {
  // Budget 500 W. Jobs: 4 nodes x 50 W = 200 W each. Two fit (400 W);
  // the third would hit 600 W and must wait even though 4 nodes idle.
  PowerCapPolicy policy(500.0);
  Scheduler scheduler(policy, SchedulerConfig{});
  const std::vector<PendingJob> queue{
      job(1, 4, 50.0), job(2, 4, 50.0), job(3, 4, 50.0)};
  const ScheduleContext ctx{0, 12, 12, PricePeriod::kOnPeak};
  const auto starts = scheduler.decide(ctx, queue, {});
  EXPECT_EQ(starts, (std::vector<std::size_t>{0, 1}));
}

TEST(PowerCapPolicyTest, RunningPowerCountsAgainstBudget) {
  PowerCapPolicy policy(500.0);
  Scheduler scheduler(policy, SchedulerConfig{});
  const std::vector<PendingJob> queue{job(1, 4, 50.0)};  // +200 W
  ScheduleContext ctx{0, 8, 12, PricePeriod::kOnPeak};
  ctx.current_power = 400.0;  // 400 + 200 > 500
  EXPECT_TRUE(scheduler.decide(ctx, queue, {}).empty());
  ctx.current_power = 300.0;  // 300 + 200 <= 500
  EXPECT_EQ(scheduler.decide(ctx, queue, {}).size(), 1u);
}

TEST(PowerCapPolicyTest, OffPeakIsUncapped) {
  PowerCapPolicy policy(100.0);  // tiny budget
  Scheduler scheduler(policy, SchedulerConfig{});
  const std::vector<PendingJob> queue{job(1, 4, 50.0), job(2, 4, 60.0)};
  ScheduleContext ctx{0, 12, 12, PricePeriod::kOffPeak};
  ctx.current_power = 10000.0;
  EXPECT_EQ(scheduler.decide(ctx, queue, {}).size(), 2u);
}

TEST(PowerCapPolicyTest, PrefersFrugalJobsUnderTheCap) {
  // Greedy ordering ensures the budget is spent on the coolest jobs.
  PowerCapPolicy policy(450.0);
  Scheduler scheduler(policy, SchedulerConfig{});
  const std::vector<PendingJob> queue{
      job(1, 4, 100.0),  // 400 W
      job(2, 4, 50.0),   // 200 W
      job(3, 4, 60.0),   // 240 W
  };
  const ScheduleContext ctx{0, 12, 12, PricePeriod::kOnPeak};
  // Ascending power: J2 (200 W) then J3 (240 W -> total 440) then J1 (no).
  const auto starts = scheduler.decide(ctx, queue, {});
  EXPECT_EQ(starts, (std::vector<std::size_t>{1, 2}));
}

TEST(PowerCapPolicyTest, BudgetAppliesToBeyondWindowBackfill) {
  PowerCapPolicy policy(100.0);
  SchedulerConfig cfg;
  cfg.window_size = 1;
  cfg.backfill_beyond_window = true;
  Scheduler scheduler(policy, cfg);
  // Window blocker: 8 nodes. Beyond window: two 4-node backfill
  // candidates that both fit nodes and reservation, but only the cooler
  // one fits the 100 W budget.
  const std::vector<RunningJob> running{{4, 1000}};
  const std::vector<PendingJob> queue{
      {1, 0, 8, 500, 10.0},
      {2, 1, 4, 900, 50.0},  // 200 W: over budget, skipped
      {3, 2, 4, 900, 10.0},  // 40 W: fits
  };
  const ScheduleContext ctx{0, 4, 8, PricePeriod::kOnPeak};
  const auto starts = scheduler.decide(ctx, queue, running);
  EXPECT_EQ(starts, (std::vector<std::size_t>{2}));
}

}  // namespace
}  // namespace esched::core
