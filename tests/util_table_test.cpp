// Tests for the ASCII/CSV table renderer.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace esched {
namespace {

TEST(TableTest, RendersHeadersAndCells) {
  Table t({"Month", "FCFS", "Greedy"});
  t.add_row();
  t.cell("1");
  t.cell_percent(70.0);
  t.cell_percent(69.5);
  const std::string out = t.render();
  EXPECT_NE(out.find("Month"), std::string::npos);
  EXPECT_NE(out.find("70.00%"), std::string::npos);
  EXPECT_NE(out.find("69.50%"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(TableTest, NumericFormatting) {
  Table t({"a", "b", "c"});
  t.add_row();
  t.cell(3.14159, 3);
  t.cell_int(-42);
  t.cell_percent(1.5, 1);
  EXPECT_EQ(t.at(0, 0), "3.142");
  EXPECT_EQ(t.at(0, 1), "-42");
  EXPECT_EQ(t.at(0, 2), "1.5%");
}

TEST(TableTest, TooManyCellsThrows) {
  Table t({"only"});
  t.add_row();
  t.cell("x");
  EXPECT_THROW(t.cell("y"), Error);
}

TEST(TableTest, CellBeforeRowThrows) {
  Table t({"only"});
  EXPECT_THROW(t.cell("x"), Error);
}

TEST(TableTest, AtValidatesRange) {
  Table t({"a"});
  EXPECT_THROW(t.at(0, 0), Error);
  t.add_row();
  t.cell("v");
  EXPECT_EQ(t.at(0, 0), "v");
  EXPECT_THROW(t.at(0, 1), Error);
  EXPECT_THROW(t.at(1, 0), Error);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.add_row();
  t.cell("a,b");
  t.cell("say \"hi\"");
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_EQ(csv.substr(0, 9), "name,note");
}

TEST(TableTest, RaggedRowsRenderBlank) {
  Table t({"a", "b"});
  t.add_row();
  t.cell("only-a");
  const std::string out = t.render();
  EXPECT_NE(out.find("only-a"), std::string::npos);
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("only-a,"), std::string::npos);
}

TEST(TableTest, AlignmentOverride) {
  Table t({"left", "right"});
  t.set_align(1, Align::kLeft);
  t.add_row();
  t.cell("x");
  t.cell("1");
  // Column 1 is now left aligned: "1" then padding before the pipe.
  const std::string out = t.render();
  EXPECT_NE(out.find("| 1     |"), std::string::npos);
  EXPECT_THROW(t.set_align(2, Align::kLeft), Error);
}

TEST(TableTest, EmptyHeaderListThrows) {
  EXPECT_THROW(Table({}), Error);
}

}  // namespace
}  // namespace esched
