// Tests for Histogram and CategoricalHistogram.
#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace esched {
namespace {

TEST(HistogramTest, BinEdgesAreUniform) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramTest, ValuesLandInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(10.0);  // hi is exclusive -> clamps into last bin
  h.add(1e9);
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(4), 2.0);
}

TEST(HistogramTest, WeightsAndFractions) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0, 3.0);
  h.add(3.0, 1.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.bin_fraction(1), 0.25);
  EXPECT_THROW(h.add(1.0, -1.0), Error);
}

TEST(HistogramTest, RenderMentionsLabelAndBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render("power", 10);
  EXPECT_NE(out.find("power"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("66.67%"), std::string::npos);
}

TEST(HistogramTest, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 3), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(CategoricalHistogramTest, CountsAndFractions) {
  CategoricalHistogram h({"small", "medium", "large"});
  h.add(0);
  h.add(0);
  h.add(2, 2.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.5);
  EXPECT_EQ(h.category(1), "medium");
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(CategoricalHistogramTest, RejectsBadIndexAndEmpty) {
  CategoricalHistogram h({"a"});
  EXPECT_THROW(h.add(1), Error);
  EXPECT_THROW(h.fraction(1), Error);
  EXPECT_THROW(CategoricalHistogram({}), Error);
}

TEST(CategoricalHistogramTest, RenderAlignsNames) {
  CategoricalHistogram h({"x", "longname"});
  h.add(0);
  h.add(1);
  const std::string out = h.render("sizes");
  EXPECT_NE(out.find("sizes"), std::string::npos);
  EXPECT_NE(out.find("longname"), std::string::npos);
}

}  // namespace
}  // namespace esched
