// Tests for declarative sweep-cell specs (run/spec.hpp): every builder
// must be deterministic in the spec (that is the whole basis of the
// multi-process determinism contract), execute_job_spec must be
// bit-identical to hand-assembling the same cell in-process, and the
// by-name factories must reject unknown names loudly.
#include "run/spec.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/policy.hpp"
#include "power/pricing.hpp"
#include "power/profile.hpp"
#include "run/sweep.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace esched::run {
namespace {

TEST(SpecTest, BuildTraceIsDeterministic) {
  TraceSpec spec;
  spec.source = "sdsc-blue";
  spec.months = 1;
  const trace::Trace a = build_trace(spec);
  const trace::Trace b = build_trace(spec);
  ASSERT_EQ(a.jobs().size(), b.jobs().size());
  ASSERT_FALSE(a.jobs().empty());
  for (std::size_t i = 0; i < a.jobs().size(); ++i) {
    EXPECT_EQ(a.jobs()[i].id, b.jobs()[i].id);
    EXPECT_EQ(a.jobs()[i].submit, b.jobs()[i].submit);
    EXPECT_EQ(a.jobs()[i].power_per_node, b.jobs()[i].power_per_node);
  }
}

TEST(SpecTest, BuildTraceMatchesHandAssembledCanonicalPipeline) {
  // The spec path must reproduce the bench loader's historical behavior:
  // named generator with its canonical seed, then the paper's synthetic
  // power draw with the canonical power seed.
  TraceSpec spec;
  spec.source = "sdsc-blue";
  spec.months = 1;
  spec.power_ratio = 3.0;
  const trace::Trace from_spec = build_trace(spec);

  trace::Trace by_hand = trace::make_sdsc_blue_like(/*months=*/1, 2001);
  power::ProfileConfig cfg;
  cfg.ratio = 3.0;
  power::assign_profiles(by_hand, cfg, 0xe5c4edULL);

  ASSERT_EQ(from_spec.jobs().size(), by_hand.jobs().size());
  for (std::size_t i = 0; i < by_hand.jobs().size(); ++i) {
    EXPECT_EQ(from_spec.jobs()[i].id, by_hand.jobs()[i].id);
    EXPECT_EQ(from_spec.jobs()[i].power_per_node,
              by_hand.jobs()[i].power_per_node);
  }
}

TEST(SpecTest, SeedsOverrideCanonicalDefaults) {
  TraceSpec canonical;
  canonical.source = "anl-bgp";
  canonical.months = 1;
  TraceSpec seeded = canonical;
  seeded.seed = 424242;
  const trace::Trace a = build_trace(canonical);
  const trace::Trace b = build_trace(seeded);
  // Different generator seed => different workload (in job count or in
  // the jobs themselves).
  bool differs = a.jobs().size() != b.jobs().size();
  for (std::size_t i = 0; !differs && i < a.jobs().size(); ++i) {
    differs = a.jobs()[i].submit != b.jobs()[i].submit ||
              a.jobs()[i].nodes != b.jobs()[i].nodes ||
              a.jobs()[i].runtime != b.jobs()[i].runtime;
  }
  EXPECT_TRUE(differs);
}

TEST(SpecTest, ExecuteJobSpecMatchesInProcessSimulation) {
  JobSpec spec;
  spec.trace.source = "sdsc-blue";
  spec.trace.months = 1;
  spec.pricing.model = "paper";
  spec.pricing.ratio = 3.0;
  spec.policy.name = "greedy";
  spec.label = "greedy/sdsc-blue";
  const sim::SimResult from_spec = execute_job_spec(spec);

  const trace::Trace trace = build_trace(spec.trace);
  const auto tariff = power::make_paper_tariff(3.0);
  const auto policy = core::make_policy_by_name("greedy");
  const sim::SimResult by_hand =
      sim::simulate(trace, *tariff, *policy, sim::SimConfig{});

  EXPECT_TRUE(results_identical(from_spec, by_hand));
}

TEST(SpecTest, ByNameFactoriesRejectUnknownNames) {
  PolicySpec policy;
  policy.name = "no-such-policy";
  EXPECT_THROW(build_policy(policy), Error);

  PricingSpec pricing;
  pricing.model = "no-such-tariff";
  EXPECT_THROW(build_pricing(pricing), Error);

  TraceSpec trace;
  trace.source = "no-such-workload";
  EXPECT_THROW(build_trace(trace), Error);

  TraceSpec swf;
  swf.source = "swf";
  swf.swf_path = "/nonexistent/trace.swf";
  EXPECT_THROW(build_trace(swf), Error);
}

TEST(SpecTest, AllStandardNamesConstruct) {
  for (const char* name : {"fcfs", "greedy", "greedy-total", "knapsack"}) {
    PolicySpec spec;
    spec.name = name;
    EXPECT_NE(build_policy(spec), nullptr) << name;
  }
  for (const char* model : {"paper", "onoff", "flat"}) {
    PricingSpec spec;
    spec.model = model;
    EXPECT_NE(build_pricing(spec), nullptr) << model;
  }
}

}  // namespace
}  // namespace esched::run
