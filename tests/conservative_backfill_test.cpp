// Tests for the AvailabilityProfile and conservative backfilling.
#include "core/profile_reservation.hpp"

#include <gtest/gtest.h>

#include "core/fcfs_policy.hpp"
#include "core/scheduler.hpp"
#include "metrics/metrics.hpp"
#include "power/profile.hpp"
#include "power/pricing.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace esched::core {
namespace {

TEST(AvailabilityProfileTest, StartsFullyFree) {
  AvailabilityProfile p(100, 16);
  EXPECT_EQ(p.free_at(100), 16);
  EXPECT_EQ(p.free_at(1000000), 16);
  EXPECT_EQ(p.find_earliest(16, 60), 100);
  EXPECT_THROW(p.free_at(99), Error);
  EXPECT_THROW(AvailabilityProfile(0, 0), Error);
}

TEST(AvailabilityProfileTest, ReservationCarvesSteps) {
  AvailabilityProfile p(0, 10);
  p.reserve(0, 100, 6);
  EXPECT_EQ(p.free_at(0), 4);
  EXPECT_EQ(p.free_at(99), 4);
  EXPECT_EQ(p.free_at(100), 10);
  // 4 fit now; 5 must wait for the release at t=100.
  EXPECT_EQ(p.find_earliest(4, 50), 0);
  EXPECT_EQ(p.find_earliest(5, 50), 100);
}

TEST(AvailabilityProfileTest, WindowMustFitForWholeDuration) {
  AvailabilityProfile p(0, 10);
  p.reserve(50, 150, 6);  // pinch: only 4 free during [50, 150)
  // A 3-node job fits through the pinch; a 5-node job fits now only if
  // it ends by t=50, otherwise it waits for the pinch to clear.
  EXPECT_EQ(p.find_earliest(3, 1000), 0);
  EXPECT_EQ(p.find_earliest(5, 50), 0);
  EXPECT_EQ(p.find_earliest(5, 51), 150);
}

TEST(AvailabilityProfileTest, OverReservationThrows) {
  AvailabilityProfile p(0, 10);
  p.reserve(0, 100, 6);
  EXPECT_THROW(p.reserve(50, 60, 5), Error);
  EXPECT_THROW(p.reserve(10, 10, 1), Error);   // empty interval
  EXPECT_THROW(p.reserve(-5, 10, 1), Error);   // before start
}

TEST(AvailabilityProfileTest, MultipleReservationsCompose) {
  AvailabilityProfile p(0, 10);
  p.reserve(0, 100, 4);
  p.reserve(60, 200, 4);
  EXPECT_EQ(p.free_at(0), 6);
  EXPECT_EQ(p.free_at(60), 2);
  EXPECT_EQ(p.free_at(100), 6);
  EXPECT_EQ(p.free_at(200), 10);
  // A short 6-node job fits before the overlap region begins...
  EXPECT_EQ(p.find_earliest(6, 10), 0);
  // ...but one spanning the overlap must wait until the first release.
  EXPECT_EQ(p.find_earliest(6, 70), 100);
  EXPECT_EQ(p.find_earliest(10, 10), 200);
}

PendingJob job(JobId id, NodeCount nodes, DurationSec walltime) {
  return PendingJob{id, 0, nodes, walltime, 30.0};
}

TEST(ConservativeBackfillTest, BackfillMayNotDelayAnyReservation) {
  FcfsPolicy policy;
  SchedulerConfig cfg;
  cfg.backfill_mode = BackfillMode::kConservative;
  Scheduler scheduler(policy, cfg);
  // 10 free. J1 takes 6 (ends ~1000). J2 needs 8: reserved at t=1000.
  // J3 (4 nodes, 900 s): under EASY it backfills (ends by 1000). Under
  // conservative it must ALSO not delay J4's reservation...
  // J4 (2 nodes, long): reserved at now (2 <= 10-6-0... free after J1 is
  // 4, J3 takes it). Work the expectations out per profile rules.
  const std::vector<PendingJob> queue{
      job(1, 6, 1000),
      job(2, 8, 500),
      job(3, 4, 900),
      job(4, 2, 10000),
  };
  const ScheduleContext ctx{0, 10, 10, power::PricePeriod::kOffPeak};
  const auto starts = scheduler.decide(ctx, queue, {});
  // J1 starts (t=0). J2 reserved [1000, 1500) on 8 nodes. J3: earliest
  // window for 4 nodes x 900 — free is 4 until 1000, but [0,900) keeps
  // 4 free -> starts now. After J3: free 0 until 900. J4 (2 nodes,
  // 10000): earliest at 1500? [900,1000) has 4 free, but only 100 s;
  // 1000-1500 has 2 free (10-8); a 2-node 10000 s job fits from 900?
  // From 900: needs 2 nodes through 10900; at 1000-1500 free is 2 -> yes,
  // window [900, 10900) has >= 2 free throughout -> reserved at 900, not
  // started now.
  EXPECT_EQ(starts, (std::vector<std::size_t>{0, 2}));
}

TEST(ConservativeBackfillTest, AgreesWithEasyOnSafeBackfills) {
  // Backfills that cannot delay anyone are admitted by both disciplines.
  FcfsPolicy policy;
  Scheduler easy(policy, SchedulerConfig{});
  SchedulerConfig cons_cfg;
  cons_cfg.backfill_mode = BackfillMode::kConservative;
  Scheduler conservative(policy, cons_cfg);

  // Machine 16, free 4, 12 nodes running until t=1000. The head needs 14
  // and is reserved at t=1000; the two 2-node jobs slot into the spare
  // capacity under either discipline (J2 ends before the shadow, J3 uses
  // nodes that stay spare even while the head runs).
  const std::vector<RunningJob> running{{12, 1000}};
  const std::vector<PendingJob> queue{
      job(1, 14, 1000),
      job(2, 2, 500),
      job(3, 2, 50000),
  };
  const ScheduleContext ctx{0, 4, 16, power::PricePeriod::kOffPeak};
  EXPECT_EQ(easy.decide(ctx, queue, running),
            (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(conservative.decide(ctx, queue, running),
            (std::vector<std::size_t>{1, 2}));
}

TEST(ConservativeBackfillTest, DepthBoundsTheBook) {
  FcfsPolicy policy;
  SchedulerConfig cfg;
  cfg.backfill_mode = BackfillMode::kConservative;
  cfg.conservative_depth = 1;
  Scheduler scheduler(policy, cfg);
  const std::vector<PendingJob> queue{
      job(1, 8, 1000),  // blocked behind running job
      job(2, 2, 100),   // startable, but beyond the book depth
  };
  const std::vector<RunningJob> running{{8, 1000}};
  const ScheduleContext ctx{0, 2, 10, power::PricePeriod::kOffPeak};
  EXPECT_TRUE(scheduler.decide(ctx, queue, running).empty());
}

TEST(ConservativeSimulationTest, RunsAndPreservesInvariants) {
  trace::Trace t = trace::make_anl_bgp_like(1, 71);
  power::assign_profiles(t, power::ProfileConfig{}, 71);
  power::OnOffPeakPricing pricing(0.03, 3.0);
  FcfsPolicy policy;
  sim::SimConfig cfg;
  cfg.scheduler.backfill_mode = BackfillMode::kConservative;
  const sim::SimResult r = sim::simulate(t, pricing, policy, cfg);
  EXPECT_EQ(r.records.size(), t.size());
  EXPECT_NO_THROW(metrics::validate_result(r));

  // Conservative never beats EASY on utilization.
  FcfsPolicy policy2;
  const sim::SimResult easy = sim::simulate(t, pricing, policy2);
  EXPECT_LE(metrics::overall_utilization(r),
            metrics::overall_utilization(easy) + 0.01);
}

}  // namespace
}  // namespace esched::core
