// Tests for the time-of-day curve accumulator behind Figs. 12/13.
#include "sim/daily_curve.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::sim {
namespace {

TEST(DailyCurveTest, SingleBinSegment) {
  DailyCurveAccumulator acc(24);  // hourly bins
  acc.add_segment(0, kSecondsPerHour, 10.0);
  EXPECT_DOUBLE_EQ(acc.average(0), 10.0);
  EXPECT_DOUBLE_EQ(acc.coverage_seconds(0),
                   static_cast<double>(kSecondsPerHour));
  EXPECT_DOUBLE_EQ(acc.average(1), 0.0);  // never covered
}

TEST(DailyCurveTest, SegmentSpanningBins) {
  DailyCurveAccumulator acc(24);
  // 30 minutes in hour 0, full hour 1, 30 minutes of hour 2.
  acc.add_segment(1800, 2 * kSecondsPerHour + 1800, 4.0);
  EXPECT_DOUBLE_EQ(acc.average(0), 4.0);
  EXPECT_DOUBLE_EQ(acc.coverage_seconds(0), 1800.0);
  EXPECT_DOUBLE_EQ(acc.average(1), 4.0);
  EXPECT_DOUBLE_EQ(acc.coverage_seconds(2), 1800.0);
}

TEST(DailyCurveTest, MultiDayAveraging) {
  DailyCurveAccumulator acc(24);
  // Day 0 hour 0 at 10, day 1 hour 0 at 30 -> average 20.
  acc.add_segment(0, kSecondsPerHour, 10.0);
  acc.add_segment(kSecondsPerDay, kSecondsPerDay + kSecondsPerHour, 30.0);
  EXPECT_DOUBLE_EQ(acc.average(0), 20.0);
}

TEST(DailyCurveTest, PartialCoverageWeightsByTime) {
  DailyCurveAccumulator acc(24);
  // 15 min at 0, 45 min at 8 within the same hour: mean = (900*0 + 2700*8)
  // / 3600 = 6.
  acc.add_segment(0, 900, 0.0);
  acc.add_segment(900, 3600, 8.0);
  EXPECT_DOUBLE_EQ(acc.average(0), 6.0);
}

TEST(DailyCurveTest, WholeDaySegment) {
  DailyCurveAccumulator acc(96);
  acc.add_segment(0, kSecondsPerDay, 7.5);
  for (std::size_t b = 0; b < acc.bin_count(); ++b) {
    EXPECT_DOUBLE_EQ(acc.average(b), 7.5);
    EXPECT_DOUBLE_EQ(acc.coverage_seconds(b), 900.0);
  }
}

TEST(DailyCurveTest, BinStartsAndVectorOutput) {
  DailyCurveAccumulator acc(4);  // 6-hour bins
  EXPECT_EQ(acc.bin_start(0), 0);
  EXPECT_EQ(acc.bin_start(1), 6 * kSecondsPerHour);
  EXPECT_EQ(acc.bin_start(3), 18 * kSecondsPerHour);
  acc.add_segment(0, kSecondsPerDay, 1.0);
  const auto v = acc.averages();
  ASSERT_EQ(v.size(), 4u);
  for (const double x : v) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(DailyCurveTest, ZeroLengthSegmentIsNoop) {
  DailyCurveAccumulator acc(24);
  acc.add_segment(100, 100, 42.0);
  EXPECT_DOUBLE_EQ(acc.coverage_seconds(0), 0.0);
}

TEST(DailyCurveTest, Validation) {
  EXPECT_THROW(DailyCurveAccumulator(0), Error);
  EXPECT_THROW(DailyCurveAccumulator(7), Error);  // 7 doesn't divide 86400
  DailyCurveAccumulator acc(24);
  EXPECT_THROW(acc.add_segment(100, 50, 1.0), Error);
  EXPECT_THROW(acc.average(24), Error);
  EXPECT_THROW(acc.bin_start(24), Error);
}

}  // namespace
}  // namespace esched::sim
