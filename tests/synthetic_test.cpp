// Tests for the synthetic workload generators: determinism and statistical
// fidelity to the paper's trace characteristics (DESIGN.md §4).
#include "trace/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/trace_stats.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace esched::trace {
namespace {

TEST(SyntheticTest, DeterministicForSameSeed) {
  const Trace a = make_anl_bgp_like(2, 77);
  const Trace b = make_anl_bgp_like(2, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].submit, b[i].submit);
    EXPECT_EQ(a[i].nodes, b[i].nodes);
    EXPECT_EQ(a[i].runtime, b[i].runtime);
    EXPECT_EQ(a[i].walltime, b[i].walltime);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  const Trace a = make_anl_bgp_like(1, 1);
  const Trace b = make_anl_bgp_like(1, 2);
  // Same statistical law, different realisations.
  bool any_diff = a.size() != b.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i)
    any_diff = a[i].submit != b[i].submit || a[i].nodes != b[i].nodes;
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, AnlSizeMixMatchesPaper) {
  const Trace t = make_anl_bgp_like(5, 42);
  EXPECT_EQ(t.system_nodes(), 2048);
  EXPECT_GT(t.size(), 5000u);
  std::size_t n512 = 0;
  std::size_t n1024 = 0;
  std::size_t n2048 = 0;
  for (const Job& j : t.jobs()) {
    n512 += (j.nodes == 512);
    n1024 += (j.nodes == 1024);
    n2048 += (j.nodes == 2048);
  }
  const auto total = static_cast<double>(t.size());
  // Paper Fig. 4A: 38% / 19% / 8%.
  EXPECT_NEAR(static_cast<double>(n512) / total, 0.38, 0.03);
  EXPECT_NEAR(static_cast<double>(n1024) / total, 0.19, 0.03);
  EXPECT_NEAR(static_cast<double>(n2048) / total, 0.08, 0.02);
}

TEST(SyntheticTest, SdscSizeMixMatchesPaper) {
  const Trace t = make_sdsc_blue_like(5, 42);
  EXPECT_EQ(t.system_nodes(), 1152);
  EXPECT_GT(t.size(), 10000u);
  std::size_t below32 = 0;
  for (const Job& j : t.jobs()) below32 += (j.nodes < 32);
  // Paper Fig. 4B: 71% of jobs below 32 nodes.
  EXPECT_NEAR(static_cast<double>(below32) / static_cast<double>(t.size()),
              0.71, 0.04);
}

TEST(SyntheticTest, OfferedUtilizationTracksTargets) {
  const Trace t = make_anl_bgp_like(5, 11);
  const auto util = monthly_offered_utilization(t, 5);
  // Paper: month utilizations sweep 39%-88%; we target
  // {0.45, 0.62, 0.88, 0.70, 0.39} with Monte-Carlo calibration, so allow
  // a generous band.
  const double target[5] = {0.45, 0.62, 0.88, 0.70, 0.39};
  for (std::size_t m = 0; m < 5; ++m) {
    EXPECT_NEAR(util[m], target[m], 0.12)
        << "month " << m << " offered=" << util[m];
  }
}

TEST(SyntheticTest, JobsAreValidAndSorted) {
  const Trace t = make_sdsc_blue_like(2, 5);
  t.validate();
  for (const Job& j : t.jobs()) {
    EXPECT_GE(j.walltime, j.runtime);
    EXPECT_GE(j.runtime, 60);
    EXPECT_LE(j.runtime, 36 * kSecondsPerHour);
  }
}

TEST(SyntheticTest, GeneratorValidatesConfig) {
  SyntheticConfig cfg;
  cfg.size_classes.clear();
  EXPECT_THROW(generate(cfg, 1), Error);

  cfg.size_classes = {{4, 1.0, 600.0, 1.0}};
  cfg.monthly_utilization.clear();
  EXPECT_THROW(generate(cfg, 1), Error);

  cfg.monthly_utilization = {0.5};
  cfg.size_classes = {{4096, 1.0, 600.0, 1.0}};  // bigger than machine
  cfg.system_nodes = 1024;
  EXPECT_THROW(generate(cfg, 1), Error);

  cfg.size_classes = {{4, 1.0, 600.0, 1.0}};
  cfg.walltime_factor_lo = 0.5;  // < 1
  EXPECT_THROW(generate(cfg, 1), Error);
}

TEST(SyntheticTest, DiurnalProfileShiftsLoadIntoDaytime) {
  SyntheticConfig cfg;
  cfg.system_nodes = 1024;
  cfg.monthly_utilization = {0.6};
  cfg.size_classes = {{16, 1.0, 1800.0, 1.0}};
  cfg.diurnal = default_diurnal_profile();
  cfg.weekend_factor = 1.0;
  const Trace t = generate(cfg, 9);
  std::size_t daytime = 0;
  for (const Job& j : t.jobs()) {
    const auto hour = (j.submit / kSecondsPerHour) % 24;
    daytime += (hour >= 8 && hour < 20);
  }
  // Half the day carries clearly more than half the submissions.
  EXPECT_GT(static_cast<double>(daytime) / static_cast<double>(t.size()),
            0.6);
}

TEST(MiraTest, StructureMatchesCaseStudy) {
  const Trace t = make_mira_like();
  EXPECT_EQ(t.size(), 3333u);
  EXPECT_EQ(t.system_nodes(), 48 * 1024);
  t.validate();

  const TimeSec split = kSecondsPerMonth / 2;
  RunningStats first_half;
  RunningStats second_half;
  std::size_t single_rack_second_half = 0;
  std::size_t second_half_count = 0;
  for (const Job& j : t.jobs()) {
    EXPECT_EQ(j.nodes % 1024, 0) << "Mira jobs are rack-granular";
    // Fig. 1: per-rack power within ~40-90 kW.
    const double kw = j.power_per_node * 1024.0 / 1000.0;
    EXPECT_GE(kw, 40.0);
    EXPECT_LE(kw, 90.0);
    if (j.submit < split) {
      first_half.add(static_cast<double>(j.nodes));
    } else {
      second_half.add(static_cast<double>(j.nodes));
      ++second_half_count;
      single_rack_second_half += (j.nodes == 1024);
    }
  }
  // Acceptance-testing half: large jobs. Early-science half: mostly single
  // rack (paper: "most jobs are small sized such as single rack").
  EXPECT_GT(first_half.mean(), 8.0 * 1024.0);
  EXPECT_LT(second_half.mean(), 2.5 * 1024.0);
  EXPECT_GT(static_cast<double>(single_rack_second_half) /
                static_cast<double>(second_half_count),
            0.7);
}

TEST(MiraTest, ConfigKnobsRespected) {
  MiraConfig mc;
  mc.racks = 8;
  mc.nodes_per_rack = 512;
  mc.job_count = 100;
  mc.acceptance_fraction = 0.0;  // all early-science
  const Trace t = make_mira_like(mc, 3);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_EQ(t.system_nodes(), 8 * 512);
  for (const Job& j : t.jobs()) EXPECT_EQ(j.nodes % 512, 0);
}

TEST(MiraTest, RejectsBadConfig) {
  MiraConfig mc;
  mc.racks = 0;
  EXPECT_THROW(make_mira_like(mc, 1), Error);
  mc = MiraConfig{};
  mc.acceptance_fraction = 1.5;
  EXPECT_THROW(make_mira_like(mc, 1), Error);
  mc = MiraConfig{};
  mc.min_kw_per_rack = 90.0;
  mc.max_kw_per_rack = 40.0;
  EXPECT_THROW(make_mira_like(mc, 1), Error);
}

}  // namespace
}  // namespace esched::trace
