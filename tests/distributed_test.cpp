// Integration tests for the distributed sweep (net/distributed.hpp +
// esched-agentd): real agentd processes on loopback, real TCP, real
// esched-worker children. The acceptance criteria of the subsystem live
// here: a sweep fanned out to two agents is bit-identical to the
// in-process reference — including when an agent is SIGKILLed mid-sweep
// (requeue + surviving agent) and when deterministic net faults
// (ESCHED_FAULT netdrop/netgarbage) sever connections and corrupt
// frames. Handshake rejection of a wrong protocol version is pinned at
// the wire level with a raw client.
#include "net/distributed.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "net/frame_io.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "obs/registry.hpp"
#include "run/endpoint.hpp"
#include "run/fault.hpp"
#include "run/spec.hpp"
#include "run/sweep.hpp"
#include "run/wire.hpp"
#include "util/error.hpp"

namespace esched::net {
namespace {

namespace wire = run::wire;

/// Set ESCHED_FAULT for the scope of one test; spawned agentds (and
/// their workers) inherit it. Restores the prior value on destruction.
class ScopedFaultEnv {
 public:
  explicit ScopedFaultEnv(const std::string& plan) {
    const char* prev = std::getenv("ESCHED_FAULT");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    ::setenv("ESCHED_FAULT", plan.c_str(), 1);
  }
  ~ScopedFaultEnv() {
    if (had_prev_) {
      ::setenv("ESCHED_FAULT", prev_.c_str(), 1);
    } else {
      ::unsetenv("ESCHED_FAULT");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

/// One esched-agentd child on an ephemeral loopback port. The ready line
/// on its stdout announces the port; SIGKILL via kill_now() is the
/// "agent died mid-sweep" lever.
class AgentProc {
 public:
  explicit AgentProc(int slots) {
    const std::string path =
        run::find_sibling_binary("ESCHED_AGENTD", "esched-agentd");
    ESCHED_REQUIRE(!path.empty(), "esched-agentd binary not built?");
    int out[2] = {-1, -1};
    ESCHED_REQUIRE(::pipe(out) == 0, "pipe() failed");
    pid_ = ::fork();
    ESCHED_REQUIRE(pid_ >= 0, "fork() failed");
    if (pid_ == 0) {
      ::dup2(out[1], STDOUT_FILENO);
      ::close(out[0]);
      ::close(out[1]);
      const std::string slots_arg = std::to_string(slots);
      ::execl(path.c_str(), path.c_str(), "--port", "0", "--slots",
              slots_arg.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(out[1]);
    // Block on the single "ready ... port=N ..." line.
    std::string line;
    char c = 0;
    while (::read(out[0], &c, 1) == 1 && c != '\n') line.push_back(c);
    ::close(out[0]);
    const std::size_t pos = line.find("port=");
    ESCHED_REQUIRE(pos != std::string::npos,
                   "no agentd ready line: \"" + line + "\"");
    port_ = static_cast<std::uint16_t>(
        std::atoi(line.c_str() + pos + 5));
    ESCHED_REQUIRE(port_ > 0, "bad agentd ready line: \"" + line + "\"");
  }

  ~AgentProc() { kill_now(); }
  AgentProc(const AgentProc&) = delete;
  AgentProc& operator=(const AgentProc&) = delete;

  void kill_now() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    ::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  HostPort addr() const { return {"127.0.0.1", port_}; }

 private:
  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
};

/// Six-cell sweep: the paper's three policies at two price ratios.
std::vector<run::JobSpec> six_cell_sweep() {
  std::vector<run::JobSpec> sweep;
  for (const double ratio : {3.0, 5.0}) {
    for (const char* policy : {"fcfs", "greedy", "knapsack"}) {
      run::JobSpec spec;
      spec.trace.source = "sdsc-blue";
      spec.trace.months = 1;
      spec.pricing.model = "paper";
      spec.pricing.ratio = ratio;
      spec.policy.name = policy;
      spec.label = std::string(policy) + "/r" +
                   std::to_string(static_cast<int>(ratio));
      sweep.push_back(spec);
    }
  }
  return sweep;
}

std::vector<sim::SimResult> reference_results(
    const std::vector<run::JobSpec>& sweep) {
  std::vector<sim::SimResult> results;
  results.reserve(sweep.size());
  for (const run::JobSpec& spec : sweep) {
    results.push_back(run::execute_job_spec(spec));
  }
  return results;
}

void expect_identical(const std::vector<sim::SimResult>& reference,
                      const std::vector<sim::SimResult>& actual,
                      const std::vector<run::JobSpec>& sweep) {
  ASSERT_EQ(actual.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(run::results_identical(reference[i], actual[i]))
        << "cell " << i << " (" << sweep[i].label << ") diverged";
  }
}

/// Fast-failure knobs shared by the tests (CI must not wait out
/// production backoffs).
DistributedPoolConfig test_config(const std::vector<HostPort>& agents) {
  DistributedPoolConfig cfg;
  cfg.agents = agents;
  cfg.backoff_initial_seconds = 0.01;
  cfg.backoff_max_seconds = 0.05;
  cfg.connect_timeout_seconds = 5.0;
  cfg.heartbeat_interval_seconds = 0.2;
  cfg.reconnect_initial_seconds = 0.05;
  cfg.reconnect_max_seconds = 0.2;
  cfg.connect_attempts = 3;
  return cfg;
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

TEST(DistributedTest, AgentdBinaryIsAvailable) {
  EXPECT_FALSE(
      run::find_sibling_binary("ESCHED_AGENTD", "esched-agentd").empty());
}

TEST(DistributedTest, TwoAgentsBitIdenticalToReference) {
  const std::vector<run::JobSpec> sweep = six_cell_sweep();
  const auto reference = reference_results(sweep);

  AgentProc agent1(2);
  AgentProc agent2(2);
  obs::set_counters_enabled(true);
  const std::uint64_t connects_before = counter_value("net.connects");

  DistributedPoolConfig cfg = test_config({agent1.addr(), agent2.addr()});
  DistributedPool pool(cfg);
  std::vector<run::SweepProgress> seen;
  pool.set_progress(
      [&seen](const run::SweepProgress& p) { seen.push_back(p); });
  const auto results = pool.run(sweep);
  obs::set_counters_enabled(false);

  expect_identical(reference, results, sweep);
  EXPECT_EQ(pool.last_stats().tasks, sweep.size());
  EXPECT_EQ(pool.last_stats().threads, 4u);  // 2 agents x 2 slots
  EXPECT_GT(pool.last_stats().wall_seconds, 0.0);
  EXPECT_GE(counter_value("net.connects"), connects_before + 2);
  ASSERT_EQ(seen.size(), sweep.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].done, i + 1);
    EXPECT_EQ(seen[i].total, sweep.size());
  }
  // Both runs of a reused pool stay identical (connections are per-run).
  expect_identical(reference, pool.run(sweep), sweep);
}

TEST(DistributedTest, EmptySweepIsANoOp) {
  DistributedPool pool(test_config({{"127.0.0.1", 1}}));
  EXPECT_TRUE(pool.run({}).empty());
  EXPECT_EQ(pool.last_stats().tasks, 0u);
}

TEST(DistributedTest, AgentKilledMidSweepRequeuesAndStaysIdentical) {
  // The headline fault-tolerance criterion: SIGKILL one of two agents
  // after the first completed cell; its in-flight cells must requeue onto
  // the survivor and the results stay bit-identical.
  const std::vector<run::JobSpec> sweep = six_cell_sweep();
  const auto reference = reference_results(sweep);

  AgentProc agent1(2);
  AgentProc agent2(2);

  DistributedPoolConfig cfg = test_config({agent1.addr(), agent2.addr()});
  cfg.max_attempts = 8;
  DistributedPool pool(cfg);
  bool killed = false;
  pool.set_progress([&](const run::SweepProgress& p) {
    if (!killed && p.done >= 1) {
      agent1.kill_now();
      killed = true;
    }
  });
  const auto results = pool.run(sweep);
  EXPECT_TRUE(killed);
  expect_identical(reference, results, sweep);
}

TEST(DistributedTest, NetFaultsStayBitIdentical) {
  // Deterministic net faults at the agentd layer: netdrop severs the
  // connection on job receipt (requeue path), netgarbage corrupts an
  // answer after its CRC (corruption path). Prove the plan actually
  // fires before trusting the run.
  const std::vector<run::JobSpec> sweep = six_cell_sweep();
  const char* plan_text = "netdrop:0.25,netgarbage:0.25,seed:1";
  const run::FaultPlan plan = run::FaultPlan::parse(plan_text);
  const auto tasks = static_cast<std::uint32_t>(sweep.size());
  bool drop_fires = false;
  bool garbage_fires = false;
  for (std::uint32_t t = 0; t < tasks; ++t) {
    // First attempts always happen, so first-attempt faults always fire.
    if (plan.decide(t, 0) == run::FaultPlan::Action::kNetDrop) {
      drop_fires = true;
    }
    if (plan.decide(t, 0) == run::FaultPlan::Action::kNetGarbage) {
      garbage_fires = true;
    }
  }
  ASSERT_TRUE(drop_fires) << "seed does not exercise netdrop; change it";
  ASSERT_TRUE(garbage_fires) << "seed does not exercise netgarbage";
  // Every task must reach a clean attempt early enough that collateral
  // requeues (siblings of a dropped connection) cannot exhaust budget 8.
  for (std::uint32_t t = 0; t < tasks; ++t) {
    bool ok = false;
    for (std::uint32_t a = 0; a < 4 && !ok; ++a) {
      ok = plan.decide(t, a) == run::FaultPlan::Action::kNone;
    }
    ASSERT_TRUE(ok) << "task " << t << " has no clean attempt in 4";
  }

  const auto reference = reference_results(sweep);
  ScopedFaultEnv env(plan_text);  // agentds inherit across fork/exec
  AgentProc agent1(2);
  AgentProc agent2(2);
  obs::set_counters_enabled(true);
  const std::uint64_t requeued_before = counter_value("net.cells_requeued");

  DistributedPoolConfig cfg = test_config({agent1.addr(), agent2.addr()});
  cfg.max_attempts = 8;
  DistributedPool pool(cfg);
  const auto results = pool.run(sweep);
  obs::set_counters_enabled(false);

  expect_identical(reference, results, sweep);
  EXPECT_GT(counter_value("net.cells_requeued"), requeued_before);
}

TEST(DistributedTest, HandshakeVersionMismatchIsRejected) {
  AgentProc agent(1);

  // Raw client: connect, send a kHello with an alien protocol version,
  // expect a kError naming the mismatch followed by connection close.
  std::string error;
  Fd fd = connect_tcp_start(agent.addr(), error);
  ASSERT_TRUE(fd.valid()) << error;
  struct pollfd pfd = {fd.get(), POLLOUT, 0};
  ASSERT_GT(::poll(&pfd, 1, 5000), 0);
  ASSERT_TRUE(connect_tcp_finish(fd.get(), error)) << error;

  FrameConn conn(std::move(fd));
  Hello hello;
  hello.protocol = 999;
  ASSERT_TRUE(conn.send(wire::encode_frame(wire::FrameType::kHello, 0, 0,
                                           encode_hello(hello))));
  bool got_error = false;
  bool closed = false;
  for (int spin = 0; spin < 500 && !got_error; ++spin) {
    struct pollfd rd = {conn.fd(), POLLIN, 0};
    ::poll(&rd, 1, 100);
    const FrameConn::ReadStatus status = conn.fill();
    wire::FrameHeader header;
    std::vector<std::uint8_t> body;
    std::string corrupt;
    while (conn.frames().next(header, body, corrupt) ==
           run::FrameAssembler::Status::kFrame) {
      ASSERT_EQ(header.type, wire::FrameType::kError);
      const std::string message = wire::decode_error(body);
      EXPECT_NE(message.find("version mismatch"), std::string::npos)
          << message;
      got_error = true;
    }
    if (status == FrameConn::ReadStatus::kClosed) {
      closed = true;
      break;
    }
  }
  EXPECT_TRUE(got_error) << "agentd never answered the bad hello";
  // The agent must also close the rejected session (possibly a beat
  // after the kError frame).
  for (int spin = 0; spin < 500 && !closed; ++spin) {
    struct pollfd rd = {conn.fd(), POLLIN, 0};
    ::poll(&rd, 1, 100);
    closed = conn.fill() == FrameConn::ReadStatus::kClosed;
  }
  EXPECT_TRUE(closed);
}

TEST(DistributedTest, CoordinatorRejectsWrongAgentVersion) {
  // The mirror image: a DistributedPool pointed at something that
  // answers with the wrong protocol version must abandon the agent and,
  // it being the only one, fail the sweep naming the mismatch. A fake
  // agent (this test) welcomes with version 999.
  Fd listener = listen_tcp("127.0.0.1", 0);
  const HostPort addr{"127.0.0.1", local_port(listener.get())};

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Fake agentd: accept, read the hello, answer kWelcome{protocol 999}.
    for (int spin = 0; spin < 5000; ++spin) {
      Fd conn_fd = accept_tcp(listener.get());
      if (!conn_fd.valid()) {
        ::usleep(1000);
        continue;
      }
      FrameConn conn(std::move(conn_fd));
      Welcome welcome;
      welcome.protocol = 999;
      welcome.slots = 1;
      conn.send(wire::encode_frame(wire::FrameType::kWelcome, 0, 0,
                                   encode_welcome(welcome)));
      while (conn.flush() && conn.wants_write()) ::usleep(1000);
      ::usleep(200000);  // hold the socket open while the pool reacts
      ::_exit(0);
    }
    ::_exit(1);
  }
  listener.reset();  // the child owns the listening socket now

  DistributedPoolConfig cfg = test_config({addr});
  cfg.connect_attempts = 2;
  DistributedPool pool(cfg);
  try {
    pool.run(six_cell_sweep());
    FAIL() << "expected version mismatch to fail the sweep";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no usable agents"), std::string::npos) << what;
    EXPECT_NE(what.find("version mismatch"), std::string::npos) << what;
  }
  ::kill(child, SIGKILL);
  ::waitpid(child, nullptr, 0);
}

TEST(DistributedTest, NoUsableAgentsThrowsWithPerAgentDetail) {
  // An ephemeral port that was bound and released: nothing listens there.
  Fd probe = listen_tcp("127.0.0.1", 0);
  const HostPort dead{"127.0.0.1", local_port(probe.get())};
  probe.reset();

  DistributedPoolConfig cfg = test_config({dead});
  cfg.connect_attempts = 2;
  DistributedPool pool(cfg);
  try {
    pool.run(six_cell_sweep());
    FAIL() << "expected unreachable agents to fail the sweep";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no usable agents"), std::string::npos) << what;
    EXPECT_NE(what.find(dead.text()), std::string::npos) << what;
  }
}

TEST(DistributedTest, ReachabilityProbe) {
  Fd probe = listen_tcp("127.0.0.1", 0);
  const HostPort dead{"127.0.0.1", local_port(probe.get())};
  probe.reset();
  EXPECT_FALSE(DistributedPool::any_agent_reachable({dead}, 0.2));

  Fd live = listen_tcp("127.0.0.1", 0);
  const HostPort alive{"127.0.0.1", local_port(live.get())};
  EXPECT_TRUE(DistributedPool::any_agent_reachable({dead, alive}, 0.5));
}

TEST(DistributedTest, AgentsFromEnvParsesList) {
  ::setenv("ESCHED_AGENTS", "127.0.0.1:9555,node1:9556", 1);
  const std::vector<HostPort> agents = DistributedPool::agents_from_env();
  ::unsetenv("ESCHED_AGENTS");
  ASSERT_EQ(agents.size(), 2u);
  EXPECT_EQ(agents[0], (HostPort{"127.0.0.1", 9555}));
  EXPECT_EQ(agents[1], (HostPort{"node1", 9556}));
  EXPECT_TRUE(DistributedPool::agents_from_env().empty());
}

}  // namespace
}  // namespace esched::net
