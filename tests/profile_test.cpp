// Tests for power-profile assignment (§5.4 of the paper).
#include "power/profile.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace esched::power {
namespace {

trace::Trace make_trace(std::size_t jobs, int users = 10) {
  trace::Trace t("test", 1024);
  for (std::size_t i = 0; i < jobs; ++i) {
    trace::Job j;
    j.id = static_cast<JobId>(i + 1);
    j.submit = static_cast<TimeSec>(i * 10);
    j.nodes = 16;
    j.runtime = 600;
    j.walltime = 900;
    j.user = static_cast<int>(i) % users;
    t.add_job(j);
  }
  return t;
}

TEST(ProfileTest, DefaultPaperRange) {
  trace::Trace t = make_trace(5000);
  assign_profiles(t, ProfileConfig{}, 42);
  RunningStats stats;
  for (const trace::Job& j : t.jobs()) {
    ASSERT_GE(j.power_per_node, 20.0);
    ASSERT_LE(j.power_per_node, 60.0);
    stats.add(j.power_per_node);
  }
  // Normal centred on the midpoint with sd = range/6.
  EXPECT_NEAR(stats.mean(), 40.0, 0.5);
  EXPECT_NEAR(stats.stddev(), 40.0 / 6.0, 0.5);
}

TEST(ProfileTest, RatioControlsRange) {
  for (const double ratio : {2.0, 3.0, 4.0}) {
    trace::Trace t = make_trace(2000);
    ProfileConfig cfg;
    cfg.min_watts_per_node = 20.0;
    cfg.ratio = ratio;
    assign_profiles(t, cfg, 7);
    double lo = 1e300;
    double hi = -1e300;
    for (const trace::Job& j : t.jobs()) {
      lo = std::min(lo, j.power_per_node);
      hi = std::max(hi, j.power_per_node);
    }
    EXPECT_GE(lo, 20.0);
    EXPECT_LE(hi, 20.0 * ratio);
    // The draws should actually use the range: extremes within the outer
    // quarter of [min, max].
    const double range = 20.0 * ratio - 20.0;
    EXPECT_LT(lo, 20.0 + 0.25 * range);
    EXPECT_GT(hi, 20.0 * ratio - 0.25 * range);
  }
}

TEST(ProfileTest, DeterministicInSeed) {
  trace::Trace a = make_trace(100);
  trace::Trace b = make_trace(100);
  assign_profiles(a, ProfileConfig{}, 99);
  assign_profiles(b, ProfileConfig{}, 99);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].power_per_node, b[i].power_per_node);
  trace::Trace c = make_trace(100);
  assign_profiles(c, ProfileConfig{}, 100);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    any_diff |= a[i].power_per_node != c[i].power_per_node;
  EXPECT_TRUE(any_diff);
}

TEST(ProfileTest, DegenerateRatioOneIsConstant) {
  trace::Trace t = make_trace(50);
  ProfileConfig cfg;
  cfg.ratio = 1.0;
  assign_profiles(t, cfg, 1);
  for (const trace::Job& j : t.jobs())
    EXPECT_DOUBLE_EQ(j.power_per_node, cfg.min_watts_per_node);
}

TEST(ProfileTest, UserCorrelationClustersUsers) {
  trace::Trace t = make_trace(5000, /*users=*/5);
  ProfileConfig cfg;
  cfg.per_user_correlation = 0.9;
  assign_profiles(t, cfg, 3);
  // Variance within a user should be much smaller than overall variance.
  RunningStats overall;
  std::vector<RunningStats> per_user(5);
  for (const trace::Job& j : t.jobs()) {
    overall.add(j.power_per_node);
    per_user[static_cast<std::size_t>(j.user)].add(j.power_per_node);
  }
  double mean_within = 0.0;
  for (const auto& s : per_user) mean_within += s.variance();
  mean_within /= 5.0;
  EXPECT_LT(mean_within, overall.variance() * 0.6);
}

TEST(ProfileTest, RejectsBadConfig) {
  trace::Trace t = make_trace(10);
  ProfileConfig cfg;
  cfg.min_watts_per_node = 0.0;
  EXPECT_THROW(assign_profiles(t, cfg, 1), Error);
  cfg = ProfileConfig{};
  cfg.ratio = 0.9;
  EXPECT_THROW(assign_profiles(t, cfg, 1), Error);
  cfg = ProfileConfig{};
  cfg.per_user_correlation = 1.5;
  EXPECT_THROW(assign_profiles(t, cfg, 1), Error);
}

TEST(ProfileTest, RescalePreservesQuantiles) {
  trace::Trace t = make_trace(1000);
  assign_profiles(t, ProfileConfig{}, 5);
  // Remember the ordering of the first few jobs by power.
  const double p0 = t[0].power_per_node;
  const double p1 = t[1].power_per_node;
  rescale_profiles(t, 10.0, 4.0);
  double lo = 1e300;
  double hi = -1e300;
  for (const trace::Job& j : t.jobs()) {
    lo = std::min(lo, j.power_per_node);
    hi = std::max(hi, j.power_per_node);
  }
  EXPECT_NEAR(lo, 10.0, 1e-9);
  EXPECT_NEAR(hi, 40.0, 1e-9);
  // Order preserved.
  EXPECT_EQ(p0 < p1, t[0].power_per_node < t[1].power_per_node);
}

}  // namespace
}  // namespace esched::power
