// Property test for the warm-up snapshot/fork machinery: forking at
// EVERY legal prefix (0..total events) and finishing must produce a
// SimResult bit-identical to the uninterrupted reference run, for every
// policy and pricing model. This is the contract that lets the sweep
// runner simulate a shared warm-up once and fork the cells from it
// (see DESIGN.md "Snapshot compatibility").
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/policy.hpp"
#include "obs/tracer.hpp"
#include "power/pricing.hpp"
#include "power/visibility.hpp"
#include "sim/simulator.hpp"
#include "run/sweep.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace esched {
namespace {

trace::Trace random_trace(Rng& rng) {
  trace::Trace t("ref", 16);
  const auto jobs = static_cast<std::size_t>(rng.uniform_int(5, 30));
  for (std::size_t i = 0; i < jobs; ++i) {
    trace::Job j;
    j.id = static_cast<JobId>(i + 1);
    j.submit = rng.uniform_int(0, 300);
    j.nodes = rng.uniform_int(1, 16);
    j.runtime = rng.uniform_int(1, 60);
    j.walltime = j.runtime + rng.uniform_int(0, 30);
    j.power_per_node = rng.uniform(20.0, 60.0);
    j.user = static_cast<int>(rng.uniform_int(0, 3));
    t.add_job(j);
  }
  t.finalize();
  return t;
}

class SnapshotForkProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SnapshotForkProperty, ForkAtEveryPrefixMatchesFullRun) {
  Rng rng(GetParam());
  // Price boundaries every 120 s so short runs cross several on/off
  // flips; flat pricing exercises the no-boundary path.
  const power::OnOffPeakPricing on_off(36.0, 3.0, /*on_peak_start=*/0,
                                       /*on_peak_end=*/120);
  const power::FlatPricing flat(12.0);
  const std::vector<const power::PricingModel*> pricings{&on_off, &flat};

  for (int round = 0; round < 3; ++round) {
    const trace::Trace trace = random_trace(rng);
    for (const power::PricingModel* pricing : pricings) {
      for (const char* policy_name : {"fcfs", "greedy", "knapsack"}) {
        sim::SimConfig cfg;
        cfg.tick_interval = 10;

        const auto ref_policy = core::make_policy_by_name(policy_name);
        const sim::SimResult reference =
            sim::simulate(trace, *pricing, *ref_policy, cfg);

        // Lead run stepped one event at a time; snapshot before every
        // step (prefix lengths 0, 1, ..., total).
        const auto lead_policy = core::make_policy_by_name(policy_name);
        sim::Simulation lead(trace, *pricing, *lead_policy, cfg);
        ASSERT_TRUE(lead.can_snapshot());
        std::uint64_t prefixes = 0;
        for (;; ++prefixes) {
          const sim::SimSnapshot snap = lead.snapshot();
          const auto fork_policy = core::make_policy_by_name(policy_name);
          sim::Simulation forked = sim::Simulation::fork(
              snap, trace, *pricing, *fork_policy, cfg);
          ASSERT_EQ(forked.events_processed(), lead.events_processed());
          const sim::SimResult result = forked.finish();
          ASSERT_TRUE(run::results_identical(reference, result))
              << "policy=" << policy_name
              << " prefix=" << lead.events_processed()
              << ": fork diverged from the full run";
          if (!lead.step()) break;
        }
        // Sanity: the loop forked at every prefix 0..N (the break skips
        // the final increment, so the counter reads N, not N+1).
        EXPECT_EQ(prefixes, lead.events_processed());

        // The lead run itself must also finish identically.
        const sim::SimResult lead_result = lead.finish();
        EXPECT_TRUE(run::results_identical(reference, lead_result))
            << "policy=" << policy_name << ": stepped run diverged";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotForkProperty,
                         ::testing::Values(7u, 8u, 9u));

TEST(SnapshotForkTest, ForkRejectsMismatchedConfig) {
  Rng rng(42);
  const trace::Trace trace = random_trace(rng);
  const power::FlatPricing pricing(12.0);
  const auto policy = core::make_policy_by_name("fcfs");
  sim::SimConfig cfg;
  cfg.tick_interval = 10;
  sim::Simulation lead(trace, pricing, *policy, cfg);
  lead.run_prefix(5);
  const sim::SimSnapshot snap = lead.snapshot();

  const auto fork_policy = core::make_policy_by_name("fcfs");
  sim::SimConfig other = cfg;
  other.tick_interval = 20;
  EXPECT_THROW(
      sim::Simulation::fork(snap, trace, pricing, *fork_policy, other),
      Error);

  sim::SimConfig contiguous = cfg;
  contiguous.contiguous_allocation = true;
  EXPECT_THROW(
      sim::Simulation::fork(snap, trace, pricing, *fork_policy, contiguous),
      Error);
}

TEST(SnapshotForkTest, ForkRejectsMismatchedTrace) {
  Rng rng(43);
  const trace::Trace trace = random_trace(rng);
  const power::FlatPricing pricing(12.0);
  const auto policy = core::make_policy_by_name("fcfs");
  sim::Simulation lead(trace, pricing, *policy);
  const sim::SimSnapshot snap = lead.snapshot();

  trace::Trace other("other", 16);
  trace::Job j;
  j.id = 1;
  j.submit = 0;
  j.nodes = 1;
  j.runtime = 10;
  j.walltime = 20;
  j.power_per_node = 40.0;
  other.add_job(j);
  other.finalize();
  const auto fork_policy = core::make_policy_by_name("fcfs");
  EXPECT_THROW(
      sim::Simulation::fork(snap, other, pricing, *fork_policy, {}), Error);
}

TEST(SnapshotForkTest, VisibilityAndTracerBlockSnapshots) {
  Rng rng(44);
  const trace::Trace trace = random_trace(rng);
  const power::FlatPricing pricing(12.0);

  {
    const auto policy = core::make_policy_by_name("fcfs");
    power::TruthVisibility visibility;
    sim::Simulation s(trace, pricing, *policy, {}, &visibility);
    EXPECT_FALSE(s.can_snapshot());
    EXPECT_THROW(s.snapshot(), Error);
  }
  {
    // A tracer blocks snapshots only once opened: a disabled tracer is
    // ignored by the engine entirely (it can never affect the run).
    const auto policy = core::make_policy_by_name("fcfs");
    obs::Tracer disabled;
    sim::SimConfig cfg;
    cfg.tracer = &disabled;
    sim::Simulation ok(trace, pricing, *policy, cfg);
    EXPECT_TRUE(ok.can_snapshot());

    obs::Tracer tracer;
    const std::string path =
        ::testing::TempDir() + "snapshot_fork_tracer.json";
    tracer.open(path);
    cfg.tracer = &tracer;
    const auto policy2 = core::make_policy_by_name("fcfs");
    sim::Simulation s(trace, pricing, *policy2, cfg);
    EXPECT_FALSE(s.can_snapshot());
    EXPECT_THROW(s.snapshot(), Error);
    tracer.close();
    std::remove(path.c_str());
    std::remove((path + obs::Tracer::kDecisionLogSuffix).c_str());
  }
}

}  // namespace
}  // namespace esched
