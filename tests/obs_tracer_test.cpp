// Tests for the two-sink Tracer (src/obs/tracer.*): the Chrome trace is
// valid JSON with balanced B/E spans per thread track, the JSONL decision
// log round-trips with its documented fixed key order, and — the
// end-to-end contract — a simulation's decision log is consistent with
// the SimResult it produced (every started job appears in the dispatched
// set of its start tick, and nothing else does).
#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/fcfs_policy.hpp"
#include "json_check.hpp"
#include "power/pricing.hpp"
#include "power/profile.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "trace/transforms.hpp"
#include "util/error.hpp"

namespace esched::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// One parsed Chrome trace event (fields the balance check needs).
struct Event {
  std::string name;
  char phase = '?';
  long long tid = -1;
};

/// Parse the emitter's line-oriented Chrome trace: one event per line,
/// first line "{"traceEvents": [", last line "]}".
std::vector<Event> parse_chrome_events(const std::string& path) {
  std::vector<Event> events;
  for (const std::string& line : read_lines(path)) {
    const std::size_t name_at = line.find("{\"name\": \"");
    if (name_at == std::string::npos) continue;  // header/footer
    Event e;
    const std::size_t name_begin = name_at + 10;
    const std::size_t name_end = line.find("\", \"cat\"", name_begin);
    EXPECT_NE(name_end, std::string::npos) << line;
    e.name = line.substr(name_begin, name_end - name_begin);
    const std::size_t ph = line.find("\"ph\": \"");
    EXPECT_NE(ph, std::string::npos) << line;
    e.phase = line[ph + 7];
    const std::size_t tid = line.find("\"tid\": ");
    EXPECT_NE(tid, std::string::npos) << line;
    e.tid = std::stoll(line.substr(tid + 7));
    events.push_back(e);
  }
  return events;
}

/// Assert every track's B/E events nest like parentheses. "X" complete
/// events carry their own duration and cannot unbalance anything.
void expect_balanced_spans(const std::vector<Event>& events) {
  std::map<long long, std::vector<std::string>> stacks;
  for (const Event& e : events) {
    if (e.phase == 'X') continue;
    std::vector<std::string>& stack = stacks[e.tid];
    if (e.phase == 'B') {
      stack.push_back(e.name);
    } else {
      ASSERT_EQ(e.phase, 'E') << e.name;
      ASSERT_FALSE(stack.empty()) << "E without B: " << e.name;
      EXPECT_EQ(stack.back(), e.name) << "mis-nested span";
      stack.pop_back();
    }
  }
  for (const auto& entry : stacks) {
    EXPECT_TRUE(entry.second.empty())
        << "unclosed span on tid " << entry.first;
  }
}

class ObsTracerTest : public ::testing::Test {
 protected:
  std::string trace_path(const char* stem) {
    return ::testing::TempDir() + stem + ".json";
  }
  void remove_outputs(const std::string& path) {
    std::remove(path.c_str());
    std::remove((path + Tracer::kDecisionLogSuffix).c_str());
  }
};

TEST_F(ObsTracerTest, DefaultConstructedTracerIsInert) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.begin_span("x", "test");
  tracer.end_span("x", "test");
  tracer.record_tick(TickRecord{});
  tracer.close();  // no-op, no throw
  // SpanGuard tolerates both a null and a disabled tracer.
  { SpanGuard null_guard(nullptr, "y", "test"); }
  { SpanGuard disabled_guard(&tracer, "z", "test"); }
}

TEST_F(ObsTracerTest, OpenFailureNamesThePath) {
  Tracer tracer;
  const std::string bad = "/nonexistent-dir-esched/trace.json";
  try {
    tracer.open(bad);
    FAIL() << "expected esched::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(bad), std::string::npos)
        << e.what();
  }
  EXPECT_FALSE(tracer.enabled());
}

TEST_F(ObsTracerTest, OpenTwiceIsAnError) {
  Tracer tracer;
  const std::string path = trace_path("obs_tracer_twice");
  tracer.open(path);
  EXPECT_THROW(tracer.open(path), Error);
  tracer.close();
  remove_outputs(path);
}

TEST_F(ObsTracerTest, ChromeTraceIsValidJsonWithBalancedSpans) {
  const std::string path = trace_path("obs_tracer_spans");
  {
    Tracer tracer;
    tracer.open(path);
    EXPECT_TRUE(tracer.enabled());
    {
      SpanGuard outer(&tracer, "outer", "test");
      SpanGuard inner(&tracer, "inner", "test");
    }
    tracer.begin_span("manual", "test");
    tracer.end_span("manual", "test");
    tracer.close();  // idempotent: the destructor will call it again
  }
  std::string error;
  EXPECT_TRUE(testjson::is_valid_json(read_file(path), &error)) << error;
  const std::vector<Event> events = parse_chrome_events(path);
  EXPECT_EQ(events.size(), 6u);
  expect_balanced_spans(events);
  remove_outputs(path);
}

TEST_F(ObsTracerTest, DecisionLogRoundTripsWithFixedKeyOrder) {
  const std::string path = trace_path("obs_tracer_jsonl");
  {
    Tracer tracer;
    tracer.open(path);
    TickRecord rec;
    rec.sim = "FCFS/test";
    rec.time = 1200;
    rec.period = "on_peak";
    rec.free_before = 64;
    rec.free_after = 16;
    rec.queue_length = 3;
    rec.passes = 2;
    rec.window_ids = {7, 9};
    rec.window_powers = {45.5, 60.25};
    rec.dispatched = {7};
    rec.reason = "machine_full";
    tracer.record_tick(rec);
  }  // destructor closes
  const std::vector<std::string> lines =
      read_lines(path + Tracer::kDecisionLogSuffix);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];

  std::string error;
  EXPECT_TRUE(testjson::is_valid_json(line, &error)) << error;

  // The documented key order (DESIGN.md): sim, t, period, free_before,
  // free_after, queue, passes, window, dispatched, reason.
  std::size_t last = 0;
  for (const char* key :
       {"\"sim\"", "\"t\"", "\"period\"", "\"free_before\"",
        "\"free_after\"", "\"queue\"", "\"passes\"", "\"window\"",
        "\"dispatched\"", "\"reason\""}) {
    const std::size_t at = line.find(key);
    ASSERT_NE(at, std::string::npos) << key;
    EXPECT_GT(at, last) << key << " out of order";
    last = at;
  }
  EXPECT_NE(line.find("\"sim\": \"FCFS/test\""), std::string::npos);
  EXPECT_NE(line.find("\"t\": 1200"), std::string::npos);
  EXPECT_NE(line.find("{\"id\": 7, \"power\": 45.5}"), std::string::npos);
  EXPECT_NE(line.find("\"dispatched\": [7]"), std::string::npos);
  EXPECT_NE(line.find("\"reason\": \"machine_full\""), std::string::npos);
  remove_outputs(path);
}

TEST_F(ObsTracerTest, CompleteSpanEmitsXEventsOnExplicitTracks) {
  const std::string path = trace_path("obs_tracer_complete");
  {
    Tracer tracer;
    tracer.open(path);
    const auto now = std::chrono::steady_clock::now();
    tracer.complete_span("worker:0", "proc", now,
                         now + std::chrono::milliseconds(5), 1000);
    // Overlapping span on the same track — legal for "X" events, which is
    // the whole reason complete_span exists (B/E must nest).
    tracer.complete_span("task:greedy#0", "proc", now,
                         now + std::chrono::milliseconds(3), 1000);
    // End before begin is clamped to a zero-length span, not negative.
    tracer.complete_span("clamped", "proc",
                         now + std::chrono::milliseconds(2), now, 1001);
    tracer.close();
  }
  std::string error;
  const std::string content = read_file(path);
  EXPECT_TRUE(testjson::is_valid_json(content, &error)) << error;
  const std::vector<Event> events = parse_chrome_events(path);
  ASSERT_EQ(events.size(), 3u);
  for (const Event& e : events) EXPECT_EQ(e.phase, 'X') << e.name;
  EXPECT_EQ(events[0].tid, 1000);
  EXPECT_EQ(events[2].tid, 1001);
  expect_balanced_spans(events);  // X events never unbalance
  // The clamped span must carry a non-negative duration.
  EXPECT_EQ(content.find("\"dur\": -"), std::string::npos);
  remove_outputs(path);
}

TEST_F(ObsTracerTest, EveryRecordIsDurableBeforeClose) {
  // Crash hygiene: both sinks are flushed after every record_tick, so a
  // process SIGKILLed mid-run (no destructor, no close()) still leaves
  // every already-recorded decision parseable on disk. Simulated here by
  // reading the files while the tracer is open with records buffered
  // in ofstreams that were never closed.
  const std::string path = trace_path("obs_tracer_durable");
  Tracer tracer;
  tracer.open(path);
  TickRecord rec;
  rec.sim = "FCFS/durability";
  rec.time = 600;
  rec.period = "off_peak";
  rec.dispatched = {1, 2};
  rec.reason = "queue_empty";
  tracer.record_tick(rec);
  rec.time = 1200;
  tracer.record_tick(rec);

  // Decision log: both lines fully on disk, each independently parseable
  // (that is what "a valid JSONL prefix" means).
  const std::vector<std::string> lines =
      read_lines(path + Tracer::kDecisionLogSuffix);
  ASSERT_EQ(lines.size(), 2u);
  std::string error;
  for (const std::string& line : lines) {
    EXPECT_TRUE(testjson::is_valid_json(line, &error)) << error;
    EXPECT_NE(line.find("\"sim\": \"FCFS/durability\""), std::string::npos);
  }
  // Chrome sink: flushed too. The file is a prefix (no "]}" footer yet) —
  // recoverable by appending the footer, which is the documented contract.
  const std::string chrome = read_file(path);
  EXPECT_NE(chrome.find("{\"traceEvents\": ["), std::string::npos);
  EXPECT_TRUE(testjson::is_valid_json(chrome + "]}", &error))
      << error << "\n"
      << chrome;

  tracer.close();
  remove_outputs(path);
}

TEST_F(ObsTracerTest, SimulationDecisionLogMatchesSimResult) {
  trace::Trace t = trace::make_anl_bgp_like(1, 7);
  t = trace::take_first(t, 80);
  power::assign_profiles(t, power::ProfileConfig{}, 7);
  power::OnOffPeakPricing pricing(0.03, 3.0);
  core::FcfsPolicy policy;

  const std::string path = trace_path("obs_tracer_sim");
  Tracer tracer;
  tracer.open(path);
  sim::SimConfig config;
  config.tracer = &tracer;
  const sim::SimResult result = sim::simulate(t, pricing, policy, config);
  tracer.close();

  // Chrome side: valid JSON, balanced phase spans.
  std::string error;
  EXPECT_TRUE(testjson::is_valid_json(read_file(path), &error)) << error;
  expect_balanced_spans(parse_chrome_events(path));

  // Decision side: rebuild time -> dispatched ids from the JSONL log.
  std::map<long long, std::set<long long>> dispatched_at;
  std::size_t total_dispatched = 0;
  for (const std::string& line :
       read_lines(path + Tracer::kDecisionLogSuffix)) {
    EXPECT_TRUE(testjson::is_valid_json(line, &error)) << error;
    const std::size_t t_at = line.find("\"t\": ");
    ASSERT_NE(t_at, std::string::npos);
    const long long tick_time = std::stoll(line.substr(t_at + 5));
    const std::size_t d_at = line.find("\"dispatched\": [");
    ASSERT_NE(d_at, std::string::npos);
    std::size_t cursor = d_at + 15;
    while (line[cursor] != ']') {
      if (line[cursor] == ',' || line[cursor] == ' ') {
        ++cursor;
        continue;
      }
      std::size_t consumed = 0;
      const long long id = std::stoll(line.substr(cursor), &consumed);
      dispatched_at[tick_time].insert(id);
      ++total_dispatched;
      cursor += consumed;
    }
  }

  // Every job's recorded start tick must have logged its dispatch, and
  // the log must contain nothing beyond the result's jobs (union ==).
  ASSERT_FALSE(result.records.empty());
  EXPECT_EQ(total_dispatched, result.records.size());
  for (const sim::JobRecord& r : result.records) {
    const auto tick = dispatched_at.find(r.start);
    ASSERT_NE(tick, dispatched_at.end())
        << "job " << r.id << " started at " << r.start
        << " but no tick logged a dispatch then";
    EXPECT_EQ(tick->second.count(r.id), 1u)
        << "job " << r.id << " missing from its start tick";
  }
  remove_outputs(path);
}

}  // namespace
}  // namespace esched::obs
