// Tests for the fairness/responsiveness metrics.
#include "metrics/fairness.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace esched::metrics {
namespace {

sim::JobRecord rec(JobId id, TimeSec submit, TimeSec start, TimeSec finish,
                   int user = 0) {
  return sim::JobRecord{id, submit, start, finish, 4, 30.0, user};
}

TEST(BoundedSlowdownTest, KnownValues) {
  // wait 100, run 100 -> (100+100)/100 = 2.
  EXPECT_DOUBLE_EQ(bounded_slowdown(rec(1, 0, 100, 200)), 2.0);
  // No wait -> 1.
  EXPECT_DOUBLE_EQ(bounded_slowdown(rec(1, 0, 0, 100)), 1.0);
  // Tiny job: run 1 s, wait 9 s, tau 10 -> (9+1)/10 = 1 (clamped at 1),
  // not the unbounded 10.
  EXPECT_DOUBLE_EQ(bounded_slowdown(rec(1, 0, 9, 10)), 1.0);
  // Tiny job with long wait: (100+1)/10 = 10.1.
  EXPECT_DOUBLE_EQ(bounded_slowdown(rec(1, 0, 100, 101)), 10.1);
  EXPECT_THROW(bounded_slowdown(rec(1, 0, 0, 100), 0), Error);
}

TEST(JainIndexTest, KnownValues) {
  const std::vector<double> equal{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_index(equal), 1.0);
  const std::vector<double> one_hot{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(one_hot), 0.25);
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(jain_index(empty), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(jain_index(negative), Error);
}

TEST(FairnessReportTest, AggregatesAcrossJobsAndUsers) {
  sim::SimResult r;
  r.system_nodes = 64;
  r.horizon_begin = 0;
  r.horizon_end = 1000;
  // User 0: waits 0 and 100. User 1: wait 300.
  r.records = {
      rec(1, 0, 0, 100, 0),      // slowdown 1
      rec(2, 0, 100, 200, 0),    // slowdown 2
      rec(3, 0, 300, 400, 1),    // slowdown 4
  };
  const FairnessReport report = fairness_report(r);
  EXPECT_DOUBLE_EQ(report.mean_bounded_slowdown, (1.0 + 2.0 + 4.0) / 3.0);
  EXPECT_DOUBLE_EQ(report.max_bounded_slowdown, 4.0);
  EXPECT_EQ(report.max_wait, 300);
  EXPECT_EQ(report.users, 2u);
  // User means: 50 and 300 -> Jain = (350)^2 / (2*(2500+90000)).
  EXPECT_NEAR(report.jain_index_user_wait,
              350.0 * 350.0 / (2.0 * (2500.0 + 90000.0)), 1e-12);
}

TEST(FairnessReportTest, EmptyResult) {
  sim::SimResult r;
  const FairnessReport report = fairness_report(r);
  EXPECT_DOUBLE_EQ(report.mean_bounded_slowdown, 0.0);
  EXPECT_EQ(report.users, 0u);
  EXPECT_DOUBLE_EQ(report.jain_index_user_wait, 1.0);
}

TEST(FairnessReportTest, P95TracksTail) {
  sim::SimResult r;
  r.system_nodes = 4;
  r.horizon_end = 100000;
  for (int i = 0; i < 99; ++i) {
    r.records.push_back(rec(i, 0, 0, 100));  // slowdown 1
  }
  r.records.push_back(rec(99, 0, 900, 1000));  // slowdown 10
  const FairnessReport report = fairness_report(r);
  EXPECT_GT(report.p95_bounded_slowdown, 0.99);
  EXPECT_LT(report.p95_bounded_slowdown, 10.0);
  EXPECT_DOUBLE_EQ(report.max_bounded_slowdown, 10.0);
}

}  // namespace
}  // namespace esched::metrics
