// Tests for trace transformations.
#include "trace/transforms.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace esched::trace {
namespace {

Job make_job(JobId id, TimeSec submit) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.nodes = 4;
  j.runtime = 600;
  j.walltime = 900;
  j.power_per_node = 25.0;
  return j;
}

Trace make_trace() {
  Trace t("orig", 64);
  t.add_job(make_job(1, 100));
  t.add_job(make_job(2, 200));
  t.add_job(make_job(3, 400));
  t.add_job(make_job(4, 1000));
  return t;
}

TEST(TransformsTest, ScaleArrivalsShrinksGaps) {
  const Trace t = make_trace();
  // The paper's "decrease arrival intervals by 40%" = factor 0.6.
  const Trace s = scale_arrivals(t, 0.6);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0].submit, 100);                 // first job anchored
  EXPECT_EQ(s[1].submit, 100 + 60);            // gap 100 -> 60
  EXPECT_EQ(s[2].submit, 100 + 60 + 120);      // gap 200 -> 120
  EXPECT_EQ(s[3].submit, 100 + 60 + 120 + 360);  // gap 600 -> 360
  // Everything else preserved.
  EXPECT_EQ(s[2].id, 3);
  EXPECT_EQ(s[2].runtime, 600);
}

TEST(TransformsTest, ScaleArrivalsIdentity) {
  const Trace t = make_trace();
  const Trace s = scale_arrivals(t, 1.0);
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_EQ(s[i].submit, t[i].submit);
}

TEST(TransformsTest, ScaleArrivalsExpands) {
  const Trace t = make_trace();
  const Trace s = scale_arrivals(t, 2.0);
  EXPECT_EQ(s[3].submit, 100 + 2 * 900);
}

TEST(TransformsTest, ScaleArrivalsRejectsNonPositive) {
  const Trace t = make_trace();
  EXPECT_THROW(scale_arrivals(t, 0.0), Error);
  EXPECT_THROW(scale_arrivals(t, -1.0), Error);
}

TEST(TransformsTest, ScaleArrivalsRoundingStaysBounded) {
  // Irrational-ish factor over many jobs: cumulative rounding must not
  // drift (we accumulate in double and round once per job).
  Trace t("long", 8);
  for (int i = 0; i < 1000; ++i)
    t.add_job(make_job(i + 1, static_cast<TimeSec>(i) * 7));
  const double factor = 1.0 / 3.0;
  const Trace s = scale_arrivals(t, factor);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double expected = 0.0 + static_cast<double>(7 * i) * factor;
    EXPECT_NEAR(static_cast<double>(s[i].submit), expected, 0.51);
  }
}

TEST(TransformsTest, ClipWindowKeepsHalfOpenRange) {
  const Trace t = make_trace();
  const Trace c = clip_window(t, 200, 1000);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].id, 2);
  EXPECT_EQ(c[1].id, 3);
  EXPECT_THROW(clip_window(t, 10, 10), Error);
}

TEST(TransformsTest, TakeFirst) {
  const Trace t = make_trace();
  EXPECT_EQ(take_first(t, 2).size(), 2u);
  EXPECT_EQ(take_first(t, 0).size(), 0u);
  EXPECT_EQ(take_first(t, 99).size(), 4u);
}

TEST(TransformsTest, RebaseShiftsAllSubmits) {
  const Trace t = make_trace();
  const Trace r = rebase(t, 0);
  EXPECT_EQ(r[0].submit, 0);
  EXPECT_EQ(r[3].submit, 900);
  const Trace r2 = rebase(t, 5000);
  EXPECT_EQ(r2[0].submit, 5000);
  EXPECT_EQ(r2[3].submit, 5900);
}

TEST(TransformsTest, RenumberAssignsSequentialIds) {
  Trace t("gap", 64);
  t.add_job(make_job(100, 0));
  t.add_job(make_job(7, 50));
  t.add_job(make_job(999, 60));
  const Trace r = renumber(t);
  EXPECT_EQ(r[0].id, 1);
  EXPECT_EQ(r[1].id, 2);
  EXPECT_EQ(r[2].id, 3);
}

TEST(TransformsTest, InputNeverMutated) {
  const Trace t = make_trace();
  (void)scale_arrivals(t, 0.5);
  (void)clip_window(t, 0, 500);
  (void)rebase(t, 0);
  (void)renumber(t);
  EXPECT_EQ(t[0].submit, 100);
  EXPECT_EQ(t[0].id, 1);
  EXPECT_EQ(t.size(), 4u);
}

}  // namespace
}  // namespace esched::trace
