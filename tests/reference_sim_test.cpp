// Property test: the event-driven simulator must agree exactly with a
// naive second-by-second reference simulator that shares the Scheduler
// but nothing else. The reference walks wall-clock seconds one at a time
// (processing finishes, then submissions, then — on tick boundaries —
// scheduling passes, exactly the event queue's same-time ordering) and
// integrates the bill per second. Any divergence in start/finish times,
// energy, or bill exposes a bug in the event engine's tick
// materialisation, ordering, or billing boundary handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "core/scheduler.hpp"
#include "power/pricing.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace esched {
namespace {

struct NaiveResult {
  std::map<JobId, TimeSec> start;
  std::map<JobId, TimeSec> finish;
  double energy = 0.0;
  double bill = 0.0;
};

NaiveResult naive_simulate(const trace::Trace& trace,
                           const power::PricingModel& pricing,
                           core::SchedulingPolicy& policy,
                           DurationSec tick_interval) {
  core::Scheduler scheduler(policy, core::SchedulerConfig{});
  NaiveResult out;
  if (trace.empty()) return out;

  struct Waiting {
    core::PendingJob pending;
    DurationSec runtime;
  };
  struct Running {
    JobId id;
    NodeCount nodes;
    Watts watts_per_node;
    TimeSec est_end;
    TimeSec real_end;
  };
  std::vector<Waiting> queue;
  std::vector<Running> running;
  NodeCount free = trace.system_nodes();
  std::size_t next_submit = 0;
  const TimeSec t0 = trace.first_submit();

  for (TimeSec t = t0;; ++t) {
    // 1. Finishes.
    for (std::size_t i = 0; i < running.size();) {
      if (running[i].real_end == t) {
        free += running[i].nodes;
        out.finish[running[i].id] = t;
        running.erase(running.begin() +
                      static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    // 2. Submissions (trace is sorted by submit, ties by id).
    while (next_submit < trace.size() &&
           trace[next_submit].submit == t) {
      const trace::Job& j = trace[next_submit];
      queue.push_back({{j.id, j.submit, j.nodes, j.walltime,
                        j.power_per_node},
                       j.runtime});
      ++next_submit;
    }
    // 3. Scheduling at tick boundaries (run to quiescence).
    if (t % tick_interval == 0) {
      while (!queue.empty() && free > 0) {
        std::vector<core::PendingJob> pending;
        pending.reserve(queue.size());
        for (const Waiting& w : queue) pending.push_back(w.pending);
        std::vector<core::RunningJob> occupancy;
        occupancy.reserve(running.size());
        for (const Running& r : running)
          occupancy.push_back({r.nodes, r.est_end});
        const core::ScheduleContext ctx{
            t, free, trace.system_nodes(), pricing.period_at(t),
            0.0, pricing.next_price_change(t)};
        const auto starts = scheduler.decide(ctx, pending, occupancy);
        if (starts.empty()) break;
        std::vector<bool> started(queue.size(), false);
        for (const std::size_t qi : starts) {
          const Waiting& w = queue[qi];
          started[qi] = true;
          free -= w.pending.nodes;
          out.start[w.pending.id] = t;
          running.push_back({w.pending.id, w.pending.nodes,
                             w.pending.power_per_node,
                             t + w.pending.walltime, t + w.runtime});
        }
        std::vector<Waiting> remaining;
        for (std::size_t i = 0; i < queue.size(); ++i)
          if (!started[i]) remaining.push_back(queue[i]);
        queue = std::move(remaining);
      }
    }
    // 4. Metering over [t, t+1).
    double watts = 0.0;
    for (const Running& r : running)
      watts += r.watts_per_node * static_cast<double>(r.nodes);
    out.energy += watts;
    out.bill += joules_to_kwh(watts) * pricing.price_at(t);

    if (queue.empty() && running.empty() && next_submit == trace.size())
      break;
  }
  return out;
}

trace::Trace random_trace(Rng& rng) {
  trace::Trace t("ref", 16);
  const auto jobs = static_cast<std::size_t>(rng.uniform_int(5, 30));
  for (std::size_t i = 0; i < jobs; ++i) {
    trace::Job j;
    j.id = static_cast<JobId>(i + 1);
    j.submit = rng.uniform_int(0, 300);
    j.nodes = rng.uniform_int(1, 16);
    j.runtime = rng.uniform_int(1, 60);
    j.walltime = j.runtime + rng.uniform_int(0, 30);
    j.power_per_node = rng.uniform(20.0, 60.0);
    j.user = static_cast<int>(rng.uniform_int(0, 3));
    t.add_job(j);
  }
  t.finalize();
  return t;
}

class ReferenceSimProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ReferenceSimProperty, EventEngineMatchesNaiveStepper) {
  Rng rng(GetParam());
  // Price boundaries every 120 s so runs of a few hundred seconds cross
  // several on/off flips.
  power::OnOffPeakPricing pricing(36.0, 3.0, /*on_peak_start=*/0,
                                  /*on_peak_end=*/120);
  for (int round = 0; round < 10; ++round) {
    const trace::Trace t = random_trace(rng);
    for (const DurationSec tick : {DurationSec{1}, DurationSec{7},
                                   DurationSec{10}}) {
      for (int which = 0; which < 3; ++which) {
        core::FcfsPolicy fcfs;
        core::GreedyPowerPolicy greedy;
        core::KnapsackPolicy knapsack;
        core::SchedulingPolicy& policy =
            which == 0 ? static_cast<core::SchedulingPolicy&>(fcfs)
            : which == 1 ? static_cast<core::SchedulingPolicy&>(greedy)
                         : static_cast<core::SchedulingPolicy&>(knapsack);

        sim::SimConfig cfg;
        cfg.tick_interval = tick;
        cfg.record_daily_curves = false;
        const sim::SimResult ev = sim::simulate(t, pricing, policy, cfg);
        const NaiveResult naive =
            naive_simulate(t, pricing, policy, tick);

        for (const sim::JobRecord& r : ev.records) {
          ASSERT_EQ(naive.start.at(r.id), r.start)
              << "policy=" << policy.name() << " tick=" << tick
              << " job=" << r.id;
          ASSERT_EQ(naive.finish.at(r.id), r.finish)
              << "policy=" << policy.name() << " tick=" << tick
              << " job=" << r.id;
        }
        EXPECT_NEAR(ev.total_energy, naive.energy, 1e-6);
        EXPECT_NEAR(ev.total_bill, naive.bill, 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceSimProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace esched
