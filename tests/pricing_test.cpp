// Tests for the electricity pricing models.
#include "power/pricing.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::power {
namespace {

constexpr TimeSec kNoon = 12 * kSecondsPerHour;

TEST(OnOffPeakTest, PaperTariffPeriods) {
  OnOffPeakPricing p(0.03, 3.0);
  // Off-peak midnight..noon, on-peak noon..midnight (paper §5.3).
  EXPECT_EQ(p.period_at(0), PricePeriod::kOffPeak);
  EXPECT_EQ(p.period_at(kNoon - 1), PricePeriod::kOffPeak);
  EXPECT_EQ(p.period_at(kNoon), PricePeriod::kOnPeak);
  EXPECT_EQ(p.period_at(kSecondsPerDay - 1), PricePeriod::kOnPeak);
  EXPECT_EQ(p.period_at(kSecondsPerDay), PricePeriod::kOffPeak);
  // Repeats on later days.
  EXPECT_EQ(p.period_at(5 * kSecondsPerDay + kNoon + 10),
            PricePeriod::kOnPeak);
}

TEST(OnOffPeakTest, PricesFollowRatio) {
  OnOffPeakPricing p(0.05, 4.0);
  EXPECT_DOUBLE_EQ(p.price_at(0), 0.05);
  EXPECT_DOUBLE_EQ(p.price_at(kNoon), 0.20);
  EXPECT_DOUBLE_EQ(p.off_peak_price(), 0.05);
  EXPECT_DOUBLE_EQ(p.on_peak_price(), 0.20);
}

TEST(OnOffPeakTest, NextPriceChangeBoundaries) {
  OnOffPeakPricing p(0.03, 3.0);
  EXPECT_EQ(p.next_price_change(0), kNoon);
  EXPECT_EQ(p.next_price_change(kNoon - 1), kNoon);
  EXPECT_EQ(p.next_price_change(kNoon), kSecondsPerDay);
  EXPECT_EQ(p.next_price_change(kSecondsPerDay - 1), kSecondsPerDay);
  EXPECT_EQ(p.next_price_change(kSecondsPerDay), kSecondsPerDay + kNoon);
}

TEST(OnOffPeakTest, CustomWindow) {
  // On-peak 08:00-18:00.
  OnOffPeakPricing p(0.03, 2.0, 8 * kSecondsPerHour, 18 * kSecondsPerHour);
  EXPECT_EQ(p.period_at(7 * kSecondsPerHour), PricePeriod::kOffPeak);
  EXPECT_EQ(p.period_at(8 * kSecondsPerHour), PricePeriod::kOnPeak);
  EXPECT_EQ(p.period_at(18 * kSecondsPerHour), PricePeriod::kOffPeak);
  EXPECT_EQ(p.next_price_change(0), 8 * kSecondsPerHour);
  EXPECT_EQ(p.next_price_change(9 * kSecondsPerHour), 18 * kSecondsPerHour);
  EXPECT_EQ(p.next_price_change(20 * kSecondsPerHour), kSecondsPerDay);
}

TEST(OnOffPeakTest, RejectsBadParameters) {
  EXPECT_THROW(OnOffPeakPricing(0.0, 3.0), Error);
  EXPECT_THROW(OnOffPeakPricing(0.03, 0.5), Error);
  EXPECT_THROW(OnOffPeakPricing(0.03, 3.0, kNoon, kNoon), Error);
  EXPECT_THROW(OnOffPeakPricing(0.03, 3.0, 0, kSecondsPerDay + 1), Error);
}

// Property sweep over the paper's pricing ratios: price never leaves
// {off, off*ratio} and the period labelling matches the dearer price.
class RatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(RatioSweep, PriceAlwaysConsistentWithPeriod) {
  const double ratio = GetParam();
  OnOffPeakPricing p(0.03, ratio);
  for (TimeSec t = 0; t < 2 * kSecondsPerDay; t += 977) {
    const Money price = p.price_at(t);
    if (p.period_at(t) == PricePeriod::kOnPeak) {
      EXPECT_DOUBLE_EQ(price, 0.03 * ratio);
    } else {
      EXPECT_DOUBLE_EQ(price, 0.03);
    }
  }
}

TEST_P(RatioSweep, BoundariesAdvanceAndAgree) {
  const double ratio = GetParam();
  OnOffPeakPricing p(0.03, ratio);
  TimeSec t = 0;
  for (int i = 0; i < 50; ++i) {
    const TimeSec next = p.next_price_change(t);
    ASSERT_GT(next, t);
    // Price is constant inside (t, next).
    EXPECT_DOUBLE_EQ(p.price_at(t), p.price_at(next - 1));
    t = next;
  }
  EXPECT_EQ(t, 25 * kSecondsPerDay);  // two boundaries per day
}

INSTANTIATE_TEST_SUITE_P(PaperRatios, RatioSweep,
                         ::testing::Values(1.0, 2.0, 3.0, 4.0, 5.0, 10.0));

TEST(OnOffPeakTest, WeekendsCanBeOffPeak) {
  OnOffPeakPricing p(0.03, 3.0, 12 * kSecondsPerHour, kSecondsPerDay,
                     /*weekends_off_peak=*/true);
  // Day 0-4 are weekdays, 5-6 weekend (epoch convention).
  const TimeSec weekday_afternoon = 2 * kSecondsPerDay + 15 * kSecondsPerHour;
  const TimeSec saturday_afternoon = 5 * kSecondsPerDay + 15 * kSecondsPerHour;
  const TimeSec sunday_morning = 6 * kSecondsPerDay + 3 * kSecondsPerHour;
  EXPECT_EQ(p.period_at(weekday_afternoon), PricePeriod::kOnPeak);
  EXPECT_EQ(p.period_at(saturday_afternoon), PricePeriod::kOffPeak);
  EXPECT_EQ(p.period_at(sunday_morning), PricePeriod::kOffPeak);
  EXPECT_DOUBLE_EQ(p.price_at(saturday_afternoon), 0.03);
  // Weekend boundaries collapse to midnights.
  EXPECT_EQ(p.next_price_change(saturday_afternoon), 6 * kSecondsPerDay);
  // The following Monday behaves like a weekday again.
  EXPECT_EQ(p.period_at(7 * kSecondsPerDay + 15 * kSecondsPerHour),
            PricePeriod::kOnPeak);
}

TEST(OnOffPeakTest, WeekendFlagOffKeepsWeekendOnPeak) {
  OnOffPeakPricing p(0.03, 3.0);
  const TimeSec saturday_afternoon = 5 * kSecondsPerDay + 15 * kSecondsPerHour;
  EXPECT_EQ(p.period_at(saturday_afternoon), PricePeriod::kOnPeak);
}

TEST(FlatPricingTest, ConstantEverywhere) {
  FlatPricing p(0.07);
  EXPECT_DOUBLE_EQ(p.price_at(0), 0.07);
  EXPECT_DOUBLE_EQ(p.price_at(123456789), 0.07);
  EXPECT_EQ(p.period_at(kNoon + 1), PricePeriod::kOffPeak);
  EXPECT_EQ(p.next_price_change(10), kSecondsPerDay);
  EXPECT_THROW(FlatPricing(0.0), Error);
}

TEST(TouPricingTest, TiersApplyBySecondOfDay) {
  // Three tiers: night 0.02, shoulder 0.04 from 06:00, peak 0.09 from 17:00.
  TouPricing p({{0, 0.02},
                {6 * kSecondsPerHour, 0.04},
                {17 * kSecondsPerHour, 0.09}},
               /*on_peak_threshold=*/0.09);
  EXPECT_DOUBLE_EQ(p.price_at(0), 0.02);
  EXPECT_DOUBLE_EQ(p.price_at(6 * kSecondsPerHour - 1), 0.02);
  EXPECT_DOUBLE_EQ(p.price_at(6 * kSecondsPerHour), 0.04);
  EXPECT_DOUBLE_EQ(p.price_at(17 * kSecondsPerHour + 5), 0.09);
  EXPECT_EQ(p.period_at(18 * kSecondsPerHour), PricePeriod::kOnPeak);
  EXPECT_EQ(p.period_at(7 * kSecondsPerHour), PricePeriod::kOffPeak);
  // Next-day wrap.
  EXPECT_DOUBLE_EQ(p.price_at(kSecondsPerDay + 1), 0.02);
}

TEST(TouPricingTest, NextChangeWalksTiers) {
  TouPricing p({{0, 0.02}, {6 * kSecondsPerHour, 0.04}}, 0.04);
  EXPECT_EQ(p.next_price_change(0), 6 * kSecondsPerHour);
  EXPECT_EQ(p.next_price_change(6 * kSecondsPerHour), kSecondsPerDay);
  EXPECT_EQ(p.next_price_change(kSecondsPerDay),
            kSecondsPerDay + 6 * kSecondsPerHour);
}

TEST(TouPricingTest, RejectsBadTiers) {
  EXPECT_THROW(TouPricing({}, 0.1), Error);
  EXPECT_THROW(TouPricing({{100, 0.02}}, 0.1), Error);  // must start at 0
  EXPECT_THROW(TouPricing({{0, 0.02}, {0, 0.04}}, 0.1), Error);
  EXPECT_THROW(TouPricing({{0, -0.02}}, 0.1), Error);
}

TEST(HourlySeriesTest, CyclesThroughPrices) {
  HourlyPriceSeries p({0.02, 0.05, 0.11});
  EXPECT_DOUBLE_EQ(p.price_at(0), 0.02);
  EXPECT_DOUBLE_EQ(p.price_at(kSecondsPerHour), 0.05);
  EXPECT_DOUBLE_EQ(p.price_at(2 * kSecondsPerHour + 30), 0.11);
  EXPECT_DOUBLE_EQ(p.price_at(3 * kSecondsPerHour), 0.02);  // wraps
  EXPECT_DOUBLE_EQ(p.median_price(), 0.05);
  EXPECT_EQ(p.period_at(0), PricePeriod::kOffPeak);
  EXPECT_EQ(p.period_at(kSecondsPerHour), PricePeriod::kOnPeak);  // >= median
  EXPECT_EQ(p.next_price_change(10), kSecondsPerHour);
  EXPECT_THROW(HourlyPriceSeries({}), Error);
  EXPECT_THROW(HourlyPriceSeries({0.0}), Error);
}

TEST(PaperTariffTest, FactoryMatchesDefaults) {
  const auto p = make_paper_tariff();
  EXPECT_EQ(p->period_at(0), PricePeriod::kOffPeak);
  EXPECT_EQ(p->period_at(kNoon), PricePeriod::kOnPeak);
  EXPECT_DOUBLE_EQ(p->price_at(kNoon) / p->price_at(0), 3.0);
  const auto p5 = make_paper_tariff(5.0);
  EXPECT_DOUBLE_EQ(p5->price_at(kNoon) / p5->price_at(0), 5.0);
}

}  // namespace
}  // namespace esched::power
