// Tests for the Standard Workload Format reader/writer.
#include "trace/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace esched::trace::swf {
namespace {

Job make_job(JobId id, TimeSec submit, NodeCount nodes, DurationSec runtime,
             Watts power = 0.0) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.nodes = nodes;
  j.runtime = runtime;
  j.walltime = runtime + 300;
  j.power_per_node = power;
  j.user = 7;
  return j;
}

TEST(SwfTest, ParsesMinimalFile) {
  std::istringstream in(
      "; MaxNodes: 128\n"
      "\n"
      "; some comment\n"
      "1 0 -1 3600 16 -1 -1 16 7200 -1 1 3 -1 -1 -1 -1 -1 -1\n"
      "2 60 -1 600 -1 -1 -1 32 900 -1 1 4 -1 -1 -1 -1 -1 -1\n");
  const Trace t = load(in, "mini");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.system_nodes(), 128);
  EXPECT_EQ(t[0].id, 1);
  EXPECT_EQ(t[0].submit, 0);
  EXPECT_EQ(t[0].runtime, 3600);
  EXPECT_EQ(t[0].nodes, 16);
  EXPECT_EQ(t[0].walltime, 7200);
  EXPECT_EQ(t[0].user, 3);
  EXPECT_EQ(t[1].nodes, 32);  // requested procs used directly
}

TEST(SwfTest, MaxProcsFallback) {
  std::istringstream in(
      "; MaxProcs: 64\n"
      "1 0 -1 60 8 -1 -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  const Trace t = load(in, "t");
  EXPECT_EQ(t.system_nodes(), 64);
}

TEST(SwfTest, MissingSystemSizeThrowsUnlessDefaulted) {
  std::istringstream in("1 0 -1 60 8 -1 -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  EXPECT_THROW(load(in, "t"), Error);
  std::istringstream in2("1 0 -1 60 8 -1 -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  LoadOptions opt;
  opt.default_system_nodes = 256;
  EXPECT_EQ(load(in2, "t", opt).system_nodes(), 256);
}

TEST(SwfTest, SkipsFailedJobsWhenCompletedOnly) {
  std::istringstream in(
      "; MaxNodes: 64\n"
      "1 0 -1 60 8 -1 -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n"
      "2 1 -1 60 8 -1 -1 8 60 -1 0 0 -1 -1 -1 -1 -1 -1\n"   // failed
      "3 2 -1 60 8 -1 -1 8 60 -1 5 0 -1 -1 -1 -1 -1 -1\n"   // cancelled
      "4 3 -1 60 8 -1 -1 8 60 -1 -1 0 -1 -1 -1 -1 -1 -1\n"); // unknown: keep
  const Trace t = load(in, "t");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].id, 1);
  EXPECT_EQ(t[1].id, 4);
}

TEST(SwfTest, KeepsFailedJobsWhenAsked) {
  std::istringstream in(
      "; MaxNodes: 64\n"
      "1 0 -1 60 8 -1 -1 8 60 -1 0 0 -1 -1 -1 -1 -1 -1\n");
  LoadOptions opt;
  opt.completed_only = false;
  EXPECT_EQ(load(in, "t", opt).size(), 1u);
}

TEST(SwfTest, SkipsUnusableRecords) {
  std::istringstream in(
      "; MaxNodes: 64\n"
      "1 0 -1 -1 8 -1 -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n"   // no runtime
      "2 0 -1 60 -1 -1 -1 -1 60 -1 1 0 -1 -1 -1 -1 -1 -1\n" // no size
      "3 0 -1 60 8 -1 -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  const Trace t = load(in, "t");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].id, 3);
}

TEST(SwfTest, WalltimeFallsBackToRuntime) {
  std::istringstream in(
      "; MaxNodes: 64\n"
      "1 0 -1 60 8 -1 -1 8 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  const Trace t = load(in, "t");
  EXPECT_EQ(t[0].walltime, 60);
}

TEST(SwfTest, MalformedLineThrows) {
  std::istringstream in(
      "; MaxNodes: 64\n"
      "1 0 -1 60 8 banana -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  EXPECT_THROW(load(in, "t"), Error);
  std::istringstream in2(
      "; MaxNodes: 64\n"
      "1 0 -1 60\n");  // too few fields
  EXPECT_THROW(load(in2, "t"), Error);
}

TEST(SwfTest, MalformedLineErrorsCarryFileAndLinePosition) {
  // A garbled token names "<source>:<line>" and echoes the offender.
  std::istringstream in(
      "; MaxNodes: 64\n"
      "1 0 -1 60 8 -1 -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n"
      "2 0 -1 60 8 banana -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  try {
    load(in, "jobs.swf", {}, "/data/jobs.swf");
    FAIL() << "expected esched::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("/data/jobs.swf:3:"), std::string::npos) << what;
    EXPECT_NE(what.find("non-numeric token"), std::string::npos) << what;
    EXPECT_NE(what.find("banana"), std::string::npos) << what;
  }

  // A truncated record reports line, expected and actual field counts.
  std::istringstream in2(
      "; MaxNodes: 64\n"
      "1 0 -1 60\n");
  try {
    load(in2, "short.swf");
    FAIL() << "expected esched::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    // No explicit source: errors fall back to the trace name.
    EXPECT_NE(what.find("short.swf:2:"), std::string::npos) << what;
    EXPECT_NE(what.find("truncated record"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 18 fields, got 4"), std::string::npos)
        << what;
  }
}

TEST(SwfTest, RecoverableRepairsWarnOncePerKindWithTotals) {
  // Three skipped-for-no-runtime records and one walltime fallback: the
  // first occurrence of each kind prints with its position, further ones
  // are only counted, and a per-kind total closes the load.
  std::istringstream in(
      "; MaxNodes: 64\n"
      "1 0 -1 -1 8 -1 -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n"
      "2 0 -1 -1 8 -1 -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n"
      "3 0 -1 -1 8 -1 -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n"
      "4 0 -1 60 8 -1 -1 8 -1 -1 1 0 -1 -1 -1 -1 -1 -1\n"
      "5 1 -1 60 8 -1 -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  ::testing::internal::CaptureStderr();
  const Trace t = load(in, "warn.swf");
  const std::string err = ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(t.size(), 2u);

  // First occurrence printed once, with its line...
  const std::string first = "swf: warn.swf:2: record skipped: no usable "
                            "runtime (first 'record-without-runtime'";
  const std::size_t at = err.find(first);
  EXPECT_NE(at, std::string::npos) << err;
  EXPECT_EQ(err.find(first, at + 1), std::string::npos)
      << "printed more than once:\n"
      << err;
  // ...occurrences 2 and 3 only show up in the closing total...
  EXPECT_NE(err.find("swf: warn.swf: 3 records total with "
                     "'record-without-runtime'"),
            std::string::npos)
      << err;
  // ...and a single-occurrence kind gets no total line.
  EXPECT_NE(err.find("warn.swf:5: requested time missing"),
            std::string::npos)
      << err;
  EXPECT_EQ(err.find("records total with 'walltime-missing'"),
            std::string::npos)
      << err;
}

TEST(SwfTest, OverwideJobsWarnWhenClamped) {
  std::istringstream in(
      "; MaxNodes: 64\n"
      "1 0 -1 60 128 -1 -1 128 60 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  ::testing::internal::CaptureStderr();
  const Trace t = load(in, "wide.swf");
  const std::string err = ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].nodes, 64);
  EXPECT_NE(err.find("job wider than the machine clamped to 64 nodes"),
            std::string::npos)
      << err;
}

TEST(SwfTest, RoundTripWithoutPower) {
  Trace t("rt", 256);
  t.add_job(make_job(1, 0, 16, 3600));
  t.add_job(make_job(2, 60, 256, 600));
  std::ostringstream out;
  save(out, t, /*with_power_column=*/false);
  std::istringstream in(out.str());
  const Trace back = load(in, "rt");
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.system_nodes(), 256);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back[i].id, t[i].id);
    EXPECT_EQ(back[i].submit, t[i].submit);
    EXPECT_EQ(back[i].runtime, t[i].runtime);
    EXPECT_EQ(back[i].walltime, t[i].walltime);
    EXPECT_EQ(back[i].nodes, t[i].nodes);
    EXPECT_EQ(back[i].user, t[i].user);
    EXPECT_DOUBLE_EQ(back[i].power_per_node, 0.0);
  }
}

TEST(SwfTest, RoundTripWithPowerColumn) {
  Trace t("rt", 256);
  t.add_job(make_job(1, 0, 16, 3600, 23.456789));
  t.add_job(make_job(2, 60, 8, 600, 57.5));
  std::ostringstream out;
  save(out, t, /*with_power_column=*/true);
  EXPECT_NE(out.str().find("; PowerColumn: true"), std::string::npos);
  std::istringstream in(out.str());
  const Trace back = load(in, "rt");
  ASSERT_EQ(back.size(), 2u);
  EXPECT_NEAR(back[0].power_per_node, 23.456789, 1e-6);
  EXPECT_NEAR(back[1].power_per_node, 57.5, 1e-6);
}

TEST(SwfTest, LoadFileErrorsOnMissingPath) {
  EXPECT_THROW(load_file("/nonexistent/file.swf"), Error);
}

}  // namespace
}  // namespace esched::trace::swf
