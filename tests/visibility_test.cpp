// Tests for the scheduler power-visibility seam: truth/blind/noisy views
// and the online ProfileEstimator.
#include "power/visibility.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/profile.hpp"
#include "power/profile_estimator.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace esched::power {
namespace {

trace::Job make_job(JobId id, int user, NodeCount nodes, Watts power) {
  trace::Job j;
  j.id = id;
  j.submit = 0;
  j.nodes = nodes;
  j.runtime = 600;
  j.walltime = 900;
  j.power_per_node = power;
  j.user = user;
  return j;
}

TEST(VisibilityTest, TruthPassesThrough) {
  TruthVisibility v;
  EXPECT_DOUBLE_EQ(v.visible_power_per_node(make_job(1, 0, 4, 33.5)), 33.5);
  EXPECT_EQ(v.name(), "truth");
}

TEST(VisibilityTest, BlindIsConstant) {
  BlindVisibility v(42.0);
  EXPECT_DOUBLE_EQ(v.visible_power_per_node(make_job(1, 0, 4, 20.0)), 42.0);
  EXPECT_DOUBLE_EQ(v.visible_power_per_node(make_job(2, 0, 8, 60.0)), 42.0);
}

TEST(NoisyVisibilityTest, DeterministicPerJob) {
  NoisyVisibility v(0.2, 7);
  const trace::Job j = make_job(5, 0, 4, 40.0);
  const Watts first = v.visible_power_per_node(j);
  EXPECT_DOUBLE_EQ(v.visible_power_per_node(j), first);
  NoisyVisibility v2(0.2, 7);
  EXPECT_DOUBLE_EQ(v2.visible_power_per_node(j), first);
  NoisyVisibility other_seed(0.2, 8);
  EXPECT_NE(other_seed.visible_power_per_node(j), first);
}

TEST(NoisyVisibilityTest, ZeroSigmaIsTruth) {
  NoisyVisibility v(0.0, 7);
  EXPECT_DOUBLE_EQ(v.visible_power_per_node(make_job(1, 0, 4, 40.0)), 40.0);
  EXPECT_THROW(NoisyVisibility(-0.1, 7), Error);
}

TEST(NoisyVisibilityTest, ErrorScalesWithSigma) {
  NoisyVisibility small(0.05, 3);
  NoisyVisibility big(0.5, 3);
  RunningStats err_small;
  RunningStats err_big;
  for (JobId id = 1; id <= 2000; ++id) {
    const trace::Job j = make_job(id, 0, 4, 40.0);
    err_small.add(std::abs(
        std::log(small.visible_power_per_node(j) / 40.0)));
    err_big.add(std::abs(std::log(big.visible_power_per_node(j) / 40.0)));
  }
  EXPECT_LT(err_small.mean(), 0.08);
  EXPECT_GT(err_big.mean(), 0.25);
}

TEST(ProfileEstimatorTest, SizeClassBuckets) {
  EXPECT_EQ(ProfileEstimator::size_class(1), 0);
  EXPECT_EQ(ProfileEstimator::size_class(2), 1);
  EXPECT_EQ(ProfileEstimator::size_class(3), 2);
  EXPECT_EQ(ProfileEstimator::size_class(4), 2);
  EXPECT_EQ(ProfileEstimator::size_class(5), 3);
  EXPECT_EQ(ProfileEstimator::size_class(1024), 10);
  EXPECT_THROW(ProfileEstimator::size_class(0), Error);
}

TEST(ProfileEstimatorTest, StartsAtDefaultThenLearns) {
  ProfileEstimator::Config cfg;
  cfg.default_watts = 40.0;
  cfg.min_samples = 2;
  ProfileEstimator est(cfg);

  const trace::Job j = make_job(1, 7, 16, 55.0);
  EXPECT_DOUBLE_EQ(est.visible_power_per_node(j), 40.0);  // no history

  est.on_job_complete(make_job(2, 7, 16, 50.0));
  EXPECT_DOUBLE_EQ(est.visible_power_per_node(j), 40.0);  // 1 < min_samples
  est.on_job_complete(make_job(3, 7, 16, 60.0));
  EXPECT_DOUBLE_EQ(est.visible_power_per_node(j), 55.0);  // (50+60)/2
  EXPECT_EQ(est.observations(), 2u);
}

TEST(ProfileEstimatorTest, FallbackHierarchy) {
  ProfileEstimator::Config cfg;
  cfg.default_watts = 40.0;
  cfg.min_samples = 1;
  ProfileEstimator est(cfg);

  // History only for user 7 at size class of 16 nodes.
  est.on_job_complete(make_job(1, 7, 16, 50.0));

  // Same user, different size class -> per-user fallback (same 50).
  EXPECT_DOUBLE_EQ(est.visible_power_per_node(make_job(2, 7, 256, 0.0)),
                   50.0);
  // Different user -> global fallback (still 50, it is the only sample).
  EXPECT_DOUBLE_EQ(est.visible_power_per_node(make_job(3, 8, 16, 0.0)),
                   50.0);

  // Add a second user's data; global mean shifts, user 7 stays specific.
  est.on_job_complete(make_job(4, 8, 16, 30.0));
  EXPECT_DOUBLE_EQ(est.visible_power_per_node(make_job(5, 9, 4, 0.0)),
                   40.0);  // global (50+30)/2
  EXPECT_DOUBLE_EQ(est.visible_power_per_node(make_job(6, 7, 16, 0.0)),
                   50.0);
}

TEST(ProfileEstimatorTest, HitRatesTrackPredictionSources) {
  ProfileEstimator::Config cfg;
  cfg.min_samples = 1;
  ProfileEstimator est(cfg);
  // First prediction: default.
  est.visible_power_per_node(make_job(1, 1, 4, 0.0));
  EXPECT_DOUBLE_EQ(est.default_rate(), 1.0);
  EXPECT_DOUBLE_EQ(est.specific_hit_rate(), 0.0);
  est.on_job_complete(make_job(1, 1, 4, 50.0));
  // Second: specific bucket.
  est.visible_power_per_node(make_job(2, 1, 4, 0.0));
  EXPECT_DOUBLE_EQ(est.specific_hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(est.default_rate(), 0.5);
}

TEST(ProfileEstimatorTest, RejectsBadConfig) {
  ProfileEstimator::Config cfg;
  cfg.default_watts = 0.0;
  EXPECT_THROW(ProfileEstimator{cfg}, Error);
  cfg = {};
  cfg.min_samples = 0;
  EXPECT_THROW(ProfileEstimator{cfg}, Error);
}

TEST(VisibilityIntegrationTest, BlindSchedulerLosesTheSavings) {
  trace::Trace t = trace::make_anl_bgp_like(1, 31);
  assign_profiles(t, ProfileConfig{}, 31);
  OnOffPeakPricing pricing(0.03, 3.0);

  core::FcfsPolicy fcfs;
  const sim::SimResult rf = sim::simulate(t, pricing, fcfs);

  core::GreedyPowerPolicy greedy;
  const sim::SimResult truth = sim::simulate(t, pricing, greedy);
  BlindVisibility blind(40.0);
  const sim::SimResult blinded =
      sim::simulate(t, pricing, greedy, {}, &blind);

  const double saving_truth = metrics::bill_saving_percent(rf, truth);
  const double saving_blind = metrics::bill_saving_percent(rf, blinded);
  // With a constant visible profile the power sort is a no-op: the blind
  // run must lose most of the informed run's savings.
  EXPECT_GT(saving_truth, 1.0);
  EXPECT_LT(std::abs(saving_blind), saving_truth * 0.5);
}

TEST(VisibilityIntegrationTest, EstimatorRecoversMostOfTheSavings) {
  // Repetitive jobs (high per-user power correlation) are exactly what
  // the paper's §3 argues makes profiles learnable.
  trace::Trace t = trace::make_anl_bgp_like(2, 32);
  ProfileConfig pcfg;
  pcfg.per_user_correlation = 0.9;
  assign_profiles(t, pcfg, 32);
  OnOffPeakPricing pricing(0.03, 3.0);

  core::FcfsPolicy fcfs;
  const sim::SimResult rf = sim::simulate(t, pricing, fcfs);
  core::GreedyPowerPolicy greedy;
  const sim::SimResult truth = sim::simulate(t, pricing, greedy);
  ProfileEstimator est;
  const sim::SimResult learned =
      sim::simulate(t, pricing, greedy, {}, &est);

  EXPECT_GT(est.observations(), 0u);
  EXPECT_GT(est.specific_hit_rate(), 0.25);
  const double saving_truth = metrics::bill_saving_percent(rf, truth);
  const double saving_learned = metrics::bill_saving_percent(rf, learned);
  EXPECT_GT(saving_learned, 0.25 * saving_truth);
}

TEST(VisibilityIntegrationTest, BillingAlwaysUsesGroundTruth) {
  trace::Trace t = trace::make_anl_bgp_like(1, 33);
  assign_profiles(t, ProfileConfig{}, 33);
  OnOffPeakPricing pricing(0.03, 3.0);
  core::FcfsPolicy fcfs;  // order ignores power, so schedules are equal
  const sim::SimResult truth = sim::simulate(t, pricing, fcfs);
  BlindVisibility blind(1.0);
  const sim::SimResult blinded =
      sim::simulate(t, pricing, fcfs, {}, &blind);
  // Same schedule, same *billed* energy despite the absurd visible power.
  EXPECT_DOUBLE_EQ(truth.total_energy, blinded.total_energy);
  EXPECT_DOUBLE_EQ(truth.total_bill, blinded.total_bill);
}

}  // namespace
}  // namespace esched::power
