// Tests for the parallel experiment runner, above all its determinism
// contract: a sweep run on 1 thread and on N threads yields bit-identical
// result vectors. scripts/tier1.sh also runs this binary under
// -DESCHED_SANITIZE=thread, which turns it into a structural data-race
// check of the whole simulate() path.
#include "run/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "core/policy.hpp"
#include "power/pricing.hpp"
#include "power/profile.hpp"
#include "run/spec.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace esched::run {
namespace {

std::shared_ptr<const trace::Trace> shared_test_trace() {
  static const auto t = [] {
    trace::Trace raw = trace::make_sdsc_blue_like(/*months=*/1, 2001);
    power::assign_profiles(raw, power::ProfileConfig{}, 2001);
    return std::make_shared<const trace::Trace>(std::move(raw));
  }();
  return t;
}

std::vector<SimJob> three_policy_sweep() {
  const auto trace = shared_test_trace();
  const std::shared_ptr<const power::PricingModel> tariff =
      power::make_paper_tariff(3.0);
  std::vector<SimJob> sweep;
  sweep.push_back({trace, tariff,
                   [] { return std::make_unique<core::FcfsPolicy>(); },
                   sim::SimConfig{}, "fcfs", nullptr});
  sweep.push_back(
      {trace, tariff,
       [] { return std::make_unique<core::GreedyPowerPolicy>(); },
       sim::SimConfig{}, "greedy", nullptr});
  sweep.push_back({trace, tariff,
                   [] { return std::make_unique<core::KnapsackPolicy>(); },
                   sim::SimConfig{}, "knapsack", nullptr});
  return sweep;
}

TEST(SweepRunnerTest, OneAndManyThreadsProduceBitIdenticalResults) {
  const std::vector<SimJob> sweep = three_policy_sweep();

  SweepRunner serial(1);
  const auto serial_results = serial.run(sweep);
  SweepRunner parallel(4);
  const auto parallel_results = parallel.run(sweep);

  ASSERT_EQ(serial_results.size(), sweep.size());
  ASSERT_EQ(parallel_results.size(), sweep.size());
  // Submission order is preserved regardless of completion order...
  EXPECT_EQ(serial_results[0].policy_name, "FCFS");
  EXPECT_EQ(serial_results[1].policy_name, "Greedy");
  EXPECT_EQ(serial_results[2].policy_name, "Knapsack");
  // ...and every field (records, bills, energy, curves, counters) is
  // bit-identical between the serial and the threaded execution.
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(parallel_results[i].policy_name,
              serial_results[i].policy_name);
    EXPECT_TRUE(results_identical(serial_results[i], parallel_results[i]))
        << "cell " << i << " (" << sweep[i].label << ") diverged";
  }
}

TEST(SweepRunnerTest, RepeatedParallelRunsAreStable) {
  const std::vector<SimJob> sweep = three_policy_sweep();
  SweepRunner runner(4);
  const auto first = runner.run(sweep);
  const auto second = runner.run(sweep);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(results_identical(first[i], second[i]));
  }
}

TEST(SweepRunnerTest, StatsCountTasksAndTimings) {
  const std::vector<SimJob> sweep = three_policy_sweep();
  SweepRunner runner(2);
  runner.run(sweep);
  const SweepStats& stats = runner.last_stats();
  EXPECT_EQ(stats.tasks, sweep.size());
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.cpu_seconds, 0.0);
  EXPECT_LE(stats.task_min_seconds, stats.task_mean_seconds);
  EXPECT_LE(stats.task_mean_seconds, stats.task_max_seconds);
  EXPECT_GE(stats.cpu_seconds, stats.task_max_seconds);
}

TEST(SweepRunnerTest, EmptySweepYieldsEmptyResults) {
  SweepRunner runner(4);
  EXPECT_TRUE(runner.run({}).empty());
  EXPECT_EQ(runner.last_stats().tasks, 0u);
}

TEST(SweepRunnerTest, UsesMoreWorkersThanCellsNever) {
  const std::vector<SimJob> sweep = three_policy_sweep();
  SweepRunner runner(16);
  runner.run(sweep);
  EXPECT_EQ(runner.last_stats().threads, sweep.size());
}

TEST(SweepRunnerTest, RejectsIncompleteJobs) {
  SweepRunner runner(1);
  std::vector<SimJob> sweep = three_policy_sweep();
  sweep[1].make_policy = nullptr;
  EXPECT_THROW(runner.run(sweep), Error);
}

TEST(SweepRunnerTest, PropagatesTaskExceptions) {
  std::vector<SimJob> sweep = three_policy_sweep();
  sweep[2].make_policy = []() -> std::unique_ptr<core::SchedulingPolicy> {
    throw std::runtime_error("factory boom");
  };
  SweepRunner parallel(4);
  EXPECT_THROW(parallel.run(sweep), std::runtime_error);
  SweepRunner serial(1);
  EXPECT_THROW(serial.run(sweep), std::runtime_error);
}

TEST(SweepRunnerTest, TaskExceptionsSettleRemainingTasksFirst) {
  // Settle-all-then-propagate: a cell that throws must not abandon the
  // cells submitted after it — "which cells actually ran" must never
  // depend on scheduling.
  std::vector<SimJob> sweep = three_policy_sweep();
  auto built = std::make_shared<std::atomic<int>>(0);
  sweep[0].make_policy = []() -> std::unique_ptr<core::SchedulingPolicy> {
    throw std::runtime_error("factory boom");
  };
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    const auto inner = sweep[i].make_policy;
    sweep[i].make_policy = [inner, built] {
      built->fetch_add(1);
      return inner();
    };
  }

  SweepRunner serial(1);
  EXPECT_THROW(serial.run(sweep), std::runtime_error);
  EXPECT_EQ(built->load(), 2);  // both later cells still executed
  EXPECT_EQ(serial.last_stats().tasks, sweep.size());

  built->store(0);
  SweepRunner parallel(4);
  EXPECT_THROW(parallel.run(sweep), std::runtime_error);
  EXPECT_EQ(built->load(), 2);
}

TEST(SweepRunnerTest, ThrowingProgressCallbackSettlesThenPropagates) {
  const std::vector<SimJob> sweep = three_policy_sweep();
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    SweepRunner runner(workers);
    runner.set_progress([](const SweepProgress& p) {
      if (p.done == 1) throw std::runtime_error("progress boom");
    });
    EXPECT_THROW(runner.run(sweep), std::runtime_error)
        << "workers=" << workers;
    // The pool settled: stats cover every task, nothing was abandoned.
    EXPECT_EQ(runner.last_stats().tasks, sweep.size());
    EXPECT_GT(runner.last_stats().cpu_seconds, 0.0);
    // And the runner is still usable afterwards.
    runner.set_progress(nullptr);
    const auto results = runner.run(sweep);
    EXPECT_EQ(results.size(), sweep.size());
  }
}

TEST(SweepRunnerTest, DefaultJobsHonorsEnvironment) {
  // ESCHED_JOBS is read by default_jobs(); setenv is process-global, so
  // restore the prior state.
  const char* prev = std::getenv("ESCHED_JOBS");
  const std::string saved = prev != nullptr ? prev : "";
  ::setenv("ESCHED_JOBS", "3", 1);
  EXPECT_EQ(SweepRunner::default_jobs(), 3u);
  EXPECT_EQ(SweepRunner(0).jobs(), 3u);
  ::setenv("ESCHED_JOBS", "not-a-number", 1);
  EXPECT_GE(SweepRunner::default_jobs(), 1u);
  if (prev != nullptr) {
    ::setenv("ESCHED_JOBS", saved.c_str(), 1);
  } else {
    ::unsetenv("ESCHED_JOBS");
  }
}

TEST(SweepRunnerTest, MalformedEnvJobsWarnsExactlyOnce) {
  const char* prev = std::getenv("ESCHED_JOBS");
  const std::string saved = prev != nullptr ? prev : "";
  // A value no other test uses: the warning fires once per *distinct*
  // malformed value, which keeps this assertion order-independent.
  ::setenv("ESCHED_JOBS", "12abc-sweep-warn-test", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_GE(SweepRunner::default_jobs(), 1u);  // falls back to hardware
  EXPECT_GE(SweepRunner::default_jobs(), 1u);  // repeat: must NOT re-warn
  const std::string err = ::testing::internal::GetCapturedStderr();
  const std::string needle = "malformed ESCHED_JOBS=\"12abc-sweep-warn-test\"";
  const std::size_t first = err.find(needle);
  EXPECT_NE(first, std::string::npos) << err;
  EXPECT_EQ(err.find(needle, first + 1), std::string::npos)
      << "warned more than once:\n"
      << err;
  if (prev != nullptr) {
    ::setenv("ESCHED_JOBS", saved.c_str(), 1);
  } else {
    ::unsetenv("ESCHED_JOBS");
  }
}

TEST(SweepRunnerTest, TracingAndCountersPreserveDeterminism) {
  // The observability contract: counters hot + both trace sinks open must
  // not perturb results, serial vs threaded. This is also the test that
  // makes the TSan build (scripts/tier1.sh) exercise the sharded counters
  // and the tracer mutex under real concurrency.
  std::vector<SimJob> sweep = three_policy_sweep();

  SweepRunner plain(1);
  const auto baseline = plain.run(sweep);

  const std::string trace_path =
      ::testing::TempDir() + "sweep_runner_obs_test.json";
  obs::Tracer tracer;
  tracer.open(trace_path);
  obs::set_counters_enabled(true);
  for (SimJob& job : sweep) job.config.tracer = &tracer;

  SweepRunner serial(1);
  serial.set_tracer(&tracer);
  const auto serial_results = serial.run(sweep);
  SweepRunner parallel(4);
  parallel.set_tracer(&tracer);
  const auto parallel_results = parallel.run(sweep);

  obs::set_counters_enabled(false);
  tracer.close();
  std::remove(trace_path.c_str());
  std::remove((trace_path + obs::Tracer::kDecisionLogSuffix).c_str());

  ASSERT_EQ(serial_results.size(), baseline.size());
  ASSERT_EQ(parallel_results.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_TRUE(results_identical(baseline[i], serial_results[i]))
        << "tracing changed serial cell " << i;
    EXPECT_TRUE(results_identical(baseline[i], parallel_results[i]))
        << "tracing changed parallel cell " << i;
  }
}

TEST(SweepRunnerTest, ProgressReportsEveryTaskMonotonically) {
  const std::vector<SimJob> sweep = three_policy_sweep();
  SweepRunner runner(4);
  std::vector<SweepProgress> seen;  // callback calls are serialized
  runner.set_progress(
      [&seen](const SweepProgress& p) { seen.push_back(p); });
  runner.run(sweep);
  ASSERT_EQ(seen.size(), sweep.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].done, i + 1);
    EXPECT_EQ(seen[i].total, sweep.size());
    EXPECT_GE(seen[i].elapsed_seconds, 0.0);
    EXPECT_GE(seen[i].eta_seconds, 0.0);
    if (i > 0) {
      EXPECT_GE(seen[i].elapsed_seconds, seen[i - 1].elapsed_seconds);
    }
  }
  EXPECT_DOUBLE_EQ(seen.back().eta_seconds, 0.0);
}

TEST(SweepRunnerTest, WorkerBusySecondsAccountForAllCpuTime) {
  const std::vector<SimJob> sweep = three_policy_sweep();
  SweepRunner runner(2);
  runner.run(sweep);
  const SweepStats& stats = runner.last_stats();
  ASSERT_EQ(stats.worker_busy_seconds.size(), stats.threads);
  double busy_total = 0.0;
  for (std::size_t i = 0; i < stats.threads; ++i) {
    EXPECT_GE(stats.worker_busy_seconds[i], 0.0);
    EXPECT_GE(stats.worker_busy_fraction(i), 0.0);
    busy_total += stats.worker_busy_seconds[i];
  }
  // Same durations, summed in a different order.
  EXPECT_NEAR(busy_total, stats.cpu_seconds, 1e-9);
  // Out-of-range worker index reads as "no busy time", not UB.
  EXPECT_DOUBLE_EQ(stats.worker_busy_fraction(stats.threads + 5), 0.0);
}

// ---- trajectory sharing (prefix sharing) ----

/// A spec-carrying sweep cell: shareable by cell/share key. The trace is
/// built from the spec itself so keys and data can never disagree.
SimJob spec_cell(const std::shared_ptr<const trace::Trace>& trace,
                 const TraceSpec& trace_spec, const std::string& policy,
                 const std::string& pricing_model, double ratio) {
  PricingSpec pricing_spec;
  pricing_spec.model = pricing_model;
  pricing_spec.ratio = ratio;
  auto spec = std::make_shared<JobSpec>();
  spec->trace = trace_spec;
  spec->pricing = pricing_spec;
  spec->policy.name = policy;
  SimJob job;
  job.trace = trace;
  job.pricing =
      std::shared_ptr<const power::PricingModel>(build_pricing(pricing_spec));
  job.make_policy = [policy] { return core::make_policy_by_name(policy); };
  job.label = policy + "/" + pricing_model + "/" + std::to_string(ratio);
  job.spec = std::move(spec);
  return job;
}

std::vector<SimJob> shareable_sweep() {
  TraceSpec trace_spec;
  trace_spec.source = "anl-bgp";
  trace_spec.months = 1;
  trace_spec.seed = 7;
  trace_spec.power_seed = 7;
  static const auto trace =
      std::make_shared<const trace::Trace>(build_trace(trace_spec));
  std::vector<SimJob> sweep;
  // Two policies x two price ratios (same share key per policy: the
  // paper tariff's period structure is ratio-independent), plus an exact
  // duplicate cell (same cell key -> copy) and two flat-pricing cells
  // whose differing ratios are irrelevant under "flat" (same cell key).
  for (const char* policy : {"fcfs", "greedy"}) {
    for (const double ratio : {2.0, 4.0}) {
      sweep.push_back(spec_cell(trace, trace_spec, policy, "paper", ratio));
    }
  }
  sweep.push_back(spec_cell(trace, trace_spec, "fcfs", "paper", 2.0));
  sweep.push_back(spec_cell(trace, trace_spec, "fcfs", "flat", 2.0));
  sweep.push_back(spec_cell(trace, trace_spec, "fcfs", "flat", 4.0));
  return sweep;
}

TEST(SweepRunnerTest, PrefixSharingIsBitIdenticalToFullSimulation) {
  const std::vector<SimJob> sweep = shareable_sweep();

  SweepRunner full(1);
  full.set_prefix_sharing(false);
  const auto full_results = full.run(sweep);
  EXPECT_EQ(full.last_stats().simulated_cells, sweep.size());
  EXPECT_EQ(full.last_stats().copied_cells, 0u);
  EXPECT_EQ(full.last_stats().rebilled_cells, 0u);

  SweepRunner shared(1);
  shared.set_prefix_sharing(true);
  const auto shared_results = shared.run(sweep);

  ASSERT_EQ(full_results.size(), shared_results.size());
  for (std::size_t i = 0; i < full_results.size(); ++i) {
    EXPECT_TRUE(results_identical(full_results[i], shared_results[i]))
        << "cell " << i << " (" << sweep[i].label
        << ") diverged under trajectory sharing";
  }

  // 3 trajectories simulated: fcfs/paper, greedy/paper, fcfs/flat. The
  // duplicate paper cell and the second flat ratio are copies; the two
  // remaining paper ratios are re-billings of their policy's leader.
  const SweepStats& stats = shared.last_stats();
  EXPECT_EQ(stats.tasks, sweep.size());
  EXPECT_EQ(stats.simulated_cells, 3u);
  EXPECT_EQ(stats.copied_cells, 2u);
  EXPECT_EQ(stats.rebilled_cells, 2u);
}

TEST(SweepRunnerTest, SharingAndThreadsPreserveDeterminism) {
  // The isolation-mode determinism contract: sharing on N threads ==
  // full simulation on 1 thread, bit for bit.
  const std::vector<SimJob> sweep = shareable_sweep();
  SweepRunner full(1);
  full.set_prefix_sharing(false);
  const auto reference = full.run(sweep);
  SweepRunner shared(4);
  shared.set_prefix_sharing(true);
  const auto threaded = shared.run(sweep);
  ASSERT_EQ(reference.size(), threaded.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(results_identical(reference[i], threaded[i]));
  }
}

TEST(SweepRunnerTest, CellsWithoutSpecsNeverShare) {
  // three_policy_sweep() carries no JobSpecs, so sharing has nothing to
  // key on: every cell simulates in full even with sharing enabled.
  const std::vector<SimJob> sweep = three_policy_sweep();
  SweepRunner runner(1);
  runner.set_prefix_sharing(true);
  runner.run(sweep);
  EXPECT_EQ(runner.last_stats().simulated_cells, sweep.size());
  EXPECT_EQ(runner.last_stats().copied_cells, 0u);
  EXPECT_EQ(runner.last_stats().rebilled_cells, 0u);
}

TEST(SweepRunnerTest, PrefixSharingEnvOptOut) {
  ::setenv("ESCHED_PREFIX_SHARE", "off", 1);
  EXPECT_FALSE(SweepRunner::prefix_sharing_default());
  ::setenv("ESCHED_PREFIX_SHARE", "on", 1);
  EXPECT_TRUE(SweepRunner::prefix_sharing_default());
  ::unsetenv("ESCHED_PREFIX_SHARE");
  EXPECT_TRUE(SweepRunner::prefix_sharing_default());
}

TEST(SweepRunnerTest, ResultsIdenticalDetectsDivergence) {
  const std::vector<SimJob> sweep = three_policy_sweep();
  SweepRunner runner(1);
  const auto results = runner.run(sweep);
  sim::SimResult tweaked = results[0];
  EXPECT_TRUE(results_identical(results[0], tweaked));
  tweaked.total_bill += 1e-9;
  EXPECT_FALSE(results_identical(results[0], tweaked));
  sim::SimResult record_tweaked = results[0];
  ASSERT_FALSE(record_tweaked.records.empty());
  record_tweaked.records.back().start += 1;
  EXPECT_FALSE(results_identical(results[0], record_tweaked));
}

}  // namespace
}  // namespace esched::run
