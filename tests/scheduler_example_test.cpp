// The paper's §3 worked example, encoded as a test: five jobs on a 12-node
// system.
//
//   Job  Power (W/node)  Size
//   J0   50              6
//   J1   20              3
//   J2   40              3
//   J3   30              3
//   J4   10              6
//
// FCFS always dispatches <J0, J1, J2>. The power-aware design dispatches
// <J4, J1, J3> during on-peak and <J0, J2, J3> during off-peak.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "core/scheduler.hpp"

namespace esched::core {
namespace {

using power::PricePeriod;

std::vector<PendingJob> paper_jobs_table() {
  // Sizes exactly as in the paper's table: J0=6, J1=3, J2=3, J3=3, J4=6.
  return {
      {0, 0, 6, 3600, 50.0},
      {1, 1, 3, 3600, 20.0},
      {2, 2, 3, 3600, 40.0},
      {3, 3, 3, 3600, 30.0},
      {4, 4, 6, 3600, 10.0},
  };
}

std::vector<JobId> started_ids(const Scheduler& scheduler,
                               const std::vector<PendingJob>& queue,
                               PricePeriod period) {
  const ScheduleContext ctx{0, 12, 12, period};
  const auto starts = scheduler.decide(ctx, queue, {});
  std::vector<JobId> ids;
  for (const auto qi : starts) ids.push_back(queue[qi].id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(PaperExampleTest, FcfsAlwaysStartsJ0J1J2) {
  FcfsPolicy policy;
  Scheduler scheduler(policy, SchedulerConfig{});
  const auto queue = paper_jobs_table();
  for (const auto period : {PricePeriod::kOnPeak, PricePeriod::kOffPeak}) {
    const auto ids = started_ids(scheduler, queue, period);
    EXPECT_EQ(ids, (std::vector<JobId>{0, 1, 2}));
  }
}

TEST(PaperExampleTest, GreedyOnPeakStartsJ4J1J3) {
  GreedyPowerPolicy policy;
  Scheduler scheduler(policy, SchedulerConfig{});
  const auto ids =
      started_ids(scheduler, paper_jobs_table(), PricePeriod::kOnPeak);
  // Ascending power: J4(10) 6 nodes, J1(20) 3 nodes, J3(30) 3 nodes = 12.
  EXPECT_EQ(ids, (std::vector<JobId>{1, 3, 4}));
}

TEST(PaperExampleTest, GreedyOffPeakStartsJ0J2J3) {
  GreedyPowerPolicy policy;
  Scheduler scheduler(policy, SchedulerConfig{});
  const auto ids =
      started_ids(scheduler, paper_jobs_table(), PricePeriod::kOffPeak);
  // Descending power: J0(50) 6, J2(40) 3, J3(30) 3 = 12.
  EXPECT_EQ(ids, (std::vector<JobId>{0, 2, 3}));
}

TEST(PaperExampleTest, KnapsackOnPeakStartsJ4J1J3) {
  KnapsackPolicy policy;
  Scheduler scheduler(policy, SchedulerConfig{});
  const auto ids =
      started_ids(scheduler, paper_jobs_table(), PricePeriod::kOnPeak);
  // Min aggregate power among 12-node packings:
  // {J4,J1,J3} = 60+60+90 = 210 W (vs {J4,J1,J2}=240, {J0,J1,J2}=480...).
  EXPECT_EQ(ids, (std::vector<JobId>{1, 3, 4}));
}

TEST(PaperExampleTest, KnapsackOffPeakStartsJ0J2J3) {
  KnapsackPolicy policy;
  Scheduler scheduler(policy, SchedulerConfig{});
  const auto ids =
      started_ids(scheduler, paper_jobs_table(), PricePeriod::kOffPeak);
  // Max aggregate power: {J0,J2,J3} = 300+120+90 = 510 W.
  EXPECT_EQ(ids, (std::vector<JobId>{0, 2, 3}));
}

TEST(PaperExampleTest, PowerAwarePoliciesFillTheMachineToo) {
  // The paper's utilization rule: in every case, all 12 nodes are used.
  for (const auto period : {PricePeriod::kOnPeak, PricePeriod::kOffPeak}) {
    for (int which = 0; which < 2; ++which) {
      GreedyPowerPolicy greedy;
      KnapsackPolicy knapsack;
      SchedulingPolicy& policy =
          which == 0 ? static_cast<SchedulingPolicy&>(greedy)
                     : static_cast<SchedulingPolicy&>(knapsack);
      Scheduler scheduler(policy, SchedulerConfig{});
      const auto queue = paper_jobs_table();
      const ScheduleContext ctx{0, 12, 12, period};
      const auto starts = scheduler.decide(ctx, queue, {});
      NodeCount used = 0;
      for (const auto qi : starts) used += queue[qi].nodes;
      EXPECT_EQ(used, 12);
    }
  }
}

}  // namespace
}  // namespace esched::core
