// Tests for the deterministic RNG and its distributions.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace esched {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, CopyForksIdenticalStream) {
  Rng a(7);
  a.next_u64();
  Rng b = a;  // value semantics
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(7);
  Rng b(7);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
  // Fork consumed one output, so parents stay in sync too.
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanAndSpread) {
  Rng rng(4);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 8.25);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 8.25);
  }
}

TEST(RngTest, UniformRejectsEmptyRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(1.0, 1.0), Error);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(RngTest, UniformIntCoversAllValuesInclusively) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all of -2..3 hit
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(6);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(RngTest, UniformIntIsUnbiased) {
  Rng rng(8);
  // 3 buckets over a non-power-of-two span; modulo bias would skew this.
  std::vector<int> counts(3, 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 2))];
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 3.0, 0.005);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, TruncatedNormalHonoursBounds) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.truncated_normal(40.0, 6.67, 20.0, 60.0);
    ASSERT_GE(x, 20.0);
    ASSERT_LE(x, 60.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 40.0, 0.2);  // symmetric truncation
}

TEST(RngTest, TruncatedNormalDegenerateSd) {
  Rng rng(10);
  EXPECT_DOUBLE_EQ(rng.truncated_normal(5.0, 0.0, 0.0, 10.0), 5.0);
  EXPECT_THROW(rng.truncated_normal(50.0, 0.0, 0.0, 10.0), Error);
}

TEST(RngTest, TruncatedNormalRejectsFarInterval) {
  Rng rng(10);
  EXPECT_THROW(rng.truncated_normal(0.0, 1.0, 100.0, 101.0), Error);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(7.0));
  EXPECT_NEAR(stats.mean(), 7.0, 0.1);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(12);
  std::vector<double> xs;
  for (int i = 0; i < 100001; ++i) xs.push_back(rng.lognormal(std::log(600.0), 1.0));
  std::nth_element(xs.begin(), xs.begin() + 50000, xs.end());
  EXPECT_NEAR(xs[50000], 600.0, 20.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), Error);
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(14);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, WeightedIndexRejectsDegenerateInput) {
  Rng rng(15);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), Error);
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(negative), Error);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(16);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::is_sorted(shuffled.begin(), shuffled.end()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// Property sweep: distribution draws stay within bounds for many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, TruncatedNormalAlwaysInBounds) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.truncated_normal(30.0, 10.0, 20.0, 60.0);
    ASSERT_GE(x, 20.0);
    ASSERT_LE(x, 60.0);
  }
}

TEST_P(RngSeedSweep, UniformIntBoundsHold) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(100, 107);
    ASSERT_GE(v, 100);
    ASSERT_LE(v, 107);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0u, 1u, 2u, 3u, 42u, 1000u,
                                           0xdeadbeefULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace esched
