// Tests for the Trace container and trace statistics.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "trace/trace_stats.hpp"
#include "util/error.hpp"

namespace esched::trace {
namespace {

Job make_job(JobId id, TimeSec submit, NodeCount nodes,
             DurationSec runtime, Watts power = 30.0) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.nodes = nodes;
  j.runtime = runtime;
  j.walltime = runtime * 2;
  j.power_per_node = power;
  return j;
}

TEST(TraceTest, AddJobKeepsSubmitOrder) {
  Trace t("test", 64);
  t.add_job(make_job(1, 100, 4, 60));
  t.add_job(make_job(2, 50, 4, 60));   // out of order: triggers re-sort
  t.add_job(make_job(3, 75, 4, 60));
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].id, 2);
  EXPECT_EQ(t[1].id, 3);
  EXPECT_EQ(t[2].id, 1);
  t.validate();
}

TEST(TraceTest, TiesBreakById) {
  Trace t("test", 64);
  t.add_job(make_job(9, 100, 1, 60));
  t.add_job(make_job(2, 100, 1, 60));
  EXPECT_EQ(t[0].id, 2);
  EXPECT_EQ(t[1].id, 9);
}

TEST(TraceTest, RejectsInvalidJobs) {
  Trace t("test", 64);
  EXPECT_THROW(t.add_job(make_job(1, 0, 0, 60)), Error);     // no nodes
  EXPECT_THROW(t.add_job(make_job(1, 0, 65, 60)), Error);    // too big
  EXPECT_THROW(t.add_job(make_job(1, 0, 4, 0)), Error);      // no runtime
  EXPECT_THROW(t.add_job(make_job(1, -5, 4, 60)), Error);    // negative t
  Job bad_power = make_job(1, 0, 4, 60);
  bad_power.power_per_node = -1.0;
  EXPECT_THROW(t.add_job(bad_power), Error);
  Job bad_wall = make_job(1, 0, 4, 60);
  bad_wall.walltime = 0;
  EXPECT_THROW(t.add_job(bad_wall), Error);
}

TEST(TraceTest, ValidateCatchesDuplicateIds) {
  Trace t("test", 64);
  t.add_job(make_job(1, 0, 4, 60));
  t.add_job(make_job(1, 10, 4, 60));
  EXPECT_THROW(t.validate(), Error);
}

TEST(TraceTest, SubmitSpan) {
  Trace t("test", 64);
  EXPECT_EQ(t.first_submit(), 0);
  EXPECT_EQ(t.last_submit(), 0);
  t.add_job(make_job(1, 500, 4, 60));
  t.add_job(make_job(2, 900, 4, 60));
  EXPECT_EQ(t.first_submit(), 500);
  EXPECT_EQ(t.last_submit(), 900);
}

TEST(TraceTest, ConstructionRequiresPositiveSize) {
  EXPECT_THROW(Trace("bad", 0), Error);
  EXPECT_THROW(Trace("bad", -4), Error);
}

TEST(TraceStatsTest, SummaryNumbers) {
  Trace t("test", 100);
  t.add_job(make_job(1, 0, 10, 100, 20.0));    // 1000 node-s
  t.add_job(make_job(2, 50, 20, 200, 40.0));   // 4000 node-s, ends at 250
  const TraceStats s = compute_stats(t);
  EXPECT_EQ(s.job_count, 2u);
  EXPECT_EQ(s.span_begin, 0);
  EXPECT_EQ(s.span_end, 250);
  EXPECT_DOUBLE_EQ(s.nodes.mean(), 15.0);
  EXPECT_DOUBLE_EQ(s.runtime.mean(), 150.0);
  EXPECT_DOUBLE_EQ(s.power_per_node.mean(), 30.0);
  EXPECT_DOUBLE_EQ(s.offered_utilization, 5000.0 / (100.0 * 250.0));
}

TEST(TraceStatsTest, SizeDistributionBuckets) {
  Trace t("test", 64);
  t.add_job(make_job(1, 0, 1, 60));
  t.add_job(make_job(2, 1, 2, 60));
  t.add_job(make_job(3, 2, 3, 60));   // bucket "<=4"
  t.add_job(make_job(4, 3, 64, 60));  // bucket "<=64"
  const CategoricalHistogram h = size_distribution(t);
  EXPECT_EQ(h.category(0), "1");
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.25);
  EXPECT_EQ(h.category(1), "<=2");
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
  EXPECT_EQ(h.category(2), "<=4");
  EXPECT_DOUBLE_EQ(h.fraction(2), 0.25);
  EXPECT_EQ(h.category(6), "<=64");
  EXPECT_DOUBLE_EQ(h.fraction(6), 0.25);
}

TEST(TraceStatsTest, MonthlyOfferedUtilization) {
  Trace t("test", 100);
  // Month 0: one job of 100 nodes x 1 day = 1/30 of month capacity.
  t.add_job(make_job(1, 0, 100, kSecondsPerDay));
  const auto util = monthly_offered_utilization(t, 2);
  EXPECT_NEAR(util[0], 1.0 / 30.0, 1e-12);
  EXPECT_DOUBLE_EQ(util[1], 0.0);
}

TEST(TraceStatsTest, PowerDistributionRange) {
  Trace t("test", 2048);
  t.add_job(make_job(1, 0, 1024, 60, 40.0));  // 40.96 kW/rack at 1024/rack
  t.add_job(make_job(2, 1, 1024, 60, 80.0));
  const Histogram h = power_distribution_kw_per_rack(t, 1024, 4);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
  EXPECT_GT(h.bin_weight(0), 0.0);
  EXPECT_GT(h.bin_weight(3), 0.0);
}

}  // namespace
}  // namespace esched::trace
