// Tests for SWF workflow dependencies (preceding job + think time).
#include <gtest/gtest.h>

#include <sstream>

#include "core/fcfs_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/pricing.hpp"
#include "sim/simulator.hpp"
#include "trace/swf.hpp"
#include "trace/trace.hpp"

namespace esched::sim {
namespace {

trace::Job make_job(JobId id, TimeSec submit, DurationSec runtime,
                    JobId preceding = 0, DurationSec think = 0) {
  trace::Job j;
  j.id = id;
  j.submit = submit;
  j.nodes = 2;
  j.runtime = runtime;
  j.walltime = runtime;
  j.power_per_node = 30.0;
  j.preceding = preceding;
  j.think_time = think;
  return j;
}

TEST(DependencyTest, DependentWaitsForPredecessorPlusThinkTime) {
  trace::Trace t("dep", 10);
  t.add_job(make_job(1, 0, 500));
  t.add_job(make_job(2, 0, 100, /*preceding=*/1, /*think=*/60));
  power::FlatPricing pricing(0.1);
  core::FcfsPolicy policy;
  SimConfig cfg;
  cfg.honor_dependencies = true;
  const SimResult r = simulate(t, pricing, policy, cfg);
  EXPECT_EQ(r.records[0].start, 0);
  EXPECT_EQ(r.records[0].finish, 500);
  // Release at 500 + 60 = 560 (tick boundary); starts right there.
  EXPECT_EQ(r.records[1].submit, 560);
  EXPECT_EQ(r.records[1].start, 560);
  EXPECT_NO_THROW(metrics::validate_result(r));
}

TEST(DependencyTest, NominalSubmitActsAsLowerBound) {
  trace::Trace t("dep2", 10);
  t.add_job(make_job(1, 0, 100));
  // Nominal submit far after the predecessor's completion.
  t.add_job(make_job(2, 5000, 100, 1, 0));
  power::FlatPricing pricing(0.1);
  core::FcfsPolicy policy;
  SimConfig cfg;
  cfg.honor_dependencies = true;
  const SimResult r = simulate(t, pricing, policy, cfg);
  EXPECT_EQ(r.records[1].submit, 5000);
  EXPECT_EQ(r.records[1].start, 5000);
}

TEST(DependencyTest, ChainsExecuteInOrder) {
  trace::Trace t("chain", 10);
  t.add_job(make_job(1, 0, 100));
  t.add_job(make_job(2, 0, 100, 1));
  t.add_job(make_job(3, 0, 100, 2));
  power::FlatPricing pricing(0.1);
  core::FcfsPolicy policy;
  SimConfig cfg;
  cfg.honor_dependencies = true;
  const SimResult r = simulate(t, pricing, policy, cfg);
  EXPECT_EQ(r.records[0].start, 0);
  EXPECT_EQ(r.records[1].start, 100);
  EXPECT_EQ(r.records[2].start, 200);
}

TEST(DependencyTest, IgnoredByDefaultAndForDanglingIds) {
  trace::Trace t("nodep", 10);
  t.add_job(make_job(1, 0, 500));
  t.add_job(make_job(2, 0, 100, 1, 60));
  power::FlatPricing pricing(0.1);
  core::FcfsPolicy policy;
  // Default: dependencies off -> both run concurrently (machine fits).
  const SimResult off = simulate(t, pricing, policy);
  EXPECT_EQ(off.records[1].start, 0);

  // Dangling predecessor id: honored flag on, but no such job -> run.
  trace::Trace t2("dangle", 10);
  t2.add_job(make_job(1, 0, 500));
  t2.add_job(make_job(2, 0, 100, /*preceding=*/999, 60));
  SimConfig cfg;
  cfg.honor_dependencies = true;
  core::FcfsPolicy policy2;
  const SimResult r2 = simulate(t2, pricing, policy2, cfg);
  EXPECT_EQ(r2.records[1].start, 0);
}

TEST(DependencyTest, ForwardReferencesAreIgnored) {
  // Predecessor appears later in the trace: dependency dropped (cycle
  // safety by construction).
  trace::Trace t("fwd", 10);
  t.add_job(make_job(2, 0, 100, /*preceding=*/1));  // job 1 comes later
  t.add_job(make_job(1, 50, 100));
  power::FlatPricing pricing(0.1);
  core::FcfsPolicy policy;
  SimConfig cfg;
  cfg.honor_dependencies = true;
  const SimResult r = simulate(t, pricing, policy, cfg);
  EXPECT_EQ(r.records[0].start, 0);  // ran immediately despite the field
}

TEST(DependencySwfTest, FieldsRoundTrip) {
  trace::Trace t("swf", 10);
  t.add_job(make_job(1, 0, 100));
  t.add_job(make_job(2, 10, 100, 1, 300));
  std::ostringstream out;
  trace::swf::save(out, t, false);
  std::istringstream in(out.str());
  const trace::Trace back = trace::swf::load(in, "rt");
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].preceding, 0);
  EXPECT_EQ(back[0].think_time, 0);
  EXPECT_EQ(back[1].preceding, 1);
  EXPECT_EQ(back[1].think_time, 300);
}

}  // namespace
}  // namespace esched::sim
