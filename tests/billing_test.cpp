// Tests for the billing meter: exact integration against closed forms.
#include "power/billing.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/time_util.hpp"

namespace esched::power {
namespace {

constexpr TimeSec kNoon = 12 * kSecondsPerHour;

TEST(BillingTest, FlatTariffClosedForm) {
  FlatPricing pricing(0.10);
  BillingMeter meter(pricing, 0);
  meter.set_power(0, 1000.0);  // 1 kW
  meter.finish(kSecondsPerHour);  // for exactly one hour
  EXPECT_NEAR(meter.total_energy(), 3.6e6, 1e-6);  // 1 kWh in joules
  EXPECT_NEAR(meter.total_bill(), 0.10, 1e-12);
}

TEST(BillingTest, OnOffPeakSplitsAtNoon) {
  OnOffPeakPricing pricing(0.03, 3.0);  // off 0.03, on 0.09
  BillingMeter meter(pricing, 0);
  meter.set_power(0, 1000.0);
  meter.finish(kSecondsPerDay);  // 12h off-peak + 12h on-peak at 1 kW
  EXPECT_NEAR(meter.energy_in(PricePeriod::kOffPeak), 12.0 * 3.6e6, 1e-3);
  EXPECT_NEAR(meter.energy_in(PricePeriod::kOnPeak), 12.0 * 3.6e6, 1e-3);
  EXPECT_NEAR(meter.bill_in(PricePeriod::kOffPeak), 12.0 * 0.03, 1e-9);
  EXPECT_NEAR(meter.bill_in(PricePeriod::kOnPeak), 12.0 * 0.09, 1e-9);
  EXPECT_NEAR(meter.total_bill(), 12.0 * 0.12, 1e-9);
}

TEST(BillingTest, PowerChangesBillCorrectly) {
  OnOffPeakPricing pricing(0.03, 3.0);
  BillingMeter meter(pricing, 0);
  meter.set_power(0, 2000.0);          // 2 kW off-peak
  meter.set_power(6 * kSecondsPerHour, 500.0);  // 0.5 kW across noon
  meter.finish(18 * kSecondsPerHour);
  // 6h*2kW*0.03 + 6h*0.5kW*0.03 + 6h*0.5kW*0.09
  const double expected = 6 * 2 * 0.03 + 6 * 0.5 * 0.03 + 6 * 0.5 * 0.09;
  EXPECT_NEAR(meter.total_bill(), expected, 1e-9);
}

TEST(BillingTest, ZeroPowerCostsNothing) {
  OnOffPeakPricing pricing(0.03, 3.0);
  BillingMeter meter(pricing, 0);
  meter.finish(10 * kSecondsPerDay);
  EXPECT_DOUBLE_EQ(meter.total_bill(), 0.0);
  EXPECT_DOUBLE_EQ(meter.total_energy(), 0.0);
}

TEST(BillingTest, DailyBillsAttributeToCalendarDays) {
  FlatPricing pricing(0.10);
  BillingMeter meter(pricing, 0);
  meter.set_power(0, 1000.0);
  // 36 hours: 24 on day 0, 12 on day 1.
  meter.finish(36 * kSecondsPerHour);
  const auto& daily = meter.daily_bills();
  ASSERT_EQ(daily.size(), 2u);
  EXPECT_NEAR(daily[0], 24.0 * 0.10, 1e-9);
  EXPECT_NEAR(daily[1], 12.0 * 0.10, 1e-9);
  EXPECT_NEAR(daily[0] + daily[1], meter.total_bill(), 1e-9);
}

TEST(BillingTest, MonthlyBillsFoldTail) {
  FlatPricing pricing(1.0);
  BillingMeter meter(pricing, 0);
  meter.set_power(0, 1000.0);
  meter.finish(35 * kSecondsPerDay);  // 30 days month 0, 5 days month 1
  const auto monthly = meter.monthly_bills(2);
  EXPECT_NEAR(monthly[0] / meter.total_bill(), 30.0 / 35.0, 1e-9);
  EXPECT_NEAR(monthly[1] / meter.total_bill(), 5.0 / 35.0, 1e-9);
  // Folding: asking for one month returns everything.
  const auto folded = meter.monthly_bills(1);
  EXPECT_NEAR(folded[0], meter.total_bill(), 1e-9);
}

TEST(BillingTest, MidStreamStartTime) {
  OnOffPeakPricing pricing(0.03, 3.0);
  BillingMeter meter(pricing, kNoon);  // accounting starts at noon
  meter.set_power(kNoon, 1000.0);
  meter.finish(kNoon + 2 * kSecondsPerHour);
  EXPECT_NEAR(meter.total_bill(), 2.0 * 0.09, 1e-9);
  EXPECT_DOUBLE_EQ(meter.bill_in(PricePeriod::kOffPeak), 0.0);
}

TEST(BillingTest, RejectsMisuse) {
  FlatPricing pricing(0.10);
  BillingMeter meter(pricing, 100);
  meter.set_power(200, 1.0);
  EXPECT_THROW(meter.set_power(150, 2.0), Error);   // time went backwards
  EXPECT_THROW(meter.set_power(300, -1.0), Error);  // negative power
  meter.finish(400);
  EXPECT_THROW(meter.set_power(500, 1.0), Error);   // already finished
  EXPECT_THROW(meter.finish(500), Error);
}

// Property: splitting a constant-power interval into arbitrary sub-segments
// never changes any accumulated total (exactness of the integrator).
class SegmentSplitProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SegmentSplitProperty, SplitInvariance) {
  OnOffPeakPricing pricing(0.03, 4.0);
  const TimeSec end = 3 * kSecondsPerDay;

  BillingMeter whole(pricing, 0);
  whole.set_power(0, 750.0);
  whole.finish(end);

  Rng rng(GetParam());
  BillingMeter split(pricing, 0);
  split.set_power(0, 750.0);
  TimeSec t = 0;
  while (t < end) {
    t = std::min<TimeSec>(end, t + rng.uniform_int(1, 7000));
    if (t < end) split.set_power(t, 750.0);  // same power, extra cut
  }
  split.finish(end);

  EXPECT_NEAR(split.total_bill(), whole.total_bill(), 1e-9);
  EXPECT_NEAR(split.total_energy(), whole.total_energy(), 1e-6);
  EXPECT_NEAR(split.bill_in(PricePeriod::kOnPeak),
              whole.bill_in(PricePeriod::kOnPeak), 1e-9);
  ASSERT_EQ(split.daily_bills().size(), whole.daily_bills().size());
  for (std::size_t d = 0; d < whole.daily_bills().size(); ++d)
    EXPECT_NEAR(split.daily_bills()[d], whole.daily_bills()[d], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentSplitProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(BillingTest, HourlySeriesIntegration) {
  HourlyPriceSeries pricing({0.02, 0.04});  // alternating hours
  BillingMeter meter(pricing, 0);
  meter.set_power(0, 1000.0);
  meter.finish(4 * kSecondsPerHour);
  EXPECT_NEAR(meter.total_bill(), 2 * 0.02 + 2 * 0.04, 1e-9);
}

TEST(BillingTest, TouIntegration) {
  TouPricing pricing({{0, 0.02}, {6 * kSecondsPerHour, 0.05}}, 0.05);
  BillingMeter meter(pricing, 0);
  meter.set_power(0, 1000.0);
  meter.finish(kSecondsPerDay);
  EXPECT_NEAR(meter.total_bill(), 6 * 0.02 + 18 * 0.05, 1e-9);
}

}  // namespace
}  // namespace esched::power
