// Tests for the experiment runner's fixed thread pool.
#include "run/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace esched::run {
namespace {

TEST(ThreadPoolTest, RequiresAtLeastOneThread) {
  EXPECT_THROW(ThreadPool(0), Error);
}

TEST(ThreadPoolTest, RunsTasksSubmittedAfterStart) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.thread_count(), 2u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(pool.tasks_run(), 32u);
}

TEST(ThreadPoolTest, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  std::future<void> bad =
      pool.submit([]() -> void { throw std::runtime_error("task boom"); });
  std::future<int> good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing task must not kill its worker: the pool stays usable.
  EXPECT_EQ(good.get(), 7);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, GracefulShutdownDrainsQueuedWork) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  // Head task blocks the single worker so the rest provably sit queued
  // when shutdown() is called.
  pool.submit([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  pool.shutdown();
  EXPECT_EQ(counter.load(), 20);
  EXPECT_EQ(pool.tasks_run(), 21u);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 0; }), Error);
  pool.shutdown();  // idempotent
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++counter;
      });
    }
  }  // ~ThreadPool == graceful shutdown
  EXPECT_EQ(counter.load(), 16);
}

}  // namespace
}  // namespace esched::run
