// Tests for multi-queue priority support (§3's "multiple job queues with
// different priorities").
#include <gtest/gtest.h>

#include <sstream>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/pricing.hpp"
#include "sim/simulator.hpp"
#include "trace/swf.hpp"
#include "trace/trace.hpp"

namespace esched::sim {
namespace {

trace::Job make_job(JobId id, TimeSec submit, NodeCount nodes,
                    DurationSec runtime, int queue) {
  trace::Job j;
  j.id = id;
  j.submit = submit;
  j.nodes = nodes;
  j.runtime = runtime;
  j.walltime = runtime;
  j.power_per_node = 30.0;
  j.queue = queue;
  return j;
}

TEST(PriorityTest, HighPriorityJumpsTheWaitingLine) {
  // Machine busy until t=1000. Low-priority job waits from t=0; a
  // high-priority (queue 0 < 1) job arrives at t=500 and must start
  // first when the machine frees up.
  trace::Trace t("prio", 10);
  t.add_job(make_job(1, 0, 10, 1000, 0));   // occupies everything
  t.add_job(make_job(2, 10, 10, 100, 1));   // low priority, waits
  t.add_job(make_job(3, 500, 10, 100, 0));  // high priority, arrives later
  power::FlatPricing pricing(0.1);
  core::FcfsPolicy policy;
  SimConfig cfg;
  cfg.honor_queue_priority = true;
  const SimResult r = simulate(t, pricing, policy, cfg);
  EXPECT_EQ(r.records[2].start, 1000);  // job 3 first
  EXPECT_EQ(r.records[1].start, 1100);  // then job 2
}

TEST(PriorityTest, DisabledByDefault) {
  trace::Trace t("noprio", 10);
  t.add_job(make_job(1, 0, 10, 1000, 0));
  t.add_job(make_job(2, 10, 10, 100, 1));
  t.add_job(make_job(3, 500, 10, 100, 0));
  power::FlatPricing pricing(0.1);
  core::FcfsPolicy policy;
  const SimResult r = simulate(t, pricing, policy);
  EXPECT_EQ(r.records[1].start, 1000);  // plain FCFS: job 2 first
  EXPECT_EQ(r.records[2].start, 1100);
}

TEST(PriorityTest, FcfsWithinTheSameClass) {
  trace::Trace t("intra", 10);
  t.add_job(make_job(1, 0, 10, 1000, 1));
  t.add_job(make_job(2, 10, 10, 100, 1));
  t.add_job(make_job(3, 20, 10, 100, 1));  // same class, later arrival
  power::FlatPricing pricing(0.1);
  core::FcfsPolicy policy;
  SimConfig cfg;
  cfg.honor_queue_priority = true;
  const SimResult r = simulate(t, pricing, policy, cfg);
  EXPECT_EQ(r.records[1].start, 1000);
  EXPECT_EQ(r.records[2].start, 1100);
}

TEST(PriorityTest, WindowPoliciesSeePriorityOrderedWindow) {
  // Window 2: with priorities on, the two high-priority jobs form the
  // window; the cheap low-priority job outside it cannot be chosen even
  // though greedy on-peak would prefer it.
  trace::Trace t("window", 10);
  t.add_job(make_job(1, 0, 10, 1000, 0));
  trace::Job cheap = make_job(2, 10, 10, 100, 1);
  cheap.power_per_node = 5.0;
  t.add_job(cheap);
  trace::Job hot1 = make_job(3, 20, 10, 100, 0);
  hot1.power_per_node = 50.0;
  t.add_job(hot1);
  trace::Job hot2 = make_job(4, 30, 10, 100, 0);
  hot2.power_per_node = 60.0;
  t.add_job(hot2);
  power::OnOffPeakPricing pricing(0.03, 3.0, 0, kSecondsPerDay);  // always on-peak
  core::GreedyPowerPolicy policy;
  SimConfig cfg;
  cfg.honor_queue_priority = true;
  cfg.scheduler.window_size = 2;
  cfg.scheduler.backfill_beyond_window = false;
  const SimResult r = simulate(t, pricing, policy, cfg);
  // At t=1000 jobs 3 and 4 (queue 0) precede job 2 (queue 1), so the
  // 2-job window is {3, 4} and greedy starts the cooler job 3 — even
  // though the 5 W job 2 would top an unprioritised window. Once job 3
  // leaves, both remaining jobs fit the window and power order resumes.
  EXPECT_EQ(r.records[2].start, 1000);
  EXPECT_EQ(r.records[1].start, 1100);
  EXPECT_EQ(r.records[3].start, 1200);
}

TEST(PrioritySwfTest, QueueColumnRoundTrips) {
  trace::Trace t("swfprio", 64);
  trace::Job j = make_job(1, 0, 8, 600, 3);
  t.add_job(j);
  std::ostringstream out;
  trace::swf::save(out, t, false);
  std::istringstream in(out.str());
  const trace::Trace back = trace::swf::load(in, "rt");
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].queue, 3);
}

TEST(PrioritySwfTest, MissingQueueDefaultsToZero) {
  std::istringstream in(
      "; MaxNodes: 64\n"
      "1 0 -1 60 8 -1 -1 8 60 -1 1 0 -1 -1 -1 -1 -1 -1\n");
  const trace::Trace t = trace::swf::load(in, "t");
  EXPECT_EQ(t[0].queue, 0);
}

}  // namespace
}  // namespace esched::sim
