// Tests for RunningStats, quantile, weighted_mean and percent_change.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace esched {
namespace {

TEST(RunningStatsTest, EmptyIsAllZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats s;
  s.add(-3.0);
  EXPECT_DOUBLE_EQ(s.mean(), -3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(99);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 3.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(QuantileTest, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(QuantileTest, InterpolatesBetweenRanks) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(QuantileTest, EmptyAndInvalid) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(quantile(empty, 0.5), 0.0);
  const std::vector<double> v{1.0};
  EXPECT_THROW(quantile(v, -0.1), Error);
  EXPECT_THROW(quantile(v, 1.1), Error);
}

TEST(WeightedMeanTest, Basics) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  const std::vector<double> weights{1.0, 0.0, 3.0};
  EXPECT_DOUBLE_EQ(weighted_mean(values, weights), 10.0 / 4.0);
}

TEST(WeightedMeanTest, ZeroTotalWeight) {
  const std::vector<double> values{1.0, 2.0};
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_DOUBLE_EQ(weighted_mean(values, weights), 0.0);
}

TEST(WeightedMeanTest, RejectsMismatchedAndNegative) {
  const std::vector<double> values{1.0, 2.0};
  const std::vector<double> short_w{1.0};
  EXPECT_THROW(weighted_mean(values, short_w), Error);
  const std::vector<double> neg_w{1.0, -1.0};
  EXPECT_THROW(weighted_mean(values, neg_w), Error);
}

TEST(PercentChangeTest, Basics) {
  EXPECT_DOUBLE_EQ(percent_change(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_change(90.0, 100.0), -10.0);
  EXPECT_DOUBLE_EQ(percent_change(5.0, 0.0), 0.0);
}

}  // namespace
}  // namespace esched
