// Unit tests for the report-table builders.
#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::metrics {
namespace {

sim::SimResult make_result(const std::string& policy, double daily_bill,
                           DurationSec wait) {
  sim::SimResult r;
  r.policy_name = policy;
  r.trace_name = std::string("trace");  // std::string() avoids GCC12 -Wrestrict FP
  r.system_nodes = 100;
  r.horizon_begin = 0;
  r.horizon_end = 2 * kSecondsPerMonth;
  for (int i = 0; i < 4; ++i) {
    sim::JobRecord rec;
    rec.id = i + 1;
    rec.submit = static_cast<TimeSec>(i) * kSecondsPerMonth / 2;
    rec.start = rec.submit + wait;
    rec.finish = rec.start + 3600;
    rec.nodes = 50;
    rec.power_per_node = 30.0;
    r.records.push_back(rec);
  }
  r.daily_bills.assign(60, daily_bill);
  r.total_bill = daily_bill * 60;
  r.power_curve.assign(24, 1000.0);
  r.utilization_curve.assign(24, 0.5);
  return r;
}

TEST(ReportTest, UtilizationTableShape) {
  const std::vector<sim::SimResult> results{make_result("FCFS", 10, 0),
                                            make_result("Greedy", 9, 5)};
  const Table t = monthly_utilization_table(results, 2);
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.row_count(), 3u);  // 2 months + overall
  EXPECT_EQ(t.at(2, 0), "overall");
}

TEST(ReportTest, SavingTableComputesPercentages) {
  const std::vector<sim::SimResult> results{make_result("FCFS", 10, 0),
                                            make_result("Greedy", 9, 0)};
  const Table t = monthly_saving_table(results, 2);
  EXPECT_EQ(t.at(0, 1), "10.00%");
  EXPECT_EQ(t.at(2, 0), "average");
  EXPECT_EQ(t.at(2, 1), "10.00%");
  const std::vector<sim::SimResult> only_base{make_result("FCFS", 10, 0)};
  EXPECT_THROW(monthly_saving_table(only_base, 2), Error);
}

TEST(ReportTest, WaitTableUsesSeconds) {
  const std::vector<sim::SimResult> results{make_result("FCFS", 10, 120)};
  const Table t = monthly_wait_table(results, 2);
  EXPECT_EQ(t.at(0, 1), "120.0");
  EXPECT_EQ(t.at(2, 1), "120.0");  // overall row
}

TEST(ReportTest, SummaryLineMentionsEverything) {
  const std::string line = summary_line(make_result("Knapsack", 10, 60));
  EXPECT_NE(line.find("Knapsack"), std::string::npos);
  EXPECT_NE(line.find("bill="), std::string::npos);
  EXPECT_NE(line.find("util="), std::string::npos);
  EXPECT_NE(line.find("mean-wait=60.0s"), std::string::npos);
}

TEST(ReportTest, CurveTableStepsAndScales) {
  const std::vector<sim::SimResult> results{make_result("FCFS", 10, 0)};
  // 24 bins at step 6 -> 4 rows; scale W to kW.
  const Table t = daily_curve_table(results, false, 6, 1e-3, "kW");
  EXPECT_EQ(t.row_count(), 4u);
  EXPECT_EQ(t.at(0, 0), "00:00");
  EXPECT_EQ(t.at(1, 0), "06:00");
  EXPECT_EQ(t.at(0, 1), "1.000");
  const Table u = daily_curve_table(results, true, 6, 100.0, "%");
  EXPECT_EQ(u.at(0, 1), "50.000");
}

TEST(ReportTest, CurveTableValidatesInput) {
  std::vector<sim::SimResult> results{make_result("FCFS", 10, 0)};
  results[0].power_curve.clear();
  results[0].utilization_curve.clear();
  EXPECT_THROW(daily_curve_table(results, false, 4, 1.0, "W"), Error);
  EXPECT_THROW(daily_curve_table({}, false, 4, 1.0, "W"), Error);
}

}  // namespace
}  // namespace esched::metrics
