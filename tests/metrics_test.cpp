// Tests for metric computation: Eq. 3 utilization, monthly splits, bill
// savings, and the result validator.
#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::metrics {
namespace {

sim::JobRecord rec(JobId id, TimeSec submit, TimeSec start, TimeSec finish,
                   NodeCount nodes, Watts power = 30.0) {
  return sim::JobRecord{id, submit, start, finish, nodes, power};
}

sim::SimResult result_with(std::vector<sim::JobRecord> records,
                           NodeCount system_nodes, TimeSec begin,
                           TimeSec end) {
  sim::SimResult r;
  r.policy_name = "test";
  r.system_nodes = system_nodes;
  r.horizon_begin = begin;
  r.horizon_end = end;
  r.records = std::move(records);
  return r;
}

TEST(UtilizationTest, Eq3OnKnownSchedule) {
  // 100-node machine, horizon 1000 s: job A 50 nodes for 400 s, job B
  // 100 nodes for 300 s -> (20000 + 30000) / 100000 = 0.5.
  const auto r = result_with(
      {rec(1, 0, 0, 400, 50), rec(2, 0, 400, 700, 100)}, 100, 0, 1000);
  EXPECT_DOUBLE_EQ(overall_utilization(r), 0.5);
}

TEST(UtilizationTest, EmptyAndDegenerate) {
  const auto empty = result_with({}, 100, 0, 0);
  EXPECT_DOUBLE_EQ(overall_utilization(empty), 0.0);
}

TEST(UtilizationTest, MonthlySplitsClipJobSpans) {
  // Job spans the month boundary: 2 days in month 0, 3 days in month 1.
  const TimeSec mb = kSecondsPerMonth;
  const auto r = result_with(
      {rec(1, 0, mb - 2 * kSecondsPerDay, mb + 3 * kSecondsPerDay, 100)},
      100, 0, 2 * kSecondsPerMonth);
  const auto util = monthly_utilization(r, 2);
  EXPECT_NEAR(util[0], 2.0 / 30.0, 1e-12);
  EXPECT_NEAR(util[1], 3.0 / 30.0, 1e-12);
}

TEST(UtilizationTest, MonthlyDenominatorUsesHorizonOverlap) {
  // Horizon covers only half of month 0; a job busy for that whole half
  // means 100% utilization for the month.
  const TimeSec half = kSecondsPerMonth / 2;
  const auto r = result_with({rec(1, 0, 0, half, 100)}, 100, 0, half);
  const auto util = monthly_utilization(r, 1);
  EXPECT_DOUBLE_EQ(util[0], 1.0);
}

TEST(WaitTest, MonthlyMeansGroupBySubmission) {
  const TimeSec m1 = kSecondsPerMonth;
  const auto r = result_with(
      {
          rec(1, 0, 100, 200, 10),        // month 0, wait 100
          rec(2, 50, 350, 400, 10),       // month 0, wait 300
          rec(3, m1 + 10, m1 + 20, m1 + 30, 10),  // month 1, wait 10
      },
      100, 0, 2 * kSecondsPerMonth);
  const auto wait = monthly_mean_wait(r, 2);
  EXPECT_DOUBLE_EQ(wait[0], 200.0);
  EXPECT_DOUBLE_EQ(wait[1], 10.0);
}

TEST(BillTest, MonthlyBillsAggregatesDailyAndSavings) {
  sim::SimResult base = result_with({}, 10, 0, 2 * kSecondsPerMonth);
  base.daily_bills.assign(60, 10.0);  // $10/day for 2 months
  base.total_bill = 600.0;
  sim::SimResult cheap = base;
  cheap.daily_bills.assign(60, 9.0);
  cheap.total_bill = 540.0;

  const auto mb = monthly_bill(base, 2);
  EXPECT_DOUBLE_EQ(mb[0], 300.0);
  EXPECT_DOUBLE_EQ(mb[1], 300.0);

  EXPECT_DOUBLE_EQ(bill_saving_percent(base, cheap), 10.0);
  const auto ms = monthly_bill_saving_percent(base, cheap, 2);
  EXPECT_DOUBLE_EQ(ms[0], 10.0);
  EXPECT_DOUBLE_EQ(ms[1], 10.0);
  // Zero-bill baseline reports zero saving, not a division blowup.
  sim::SimResult zero = base;
  zero.total_bill = 0.0;
  EXPECT_DOUBLE_EQ(bill_saving_percent(zero, cheap), 0.0);
}

TEST(HorizonMonthsTest, CountsCoveringMonths) {
  auto r = result_with({}, 10, 0, kSecondsPerMonth);
  EXPECT_EQ(horizon_months(r), 1u);
  r.horizon_end = kSecondsPerMonth + 1;
  EXPECT_EQ(horizon_months(r), 2u);
  r.horizon_end = 0;
  EXPECT_EQ(horizon_months(r), 1u);
}

TEST(ValidateResultTest, AcceptsConsistentSchedule) {
  const auto r = result_with(
      {rec(1, 0, 0, 400, 50), rec(2, 0, 0, 300, 50),
       rec(3, 100, 400, 500, 100)},
      100, 0, 500);
  EXPECT_NO_THROW(validate_result(r));
}

TEST(ValidateResultTest, CatchesOverAllocation) {
  const auto r = result_with(
      {rec(1, 0, 0, 400, 60), rec(2, 0, 0, 300, 60)}, 100, 0, 400);
  EXPECT_THROW(validate_result(r), Error);
}

TEST(ValidateResultTest, CatchesTemporalViolations) {
  // Start before submit.
  auto r = result_with({rec(1, 100, 50, 200, 10)}, 100, 0, 200);
  EXPECT_THROW(validate_result(r), Error);
  // Finish before start.
  r = result_with({rec(1, 0, 100, 100, 10)}, 100, 0, 200);
  EXPECT_THROW(validate_result(r), Error);
  // Outside the horizon.
  r = result_with({rec(1, 0, 0, 500, 10)}, 100, 0, 400);
  EXPECT_THROW(validate_result(r), Error);
}

TEST(ValidateResultTest, BackToBackAllocationsAtSameInstantAreFine) {
  // Job 2 starts exactly when job 1 finishes, using the same nodes.
  const auto r = result_with(
      {rec(1, 0, 0, 100, 100), rec(2, 0, 100, 200, 100)}, 100, 0, 200);
  EXPECT_NO_THROW(validate_result(r));
}

}  // namespace
}  // namespace esched::metrics
