// Randomized property tests for the Scheduler's dispatch guarantees,
// across all policies, window sizes and price periods:
//   * starts always fit collectively in the free nodes;
//   * window policies are maximal — after the pass no window job fits the
//     leftover (the paper's utilization rule);
//   * off-peak, Knapsack's started aggregate power is at least Greedy's
//     (it solves optimally what greedy first-fit approximates);
//   * on-peak, Knapsack packs at least as many nodes as Greedy.
#include <gtest/gtest.h>

#include <vector>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace esched::core {
namespace {

using power::PricePeriod;

std::vector<PendingJob> random_queue(Rng& rng, NodeCount system) {
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 40));
  std::vector<PendingJob> queue;
  queue.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PendingJob j;
    j.id = static_cast<JobId>(i + 1);
    j.submit = static_cast<TimeSec>(i);
    j.nodes = rng.uniform_int(1, system);
    j.walltime = rng.uniform_int(60, 7200);
    j.power_per_node = rng.uniform(20.0, 60.0);
    queue.push_back(j);
  }
  return queue;
}

std::vector<RunningJob> random_running(Rng& rng, NodeCount busy) {
  std::vector<RunningJob> running;
  NodeCount left = busy;
  while (left > 0) {
    const NodeCount nodes = rng.uniform_int(1, left);
    running.push_back({nodes, rng.uniform_int(100, 5000)});
    left -= nodes;
  }
  return running;
}

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, StartsFitAndWindowPoliciesAreMaximal) {
  Rng rng(GetParam());
  for (int round = 0; round < 120; ++round) {
    const NodeCount system = rng.uniform_int(8, 64);
    const NodeCount free = rng.uniform_int(0, system);
    const auto queue = random_queue(rng, system);
    const auto running = random_running(rng, system - free);
    const auto period = rng.bernoulli(0.5) ? PricePeriod::kOnPeak
                                           : PricePeriod::kOffPeak;
    const ScheduleContext ctx{1000, free, system, period};

    for (int which = 0; which < 3; ++which) {
      FcfsPolicy fcfs;
      GreedyPowerPolicy greedy;
      KnapsackPolicy knapsack;
      SchedulingPolicy& policy =
          which == 0 ? static_cast<SchedulingPolicy&>(fcfs)
          : which == 1 ? static_cast<SchedulingPolicy&>(greedy)
                       : static_cast<SchedulingPolicy&>(knapsack);
      SchedulerConfig cfg;
      cfg.window_size = static_cast<std::size_t>(rng.uniform_int(1, 30));
      cfg.backfill_beyond_window = rng.bernoulli(0.5);
      Scheduler scheduler(policy, cfg);
      const auto starts = scheduler.decide(ctx, queue, running);

      // Collective fit + no duplicates.
      NodeCount used = 0;
      std::vector<bool> seen(queue.size(), false);
      for (const std::size_t qi : starts) {
        ASSERT_LT(qi, queue.size());
        ASSERT_FALSE(seen[qi]);
        seen[qi] = true;
        used += queue[qi].nodes;
      }
      ASSERT_LE(used, free);

      // Maximality within the window for window policies: no unstarted
      // window job fits the leftover nodes.
      if (!policy.strict_order()) {
        const std::size_t w = std::min(cfg.window_size, queue.size());
        const NodeCount leftover = free - used;
        for (std::size_t i = 0; i < w; ++i) {
          if (!seen[i]) {
            ASSERT_GT(queue[i].nodes, leftover);
          }
        }
      }
    }
  }
}

TEST_P(SchedulerProperty, KnapsackDominatesGreedyOnItsObjective) {
  Rng rng(GetParam() + 5000);
  for (int round = 0; round < 120; ++round) {
    const NodeCount system = rng.uniform_int(8, 64);
    const NodeCount free = rng.uniform_int(1, system);
    auto queue = random_queue(rng, system);
    // Keep everything inside one window so the comparison is pure.
    if (queue.size() > 20) queue.resize(20);
    SchedulerConfig cfg;
    cfg.window_size = 20;
    cfg.backfill_beyond_window = false;

    for (const auto period :
         {PricePeriod::kOnPeak, PricePeriod::kOffPeak}) {
      const ScheduleContext ctx{1000, free, system, period};
      GreedyPowerPolicy greedy_policy;
      KnapsackPolicy knapsack_policy;
      Scheduler greedy(greedy_policy, cfg);
      Scheduler knapsack(knapsack_policy, cfg);
      const auto gs = greedy.decide(ctx, queue, {});
      const auto ks = knapsack.decide(ctx, queue, {});

      NodeCount g_nodes = 0;
      NodeCount k_nodes = 0;
      double g_power = 0.0;
      double k_power = 0.0;
      for (const auto qi : gs) {
        g_nodes += queue[qi].nodes;
        g_power += queue[qi].total_power();
      }
      for (const auto qi : ks) {
        k_nodes += queue[qi].nodes;
        k_power += queue[qi].total_power();
      }
      if (period == PricePeriod::kOffPeak) {
        // Knapsack maximises aggregate power over all feasible subsets;
        // greedy first-fit produces one such subset.
        EXPECT_GE(k_power, g_power - 1e-9);
      } else {
        // On-peak knapsack packs maximally.
        EXPECT_GE(k_nodes, g_nodes);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace esched::core
