// Tests for the counter/gauge/timer registry (src/obs/registry.*): the
// sharded-counter arithmetic, the enable gate, and the golden shape of
// the JSON snapshot (valid JSON, keys sorted — stable across runs).
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_check.hpp"
#include "util/error.hpp"

namespace esched::obs {
namespace {

// Each test uses its own Registry instance (not Registry::global()) so
// tests stay order-independent; the global enable flag is restored by the
// fixture because other suites in this binary may care.
class ObsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { was_enabled_ = counters_enabled(); }
  void TearDown() override { set_counters_enabled(was_enabled_); }
  Registry registry_;
  bool was_enabled_ = false;
};

TEST_F(ObsRegistryTest, CountersStartDisabled) {
  // The process-wide default: observability is opt-in.
  EXPECT_FALSE(was_enabled_);
  set_counters_enabled(true);
  EXPECT_TRUE(counters_enabled());
  set_counters_enabled(false);
  EXPECT_FALSE(counters_enabled());
}

TEST_F(ObsRegistryTest, CounterSumsAcrossThreads) {
  Counter& c = registry_.counter("test.threads");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsRegistryTest, LookupIsFindOrCreate) {
  Counter& a = registry_.counter("same.name");
  Counter& b = registry_.counter("same.name");
  EXPECT_EQ(&a, &b);  // cached references stay valid
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_NE(&registry_.counter("other.name"), &a);
}

TEST_F(ObsRegistryTest, TimerAccumulatesIntervals) {
  Timer& t = registry_.timer("test.timer");
  t.record(100);
  t.record(250);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_EQ(t.total_nanos(), 350u);
}

TEST_F(ObsRegistryTest, ScopedTimerRecordsOnlyWhenEnabled) {
  Timer& t = registry_.timer("test.scoped");
  set_counters_enabled(false);
  { ScopedTimer scope(t); }
  EXPECT_EQ(t.count(), 0u);
  set_counters_enabled(true);
  { ScopedTimer scope(t); }
  EXPECT_EQ(t.count(), 1u);
}

TEST_F(ObsRegistryTest, SnapshotCopiesEveryInstrument) {
  registry_.counter("c.one").add(7);
  registry_.gauge("g.one").set(2.5);
  registry_.timer("t.one").record(42);
  const Registry::Snapshot snap = registry_.snapshot();
  ASSERT_EQ(snap.counters.count("c.one"), 1u);
  EXPECT_EQ(snap.counters.at("c.one"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g.one"), 2.5);
  EXPECT_EQ(snap.timers.at("t.one").count, 1u);
  EXPECT_EQ(snap.timers.at("t.one").total_nanos, 42u);
}

TEST_F(ObsRegistryTest, JsonSnapshotIsValidWithSortedKeys) {
  // Register deliberately out of order: the export must sort.
  registry_.counter("zebra").add(1);
  registry_.counter("alpha").add(2);
  registry_.counter("mid.dle").add(3);
  registry_.gauge("g").set(1.5);
  registry_.timer("t").record(9);
  std::ostringstream os;
  registry_.write_json(os);
  const std::string json = os.str();

  std::string error;
  EXPECT_TRUE(testjson::is_valid_json(json, &error)) << error;

  const std::size_t alpha = json.find("\"alpha\"");
  const std::size_t middle = json.find("\"mid.dle\"");
  const std::size_t zebra = json.find("\"zebra\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(middle, std::string::npos);
  ASSERT_NE(zebra, std::string::npos);
  EXPECT_LT(alpha, middle);
  EXPECT_LT(middle, zebra);

  // Section order is part of the golden shape too.
  EXPECT_LT(json.find("\"counters\""), json.find("\"gauges\""));
  EXPECT_LT(json.find("\"gauges\""), json.find("\"timers\""));
  EXPECT_NE(json.find("\"total_nanos\": 9"), std::string::npos);
}

TEST_F(ObsRegistryTest, EmptyRegistryStillEmitsValidJson) {
  std::ostringstream os;
  registry_.write_json(os);
  std::string error;
  EXPECT_TRUE(testjson::is_valid_json(os.str(), &error)) << error;
}

TEST_F(ObsRegistryTest, WriteJsonFileRoundTrips) {
  registry_.counter("file.counter").add(11);
  const std::string path = ::testing::TempDir() + "obs_registry_test.json";
  registry_.write_json_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  EXPECT_TRUE(testjson::is_valid_json(buffer.str(), &error)) << error;
  EXPECT_NE(buffer.str().find("\"file.counter\": 11"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsRegistryTest, WriteJsonFileThrowsWithPathOnFailure) {
  const std::string path = "/nonexistent-dir-esched/metrics.json";
  try {
    registry_.write_json_file(path);
    FAIL() << "expected esched::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

TEST_F(ObsRegistryTest, ResetZeroesButKeepsNames) {
  registry_.counter("r.c").add(5);
  registry_.gauge("r.g").set(4.0);
  registry_.timer("r.t").record(6);
  registry_.reset();
  const Registry::Snapshot snap = registry_.snapshot();
  EXPECT_EQ(snap.counters.at("r.c"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("r.g"), 0.0);
  EXPECT_EQ(snap.timers.at("r.t").count, 0u);
}

}  // namespace
}  // namespace esched::obs
