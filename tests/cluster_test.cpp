// Tests for the Cluster node pool and its power accounting.
#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace esched::sim {
namespace {

TEST(ClusterTest, AllocateAndRelease) {
  Cluster c(100);
  EXPECT_EQ(c.total_nodes(), 100);
  EXPECT_EQ(c.free_nodes(), 100);
  EXPECT_EQ(c.busy_nodes(), 0);

  c.allocate(1, 30, 25.0);
  EXPECT_EQ(c.free_nodes(), 70);
  EXPECT_EQ(c.busy_nodes(), 30);
  EXPECT_EQ(c.running_jobs(), 1u);

  c.allocate(2, 70, 40.0);
  EXPECT_EQ(c.free_nodes(), 0);
  EXPECT_FALSE(c.fits(1));

  c.release(1);
  EXPECT_EQ(c.free_nodes(), 30);
  c.release(2);
  EXPECT_EQ(c.free_nodes(), 100);
  EXPECT_EQ(c.running_jobs(), 0u);
}

TEST(ClusterTest, PowerTracksRunningMix) {
  Cluster c(100);
  EXPECT_DOUBLE_EQ(c.current_power(), 0.0);
  c.allocate(1, 10, 25.0);  // 250 W
  EXPECT_DOUBLE_EQ(c.current_power(), 250.0);
  c.allocate(2, 20, 50.0);  // +1000 W
  EXPECT_DOUBLE_EQ(c.current_power(), 1250.0);
  c.release(1);
  EXPECT_DOUBLE_EQ(c.current_power(), 1000.0);
  c.release(2);
  EXPECT_DOUBLE_EQ(c.current_power(), 0.0);
}

TEST(ClusterTest, IdlePowerCountsFreeNodes) {
  Cluster c(10, /*idle_watts_per_node=*/5.0);
  EXPECT_DOUBLE_EQ(c.current_power(), 50.0);  // all idle
  c.allocate(1, 4, 30.0);
  // 4*30 busy + 6*5 idle.
  EXPECT_DOUBLE_EQ(c.current_power(), 120.0 + 30.0);
  c.release(1);
  EXPECT_DOUBLE_EQ(c.current_power(), 50.0);
}

TEST(ClusterTest, RejectsMisuse) {
  Cluster c(10);
  EXPECT_THROW(c.allocate(1, 11, 10.0), Error);  // too big
  EXPECT_THROW(c.allocate(1, 0, 10.0), Error);   // no nodes
  EXPECT_THROW(c.allocate(1, 2, -1.0), Error);   // negative power
  c.allocate(1, 5, 10.0);
  EXPECT_THROW(c.allocate(1, 2, 10.0), Error);   // duplicate id
  EXPECT_THROW(c.allocate(2, 6, 10.0), Error);   // over capacity
  EXPECT_THROW(c.release(99), Error);            // unknown job
  c.release(1);
  EXPECT_THROW(c.release(1), Error);             // double release
}

TEST(ClusterTest, ConstructionValidation) {
  EXPECT_THROW(Cluster(0), Error);
  EXPECT_THROW(Cluster(10, -1.0), Error);
}

}  // namespace
}  // namespace esched::sim
