// Tests for the EnergyKnapsackPolicy extension (period-overlap-weighted
// knapsack values).
#include "core/energy_knapsack_policy.hpp"

#include <gtest/gtest.h>

#include "core/knapsack_policy.hpp"

namespace esched::core {
namespace {

using power::PricePeriod;

PendingJob job(JobId id, NodeCount nodes, DurationSec walltime,
               Watts power) {
  return PendingJob{id, 0, nodes, walltime, power};
}

TEST(EnergyKnapsackTest, OverlapOutweighsInstantaneousPower) {
  // Capacity 4 off-peak with 2 h left in the period. Job A: hot (60 W)
  // but only 10 min of it lands in the cheap window. Job B: cooler (40 W)
  // but runs the whole 2 h. Instantaneous-power knapsack picks A; the
  // energy variant picks B (40*7200 > 60*600).
  const std::vector<PendingJob> window{
      job(1, 4, 600, 60.0),
      job(2, 4, 10 * 3600, 40.0),
  };
  ScheduleContext ctx{0, 4, 8, PricePeriod::kOffPeak};
  ctx.period_end = 2 * 3600;

  KnapsackPolicy base;
  EXPECT_EQ(base.select(window, ctx).chosen, (std::vector<std::size_t>{0}));

  EnergyKnapsackPolicy energy;
  EXPECT_EQ(energy.select(window, ctx).chosen,
            (std::vector<std::size_t>{1}));
}

TEST(EnergyKnapsackTest, FallsBackToWalltimeWithoutBoundary) {
  // period_end unknown (0): weight by walltime. Same two jobs: B's
  // walltime-energy 40*36000 beats A's 60*600.
  const std::vector<PendingJob> window{
      job(1, 4, 600, 60.0),
      job(2, 4, 10 * 3600, 40.0),
  };
  const ScheduleContext ctx{0, 4, 8, PricePeriod::kOffPeak};
  EnergyKnapsackPolicy energy;
  EXPECT_EQ(energy.select(window, ctx).chosen,
            (std::vector<std::size_t>{1}));
}

TEST(EnergyKnapsackTest, OnPeakStillPacksMaximally) {
  // The utilization rule must survive the value change: on-peak the
  // selection fills all nodes, minimising within-period energy.
  const std::vector<PendingJob> window{
      job(1, 8, 3600, 50.0),             // fills alone, hot
      job(2, 4, 3600, 10.0),
      job(3, 4, 3600, 20.0),
  };
  ScheduleContext ctx{0, 8, 8, PricePeriod::kOnPeak};
  ctx.period_end = 3600;
  EnergyKnapsackPolicy energy;
  const auto sel = energy.select(window, ctx);
  EXPECT_EQ(sel.total_weight, 8);
  EXPECT_EQ(sel.chosen, (std::vector<std::size_t>{1, 2}));
}

TEST(EnergyKnapsackTest, PrioritizeIsAPermutation) {
  const std::vector<PendingJob> window{
      job(1, 4, 600, 60.0), job(2, 4, 7200, 40.0), job(3, 2, 100, 20.0)};
  ScheduleContext ctx{0, 6, 8, PricePeriod::kOffPeak};
  ctx.period_end = 3600;
  EnergyKnapsackPolicy energy;
  const auto order = energy.prioritize(window, ctx);
  require_permutation(order, window.size());
  EXPECT_EQ(energy.name(), "EnergyKnapsack");
}

TEST(EnergyKnapsackTest, EquivalentToBaseForUniformWalltimes) {
  // When every job has the same within-period overlap, the energy values
  // are a constant multiple of the power values, so selections agree.
  const std::vector<PendingJob> window{
      job(1, 4, 7200, 50.0), job(2, 4, 7200, 10.0), job(3, 4, 7200, 45.0)};
  for (const auto period : {PricePeriod::kOnPeak, PricePeriod::kOffPeak}) {
    ScheduleContext ctx{0, 8, 8, period};
    ctx.period_end = 3600;  // overlap = 3600 for all three
    KnapsackPolicy base;
    EnergyKnapsackPolicy energy;
    EXPECT_EQ(base.select(window, ctx).chosen,
              energy.select(window, ctx).chosen);
  }
}

}  // namespace
}  // namespace esched::core
