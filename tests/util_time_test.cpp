// Tests for the simulation-calendar helpers.
#include "util/time_util.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace esched {
namespace {

TEST(TimeUtilTest, SecondOfDayWrapsDaily) {
  EXPECT_EQ(second_of_day(0), 0);
  EXPECT_EQ(second_of_day(3601), 3601);
  EXPECT_EQ(second_of_day(kSecondsPerDay), 0);
  EXPECT_EQ(second_of_day(kSecondsPerDay + 5), 5);
  EXPECT_EQ(second_of_day(3 * kSecondsPerDay - 1), kSecondsPerDay - 1);
}

TEST(TimeUtilTest, NegativeTimesFloor) {
  EXPECT_EQ(second_of_day(-1), kSecondsPerDay - 1);
  EXPECT_EQ(day_index(-1), -1);
  EXPECT_EQ(day_index(-kSecondsPerDay), -1);
  EXPECT_EQ(day_index(-kSecondsPerDay - 1), -2);
}

TEST(TimeUtilTest, HourOfDay) {
  EXPECT_EQ(hour_of_day(0), 0);
  EXPECT_EQ(hour_of_day(12 * kSecondsPerHour), 12);
  EXPECT_EQ(hour_of_day(12 * kSecondsPerHour - 1), 11);
  EXPECT_EQ(hour_of_day(kSecondsPerDay + 13 * kSecondsPerHour), 13);
}

TEST(TimeUtilTest, DayAndMonthIndices) {
  EXPECT_EQ(day_index(0), 0);
  EXPECT_EQ(day_index(kSecondsPerDay - 1), 0);
  EXPECT_EQ(day_index(kSecondsPerDay), 1);
  EXPECT_EQ(month_index(0), 0);
  EXPECT_EQ(month_index(kSecondsPerMonth - 1), 0);
  EXPECT_EQ(month_index(kSecondsPerMonth), 1);
  EXPECT_EQ(month_index(5 * kSecondsPerMonth + 3), 5);
}

TEST(TimeUtilTest, StartOfDayAndMonth) {
  EXPECT_EQ(start_of_day(12345), 0);
  EXPECT_EQ(start_of_day(kSecondsPerDay + 1), kSecondsPerDay);
  EXPECT_EQ(start_of_month(kSecondsPerMonth + 77), kSecondsPerMonth);
}

TEST(TimeUtilTest, NextTickAlignment) {
  EXPECT_EQ(next_tick_at_or_after(0, 10), 0);
  EXPECT_EQ(next_tick_at_or_after(1, 10), 10);
  EXPECT_EQ(next_tick_at_or_after(10, 10), 10);
  EXPECT_EQ(next_tick_at_or_after(11, 10), 20);
  EXPECT_EQ(next_tick_at_or_after(29, 30), 30);
  EXPECT_THROW(next_tick_at_or_after(0, 0), Error);
}

TEST(TimeUtilTest, Formatting) {
  EXPECT_EQ(format_time(0), "0d 00:00:00");
  EXPECT_EQ(format_time(kSecondsPerDay + 7 * 3600 + 30 * 60),
            "1d 07:30:00");
  EXPECT_EQ(format_time_of_day(0), "00:00");
  EXPECT_EQ(format_time_of_day(12 * kSecondsPerHour), "12:00");
  EXPECT_THROW(format_time_of_day(kSecondsPerDay), Error);
}

TEST(TimeUtilTest, DurationFormatting) {
  EXPECT_EQ(format_duration(65), "1m 05s");
  EXPECT_EQ(format_duration(3 * 3600 + 5 * 60 + 10), "3h 05m 10s");
  EXPECT_EQ(format_duration(2 * kSecondsPerDay + 3 * 3600 + 60),
            "2d 3h 01m");
}

}  // namespace
}  // namespace esched
