// Tests for the command-line flag parser.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace esched {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, SpaceSeparatedValues) {
  const CliArgs args = parse({"--months", "5", "--name", "anl"});
  EXPECT_EQ(args.get_int_or("months", 0), 5);
  EXPECT_EQ(args.get_or("name", ""), "anl");
}

TEST(CliTest, EqualsSeparatedValues) {
  const CliArgs args = parse({"--ratio=3.5", "--swf=/tmp/x.swf"});
  EXPECT_DOUBLE_EQ(args.get_double_or("ratio", 0.0), 3.5);
  EXPECT_EQ(args.get_or("swf", ""), "/tmp/x.swf");
}

TEST(CliTest, BareBooleanFlags) {
  const CliArgs args = parse({"--csv", "--verbose", "--k", "v"});
  EXPECT_TRUE(args.has("csv"));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("quiet"));
  EXPECT_EQ(args.get_or("k", ""), "v");
}

TEST(CliTest, FlagFollowedByFlagIsBoolean) {
  const CliArgs args = parse({"--csv", "--months", "3"});
  EXPECT_TRUE(args.has("csv"));
  EXPECT_EQ(args.get("csv").value(), "");
  EXPECT_EQ(args.get_int_or("months", 0), 3);
}

TEST(CliTest, PositionalArguments) {
  const CliArgs args = parse({"input.swf", "--csv", "out.csv"});
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.swf");
  EXPECT_EQ(args.get_or("csv", ""), "out.csv");
}

TEST(CliTest, DefaultsApplyWhenMissing) {
  const CliArgs args = parse({});
  EXPECT_EQ(args.get_int_or("months", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double_or("ratio", 2.5), 2.5);
  EXPECT_EQ(args.get_or("name", "dflt"), "dflt");
  EXPECT_FALSE(args.get("name").has_value());
}

TEST(CliTest, MalformedNumbersThrow) {
  const CliArgs args = parse({"--months", "five", "--ratio", "3.5x"});
  EXPECT_THROW(args.get_int_or("months", 0), Error);
  EXPECT_THROW(args.get_double_or("ratio", 0.0), Error);
}

}  // namespace
}  // namespace esched
