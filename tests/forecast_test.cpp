// Tests for the MisforecastTariff wrapper.
#include "power/forecast.hpp"

#include <gtest/gtest.h>

#include "core/greedy_policy.hpp"
#include "core/fcfs_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/profile.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::power {
namespace {

TEST(MisforecastTest, ZeroErrorIsTransparent) {
  OnOffPeakPricing truth(0.03, 3.0);
  MisforecastTariff wrapped(truth, 0.0, 1);
  for (TimeSec t = 0; t < 2 * kSecondsPerDay; t += 1733) {
    EXPECT_EQ(wrapped.period_at(t), truth.period_at(t));
    EXPECT_DOUBLE_EQ(wrapped.price_at(t), truth.price_at(t));
    EXPECT_FALSE(wrapped.flipped_at(t));
  }
}

TEST(MisforecastTest, FullErrorAlwaysFlips) {
  OnOffPeakPricing truth(0.03, 3.0);
  MisforecastTariff wrapped(truth, 1.0, 1);
  for (TimeSec t = 0; t < kSecondsPerDay; t += 977) {
    EXPECT_NE(wrapped.period_at(t), truth.period_at(t));
    // Prices remain truthful regardless.
    EXPECT_DOUBLE_EQ(wrapped.price_at(t), truth.price_at(t));
  }
}

TEST(MisforecastTest, FlipRateMatchesErrorRate) {
  OnOffPeakPricing truth(0.03, 3.0);
  MisforecastTariff wrapped(truth, 0.25, 42);
  int flips = 0;
  const int buckets = 5000;
  for (int b = 0; b < buckets; ++b) {
    flips += wrapped.flipped_at(static_cast<TimeSec>(b) * 3600);
  }
  EXPECT_NEAR(static_cast<double>(flips) / buckets, 0.25, 0.03);
}

TEST(MisforecastTest, DeterministicInSeedAndStableWithinBucket) {
  OnOffPeakPricing truth(0.03, 3.0);
  MisforecastTariff a(truth, 0.5, 7);
  MisforecastTariff b(truth, 0.5, 7);
  for (TimeSec t = 0; t < kSecondsPerDay; t += 600) {
    EXPECT_EQ(a.period_at(t), b.period_at(t));
    // Stable inside one forecast bucket.
    EXPECT_EQ(a.flipped_at(t), a.flipped_at(t + 59));
  }
}

TEST(MisforecastTest, BoundariesIncludeBucketEdges) {
  OnOffPeakPricing truth(0.03, 3.0);
  MisforecastTariff wrapped(truth, 0.5, 7, /*bucket=*/3600);
  EXPECT_EQ(wrapped.next_price_change(0), 3600);
  EXPECT_EQ(wrapped.next_price_change(3599), 3600);
  // Never later than the truth's boundary.
  for (TimeSec t = 0; t < kSecondsPerDay; t += 1000) {
    EXPECT_LE(wrapped.next_price_change(t), truth.next_price_change(t));
    EXPECT_GT(wrapped.next_price_change(t), t);
  }
}

TEST(MisforecastTest, RejectsBadParameters) {
  OnOffPeakPricing truth(0.03, 3.0);
  EXPECT_THROW(MisforecastTariff(truth, -0.1, 1), Error);
  EXPECT_THROW(MisforecastTariff(truth, 1.1, 1), Error);
  EXPECT_THROW(MisforecastTariff(truth, 0.5, 1, 0), Error);
}

TEST(MisforecastTest, SavingsDegradeWithForecastError) {
  trace::Trace t = trace::make_anl_bgp_like(2, 55);
  assign_profiles(t, ProfileConfig{}, 55);
  OnOffPeakPricing truth(0.03, 3.0);

  auto saving_at = [&](double error) {
    MisforecastTariff tariff(truth, error, 9);
    core::FcfsPolicy fcfs;
    core::GreedyPowerPolicy greedy;
    const auto rf = sim::simulate(t, tariff, fcfs);
    const auto rg = sim::simulate(t, tariff, greedy);
    return metrics::bill_saving_percent(rf, rg);
  };

  const double perfect = saving_at(0.0);
  const double half = saving_at(0.5);
  EXPECT_GT(perfect, 1.0);
  // A coin-flip forecast destroys most of the signal.
  EXPECT_LT(half, perfect * 0.6);
}

}  // namespace
}  // namespace esched::power
