// Tests for the CSV/JSON result exporters.
#include "metrics/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/fcfs_policy.hpp"
#include "power/pricing.hpp"
#include "power/profile.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "trace/transforms.hpp"
#include "util/error.hpp"

namespace esched::metrics {
namespace {

sim::SimResult small_result() {
  trace::Trace t = trace::make_anl_bgp_like(1, 3);
  t = trace::take_first(t, 50);
  power::assign_profiles(t, power::ProfileConfig{}, 3);
  power::OnOffPeakPricing pricing(0.03, 3.0);
  core::FcfsPolicy policy;
  return sim::simulate(t, pricing, policy);
}

TEST(ExportTest, JobsCsvHasHeaderAndAllRows) {
  const sim::SimResult r = small_result();
  std::ostringstream os;
  write_jobs_csv(os, r);
  const std::string out = os.str();
  EXPECT_EQ(out.substr(0, out.find('\n')),
            "id,user,submit,start,finish,wait,nodes,power_per_node");
  std::size_t lines = 0;
  for (const char ch : out) lines += (ch == '\n');
  EXPECT_EQ(lines, r.records.size() + 1);
}

TEST(ExportTest, DailyBillsCsvSumsToTotal) {
  const sim::SimResult r = small_result();
  std::ostringstream os;
  write_daily_bills_csv(os, r);
  std::istringstream in(os.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "day,bill");
  double total = 0.0;
  std::string line;
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    total += std::stod(line.substr(comma + 1));
  }
  EXPECT_NEAR(total, r.total_bill, 1e-9);
}

TEST(ExportTest, CurvesCsvMatchesBinCount) {
  const sim::SimResult r = small_result();
  std::ostringstream os;
  write_daily_curves_csv(os, r);
  std::size_t lines = 0;
  for (const char ch : os.str()) lines += (ch == '\n');
  EXPECT_EQ(lines, r.power_curve.size() + 1);

  sim::SimResult no_curves = r;
  no_curves.power_curve.clear();
  no_curves.utilization_curve.clear();
  std::ostringstream os2;
  EXPECT_THROW(write_daily_curves_csv(os2, no_curves), Error);
}

TEST(ExportTest, SummaryJsonHasStableKeys) {
  const sim::SimResult r = small_result();
  std::ostringstream os;
  write_summary_json(os, r);
  const std::string json = os.str();
  for (const char* key :
       {"\"policy\"", "\"trace\"", "\"total_bill\"", "\"utilization\"",
        "\"mean_wait_seconds\"", "\"energy_on_peak_joules\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');
}

TEST(ExportTest, JsonEscapesSpecialCharacters) {
  sim::SimResult r;
  r.policy_name = "has \"quotes\" and \\slashes\\";
  r.trace_name = "line\nbreak";
  std::ostringstream os;
  write_summary_json(os, r);
  const std::string json = os.str();
  EXPECT_NE(json.find("has \\\"quotes\\\" and \\\\slashes\\\\"),
            std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
}

TEST(ExportTest, ExportAllWritesFiles) {
  const sim::SimResult r = small_result();
  const std::string prefix = "/tmp/esched_export_test";
  export_all(prefix, r);
  for (const char* suffix :
       {"_jobs.csv", "_daily.csv", "_curves.csv", "_summary.json"}) {
    std::ifstream in(prefix + suffix);
    EXPECT_TRUE(in.good()) << suffix;
    std::string first_line;
    std::getline(in, first_line);
    EXPECT_FALSE(first_line.empty()) << suffix;
    std::remove((prefix + suffix).c_str());
  }
}

TEST(ExportTest, ExportAllThrowsWithPathOnUnwritablePrefix) {
  const sim::SimResult r = small_result();
  const std::string prefix = "/nonexistent-dir-esched/out";
  try {
    export_all(prefix, r);
    FAIL() << "expected esched::Error";
  } catch (const Error& e) {
    // The message must carry the failing path — "cannot write" without
    // saying what is the failure mode this test exists to prevent.
    EXPECT_NE(std::string(e.what()).find(prefix + "_jobs.csv"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace esched::metrics
