// Tests for the supervisor<->worker wire protocol (run/wire.hpp): the
// round trip of both payload types must be *exact* (results_identical,
// field-by-field spec equality), and every corruption class the
// supervisor claims to detect — bad magic, bad version, bad length,
// payload CRC mismatch, truncated payload — must actually be rejected.
#include "run/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "power/facility.hpp"
#include "run/spec.hpp"
#include "run/sweep.hpp"
#include "util/error.hpp"

namespace esched::run::wire {
namespace {

JobSpec sample_spec() {
  JobSpec spec;
  spec.trace.source = "anl-bgp";
  spec.trace.months = 2;
  spec.trace.seed = 7;
  spec.trace.power_ratio = 2.5;
  spec.trace.force_power_ratio = true;
  spec.trace.power_seed = 99;
  spec.pricing.model = "onoff";
  spec.pricing.off_peak_price = 0.041;
  spec.pricing.ratio = 4.0;
  spec.policy.name = "knapsack";
  spec.config.scheduler.starvation_age = 3600;
  spec.config.max_passes_per_tick = 1;
  spec.label = "knapsack/anl-bgp/guard=3600";
  return spec;
}

TEST(WireTest, Crc32MatchesKnownVectors) {
  // The zlib convention: crc32("123456789") == 0xCBF43926.
  const std::string check = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(check.data()),
                  check.size()),
            0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(WireTest, ByteReaderRejectsTruncation) {
  ByteWriter w;
  w.u32(42);
  w.str("hello");
  const auto bytes = w.bytes();
  ByteReader ok(bytes);
  EXPECT_EQ(ok.u32(), 42u);
  EXPECT_EQ(ok.str(), "hello");
  ok.expect_end();

  // Reading past the end throws rather than fabricating values.
  ByteReader short_read(bytes.data(), bytes.size() - 1);
  EXPECT_EQ(short_read.u32(), 42u);
  EXPECT_THROW(short_read.str(), Error);

  // Trailing bytes mean the two sides disagree about the encoding.
  ByteReader trailing(bytes);
  EXPECT_EQ(trailing.u32(), 42u);
  EXPECT_THROW(trailing.expect_end(), Error);
}

TEST(WireTest, JobSpecRoundTripIsExact) {
  const JobSpec spec = sample_spec();
  const JobSpec back = decode_job(encode_job(spec));
  EXPECT_EQ(back.trace, spec.trace);
  EXPECT_EQ(back.pricing, spec.pricing);
  EXPECT_EQ(back.policy, spec.policy);
  EXPECT_EQ(back.label, spec.label);
  EXPECT_EQ(back.config.scheduler.starvation_age,
            spec.config.scheduler.starvation_age);
  EXPECT_EQ(back.config.max_passes_per_tick, spec.config.max_passes_per_tick);
}

TEST(WireTest, SimResultRoundTripIsBitIdentical) {
  // A real simulation result, not a synthetic struct: every field class
  // (records, bills, curves, counters, doubles with full precision) must
  // survive the wire byte-for-byte.
  JobSpec spec = sample_spec();
  spec.trace.source = "sdsc-blue";
  spec.trace.months = 1;
  spec.policy.name = "greedy";
  const sim::SimResult result = execute_job_spec(spec);
  ASSERT_FALSE(result.records.empty());
  const sim::SimResult back = decode_result(encode_result(result));
  EXPECT_TRUE(results_identical(result, back));
  EXPECT_EQ(back.policy_name, result.policy_name);
  EXPECT_EQ(back.trace_name, result.trace_name);
}

TEST(WireTest, ErrorPayloadRoundTrips) {
  EXPECT_EQ(decode_error(encode_error("bad spec: no such policy")),
            "bad spec: no such policy");
  EXPECT_EQ(decode_error(encode_error("")), "");
}

TEST(WireTest, FrameHeaderRoundTrips) {
  const std::vector<std::uint8_t> payload = encode_error("x");
  const auto frame =
      encode_frame(FrameType::kError, /*task_id=*/12, /*attempt=*/3, payload);
  ASSERT_GE(frame.size(), kHeaderSize);
  const FrameHeader h = decode_header(frame.data());
  EXPECT_EQ(h.type, FrameType::kError);
  EXPECT_EQ(h.task_id, 12u);
  EXPECT_EQ(h.attempt, 3u);
  EXPECT_EQ(h.payload_size, payload.size());
  EXPECT_TRUE(verify_payload(h, frame.data() + kHeaderSize));
}

TEST(WireTest, HeaderValidationCatchesEveryCorruptionClass) {
  const auto payload = encode_error("y");
  const auto good = encode_frame(FrameType::kError, 0, 0, payload);

  auto corrupt = good;
  corrupt[0] ^= 0xFF;  // magic
  EXPECT_THROW(decode_header(corrupt.data()), Error);

  corrupt = good;
  corrupt[4] ^= 0xFF;  // version
  EXPECT_THROW(decode_header(corrupt.data()), Error);

  corrupt = good;
  corrupt[6] = 0x7F;  // unknown frame type
  EXPECT_THROW(decode_header(corrupt.data()), Error);

  corrupt = good;
  corrupt[7] = 1;  // reserved byte must be 0
  EXPECT_THROW(decode_header(corrupt.data()), Error);

  corrupt = good;
  // payload_size beyond kMaxPayload reads as corruption, not a request
  // to allocate 4 GB.
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(corrupt.data() + 16, &huge, sizeof huge);
  EXPECT_THROW(decode_header(corrupt.data()), Error);
}

TEST(WireTest, PayloadCrcCatchesBitFlips) {
  const auto payload = encode_error("the quick brown fox");
  auto frame = encode_frame(FrameType::kError, 5, 0, payload);
  const FrameHeader h = decode_header(frame.data());
  ASSERT_TRUE(verify_payload(h, frame.data() + kHeaderSize));
  frame[kHeaderSize + 4] ^= 0x01;  // single bit flip in the payload
  EXPECT_FALSE(verify_payload(h, frame.data() + kHeaderSize));
}

TEST(WireTest, FacilityModelSpecsAreRejected) {
  // Pointers cannot cross the wire; encoding must refuse, not silently
  // drop the facility model (that would change results).
  JobSpec spec = sample_spec();
  const power::ConstantPue facility(1.5);
  spec.config.facility_model = &facility;
  EXPECT_THROW(encode_job(spec), Error);
}

}  // namespace
}  // namespace esched::run::wire
