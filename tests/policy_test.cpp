// Tests for the FCFS, Greedy and Knapsack window-ordering policies.
#include <gtest/gtest.h>

#include <vector>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "util/error.hpp"

namespace esched::core {
namespace {

using power::PricePeriod;

PendingJob make_job(JobId id, NodeCount nodes, Watts power,
                    TimeSec submit = 0) {
  return PendingJob{id, submit, nodes, 3600, power};
}

ScheduleContext ctx(NodeCount free, PricePeriod period) {
  return ScheduleContext{1000, free, free, period};
}

TEST(FcfsPolicyTest, KeepsArrivalOrderAndIsStrict) {
  FcfsPolicy policy;
  EXPECT_TRUE(policy.strict_order());
  EXPECT_EQ(policy.name(), "FCFS");
  const std::vector<PendingJob> window{make_job(1, 4, 50.0),
                                       make_job(2, 2, 10.0),
                                       make_job(3, 8, 30.0)};
  const auto order = policy.prioritize(window, ctx(16, PricePeriod::kOnPeak));
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
  // Identical regardless of price period.
  EXPECT_EQ(policy.prioritize(window, ctx(16, PricePeriod::kOffPeak)), order);
}

TEST(GreedyPolicyTest, OnPeakAscendingPower) {
  GreedyPowerPolicy policy;
  EXPECT_FALSE(policy.strict_order());
  const std::vector<PendingJob> window{
      make_job(1, 4, 50.0), make_job(2, 2, 10.0), make_job(3, 8, 30.0)};
  const auto order = policy.prioritize(window, ctx(16, PricePeriod::kOnPeak));
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));  // 10, 30, 50 W
}

TEST(GreedyPolicyTest, OffPeakDescendingPower) {
  GreedyPowerPolicy policy;
  const std::vector<PendingJob> window{
      make_job(1, 4, 50.0), make_job(2, 2, 10.0), make_job(3, 8, 30.0)};
  const auto order =
      policy.prioritize(window, ctx(16, PricePeriod::kOffPeak));
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 2, 1}));  // 50, 30, 10 W
}

TEST(GreedyPolicyTest, TiesPreserveArrivalOrder) {
  GreedyPowerPolicy policy;
  const std::vector<PendingJob> window{
      make_job(1, 4, 30.0), make_job(2, 2, 30.0), make_job(3, 8, 30.0)};
  EXPECT_EQ(policy.prioritize(window, ctx(16, PricePeriod::kOnPeak)),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(policy.prioritize(window, ctx(16, PricePeriod::kOffPeak)),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(GreedyPolicyTest, TotalPowerKeyVariant) {
  GreedyPowerPolicy policy(GreedyKey::kTotalPower);
  EXPECT_EQ(policy.name(), "Greedy(total-power)");
  // Per-node: job1 50 > job3 30. Total: job1 200 < job3 240.
  const std::vector<PendingJob> window{make_job(1, 4, 50.0),
                                       make_job(3, 8, 30.0)};
  const auto order = policy.prioritize(window, ctx(16, PricePeriod::kOnPeak));
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1}));  // 200 before 240
}

TEST(KnapsackPolicyTest, OffPeakMaximizesAggregatePower) {
  KnapsackPolicy policy;
  EXPECT_EQ(policy.name(), "Knapsack");
  // Capacity 8: {1,3} aggregate 4*50+4*45=380 beats {2,3} = 4*10+180=220
  // and {1,2} = 240.
  const std::vector<PendingJob> window{
      make_job(1, 4, 50.0), make_job(2, 4, 10.0), make_job(3, 4, 45.0)};
  const auto sel = policy.select(window, ctx(8, PricePeriod::kOffPeak));
  EXPECT_EQ(sel.chosen, (std::vector<std::size_t>{0, 2}));
  EXPECT_DOUBLE_EQ(sel.total_value, 380.0);
}

TEST(KnapsackPolicyTest, OnPeakPacksMaximallyWithMinimumPower) {
  KnapsackPolicy policy;
  const std::vector<PendingJob> window{
      make_job(1, 4, 50.0), make_job(2, 4, 10.0), make_job(3, 4, 45.0)};
  const auto sel = policy.select(window, ctx(8, PricePeriod::kOnPeak));
  // Max fill is 8 nodes; cheapest 8-node packing is {2,3} = 220.
  EXPECT_EQ(sel.total_weight, 8);
  EXPECT_EQ(sel.chosen, (std::vector<std::size_t>{1, 2}));
}

TEST(KnapsackPolicyTest, PrioritizeReturnsChosenFirstInArrivalOrder) {
  KnapsackPolicy policy;
  const std::vector<PendingJob> window{
      make_job(1, 4, 50.0), make_job(2, 4, 10.0), make_job(3, 4, 45.0)};
  const auto order =
      policy.prioritize(window, ctx(8, PricePeriod::kOnPeak));
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(KnapsackPolicyTest, ZeroFreeNodesSelectsNothing) {
  KnapsackPolicy policy;
  const std::vector<PendingJob> window{make_job(1, 4, 50.0)};
  const auto sel = policy.select(window, ctx(0, PricePeriod::kOffPeak));
  EXPECT_TRUE(sel.chosen.empty());
  // prioritize still returns a full permutation.
  const auto order = policy.prioritize(window, ctx(0, PricePeriod::kOffPeak));
  EXPECT_EQ(order.size(), 1u);
}

TEST(RequirePermutationTest, AcceptsAndRejects) {
  const std::vector<std::size_t> ok{2, 0, 1};
  EXPECT_NO_THROW(require_permutation(ok, 3));
  const std::vector<std::size_t> wrong_size{0, 1};
  EXPECT_THROW(require_permutation(wrong_size, 3), Error);
  const std::vector<std::size_t> dup{0, 0, 1};
  EXPECT_THROW(require_permutation(dup, 3), Error);
  const std::vector<std::size_t> out_of_range{0, 1, 3};
  EXPECT_THROW(require_permutation(out_of_range, 3), Error);
}

}  // namespace
}  // namespace esched::core
