// Tests for the shared bench machinery (bench/common.{hpp,cpp}) —
// especially the CLI contract: flag validation and the "--power-ratio
// given explicitly" tracking that replaced the fragile `ratio != 3.0`
// double-compare sentinel.
#include "common.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "trace/swf.hpp"
#include "util/error.hpp"

namespace esched::bench {
namespace {

Options parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bench");
  return parse_options(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchOptionsTest, DefaultsLeavePowerRatioImplicit) {
  const Options opt = parse({});
  EXPECT_DOUBLE_EQ(opt.power_ratio, 3.0);
  EXPECT_FALSE(opt.power_ratio_given);
  EXPECT_EQ(opt.jobs, 0u);
}

TEST(BenchOptionsTest, ExplicitPowerRatioIsTrackedEvenAtDefaultValue) {
  const Options opt = parse({"--power-ratio", "3.0"});
  EXPECT_DOUBLE_EQ(opt.power_ratio, 3.0);
  EXPECT_TRUE(opt.power_ratio_given);
}

TEST(BenchOptionsTest, ParsesJobs) {
  EXPECT_EQ(parse({"--jobs", "8"}).jobs, 8u);
}

TEST(BenchOptionsTest, RejectsZeroTickAndWindowAtParseTime) {
  EXPECT_THROW(parse({"--tick", "0"}), Error);
  EXPECT_THROW(parse({"--window", "0"}), Error);
  EXPECT_THROW(parse({"--months", "0"}), Error);
  EXPECT_NO_THROW(parse({"--tick", "1", "--window", "1"}));
}

TEST(BenchOptionsTest, RejectsUnknownIsolateModesNamingAcceptedOnes) {
  EXPECT_EQ(parse({}).isolate, "off");
  EXPECT_EQ(parse({"--isolate", "proc"}).isolate, "proc");
  EXPECT_EQ(parse({"--isolate", "tcp"}).isolate, "tcp");
  try {
    parse({"--isolate", "bogus"});
    FAIL() << "expected unknown --isolate value to be rejected";
  } catch (const Error& e) {
    // The rejection must name the offender and list the accepted values.
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
    EXPECT_NE(what.find("\"off\""), std::string::npos) << what;
    EXPECT_NE(what.find("\"proc\""), std::string::npos) << what;
    EXPECT_NE(what.find("\"tcp\""), std::string::npos) << what;
  }
}

TEST(BenchOptionsTest, ValidatesAgentListAtParseTime) {
  ::unsetenv("ESCHED_AGENTS");
  EXPECT_TRUE(parse({}).agents.empty());
  EXPECT_EQ(parse({"--agents", "127.0.0.1:9555,node1:9556"}).agents,
            "127.0.0.1:9555,node1:9556");
  // A typo'd address must fail at parse time (naming the accepted
  // forms), not surface mid-sweep as an unreachable agent.
  try {
    parse({"--agents", "node1"});
    FAIL() << "expected malformed --agents entry to be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("accepted forms"),
              std::string::npos)
        << e.what();
  }
  // ESCHED_AGENTS is the flagless default; the flag wins when both exist.
  ::setenv("ESCHED_AGENTS", "127.0.0.1:7777", 1);
  EXPECT_EQ(parse({}).agents, "127.0.0.1:7777");
  EXPECT_EQ(parse({"--agents", "127.0.0.1:8888"}).agents, "127.0.0.1:8888");
  ::unsetenv("ESCHED_AGENTS");
}

TEST(BenchOptionsTest, ObservabilityIsOffByDefault) {
  const Options opt = parse({});
  EXPECT_TRUE(opt.trace_out.empty());
  EXPECT_TRUE(opt.metrics_out.empty());
  EXPECT_FALSE(opt.progress);
  EXPECT_EQ(opt.tracer, nullptr);
  EXPECT_EQ(make_sim_config(opt).tracer, nullptr);
}

TEST(BenchOptionsTest, MetricsOutEnablesCountersAndProgressParses) {
  const bool was_enabled = obs::counters_enabled();
  const Options opt =
      parse({"--metrics-out", "/tmp/bench_common_m.json", "--progress"});
  EXPECT_EQ(opt.metrics_out, "/tmp/bench_common_m.json");
  EXPECT_TRUE(opt.progress);
  EXPECT_TRUE(obs::counters_enabled());  // parse's documented side effect
  obs::set_counters_enabled(was_enabled);
}

TEST(BenchOptionsTest, TraceOutOpensSharedTracerAndWiresSimConfig) {
  const std::string path = ::testing::TempDir() + "bench_common_t.json";
  {
    const Options opt = parse({"--trace-out", path.c_str()});
    ASSERT_NE(opt.tracer, nullptr);
    EXPECT_TRUE(opt.tracer->enabled());
    EXPECT_EQ(opt.tracer->path(), path);
    // Copies share the one tracer; SimConfigs built from any copy point
    // at it.
    const Options copy = opt;
    EXPECT_EQ(copy.tracer.get(), opt.tracer.get());
    EXPECT_EQ(make_sim_config(copy).tracer, opt.tracer.get());
  }  // last copy gone -> tracer closed, files finalized
  std::ifstream chrome(path);
  EXPECT_TRUE(chrome.good());
  std::ifstream jsonl(path + obs::Tracer::kDecisionLogSuffix);
  EXPECT_TRUE(jsonl.good());
  std::remove(path.c_str());
  std::remove((path + obs::Tracer::kDecisionLogSuffix).c_str());
}

TEST(BenchOptionsTest, EschedTraceEnvIsTheFlaglessTraceOut) {
  const std::string path = ::testing::TempDir() + "bench_common_env.json";
  ::setenv("ESCHED_TRACE", path.c_str(), 1);
  {
    const Options opt = parse({});
    EXPECT_EQ(opt.trace_out, path);
    ASSERT_NE(opt.tracer, nullptr);
    // An explicit --trace-out wins over the environment.
    const std::string flag_path =
        ::testing::TempDir() + "bench_common_flag.json";
    const Options explicit_opt = parse({"--trace-out", flag_path.c_str()});
    EXPECT_EQ(explicit_opt.trace_out, flag_path);
    std::remove(flag_path.c_str());
    std::remove(
        (flag_path + obs::Tracer::kDecisionLogSuffix).c_str());
  }
  ::unsetenv("ESCHED_TRACE");
  std::remove(path.c_str());
  std::remove((path + obs::Tracer::kDecisionLogSuffix).c_str());
}

TEST(BenchOptionsTest, TraceOutFailureNamesThePath) {
  EXPECT_THROW(parse({"--trace-out", "/nonexistent-dir-esched/t.json"}),
               Error);
}

class LoadWorkloadPowerColumnTest : public ::testing::Test {
 protected:
  // A PowerColumn SWF trace whose real profiles (10 and 100 W/node) are
  // NOT at the paper's 1:3 shape, so rescaling is observable.
  void SetUp() override {
    trace::Trace t("power-swf", 64);
    for (int i = 0; i < 2; ++i) {
      trace::Job j;
      j.id = i + 1;
      j.submit = i * 60;
      j.nodes = 8;
      j.runtime = 600;
      j.walltime = 900;
      j.power_per_node = i == 0 ? 10.0 : 100.0;
      j.user = 1;
      t.add_job(j);
    }
    path_ = ::testing::TempDir() + "bench_common_power.swf";
    trace::swf::save_file(path_, t, /*with_power_column=*/true);
  }

  std::string path_;
};

TEST_F(LoadWorkloadPowerColumnTest, DefaultRatioKeepsRealProfiles) {
  Options opt;
  opt.swf_path = path_;  // power_ratio 3.0 but not explicitly given
  const trace::Trace t = load_workload(Workload::kSdscBlue, opt);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t[0].power_per_node, 10.0);
  EXPECT_DOUBLE_EQ(t[1].power_per_node, 100.0);
}

TEST_F(LoadWorkloadPowerColumnTest, ExplicitDefaultRatioRescales) {
  // `--power-ratio 3.0` passed explicitly must rescale the real profiles
  // to a 1:3 span — the old `ratio != 3.0` sentinel silently ignored it.
  Options opt;
  opt.swf_path = path_;
  opt.power_ratio = 3.0;
  opt.power_ratio_given = true;
  const trace::Trace t = load_workload(Workload::kSdscBlue, opt);
  ASSERT_EQ(t.size(), 2u);
  const double lo = std::min(t[0].power_per_node, t[1].power_per_node);
  const double hi = std::max(t[0].power_per_node, t[1].power_per_node);
  EXPECT_NE(hi, 100.0);  // actually rescaled
  EXPECT_NEAR(hi / lo, 3.0, 1e-9);
}

TEST_F(LoadWorkloadPowerColumnTest, NonDefaultRatioStillRescales) {
  Options opt;
  opt.swf_path = path_;
  opt.power_ratio = 4.0;
  opt.power_ratio_given = true;
  const trace::Trace t = load_workload(Workload::kSdscBlue, opt);
  const double lo = std::min(t[0].power_per_node, t[1].power_per_node);
  const double hi = std::max(t[0].power_per_node, t[1].power_per_node);
  EXPECT_NEAR(hi / lo, 4.0, 1e-9);
}

}  // namespace
}  // namespace esched::bench
