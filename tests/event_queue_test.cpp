// Tests for the event queue's deterministic ordering, including the
// differential contract between the two backends: for ANY push/pop
// interleaving, the calendar queue's pop sequence must be identical to
// the reference binary heap's.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/policy.hpp"
#include "power/pricing.hpp"
#include "power/profile.hpp"
#include "run/sweep.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace esched::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  q.push(300, EventType::kTick);
  q.push(100, EventType::kTick);
  q.push(200, EventType::kTick);
  EXPECT_EQ(q.pop().time, 100);
  EXPECT_EQ(q.pop().time, 200);
  EXPECT_EQ(q.pop().time, 300);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SameTimeOrdersFinishSubmitTick) {
  EventQueue q;
  q.push(100, EventType::kTick);
  q.push(100, EventType::kJobSubmit, 2);
  q.push(100, EventType::kJobFinish, 1);
  EXPECT_EQ(q.pop().type, EventType::kJobFinish);
  EXPECT_EQ(q.pop().type, EventType::kJobSubmit);
  EXPECT_EQ(q.pop().type, EventType::kTick);
}

TEST(EventQueueTest, SameTimeSameTypeIsFifo) {
  EventQueue q;
  q.push(100, EventType::kJobSubmit, 11);
  q.push(100, EventType::kJobSubmit, 22);
  q.push(100, EventType::kJobSubmit, 33);
  EXPECT_EQ(q.pop().payload, 11u);
  EXPECT_EQ(q.pop().payload, 22u);
  EXPECT_EQ(q.pop().payload, 33u);
}

TEST(EventQueueTest, PayloadRoundTrips) {
  EventQueue q;
  q.push(5, EventType::kJobFinish, 12345);
  const Event e = q.pop();
  EXPECT_EQ(e.time, 5);
  EXPECT_EQ(e.payload, 12345u);
}

TEST(EventQueueTest, TopDoesNotRemove) {
  EventQueue q;
  q.push(5, EventType::kTick);
  EXPECT_EQ(q.top().time, 5);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, EmptyAccessThrows) {
  EventQueue q;
  EXPECT_THROW(q.top(), Error);
  EXPECT_THROW(q.pop(), Error);
}

// ---- per-backend contract (explicit backends) ----

class EventQueueBackendTest
    : public ::testing::TestWithParam<EventQueue::Backend> {};

TEST_P(EventQueueBackendTest, OrderingContractHolds) {
  EventQueue q(GetParam());
  EXPECT_EQ(q.backend(), GetParam());
  q.push(300, EventType::kTick);
  q.push(100, EventType::kTick);
  q.push(100, EventType::kJobSubmit, 2);
  q.push(100, EventType::kJobFinish, 1);
  q.push(200, EventType::kJobSubmit, 7);
  EXPECT_EQ(q.pop().type, EventType::kJobFinish);
  EXPECT_EQ(q.pop().type, EventType::kJobSubmit);
  EXPECT_EQ(q.pop().type, EventType::kTick);
  EXPECT_EQ(q.pop().payload, 7u);
  EXPECT_EQ(q.pop().time, 300);
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueBackendTest, PushEarlierThanEverythingPopped) {
  // The simulator never pushes into the past, but the raw container must
  // still order correctly (the calendar rebases its window).
  EventQueue q(GetParam());
  q.configure(1000, 10000, 64);
  q.push(5000, EventType::kTick);
  q.push(9000, EventType::kTick);
  EXPECT_EQ(q.pop().time, 5000);
  q.push(1000, EventType::kTick);  // before the remaining minimum
  EXPECT_EQ(q.pop().time, 1000);
  EXPECT_EQ(q.pop().time, 9000);
}

TEST_P(EventQueueBackendTest, SnapshotRestoreRoundTrips) {
  EventQueue q(GetParam());
  q.push(30, EventType::kTick);
  q.push(10, EventType::kJobSubmit, 1);
  q.push(10, EventType::kJobSubmit, 2);
  q.push(20, EventType::kJobFinish, 1);
  q.pop();  // consume (10, submit, 1)
  const std::vector<Event> events = q.snapshot_events();
  const std::uint64_t next_seq = q.next_seq();

  for (const EventQueue::Backend restore_backend :
       {EventQueue::Backend::kCalendar, EventQueue::Backend::kHeap}) {
    EventQueue r(restore_backend);
    r.restore(events, next_seq);
    EXPECT_EQ(r.size(), q.size());
    EXPECT_EQ(r.next_seq(), next_seq);
    EventQueue original(GetParam());
    original.restore(events, next_seq);
    while (!original.empty()) {
      const Event a = original.pop();
      const Event b = r.pop();
      EXPECT_EQ(a.time, b.time);
      EXPECT_EQ(a.type, b.type);
      EXPECT_EQ(a.payload, b.payload);
      EXPECT_EQ(a.seq, b.seq);
    }
    EXPECT_TRUE(r.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, EventQueueBackendTest,
                         ::testing::Values(EventQueue::Backend::kCalendar,
                                           EventQueue::Backend::kHeap),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          EventQueue::Backend::kCalendar
                                      ? "calendar"
                                      : "heap";
                         });

// ---- differential: calendar vs heap over random interleavings ----

class EventQueueDifferential
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueDifferential, RandomInterleavingsMatchHeap) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    EventQueue cal(EventQueue::Backend::kCalendar);
    EventQueue heap(EventQueue::Backend::kHeap);
    if (round % 2 == 0) {
      // Half the rounds exercise a configured calendar (the simulator
      // path); the width/window must not change the pop sequence.
      const TimeSec start = rng.uniform_int(0, 1000);
      const DurationSec span = rng.uniform_int(1, 20000);
      cal.configure(start, span,
                    static_cast<std::size_t>(rng.uniform_int(1, 512)));
      heap.configure(start, span, 64);  // no-op, but must be accepted
    }
    const int ops = static_cast<int>(rng.uniform_int(50, 400));
    std::size_t payload = 0;
    for (int op = 0; op < ops; ++op) {
      // Push-biased mix; times are unconstrained (including pushes far
      // beyond the configured span and before the window start).
      if (cal.empty() || rng.uniform_int(0, 2) != 0) {
        const TimeSec t = rng.uniform_int(0, 50000);
        const auto type = static_cast<EventType>(rng.uniform_int(0, 2));
        cal.push(t, type, payload);
        heap.push(t, type, payload);
        ++payload;
      } else {
        ASSERT_EQ(cal.top().time, heap.top().time);
        const Event a = cal.pop();
        const Event b = heap.pop();
        ASSERT_EQ(a.time, b.time);
        ASSERT_EQ(a.type, b.type);
        ASSERT_EQ(a.payload, b.payload);
        ASSERT_EQ(a.seq, b.seq);
      }
      ASSERT_EQ(cal.size(), heap.size());
    }
    while (!heap.empty()) {
      const Event a = cal.pop();
      const Event b = heap.pop();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.type, b.type);
      ASSERT_EQ(a.payload, b.payload);
      ASSERT_EQ(a.seq, b.seq);
    }
    ASSERT_TRUE(cal.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---- differential: whole simulations, heap vs calendar backend ----

/// Run one full simulation with the queue backend forced via
/// ESCHED_EVENTQ (the simulator constructs its queue through the env
/// default, exactly like production).
SimResult simulate_with_backend(const char* backend,
                                const trace::Trace& trace,
                                const power::PricingModel& pricing,
                                const std::string& policy_name) {
  if (backend != nullptr) {
    ::setenv("ESCHED_EVENTQ", backend, 1);
  } else {
    ::unsetenv("ESCHED_EVENTQ");
  }
  const auto policy = core::make_policy_by_name(policy_name);
  SimResult result = simulate(trace, pricing, *policy);
  ::unsetenv("ESCHED_EVENTQ");
  return result;
}

TEST(EventQueueSimDifferentialTest, FullSimulationsMatchHeapBackend) {
  // A real month-long bench workload (the seed benches' generator), all
  // three policies, on/off-peak pricing: the heap backend is the seed
  // simulator's queue, so this pins the calendar swap end to end.
  trace::Trace trace = trace::make_anl_bgp_like(1, 99);
  power::assign_profiles(trace, power::ProfileConfig{}, 99);
  const power::OnOffPeakPricing pricing(0.03, 3.0);
  for (const char* policy : {"fcfs", "greedy", "knapsack"}) {
    const SimResult heap =
        simulate_with_backend("heap", trace, pricing, policy);
    const SimResult calendar =
        simulate_with_backend(nullptr, trace, pricing, policy);
    EXPECT_TRUE(run::results_identical(heap, calendar))
        << "policy " << policy
        << ": calendar backend diverged from the heap reference";
  }
}

}  // namespace
}  // namespace esched::sim
