// Tests for the event queue's deterministic ordering.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace esched::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  q.push(300, EventType::kTick);
  q.push(100, EventType::kTick);
  q.push(200, EventType::kTick);
  EXPECT_EQ(q.pop().time, 100);
  EXPECT_EQ(q.pop().time, 200);
  EXPECT_EQ(q.pop().time, 300);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SameTimeOrdersFinishSubmitTick) {
  EventQueue q;
  q.push(100, EventType::kTick);
  q.push(100, EventType::kJobSubmit, 2);
  q.push(100, EventType::kJobFinish, 1);
  EXPECT_EQ(q.pop().type, EventType::kJobFinish);
  EXPECT_EQ(q.pop().type, EventType::kJobSubmit);
  EXPECT_EQ(q.pop().type, EventType::kTick);
}

TEST(EventQueueTest, SameTimeSameTypeIsFifo) {
  EventQueue q;
  q.push(100, EventType::kJobSubmit, 11);
  q.push(100, EventType::kJobSubmit, 22);
  q.push(100, EventType::kJobSubmit, 33);
  EXPECT_EQ(q.pop().payload, 11u);
  EXPECT_EQ(q.pop().payload, 22u);
  EXPECT_EQ(q.pop().payload, 33u);
}

TEST(EventQueueTest, PayloadRoundTrips) {
  EventQueue q;
  q.push(5, EventType::kJobFinish, 12345);
  const Event e = q.pop();
  EXPECT_EQ(e.time, 5);
  EXPECT_EQ(e.payload, 12345u);
}

TEST(EventQueueTest, TopDoesNotRemove) {
  EventQueue q;
  q.push(5, EventType::kTick);
  EXPECT_EQ(q.top().time, 5);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, EmptyAccessThrows) {
  EventQueue q;
  EXPECT_THROW(q.top(), Error);
  EXPECT_THROW(q.pop(), Error);
}

}  // namespace
}  // namespace esched::sim
