// SWF workbench: generate synthetic traces as Standard Workload Format
// files (with the esched power-column extension), inspect existing SWF
// files, and apply the paper's arrival-scaling transform. Demonstrates
// the trace I/O layer; the generated files feed straight into the bench
// binaries via --swf.
//
//   $ ./swf_tool generate --workload anl --months 2 --out anl.swf
//   $ ./swf_tool inspect anl.swf
//   $ ./swf_tool scale anl.swf --factor 0.6 --out anl_shrunk.swf
#include <cstdio>
#include <string>

#include "power/profile.hpp"
#include "trace/swf.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_stats.hpp"
#include "trace/transforms.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/time_util.hpp"

using namespace esched;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  swf_tool generate --workload {anl|sdsc|mira} [--months N]"
               " [--seed S] --out FILE\n"
               "  swf_tool inspect FILE\n"
               "  swf_tool scale FILE --factor F --out FILE\n");
  return 2;
}

int cmd_generate(const CliArgs& args) {
  const std::string workload = args.get_or("workload", "anl");
  const auto months = static_cast<std::size_t>(args.get_int_or("months", 1));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const std::string out = args.get_or("out", "");
  ESCHED_REQUIRE(!out.empty(), "--out is required");

  trace::Trace t = [&] {
    if (workload == "anl") return trace::make_anl_bgp_like(months, seed);
    if (workload == "sdsc") return trace::make_sdsc_blue_like(months, seed);
    if (workload == "mira") return trace::make_mira_like({}, seed);
    throw Error("unknown workload: " + workload);
  }();
  if (workload != "mira") {
    power::assign_profiles(t, power::ProfileConfig{}, seed);
  }
  trace::swf::save_file(out, t, /*with_power_column=*/true);
  std::printf("wrote %zu jobs (%s, %lld nodes) to %s\n", t.size(),
              t.name().c_str(), static_cast<long long>(t.system_nodes()),
              out.c_str());
  return 0;
}

int cmd_inspect(const CliArgs& args) {
  ESCHED_REQUIRE(args.positional().size() >= 2, "inspect needs a file");
  const trace::Trace t = trace::swf::load_file(args.positional()[1]);
  const trace::TraceStats stats = trace::compute_stats(t);
  std::printf("trace    %s\n", t.name().c_str());
  std::printf("system   %lld nodes\n",
              static_cast<long long>(t.system_nodes()));
  std::printf("jobs     %zu\n", stats.job_count);
  std::printf("span     %s .. %s\n", format_time(stats.span_begin).c_str(),
              format_time(stats.span_end).c_str());
  std::printf("size     mean %.1f, max %.0f nodes\n", stats.nodes.mean(),
              stats.nodes.max());
  std::printf("runtime  mean %s\n",
              format_duration(
                  static_cast<DurationSec>(stats.runtime.mean()))
                  .c_str());
  std::printf("power    mean %.1f W/node (%.1f..%.1f)\n",
              stats.power_per_node.mean(), stats.power_per_node.min(),
              stats.power_per_node.max());
  std::printf("offered utilization %.1f%%\n",
              stats.offered_utilization * 100.0);
  std::fputs(
      trace::size_distribution(t).render("\njob sizes (nodes)").c_str(),
      stdout);
  return 0;
}

int cmd_scale(const CliArgs& args) {
  ESCHED_REQUIRE(args.positional().size() >= 2, "scale needs a file");
  const double factor = args.get_double_or("factor", 0.6);
  const std::string out = args.get_or("out", "");
  ESCHED_REQUIRE(!out.empty(), "--out is required");
  const trace::Trace t = trace::swf::load_file(args.positional()[1]);
  const trace::Trace scaled = trace::scale_arrivals(t, factor);
  trace::swf::save_file(out, scaled, /*with_power_column=*/true);
  std::printf("scaled arrival gaps by %.2f: %s -> %s (%zu jobs)\n", factor,
              args.positional()[1].c_str(), out.c_str(), scaled.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args = CliArgs::parse(argc, argv);
    if (args.positional().empty()) {
      // With no subcommand, run a self-demo so `for b in ...` style batch
      // runs still exercise the tool.
      std::printf("swf_tool self-demo (pass a subcommand for real use)\n\n");
      trace::Trace t = trace::make_anl_bgp_like(1, 42);
      power::assign_profiles(t, power::ProfileConfig{}, 42);
      const std::string path = "/tmp/esched_demo.swf";
      trace::swf::save_file(path, t, true);
      std::printf("generated %s; inspecting it:\n\n", path.c_str());
      const char* fake_argv[] = {"swf_tool", "inspect", path.c_str()};
      return cmd_inspect(CliArgs::parse(3, fake_argv));
    }
    const std::string& cmd = args.positional()[0];
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "inspect") return cmd_inspect(args);
    if (cmd == "scale") return cmd_scale(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
