// Capability vs capacity computing: the paper's §6.1 observation that the
// power-aware design saves more on big-job (capability) workloads like
// ANL-BGP than on small-job (capacity) workloads like SDSC-BLUE.
//
//   $ ./capability_vs_capacity [--months N]
#include <cstdio>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/profile.hpp"
#include "power/pricing.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_stats.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace esched;

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  const auto months =
      static_cast<std::size_t>(args.get_int_or("months", 3));

  const auto tariff = power::make_paper_tariff(3.0);
  Table table({"Workload", "Style", "Jobs", "Greedy saving",
               "Knapsack saving", "Util change (G)", "Util change (K)"});

  for (int which = 0; which < 2; ++which) {
    trace::Trace t = which == 0 ? trace::make_anl_bgp_like(months)
                                : trace::make_sdsc_blue_like(months);
    power::assign_profiles(t, power::ProfileConfig{}, 7);

    core::FcfsPolicy fcfs;
    core::GreedyPowerPolicy greedy;
    core::KnapsackPolicy knapsack;
    const auto rf = sim::simulate(t, *tariff, fcfs);
    const auto rg = sim::simulate(t, *tariff, greedy);
    const auto rk = sim::simulate(t, *tariff, knapsack);

    table.add_row();
    table.cell(t.name());
    table.cell(which == 0 ? "capability (big jobs)" : "capacity (small jobs)");
    table.cell_int(static_cast<long long>(t.size()));
    table.cell_percent(metrics::bill_saving_percent(rf, rg));
    table.cell_percent(metrics::bill_saving_percent(rf, rk));
    table.cell_percent((metrics::overall_utilization(rg) -
                        metrics::overall_utilization(rf)) *
                       100.0);
    table.cell_percent((metrics::overall_utilization(rk) -
                        metrics::overall_utilization(rf)) *
                       100.0);
  }

  std::printf(
      "Power-aware scheduling on two workload archetypes (%zu months, "
      "power 1:3, price 1:3):\n\n%s\n"
      "Big capability jobs give the scheduler coarse, high-power units to\n"
      "place against the tariff, so the savings are larger; tiny capacity\n"
      "jobs mostly schedule themselves. Utilization is preserved in both\n"
      "cases (the paper's hard constraint).\n",
      months, table.render().c_str());
  return 0;
}
