// The paper's §7 case study as a runnable walkthrough: a Mira-like
// 48-rack BG/Q December-2012 month, Knapsack vs FCFS, with the daily
// utilization/power curves and the bill at 10 s and 30 s scheduling
// frequencies.
//
//   $ ./mira_case_study [--jobs N] [--seed S]
#include <cstdio>

#include "core/fcfs_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"
#include "power/pricing.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"

using namespace esched;

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  trace::MiraConfig mc;
  mc.job_count = static_cast<std::size_t>(args.get_int_or("jobs", 3333));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 2012));

  const trace::Trace mira = trace::make_mira_like(mc, seed);
  const auto tariff = power::make_paper_tariff(3.0);

  std::printf(
      "Mira case study: %zu jobs on %lld racks, December-2012 pattern\n"
      "(first half: large acceptance jobs; second half: single-rack early\n"
      "science). Per-job power measured in kW/rack as in the paper's "
      "Fig. 1.\n",
      mira.size(), static_cast<long long>(mc.racks));

  for (const DurationSec tick : {DurationSec{10}, DurationSec{30}}) {
    sim::SimConfig config;
    config.tick_interval = tick;
    core::FcfsPolicy fcfs;
    core::KnapsackPolicy knapsack;
    const auto rf = sim::simulate(mira, *tariff, fcfs, config);
    const auto rk = sim::simulate(mira, *tariff, knapsack, config);

    std::printf("\n--- scheduling frequency: %lld s ---\n",
                static_cast<long long>(tick));
    std::printf("  %s\n  %s\n", metrics::summary_line(rf).c_str(),
                metrics::summary_line(rk).c_str());
    std::printf("  monthly bill saving: %.2f%% (paper: 5.4%% at 10 s, "
                "9.98%% at 30 s)\n",
                metrics::bill_saving_percent(rf, rk));

    const std::vector<sim::SimResult> results{rf, rk};
    std::fputs(metrics::daily_curve_table(results, true, 12, 100.0, "% util")
                   .render()
                   .c_str(),
               stdout);
  }

  std::printf(
      "\nReading the curves: during off-peak hours (00:00-12:00) the\n"
      "Knapsack scheduler packs in the power-hungry acceptance jobs, so\n"
      "its utilization and power run above FCFS; during on-peak hours the\n"
      "single-rack early-science jobs all look alike and the two\n"
      "schedulers converge — exactly the Fig. 12/13 pattern.\n");
  return 0;
}
