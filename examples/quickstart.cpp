// Quickstart: the five-job example from the paper's §3, simulated end to
// end. Shows the core API in ~60 lines: build a trace, pick a tariff,
// run policies, compare bills.
//
//   $ ./quickstart
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/pricing.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "util/time_util.hpp"

using namespace esched;

namespace {

// The paper's example: five jobs on a 12-node machine, submitted just
// before noon (the on-peak boundary).
trace::Trace make_example_trace() {
  trace::Trace t("paper-example", 12);
  struct Spec {
    JobId id;
    Watts power;
    NodeCount nodes;
  };
  // J0..J4 with the table's power profiles and sizes.
  const Spec specs[] = {
      {0, 50.0, 6}, {1, 20.0, 3}, {2, 40.0, 3}, {3, 30.0, 3}, {4, 10.0, 6},
  };
  // Submit at 20:00: the first wave runs through the expensive evening,
  // the second wave lands after midnight in the cheap off-peak hours.
  const TimeSec evening = 20 * kSecondsPerHour;
  for (const Spec& s : specs) {
    trace::Job j;
    j.id = s.id;
    j.submit = evening;
    j.nodes = s.nodes;
    j.runtime = 4 * kSecondsPerHour;
    j.walltime = j.runtime;
    j.power_per_node = s.power;
    t.add_job(j);
  }
  return t;
}

void run(core::SchedulingPolicy& policy, const trace::Trace& t,
         const power::PricingModel& tariff) {
  const sim::SimResult r = sim::simulate(t, tariff, policy);
  std::printf("%-9s bill=$%.4f  dispatch order:", r.policy_name.c_str(),
              r.total_bill);
  // Sort records by start time to show the dispatch sequence.
  std::vector<sim::JobRecord> by_start = r.records;
  std::sort(by_start.begin(), by_start.end(),
            [](const sim::JobRecord& a, const sim::JobRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.id < b.id;
            });
  for (const auto& rec : by_start) {
    std::printf(" J%lld@%s", static_cast<long long>(rec.id),
                format_time_of_day(second_of_day(rec.start)).c_str());
  }
  std::printf("  (utilization %.1f%%)\n",
              metrics::overall_utilization(r) * 100.0);
}

}  // namespace

int main() {
  const trace::Trace t = make_example_trace();
  const auto tariff = power::make_paper_tariff(3.0);

  std::printf(
      "Paper §3 example: 12-node machine, 5 jobs submitted at 20:00.\n"
      "On-peak noon-midnight at 3x the off-peak price; the first wave\n"
      "(20:00-24:00) is billed on-peak, the second (00:00-04:00) "
      "off-peak.\n\n");

  core::FcfsPolicy fcfs;
  core::GreedyPowerPolicy greedy;
  core::KnapsackPolicy knapsack;
  run(fcfs, t, *tariff);
  run(greedy, t, *tariff);
  run(knapsack, t, *tariff);

  std::printf(
      "\nThe power-aware policies run the cool jobs (J4, J1, J3) during the\n"
      "expensive on-peak evening and push the hot ones (J0, J2) later,\n"
      "cutting the bill without leaving nodes idle.\n");
  return 0;
}
