// Extension example: real-time (hourly) wholesale pricing. The paper
// motivates dynamic pricing with hourly markets whose prices swing up to
// 10x within a day [Qureshi'09] but evaluates a two-level tariff; this
// example runs the same policies against an hourly price tape and shows
// the design transfers: the scheduler only needs period_at() to say
// "cheap now or not".
//
//   $ ./realtime_pricing [--months N]
#include <cstdio>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/profile.hpp"
#include "power/pricing.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace esched;

namespace {

// A stylised 24-hour wholesale tape ($/kWh): cheap overnight, morning
// ramp, afternoon peak, evening shoulder — about an 8x daily swing.
std::vector<Money> wholesale_day() {
  return {0.022, 0.020, 0.019, 0.019, 0.021, 0.025, 0.035, 0.055,
          0.075, 0.090, 0.105, 0.120, 0.135, 0.150, 0.155, 0.145,
          0.130, 0.110, 0.095, 0.080, 0.060, 0.045, 0.032, 0.025};
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  const auto months =
      static_cast<std::size_t>(args.get_int_or("months", 2));

  trace::Trace t = trace::make_anl_bgp_like(months);
  power::assign_profiles(t, power::ProfileConfig{}, 11);

  power::HourlyPriceSeries hourly(wholesale_day());
  const auto two_level = power::make_paper_tariff(3.0);

  Table table({"Tariff", "Policy", "Bill", "Saving vs FCFS"});
  for (int which = 0; which < 2; ++which) {
    const power::PricingModel& tariff =
        which == 0 ? static_cast<const power::PricingModel&>(*two_level)
                   : static_cast<const power::PricingModel&>(hourly);
    core::FcfsPolicy fcfs;
    core::GreedyPowerPolicy greedy;
    core::KnapsackPolicy knapsack;
    const auto rf = sim::simulate(t, tariff, fcfs);
    const auto rg = sim::simulate(t, tariff, greedy);
    const auto rk = sim::simulate(t, tariff, knapsack);
    for (const auto* r : {&rf, &rg, &rk}) {
      table.add_row();
      table.cell(tariff.name());
      table.cell(r->policy_name);
      table.cell(r->total_bill);
      table.cell_percent(metrics::bill_saving_percent(rf, *r));
    }
  }

  std::printf(
      "Dynamic-pricing tariffs on the ANL-BGP-like workload (%zu months):\n"
      "\n%s\n"
      "Under the hourly tape the scheduler classifies hours above the\n"
      "median price as on-peak; the billing meter integrates the exact\n"
      "hourly prices either way. The power-aware policies keep saving —\n"
      "the mechanism needs only a cheap/expensive signal, not the paper's\n"
      "idealised two-level tariff.\n",
      months, table.render().c_str());
  return 0;
}
