// Operator tuning walkthrough: how a center picks the scheduler knobs.
// Sweeps the window size, the starvation guard, and the tick interval on
// one workload and prints the trade-off tables an operator would look at
// before enabling power-aware scheduling in production.
//
//   $ ./operator_tuning [--workload anl|sdsc] [--months N]
#include <algorithm>
#include <cstdio>

#include "core/fcfs_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/fairness.hpp"
#include "metrics/metrics.hpp"
#include "power/profile.hpp"
#include "power/pricing.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/time_util.hpp"

using namespace esched;

namespace {

DurationSec max_wait(const sim::SimResult& r) {
  DurationSec w = 0;
  for (const auto& rec : r.records) w = std::max(w, rec.wait());
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  const auto months = static_cast<std::size_t>(args.get_int_or("months", 2));
  const std::string workload = args.get_or("workload", "anl");

  trace::Trace t = workload == "sdsc"
                       ? trace::make_sdsc_blue_like(months)
                       : trace::make_anl_bgp_like(months);
  power::assign_profiles(t, power::ProfileConfig{}, 17);
  const auto tariff = power::make_paper_tariff(3.0);

  core::FcfsPolicy fcfs;
  const sim::SimResult baseline = sim::simulate(t, *tariff, fcfs);
  std::printf(
      "Tuning the Knapsack scheduler on %s (%zu jobs, %zu months).\n"
      "Baseline FCFS: bill %.2f, mean wait %.0f s.\n",
      t.name().c_str(), t.size(), months, baseline.total_bill,
      baseline.mean_wait_seconds());

  // 1. Window size: saving saturates early; decision cost grows with w.
  Table window_table({"Window", "Saving", "Mean wait (s)"});
  for (const std::size_t w : {5u, 10u, 20u, 30u, 50u}) {
    core::KnapsackPolicy policy;
    sim::SimConfig cfg;
    cfg.scheduler.window_size = w;
    const auto r = sim::simulate(t, *tariff, policy, cfg);
    window_table.add_row();
    window_table.cell_int(static_cast<long long>(w));
    window_table.cell_percent(metrics::bill_saving_percent(baseline, r));
    window_table.cell(r.mean_wait_seconds(), 1);
  }
  std::printf("\n1) Window size (pick the knee, usually 10-30):\n%s",
              window_table.render().c_str());

  // 2. Starvation guard: worst-case wait vs savings.
  Table guard_table(
      {"Guard", "Saving", "Max wait", "Jain (user wait)"});
  for (const DurationSec guard :
       {DurationSec{0}, DurationSec{8 * 3600}, DurationSec{2 * 3600}}) {
    core::KnapsackPolicy policy;
    sim::SimConfig cfg;
    cfg.scheduler.starvation_age = guard;
    const auto r = sim::simulate(t, *tariff, policy, cfg);
    const auto fairness = metrics::fairness_report(r);
    guard_table.add_row();
    guard_table.cell(guard == 0 ? "off" : format_duration(guard));
    guard_table.cell_percent(metrics::bill_saving_percent(baseline, r));
    guard_table.cell(format_duration(max_wait(r)));
    guard_table.cell(fairness.jain_index_user_wait, 3);
  }
  std::printf(
      "\n2) Starvation guard (bound tail latency, pay in savings):\n%s",
      guard_table.render().c_str());

  // 3. Tick interval under batch (single-pass) semantics.
  Table tick_table({"Tick", "Saving", "Utilization"});
  for (const DurationSec tick : {DurationSec{10}, DurationSec{20},
                                 DurationSec{30}}) {
    core::KnapsackPolicy policy;
    sim::SimConfig cfg;
    cfg.tick_interval = tick;
    cfg.max_passes_per_tick = 1;
    const auto r = sim::simulate(t, *tariff, policy, cfg);
    tick_table.add_row();
    tick_table.cell(std::to_string(tick) + "s");
    tick_table.cell_percent(metrics::bill_saving_percent(baseline, r));
    tick_table.cell_percent(metrics::overall_utilization(r) * 100.0);
  }
  std::printf("\n3) Scheduling period (batch semantics):\n%s",
              tick_table.render().c_str());

  std::printf(
      "\nRecommended starting point: window 20, guard 8h, 10-30 s ticks —\n"
      "then re-run this sweep on your own SWF trace via --swf in the\n"
      "bench binaries.\n");
  return 0;
}
