// simtool — the full command-line simulator: the tool a center
// operator would actually run. Loads a real SWF trace (or generates a
// synthetic one), simulates any built-in policy under a configurable
// tariff, prints the paper's three metrics plus fairness, and optionally
// exports machine-readable results.
//
//   $ ./simtool --workload anl --months 2 --policy knapsack
//   $ ./simtool --swf intrepid.swf --policy greedy --price-ratio 4
//               --tick 30 --window 30 --export /tmp/run1
//   $ ./simtool --workload sdsc --policy all --csv
#include <cstdio>
#include <memory>

#include "core/energy_knapsack_policy.hpp"
#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/export.hpp"
#include "metrics/fairness.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"
#include "power/profile.hpp"
#include "power/pricing.hpp"
#include "sim/simulator.hpp"
#include "trace/swf.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

using namespace esched;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "simtool — trace-driven electricity-price-aware scheduling\n"
      "options:\n"
      "  --workload {anl|sdsc|mira}  synthetic trace (default anl)\n"
      "  --swf FILE                  use a real SWF trace instead\n"
      "  --months N                  synthetic trace length (default 2)\n"
      "  --seed S                    generator/profile seed\n"
      "  --policy {fcfs|greedy|knapsack|energy|all}   (default all)\n"
      "  --price-ratio R             on/off-peak ratio (default 3)\n"
      "  --power-ratio R             job power max/min ratio (default 3)\n"
      "  --tick T                    scheduling period seconds (default 10)\n"
      "  --window W                  scheduling window (default 20)\n"
      "  --idle-watts W              idle power per node (default 0)\n"
      "  --priority                  honor SWF queue priorities\n"
      "  --dependencies              honor SWF job dependencies\n"
      "  --contiguous                contiguous (Blue Gene-style) placement\n"
      "  --export PREFIX             write <PREFIX>_{jobs,daily,curves}.csv\n"
      "                              and <PREFIX>_summary.json per policy\n"
      "  --csv                       CSV tables instead of ASCII\n");
  return 2;
}

std::unique_ptr<core::SchedulingPolicy> make_policy(const std::string& name) {
  if (name == "fcfs") return std::make_unique<core::FcfsPolicy>();
  if (name == "greedy") return std::make_unique<core::GreedyPowerPolicy>();
  if (name == "knapsack") return std::make_unique<core::KnapsackPolicy>();
  if (name == "energy")
    return std::make_unique<core::EnergyKnapsackPolicy>();
  throw Error("unknown policy: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args = CliArgs::parse(argc, argv);
    if (args.has("help")) return usage();

    const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
    const auto months =
        static_cast<std::size_t>(args.get_int_or("months", 2));

    trace::Trace trace = [&] {
      if (const auto swf = args.get("swf")) {
        return trace::swf::load_file(*swf);
      }
      const std::string workload = args.get_or("workload", "anl");
      if (workload == "anl") return trace::make_anl_bgp_like(months, seed);
      if (workload == "sdsc")
        return trace::make_sdsc_blue_like(months, seed);
      if (workload == "mira") return trace::make_mira_like({}, seed);
      throw Error("unknown workload: " + workload);
    }();

    bool has_power = false;
    for (const trace::Job& j : trace.jobs()) {
      if (j.power_per_node > 0.0) {
        has_power = true;
        break;
      }
    }
    if (!has_power) {
      power::ProfileConfig pcfg;
      pcfg.ratio = args.get_double_or("power-ratio", 3.0);
      power::assign_profiles(trace, pcfg, seed);
    }

    const auto tariff =
        power::make_paper_tariff(args.get_double_or("price-ratio", 3.0));

    sim::SimConfig config;
    config.tick_interval = args.get_int_or("tick", 10);
    config.scheduler.window_size =
        static_cast<std::size_t>(args.get_int_or("window", 20));
    config.idle_watts_per_node = args.get_double_or("idle-watts", 0.0);
    config.honor_queue_priority = args.has("priority");
    config.honor_dependencies = args.has("dependencies");
    config.contiguous_allocation = args.has("contiguous");

    const std::string which = args.get_or("policy", "all");
    std::vector<std::string> names;
    if (which == "all") {
      names = {"fcfs", "greedy", "knapsack", "energy"};
    } else {
      names = {"fcfs"};
      if (which != "fcfs") names.push_back(which);
    }

    std::printf("trace %s: %zu jobs on %lld nodes; tariff %s; tick %llds; "
                "window %zu\n\n",
                trace.name().c_str(), trace.size(),
                static_cast<long long>(trace.system_nodes()),
                tariff->name().c_str(),
                static_cast<long long>(config.tick_interval),
                config.scheduler.window_size);

    std::vector<sim::SimResult> results;
    for (const std::string& name : names) {
      const auto policy = make_policy(name);
      results.push_back(sim::simulate(trace, *tariff, *policy, config));
      const sim::SimResult& r = results.back();
      const metrics::FairnessReport fr = metrics::fairness_report(r);
      std::printf("%s  p95-slowdown=%.2f jain=%.3f placement-misses=%llu\n",
                  metrics::summary_line(r).c_str(),
                  fr.p95_bounded_slowdown, fr.jain_index_user_wait,
                  static_cast<unsigned long long>(r.placement_failures));
      if (const auto prefix = args.get("export")) {
        metrics::export_all(*prefix + "_" + name, r);
      }
    }

    if (results.size() > 1) {
      const auto monthsOut = metrics::horizon_months(results[0]);
      const Table saving = metrics::monthly_saving_table(results, monthsOut);
      std::printf("\n%s", args.has("csv") ? saving.render_csv().c_str()
                                          : saving.render().c_str());
    }
    if (const auto prefix = args.get("export")) {
      std::printf("\nexported per-policy CSV/JSON under %s_*\n",
                  prefix->c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
