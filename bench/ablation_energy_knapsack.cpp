// Ablation: the paper's instantaneous-power knapsack (value n*p) vs the
// EnergyKnapsack extension (value n*p*min(walltime, time-to-boundary)).
// Also reports fairness metrics: reordering by energy can delay long jobs
// more, and the fairness table shows whether it does.
#include <cstdio>

#include "common.hpp"
#include "core/energy_knapsack_policy.hpp"
#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/fairness.hpp"
#include "metrics/metrics.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  std::printf("== Ablation: knapsack value function + fairness ==\n");
  Table table({"Trace", "Policy", "Saving", "Mean wait (s)",
               "Mean bslow", "p95 bslow", "Jain (user wait)"});
  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto tariff = bench::make_tariff(opt);
    const auto config = bench::make_sim_config(opt);

    core::FcfsPolicy fcfs;
    core::GreedyPowerPolicy greedy;
    core::KnapsackPolicy knapsack;
    core::EnergyKnapsackPolicy energy;
    const auto rf = sim::simulate(t, *tariff, fcfs, config);

    auto add = [&](const sim::SimResult& r) {
      const metrics::FairnessReport fr = metrics::fairness_report(r);
      table.add_row();
      table.cell(bench::workload_name(which));
      table.cell(r.policy_name);
      table.cell_percent(metrics::bill_saving_percent(rf, r));
      table.cell(r.mean_wait_seconds(), 1);
      table.cell(fr.mean_bounded_slowdown, 2);
      table.cell(fr.p95_bounded_slowdown, 2);
      table.cell(fr.jain_index_user_wait, 3);
    };
    add(rf);
    add(sim::simulate(t, *tariff, greedy, config));
    add(sim::simulate(t, *tariff, knapsack, config));
    add(sim::simulate(t, *tariff, energy, config));
  }
  bench::emit(table,
              "value-function variants with responsiveness/fairness "
              "(bslow = bounded slowdown)",
              opt.csv);
  return 0;
}
