// Micro-benchmark (google-benchmark): per-decision cost of the three
// policies as the scheduling window grows — the overhead argument behind
// the paper's §6.4 recommendation of 10-30 job windows. Greedy is
// O(w log w); Knapsack is O(w * N_t / gcd).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "util/rng.hpp"

namespace {

using namespace esched;

std::vector<core::PendingJob> make_window(std::size_t size,
                                          NodeCount system_nodes,
                                          NodeCount granularity) {
  Rng rng(size * 7919 + 13);
  std::vector<core::PendingJob> window;
  window.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    const NodeCount max_units = std::max<NodeCount>(
        1, system_nodes / granularity / 4);
    core::PendingJob job;
    job.id = static_cast<JobId>(i + 1);
    job.submit = static_cast<TimeSec>(i);
    job.nodes = granularity * rng.uniform_int(1, max_units);
    job.walltime = rng.uniform_int(600, 7200);
    job.power_per_node = rng.uniform(20.0, 60.0);
    window.push_back(job);
  }
  return window;
}

core::ScheduleContext make_ctx(NodeCount system_nodes) {
  return core::ScheduleContext{0, system_nodes / 2, system_nodes,
                               power::PricePeriod::kOffPeak};
}

void BM_GreedyDecision(benchmark::State& state) {
  const auto window =
      make_window(static_cast<std::size_t>(state.range(0)), 2048, 1);
  const auto ctx = make_ctx(2048);
  core::GreedyPowerPolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.prioritize(window, ctx));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyDecision)->RangeMultiplier(2)->Range(10, 320)->Complexity();

void BM_KnapsackDecisionNodeGranular(benchmark::State& state) {
  // A 2,048-node cluster scheduled at single-node granularity: the DP
  // table is w x 1,024 cells (gcd 1).
  const auto window =
      make_window(static_cast<std::size_t>(state.range(0)), 2048, 1);
  const auto ctx = make_ctx(2048);
  core::KnapsackPolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.prioritize(window, ctx));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KnapsackDecisionNodeGranular)
    ->RangeMultiplier(2)
    ->Range(10, 320)
    ->Complexity();

void BM_KnapsackDecisionRackGranular(benchmark::State& state) {
  // Mira-style: 49,152 nodes in 1,024-node racks; the gcd scaling
  // collapses the DP to w x 24 cells.
  const auto window =
      make_window(static_cast<std::size_t>(state.range(0)), 48 * 1024, 1024);
  const auto ctx = make_ctx(48 * 1024);
  core::KnapsackPolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.prioritize(window, ctx));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KnapsackDecisionRackGranular)
    ->RangeMultiplier(2)
    ->Range(10, 320)
    ->Complexity();

void BM_FcfsDecision(benchmark::State& state) {
  const auto window =
      make_window(static_cast<std::size_t>(state.range(0)), 2048, 1);
  const auto ctx = make_ctx(2048);
  core::FcfsPolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.prioritize(window, ctx));
  }
}
BENCHMARK(BM_FcfsDecision)->Arg(10)->Arg(100)->Arg(320);

}  // namespace

BENCHMARK_MAIN();
