// Ablation: this paper vs its predecessor's power-capping approach
// (Zhou et al. [30]). The paper's §2 claims its budget-free design
// "minimizes the electricity bill without impacting system utilization,
// during both on-peak and off-peak periods" whereas the power-budget
// approach "degrades system utilization slightly during on-peak". This
// bench runs both on the same traces and quantifies the trade.
#include <cstdio>

#include "common.hpp"
#include "core/powercap_policy.hpp"
#include "metrics/metrics.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  std::printf("== Ablation: window scheduling vs power capping [30] ==\n");
  Table table({"Trace", "Policy", "Saving", "Utilization", "Mean wait (s)"});
  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto tariff = bench::make_tariff(opt);
    const auto config = bench::make_sim_config(opt);
    const auto results =
          bench::run_all_policies(which, t, *tariff, config, opt);

    auto add = [&](const sim::SimResult& r) {
      table.add_row();
      table.cell(bench::workload_name(which));
      table.cell(r.policy_name);
      table.cell_percent(metrics::bill_saving_percent(results[0], r));
      table.cell_percent(metrics::overall_utilization(r) * 100.0);
      table.cell(r.mean_wait_seconds(), 1);
    };
    for (const auto& r : results) add(r);

    // Budgets as fractions of the machine's mean busy power under FCFS.
    const double horizon = static_cast<double>(results[0].horizon_end -
                                               results[0].horizon_begin);
    const Watts mean_power = results[0].total_energy / horizon;
    for (const double fraction : {0.9, 0.75, 0.6}) {
      core::PowerCapPolicy cap(mean_power * fraction);
      const auto r = sim::simulate(t, *tariff, cap, config);
      add(r);
    }
  }
  bench::emit(table,
              "power-aware window policies vs on-peak power budgets "
              "(budgets are fractions of FCFS mean power)",
              opt.csv);
  return 0;
}
