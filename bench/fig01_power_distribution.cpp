// Fig. 1 reproduction: job power distribution on the (Mira-like) BG/Q —
// the histogram of per-rack power (kW/rack) that motivates the whole
// paper: jobs genuinely differ in power, roughly 40-90 kW/rack.
#include <cstdio>

#include "common.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_stats.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  trace::MiraConfig mc;
  const trace::Trace mira =
      trace::make_mira_like(mc, opt.seed != 0 ? opt.seed : 2012);
  std::printf("== Fig. 1: job power distribution on the 48-rack BG/Q ==\n");
  std::printf("trace=%s jobs=%zu racks=%lld\n", mira.name().c_str(),
              mira.size(), static_cast<long long>(mc.racks));

  const Histogram hist =
      trace::power_distribution_kw_per_rack(mira, mc.nodes_per_rack, 10);
  std::fputs(hist.render("\nper-rack power (kW/rack)").c_str(), stdout);

  // Per-size-class power summary: the paper notes small jobs cluster
  // tightly while larger jobs trend hotter and spread wider.
  Table table({"Racks", "Jobs", "Mean kW/rack", "Min", "Max", "Stddev"});
  std::vector<NodeCount> classes{1, 2, 4, 8, 12, 16, 24, 32, 48};
  for (const NodeCount racks : classes) {
    RunningStats stats;
    for (const trace::Job& j : mira.jobs()) {
      if (j.nodes == racks * mc.nodes_per_rack) {
        stats.add(j.power_per_node *
                  static_cast<double>(mc.nodes_per_rack) / 1000.0);
      }
    }
    if (stats.count() == 0) continue;
    table.add_row();
    table.cell_int(racks);
    table.cell_int(static_cast<long long>(stats.count()));
    table.cell(stats.mean());
    table.cell(stats.min());
    table.cell(stats.max());
    table.cell(stats.stddev());
  }
  bench::emit(table, "Fig. 1 companion: power by job size class", opt.csv);
  return 0;
}
