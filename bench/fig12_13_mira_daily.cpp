// Figs. 12 & 13 + the §7 case-study reproduction: Knapsack vs FCFS on the
// Mira-like December-2012 trace at 10 s and 30 s scheduling frequencies.
//
// Outputs the average-daily (time-of-day) utilization curve (Fig. 12), the
// average-daily power curve (Fig. 13), and the monthly bill saving.
// Shape targets: off-peak (00:00-12:00) utilization and power are *higher*
// under Knapsack than FCFS; on-peak curves are close (the early-science
// half's jobs share one power profile, so there is nothing to reorder);
// savings around 5.4% (10 s) and 9.98% (30 s) in the paper.
#include <cstdio>

#include "common.hpp"
#include "core/fcfs_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  trace::MiraConfig mc;
  const trace::Trace mira =
      trace::make_mira_like(mc, opt.seed != 0 ? opt.seed : 2012);
  const auto tariff = bench::make_tariff(opt);

  std::printf("== Figs. 12/13 + case study: Knapsack vs FCFS on Mira ==\n");
  std::printf("jobs=%zu nodes=%lld price-ratio=1:%.0f\n", mira.size(),
              static_cast<long long>(mira.system_nodes()), opt.price_ratio);

  for (const DurationSec tick : {DurationSec{10}, DurationSec{30}}) {
    sim::SimConfig config = bench::make_sim_config(opt);
    config.tick_interval = tick;

    core::FcfsPolicy fcfs;
    core::KnapsackPolicy knapsack;
    const sim::SimResult rf = sim::simulate(mira, *tariff, fcfs, config);
    const sim::SimResult rk = sim::simulate(mira, *tariff, knapsack, config);
    const std::vector<sim::SimResult> results{rf, rk};

    std::printf("\n-- scheduling frequency %llds --\n",
                static_cast<long long>(tick));
    std::printf("monthly bill saving (Knapsack vs FCFS): %.2f%%\n",
                metrics::bill_saving_percent(rf, rk));

    bench::emit(
        metrics::daily_curve_table(results, /*utilization_curve=*/true,
                                   /*step=*/8, 100.0, "% util"),
        "Fig. 12: average daily system utilization", opt.csv);
    bench::emit(
        metrics::daily_curve_table(results, /*utilization_curve=*/false,
                                   /*step=*/8, 1e-6, "MW"),
        "Fig. 13: average daily power consumption", opt.csv);

    // Off-/on-peak decomposition to make the shift quantitative.
    Table split({"Policy", "Off-peak MWh", "On-peak MWh", "Bill"});
    for (const auto& r : results) {
      split.add_row();
      split.cell(r.policy_name);
      split.cell(joules_to_kwh(r.energy_off_peak) / 1000.0);
      split.cell(joules_to_kwh(r.energy_on_peak) / 1000.0);
      split.cell(r.total_bill);
    }
    bench::emit(split, "energy placement by price period", opt.csv);
  }
  return 0;
}
