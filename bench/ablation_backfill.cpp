// Ablation (beyond the paper): the effect of EASY-backfilling beyond the
// scheduling window for the power-aware policies. The paper's text
// confines the policies to the window; its baseline backfills over the
// whole queue. This bench quantifies why esched backfills beyond the
// window by default: without it, window policies pay a visible wait-time
// penalty on backlogged workloads, for essentially no extra savings.
#include <cstdio>

#include "common.hpp"
#include "core/fcfs_policy.hpp"
#include "metrics/metrics.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  std::printf("== Ablation: beyond-window backfilling ==\n");
  Table table({"Trace", "Backfill", "Policy", "Saving", "Utilization",
               "Mean wait (s)"});
  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto tariff = bench::make_tariff(opt);
    for (const bool backfill : {true, false}) {
      sim::SimConfig config = bench::make_sim_config(opt);
      config.scheduler.backfill_beyond_window = backfill;
      const auto results =
          bench::run_all_policies(which, t, *tariff, config, opt);
      for (std::size_t i = 1; i < results.size(); ++i) {
        table.add_row();
        table.cell(bench::workload_name(which));
        table.cell(backfill ? "on" : "off");
        table.cell(results[i].policy_name);
        table.cell_percent(
            metrics::bill_saving_percent(results[0], results[i]));
        table.cell_percent(metrics::overall_utilization(results[i]) * 100.0);
        table.cell(results[i].mean_wait_seconds(), 1);
      }
    }
  }
  bench::emit(table, "window policies with/without beyond-window backfill",
              opt.csv);

  // Baseline discipline: does the savings story survive if the FCFS
  // baseline uses conservative instead of EASY backfilling?
  Table baseline({"Trace", "FCFS discipline", "Utilization",
                  "Mean wait (s)", "Greedy saving", "Knapsack saving"});
  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto tariff = bench::make_tariff(opt);
    for (const auto mode :
         {core::BackfillMode::kEasy, core::BackfillMode::kConservative}) {
      sim::SimConfig config = bench::make_sim_config(opt);
      config.scheduler.backfill_mode = mode;
      const auto results =
          bench::run_all_policies(which, t, *tariff, config, opt);
      baseline.add_row();
      baseline.cell(bench::workload_name(which));
      baseline.cell(mode == core::BackfillMode::kEasy ? "EASY"
                                                      : "conservative");
      baseline.cell_percent(metrics::overall_utilization(results[0]) *
                            100.0);
      baseline.cell(results[0].mean_wait_seconds(), 1);
      baseline.cell_percent(
          metrics::bill_saving_percent(results[0], results[1]));
      baseline.cell_percent(
          metrics::bill_saving_percent(results[0], results[2]));
    }
  }
  bench::emit(baseline,
              "savings vs the baseline's backfilling discipline (window "
              "policies themselves are unaffected by the mode)",
              opt.csv);
  return 0;
}
