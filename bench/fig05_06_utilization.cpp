// Figs. 5 & 6 reproduction: monthly system utilization under FCFS, Greedy
// and Knapsack on SDSC-BLUE (Fig. 5) and ANL-BGP (Fig. 6).
// Shape target: the power-aware policies stay within 5 percentage points
// of FCFS everywhere, occasionally beating it.
#include "common.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);
  const auto tariff = bench::make_tariff(opt);
  const auto config = bench::make_sim_config(opt);

  for (const auto which :
       {bench::Workload::kSdscBlue, bench::Workload::kAnlBgp}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto results =
        bench::run_all_policies(which, t, *tariff, config, opt);
    bench::print_header(
        which == bench::Workload::kSdscBlue
            ? "Fig. 5: system utilization of SDSC-BLUE"
            : "Fig. 6: system utilization of ANL-BGP",
        t, opt);
    bench::emit(metrics::monthly_utilization_table(results, opt.months),
                "monthly system utilization", opt.csv);
  }
  return 0;
}
