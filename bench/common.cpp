#include "common.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "power/profile.hpp"
#include "trace/swf.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace esched::bench {

Options parse_options(int argc, const char* const* argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  Options opt;
  opt.months = static_cast<std::size_t>(args.get_int_or("months", 5));
  opt.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 0));
  opt.swf_path = args.get_or("swf", "");
  opt.power_ratio = args.get_double_or("power-ratio", 3.0);
  opt.power_ratio_given = args.has("power-ratio");
  opt.price_ratio = args.get_double_or("price-ratio", 3.0);
  opt.tick = args.get_int_or("tick", 10);
  opt.window = static_cast<std::size_t>(args.get_int_or("window", 20));
  opt.jobs = static_cast<std::size_t>(args.get_int_or("jobs", 0));
  opt.csv = args.has("csv");
  opt.trace_out = args.get_or("trace-out", "");
  if (opt.trace_out.empty()) {
    // Flagless opt-in for drivers invoked through scripts/CI wrappers.
    if (const char* env = std::getenv("ESCHED_TRACE")) opt.trace_out = env;
  }
  opt.metrics_out = args.get_or("metrics-out", "");
  opt.progress = args.has("progress");
  ESCHED_REQUIRE(opt.months >= 1, "--months must be >= 1");
  // Fail here, with the flag's name, instead of deep inside the Engine
  // (a zero tick) or with a silently empty window (a zero window).
  ESCHED_REQUIRE(opt.window >= 1, "--window must be >= 1");
  ESCHED_REQUIRE(opt.tick >= 1, "--tick must be >= 1");
  // Observability side effects last, after validation can no longer
  // reject the invocation: counters flip on when a metrics sink exists,
  // and the tracer opens its two files eagerly (fail fast on a bad path).
  if (!opt.metrics_out.empty()) obs::set_counters_enabled(true);
  if (!opt.trace_out.empty()) {
    opt.tracer = std::make_shared<obs::Tracer>();
    opt.tracer->open(opt.trace_out);
  }
  return opt;
}

trace::Trace load_workload(Workload which, const Options& opt) {
  trace::Trace trace = [&] {
    if (!opt.swf_path.empty()) return trace::swf::load_file(opt.swf_path);
    const std::uint64_t canonical =
        which == Workload::kSdscBlue ? 2001u : 2009u;
    const std::uint64_t seed = opt.seed != 0 ? opt.seed : canonical;
    return which == Workload::kSdscBlue
               ? trace::make_sdsc_blue_like(opt.months, seed)
               : trace::make_anl_bgp_like(opt.months, seed);
  }();

  // Assign the paper's synthetic power profiles unless the trace already
  // carries real ones (a PowerColumn SWF). An *explicit* --power-ratio
  // always rescales, even at the default value of 3.0 — "rescale these
  // real profiles to exactly 1:3" is a meaningful request the old
  // `power_ratio != 3.0` sentinel silently dropped.
  bool has_power = false;
  for (const trace::Job& j : trace.jobs()) {
    if (j.power_per_node > 0.0) {
      has_power = true;
      break;
    }
  }
  if (!has_power || opt.power_ratio_given) {
    power::ProfileConfig cfg;
    cfg.ratio = opt.power_ratio;
    if (has_power) {
      power::rescale_profiles(trace, cfg.min_watts_per_node, cfg.ratio);
    } else {
      power::assign_profiles(trace, cfg,
                             opt.seed != 0 ? opt.seed : 0xe5c4edULL);
    }
  }
  return trace;
}

std::string workload_name(Workload which) {
  return which == Workload::kSdscBlue ? "SDSC-BLUE" : "ANL-BGP";
}

std::unique_ptr<power::PricingModel> make_tariff(const Options& opt) {
  return power::make_paper_tariff(opt.price_ratio);
}

sim::SimConfig make_sim_config(const Options& opt) {
  sim::SimConfig cfg;
  cfg.tick_interval = opt.tick;
  cfg.scheduler.window_size = opt.window;
  cfg.tracer = opt.tracer.get();
  return cfg;
}

std::vector<run::PolicyFactory> standard_policy_factories() {
  return {
      [] { return std::make_unique<core::FcfsPolicy>(); },
      [] { return std::make_unique<core::GreedyPowerPolicy>(); },
      [] { return std::make_unique<core::KnapsackPolicy>(); },
  };
}

namespace {

std::vector<run::SimJob> all_policies_sweep(const trace::Trace& trace,
                                            const power::PricingModel& tariff,
                                            const sim::SimConfig& config) {
  std::vector<run::SimJob> sweep;
  const auto shared_trace = run::borrow(trace);
  const auto shared_tariff = run::borrow(tariff);
  for (run::PolicyFactory& factory : standard_policy_factories()) {
    sweep.push_back(
        {shared_trace, shared_tariff, std::move(factory), config, ""});
  }
  return sweep;
}

/// Stderr progress line, rewritten in place; finishes with a newline so
/// the bench's stdout tables start clean.
void render_progress(const run::SweepProgress& p) {
  std::fprintf(stderr, "\r[sweep] %zu/%zu done, %.1fs elapsed, eta %.1fs ",
               p.done, p.total, p.elapsed_seconds, p.eta_seconds);
  if (p.done == p.total) std::fputc('\n', stderr);
  std::fflush(stderr);
}

}  // namespace

std::vector<sim::SimResult> run_all_policies(const trace::Trace& trace,
                                             const power::PricingModel& tariff,
                                             const sim::SimConfig& config,
                                             std::size_t jobs) {
  return run_sweep(all_policies_sweep(trace, tariff, config), jobs);
}

std::vector<sim::SimResult> run_all_policies(const trace::Trace& trace,
                                             const power::PricingModel& tariff,
                                             const sim::SimConfig& config,
                                             const Options& options) {
  return run_sweep(all_policies_sweep(trace, tariff, config), options);
}

std::vector<sim::SimResult> run_sweep(const std::vector<run::SimJob>& sweep,
                                      std::size_t jobs) {
  run::SweepRunner runner(jobs);
  return runner.run(sweep);
}

std::vector<sim::SimResult> run_sweep(const std::vector<run::SimJob>& sweep,
                                      const Options& options) {
  run::SweepRunner runner(options.jobs);
  runner.set_tracer(options.tracer.get());
  if (options.progress) runner.set_progress(render_progress);
  std::vector<sim::SimResult> results = runner.run(sweep);
  // Snapshot after every sweep (drivers may run several): the file always
  // holds the cumulative totals of the process so far.
  if (!options.metrics_out.empty()) {
    obs::Registry::global().write_json_file(options.metrics_out);
  }
  return results;
}

Money bill_under_ratio(const sim::SimResult& result, Money off_price,
                       double ratio) {
  return off_price * (joules_to_kwh(result.energy_off_peak) +
                      ratio * joules_to_kwh(result.energy_on_peak));
}

void emit(const Table& table, const std::string& title, bool csv) {
  std::printf("\n%s\n", title.c_str());
  std::fputs((csv ? table.render_csv() : table.render()).c_str(), stdout);
}

void print_header(const std::string& experiment, const trace::Trace& trace,
                  const Options& opt) {
  std::printf(
      "== %s ==\ntrace=%s jobs=%zu nodes=%lld months=%zu "
      "power-ratio=1:%.0f price-ratio=1:%.0f tick=%llds window=%zu\n",
      experiment.c_str(), trace.name().c_str(), trace.size(),
      static_cast<long long>(trace.system_nodes()), opt.months,
      opt.power_ratio, opt.price_ratio, static_cast<long long>(opt.tick),
      opt.window);
}

}  // namespace esched::bench
