#include "common.hpp"

#include <cstdio>
#include <cstdlib>

#include <thread>
#include <utility>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "net/distributed.hpp"
#include "net/socket.hpp"
#include "power/profile.hpp"
#include "run/proc.hpp"
#include "trace/swf.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace esched::bench {

Options parse_options(int argc, const char* const* argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  Options opt;
  opt.months = static_cast<std::size_t>(args.get_int_or("months", 5));
  opt.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 0));
  opt.swf_path = args.get_or("swf", "");
  opt.power_ratio = args.get_double_or("power-ratio", 3.0);
  opt.power_ratio_given = args.has("power-ratio");
  opt.price_ratio = args.get_double_or("price-ratio", 3.0);
  opt.tick = args.get_int_or("tick", 10);
  opt.window = static_cast<std::size_t>(args.get_int_or("window", 20));
  opt.jobs = static_cast<std::size_t>(args.get_int_or("jobs", 0));
  warn_if_oversubscribed(opt.jobs);
  opt.csv = args.has("csv");
  opt.isolate = args.get_or("isolate", "off");
  opt.agents = args.get_or("agents", "");
  if (opt.agents.empty()) {
    if (const char* env = std::getenv("ESCHED_AGENTS")) opt.agents = env;
  }
  opt.task_timeout = args.get_double_or("task-timeout", 0.0);
  opt.retries = static_cast<std::size_t>(args.get_int_or("retries", 2));
  opt.trace_out = args.get_or("trace-out", "");
  if (opt.trace_out.empty()) {
    // Flagless opt-in for drivers invoked through scripts/CI wrappers.
    if (const char* env = std::getenv("ESCHED_TRACE")) opt.trace_out = env;
  }
  opt.metrics_out = args.get_or("metrics-out", "");
  opt.progress = args.has("progress");
  ESCHED_REQUIRE(opt.months >= 1, "--months must be >= 1");
  // Fail here, with the flag's name, instead of deep inside the Engine
  // (a zero tick) or with a silently empty window (a zero window).
  ESCHED_REQUIRE(opt.window >= 1, "--window must be >= 1");
  ESCHED_REQUIRE(opt.tick >= 1, "--tick must be >= 1");
  ESCHED_REQUIRE(opt.isolate == "off" || opt.isolate == "proc" ||
                     opt.isolate == "tcp",
                 "--isolate must be \"off\", \"proc\" or \"tcp\" (got \"" +
                     opt.isolate + "\")");
  // Reject a malformed agent list here, with the flag's name, even when
  // --isolate=tcp is not (yet) selected: a typo'd address must not hide
  // until a remote run. parse_agent_list's error names the entry and the
  // accepted host:port forms.
  net::parse_agent_list(opt.agents);
  ESCHED_REQUIRE(opt.task_timeout >= 0.0, "--task-timeout must be >= 0");
  // Observability side effects last, after validation can no longer
  // reject the invocation: counters flip on when a metrics sink exists,
  // and the tracer opens its two files eagerly (fail fast on a bad path).
  if (!opt.metrics_out.empty()) obs::set_counters_enabled(true);
  if (!opt.trace_out.empty()) {
    opt.tracer = std::make_shared<obs::Tracer>();
    opt.tracer->open(opt.trace_out);
  }
  return opt;
}

unsigned host_hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

void warn_if_oversubscribed(std::size_t jobs) {
  static bool warned = false;
  const unsigned hw = host_hardware_threads();
  if (warned || jobs <= hw) return;
  warned = true;
  std::fprintf(stderr,
               "esched: --jobs %zu exceeds the host's %u hardware "
               "threads; results stay bit-identical but wall-clock and "
               "speedup numbers will be skewed by oversubscription\n",
               jobs, hw);
}

trace::Trace load_workload(Workload which, const Options& opt) {
  // Single source of truth: the declarative spec. An esched-worker that
  // rebuilds the trace from the same spec runs exactly this code, which
  // is what makes --isolate=proc bit-identical to in-process execution.
  return run::build_trace(workload_spec(which, opt));
}

run::TraceSpec workload_spec(Workload which, const Options& opt) {
  run::TraceSpec spec;
  if (!opt.swf_path.empty()) {
    spec.source = "swf";
    spec.swf_path = opt.swf_path;
  } else {
    spec.source = which == Workload::kSdscBlue ? "sdsc-blue" : "anl-bgp";
  }
  spec.months = opt.months;
  spec.seed = opt.seed;
  spec.power_ratio = opt.power_ratio;
  spec.force_power_ratio = opt.power_ratio_given;
  // Historical bench behaviour: the synthetic power draw reuses --seed
  // when given (build_trace falls back to the canonical power seed at 0).
  spec.power_seed = opt.seed;
  return spec;
}

std::string workload_name(Workload which) {
  return which == Workload::kSdscBlue ? "SDSC-BLUE" : "ANL-BGP";
}

std::unique_ptr<power::PricingModel> make_tariff(const Options& opt) {
  return power::make_paper_tariff(opt.price_ratio);
}

run::PricingSpec tariff_spec(const Options& opt) {
  run::PricingSpec spec;  // model "paper", off-peak $0.03/kWh — the
  spec.ratio = opt.price_ratio;  // make_paper_tariff constants
  return spec;
}

sim::SimConfig make_sim_config(const Options& opt) {
  sim::SimConfig cfg;
  cfg.tick_interval = opt.tick;
  cfg.scheduler.window_size = opt.window;
  cfg.tracer = opt.tracer.get();
  return cfg;
}

std::vector<run::PolicyFactory> standard_policy_factories() {
  return {
      [] { return std::make_unique<core::FcfsPolicy>(); },
      [] { return std::make_unique<core::GreedyPowerPolicy>(); },
      [] { return std::make_unique<core::KnapsackPolicy>(); },
  };
}

std::vector<std::string> standard_policy_names() {
  return {"fcfs", "greedy", "knapsack"};
}

run::SimJob make_cell(std::shared_ptr<const trace::Trace> trace,
                      std::shared_ptr<const power::PricingModel> tariff,
                      const run::TraceSpec& trace_spec,
                      const run::PricingSpec& pricing_spec,
                      const std::string& policy,
                      const sim::SimConfig& config, std::string label) {
  run::SimJob job;
  job.trace = std::move(trace);
  job.pricing = std::move(tariff);
  job.make_policy = [policy] { return core::make_policy_by_name(policy); };
  job.config = config;
  job.label = std::move(label);
  if (config.facility_model == nullptr) {
    auto spec = std::make_shared<run::JobSpec>();
    spec->trace = trace_spec;
    spec->pricing = pricing_spec;
    spec->policy.name = policy;
    spec->config = config;
    spec->config.tracer = nullptr;  // pointers never cross the wire
    spec->label = job.label;
    job.spec = std::move(spec);
  }
  return job;
}

namespace {

std::vector<run::SimJob> all_policies_sweep(const trace::Trace& trace,
                                            const power::PricingModel& tariff,
                                            const sim::SimConfig& config) {
  std::vector<run::SimJob> sweep;
  const auto shared_trace = run::borrow(trace);
  const auto shared_tariff = run::borrow(tariff);
  for (run::PolicyFactory& factory : standard_policy_factories()) {
    sweep.push_back(
        {shared_trace, shared_tariff, std::move(factory), config, "", nullptr});
  }
  return sweep;
}

/// Stderr progress line, rewritten in place; finishes with a newline so
/// the bench's stdout tables start clean.
void render_progress(const run::SweepProgress& p) {
  std::fprintf(stderr, "\r[sweep] %zu/%zu done, %.1fs elapsed, eta %.1fs ",
               p.done, p.total, p.elapsed_seconds, p.eta_seconds);
  if (p.done == p.total) std::fputc('\n', stderr);
  std::fflush(stderr);
}

/// Why a sweep's cells cannot cross a process boundary at all, or ""
/// when they can. Facility models and tracers are process-local
/// pointers; a cell built without make_cell carries no declarative spec.
std::string cell_spec_blocker(const std::vector<run::SimJob>& sweep) {
  for (const run::SimJob& job : sweep) {
    if (job.spec == nullptr) {
      return "a cell has no declarative spec (label \"" + job.label +
             "\")";
    }
    if (job.config.facility_model != nullptr) {
      return "a cell uses a facility model (label \"" + job.label + "\")";
    }
  }
  return {};
}

/// Why a sweep cannot run under --isolate=proc, or "" when it can.
std::string isolate_blocker(const std::vector<run::SimJob>& sweep) {
  std::string blocker = cell_spec_blocker(sweep);
  if (!blocker.empty()) return blocker;
  if (!run::SubprocessPool::available()) {
    return "esched-worker binary not found (build target esched-worker "
           "or set ESCHED_WORKER)";
  }
  return {};
}

/// Why a sweep cannot run under --isolate=tcp, or "" when it can: the
/// cells must cross a process boundary, at least one agent must be named
/// (--agents / ESCHED_AGENTS) and at least one must accept a connection.
std::string tcp_blocker(const std::vector<run::SimJob>& sweep,
                        const Options& options) {
  std::string blocker = cell_spec_blocker(sweep);
  if (!blocker.empty()) return blocker;
  const std::vector<net::HostPort> agents =
      net::parse_agent_list(options.agents);
  if (agents.empty()) {
    return "no agents configured (pass --agents or set ESCHED_AGENTS)";
  }
  if (!net::DistributedPool::any_agent_reachable(agents)) {
    return "no agent reachable at " + options.agents;
  }
  return {};
}

/// Degradation warning, once per process and mode: --isolate silently
/// doing nothing would be worse than refusing, and refusing would break
/// every facility-model bench invoked from a generic script.
void warn_isolate_unavailable(const std::string& mode,
                              const std::string& fallback,
                              const std::string& why) {
  static bool warned_proc = false;
  static bool warned_tcp = false;
  bool& warned = mode == "tcp" ? warned_tcp : warned_proc;
  if (warned) return;
  warned = true;
  std::fprintf(stderr, "esched: --isolate=%s unavailable: %s; %s\n",
               mode.c_str(), why.c_str(), fallback.c_str());
}

/// The declarative sweep the multi-process/distributed pools consume.
/// The SimJob's own config/label are authoritative (a driver may tweak
/// them after make_cell); only the declarative parts come from the spec.
std::vector<run::JobSpec> sweep_specs(const std::vector<run::SimJob>& sweep) {
  std::vector<run::JobSpec> specs;
  specs.reserve(sweep.size());
  for (const run::SimJob& job : sweep) {
    run::JobSpec spec = *job.spec;
    spec.config = job.config;
    spec.config.tracer = nullptr;
    spec.label = job.label;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<sim::SimResult> run_sweep_proc(
    const std::vector<run::SimJob>& sweep, const Options& options) {
  run::SubprocessPoolConfig cfg;
  cfg.workers = options.jobs;
  cfg.task_timeout_seconds = options.task_timeout;
  cfg.max_attempts = static_cast<std::uint32_t>(options.retries) + 1;
  run::SubprocessPool pool(cfg);
  pool.set_tracer(options.tracer.get());
  if (options.progress) pool.set_progress(render_progress);
  return pool.run(sweep_specs(sweep));
}

std::vector<sim::SimResult> run_sweep_tcp(
    const std::vector<run::SimJob>& sweep, const Options& options) {
  net::DistributedPoolConfig cfg;
  cfg.agents = net::parse_agent_list(options.agents);
  cfg.task_timeout_seconds = options.task_timeout;
  cfg.max_attempts = static_cast<std::uint32_t>(options.retries) + 1;
  net::DistributedPool pool(cfg);
  pool.set_tracer(options.tracer.get());
  if (options.progress) pool.set_progress(render_progress);
  return pool.run(sweep_specs(sweep));
}

}  // namespace

std::vector<sim::SimResult> run_all_policies(const trace::Trace& trace,
                                             const power::PricingModel& tariff,
                                             const sim::SimConfig& config,
                                             std::size_t jobs) {
  return run_sweep(all_policies_sweep(trace, tariff, config), jobs);
}

std::vector<sim::SimResult> run_all_policies(const trace::Trace& trace,
                                             const power::PricingModel& tariff,
                                             const sim::SimConfig& config,
                                             const Options& options) {
  return run_sweep(all_policies_sweep(trace, tariff, config), options);
}

std::vector<sim::SimResult> run_all_policies(Workload which,
                                             const trace::Trace& trace,
                                             const power::PricingModel& tariff,
                                             const sim::SimConfig& config,
                                             const Options& options) {
  const run::TraceSpec trace_spec = workload_spec(which, options);
  const run::PricingSpec pricing_spec = tariff_spec(options);
  const auto shared_trace = run::borrow(trace);
  const auto shared_tariff = run::borrow(tariff);
  std::vector<run::SimJob> sweep;
  for (const std::string& policy : standard_policy_names()) {
    sweep.push_back(make_cell(shared_trace, shared_tariff, trace_spec,
                              pricing_spec, policy, config,
                              policy + "/" + workload_name(which)));
  }
  return run_sweep(sweep, options);
}

std::vector<sim::SimResult> run_sweep(const std::vector<run::SimJob>& sweep,
                                      std::size_t jobs) {
  run::SweepRunner runner(jobs);
  return runner.run(sweep);
}

std::vector<sim::SimResult> run_sweep(const std::vector<run::SimJob>& sweep,
                                      const Options& options) {
  std::vector<sim::SimResult> results;
  bool done = false;
  std::string mode = options.isolate;
  std::string blocker;
  if (mode == "tcp") {
    if ((blocker = tcp_blocker(sweep, options)).empty()) {
      results = run_sweep_tcp(sweep, options);
      done = true;
    } else {
      // Graceful degradation chain: tcp -> proc -> in-process, each step
      // warned once. Results are bit-identical in every mode, so a
      // degraded run is slower, never wrong.
      warn_isolate_unavailable("tcp", "falling back to --isolate=proc",
                               blocker);
      mode = "proc";
    }
  }
  if (!done && mode == "proc") {
    if ((blocker = isolate_blocker(sweep)).empty()) {
      results = run_sweep_proc(sweep, options);
      done = true;
    } else {
      warn_isolate_unavailable("proc", "running in-process", blocker);
    }
  }
  if (!done) {
    run::SweepRunner runner(options.jobs);
    runner.set_tracer(options.tracer.get());
    if (options.progress) runner.set_progress(render_progress);
    results = runner.run(sweep);
  }
  // Snapshot after every sweep (drivers may run several): the file always
  // holds the cumulative totals of the process so far.
  if (!options.metrics_out.empty()) {
    obs::Registry::global().write_json_file(options.metrics_out);
  }
  return results;
}

Money bill_under_ratio(const sim::SimResult& result, Money off_price,
                       double ratio) {
  return off_price * (joules_to_kwh(result.energy_off_peak) +
                      ratio * joules_to_kwh(result.energy_on_peak));
}

void emit(const Table& table, const std::string& title, bool csv) {
  std::printf("\n%s\n", title.c_str());
  std::fputs((csv ? table.render_csv() : table.render()).c_str(), stdout);
}

void print_header(const std::string& experiment, const trace::Trace& trace,
                  const Options& opt) {
  std::printf(
      "== %s ==\ntrace=%s jobs=%zu nodes=%lld months=%zu "
      "power-ratio=1:%.0f price-ratio=1:%.0f tick=%llds window=%zu\n",
      experiment.c_str(), trace.name().c_str(), trace.size(),
      static_cast<long long>(trace.system_nodes()), opt.months,
      opt.power_ratio, opt.price_ratio, static_cast<long long>(opt.tick),
      opt.window);
}

}  // namespace esched::bench
