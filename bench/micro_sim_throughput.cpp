// Micro-benchmark (google-benchmark): end-to-end simulator throughput —
// how many trace jobs per second the event engine processes under each
// policy. Establishes that five-month, hundred-thousand-job studies run
// in seconds (the reason the sweeps in bench/ are cheap).
//
// Sweep mode (`--sweep`): instead of google-benchmark, run a 3-policy x
// 4-power-ratio grid twice — serially (--jobs 1 semantics) and through
// the parallel SweepRunner — verify the results are bit-identical, and
// print wall/cpu/task timings plus the speedup. `--sweep-json FILE`
// additionally records the numbers (BENCH_sweep.json in the repo).
// Extra sweep flags: --months N (default 1), --jobs N (default: runner
// default, i.e. ESCHED_JOBS or hardware_concurrency).
//
// Obs-overhead mode (`--obs-overhead`): measure the cost of the src/obs
// instrumentation by running the three policies over one trace with
// (a) observability off, (b) counters hot, (c) counters + full tracing,
// taking the best of `--reps` repetitions each. `--obs-json FILE` records
// the numbers (BENCH_obs_overhead.json in the repo, the <2%/<5% overhead
// contract from DESIGN.md).
//
// Sim-core mode (`--sim-core`): the fast-core acceptance bench over a
// 3-policy x 20-price-ratio grid (one trace; price ratios share the
// scheduling trajectory). Two timed passes run first, back to back:
// "before" — the seed configuration (binary-heap event queue, sharing
// off) on a policy-balanced sample of the grid — and "after" — calendar
// queue + sharing over all cells. An untimed third pass then re-runs
// the seed configuration over the full grid and byte-compares every
// result against the "after" pass (spilled to disk as exact wire
// encodings), so the bit-identity contract covers all 60 cells while
// the timed windows stay short enough not to trip sustained-load host
// throttling. `--scale s|m|l|xl` picks the trace length (1/6/84/900
// months; xl is ~1M jobs per cell), `--sim-core-json FILE` records the
// numbers (BENCH_sim_core.json in the repo), and `--min-speedup X`
// makes the exit status enforce a floor (the CI perf-smoke gate).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "power/pricing.hpp"
#include "power/profile.hpp"
#include "run/spec.hpp"
#include "run/sweep.hpp"
#include "run/wire.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using namespace esched;

const trace::Trace& shared_trace() {
  static const trace::Trace t = [] {
    trace::Trace raw = trace::make_anl_bgp_like(1, 99);
    power::assign_profiles(raw, power::ProfileConfig{}, 99);
    return raw;
  }();
  return t;
}

template <typename Policy>
void run_sim(benchmark::State& state) {
  const trace::Trace& t = shared_trace();
  power::OnOffPeakPricing pricing(0.03, 3.0);
  for (auto _ : state) {
    Policy policy;
    benchmark::DoNotOptimize(sim::simulate(t, pricing, policy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}

void BM_SimulateMonthFcfs(benchmark::State& state) {
  run_sim<core::FcfsPolicy>(state);
}
void BM_SimulateMonthGreedy(benchmark::State& state) {
  run_sim<core::GreedyPowerPolicy>(state);
}
void BM_SimulateMonthKnapsack(benchmark::State& state) {
  run_sim<core::KnapsackPolicy>(state);
}

BENCHMARK(BM_SimulateMonthFcfs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateMonthGreedy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateMonthKnapsack)->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::make_sdsc_blue_like(1, static_cast<std::uint64_t>(
                                          state.iterations() + 1)));
  }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

// ---- sweep mode: serial vs parallel runner comparison ----

constexpr double kSweepPowerRatios[] = {2.0, 3.0, 4.0, 5.0};

void print_stats(const char* label, const run::SweepStats& s) {
  std::printf(
      "%-8s jobs=%zu tasks=%zu wall=%.3fs cpu=%.3fs "
      "task min/mean/max=%.3f/%.3f/%.3f s\n",
      label, s.threads, s.tasks, s.wall_seconds, s.cpu_seconds,
      s.task_min_seconds, s.task_mean_seconds, s.task_max_seconds);
}

void write_json(const std::string& path, std::size_t months,
                std::size_t cells, std::size_t trace_jobs,
                const run::SweepStats& serial,
                const run::SweepStats& parallel, bool identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ESCHED_REQUIRE(f != nullptr, "cannot open " + path + " for writing");
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"micro_sim_throughput --sweep\",\n"
               "  \"grid\": {\"policies\": 3, \"power_ratios\": "
               "[2, 3, 4, 5], \"months\": %zu, \"cells\": %zu,\n"
               "           \"trace_jobs_per_cell\": %zu},\n"
               "  \"host_hardware_threads\": %u,\n",
               months, cells, trace_jobs,
               std::thread::hardware_concurrency());
  const auto emit = [f](const char* key, const run::SweepStats& s) {
    std::fprintf(f,
                 "  \"%s\": {\"jobs\": %zu, \"wall_seconds\": %.6f, "
                 "\"cpu_seconds\": %.6f,\n"
                 "    \"task_seconds_min\": %.6f, \"task_seconds_mean\": "
                 "%.6f, \"task_seconds_max\": %.6f},\n",
                 key, s.threads, s.wall_seconds, s.cpu_seconds,
                 s.task_min_seconds, s.task_mean_seconds,
                 s.task_max_seconds);
  };
  emit("serial", serial);
  emit("parallel", parallel);
  std::fprintf(f,
               "  \"note\": \"wall speedup is bounded by "
               "host_hardware_threads; the 4x target needs >= 8 cores\",\n"
               "  \"speedup_wall\": %.3f,\n"
               "  \"bit_identical\": %s\n"
               "}\n",
               parallel.wall_seconds > 0.0
                   ? serial.wall_seconds / parallel.wall_seconds
                   : 0.0,
               identical ? "true" : "false");
  std::fclose(f);
}

int run_sweep_mode(const CliArgs& args) {
  const auto months =
      static_cast<std::size_t>(args.get_int_or("months", 1));
  const auto jobs = static_cast<std::size_t>(args.get_int_or("jobs", 0));

  // The grid: 3 policies x 4 power ratios over a one-seed ANL-BGP-like
  // month. Each ratio gets its own trace (profiles are part of the trace).
  std::vector<run::SimJob> sweep;
  std::vector<std::shared_ptr<const trace::Trace>> traces;
  const auto tariff =
      std::make_shared<const power::OnOffPeakPricing>(0.03, 3.0);
  for (const double ratio : kSweepPowerRatios) {
    trace::Trace t = trace::make_anl_bgp_like(months, 99);
    power::ProfileConfig cfg;
    cfg.ratio = ratio;
    power::assign_profiles(t, cfg, 99);
    traces.push_back(std::make_shared<const trace::Trace>(std::move(t)));
    const run::PolicyFactory factories[] = {
        [] { return std::make_unique<core::FcfsPolicy>(); },
        [] { return std::make_unique<core::GreedyPowerPolicy>(); },
        [] { return std::make_unique<core::KnapsackPolicy>(); },
    };
    for (const run::PolicyFactory& factory : factories) {
      sweep.push_back({traces.back(), tariff, factory, sim::SimConfig{},
                       "ratio=" + std::to_string(ratio), nullptr});
    }
  }

  run::SweepRunner serial_runner(1);
  const auto serial_results = serial_runner.run(sweep);
  const run::SweepStats serial = serial_runner.last_stats();

  run::SweepRunner parallel_runner(jobs);
  const auto parallel_results = parallel_runner.run(sweep);
  const run::SweepStats parallel = parallel_runner.last_stats();

  bool identical = serial_results.size() == parallel_results.size();
  for (std::size_t i = 0; identical && i < serial_results.size(); ++i) {
    identical = run::results_identical(serial_results[i],
                                       parallel_results[i]);
  }

  std::printf("== micro_sim_throughput --sweep ==\n");
  std::printf("grid: 3 policies x 4 power ratios, months=%zu, %zu jobs "
              "per trace\n",
              months, traces.front()->size());
  print_stats("serial", serial);
  print_stats("parallel", parallel);
  std::printf("speedup(wall)=%.2fx  bit-identical=%s\n",
              parallel.wall_seconds > 0.0
                  ? serial.wall_seconds / parallel.wall_seconds
                  : 0.0,
              identical ? "yes" : "NO");

  if (const auto json = args.get("sweep-json")) {
    write_json(*json, months, sweep.size(), traces.front()->size(), serial,
               parallel, identical);
    std::printf("wrote %s\n", json->c_str());
  }
  return identical ? 0 : 1;
}

// ---- sim-core mode: the fast-core acceptance bench ----

/// Trace length per --scale step. The ANL-BGP-like generator emits
/// ~1.1k jobs/month, so xl is ~1M jobs per cell.
std::size_t scale_months(const std::string& scale) {
  if (scale == "s") return 1;
  if (scale == "m") return 6;
  if (scale == "l") return 84;
  if (scale == "xl") return 900;
  throw Error("--scale must be s, m, l or xl (got \"" + scale + "\")");
}

/// Append one result's exact wire encoding (length-prefixed) to `spill`.
void spill_result(std::FILE* spill, const sim::SimResult& result) {
  const std::vector<std::uint8_t> bytes = run::wire::encode_result(result);
  const std::uint64_t n = bytes.size();
  ESCHED_REQUIRE(std::fwrite(&n, sizeof n, 1, spill) == 1 &&
                     std::fwrite(bytes.data(), 1, bytes.size(), spill) ==
                         bytes.size(),
                 "short write to the sim-core spill file");
}

/// Read the next spilled encoding and compare it byte-for-byte against
/// `result`'s. Byte equality of the exact codec is equivalent to
/// run::results_identical (it covers the same fields), just stricter on
/// float bit patterns — which is the point of the bit-identity gate.
bool matches_spilled(std::FILE* spill, const sim::SimResult& result) {
  std::uint64_t n = 0;
  if (std::fread(&n, sizeof n, 1, spill) != 1) return false;
  std::vector<std::uint8_t> stored(n);
  if (std::fread(stored.data(), 1, n, spill) != n) return false;
  return stored == run::wire::encode_result(result);
}

/// Run the sim-core grid once. Each result is handed to `consume` in
/// submission order and freed immediately afterwards: at --scale=xl the
/// 60 results hold gigabytes, and carrying the "before" set in memory
/// while the "after" pass runs slows the timed region measurably (page
/// pressure), so neither pass may retain its results.
run::SweepStats run_sim_core_pass(
    const std::vector<run::SimJob>& sweep, std::size_t jobs, bool sharing,
    const std::function<void(std::size_t, sim::SimResult&)>& consume) {
  run::SweepRunner runner(jobs);
  runner.set_prefix_sharing(sharing);
  std::vector<sim::SimResult> results = runner.run(sweep);
  for (std::size_t i = 0; i < results.size(); ++i) {
    consume(i, results[i]);
    results[i] = sim::SimResult{};
  }
  return runner.last_stats();
}

/// Scoped override of the ESCHED_EVENTQ environment variable; restores
/// the previous state on destruction.
class ScopedEventqEnv {
 public:
  explicit ScopedEventqEnv(const char* value) {
    if (const char* prev = std::getenv("ESCHED_EVENTQ")) saved_ = prev;
    if (value != nullptr) {
      ::setenv("ESCHED_EVENTQ", value, 1);
    } else {
      ::unsetenv("ESCHED_EVENTQ");
    }
  }
  ~ScopedEventqEnv() {
    if (saved_.has_value()) {
      ::setenv("ESCHED_EVENTQ", saved_->c_str(), 1);
    } else {
      ::unsetenv("ESCHED_EVENTQ");
    }
  }
  ScopedEventqEnv(const ScopedEventqEnv&) = delete;
  ScopedEventqEnv& operator=(const ScopedEventqEnv&) = delete;

 private:
  std::optional<std::string> saved_;
};

int run_sim_core_mode(const CliArgs& args) {
  const std::string scale = args.get_or("scale", "m");
  const std::size_t months = scale_months(scale);
  const auto jobs = static_cast<std::size_t>(args.get_int_or("jobs", 1));
  bench::warn_if_oversubscribed(jobs);

  // One trace, 3 policies x 20 price ratios. Every cell of one policy
  // shares the scheduling trajectory (the scheduler sees period
  // boundaries, never prices), so sharing collapses 60 simulations into
  // 3 plus 57 re-billings. Built from the declarative spec so the
  // share/cell keys and the actual trace can never disagree.
  run::TraceSpec trace_spec;
  trace_spec.source = "anl-bgp";
  trace_spec.months = months;
  trace_spec.seed = 99;
  trace_spec.power_seed = 99;
  const auto trace = std::make_shared<const trace::Trace>(
      run::build_trace(trace_spec));

  std::vector<run::SimJob> sweep;
  const char* policies[] = {"fcfs", "greedy", "knapsack"};
  for (const char* policy : policies) {
    for (int i = 0; i < 20; ++i) {
      const double ratio = 1.25 + 0.25 * i;
      run::PricingSpec pricing_spec;
      pricing_spec.model = "paper";
      pricing_spec.ratio = ratio;
      auto spec = std::make_shared<run::JobSpec>();
      spec->trace = trace_spec;
      spec->pricing = pricing_spec;
      spec->policy.name = policy;
      spec->label = std::string(policy) + "/price=" + std::to_string(ratio);
      run::SimJob job;
      job.trace = trace;
      job.pricing = std::shared_ptr<const power::PricingModel>(
          run::build_pricing(pricing_spec));
      job.make_policy = [name = std::string(policy)] {
        return core::make_policy_by_name(name);
      };
      job.label = spec->label;
      job.spec = std::move(spec);
      sweep.push_back(std::move(job));
    }
  }

  // Three passes. The two *timed* ones run first, back to back, so they
  // see comparable host conditions (a 60-cell xl "before" pass is ~2 min
  // of sustained load, enough for shared hosts to throttle whatever runs
  // next — measured 1.5-2x inflation of the second pass):
  //   1. "before" (timed): the seed configuration — binary-heap event
  //      queue, no trajectory sharing — on a policy-balanced sample of
  //      the grid. Per-cell cost is ratio-independent, so the sample's
  //      jobs/sec is the full grid's.
  //   2. "after" (timed): calendar queue + sharing, all cells; every
  //      result's exact wire encoding is spilled to disk (outside the
  //      timed region) and the results are freed.
  //   3. Identity check (untimed): the seed configuration over the FULL
  //      grid, each result byte-compared against pass 2's spill. The
  //      bit-identity contract is checked for all cells against the
  //      seed configuration itself; only the throughput baseline is
  //      sampled.
  // Same worker count throughout.
  std::vector<run::SimJob> before_sample;
  for (std::size_t p = 0; p < 3; ++p) {
    // Two cells per policy, ratios chosen from both ends of the grid.
    before_sample.push_back(sweep[p * 20]);
    before_sample.push_back(sweep[p * 20 + 10]);
  }
  std::FILE* spill = std::tmpfile();
  ESCHED_REQUIRE(spill != nullptr, "cannot create the sim-core spill file");
  run::SweepStats before_stats, after_stats;
  bool identical = true;
  {
    ScopedEventqEnv heap("heap");
    before_stats = run_sim_core_pass(
        before_sample, jobs, /*sharing=*/false,
        [](std::size_t, sim::SimResult&) {});
  }
  {
    ScopedEventqEnv calendar(nullptr);
    after_stats = run_sim_core_pass(
        sweep, jobs, /*sharing=*/true,
        [&](std::size_t, sim::SimResult& r) { spill_result(spill, r); });
  }
  std::rewind(spill);
  {
    ScopedEventqEnv heap("heap");
    run_sim_core_pass(sweep, jobs, /*sharing=*/false,
                      [&](std::size_t, sim::SimResult& r) {
                        identical = identical && matches_spilled(spill, r);
                      });
  }
  std::fclose(spill);

  const auto total_jobs =
      static_cast<double>(sweep.size()) * static_cast<double>(trace->size());
  const auto sample_jobs = static_cast<double>(before_sample.size()) *
                           static_cast<double>(trace->size());
  const double before_jps = before_stats.wall_seconds > 0.0
                                ? sample_jobs / before_stats.wall_seconds
                                : 0.0;
  const double after_jps = after_stats.wall_seconds > 0.0
                               ? total_jobs / after_stats.wall_seconds
                               : 0.0;
  const double speedup = before_jps > 0.0 ? after_jps / before_jps : 0.0;

  std::printf("== micro_sim_throughput --sim-core ==\n");
  std::printf(
      "scale=%s months=%zu cells=%zu trace_jobs_per_cell=%zu jobs=%zu\n",
      scale.c_str(), months, sweep.size(), trace->size(), jobs);
  std::printf(
      "before (heap, sharing off): wall=%.3fs  %.0f jobs/sec  "
      "(%zu-cell sample)\n",
      before_stats.wall_seconds, before_jps, before_sample.size());
  std::printf(
      "after  (calendar, sharing):  wall=%.3fs  %.0f jobs/sec  "
      "(%zu simulated, %zu copied, %zu rebilled)\n",
      after_stats.wall_seconds, after_jps, after_stats.simulated_cells,
      after_stats.copied_cells, after_stats.rebilled_cells);
  std::printf("speedup=%.2fx  bit-identical=%s (all %zu cells vs seed "
              "configuration)\n",
              speedup, identical ? "yes" : "NO", sweep.size());

  if (const auto json = args.get("sim-core-json")) {
    std::FILE* f = std::fopen(json->c_str(), "w");
    ESCHED_REQUIRE(f != nullptr, "cannot open " + *json + " for writing");
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"micro_sim_throughput --sim-core\",\n"
        "  \"scale\": \"%s\",\n"
        "  \"grid\": {\"policies\": 3, \"price_ratios\": 20, \"cells\": "
        "%zu, \"months\": %zu,\n"
        "           \"trace_jobs_per_cell\": %zu, \"total_trace_jobs\": "
        "%.0f},\n"
        "  \"host_hardware_threads\": %u,\n"
        "  \"jobs\": %zu,\n"
        "  \"before\": {\"eventq\": \"heap\", \"prefix_sharing\": false,\n"
        "    \"cells_timed\": %zu, \"wall_seconds\": %.6f, "
        "\"jobs_per_sec\": %.0f},\n"
        "  \"after\": {\"eventq\": \"calendar\", \"prefix_sharing\": "
        "true,\n"
        "    \"cells_timed\": %zu, \"wall_seconds\": %.6f, "
        "\"jobs_per_sec\": %.0f,\n"
        "    \"simulated_cells\": %zu, \"copied_cells\": %zu, "
        "\"rebilled_cells\": %zu},\n"
        "  \"speedup\": %.3f,\n"
        "  \"bit_identical\": %s,\n"
        "  \"note\": \"before = the seed configuration (binary-heap "
        "event queue, trajectory sharing off) timed on a policy-balanced "
        "sample (per-cell cost is price-ratio-independent); speedup = "
        "ratio of jobs/sec; bit_identical = every cell's result "
        "byte-compared against an untimed full run of the seed "
        "configuration\"\n"
        "}\n",
        scale.c_str(), sweep.size(), months, trace->size(), total_jobs,
        bench::host_hardware_threads(), jobs, before_sample.size(),
        before_stats.wall_seconds, before_jps, sweep.size(),
        after_stats.wall_seconds, after_jps, after_stats.simulated_cells,
        after_stats.copied_cells, after_stats.rebilled_cells, speedup,
        identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json->c_str());
  }

  if (!identical) return 1;
  if (const auto min = args.get("min-speedup")) {
    const double floor = std::strtod(min->c_str(), nullptr);
    if (speedup < floor) {
      std::fprintf(stderr,
                   "sim-core: speedup %.2fx is below the --min-speedup "
                   "floor %.2fx\n",
                   speedup, floor);
      return 1;
    }
  }
  return 0;
}

// ---- obs-overhead mode: what does the instrumentation cost? ----

/// Best-of-reps seconds for one pass of all three policies over `t`.
double time_policy_pass(const trace::Trace& t,
                        const power::OnOffPeakPricing& pricing,
                        const sim::SimConfig& config, std::size_t reps) {
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    {
      core::FcfsPolicy fcfs;
      benchmark::DoNotOptimize(sim::simulate(t, pricing, fcfs, config));
      core::GreedyPowerPolicy greedy;
      benchmark::DoNotOptimize(sim::simulate(t, pricing, greedy, config));
      core::KnapsackPolicy knapsack;
      benchmark::DoNotOptimize(sim::simulate(t, pricing, knapsack, config));
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

int run_obs_overhead_mode(const CliArgs& args) {
  const auto months =
      static_cast<std::size_t>(args.get_int_or("months", 1));
  const auto reps = static_cast<std::size_t>(args.get_int_or("reps", 5));
  ESCHED_REQUIRE(reps >= 1, "--reps must be >= 1");

  trace::Trace t = trace::make_anl_bgp_like(months, 99);
  power::assign_profiles(t, power::ProfileConfig{}, 99);
  power::OnOffPeakPricing pricing(0.03, 3.0);

  // Untimed warmup so the first timed config doesn't absorb cold-start
  // costs (page faults, allocator growth).
  obs::set_counters_enabled(false);
  time_policy_pass(t, pricing, sim::SimConfig{}, 1);

  // Interleave the three configs rep by rep (off, counters, full, off,
  // ...) so clock-frequency drift over the run hits all three equally;
  // a blocked A*n B*n C*n layout showed several percent of pure drift.
  const std::string trace_path = args.get_or(
      "obs-trace-out", "/tmp/esched_obs_overhead_trace.json");
  obs::Tracer tracer;
  tracer.open(trace_path);
  sim::SimConfig traced;
  traced.tracer = &tracer;
  double off = 0.0, counters = 0.0, full = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // (a) Observability fully off — the cost every production run pays.
    obs::set_counters_enabled(false);
    const double a = time_policy_pass(t, pricing, sim::SimConfig{}, 1);
    // (b) Counters hot, no tracing.
    obs::set_counters_enabled(true);
    const double b = time_policy_pass(t, pricing, sim::SimConfig{}, 1);
    // (c) Counters + both trace sinks (Chrome spans and the per-tick
    // JSONL decision log) — the worst case: decision-log I/O.
    const double c = time_policy_pass(t, pricing, traced, 1);
    if (rep == 0 || a < off) off = a;
    if (rep == 0 || b < counters) counters = b;
    if (rep == 0 || c < full) full = c;
  }
  tracer.close();
  obs::set_counters_enabled(false);
  if (!args.has("obs-trace-out")) {  // scratch output, not requested
    std::remove(trace_path.c_str());
    std::remove(
        (trace_path + obs::Tracer::kDecisionLogSuffix).c_str());
  }

  const auto overhead = [off](double seconds) {
    return off > 0.0 ? (seconds / off - 1.0) * 100.0 : 0.0;
  };
  std::printf("== micro_sim_throughput --obs-overhead ==\n");
  std::printf("3 policies x %zu jobs, best of %zu reps per config\n",
              t.size(), reps);
  std::printf("off          %.3f ms\n", off * 1e3);
  std::printf("counters     %.3f ms  (%+.2f%%)\n", counters * 1e3,
              overhead(counters));
  std::printf("full tracing %.3f ms  (%+.2f%%)\n", full * 1e3,
              overhead(full));

  if (const auto json = args.get("obs-json")) {
    std::FILE* f = std::fopen(json->c_str(), "w");
    ESCHED_REQUIRE(f != nullptr, "cannot open " + *json + " for writing");
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"micro_sim_throughput --obs-overhead\",\n"
        "  \"grid\": {\"policies\": 3, \"months\": %zu, "
        "\"trace_jobs\": %zu},\n"
        "  \"reps\": %zu,\n"
        "  \"seconds_best\": {\"off\": %.6f, \"counters\": %.6f, "
        "\"full_tracing\": %.6f},\n"
        "  \"overhead_percent\": {\"counters\": %.2f, "
        "\"full_tracing\": %.2f},\n"
        "  \"contract\": \"counters < 5%% over off (DESIGN.md); "
        "full tracing is I/O-bound and uncapped\"\n"
        "}\n",
        months, t.size(), reps, off, counters, full, overhead(counters),
        overhead(full));
    std::fclose(f);
    std::printf("wrote %s\n", json->c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const esched::CliArgs args = esched::CliArgs::parse(argc, argv);
  if (args.has("sweep")) return run_sweep_mode(args);
  if (args.has("sim-core")) return run_sim_core_mode(args);
  if (args.has("obs-overhead")) return run_obs_overhead_mode(args);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
