// Micro-benchmark (google-benchmark): end-to-end simulator throughput —
// how many trace jobs per second the event engine processes under each
// policy. Establishes that five-month, hundred-thousand-job studies run
// in seconds (the reason the sweeps in bench/ are cheap).
#include <benchmark/benchmark.h>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "power/profile.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace esched;

const trace::Trace& shared_trace() {
  static const trace::Trace t = [] {
    trace::Trace raw = trace::make_anl_bgp_like(1, 99);
    power::assign_profiles(raw, power::ProfileConfig{}, 99);
    return raw;
  }();
  return t;
}

template <typename Policy>
void run_sim(benchmark::State& state) {
  const trace::Trace& t = shared_trace();
  power::OnOffPeakPricing pricing(0.03, 3.0);
  for (auto _ : state) {
    Policy policy;
    benchmark::DoNotOptimize(sim::simulate(t, pricing, policy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}

void BM_SimulateMonthFcfs(benchmark::State& state) {
  run_sim<core::FcfsPolicy>(state);
}
void BM_SimulateMonthGreedy(benchmark::State& state) {
  run_sim<core::GreedyPowerPolicy>(state);
}
void BM_SimulateMonthKnapsack(benchmark::State& state) {
  run_sim<core::KnapsackPolicy>(state);
}

BENCHMARK(BM_SimulateMonthFcfs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateMonthGreedy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateMonthKnapsack)->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::make_sdsc_blue_like(1, static_cast<std::uint64_t>(
                                          state.iterations() + 1)));
  }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
