// Micro-benchmark (google-benchmark): end-to-end simulator throughput —
// how many trace jobs per second the event engine processes under each
// policy. Establishes that five-month, hundred-thousand-job studies run
// in seconds (the reason the sweeps in bench/ are cheap).
//
// Sweep mode (`--sweep`): instead of google-benchmark, run a 3-policy x
// 4-power-ratio grid twice — serially (--jobs 1 semantics) and through
// the parallel SweepRunner — verify the results are bit-identical, and
// print wall/cpu/task timings plus the speedup. `--sweep-json FILE`
// additionally records the numbers (BENCH_sweep.json in the repo).
// Extra sweep flags: --months N (default 1), --jobs N (default: runner
// default, i.e. ESCHED_JOBS or hardware_concurrency).
//
// Obs-overhead mode (`--obs-overhead`): measure the cost of the src/obs
// instrumentation by running the three policies over one trace with
// (a) observability off, (b) counters hot, (c) counters + full tracing,
// taking the best of `--reps` repetitions each. `--obs-json FILE` records
// the numbers (BENCH_obs_overhead.json in the repo, the <2%/<5% overhead
// contract from DESIGN.md).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "power/pricing.hpp"
#include "power/profile.hpp"
#include "run/sweep.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using namespace esched;

const trace::Trace& shared_trace() {
  static const trace::Trace t = [] {
    trace::Trace raw = trace::make_anl_bgp_like(1, 99);
    power::assign_profiles(raw, power::ProfileConfig{}, 99);
    return raw;
  }();
  return t;
}

template <typename Policy>
void run_sim(benchmark::State& state) {
  const trace::Trace& t = shared_trace();
  power::OnOffPeakPricing pricing(0.03, 3.0);
  for (auto _ : state) {
    Policy policy;
    benchmark::DoNotOptimize(sim::simulate(t, pricing, policy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}

void BM_SimulateMonthFcfs(benchmark::State& state) {
  run_sim<core::FcfsPolicy>(state);
}
void BM_SimulateMonthGreedy(benchmark::State& state) {
  run_sim<core::GreedyPowerPolicy>(state);
}
void BM_SimulateMonthKnapsack(benchmark::State& state) {
  run_sim<core::KnapsackPolicy>(state);
}

BENCHMARK(BM_SimulateMonthFcfs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateMonthGreedy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateMonthKnapsack)->Unit(benchmark::kMillisecond);

void BM_TraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::make_sdsc_blue_like(1, static_cast<std::uint64_t>(
                                          state.iterations() + 1)));
  }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

// ---- sweep mode: serial vs parallel runner comparison ----

constexpr double kSweepPowerRatios[] = {2.0, 3.0, 4.0, 5.0};

void print_stats(const char* label, const run::SweepStats& s) {
  std::printf(
      "%-8s jobs=%zu tasks=%zu wall=%.3fs cpu=%.3fs "
      "task min/mean/max=%.3f/%.3f/%.3f s\n",
      label, s.threads, s.tasks, s.wall_seconds, s.cpu_seconds,
      s.task_min_seconds, s.task_mean_seconds, s.task_max_seconds);
}

void write_json(const std::string& path, std::size_t months,
                std::size_t cells, std::size_t trace_jobs,
                const run::SweepStats& serial,
                const run::SweepStats& parallel, bool identical) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ESCHED_REQUIRE(f != nullptr, "cannot open " + path + " for writing");
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"micro_sim_throughput --sweep\",\n"
               "  \"grid\": {\"policies\": 3, \"power_ratios\": "
               "[2, 3, 4, 5], \"months\": %zu, \"cells\": %zu,\n"
               "           \"trace_jobs_per_cell\": %zu},\n"
               "  \"host_hardware_threads\": %u,\n",
               months, cells, trace_jobs,
               std::thread::hardware_concurrency());
  const auto emit = [f](const char* key, const run::SweepStats& s) {
    std::fprintf(f,
                 "  \"%s\": {\"jobs\": %zu, \"wall_seconds\": %.6f, "
                 "\"cpu_seconds\": %.6f,\n"
                 "    \"task_seconds_min\": %.6f, \"task_seconds_mean\": "
                 "%.6f, \"task_seconds_max\": %.6f},\n",
                 key, s.threads, s.wall_seconds, s.cpu_seconds,
                 s.task_min_seconds, s.task_mean_seconds,
                 s.task_max_seconds);
  };
  emit("serial", serial);
  emit("parallel", parallel);
  std::fprintf(f,
               "  \"note\": \"wall speedup is bounded by "
               "host_hardware_threads; the 4x target needs >= 8 cores\",\n"
               "  \"speedup_wall\": %.3f,\n"
               "  \"bit_identical\": %s\n"
               "}\n",
               parallel.wall_seconds > 0.0
                   ? serial.wall_seconds / parallel.wall_seconds
                   : 0.0,
               identical ? "true" : "false");
  std::fclose(f);
}

int run_sweep_mode(const CliArgs& args) {
  const auto months =
      static_cast<std::size_t>(args.get_int_or("months", 1));
  const auto jobs = static_cast<std::size_t>(args.get_int_or("jobs", 0));

  // The grid: 3 policies x 4 power ratios over a one-seed ANL-BGP-like
  // month. Each ratio gets its own trace (profiles are part of the trace).
  std::vector<run::SimJob> sweep;
  std::vector<std::shared_ptr<const trace::Trace>> traces;
  const auto tariff =
      std::make_shared<const power::OnOffPeakPricing>(0.03, 3.0);
  for (const double ratio : kSweepPowerRatios) {
    trace::Trace t = trace::make_anl_bgp_like(months, 99);
    power::ProfileConfig cfg;
    cfg.ratio = ratio;
    power::assign_profiles(t, cfg, 99);
    traces.push_back(std::make_shared<const trace::Trace>(std::move(t)));
    const run::PolicyFactory factories[] = {
        [] { return std::make_unique<core::FcfsPolicy>(); },
        [] { return std::make_unique<core::GreedyPowerPolicy>(); },
        [] { return std::make_unique<core::KnapsackPolicy>(); },
    };
    for (const run::PolicyFactory& factory : factories) {
      sweep.push_back({traces.back(), tariff, factory, sim::SimConfig{},
                       "ratio=" + std::to_string(ratio), nullptr});
    }
  }

  run::SweepRunner serial_runner(1);
  const auto serial_results = serial_runner.run(sweep);
  const run::SweepStats serial = serial_runner.last_stats();

  run::SweepRunner parallel_runner(jobs);
  const auto parallel_results = parallel_runner.run(sweep);
  const run::SweepStats parallel = parallel_runner.last_stats();

  bool identical = serial_results.size() == parallel_results.size();
  for (std::size_t i = 0; identical && i < serial_results.size(); ++i) {
    identical = run::results_identical(serial_results[i],
                                       parallel_results[i]);
  }

  std::printf("== micro_sim_throughput --sweep ==\n");
  std::printf("grid: 3 policies x 4 power ratios, months=%zu, %zu jobs "
              "per trace\n",
              months, traces.front()->size());
  print_stats("serial", serial);
  print_stats("parallel", parallel);
  std::printf("speedup(wall)=%.2fx  bit-identical=%s\n",
              parallel.wall_seconds > 0.0
                  ? serial.wall_seconds / parallel.wall_seconds
                  : 0.0,
              identical ? "yes" : "NO");

  if (const auto json = args.get("sweep-json")) {
    write_json(*json, months, sweep.size(), traces.front()->size(), serial,
               parallel, identical);
    std::printf("wrote %s\n", json->c_str());
  }
  return identical ? 0 : 1;
}

// ---- obs-overhead mode: what does the instrumentation cost? ----

/// Best-of-reps seconds for one pass of all three policies over `t`.
double time_policy_pass(const trace::Trace& t,
                        const power::OnOffPeakPricing& pricing,
                        const sim::SimConfig& config, std::size_t reps) {
  using Clock = std::chrono::steady_clock;
  double best = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    {
      core::FcfsPolicy fcfs;
      benchmark::DoNotOptimize(sim::simulate(t, pricing, fcfs, config));
      core::GreedyPowerPolicy greedy;
      benchmark::DoNotOptimize(sim::simulate(t, pricing, greedy, config));
      core::KnapsackPolicy knapsack;
      benchmark::DoNotOptimize(sim::simulate(t, pricing, knapsack, config));
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

int run_obs_overhead_mode(const CliArgs& args) {
  const auto months =
      static_cast<std::size_t>(args.get_int_or("months", 1));
  const auto reps = static_cast<std::size_t>(args.get_int_or("reps", 5));
  ESCHED_REQUIRE(reps >= 1, "--reps must be >= 1");

  trace::Trace t = trace::make_anl_bgp_like(months, 99);
  power::assign_profiles(t, power::ProfileConfig{}, 99);
  power::OnOffPeakPricing pricing(0.03, 3.0);

  // Untimed warmup so the first timed config doesn't absorb cold-start
  // costs (page faults, allocator growth).
  obs::set_counters_enabled(false);
  time_policy_pass(t, pricing, sim::SimConfig{}, 1);

  // Interleave the three configs rep by rep (off, counters, full, off,
  // ...) so clock-frequency drift over the run hits all three equally;
  // a blocked A*n B*n C*n layout showed several percent of pure drift.
  const std::string trace_path = args.get_or(
      "obs-trace-out", "/tmp/esched_obs_overhead_trace.json");
  obs::Tracer tracer;
  tracer.open(trace_path);
  sim::SimConfig traced;
  traced.tracer = &tracer;
  double off = 0.0, counters = 0.0, full = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // (a) Observability fully off — the cost every production run pays.
    obs::set_counters_enabled(false);
    const double a = time_policy_pass(t, pricing, sim::SimConfig{}, 1);
    // (b) Counters hot, no tracing.
    obs::set_counters_enabled(true);
    const double b = time_policy_pass(t, pricing, sim::SimConfig{}, 1);
    // (c) Counters + both trace sinks (Chrome spans and the per-tick
    // JSONL decision log) — the worst case: decision-log I/O.
    const double c = time_policy_pass(t, pricing, traced, 1);
    if (rep == 0 || a < off) off = a;
    if (rep == 0 || b < counters) counters = b;
    if (rep == 0 || c < full) full = c;
  }
  tracer.close();
  obs::set_counters_enabled(false);
  if (!args.has("obs-trace-out")) {  // scratch output, not requested
    std::remove(trace_path.c_str());
    std::remove(
        (trace_path + obs::Tracer::kDecisionLogSuffix).c_str());
  }

  const auto overhead = [off](double seconds) {
    return off > 0.0 ? (seconds / off - 1.0) * 100.0 : 0.0;
  };
  std::printf("== micro_sim_throughput --obs-overhead ==\n");
  std::printf("3 policies x %zu jobs, best of %zu reps per config\n",
              t.size(), reps);
  std::printf("off          %.3f ms\n", off * 1e3);
  std::printf("counters     %.3f ms  (%+.2f%%)\n", counters * 1e3,
              overhead(counters));
  std::printf("full tracing %.3f ms  (%+.2f%%)\n", full * 1e3,
              overhead(full));

  if (const auto json = args.get("obs-json")) {
    std::FILE* f = std::fopen(json->c_str(), "w");
    ESCHED_REQUIRE(f != nullptr, "cannot open " + *json + " for writing");
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"micro_sim_throughput --obs-overhead\",\n"
        "  \"grid\": {\"policies\": 3, \"months\": %zu, "
        "\"trace_jobs\": %zu},\n"
        "  \"reps\": %zu,\n"
        "  \"seconds_best\": {\"off\": %.6f, \"counters\": %.6f, "
        "\"full_tracing\": %.6f},\n"
        "  \"overhead_percent\": {\"counters\": %.2f, "
        "\"full_tracing\": %.2f},\n"
        "  \"contract\": \"counters < 5%% over off (DESIGN.md); "
        "full tracing is I/O-bound and uncapped\"\n"
        "}\n",
        months, t.size(), reps, off, counters, full, overhead(counters),
        overhead(full));
    std::fclose(f);
    std::printf("wrote %s\n", json->c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const esched::CliArgs args = esched::CliArgs::parse(argc, argv);
  if (args.has("sweep")) return run_sweep_mode(args);
  if (args.has("obs-overhead")) return run_obs_overhead_mode(args);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
