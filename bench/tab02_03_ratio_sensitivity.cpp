// Tables 2 & 3 reproduction: electricity-bill savings under every
// combination of job power-profile ratio {1:2, 1:3, 1:4} and off/on-peak
// price ratio {1:3, 1:4, 1:5}, on ANL-BGP (Table 2) and SDSC-BLUE
// (Table 3). Each cell shows Greedy over Knapsack, as in the paper.
//
// Shape targets: savings increase along both axes; the largest cell is
// (power 1:4, price 1:5).
//
// Price-ratio sweeps reuse one simulation per power ratio: the schedule
// depends only on the on/off-peak *periods*, so bills for other ratios
// follow from the on-/off-peak energy split (see bench::bill_under_ratio).
#include <cstdio>

#include "common.hpp"
#include "metrics/metrics.hpp"

namespace {

constexpr double kPowerRatios[] = {2.0, 3.0, 4.0};
constexpr double kPriceRatios[] = {3.0, 4.0, 5.0};
constexpr esched::Money kOffPrice = 0.03;

}  // namespace

int main(int argc, char** argv) {
  using namespace esched;
  bench::Options opt = bench::parse_options(argc, argv);
  const auto workloads = {bench::Workload::kAnlBgp,
                          bench::Workload::kSdscBlue};

  // The full grid — workload x power ratio x policy — is one submission
  // to the parallel runner; the tables below slice the ordered results.
  std::vector<run::SimJob> sweep;
  std::vector<std::shared_ptr<const trace::Trace>> traces;
  std::vector<std::shared_ptr<const power::PricingModel>> tariffs;
  for (const auto which : workloads) {
    for (const double power_ratio : kPowerRatios) {
      bench::Options run_opt = opt;
      run_opt.power_ratio = power_ratio;
      run_opt.power_ratio_given = true;  // programmatic sweep point
      traces.push_back(std::make_shared<const trace::Trace>(
          bench::load_workload(which, run_opt)));
      tariffs.push_back(bench::make_tariff(run_opt));
      const run::TraceSpec trace_spec = bench::workload_spec(which, run_opt);
      const run::PricingSpec pricing_spec = bench::tariff_spec(run_opt);
      for (const std::string& policy : bench::standard_policy_names()) {
        char label[64];
        std::snprintf(label, sizeof label, "%s/%s/power=1:%.0f",
                      policy.c_str(),
                      bench::workload_name(which).c_str(), power_ratio);
        sweep.push_back(bench::make_cell(
            traces.back(), tariffs.back(), trace_spec, pricing_spec,
            policy, bench::make_sim_config(run_opt), label));
      }
    }
  }
  const auto all_results = bench::run_sweep(sweep, opt);
  std::size_t next_cell = 0;

  for (const auto which : workloads) {
    std::printf("\n== Table %d: bill savings on %s ==\n",
                which == bench::Workload::kAnlBgp ? 2 : 3,
                bench::workload_name(which).c_str());
    std::printf(
        "(each cell: Greedy saving / Knapsack saving vs FCFS; months=%zu)\n",
        opt.months);

    Table table({"Power ratio", "price 1:3", "price 1:4", "price 1:5"});
    for (const double power_ratio : kPowerRatios) {
      const std::vector<sim::SimResult> results(
          all_results.begin() + static_cast<std::ptrdiff_t>(next_cell),
          all_results.begin() + static_cast<std::ptrdiff_t>(next_cell + 3));
      next_cell += 3;

      table.add_row();
      char label[16];
      std::snprintf(label, sizeof label, "1:%.0f", power_ratio);
      table.cell(std::string(label));
      for (const double price_ratio : kPriceRatios) {
        const Money fcfs = bench::bill_under_ratio(results[0], kOffPrice,
                                                   price_ratio);
        const Money greedy = bench::bill_under_ratio(results[1], kOffPrice,
                                                     price_ratio);
        const Money knapsack = bench::bill_under_ratio(results[2], kOffPrice,
                                                       price_ratio);
        char cell[64];
        std::snprintf(cell, sizeof cell, "%.2f%% / %.2f%%",
                      (fcfs - greedy) / fcfs * 100.0,
                      (fcfs - knapsack) / fcfs * 100.0);
        table.cell(std::string(cell));
      }
    }
    bench::emit(table, "bill saving (Greedy / Knapsack)", opt.csv);
  }
  return 0;
}
