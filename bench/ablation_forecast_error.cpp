// Ablation: price-period forecast error. Production schedulers act on a
// day-ahead forecast; this sweeps the hourly misclassification rate from
// oracle (0%) to coin flip (50%) and measures the surviving savings. The
// meter always bills true prices.
#include <cstdio>

#include "common.hpp"
#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/forecast.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  std::printf("== Ablation: price-period forecast error ==\n");
  Table table(
      {"Trace", "Hourly error", "Greedy saving", "Knapsack saving"});
  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto truth = bench::make_tariff(opt);
    const auto config = bench::make_sim_config(opt);

    for (const double error : {0.0, 0.1, 0.25, 0.5}) {
      power::MisforecastTariff tariff(*truth, error, 17);
      core::FcfsPolicy fcfs;
      core::GreedyPowerPolicy greedy;
      core::KnapsackPolicy knapsack;
      const auto rf = sim::simulate(t, tariff, fcfs, config);
      const auto rg = sim::simulate(t, tariff, greedy, config);
      const auto rk = sim::simulate(t, tariff, knapsack, config);
      table.add_row();
      table.cell(bench::workload_name(which));
      table.cell_percent(error * 100.0, 0);
      table.cell_percent(metrics::bill_saving_percent(rf, rg));
      table.cell_percent(metrics::bill_saving_percent(rf, rk));
    }
  }
  bench::emit(table, "bill savings vs forecast quality", opt.csv);
  return 0;
}
