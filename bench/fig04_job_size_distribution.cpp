// Fig. 4 reproduction: job size distributions of (A) ANL-BGP and (B)
// SDSC-BLUE. The shape target: ANL-BGP is capability computing (38% of
// jobs at 512 nodes, 19% at 1024, 8% at 2048); SDSC-BLUE is capacity
// computing (71% of jobs below 32 nodes).
#include <cstdio>

#include "common.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace t = bench::load_workload(which, opt);
    std::printf("\n== Fig. 4%s: job size distribution of %s ==\n",
                which == bench::Workload::kAnlBgp ? "A" : "B",
                bench::workload_name(which).c_str());
    std::printf("jobs=%zu system=%lld nodes\n", t.size(),
                static_cast<long long>(t.system_nodes()));
    const CategoricalHistogram hist = trace::size_distribution(t);
    std::fputs(hist.render("job size (nodes, power-of-two buckets)").c_str(),
               stdout);
    std::fputs(trace::monthly_summary(t).c_str(), stdout);
  }
  return 0;
}
