// §6.4 reproduction: sensitivity to the scheduling-window size, sweeping
// w from 10 to 200 on both traces.
//
// Shape targets: all three metrics (bill saving, utilization, mean wait)
// vary little (the paper: within ~5%) across the sweep, and a window of
// 10-30 captures essentially all of the benefit — which matters because
// the Knapsack decision cost grows with the window
// (micro_policy_overhead measures that cost).
#include <cstdio>

#include "common.hpp"
#include "metrics/metrics.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto tariff = bench::make_tariff(opt);
    std::printf("\n== §6.4: scheduling-window sweep on %s ==\n",
                bench::workload_name(which).c_str());

    Table table({"Window", "Greedy save", "Knapsack save", "Greedy util",
                 "Knapsack util", "Greedy wait", "Knapsack wait"});
    for (const std::size_t w : {10u, 20u, 30u, 50u, 100u, 200u}) {
      bench::Options run_opt = opt;
      run_opt.window = w;
      const auto results =
          bench::run_all_policies(t, *tariff, bench::make_sim_config(run_opt));
      table.add_row();
      table.cell_int(static_cast<long long>(w));
      table.cell_percent(
          metrics::bill_saving_percent(results[0], results[1]));
      table.cell_percent(
          metrics::bill_saving_percent(results[0], results[2]));
      table.cell_percent(metrics::overall_utilization(results[1]) * 100.0);
      table.cell_percent(metrics::overall_utilization(results[2]) * 100.0);
      table.cell(results[1].mean_wait_seconds(), 1);
      table.cell(results[2].mean_wait_seconds(), 1);
    }
    bench::emit(table, "window-size sensitivity", opt.csv);
  }
  return 0;
}
