// §6.4 reproduction: sensitivity to the scheduling-window size, sweeping
// w from 10 to 200 on both traces.
//
// Shape targets: all three metrics (bill saving, utilization, mean wait)
// vary little (the paper: within ~5%) across the sweep, and a window of
// 10-30 captures essentially all of the benefit — which matters because
// the Knapsack decision cost grows with the window
// (micro_policy_overhead measures that cost).
#include <cstdio>

#include "common.hpp"
#include "metrics/metrics.hpp"

namespace {
constexpr std::size_t kWindows[] = {10, 20, 30, 50, 100, 200};
}

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);
  const auto workloads = {bench::Workload::kAnlBgp,
                          bench::Workload::kSdscBlue};

  // One runner submission for the whole workload x window x policy grid.
  std::vector<run::SimJob> sweep;
  std::vector<std::shared_ptr<const trace::Trace>> traces;
  const std::shared_ptr<const power::PricingModel> tariff =
      bench::make_tariff(opt);
  const run::PricingSpec pricing_spec = bench::tariff_spec(opt);
  for (const auto which : workloads) {
    traces.push_back(std::make_shared<const trace::Trace>(
        bench::load_workload(which, opt)));
    const run::TraceSpec trace_spec = bench::workload_spec(which, opt);
    for (const std::size_t w : kWindows) {
      bench::Options run_opt = opt;
      run_opt.window = w;
      for (const std::string& policy : bench::standard_policy_names()) {
        char label[64];
        std::snprintf(label, sizeof label, "%s/%s/window=%zu",
                      policy.c_str(),
                      bench::workload_name(which).c_str(), w);
        sweep.push_back(bench::make_cell(
            traces.back(), tariff, trace_spec, pricing_spec, policy,
            bench::make_sim_config(run_opt), label));
      }
    }
  }
  const auto all_results = bench::run_sweep(sweep, opt);
  std::size_t next_cell = 0;

  for (const auto which : workloads) {
    std::printf("\n== §6.4: scheduling-window sweep on %s ==\n",
                bench::workload_name(which).c_str());

    Table table({"Window", "Greedy save", "Knapsack save", "Greedy util",
                 "Knapsack util", "Greedy wait", "Knapsack wait"});
    for (const std::size_t w : kWindows) {
      const std::vector<sim::SimResult> results(
          all_results.begin() + static_cast<std::ptrdiff_t>(next_cell),
          all_results.begin() + static_cast<std::ptrdiff_t>(next_cell + 3));
      next_cell += 3;
      table.add_row();
      table.cell_int(static_cast<long long>(w));
      table.cell_percent(
          metrics::bill_saving_percent(results[0], results[1]));
      table.cell_percent(
          metrics::bill_saving_percent(results[0], results[2]));
      table.cell_percent(metrics::overall_utilization(results[1]) * 100.0);
      table.cell_percent(metrics::overall_utilization(results[2]) * 100.0);
      table.cell(results[1].mean_wait_seconds(), 1);
      table.cell(results[2].mean_wait_seconds(), 1);
    }
    bench::emit(table, "window-size sensitivity", opt.csv);
  }
  return 0;
}
