// Ablation (the paper's future work, §8): how good must the scheduler's
// power-profile knowledge be? Sweeps the visibility spectrum — perfect
// (the paper's assumption), online-learned from completions
// (ProfileEstimator), noisy measurements, and profile-blind — and
// measures what survives of the bill savings. Profiles are assigned with
// per-user correlation 0.7 (repetitive jobs, per the paper's §3
// argument), which is what makes learning possible.
#include <cstdio>

#include "common.hpp"
#include "core/greedy_policy.hpp"
#include "core/fcfs_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/metrics.hpp"
#include "power/profile.hpp"
#include "power/profile_estimator.hpp"
#include "power/visibility.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  std::printf("== Ablation: power-profile knowledge quality ==\n");
  Table table({"Trace", "Visibility", "Greedy saving", "Knapsack saving"});
  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    trace::Trace t = bench::load_workload(which, opt);
    // Re-assign with user correlation so profiles are learnable.
    power::ProfileConfig pcfg;
    pcfg.ratio = opt.power_ratio;
    pcfg.per_user_correlation = 0.7;
    power::assign_profiles(t, pcfg, 77);

    const auto tariff = bench::make_tariff(opt);
    const auto config = bench::make_sim_config(opt);
    core::FcfsPolicy fcfs;
    const auto rf = sim::simulate(t, *tariff, fcfs, config);

    auto run_with = [&](power::PowerVisibility* visibility,
                        const std::string& label) {
      core::GreedyPowerPolicy greedy;
      core::KnapsackPolicy knapsack;
      const auto rg = sim::simulate(t, *tariff, greedy, config, visibility);
      const auto rk =
          sim::simulate(t, *tariff, knapsack, config, visibility);
      table.add_row();
      table.cell(bench::workload_name(which));
      table.cell(label);
      table.cell_percent(metrics::bill_saving_percent(rf, rg));
      table.cell_percent(metrics::bill_saving_percent(rf, rk));
    };

    run_with(nullptr, "perfect (paper)");
    {
      power::ProfileEstimator est;
      run_with(&est, "online estimator");
      std::printf("  [%s estimator: %zu observations, %.0f%% specific "
                  "hits, %.0f%% defaults]\n",
                  bench::workload_name(which).c_str(), est.observations(),
                  est.specific_hit_rate() * 100.0,
                  est.default_rate() * 100.0);
    }
    {
      power::NoisyVisibility noisy10(0.10, 5);
      run_with(&noisy10, "noisy +-10%");
    }
    {
      power::NoisyVisibility noisy35(0.30, 5);
      run_with(&noisy35, "noisy +-35%");
    }
    {
      power::BlindVisibility blind(40.0);
      run_with(&blind, "blind");
    }
  }
  bench::emit(table, "bill savings vs profile knowledge", opt.csv);
  return 0;
}
