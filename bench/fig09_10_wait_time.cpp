// Figs. 9 & 10 reproduction: average job wait time per month under the
// three policies on SDSC-BLUE (Fig. 9) and ANL-BGP (Fig. 10).
// Shape target: the power-aware policies do not meaningfully degrade wait
// times relative to FCFS (the paper reports <10 s change on its traces;
// the achievable delta depends on backlog depth).
#include "common.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);
  const auto tariff = bench::make_tariff(opt);
  const auto config = bench::make_sim_config(opt);

  for (const auto which :
       {bench::Workload::kSdscBlue, bench::Workload::kAnlBgp}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto results =
        bench::run_all_policies(which, t, *tariff, config, opt);
    bench::print_header(
        which == bench::Workload::kSdscBlue
            ? "Fig. 9: average job wait time on SDSC-BLUE"
            : "Fig. 10: average job wait time on ANL-BGP",
        t, opt);
    bench::emit(metrics::monthly_wait_table(results, opt.months),
                "monthly mean wait time (seconds)", opt.csv);
  }
  return 0;
}
