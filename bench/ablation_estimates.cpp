// Ablation: walltime-estimate quality. Backfilling (baseline and
// beyond-window) plans around user estimates; the paper's group showed
// adjusting them improves Blue Gene scheduling [Tang'10, Tang'13]. This
// sweeps estimate quality from oracle to "everyone requests the maximum"
// and reports what it does to waits and to the power-aware savings.
#include <cstdio>

#include "common.hpp"
#include "metrics/metrics.hpp"
#include "trace/estimates.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  std::printf("== Ablation: walltime-estimate quality ==\n");
  Table table({"Trace", "Estimates", "Accuracy", "FCFS wait (s)",
               "Greedy saving", "Knapsack saving"});
  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace base = bench::load_workload(which, opt);
    const auto tariff = bench::make_tariff(opt);
    const auto config = bench::make_sim_config(opt);

    struct Variant {
      std::string label;
      trace::Trace trace;
    };
    const Variant variants[] = {
        {"exact (oracle)", trace::with_exact_estimates(base)},
        {"generator (1.1-3x)", base},
        {"menu (round numbers)", trace::with_menu_estimates(base, 0.0, 3)},
        {"menu + 30% sloppy", trace::with_menu_estimates(base, 0.3, 3)},
        {"all request max", trace::with_menu_estimates(base, 1.0, 3)},
    };
    for (const Variant& v : variants) {
      const auto results =
          bench::run_all_policies(v.trace, *tariff, config, opt);
      table.add_row();
      table.cell(bench::workload_name(which));
      table.cell(v.label);
      table.cell(trace::estimate_accuracy(v.trace), 2);
      table.cell(results[0].mean_wait_seconds(), 1);
      table.cell_percent(
          metrics::bill_saving_percent(results[0], results[1]));
      table.cell_percent(
          metrics::bill_saving_percent(results[0], results[2]));
    }
  }
  bench::emit(table, "estimate quality vs waits and savings", opt.csv);
  return 0;
}
