// Tables 4 & 5 reproduction: the effect of scheduling frequency (10 s,
// 20 s, 30 s ticks) on bill savings (Table 4) and system utilization
// (Table 5), for both traces.
//
// Shape targets: longer scheduling periods accumulate more free nodes per
// decision and yield larger savings, at the cost of a small (< ~3
// percentage points) utilization dip.
//
// This bench runs the simulator in CQSim-compatible single-pass-per-tick
// mode (SimConfig::max_passes_per_tick = 1): one scheduling decision per
// period, as production batch schedulers make. That is what couples the
// frequency to the batch size — with the default run-to-quiescence ticks,
// the frequency barely matters (see EXPERIMENTS.md).
#include <cstdio>

#include "common.hpp"
#include "metrics/metrics.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  Table savings({"Frequency", "Trace", "Greedy saving", "Knapsack saving"});
  Table utilization(
      {"Frequency", "Trace", "FCFS util", "Greedy util", "Knapsack util"});

  for (const DurationSec tick : {10, 20, 30}) {
    for (const auto which :
         {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
      bench::Options run_opt = opt;
      run_opt.tick = tick;
      const trace::Trace t = bench::load_workload(which, run_opt);
      const auto tariff = bench::make_tariff(run_opt);
      sim::SimConfig config = bench::make_sim_config(run_opt);
      config.max_passes_per_tick = 1;  // CQSim-compatible batch decisions
      const auto results =
          bench::run_all_policies(which, t, *tariff, config, run_opt);

      savings.add_row();
      savings.cell(std::to_string(tick) + "s");
      savings.cell(bench::workload_name(which));
      savings.cell_percent(
          metrics::bill_saving_percent(results[0], results[1]));
      savings.cell_percent(
          metrics::bill_saving_percent(results[0], results[2]));

      utilization.add_row();
      utilization.cell(std::to_string(tick) + "s");
      utilization.cell(bench::workload_name(which));
      for (const auto& r : results)
        utilization.cell_percent(metrics::overall_utilization(r) * 100.0);
    }
  }

  std::printf("== Tables 4 & 5: impact of scheduling frequency ==\n");
  std::printf("months=%zu power-ratio=1:%.0f price-ratio=1:%.0f window=%zu\n",
              opt.months, opt.power_ratio, opt.price_ratio, opt.window);
  bench::emit(savings, "Table 4: bill savings by scheduling frequency",
              opt.csv);
  bench::emit(utilization,
              "Table 5: system utilization by scheduling frequency",
              opt.csv);
  return 0;
}
