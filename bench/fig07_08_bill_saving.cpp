// Figs. 7 & 8 reproduction: monthly electricity-bill saving of Greedy and
// Knapsack vs FCFS on SDSC-BLUE (Fig. 7) and ANL-BGP (Fig. 8).
// Shape targets: monthly savings of roughly 0.5-10%; Greedy ahead on
// SDSC-BLUE (paper averages 4.33% vs 3.16%), Knapsack competitive on
// ANL-BGP (paper averages 5.06% / 5.53%).
#include "common.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);
  const std::shared_ptr<const power::PricingModel> tariff =
      bench::make_tariff(opt);
  const auto config = bench::make_sim_config(opt);
  const auto workloads = {bench::Workload::kSdscBlue,
                          bench::Workload::kAnlBgp};

  // Submit the whole grid (workload x policy) through the parallel
  // runner at once; results come back in submission order. Each cell
  // carries its declarative spec, so --isolate=proc can ship it to a
  // worker process.
  const run::PricingSpec pricing_spec = bench::tariff_spec(opt);
  std::vector<std::shared_ptr<const trace::Trace>> traces;
  std::vector<run::SimJob> sweep;
  for (const auto which : workloads) {
    traces.push_back(std::make_shared<const trace::Trace>(
        bench::load_workload(which, opt)));
    const run::TraceSpec trace_spec = bench::workload_spec(which, opt);
    for (const std::string& policy : bench::standard_policy_names()) {
      sweep.push_back(bench::make_cell(
          traces.back(), tariff, trace_spec, pricing_spec, policy, config,
          policy + "/" + bench::workload_name(which)));
    }
  }
  const auto all_results = bench::run_sweep(sweep, opt);

  std::size_t workload_index = 0;
  for (const auto which : workloads) {
    const trace::Trace& t = *traces[workload_index];
    const std::vector<sim::SimResult> results(
        all_results.begin() +
            static_cast<std::ptrdiff_t>(3 * workload_index),
        all_results.begin() +
            static_cast<std::ptrdiff_t>(3 * (workload_index + 1)));
    ++workload_index;
    bench::print_header(
        which == bench::Workload::kSdscBlue
            ? "Fig. 7: electricity bill saving on SDSC-BLUE"
            : "Fig. 8: electricity bill saving on ANL-BGP",
        t, opt);
    bench::emit(metrics::monthly_saving_table(results, opt.months),
                "monthly electricity bill saving vs FCFS", opt.csv);

    // Overall (total-bill) savings as a cross-check against the
    // mean-of-monthly figure the table's footer reports.
    Table overall({"Policy", "Total bill", "Overall saving"});
    for (const auto& r : results) {
      overall.add_row();
      overall.cell(r.policy_name);
      overall.cell(r.total_bill);
      overall.cell_percent(metrics::bill_saving_percent(results[0], r));
    }
    bench::emit(overall, "overall bills", opt.csv);
  }
  return 0;
}
