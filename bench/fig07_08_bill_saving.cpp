// Figs. 7 & 8 reproduction: monthly electricity-bill saving of Greedy and
// Knapsack vs FCFS on SDSC-BLUE (Fig. 7) and ANL-BGP (Fig. 8).
// Shape targets: monthly savings of roughly 0.5-10%; Greedy ahead on
// SDSC-BLUE (paper averages 4.33% vs 3.16%), Knapsack competitive on
// ANL-BGP (paper averages 5.06% / 5.53%).
#include "common.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);
  const auto tariff = bench::make_tariff(opt);
  const auto config = bench::make_sim_config(opt);

  for (const auto which :
       {bench::Workload::kSdscBlue, bench::Workload::kAnlBgp}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto results = bench::run_all_policies(t, *tariff, config);
    bench::print_header(
        which == bench::Workload::kSdscBlue
            ? "Fig. 7: electricity bill saving on SDSC-BLUE"
            : "Fig. 8: electricity bill saving on ANL-BGP",
        t, opt);
    bench::emit(metrics::monthly_saving_table(results, opt.months),
                "monthly electricity bill saving vs FCFS", opt.csv);

    // Overall (total-bill) savings as a cross-check against the
    // mean-of-monthly figure the table's footer reports.
    Table overall({"Policy", "Total bill", "Overall saving"});
    for (const auto& r : results) {
      overall.add_row();
      overall.cell(r.policy_name);
      overall.cell(r.total_bill);
      overall.cell_percent(metrics::bill_saving_percent(results[0], r));
    }
    bench::emit(overall, "overall bills", opt.csv);
  }
  return 0;
}
