// Shared machinery for the experiment binaries in bench/.
//
// Every bench reproduces one table or figure of the paper (see DESIGN.md's
// per-experiment index). They all accept:
//   --months N       trace length in 30-day months (default 5, as in the
//                    paper's ANL-BGP/SDSC-BLUE evaluations)
//   --seed S         generator seed (default: the trace's canonical seed)
//   --swf PATH       use a real SWF trace instead of the synthetic one
//                    (profiles are assigned unless the file carries the
//                    PowerColumn extension)
//   --power-ratio R  job power-profile max/min ratio (default 3)
//   --price-ratio R  on/off-peak price ratio (default 3)
//   --tick T         scheduling frequency in seconds (default 10)
//   --window W       scheduling window size (default 20)
//   --jobs J         parallel sweep workers (default: ESCHED_JOBS env or
//                    hardware_concurrency; results are identical for any J)
//   --csv            emit CSV instead of ASCII tables
//
// Process isolation (src/run/proc, src/net; see DESIGN.md §multi-process
// sweeps and §distributed sweeps):
//   --isolate M        "off" (default): in-process SweepRunner threads.
//                      "proc": fan cells out to esched-worker subprocesses;
//                      a crashed or hung worker costs one task attempt,
//                      not the sweep. "tcp": fan cells out to esched-agentd
//                      daemons over TCP (--agents / ESCHED_AGENTS); a dead
//                      agent costs one attempt per in-flight cell, not the
//                      sweep. Results are bit-identical in every mode.
//                      Degrades with a stderr warning when the requested
//                      mode cannot run — tcp falls back to proc when no
//                      agent is reachable, proc to in-process when cells
//                      carry no declarative specs, use a facility model,
//                      or no esched-worker binary is found.
//   --agents LIST      comma-separated agent addresses for --isolate=tcp
//                      ("host:port", "ip:port" or "[ipv6]:port"); default:
//                      the ESCHED_AGENTS environment variable
//   --task-timeout S   per-task wall-clock timeout in seconds under
//                      --isolate=proc/tcp; expiry kills the worker (proc)
//                      or resets the agent connection (tcp) and retries
//                      the cell (0 = no timeout, the default)
//   --retries N        retry budget per cell under --isolate=proc/tcp
//                      after its first attempt (default 2); exhausting it
//                      fails the bench naming the cell
//
// Observability (src/obs; all off by default, see DESIGN.md §obs):
//   --trace-out F    write a Chrome trace_event JSON to F and a JSONL
//                    scheduler-decision log to F.jsonl (the ESCHED_TRACE
//                    environment variable is the flagless equivalent)
//   --metrics-out F  enable the global counter registry and write its
//                    JSON snapshot to F after each sweep
//   --progress       live "done/total + ETA" sweep progress on stderr
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "power/pricing.hpp"
#include "run/spec.hpp"
#include "run/sweep.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace esched::bench {

/// Which synthetic workload a bench runs on.
enum class Workload { kSdscBlue, kAnlBgp };

/// Parsed common options.
struct Options {
  std::size_t months = 5;
  std::uint64_t seed = 0;  ///< 0 = workload-specific canonical seed
  std::string swf_path;    ///< empty = synthetic
  double power_ratio = 3.0;
  /// True when power_ratio was explicitly chosen (the --power-ratio flag,
  /// or a driver overriding the field programmatically). Distinguishes
  /// "leave a PowerColumn trace's real profiles alone" (default) from
  /// "rescale to exactly 1:3" (explicit 3.0) — an exact-double sentinel
  /// cannot tell those apart.
  bool power_ratio_given = false;
  double price_ratio = 3.0;
  DurationSec tick = 10;
  std::size_t window = 20;
  std::size_t jobs = 0;  ///< sweep parallelism; 0 = runner default
  bool csv = false;
  std::string isolate = "off";  ///< --isolate: "off" | "proc" | "tcp"
  /// --agents (default: ESCHED_AGENTS): comma-separated host:port agent
  /// list for --isolate=tcp. Validated at parse time; empty = none.
  std::string agents;
  double task_timeout = 0.0;    ///< --task-timeout seconds; 0 = none
  std::size_t retries = 2;      ///< --retries per cell (attempts - 1)
  std::string trace_out;    ///< --trace-out / ESCHED_TRACE; empty = off
  std::string metrics_out;  ///< --metrics-out; empty = off
  bool progress = false;    ///< --progress
  /// Open tracer when trace_out is set (shared so Options stays
  /// copyable; the last copy's destruction finalizes the trace files).
  std::shared_ptr<obs::Tracer> tracer;
};

/// Parse the shared flags (unknown flags are ignored so benches can add
/// their own on top). Validates ranges (months/window/tick >= 1) and
/// fails fast with a flag-named error message.
Options parse_options(int argc, const char* const* argv);

/// std::thread::hardware_concurrency(), floored at 1 — the value every
/// bench JSON records as "host_hardware_threads" so numbers from
/// different machines are never compared blind.
unsigned host_hardware_threads();

/// Warn once per process (stderr) when a requested worker count exceeds
/// the host's hardware threads: oversubscribed sweeps still produce
/// bit-identical results, but every wall-clock/speedup number they
/// report is skewed. parse_options calls this for --jobs; drivers with
/// their own worker flags should too.
void warn_if_oversubscribed(std::size_t jobs);

/// Build the workload: synthetic unless --swf was given. Power profiles
/// are (re-)assigned with the requested ratio unless the SWF file carries
/// its own power column and the ratio is left at the default. Delegates
/// to run::build_trace(workload_spec(...)) — the declarative spec is the
/// single source of truth, so an esched-worker rebuilding the trace from
/// the spec reproduces this function bit for bit.
trace::Trace load_workload(Workload which, const Options& options);

/// The declarative twin of load_workload: the TraceSpec whose
/// run::build_trace yields the exact same trace.
run::TraceSpec workload_spec(Workload which, const Options& options);

/// Human-readable workload name.
std::string workload_name(Workload which);

/// The paper's tariff at the requested ratio.
std::unique_ptr<power::PricingModel> make_tariff(const Options& options);

/// The declarative twin of make_tariff.
run::PricingSpec tariff_spec(const Options& options);

/// SimConfig from the shared options.
sim::SimConfig make_sim_config(const Options& options);

/// Factories for the paper's three policies in report order:
/// FCFS (baseline), Greedy, Knapsack. Each task of a sweep constructs its
/// own instance, so the factories are safe to reuse across cells.
std::vector<run::PolicyFactory> standard_policy_factories();

/// The same three policies as declarative names (core::
/// make_policy_by_name order: "fcfs", "greedy", "knapsack").
std::vector<std::string> standard_policy_names();

/// One sweep cell carrying both its runnable pointers and its declarative
/// spec, which is what makes the cell eligible for --isolate=proc. The
/// JobSpec's config copy drops the tracer/facility pointers (they cannot
/// cross a process boundary); when `config` carries a facility model the
/// cell is built *without* a spec and the sweep degrades to in-process.
run::SimJob make_cell(std::shared_ptr<const trace::Trace> trace,
                      std::shared_ptr<const power::PricingModel> tariff,
                      const run::TraceSpec& trace_spec,
                      const run::PricingSpec& pricing_spec,
                      const std::string& policy,
                      const sim::SimConfig& config, std::string label);

/// Run FCFS, Greedy and Knapsack over the trace; results in that order.
/// Backed by the parallel sweep runner: the three simulations execute on
/// `jobs` workers (0 = runner default, 1 = serial) with bit-identical
/// results either way. Pass Options::jobs to honor --jobs.
std::vector<sim::SimResult> run_all_policies(const trace::Trace& trace,
                                             const power::PricingModel& tariff,
                                             const sim::SimConfig& config,
                                             std::size_t jobs = 0);

/// As above, honoring the full observability contract of `options`:
/// --jobs, task trace spans (--trace-out), live progress (--progress) and
/// a registry snapshot to --metrics-out after the sweep.
std::vector<sim::SimResult> run_all_policies(const trace::Trace& trace,
                                             const power::PricingModel& tariff,
                                             const sim::SimConfig& config,
                                             const Options& options);

/// Spec-carrying variant: `which` names the workload declaratively, so
/// the three cells are eligible for --isolate=proc (the trace/tariff
/// arguments must be the ones load_workload/make_tariff built from the
/// same options). Honors the observability contract like the overload
/// above.
std::vector<sim::SimResult> run_all_policies(Workload which,
                                             const trace::Trace& trace,
                                             const power::PricingModel& tariff,
                                             const sim::SimConfig& config,
                                             const Options& options);

/// Submit a whole experiment grid through the parallel runner; results in
/// submission order. Thin wrapper over run::SweepRunner for drivers that
/// build their own run::SimJob vectors.
std::vector<sim::SimResult> run_sweep(const std::vector<run::SimJob>& sweep,
                                      std::size_t jobs = 0);

/// Options-aware variant: wires the tracer, progress rendering and the
/// metrics snapshot exactly like run_all_policies(..., options).
std::vector<sim::SimResult> run_sweep(const std::vector<run::SimJob>& sweep,
                                      const Options& options);

/// Recompute a result's total bill under a different on/off price ratio
/// without re-simulating: the schedule depends only on the period
/// boundaries, which are ratio-invariant, so bill(r) = off_price *
/// (kWh_off + r * kWh_on).
Money bill_under_ratio(const sim::SimResult& result, Money off_price,
                       double ratio);

/// Print a table in the format selected by --csv, preceded by `title`.
void emit(const Table& table, const std::string& title, bool csv);

/// Print the standard bench header line.
void print_header(const std::string& experiment, const trace::Trace& trace,
                  const Options& options);

}  // namespace esched::bench
