// Ablation: policy design choices DESIGN.md calls out.
//  * Greedy sort key: per-node power p_i (the paper's reading) vs
//    aggregate power n_i*p_i.
//  * Starvation guard (extension): bounding the extra wait the power
//    reordering can inflict on any one job, and what it costs in savings.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/metrics.hpp"
#include "util/time_util.hpp"

namespace {

esched::DurationSec max_wait(const esched::sim::SimResult& r) {
  esched::DurationSec w = 0;
  for (const auto& rec : r.records) w = std::max(w, rec.wait());
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);
  const std::shared_ptr<const power::PricingModel> tariff =
      bench::make_tariff(opt);
  const auto workloads = {bench::Workload::kAnlBgp,
                          bench::Workload::kSdscBlue};
  const auto greedy_keys = {core::GreedyKey::kPowerPerNode,
                            core::GreedyKey::kTotalPower};
  const auto guards = {DurationSec{0}, DurationSec{4 * 3600},
                       DurationSec{1 * 3600}};

  std::printf("== Ablation: policy variants ==\n");

  // Per workload: the FCFS baseline, the greedy-key variants, then the
  // starvation-guard grid — all cells submitted to the runner at once.
  // Every variant is named (core::make_policy_by_name) and the guard is
  // plain SimConfig data, so the whole grid is --isolate=proc eligible.
  std::vector<run::SimJob> sweep;
  const auto base_config = bench::make_sim_config(opt);
  const run::PricingSpec pricing_spec = bench::tariff_spec(opt);
  for (const auto which : workloads) {
    const auto t = std::make_shared<const trace::Trace>(
        bench::load_workload(which, opt));
    const run::TraceSpec trace_spec = bench::workload_spec(which, opt);
    const std::string wname = bench::workload_name(which);
    sweep.push_back(bench::make_cell(t, tariff, trace_spec, pricing_spec,
                                     "fcfs", base_config,
                                     "fcfs/" + wname));
    for (const auto key : greedy_keys) {
      const std::string name = key == core::GreedyKey::kPowerPerNode
                                   ? "greedy"
                                   : "greedy-total";
      sweep.push_back(bench::make_cell(t, tariff, trace_spec, pricing_spec,
                                       name, base_config,
                                       name + "/" + wname));
    }
    for (const DurationSec guard : guards) {
      sim::SimConfig config = base_config;
      config.scheduler.starvation_age = guard;
      const std::string suffix =
          "/" + wname + "/guard=" + std::to_string(guard);
      sweep.push_back(bench::make_cell(t, tariff, trace_spec, pricing_spec,
                                       "greedy", config,
                                       "greedy" + suffix));
      sweep.push_back(bench::make_cell(t, tariff, trace_spec, pricing_spec,
                                       "knapsack", config,
                                       "knapsack" + suffix));
    }
  }
  const auto all_results = bench::run_sweep(sweep, opt);
  // Cells per workload: 1 FCFS + 2 greedy keys + 3 guards x 2 policies.
  constexpr std::size_t kCellsPerWorkload = 1 + 2 + 3 * 2;

  Table greedy_table(
      {"Trace", "Greedy key", "Saving", "Mean wait (s)", "Max wait"});
  std::size_t base = 0;
  for (const auto which : workloads) {
    const sim::SimResult& rf = all_results[base];
    std::size_t cell = base + 1;
    for (const auto key : greedy_keys) {
      const sim::SimResult& r = all_results[cell++];
      greedy_table.add_row();
      greedy_table.cell(bench::workload_name(which));
      greedy_table.cell(key == core::GreedyKey::kPowerPerNode
                            ? "W/node (paper)"
                            : "total W");
      greedy_table.cell_percent(metrics::bill_saving_percent(rf, r));
      greedy_table.cell(r.mean_wait_seconds(), 1);
      greedy_table.cell(format_duration(max_wait(r)));
    }
    base += kCellsPerWorkload;
  }
  bench::emit(greedy_table, "Greedy sort-key variants", opt.csv);

  Table guard_table({"Trace", "Guard", "Policy", "Saving", "Mean wait (s)",
                     "Max wait"});
  base = 0;
  for (const auto which : workloads) {
    const sim::SimResult& rf = all_results[base];
    std::size_t cell = base + 3;  // skip FCFS + the two greedy variants
    for (const DurationSec guard : guards) {
      for (std::size_t p = 0; p < 2; ++p) {
        const sim::SimResult& r = all_results[cell++];
        guard_table.add_row();
        guard_table.cell(bench::workload_name(which));
        guard_table.cell(guard == 0 ? "off" : format_duration(guard));
        guard_table.cell(r.policy_name);
        guard_table.cell_percent(metrics::bill_saving_percent(rf, r));
        guard_table.cell(r.mean_wait_seconds(), 1);
        guard_table.cell(format_duration(max_wait(r)));
      }
    }
    base += kCellsPerWorkload;
  }
  bench::emit(guard_table, "starvation-guard extension", opt.csv);
  return 0;
}
