// Ablation: policy design choices DESIGN.md calls out.
//  * Greedy sort key: per-node power p_i (the paper's reading) vs
//    aggregate power n_i*p_i.
//  * Starvation guard (extension): bounding the extra wait the power
//    reordering can inflict on any one job, and what it costs in savings.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "metrics/metrics.hpp"
#include "util/time_util.hpp"

namespace {

esched::DurationSec max_wait(const esched::sim::SimResult& r) {
  esched::DurationSec w = 0;
  for (const auto& rec : r.records) w = std::max(w, rec.wait());
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);
  const auto tariff = bench::make_tariff(opt);

  std::printf("== Ablation: policy variants ==\n");

  Table greedy_table(
      {"Trace", "Greedy key", "Saving", "Mean wait (s)", "Max wait"});
  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto config = bench::make_sim_config(opt);
    core::FcfsPolicy fcfs;
    const auto rf = sim::simulate(t, *tariff, fcfs, config);
    for (const auto key :
         {core::GreedyKey::kPowerPerNode, core::GreedyKey::kTotalPower}) {
      core::GreedyPowerPolicy greedy(key);
      const auto r = sim::simulate(t, *tariff, greedy, config);
      greedy_table.add_row();
      greedy_table.cell(bench::workload_name(which));
      greedy_table.cell(key == core::GreedyKey::kPowerPerNode
                            ? "W/node (paper)"
                            : "total W");
      greedy_table.cell_percent(metrics::bill_saving_percent(rf, r));
      greedy_table.cell(r.mean_wait_seconds(), 1);
      greedy_table.cell(format_duration(max_wait(r)));
    }
  }
  bench::emit(greedy_table, "Greedy sort-key variants", opt.csv);

  Table guard_table({"Trace", "Guard", "Policy", "Saving", "Mean wait (s)",
                     "Max wait"});
  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace t = bench::load_workload(which, opt);
    core::FcfsPolicy fcfs;
    const auto rf =
        sim::simulate(t, *tariff, fcfs, bench::make_sim_config(opt));
    for (const DurationSec guard :
         {DurationSec{0}, DurationSec{4 * 3600}, DurationSec{1 * 3600}}) {
      sim::SimConfig config = bench::make_sim_config(opt);
      config.scheduler.starvation_age = guard;
      core::GreedyPowerPolicy greedy;
      core::KnapsackPolicy knapsack;
      for (core::SchedulingPolicy* policy :
           std::initializer_list<core::SchedulingPolicy*>{&greedy,
                                                          &knapsack}) {
        const auto r = sim::simulate(t, *tariff, *policy, config);
        guard_table.add_row();
        guard_table.cell(bench::workload_name(which));
        guard_table.cell(guard == 0 ? "off" : format_duration(guard));
        guard_table.cell(r.policy_name);
        guard_table.cell_percent(metrics::bill_saving_percent(rf, r));
        guard_table.cell(r.mean_wait_seconds(), 1);
        guard_table.cell(format_duration(max_wait(r)));
      }
    }
  }
  bench::emit(guard_table, "starvation-guard extension", opt.csv);
  return 0;
}
