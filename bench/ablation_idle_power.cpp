// Ablation: idle node power. The paper sets idle power to 0 and argues
// the *relative* bill reduction is insensitive to it (§6.1). This bench
// checks that claim by sweeping idle draw from 0 to the ~13 kW/rack a
// Blue Gene/P rack burns while idle [Hennecke'12] (~12.7 W/node at 1024
// nodes/rack).
#include <cstdio>

#include "common.hpp"
#include "metrics/metrics.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  std::printf("== Ablation: idle node power ==\n");
  Table table({"Trace", "Idle W/node", "Greedy saving", "Knapsack saving",
               "FCFS bill"});
  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto tariff = bench::make_tariff(opt);
    for (const double idle : {0.0, 5.0, 12.7}) {
      sim::SimConfig config = bench::make_sim_config(opt);
      config.idle_watts_per_node = idle;
      const auto results =
          bench::run_all_policies(which, t, *tariff, config, opt);
      table.add_row();
      table.cell(bench::workload_name(which));
      table.cell(idle, 1);
      table.cell_percent(
          metrics::bill_saving_percent(results[0], results[1]));
      table.cell_percent(
          metrics::bill_saving_percent(results[0], results[2]));
      table.cell(results[0].total_bill);
    }
  }
  bench::emit(table,
              "bill savings as idle power rises (relative savings shrink "
              "because the idle floor is unschedulable)",
              opt.csv);
  return 0;
}
