// Ablation: topology-constrained allocation. The paper assumes a fungible
// node pool ("a generic job power aware scheduling mechanism"); its
// predecessors ran on Blue Gene machines where jobs need contiguous
// partitions and fragmentation wastes nodes [Tang'11]. This bench runs
// the same policies under 1-D contiguous allocation and reports the
// fragmentation cost: placement failures, utilization, waits, and whether
// the power-aware savings survive.
#include <cstdio>

#include "common.hpp"
#include "metrics/metrics.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  std::printf("== Ablation: fungible pool vs contiguous allocation ==\n");
  Table table({"Trace", "Allocation", "Policy", "Saving", "Utilization",
               "Mean wait (s)", "Placement misses"});
  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto tariff = bench::make_tariff(opt);
    for (const bool contiguous : {false, true}) {
      sim::SimConfig config = bench::make_sim_config(opt);
      config.contiguous_allocation = contiguous;
      const auto results =
          bench::run_all_policies(which, t, *tariff, config, opt);
      for (std::size_t i = 0; i < results.size(); ++i) {
        table.add_row();
        table.cell(bench::workload_name(which));
        table.cell(contiguous ? "contiguous" : "pool");
        table.cell(results[i].policy_name);
        table.cell_percent(
            metrics::bill_saving_percent(results[0], results[i]));
        table.cell_percent(metrics::overall_utilization(results[i]) *
                           100.0);
        table.cell(results[i].mean_wait_seconds(), 1);
        table.cell_int(
            static_cast<long long>(results[i].placement_failures));
      }
    }
  }
  bench::emit(table,
              "note: savings are relative to the FCFS run under the SAME "
              "allocation model",
              opt.csv);
  return 0;
}
