// Ablation: facility (cooling) power. The paper bills raw IT power; a
// real bill includes cooling, and cooling is worst in the hot on-peak
// afternoon. A flat PUE leaves *relative* savings untouched (both bills
// scale); a period-tracking PUE makes on-peak watts disproportionately
// expensive and amplifies the scheduler's leverage.
#include <cstdio>

#include "common.hpp"
#include "metrics/metrics.hpp"
#include "power/facility.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  std::printf("== Ablation: facility (PUE) models ==\n");
  Table table({"Trace", "Facility", "FCFS bill", "Greedy saving",
               "Knapsack saving"});
  for (const auto which :
       {bench::Workload::kAnlBgp, bench::Workload::kSdscBlue}) {
    const trace::Trace t = bench::load_workload(which, opt);
    const auto tariff = bench::make_tariff(opt);

    const power::ConstantPue flat(1.4);
    const power::PeriodPue diurnal(*tariff, 1.15, 1.6);
    struct Row {
      const power::FacilityModel* model;
      const char* label;
    };
    const Row rows[] = {
        {nullptr, "none (paper: IT power only)"},
        {&flat, "flat PUE 1.4"},
        {&diurnal, "diurnal PUE 1.15/1.6"},
    };
    for (const Row& row : rows) {
      sim::SimConfig config = bench::make_sim_config(opt);
      config.facility_model = row.model;
      const auto results =
          bench::run_all_policies(which, t, *tariff, config, opt);
      table.add_row();
      table.cell(bench::workload_name(which));
      table.cell(row.label);
      table.cell(results[0].total_bill);
      table.cell_percent(
          metrics::bill_saving_percent(results[0], results[1]));
      table.cell_percent(
          metrics::bill_saving_percent(results[0], results[2]));
    }
  }
  bench::emit(table, "bill savings under facility power models", opt.csv);
  return 0;
}
