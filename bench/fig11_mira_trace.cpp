// Fig. 11 reproduction: job characteristics of the Mira December-2012
// case-study trace — submissions over the month, showing the
// acceptance-testing half (large jobs) followed by the early-science half
// (mostly single-rack jobs).
#include <cstdio>

#include "common.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_stats.hpp"
#include "util/stats.hpp"
#include "util/time_util.hpp"

int main(int argc, char** argv) {
  using namespace esched;
  const bench::Options opt = bench::parse_options(argc, argv);

  trace::MiraConfig mc;
  const trace::Trace mira =
      trace::make_mira_like(mc, opt.seed != 0 ? opt.seed : 2012);
  std::printf("== Fig. 11: Mira December-2012 job characteristics ==\n");
  std::printf("jobs=%zu racks=%lld nodes=%lld\n", mira.size(),
              static_cast<long long>(mc.racks),
              static_cast<long long>(mira.system_nodes()));

  // Submissions per day with the mean job size — the scatter plot's
  // content in table form.
  Table table({"Day", "Jobs", "Mean racks", "Max racks", "Mean runtime",
               "Mean kW/rack"});
  for (std::int64_t day = 0; day < kDaysPerMonth; ++day) {
    RunningStats racks;
    RunningStats runtime;
    RunningStats power;
    for (const trace::Job& j : mira.jobs()) {
      if (day_index(j.submit) != day) continue;
      racks.add(static_cast<double>(j.nodes / mc.nodes_per_rack));
      runtime.add(static_cast<double>(j.runtime));
      power.add(j.power_per_node * static_cast<double>(mc.nodes_per_rack) /
                1000.0);
    }
    table.add_row();
    table.cell_int(day + 1);
    table.cell_int(static_cast<long long>(racks.count()));
    table.cell(racks.mean(), 1);
    table.cell_int(static_cast<long long>(racks.max()));
    table.cell(format_duration(static_cast<DurationSec>(runtime.mean())));
    table.cell(power.mean(), 1);
  }
  bench::emit(table, "submissions by day (acceptance -> early science)",
              opt.csv);

  const CategoricalHistogram sizes = trace::size_distribution(mira);
  std::fputs(sizes.render("\njob size distribution (nodes)").c_str(),
             stdout);
  return 0;
}
