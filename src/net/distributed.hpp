// The multi-machine twin of run::SubprocessPool: fan sweep cells out to
// esched-agentd processes over TCP.
//
// One DistributedPool drives N agents from a single-threaded poll()
// loop, exactly like the subprocess supervisor drives worker pipes — no
// locks, no signal handlers (SIGPIPE ignored for the duration of run()).
// The failure model *is* the supervisor's, extended for a transport that
// can lie in more ways, and shares its implementation (run/endpoint.hpp:
// TaskLedger, FrameAssembler, Endpoint) rather than duplicating it:
//
//  * Agent death — EOF, read/write errors, a failed reconnect — requeues
//    every in-flight cell of that agent onto the surviving ones, then
//    reconnects with capped exponential backoff; an agent that fails
//    `connect_attempts` consecutive connects is abandoned. The sweep
//    fails only when *no* usable agent remains.
//  * Heartbeats — kPing every heartbeat_interval_seconds; an agent that
//    leaves `heartbeat_misses` pings unanswered is declared dead even if
//    the TCP connection still looks open (half-open connections, frozen
//    agents).
//  * Per-task wall-clock timeouts — a cell can't be killed remotely, so
//    an expired deadline retires the whole connection: requeue, close,
//    reconnect (the agent drops orphaned results on its side).
//  * Protocol corruption (bad frame, CRC mismatch, an answer for a task
//    the agent doesn't hold) retires the connection the same way.
//  * kFail frames (transient failure at the agent, e.g. its esched-worker
//    died) requeue just that attempt; kError frames are deterministic
//    failures and fail the sweep fast, exactly like the subprocess pool.
//
// Determinism: cells are rebuilt from declarative JobSpecs by whichever
// agent runs them, results are stored by submission index, and retried
// attempts rerun the same deterministic simulation — so a TCP sweep is
// bit-identical (results_identical) to the in-process 1-thread
// reference, including when agents are SIGKILLed mid-sweep
// (distributed_test and the distributed-determinism CI job pin this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "run/spec.hpp"
#include "run/sweep.hpp"
#include "sim/result.hpp"

namespace esched::obs {
class Tracer;
}  // namespace esched::obs

namespace esched::net {

/// Coordinator knobs. The defaults match the bench CLI defaults
/// (bench/common.cpp) so drivers and tests agree on behaviour.
struct DistributedPoolConfig {
  /// Agent addresses (host:port). Must be non-empty for run().
  std::vector<HostPort> agents;
  /// Attempt budget per task (first run + retries). Must be >= 1.
  std::uint32_t max_attempts = 3;
  /// Backoff before retry k (1-based) is
  /// min(backoff_max_seconds, backoff_initial_seconds * 2^(k-1)).
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;
  /// Per-task wall-clock timeout; expiry retires the agent connection
  /// and requeues its in-flight cells. 0 disables the timeout.
  double task_timeout_seconds = 0.0;
  /// TCP connect + handshake deadline per attempt.
  double connect_timeout_seconds = 5.0;
  /// kPing cadence per connected agent.
  double heartbeat_interval_seconds = 1.0;
  /// Unanswered pings before the agent is declared dead.
  std::uint32_t heartbeat_misses = 3;
  /// Reconnect backoff: initial delay, doubled per consecutive failure,
  /// capped at the max.
  double reconnect_initial_seconds = 0.1;
  double reconnect_max_seconds = 2.0;
  /// Consecutive failed connect attempts before an agent is abandoned
  /// for the rest of the run (a successful handshake resets the count).
  std::uint32_t connect_attempts = 5;
};

/// The TCP twin of SubprocessPool. One instance may run() multiple
/// sweeps; connections are opened per run and closed before run returns.
class DistributedPool {
 public:
  explicit DistributedPool(DistributedPoolConfig config);

  /// Agents named by the ESCHED_AGENTS environment variable
  /// (comma-separated host:port list; empty/unset = none). Throws
  /// esched::Error on malformed entries, naming the accepted forms.
  static std::vector<HostPort> agents_from_env();

  /// True when at least one agent accepts a TCP connection within
  /// `timeout_seconds` (per agent). The cheap reachability probe behind
  /// bench/common's graceful fallback; no handshake is performed.
  static bool any_agent_reachable(const std::vector<HostPort>& agents,
                                  double timeout_seconds = 0.5);

  /// Execute every spec; results in submission order, bit-identical to
  /// the in-process reference. Throws esched::Error when a cell exhausts
  /// its attempt budget, when an agent reports a deterministic kError,
  /// or when no usable agent remains. All connections are closed before
  /// any throw.
  std::vector<sim::SimResult> run(const std::vector<run::JobSpec>& sweep);

  /// Counters from the most recent run(). threads is the slot total
  /// across agents that completed a handshake; worker_busy_seconds is
  /// indexed by agent (coordinator-observed round-trip times of
  /// successful attempts).
  const run::SweepStats& last_stats() const { return stats_; }

  /// Same contract as SweepRunner::set_progress; calls arrive on the
  /// coordinating thread.
  void set_progress(run::ProgressCallback callback) {
    progress_ = std::move(callback);
  }

  /// Optional tracer: one track per agent (2000 + agent index) carrying
  /// a complete span per remote cell round-trip and per connection
  /// lifetime. Non-owning; must outlive run().
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  const DistributedPoolConfig& config() const { return config_; }

 private:
  DistributedPoolConfig config_;
  run::SweepStats stats_;
  run::ProgressCallback progress_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace esched::net
