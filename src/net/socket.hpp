// Small non-blocking TCP socket layer for the distributed sweep
// (net/frame_io.hpp carries wire frames over these sockets).
//
// Scope: exactly what a single-threaded poll() loop needs — RAII fds,
// non-blocking listen/accept, non-blocking connect split into start
// (initiate) and finish (classify after POLLOUT), and agent-address
// parsing with error messages that teach the accepted forms. IPv4 and
// IPv6 both work (getaddrinfo resolves names; numeric addresses never
// block). Everything reports failures as values or esched::Error — no
// errno spelunking at call sites.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace esched::net {

/// RAII file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Close now (idempotent).
  void reset();
  /// Give up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// One agent address.
struct HostPort {
  std::string host;
  std::uint16_t port = 0;

  std::string text() const { return host + ":" + std::to_string(port); }
  bool operator==(const HostPort&) const = default;
};

/// Parse one "host:port" agent entry. Accepted forms: "host:port" with a
/// non-empty host (name, IPv4, or bracketed IPv6 "[::1]:9555") and a port
/// in [1, 65535]. Throws esched::Error naming the offending entry and
/// listing the accepted forms.
HostPort parse_host_port(const std::string& text);

/// Parse a comma-separated agent list ("h1:p1,h2:p2"). Empty entries are
/// rejected; an empty string yields an empty list. Throws like
/// parse_host_port.
std::vector<HostPort> parse_agent_list(const std::string& csv);

/// Put an fd into non-blocking mode; throws esched::Error on failure.
void set_nonblocking(int fd);

/// Create a non-blocking listening TCP socket bound to `bind_host:port`
/// (port 0 picks an ephemeral port; local_port() reveals it). SO_REUSEADDR
/// is set so restarts do not trip over TIME_WAIT. Throws esched::Error.
Fd listen_tcp(const std::string& bind_host, std::uint16_t port,
              int backlog = 16);

/// Accept one connection from a non-blocking listener; the returned fd is
/// non-blocking with TCP_NODELAY set (frames are small; Nagle would add
/// 40 ms to every answer). Invalid Fd when no connection is pending.
/// Throws esched::Error on real accept failures.
Fd accept_tcp(int listen_fd);

/// The port a socket is actually bound to (for port 0 listeners).
std::uint16_t local_port(int fd);

/// Begin a non-blocking connect to `addr`. Returns an in-progress (or
/// already connected) non-blocking fd with TCP_NODELAY, or an invalid Fd
/// with `error` set when the address cannot be resolved or the socket
/// cannot be created. Completion is signalled by POLLOUT; classify it
/// with connect_tcp_finish.
Fd connect_tcp_start(const HostPort& addr, std::string& error);

/// After POLLOUT on a connecting fd: true when the connection is
/// established, false with `error` describing the failure (connection
/// refused, unreachable, ...).
bool connect_tcp_finish(int fd, std::string& error);

}  // namespace esched::net
