#include "net/distributed.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <poll.h>

#include "net/frame_io.hpp"
#include "net/protocol.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "run/endpoint.hpp"
#include "run/wire.hpp"
#include "util/error.hpp"

namespace esched::net {

namespace {

using Clock = run::EndpointClock;
namespace wire = run::wire;

/// Remote-cell / connection-lifetime spans go on tracks 2000+agent so
/// they collide neither with in-process worker tracks nor with the
/// subprocess pool's 1000+slot tracks.
constexpr std::uint32_t kTrackBase = 2000;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void bump(const char* name) {
  if (!obs::counters_enabled()) return;
  obs::Registry::global().counter(name).add();
}

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", s);
  return buf;
}

/// One remote agent and the coordinator's view of it: connection state
/// machine, per-slot in-flight bookkeeping (shared run::Endpoint), and
/// heartbeat/backoff clocks.
struct Agent {
  enum class State {
    kBackoff,      ///< waiting for retry_at before (re)connecting
    kConnecting,   ///< TCP connect in flight (poll for POLLOUT)
    kHandshaking,  ///< kHello sent, waiting for kWelcome
    kReady,        ///< handshake done; jobs and heartbeats flow
    kFailed,       ///< abandoned for the rest of the run
  };

  HostPort addr;
  State state = State::kBackoff;
  std::optional<FrameConn> conn;
  std::vector<run::Endpoint> slots;  ///< sized by the kWelcome slot count

  Clock::time_point retry_at{};          ///< kBackoff: next connect time
  Clock::time_point connect_deadline{};  ///< kConnecting/kHandshaking
  Clock::time_point connected_at{};      ///< kReady: for lifetime spans
  double backoff_seconds = 0.0;
  std::uint32_t connects_left = 0;
  bool ever_connected = false;

  Clock::time_point next_ping{};
  std::uint32_t ping_seq = 0;
  std::uint32_t pings_unanswered = 0;

  std::string last_error = "never attempted";

  bool connected() const {
    return state == State::kHandshaking || state == State::kReady;
  }
  std::size_t busy_count() const {
    std::size_t n = 0;
    for (const run::Endpoint& ep : slots) {
      if (ep.busy()) ++n;
    }
    return n;
  }
};

/// The single-run coordinator state machine, the TCP sibling of the
/// Supervisor in run/proc.cpp. Every socket is owned by an Agent's
/// FrameConn, so unwinding (budget exhaustion, kError fail-fast) closes
/// all connections via RAII — the agents then discard orphaned work.
class Coordinator {
 public:
  Coordinator(const DistributedPoolConfig& config,
              const std::vector<run::JobSpec>& sweep, run::SweepStats& stats,
              const run::ProgressCallback& progress, obs::Tracer* tracer)
      : config_(config),
        sweep_(sweep),
        stats_(stats),
        progress_(progress),
        tracer_(tracer) {}

  std::vector<sim::SimResult> run() {
    const std::size_t n = sweep_.size();
    results_.resize(n);
    payloads_.reserve(n);
    for (const run::JobSpec& spec : sweep_) {
      payloads_.push_back(wire::encode_job(spec));  // throws on bad spec
    }
    wall_start_ = Clock::now();
    run::RetryPolicy retry;
    retry.max_attempts = config_.max_attempts;
    retry.backoff_initial_seconds = config_.backoff_initial_seconds;
    retry.backoff_max_seconds = config_.backoff_max_seconds;
    ledger_.emplace(sweep_, retry, wall_start_);

    agents_.resize(config_.agents.size());
    stats_.worker_busy_seconds.assign(agents_.size(), 0.0);
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      agents_[i].addr = config_.agents[i];
      agents_[i].retry_at = wall_start_;  // connect immediately
      agents_[i].backoff_seconds = config_.reconnect_initial_seconds;
      agents_[i].connects_left = config_.connect_attempts;
    }

    while (!ledger_->all_done()) step();

    disconnect_all();
    stats_.wall_seconds = seconds_since(wall_start_);
    finalize_task_stats();
    std::vector<sim::SimResult> out;
    out.reserve(n);
    for (sim::SimResult& r : results_) out.push_back(std::move(r));
    return out;
  }

  /// Close every connection (graceful or not — TCP has no distinction the
  /// agent cares about; it drops orphaned work on EOF). Never throws.
  void disconnect_all() noexcept {
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      Agent& a = agents_[i];
      if (a.state == Agent::State::kReady) emit_connection_span(i, now);
      a.conn.reset();
    }
  }

 private:
  // ---- connection lifecycle -------------------------------------------

  void start_connect(std::size_t index, Clock::time_point now) {
    Agent& a = agents_[index];
    std::string error;
    Fd fd = connect_tcp_start(a.addr, error);
    if (!fd.valid()) {
      connect_failure(index, error, now);
      return;
    }
    a.conn.emplace(std::move(fd));
    a.state = Agent::State::kConnecting;
    a.connect_deadline =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(config_.connect_timeout_seconds));
  }

  void on_connect_writable(std::size_t index, Clock::time_point now) {
    Agent& a = agents_[index];
    std::string error;
    if (!connect_tcp_finish(a.conn->fd(), error)) {
      connect_failure(index, error, now);
      return;
    }
    Hello hello;
    hello.protocol = kNetProtocolVersion;
    if (!a.conn->send(wire::encode_frame(wire::FrameType::kHello, 0, 0,
                                         encode_hello(hello)))) {
      connect_failure(index, "send failed during handshake", now);
      return;
    }
    a.state = Agent::State::kHandshaking;  // connect_deadline still armed
  }

  void on_welcome(std::size_t index, const Welcome& welcome,
                  Clock::time_point now) {
    Agent& a = agents_[index];
    if (welcome.protocol != kNetProtocolVersion) {
      agent_fatal(index,
                  "protocol version mismatch (coordinator=" +
                      std::to_string(kNetProtocolVersion) +
                      ", agent=" + std::to_string(welcome.protocol) + ")");
      return;
    }
    const std::uint32_t slots = std::max<std::uint32_t>(1, welcome.slots);
    a.state = Agent::State::kReady;
    a.slots.assign(slots, run::Endpoint{});
    a.connected_at = now;
    a.backoff_seconds = config_.reconnect_initial_seconds;
    a.connects_left = config_.connect_attempts;
    a.ping_seq = 0;
    a.pings_unanswered = 0;
    a.next_ping =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(config_.heartbeat_interval_seconds));
    bump("net.connects");
    if (a.ever_connected) bump("net.reconnects");
    a.ever_connected = true;
    recompute_slot_total();
  }

  /// A connect attempt failed before the handshake completed: back off,
  /// or abandon the agent once its consecutive-connect budget is spent.
  void connect_failure(std::size_t index, const std::string& error,
                       Clock::time_point now) {
    Agent& a = agents_[index];
    a.conn.reset();
    a.last_error = error;
    if (a.connects_left > 0) --a.connects_left;
    if (a.connects_left == 0) {
      a.state = Agent::State::kFailed;
      return;
    }
    a.state = Agent::State::kBackoff;
    a.retry_at = now + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(a.backoff_seconds));
    a.backoff_seconds =
        std::min(config_.reconnect_max_seconds, a.backoff_seconds * 2.0);
  }

  /// Permanent, non-retryable rejection (version mismatch, kError during
  /// handshake): the agent will never accept us, so don't keep knocking.
  void agent_fatal(std::size_t index, const std::string& error) {
    Agent& a = agents_[index];
    a.conn.reset();
    a.last_error = error;
    a.state = Agent::State::kFailed;
  }

  /// An established connection died (`reason`): requeue every in-flight
  /// cell onto the surviving agents and schedule a reconnect. Throws when
  /// a requeued cell exhausts its attempt budget.
  void connection_lost(std::size_t index, const std::string& reason,
                       Clock::time_point now) {
    Agent& a = agents_[index];
    emit_connection_span(index, now);
    a.conn.reset();
    a.last_error = reason;
    a.state = Agent::State::kBackoff;
    a.retry_at = now + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(a.backoff_seconds));
    a.backoff_seconds =
        std::min(config_.reconnect_max_seconds, a.backoff_seconds * 2.0);
    recompute_slot_total();
    for (run::Endpoint& ep : a.slots) {
      if (!ep.busy()) continue;
      const std::size_t task = ep.task;
      ep.clear();
      bump("net.cells_requeued");
      ledger_->fail_attempt(task, reason, now);  // throws on budget
    }
    a.slots.clear();
  }

  void emit_connection_span(std::size_t index, Clock::time_point now) {
    Agent& a = agents_[index];
    if (a.state != Agent::State::kReady || tracer_ == nullptr ||
        !tracer_->enabled()) {
      return;
    }
    tracer_->complete_span("agent:" + a.addr.text(), "net", a.connected_at,
                           now, kTrackBase + static_cast<std::uint32_t>(index));
  }

  /// stats_.threads = slot total over *currently usable* agents, floored
  /// by the largest total seen (an agent dying mid-sweep doesn't erase
  /// that its slots did real work).
  void recompute_slot_total() {
    std::size_t total = 0;
    for (const Agent& a : agents_) {
      if (a.state == Agent::State::kReady) total += a.slots.size();
    }
    stats_.threads = std::max(stats_.threads, total);
  }

  // ---- dispatch -------------------------------------------------------

  void assign_ready(Clock::time_point now) {
    for (std::size_t i = 0; i < agents_.size() && ledger_->has_pending();
         ++i) {
      Agent& a = agents_[i];
      if (a.state != Agent::State::kReady) continue;
      for (run::Endpoint& ep : a.slots) {
        if (ep.busy()) continue;
        if (!ledger_->has_pending()) break;
        const std::size_t task = ledger_->claim_ready(now);
        if (task == run::kNoTask) return;  // all gated on backoff
        const std::uint32_t attempt = ledger_->begin_attempt(task);
        ep.begin(task, attempt, now, config_.task_timeout_seconds);
        if (!a.conn->send(wire::encode_frame(
                wire::FrameType::kJob, static_cast<std::uint32_t>(task),
                attempt, payloads_[task]))) {
          connection_lost(i, "agent " + a.addr.text() +
                                 ": send failed (connection lost)",
                          now);
          break;  // a.slots is gone; next agent
        }
      }
    }
  }

  // ---- the poll loop --------------------------------------------------

  void step() {
    Clock::time_point now = Clock::now();

    // Drive per-agent clocks: backoff expiry, connect/handshake deadlines.
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      Agent& a = agents_[i];
      if (a.state == Agent::State::kBackoff && now >= a.retry_at) {
        start_connect(i, now);
      } else if ((a.state == Agent::State::kConnecting ||
                  a.state == Agent::State::kHandshaking) &&
                 now >= a.connect_deadline) {
        connect_failure(i,
                        a.state == Agent::State::kConnecting
                            ? "connect timed out"
                            : "handshake timed out",
                        now);
      }
    }

    throw_if_no_usable_agents();
    assign_ready(now);

    std::vector<struct pollfd> fds;
    std::vector<std::size_t> indices;
    fds.reserve(agents_.size());
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      Agent& a = agents_[i];
      if (a.state == Agent::State::kConnecting) {
        fds.push_back({a.conn->fd(), POLLOUT, 0});
      } else if (a.connected()) {
        const short events =
            static_cast<short>(POLLIN | (a.conn->wants_write() ? POLLOUT : 0));
        fds.push_back({a.conn->fd(), events, 0});
      } else {
        continue;
      }
      indices.push_back(i);
    }

    const int timeout_ms = next_timeout_ms(now);
    const int rc = ::poll(fds.empty() ? nullptr : fds.data(),
                          static_cast<nfds_t>(fds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw Error("DistributedPool: poll failed: " +
                  std::string(std::strerror(errno)));
    }
    if (rc > 0) {
      for (std::size_t k = 0; k < fds.size(); ++k) {
        const std::size_t i = indices[k];
        Agent& a = agents_[i];
        now = Clock::now();
        if (a.state == Agent::State::kConnecting) {
          if ((fds[k].revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
            on_connect_writable(i, now);
          }
          continue;
        }
        if (!a.connected()) continue;  // state changed by an earlier event
        if ((fds[k].revents & POLLOUT) != 0 && !a.conn->flush()) {
          connection_lost(
              i, "agent " + a.addr.text() + ": send failed (connection lost)",
              now);
          continue;
        }
        if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          on_readable(i, now);
        }
        if (ledger_->all_done()) return;
      }
    }

    // Deadlines and heartbeats, after any answers that beat the clock.
    now = Clock::now();
    check_task_deadlines(now);
    check_heartbeats(now);
  }

  /// Nearest of: connect deadlines, reconnect times, task deadlines,
  /// heartbeat ticks, backoff ready-times. Never -1: a coordinator always
  /// has a clock to watch (capped at 60 s like the subprocess pool).
  int next_timeout_ms(Clock::time_point now) const {
    bool have = false;
    Clock::time_point nearest{};
    const auto consider = [&](Clock::time_point tp) {
      if (!have || tp < nearest) {
        nearest = tp;
        have = true;
      }
    };
    for (const Agent& a : agents_) {
      switch (a.state) {
        case Agent::State::kBackoff:
          consider(a.retry_at);
          break;
        case Agent::State::kConnecting:
        case Agent::State::kHandshaking:
          consider(a.connect_deadline);
          break;
        case Agent::State::kReady:
          consider(a.next_ping);
          for (const run::Endpoint& ep : a.slots) {
            if (ep.busy() && ep.has_deadline) consider(ep.deadline);
          }
          break;
        case Agent::State::kFailed:
          break;
      }
    }
    Clock::time_point ready{};
    if (ledger_->next_ready_at(ready)) consider(ready);
    if (!have) return 60000;
    const double sec = std::chrono::duration<double>(nearest - now).count();
    if (sec <= 0.0) return 0;
    const double ms = std::ceil(sec * 1000.0);
    return ms > 60000.0 ? 60000 : static_cast<int>(ms);
  }

  void check_task_deadlines(Clock::time_point now) {
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      Agent& a = agents_[i];
      if (a.state != Agent::State::kReady) continue;
      bool expired = false;
      for (run::Endpoint& ep : a.slots) {
        if (!ep.deadline_expired(now)) continue;
        expired = true;
        // The timed-out cell gets its own diagnosis; the connection reset
        // below requeues its siblings with a collateral reason.
        const std::size_t task = ep.task;
        ep.clear();
        bump("net.cells_requeued");
        ledger_->fail_attempt(
            task,
            "timed out after " +
                format_seconds(config_.task_timeout_seconds) + "s on agent " +
                a.addr.text(),
            now);
      }
      if (expired) {
        // A cell can't be killed remotely: retire the whole connection
        // (the agent drops orphaned results on EOF) and reconnect.
        connection_lost(i,
                        "agent " + a.addr.text() +
                            ": connection reset after a task timeout",
                        now);
      }
    }
  }

  void check_heartbeats(Clock::time_point now) {
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      Agent& a = agents_[i];
      if (a.state != Agent::State::kReady || now < a.next_ping) continue;
      if (a.pings_unanswered >= config_.heartbeat_misses) {
        connection_lost(i,
                        "agent " + a.addr.text() + ": missed " +
                            std::to_string(a.pings_unanswered) +
                            " heartbeats",
                        now);
        continue;
      }
      if (a.pings_unanswered > 0) bump("net.heartbeats_missed");
      if (!a.conn->send(wire::encode_frame(wire::FrameType::kPing,
                                           a.ping_seq++, 0, {}))) {
        connection_lost(
            i, "agent " + a.addr.text() + ": send failed (connection lost)",
            now);
        continue;
      }
      ++a.pings_unanswered;
      a.next_ping =
          now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        config_.heartbeat_interval_seconds));
    }
  }

  // ---- inbound frames -------------------------------------------------

  void on_readable(std::size_t index, Clock::time_point now) {
    Agent& a = agents_[index];
    const FrameConn::ReadStatus status = a.conn->fill();
    if (status == FrameConn::ReadStatus::kError) {
      connection_lost(index,
                      "agent " + a.addr.text() + ": read failed (" +
                          std::string(std::strerror(errno)) + ")",
                      now);
      return;
    }
    process_frames(index, now);
    if (!a.connected()) return;  // a frame retired the connection
    if (status == FrameConn::ReadStatus::kClosed) {
      if (a.state == Agent::State::kHandshaking) {
        // Rejected during handshake with no kError frame — treat like a
        // failed connect (counts against the connect budget).
        connect_failure(index, "agent closed connection during handshake",
                        now);
      } else {
        connection_lost(index,
                        "agent " + a.addr.text() + ": closed connection" +
                            (a.conn->frames().mid_frame() ? " mid-frame" : ""),
                        now);
      }
    }
  }

  void process_frames(std::size_t index, Clock::time_point now) {
    Agent& a = agents_[index];
    while (a.connected()) {
      wire::FrameHeader header;
      std::vector<std::uint8_t> body;
      std::string corrupt;
      const run::FrameAssembler::Status status =
          a.conn->frames().next(header, body, corrupt);
      if (status == run::FrameAssembler::Status::kNeedMore) return;
      if (status == run::FrameAssembler::Status::kCorrupt) {
        connection_lost(index,
                        "agent " + a.addr.text() + ": protocol corruption (" +
                            corrupt + ")",
                        now);
        return;
      }
      if (a.state == Agent::State::kHandshaking) {
        on_handshake_frame(index, header, body, now);
      } else {
        on_session_frame(index, header, body, now);
      }
    }
  }

  void on_handshake_frame(std::size_t index, const wire::FrameHeader& header,
                          const std::vector<std::uint8_t>& body,
                          Clock::time_point now) {
    Agent& a = agents_[index];
    if (header.type == wire::FrameType::kError) {
      std::string message;
      try {
        message = wire::decode_error(body);
      } catch (const Error&) {
        message = "(undecodable error payload)";
      }
      // The agent refused the handshake (version mismatch): permanent.
      agent_fatal(index, "agent " + a.addr.text() + " rejected handshake: " +
                             message);
      return;
    }
    if (header.type != wire::FrameType::kWelcome) {
      connection_lost(index,
                      "agent " + a.addr.text() +
                          ": unexpected frame before kWelcome",
                      now);
      return;
    }
    Welcome welcome;
    try {
      welcome = decode_welcome(body);
    } catch (const Error& e) {
      connection_lost(index,
                      "agent " + a.addr.text() + ": protocol corruption (" +
                          std::string(e.what()) + ")",
                      now);
      return;
    }
    on_welcome(index, welcome, now);
  }

  void on_session_frame(std::size_t index, const wire::FrameHeader& header,
                        const std::vector<std::uint8_t>& body,
                        Clock::time_point now) {
    Agent& a = agents_[index];
    if (header.type == wire::FrameType::kPong) {
      a.pings_unanswered = 0;
      return;
    }
    run::Endpoint* ep = find_endpoint(a, header);
    if (ep == nullptr) {
      connection_lost(index,
                      "agent " + a.addr.text() +
                          ": answer for a task this agent does not hold",
                      now);
      return;
    }
    switch (header.type) {
      case wire::FrameType::kResult: {
        sim::SimResult result;
        try {
          result = wire::decode_result(body);
        } catch (const Error& e) {
          connection_lost(index,
                          "agent " + a.addr.text() +
                              ": protocol corruption (" +
                              std::string(e.what()) + ")",
                          now);
          return;
        }
        complete(index, *ep, std::move(result), now);
        return;
      }
      case wire::FrameType::kError: {
        std::string message;
        try {
          message = wire::decode_error(body);
        } catch (const Error&) {
          message = "(undecodable error payload)";
        }
        // Deterministic failure: retrying reruns the same deterministic
        // simulation on another agent — fail the sweep fast.
        ledger_->fail_deterministic(ep->task, message);
      }
      case wire::FrameType::kFail: {
        std::string reason;
        try {
          reason = wire::decode_error(body);
        } catch (const Error&) {
          reason = "(undecodable failure payload)";
        }
        // Transient failure at the agent (its worker died): requeue this
        // attempt only; the connection stays up.
        const std::size_t task = ep->task;
        ep->clear();
        bump("net.cells_requeued");
        ledger_->fail_attempt(
            task, "agent " + a.addr.text() + ": " + reason, now);
        return;
      }
      default:
        connection_lost(index,
                        "agent " + a.addr.text() +
                            ": unexpected frame type in session",
                        now);
        return;
    }
  }

  run::Endpoint* find_endpoint(Agent& agent, const wire::FrameHeader& header) {
    for (run::Endpoint& ep : agent.slots) {
      if (ep.busy() && ep.task == header.task_id &&
          ep.attempt == header.attempt) {
        return &ep;
      }
    }
    return nullptr;
  }

  void complete(std::size_t index, run::Endpoint& ep, sim::SimResult result,
                Clock::time_point now) {
    const std::size_t task = ep.task;
    const double seconds =
        std::chrono::duration<double>(now - ep.dispatched).count();
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->complete_span(
          "cell:" +
              (sweep_[task].label.empty() ? std::to_string(task)
                                          : sweep_[task].label) +
              "#" + std::to_string(ep.attempt),
          "net", ep.dispatched, now,
          kTrackBase + static_cast<std::uint32_t>(index));
    }
    ep.clear();
    results_[task] = std::move(result);
    ledger_->complete(task);
    task_seconds_.push_back(seconds);
    stats_.worker_busy_seconds[index] += seconds;
    if (progress_) {
      run::SweepProgress p;
      p.done = ledger_->done_count();
      p.total = sweep_.size();
      p.elapsed_seconds = seconds_since(wall_start_);
      p.eta_seconds = p.elapsed_seconds / static_cast<double>(p.done) *
                      static_cast<double>(p.total - p.done);
      progress_(p);
    }
  }

  // ---- termination ----------------------------------------------------

  void throw_if_no_usable_agents() const {
    for (const Agent& a : agents_) {
      if (a.state != Agent::State::kFailed) return;
    }
    std::string detail;
    for (const Agent& a : agents_) {
      if (!detail.empty()) detail += "; ";
      detail += a.addr.text() + ": " + a.last_error;
    }
    throw Error("DistributedPool: no usable agents remain (" + detail + ")");
  }

  void finalize_task_stats() {
    stats_.tasks = sweep_.size();
    if (task_seconds_.empty()) return;
    stats_.task_min_seconds = task_seconds_.front();
    stats_.task_max_seconds = task_seconds_.front();
    for (const double s : task_seconds_) {
      stats_.cpu_seconds += s;
      stats_.task_min_seconds = std::min(stats_.task_min_seconds, s);
      stats_.task_max_seconds = std::max(stats_.task_max_seconds, s);
    }
    stats_.task_mean_seconds =
        stats_.cpu_seconds / static_cast<double>(task_seconds_.size());
  }

  const DistributedPoolConfig& config_;
  const std::vector<run::JobSpec>& sweep_;
  run::SweepStats& stats_;
  const run::ProgressCallback& progress_;
  obs::Tracer* tracer_;

  std::vector<Agent> agents_;
  std::optional<run::TaskLedger> ledger_;
  std::vector<std::vector<std::uint8_t>> payloads_;
  std::vector<sim::SimResult> results_;
  std::vector<double> task_seconds_;
  Clock::time_point wall_start_{};
};

}  // namespace

DistributedPool::DistributedPool(DistributedPoolConfig config)
    : config_(std::move(config)) {
  ESCHED_REQUIRE(config_.max_attempts >= 1,
                 "DistributedPool: max_attempts must be >= 1");
}

std::vector<HostPort> DistributedPool::agents_from_env() {
  const char* env = std::getenv("ESCHED_AGENTS");
  if (env == nullptr) return {};
  return parse_agent_list(env);
}

bool DistributedPool::any_agent_reachable(const std::vector<HostPort>& agents,
                                          double timeout_seconds) {
  for (const HostPort& addr : agents) {
    std::string error;
    Fd fd = connect_tcp_start(addr, error);
    if (!fd.valid()) continue;
    struct pollfd pfd = {fd.get(), POLLOUT, 0};
    const int timeout_ms = static_cast<int>(
        std::ceil(std::max(0.0, timeout_seconds) * 1000.0));
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) continue;  // timeout or error: try the next agent
    if (connect_tcp_finish(fd.get(), error)) return true;
  }
  return false;
}

std::vector<sim::SimResult> DistributedPool::run(
    const std::vector<run::JobSpec>& sweep) {
  stats_ = run::SweepStats{};
  stats_.tasks = sweep.size();
  if (sweep.empty()) return {};
  ESCHED_REQUIRE(!config_.agents.empty(),
                 "DistributedPool: no agents configured (pass "
                 "DistributedPoolConfig::agents or set ESCHED_AGENTS)");

  // Identical-cell dedup, exactly as in SubprocessPool::run: only
  // representatives of each distinct cell_key cross the wire; duplicates
  // copy the representative's (bit-identical) result afterwards.
  const run::CellGroups groups = run::group_cells(
      sweep, run::SweepRunner::prefix_sharing_default());
  std::vector<run::JobSpec> uniques;
  uniques.reserve(groups.unique_indices.size());
  for (const std::size_t i : groups.unique_indices) {
    uniques.push_back(sweep[i]);
  }

  run::ProgressCallback progress;
  if (progress_) {
    progress = [this,
                total = sweep.size()](const run::SweepProgress& inner) {
      run::SweepProgress p = inner;
      p.total = total;
      p.eta_seconds = p.done > 0 ? p.elapsed_seconds /
                                       static_cast<double>(p.done) *
                                       static_cast<double>(total - p.done)
                                 : 0.0;
      progress_(p);
    };
  }

  run::SigpipeGuard sigpipe;
  Coordinator coordinator(config_, uniques, stats_, progress, tracer_);
  std::vector<sim::SimResult> unique_results;
  try {
    unique_results = coordinator.run();
  } catch (...) {
    // Any failure — budget exhaustion, deterministic kError, a throwing
    // progress callback — closes every connection before propagating; the
    // agents discard orphaned work on EOF.
    coordinator.disconnect_all();
    throw;
  }

  std::vector<sim::SimResult> results;
  results.reserve(sweep.size());
  std::size_t done = uniques.size();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    results.push_back(unique_results[groups.rep[i]]);
    if (groups.unique_indices[groups.rep[i]] == i) continue;
    if (progress_) {
      run::SweepProgress p;
      p.done = ++done;
      p.total = sweep.size();
      p.elapsed_seconds = stats_.wall_seconds;
      p.eta_seconds = 0.0;
      progress_(p);
    }
  }
  stats_.tasks = sweep.size();
  stats_.simulated_cells = uniques.size();
  stats_.copied_cells = sweep.size() - uniques.size();
  return results;
}

}  // namespace esched::net
