// The TCP session protocol between a DistributedPool coordinator and
// esched-agentd, layered on the run/wire frame grammar.
//
// Session establishment (before any kJob may flow):
//
//   coordinator                         agentd
//       | ---- kHello {net magic, proto} ---> |
//       | <--- kWelcome {proto, slots} ------ |   versions match
//       | <--- kError "…version…" + close --- |   versions differ
//
// The kHello payload leads with its own magic ("ESN1") so an agentd port
// probed by a non-esched client fails the handshake loudly instead of
// being interpreted as a job stream. kNetProtocolVersion covers the
// *session* semantics (handshake, heartbeats, kFail) and is checked by
// both sides; the frame-level wire::kVersion is checked per frame as
// always.
//
// After the handshake: the coordinator sends kJob frames (at most
// `slots` in flight) and kPing heartbeats (task_id carries a sequence
// number the kPong echoes); the agent answers kResult (success), kError
// (deterministic failure — coordinator fails fast), or kFail (transient
// failure at the agent, e.g. its esched-worker died — coordinator
// requeues the attempt). Either side closing the socket ends the
// session; the coordinator requeues every in-flight cell of a dead
// session.
#pragma once

#include <cstdint>
#include <vector>

#include "run/wire.hpp"

namespace esched::net {

/// "ESN1": the first payload word of every kHello.
inline constexpr std::uint32_t kNetMagic = 0x45534e31u;

/// Session protocol version; bumped when handshake/heartbeat/kFail
/// semantics change incompatibly.
inline constexpr std::uint32_t kNetProtocolVersion = 1;

struct Hello {
  std::uint32_t protocol = kNetProtocolVersion;
};

struct Welcome {
  std::uint32_t protocol = kNetProtocolVersion;
  std::uint32_t slots = 0;  ///< concurrent kJob frames the agent accepts
};

/// Payload codecs (throw esched::Error on malformed payloads, like every
/// wire codec; decode_hello additionally rejects a bad net magic).
std::vector<std::uint8_t> encode_hello(const Hello& hello);
Hello decode_hello(const std::vector<std::uint8_t>& payload);
std::vector<std::uint8_t> encode_welcome(const Welcome& welcome);
Welcome decode_welcome(const std::vector<std::uint8_t>& payload);

}  // namespace esched::net
