// esched-agentd: the remote half of the distributed sweep
// (net/distributed.hpp).
//
// One agentd serves any number of coordinator connections from a
// single-threaded poll() loop. Per connection: a version handshake
// (kHello -> kWelcome, or kError + close on a protocol mismatch),
// kPing -> kPong heartbeats, and kJob frames. Jobs are *routed, not
// rewritten*: the original frame bytes — carrying the coordinator's
// task_id and attempt — are forwarded verbatim to a pool of persistent
// esched-worker children (spawned with the same run/endpoint.hpp
// primitives as the local SubprocessPool), so (task, attempt)-keyed
// fault injection and the wire contract behave identically however many
// machines sit between the sweep and the simulation. Worker answers
// (kResult/kError) are forwarded back to the owning coordinator; a
// worker death is answered with kFail (transient — the coordinator
// requeues) and the slot respawned. Results for a coordinator that has
// disconnected are discarded.
//
// ESCHED_FAULT (run/fault.hpp): the agentd acts on the net* bands —
// netdrop (close the coordinator connection on job receipt), netslow
// (hold all outbound frames, results and pongs alike, for
// netslow_seconds), netgarbage (flip a byte of the answer after its CRC
// was computed) — and ignores crash/hang/garbage, which its workers,
// inheriting the environment, act on themselves. One plan therefore
// drives both layers, deterministically, per (task, attempt).
//
// stdout carries exactly one machine-readable line:
//   esched-agentd: ready bind=<host> port=<port> slots=<n>
// (tests parse "port=" to discover an ephemeral --port 0). Diagnostics
// go to stderr.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "net/frame_io.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "run/endpoint.hpp"
#include "run/fault.hpp"
#include "run/wire.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

using namespace esched;
namespace wire = run::wire;
using net::FrameConn;
using Clock = run::EndpointClock;

constexpr int kConfigError = 2;

struct Options {
  std::string bind_host = "127.0.0.1";
  std::uint16_t port = 9555;
  std::size_t slots = 0;  ///< 0 = hardware concurrency
  std::string worker_path;
  bool verbose = false;
};

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage: esched-agentd [--bind HOST] [--port PORT] [--slots N]\n"
      "                     [--worker PATH] [--verbose]\n"
      "\n"
      "Serve sweep cells to DistributedPool coordinators (--isolate=tcp).\n"
      "  --bind HOST    listen address (default 127.0.0.1; use 0.0.0.0 to\n"
      "                 accept coordinators from other machines)\n"
      "  --port PORT    listen port (default 9555; 0 picks an ephemeral\n"
      "                 port, printed on the ready line)\n"
      "  --slots N      concurrent esched-worker subprocesses (default:\n"
      "                 hardware concurrency)\n"
      "  --worker PATH  esched-worker binary (default: ESCHED_WORKER or a\n"
      "                 sibling of this executable)\n");
  std::exit(code);
}

/// One coordinator connection.
struct Client {
  FrameConn conn;
  bool handshaken = false;
  /// Flush-then-close (handshake rejection): stop reading, close once
  /// the outbox drains.
  bool closing = false;
  /// netslow: outbound frames queue in `held` until hold_until.
  Clock::time_point hold_until{};
  std::vector<std::vector<std::uint8_t>> held;

  explicit Client(net::Fd fd) : conn(std::move(fd)) {}

  bool holding(Clock::time_point now) const { return now < hold_until; }
};

/// One esched-worker slot (the process may be dead between jobs; it is
/// respawned on demand).
struct Slot {
  run::WorkerProcess proc;
  run::FrameAssembler frames;
  bool busy = false;
  std::uint64_t client = 0;  ///< owner of the in-flight job
  std::uint32_t task = 0;
  std::uint32_t attempt = 0;
  bool garbage = false;  ///< netgarbage: corrupt the answer
};

/// A job waiting for a free slot.
struct Job {
  std::uint64_t client = 0;
  std::vector<std::uint8_t> frame;  ///< original kJob frame, forwarded as-is
  bool garbage = false;
};

class Agentd {
 public:
  Agentd(Options options, run::FaultPlan faults)
      : options_(std::move(options)), faults_(faults) {}

  int serve() {
    listener_ = net::listen_tcp(options_.bind_host, options_.port);
    const std::uint16_t port = net::local_port(listener_.get());
    slots_.resize(options_.slots);
    std::printf("esched-agentd: ready bind=%s port=%u slots=%zu\n",
                options_.bind_host.c_str(), static_cast<unsigned>(port),
                slots_.size());
    std::fflush(stdout);

    run::SigpipeGuard sigpipe;
    for (;;) step();
  }

 private:
  // ---- the poll loop --------------------------------------------------

  void step() {
    std::vector<struct pollfd> fds;
    // What each pollfd refers to: client id (>0) or ~slot index for
    // workers; 0 is the listener.
    std::vector<std::uint64_t> refs;
    fds.push_back({listener_.get(), POLLIN, 0});
    refs.push_back(0);
    for (auto& [id, client] : clients_) {
      int events = 0;
      if (!client.closing) events |= POLLIN;
      if (client.conn.wants_write()) events |= POLLOUT;
      if (events == 0) continue;  // closing and fully flushed: reaped below
      fds.push_back({client.conn.fd(), static_cast<short>(events), 0});
      refs.push_back(id);
    }
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].proc.alive()) continue;
      fds.push_back({slots_[i].proc.from_child, POLLIN, 0});
      refs.push_back(~static_cast<std::uint64_t>(i));
    }

    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          next_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) return;
      std::fprintf(stderr, "esched-agentd: poll failed: %s\n",
                   std::strerror(errno));
      std::exit(kConfigError);
    }
    for (std::size_t k = 0; k < fds.size() && rc > 0; ++k) {
      if (fds[k].revents == 0) continue;
      const std::uint64_t ref = refs[k];
      if (k == 0) {
        accept_clients();
      } else if (ref > clients_watermark_) {
        on_worker_readable(static_cast<std::size_t>(~ref));
      } else if (clients_.count(ref) != 0) {
        on_client_event(ref, fds[k].revents);
      }
    }
    release_holds();
    reap_closed();
  }

  /// Earliest netslow hold release; -1 (wait for fds) when none pending.
  int next_timeout_ms() const {
    bool have = false;
    Clock::time_point nearest{};
    for (const auto& [id, client] : clients_) {
      if (client.held.empty()) continue;
      if (!have || client.hold_until < nearest) {
        nearest = client.hold_until;
        have = true;
      }
    }
    if (!have) return -1;
    const double sec =
        std::chrono::duration<double>(nearest - Clock::now()).count();
    if (sec <= 0.0) return 0;
    return static_cast<int>(sec * 1000.0) + 1;
  }

  // ---- clients --------------------------------------------------------

  void accept_clients() {
    for (;;) {
      net::Fd fd = net::accept_tcp(listener_.get());
      if (!fd.valid()) return;
      const std::uint64_t id = next_client_id_++;
      clients_.emplace(id, Client(std::move(fd)));
      if (options_.verbose) {
        std::fprintf(stderr, "esched-agentd: client %llu connected\n",
                     static_cast<unsigned long long>(id));
      }
    }
  }

  void on_client_event(std::uint64_t id, short revents) {
    Client& client = clients_.at(id);
    if ((revents & POLLOUT) != 0 && !client.conn.flush()) {
      drop_client(id, "send failed");
      return;
    }
    if (client.closing || (revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      return;
    }
    const FrameConn::ReadStatus status = client.conn.fill();
    process_client_frames(id);
    if (clients_.count(id) == 0) return;  // a frame dropped the client
    if (status != FrameConn::ReadStatus::kOk) {
      drop_client(id, status == FrameConn::ReadStatus::kClosed
                          ? "disconnected"
                          : "read failed");
    }
  }

  void process_client_frames(std::uint64_t id) {
    while (clients_.count(id) != 0) {
      Client& client = clients_.at(id);
      if (client.closing) return;
      wire::FrameHeader header;
      std::vector<std::uint8_t> body;
      std::string corrupt;
      const run::FrameAssembler::Status status =
          client.conn.frames().next(header, body, corrupt);
      if (status == run::FrameAssembler::Status::kNeedMore) return;
      if (status == run::FrameAssembler::Status::kCorrupt) {
        drop_client(id, "protocol corruption (" + corrupt + ")");
        return;
      }
      if (!client.handshaken) {
        on_hello(id, header, body);
        continue;
      }
      switch (header.type) {
        case wire::FrameType::kPing:
          send_to_client(id, wire::encode_frame(wire::FrameType::kPong,
                                                header.task_id,
                                                header.attempt, {}));
          break;
        case wire::FrameType::kJob:
          on_job(id, header, body);
          break;
        default:
          drop_client(id, "unexpected frame type in session");
          return;
      }
    }
  }

  void on_hello(std::uint64_t id, const wire::FrameHeader& header,
                const std::vector<std::uint8_t>& body) {
    Client& client = clients_.at(id);
    net::Hello hello;
    bool ok = header.type == wire::FrameType::kHello;
    std::string error = "esched-agentd: expected kHello";
    if (ok) {
      try {
        hello = net::decode_hello(body);
      } catch (const Error& e) {
        ok = false;
        error = e.what();
      }
    }
    if (ok && hello.protocol != net::kNetProtocolVersion) {
      ok = false;
      error = "esched-agentd: protocol version mismatch (agent=" +
              std::to_string(net::kNetProtocolVersion) +
              ", coordinator=" + std::to_string(hello.protocol) + ")";
    }
    if (!ok) {
      std::fprintf(stderr, "esched-agentd: rejecting client %llu: %s\n",
                   static_cast<unsigned long long>(id), error.c_str());
      client.conn.send(
          wire::encode_frame(wire::FrameType::kError, 0, 0,
                             wire::encode_error(error)));
      client.closing = true;  // flush the rejection, then close
      return;
    }
    net::Welcome welcome;
    welcome.protocol = net::kNetProtocolVersion;
    welcome.slots = static_cast<std::uint32_t>(slots_.size());
    client.handshaken = true;
    send_to_client(id, wire::encode_frame(wire::FrameType::kWelcome, 0, 0,
                                          net::encode_welcome(welcome)));
  }

  void on_job(std::uint64_t id, const wire::FrameHeader& header,
              const std::vector<std::uint8_t>& body) {
    const run::FaultPlan::Action fault =
        faults_.decide(header.task_id, header.attempt);
    if (fault == run::FaultPlan::Action::kNetDrop) {
      // Injected agent death: vanish from this coordinator's perspective
      // (abrupt close, in-flight work of this client discarded).
      drop_client(id, "fault injection: netdrop");
      return;
    }
    if (fault == run::FaultPlan::Action::kNetSlow) {
      Client& client = clients_.at(id);
      const Clock::time_point until =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 faults_.net_slow_seconds));
      client.hold_until = std::max(client.hold_until, until);
    }
    Job job;
    job.client = id;
    job.frame = wire::encode_frame(wire::FrameType::kJob, header.task_id,
                                   header.attempt, body);
    job.garbage = fault == run::FaultPlan::Action::kNetGarbage;
    queue_.push_back(std::move(job));
    pump();
  }

  /// Queue a frame to a coordinator, honouring a netslow hold. A missing
  /// client (already disconnected) discards silently.
  void send_to_client(std::uint64_t id,
                      std::vector<std::uint8_t> frame) {
    const auto it = clients_.find(id);
    if (it == clients_.end() || it->second.closing) return;
    Client& client = it->second;
    if (client.holding(Clock::now()) || !client.held.empty()) {
      client.held.push_back(std::move(frame));
      return;
    }
    if (!client.conn.send(frame)) drop_client(id, "send failed");
  }

  void release_holds() {
    const Clock::time_point now = Clock::now();
    std::vector<std::uint64_t> drop;
    for (auto& [id, client] : clients_) {
      if (client.held.empty() || client.holding(now)) continue;
      for (std::vector<std::uint8_t>& frame : client.held) {
        if (!client.conn.send(frame)) {
          drop.push_back(id);
          break;
        }
      }
      client.held.clear();
    }
    for (const std::uint64_t id : drop) drop_client(id, "send failed");
  }

  /// Close clients that finished flushing a handshake rejection.
  void reap_closed() {
    std::vector<std::uint64_t> done;
    for (auto& [id, client] : clients_) {
      if (client.closing && !client.conn.wants_write()) done.push_back(id);
    }
    for (const std::uint64_t id : done) drop_client(id, "rejected");
  }

  void drop_client(std::uint64_t id, const std::string& why) {
    if (options_.verbose) {
      std::fprintf(stderr, "esched-agentd: client %llu dropped (%s)\n",
                   static_cast<unsigned long long>(id), why.c_str());
    }
    clients_.erase(id);
    // Queued jobs of a dead coordinator will never be collected: drop
    // them. In-flight jobs run to completion; their answers are
    // discarded by send_to_client when they arrive.
    std::deque<Job> keep;
    for (Job& job : queue_) {
      if (job.client != id) keep.push_back(std::move(job));
    }
    queue_.swap(keep);
  }

  // ---- workers --------------------------------------------------------

  [[noreturn]] void exec_failure() {
    std::fprintf(stderr,
                 "esched-agentd: cannot execute worker binary \"%s\" "
                 "(exit 127 from exec); set ESCHED_WORKER or build the "
                 "esched-worker target\n",
                 options_.worker_path.c_str());
    std::exit(kConfigError);
  }

  /// Move queued jobs into free slots, spawning workers on demand.
  void pump() {
    for (std::size_t i = 0; i < slots_.size() && !queue_.empty(); ++i) {
      Slot& slot = slots_[i];
      if (slot.busy) continue;
      if (!slot.proc.alive()) {
        try {
          slot.proc = run::spawn_worker(options_.worker_path);
          slot.frames.reset();
        } catch (const Error& e) {
          // fork/pipe exhaustion: transient — bounce the job back.
          Job job = std::move(queue_.front());
          queue_.pop_front();
          fail_job(job, std::string("agent cannot spawn worker: ") +
                            e.what());
          continue;
        }
      }
      Job job = std::move(queue_.front());
      queue_.pop_front();
      if (!run::write_all_fd(slot.proc.to_child, job.frame.data(),
                             job.frame.size())) {
        int status = -1;
        const std::string death =
            run::kill_and_reap_worker(slot.proc, &status);
        if (status == 127) exec_failure();
        fail_job(job, "worker died before accepting the job (" + death + ")");
        --i;  // retry this slot with the next job
        continue;
      }
      const wire::FrameHeader header = wire::decode_header(job.frame.data());
      slot.busy = true;
      slot.client = job.client;
      slot.task = header.task_id;
      slot.attempt = header.attempt;
      slot.garbage = job.garbage;
    }
  }

  /// Answer kFail for a job that could not be run (transient: the
  /// coordinator requeues the attempt, possibly on another agent).
  void fail_job(const Job& job, const std::string& reason) {
    const wire::FrameHeader header = wire::decode_header(job.frame.data());
    send_to_client(job.client,
                   wire::encode_frame(wire::FrameType::kFail, header.task_id,
                                      header.attempt,
                                      wire::encode_error(reason)));
  }

  void on_worker_readable(std::size_t index) {
    Slot& slot = slots_[index];
    std::uint8_t chunk[65536];
    const ssize_t n = ::read(slot.proc.from_child, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) return;
      on_worker_gone(index,
                     "read failed: " + std::string(std::strerror(errno)));
      return;
    }
    if (n == 0) {
      on_worker_gone(index, slot.frames.mid_frame() ? "mid-frame" : "");
      return;
    }
    slot.frames.append(chunk, static_cast<std::size_t>(n));
    process_worker_frames(index);
  }

  void on_worker_gone(std::size_t index, const std::string& detail) {
    Slot& slot = slots_[index];
    int status = -1;
    std::string death = run::reap_worker(slot.proc, &status);
    if (!detail.empty()) death += ", " + detail;
    if (status == 127) exec_failure();
    std::fprintf(stderr, "esched-agentd: worker %zu %s\n", index,
                 death.c_str());
    if (slot.busy) {
      const std::uint64_t client = slot.client;
      const std::uint32_t task = slot.task;
      const std::uint32_t attempt = slot.attempt;
      slot.busy = false;
      send_to_client(client, wire::encode_frame(
                                 wire::FrameType::kFail, task, attempt,
                                 wire::encode_error("worker " + death +
                                                    " before answering")));
    }
    slot.frames.reset();
    pump();  // a queued job may now respawn this slot
  }

  void process_worker_frames(std::size_t index) {
    Slot& slot = slots_[index];
    while (slot.proc.alive()) {
      wire::FrameHeader header;
      std::vector<std::uint8_t> body;
      std::string corrupt;
      const run::FrameAssembler::Status status =
          slot.frames.next(header, body, corrupt);
      if (status == run::FrameAssembler::Status::kNeedMore) return;
      const bool mismatch =
          status == run::FrameAssembler::Status::kFrame &&
          (!slot.busy || header.task_id != slot.task ||
           header.attempt != slot.attempt ||
           (header.type != wire::FrameType::kResult &&
            header.type != wire::FrameType::kError));
      if (status == run::FrameAssembler::Status::kCorrupt || mismatch) {
        int ignored = -1;
        const std::string death =
            run::kill_and_reap_worker(slot.proc, &ignored);
        if (mismatch) corrupt = "answer for a task this worker does not hold";
        std::fprintf(stderr,
                     "esched-agentd: worker %zu protocol corruption (%s)\n",
                     index, corrupt.c_str());
        if (slot.busy) {
          slot.busy = false;
          send_to_client(slot.client,
                         wire::encode_frame(
                             wire::FrameType::kFail, slot.task, slot.attempt,
                             wire::encode_error("protocol corruption (" +
                                                corrupt + "; worker " +
                                                death + ")")));
        }
        slot.frames.reset();
        pump();
        return;
      }
      // Forward the answer (kResult or kError) to the owning coordinator,
      // applying a pending netgarbage corruption after the CRC.
      std::vector<std::uint8_t> out = wire::encode_frame(
          header.type, header.task_id, header.attempt, body);
      if (slot.garbage && !body.empty()) {
        out[wire::kHeaderSize] ^= 0xFF;
      }
      const std::uint64_t client = slot.client;
      slot.busy = false;
      slot.garbage = false;
      send_to_client(client, std::move(out));
      pump();
    }
  }

  Options options_;
  run::FaultPlan faults_;
  net::Fd listener_;
  std::map<std::uint64_t, Client> clients_;
  std::vector<Slot> slots_;
  std::deque<Job> queue_;
  std::uint64_t next_client_id_ = 1;
  /// Client ids stay below this; worker refs (~index) stay above it.
  static constexpr std::uint64_t clients_watermark_ = 1ull << 63;
};

Options parse_options(int argc, char** argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  if (args.has("help")) usage(0);
  if (!args.positional().empty()) {
    std::fprintf(stderr, "esched-agentd: unexpected argument \"%s\"\n",
                 args.positional().front().c_str());
    usage(kConfigError);
  }
  Options options;
  options.bind_host = args.get_or("bind", options.bind_host);
  const long long port = args.get_int_or("port", options.port);
  ESCHED_REQUIRE(port >= 0 && port <= 65535,
                 "esched-agentd: --port must be in [0, 65535]");
  options.port = static_cast<std::uint16_t>(port);
  const long long slots =
      args.get_int_or("slots",
                      static_cast<long long>(std::max(
                          1u, std::thread::hardware_concurrency())));
  ESCHED_REQUIRE(slots >= 1 && slots <= 1024,
                 "esched-agentd: --slots must be in [1, 1024]");
  options.slots = static_cast<std::size_t>(slots);
  options.worker_path = args.get_or(
      "worker", run::find_sibling_binary("ESCHED_WORKER", "esched-worker"));
  ESCHED_REQUIRE(!options.worker_path.empty(),
                 "esched-agentd: esched-worker binary not found (pass "
                 "--worker or set ESCHED_WORKER)");
  options.verbose = args.has("verbose");
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options options = parse_options(argc, argv);
    const run::FaultPlan faults = run::FaultPlan::from_env();
    Agentd agentd(std::move(options), faults);
    return agentd.serve();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "esched-agentd: %s\n", e.what());
    return kConfigError;
  }
}
