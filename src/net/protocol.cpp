#include "net/protocol.hpp"

#include "util/error.hpp"

namespace esched::net {

std::vector<std::uint8_t> encode_hello(const Hello& hello) {
  run::wire::ByteWriter w;
  w.u32(kNetMagic);
  w.u32(hello.protocol);
  return w.take();
}

Hello decode_hello(const std::vector<std::uint8_t>& payload) {
  run::wire::ByteReader r(payload);
  const std::uint32_t magic = r.u32();
  if (magic != kNetMagic) {
    throw Error("net: bad hello magic 0x" + std::to_string(magic) +
                " (not an esched coordinator)");
  }
  Hello hello;
  hello.protocol = r.u32();
  r.expect_end();
  return hello;
}

std::vector<std::uint8_t> encode_welcome(const Welcome& welcome) {
  run::wire::ByteWriter w;
  w.u32(welcome.protocol);
  w.u32(welcome.slots);
  return w.take();
}

Welcome decode_welcome(const std::vector<std::uint8_t>& payload) {
  run::wire::ByteReader r(payload);
  Welcome welcome;
  welcome.protocol = r.u32();
  welcome.slots = r.u32();
  r.expect_end();
  return welcome;
}

}  // namespace esched::net
