// Wire frames over non-blocking stream sockets.
//
// run/wire.hpp defines the frame grammar and run/endpoint.hpp the
// incremental reassembly; this layer adds the two things a socket needs
// that a pipe supervisor did not:
//
//  * Partial *writes*. A pipe write from the supervisor either completes
//    or the worker is dead; a socket send can accept half a frame and
//    return EAGAIN. FrameConn keeps an outbound byte queue and flushes it
//    whenever poll() reports writability, so callers enqueue whole frames
//    and never block.
//  * Partial *reads*, explicitly surfaced. fill() drains whatever the
//    kernel has and feeds the FrameAssembler; frames() then yields
//    complete CRC-verified frames, however the bytes were chunked by the
//    network (net_frame_test reassembles byte-by-byte).
//
// Byte counters: every read/write is accounted to the net.bytes_rx /
// net.bytes_tx obs counters (gated, like every obs site).
#pragma once

#include <cstdint>
#include <vector>

#include "net/socket.hpp"
#include "run/endpoint.hpp"

namespace esched::net {

/// One framed, non-blocking stream connection.
class FrameConn {
 public:
  explicit FrameConn(Fd fd) : fd_(std::move(fd)) {}

  int fd() const { return fd_.get(); }
  bool valid() const { return fd_.valid(); }
  void close() { fd_.reset(); }

  /// True when outbound bytes are queued — poll this fd for POLLOUT.
  bool wants_write() const { return cursor_ < outbox_.size(); }

  /// Queue a complete frame and opportunistically flush. False when the
  /// connection failed (the caller must discard it).
  bool send(const std::vector<std::uint8_t>& frame);

  /// Flush queued bytes (on POLLOUT). False on connection failure.
  bool flush();

  enum class ReadStatus {
    kOk,      ///< zero or more bytes consumed; connection healthy
    kClosed,  ///< orderly EOF from the peer
    kError,   ///< read failed; connection must be discarded
  };

  /// Drain readable bytes into the frame assembler (on POLLIN).
  ReadStatus fill();

  /// The reassembly buffer fill() feeds; call next() on it to extract
  /// complete verified frames.
  run::FrameAssembler& frames() { return frames_; }

  std::uint64_t bytes_tx() const { return bytes_tx_; }
  std::uint64_t bytes_rx() const { return bytes_rx_; }

 private:
  Fd fd_;
  run::FrameAssembler frames_;
  std::vector<std::uint8_t> outbox_;
  std::size_t cursor_ = 0;  ///< first unsent outbox_ byte
  std::uint64_t bytes_tx_ = 0;
  std::uint64_t bytes_rx_ = 0;
};

}  // namespace esched::net
