#include "net/socket.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/error.hpp"

namespace esched::net {

namespace {

constexpr const char* kAcceptedForms =
    " (accepted forms: host:port, ip:port, or [ipv6]:port, e.g. "
    "\"127.0.0.1:9555\", \"node1:9555\", \"[::1]:9555\"; port in "
    "[1, 65535]; comma-separated for multiple agents)";

[[noreturn]] void bad_entry(const std::string& text, const std::string& why) {
  throw Error("agent address \"" + text + "\": " + why + kAcceptedForms);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// getaddrinfo wrapper; frees the list via the returned guard.
struct AddrList {
  addrinfo* head = nullptr;
  ~AddrList() {
    if (head != nullptr) ::freeaddrinfo(head);
  }
};

bool resolve(const std::string& host, std::uint16_t port, int ai_flags,
             AddrList& out, std::string& error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = ai_flags;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &out.head);
  if (rc != 0) {
    error = "cannot resolve \"" + host + "\": " + ::gai_strerror(rc);
    return false;
  }
  return true;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

HostPort parse_host_port(const std::string& text) {
  if (text.empty()) bad_entry(text, "empty entry");
  std::string host;
  std::string port_text;
  if (text.front() == '[') {
    // Bracketed IPv6: [addr]:port.
    const std::size_t close = text.find(']');
    if (close == std::string::npos) bad_entry(text, "unterminated '['");
    host = text.substr(1, close - 1);
    if (close + 1 >= text.size() || text[close + 1] != ':') {
      bad_entry(text, "missing :port after ']'");
    }
    port_text = text.substr(close + 2);
  } else {
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos) bad_entry(text, "missing :port");
    if (text.find(':') != colon) {
      bad_entry(text, "bare IPv6 addresses must be bracketed");
    }
    host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
  }
  if (host.empty()) bad_entry(text, "empty host");
  if (port_text.empty()) bad_entry(text, "empty port");
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0') {
    bad_entry(text, "port \"" + port_text + "\" is not a number");
  }
  if (port < 1 || port > 65535) {
    bad_entry(text, "port " + port_text + " outside [1, 65535]");
  }
  HostPort hp;
  hp.host = host;
  hp.port = static_cast<std::uint16_t>(port);
  return hp;
}

std::vector<HostPort> parse_agent_list(const std::string& csv) {
  std::vector<HostPort> agents;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string entry = csv.substr(pos, comma - pos);
    pos = comma + 1;
    agents.push_back(parse_host_port(entry));
  }
  return agents;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ESCHED_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "fcntl(O_NONBLOCK) failed: " +
                     std::string(std::strerror(errno)));
}

Fd listen_tcp(const std::string& bind_host, std::uint16_t port,
              int backlog) {
  AddrList addrs;
  std::string error;
  if (!resolve(bind_host, port, AI_PASSIVE, addrs, error)) {
    throw Error("listen_tcp: " + error);
  }
  std::string last_error = "no addresses";
  for (addrinfo* ai = addrs.head; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last_error = std::string("bind: ") + std::strerror(errno);
      continue;
    }
    if (::listen(fd.get(), backlog) != 0) {
      last_error = std::string("listen: ") + std::strerror(errno);
      continue;
    }
    set_nonblocking(fd.get());
    return fd;
  }
  throw Error("listen_tcp: cannot listen on " + bind_host + ":" +
              std::to_string(port) + ": " + last_error);
}

Fd accept_tcp(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      Fd out(fd);
      set_nonblocking(fd);
      set_nodelay(fd);
      return out;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd();
    // Transient per-connection failures (the peer aborted before we got
    // to it) are not listener failures.
    if (errno == ECONNABORTED) return Fd();
    throw Error("accept failed: " + std::string(std::strerror(errno)));
  }
}

std::uint16_t local_port(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof addr;
  ESCHED_REQUIRE(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "getsockname failed: " + std::string(std::strerror(errno)));
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  return 0;
}

Fd connect_tcp_start(const HostPort& addr, std::string& error) {
  AddrList addrs;
  if (!resolve(addr.host, addr.port, 0, addrs, error)) return Fd();
  std::string last_error = "no addresses";
  for (addrinfo* ai = addrs.head; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    set_nonblocking(fd.get());
    set_nodelay(fd.get());
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) == 0 ||
        errno == EINPROGRESS) {
      return fd;
    }
    last_error = std::string("connect: ") + std::strerror(errno);
  }
  error = last_error;
  return Fd();
}

bool connect_tcp_finish(int fd, std::string& error) {
  int soerr = 0;
  socklen_t len = sizeof soerr;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0) {
    error = std::string("getsockopt(SO_ERROR): ") + std::strerror(errno);
    return false;
  }
  if (soerr != 0) {
    error = std::strerror(soerr);
    return false;
  }
  return true;
}

}  // namespace esched::net
