#include "net/frame_io.hpp"

#include <cerrno>

#include <unistd.h>

#include "obs/registry.hpp"

namespace esched::net {

namespace {

void bump_bytes(const char* name, std::uint64_t n) {
  if (n == 0 || !obs::counters_enabled()) return;
  obs::Registry::global().counter(name).add(n);
}

}  // namespace

bool FrameConn::send(const std::vector<std::uint8_t>& frame) {
  if (!fd_.valid()) return false;
  // Compact the queue once everything before the cursor is sent, so the
  // outbox never grows without bound across a long sweep.
  if (cursor_ == outbox_.size()) {
    outbox_.clear();
    cursor_ = 0;
  }
  outbox_.insert(outbox_.end(), frame.begin(), frame.end());
  return flush();
}

bool FrameConn::flush() {
  if (!fd_.valid()) return false;
  while (cursor_ < outbox_.size()) {
    const ssize_t n = ::write(fd_.get(), outbox_.data() + cursor_,
                              outbox_.size() - cursor_);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // EPIPE, ECONNRESET, ...
    }
    cursor_ += static_cast<std::size_t>(n);
    bytes_tx_ += static_cast<std::uint64_t>(n);
    bump_bytes("net.bytes_tx", static_cast<std::uint64_t>(n));
  }
  return true;
}

FrameConn::ReadStatus FrameConn::fill() {
  if (!fd_.valid()) return ReadStatus::kError;
  for (;;) {
    std::uint8_t chunk[65536];
    const ssize_t n = ::read(fd_.get(), chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::kOk;
      return ReadStatus::kError;
    }
    if (n == 0) return ReadStatus::kClosed;
    frames_.append(chunk, static_cast<std::size_t>(n));
    bytes_rx_ += static_cast<std::uint64_t>(n);
    bump_bytes("net.bytes_rx", static_cast<std::uint64_t>(n));
    if (static_cast<std::size_t>(n) < sizeof chunk) return ReadStatus::kOk;
  }
}

}  // namespace esched::net
