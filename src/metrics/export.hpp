// Machine-readable export of simulation results: per-job CSV, daily-bill
// CSV, time-of-day curve CSV, and a JSON summary. Downstream analysis
// (plotting the paper's figures with real tooling) starts here.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/result.hpp"

namespace esched::metrics {

/// One row per job: id, user, submit, start, finish, wait, nodes,
/// power_per_node. Header included.
void write_jobs_csv(std::ostream& out, const sim::SimResult& result);

/// One row per day: day index, bill.
void write_daily_bills_csv(std::ostream& out, const sim::SimResult& result);

/// One row per time-of-day bin: seconds-of-day, power watts, utilization
/// fraction. Requires the result to carry curves (record_daily_curves).
void write_daily_curves_csv(std::ostream& out, const sim::SimResult& result);

/// A flat JSON object with the scalar summary of a run: policy, trace,
/// bill/energy totals and per-period splits, utilization, mean wait.
/// Stable key order; no external JSON dependency.
void write_summary_json(std::ostream& out, const sim::SimResult& result);

/// Convenience: write all four files under `prefix` ("<prefix>_jobs.csv",
/// "_daily.csv", "_curves.csv", "_summary.json"); curve file is skipped
/// when curves were not recorded.
void export_all(const std::string& prefix, const sim::SimResult& result);

}  // namespace esched::metrics
