// Evaluation metrics (§5.5 of the paper): system utilization (Eq. 3),
// average job wait time, and electricity-bill savings — overall and per
// 30-day month.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/result.hpp"

namespace esched::metrics {

/// Overall system utilization per the paper's Eq. 3:
///   sum_i (c_i - s_i) * n_i / (N * T)
/// with T the span from first submission to last completion.
double overall_utilization(const sim::SimResult& result);

/// Utilization per 30-day month: busy node-seconds falling inside the
/// month over N * (overlap of the month with the accounting horizon).
/// Months the horizon never touches report 0.
std::vector<double> monthly_utilization(const sim::SimResult& result,
                                        std::size_t months);

/// Mean wait time (seconds) of jobs grouped by their submission month.
/// Months with no submissions report 0.
std::vector<double> monthly_mean_wait(const sim::SimResult& result,
                                      std::size_t months);

/// Electricity bill per 30-day month (later days fold into the last month).
std::vector<Money> monthly_bill(const sim::SimResult& result,
                                std::size_t months);

/// Relative bill saving of `candidate` vs `baseline` in percent:
///   (bill_baseline - bill_candidate) / bill_baseline * 100.
/// Positive means the candidate is cheaper. 0 when the baseline bill is 0.
double bill_saving_percent(const sim::SimResult& baseline,
                           const sim::SimResult& candidate);

/// Monthly version of bill_saving_percent.
std::vector<double> monthly_bill_saving_percent(
    const sim::SimResult& baseline, const sim::SimResult& candidate,
    std::size_t months);

/// Number of 30-day months needed to cover the accounting horizon.
std::size_t horizon_months(const sim::SimResult& result);

/// Consistency checks on a simulation result; throws esched::Error on the
/// first violated invariant (start >= submit, finish > start, job fits the
/// machine, horizon covers all records, at no instant are more than N
/// nodes allocated). Used by tests and available to applications.
void validate_result(const sim::SimResult& result);

}  // namespace esched::metrics
