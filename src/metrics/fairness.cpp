#include "metrics/fairness.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace esched::metrics {

double bounded_slowdown(const sim::JobRecord& record, DurationSec tau) {
  ESCHED_REQUIRE(tau > 0, "tau must be positive");
  const auto run = static_cast<double>(record.finish - record.start);
  const auto wait = static_cast<double>(record.wait());
  const double denom = std::max(run, static_cast<double>(tau));
  return std::max(1.0, (wait + run) / denom);
}

double jain_index(std::span<const double> values) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : values) {
    ESCHED_REQUIRE(v >= 0.0, "jain_index needs non-negative values");
    sum += v;
    sum_sq += v * v;
  }
  if (values.empty() || sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

FairnessReport fairness_report(const sim::SimResult& result,
                               DurationSec tau) {
  FairnessReport report;
  if (result.records.empty()) return report;

  std::vector<double> slowdowns;
  slowdowns.reserve(result.records.size());
  for (const sim::JobRecord& r : result.records) {
    slowdowns.push_back(bounded_slowdown(r, tau));
    report.max_wait = std::max(report.max_wait, r.wait());
  }
  RunningStats stats;
  for (const double s : slowdowns) stats.add(s);
  report.mean_bounded_slowdown = stats.mean();
  report.max_bounded_slowdown = stats.max();
  report.p95_bounded_slowdown = quantile(slowdowns, 0.95);

  std::map<int, RunningStats> per_user;
  for (const sim::JobRecord& r : result.records) {
    per_user[r.user].add(static_cast<double>(r.wait()));
  }
  std::vector<double> user_means;
  user_means.reserve(per_user.size());
  for (const auto& [user, user_stats] : per_user) {
    (void)user;
    user_means.push_back(user_stats.mean());
  }
  report.jain_index_user_wait = jain_index(user_means);
  report.users = per_user.size();
  return report;
}

}  // namespace esched::metrics
