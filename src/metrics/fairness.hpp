// Fairness and responsiveness metrics beyond the paper's three (§5.5):
// the window mechanism claims to preserve "job fairness", and these
// quantify that claim. Bounded slowdown is the standard responsiveness
// metric of the parallel-scheduling literature [Feitelson]; Jain's index
// summarises how evenly wait time is spread across users.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/result.hpp"

namespace esched::metrics {

/// Bounded slowdown of one job: (wait + run) / max(run, tau), clamped
/// below at 1. tau (default 10 s) stops sub-second jobs from dominating.
double bounded_slowdown(const sim::JobRecord& record,
                        DurationSec tau = 10);

/// Summary of a schedule's responsiveness/fairness.
struct FairnessReport {
  double mean_bounded_slowdown = 0.0;
  double p95_bounded_slowdown = 0.0;
  double max_bounded_slowdown = 0.0;
  DurationSec max_wait = 0;
  /// Jain's fairness index over per-user mean waits: 1 = perfectly even,
  /// 1/n = one user absorbs everything. 1 when there are no users.
  double jain_index_user_wait = 1.0;
  std::size_t users = 0;
};

/// Compute the report from a simulation result.
FairnessReport fairness_report(const sim::SimResult& result,
                               DurationSec tau = 10);

/// Jain's fairness index of an arbitrary non-negative vector:
/// (sum x)^2 / (n * sum x^2); 1.0 for empty or all-zero input.
double jain_index(std::span<const double> values);

}  // namespace esched::metrics
