#include "metrics/export.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>

#include "metrics/metrics.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace esched::metrics {

namespace {

// Minimal JSON string escaping (we only emit ASCII policy/trace names,
// but be correct anyway).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

void write_jobs_csv(std::ostream& out, const sim::SimResult& result) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "id,user,submit,start,finish,wait,nodes,power_per_node\n";
  for (const sim::JobRecord& r : result.records) {
    out << r.id << ',' << r.user << ',' << r.submit << ',' << r.start
        << ',' << r.finish << ',' << r.wait() << ',' << r.nodes << ','
        << r.power_per_node << '\n';
  }
}

void write_daily_bills_csv(std::ostream& out, const sim::SimResult& result) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "day,bill\n";
  for (std::size_t day = 0; day < result.daily_bills.size(); ++day) {
    out << day << ',' << result.daily_bills[day] << '\n';
  }
}

void write_daily_curves_csv(std::ostream& out, const sim::SimResult& result) {
  out.precision(std::numeric_limits<double>::max_digits10);
  ESCHED_REQUIRE(!result.power_curve.empty() &&
                     result.power_curve.size() ==
                         result.utilization_curve.size(),
                 "result carries no daily curves");
  out << "second_of_day,power_watts,utilization\n";
  const auto bins = result.power_curve.size();
  const DurationSec width =
      kSecondsPerDay / static_cast<DurationSec>(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    out << static_cast<DurationSec>(b) * width << ','
        << result.power_curve[b] << ',' << result.utilization_curve[b]
        << '\n';
  }
}

void write_summary_json(std::ostream& out, const sim::SimResult& result) {
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\n"
      << "  \"policy\": \"" << json_escape(result.policy_name) << "\",\n"
      << "  \"trace\": \"" << json_escape(result.trace_name) << "\",\n"
      << "  \"system_nodes\": " << result.system_nodes << ",\n"
      << "  \"jobs\": " << result.records.size() << ",\n"
      << "  \"horizon_begin\": " << result.horizon_begin << ",\n"
      << "  \"horizon_end\": " << result.horizon_end << ",\n"
      << "  \"total_bill\": " << result.total_bill << ",\n"
      << "  \"bill_on_peak\": " << result.bill_on_peak << ",\n"
      << "  \"bill_off_peak\": " << result.bill_off_peak << ",\n"
      << "  \"total_energy_joules\": " << result.total_energy << ",\n"
      << "  \"energy_on_peak_joules\": " << result.energy_on_peak << ",\n"
      << "  \"energy_off_peak_joules\": " << result.energy_off_peak << ",\n"
      << "  \"utilization\": " << overall_utilization(result) << ",\n"
      << "  \"mean_wait_seconds\": " << result.mean_wait_seconds() << ",\n"
      << "  \"scheduling_passes\": " << result.scheduling_passes << ",\n"
      << "  \"ticks_processed\": " << result.ticks_processed << "\n"
      << "}\n";
}

void export_all(const std::string& prefix, const sim::SimResult& result) {
  // Open and write failures both throw with the offending path in the
  // message: "the export silently produced a truncated CSV" (ENOSPC, a
  // directory that vanished mid-run) is strictly worse than aborting.
  const auto open = [](const std::string& path) {
    std::ofstream out(path);
    ESCHED_REQUIRE(out.good(), "cannot write " + path);
    return out;
  };
  const auto finish = [](std::ofstream& out, const std::string& path) {
    out.flush();
    ESCHED_REQUIRE(out.good(), "failed writing " + path);
  };
  {
    const std::string path = prefix + "_jobs.csv";
    auto out = open(path);
    write_jobs_csv(out, result);
    finish(out, path);
  }
  {
    const std::string path = prefix + "_daily.csv";
    auto out = open(path);
    write_daily_bills_csv(out, result);
    finish(out, path);
  }
  if (!result.power_curve.empty()) {
    const std::string path = prefix + "_curves.csv";
    auto out = open(path);
    write_daily_curves_csv(out, result);
    finish(out, path);
  }
  {
    const std::string path = prefix + "_summary.json";
    auto out = open(path);
    write_summary_json(out, result);
    finish(out, path);
  }
}

}  // namespace esched::metrics
