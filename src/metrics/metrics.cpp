#include "metrics/metrics.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::metrics {

double overall_utilization(const sim::SimResult& result) {
  const auto span =
      static_cast<double>(result.horizon_end - result.horizon_begin);
  if (span <= 0.0 || result.system_nodes <= 0) return 0.0;
  double busy = 0.0;
  for (const sim::JobRecord& r : result.records) busy += r.node_seconds();
  return busy / (static_cast<double>(result.system_nodes) * span);
}

std::vector<double> monthly_utilization(const sim::SimResult& result,
                                        std::size_t months) {
  ESCHED_REQUIRE(months > 0, "need at least one month");
  std::vector<double> busy(months, 0.0);
  for (const sim::JobRecord& r : result.records) {
    // Clip [start, finish) to each month it overlaps.
    auto m = static_cast<std::size_t>(
        std::max<std::int64_t>(0, month_index(r.start)));
    for (; m < months; ++m) {
      const TimeSec mb = static_cast<TimeSec>(m) * kSecondsPerMonth;
      const TimeSec me = mb + kSecondsPerMonth;
      if (r.start >= me) continue;
      if (r.finish <= mb) break;
      const TimeSec lo = std::max(r.start, mb);
      const TimeSec hi = std::min(r.finish, me);
      busy[m] += static_cast<double>(hi - lo) * static_cast<double>(r.nodes);
      if (r.finish <= me) break;
    }
  }
  std::vector<double> util(months, 0.0);
  for (std::size_t m = 0; m < months; ++m) {
    const TimeSec mb = static_cast<TimeSec>(m) * kSecondsPerMonth;
    const TimeSec me = mb + kSecondsPerMonth;
    const TimeSec lo = std::max(result.horizon_begin, mb);
    const TimeSec hi = std::min(result.horizon_end, me);
    const auto denom = static_cast<double>(hi - lo) *
                       static_cast<double>(result.system_nodes);
    util[m] = (hi > lo && denom > 0.0) ? busy[m] / denom : 0.0;
  }
  return util;
}

std::vector<double> monthly_mean_wait(const sim::SimResult& result,
                                      std::size_t months) {
  ESCHED_REQUIRE(months > 0, "need at least one month");
  std::vector<double> total(months, 0.0);
  std::vector<std::size_t> count(months, 0);
  for (const sim::JobRecord& r : result.records) {
    const auto m = static_cast<std::size_t>(
        std::max<std::int64_t>(0, month_index(r.submit)));
    const std::size_t bucket = std::min(m, months - 1);
    total[bucket] += static_cast<double>(r.wait());
    ++count[bucket];
  }
  std::vector<double> mean(months, 0.0);
  for (std::size_t m = 0; m < months; ++m) {
    if (count[m] > 0) mean[m] = total[m] / static_cast<double>(count[m]);
  }
  return mean;
}

std::vector<Money> monthly_bill(const sim::SimResult& result,
                                std::size_t months) {
  ESCHED_REQUIRE(months > 0, "need at least one month");
  std::vector<Money> out(months, 0.0);
  for (std::size_t day = 0; day < result.daily_bills.size(); ++day) {
    const std::size_t m =
        std::min(months - 1, day / static_cast<std::size_t>(kDaysPerMonth));
    out[m] += result.daily_bills[day];
  }
  return out;
}

double bill_saving_percent(const sim::SimResult& baseline,
                           const sim::SimResult& candidate) {
  if (baseline.total_bill <= 0.0) return 0.0;
  return (baseline.total_bill - candidate.total_bill) / baseline.total_bill *
         100.0;
}

std::vector<double> monthly_bill_saving_percent(
    const sim::SimResult& baseline, const sim::SimResult& candidate,
    std::size_t months) {
  const std::vector<Money> base = monthly_bill(baseline, months);
  const std::vector<Money> cand = monthly_bill(candidate, months);
  std::vector<double> saving(months, 0.0);
  for (std::size_t m = 0; m < months; ++m) {
    if (base[m] > 0.0) saving[m] = (base[m] - cand[m]) / base[m] * 100.0;
  }
  return saving;
}

std::size_t horizon_months(const sim::SimResult& result) {
  if (result.horizon_end <= result.horizon_begin) return 1;
  return static_cast<std::size_t>(month_index(result.horizon_end - 1) + 1);
}

void validate_result(const sim::SimResult& result) {
  ESCHED_REQUIRE(result.system_nodes > 0, "result lacks a system size");
  // Sweep start/finish change-points to verify the N-node capacity
  // invariant at every instant.
  std::vector<std::pair<TimeSec, NodeCount>> deltas;
  deltas.reserve(result.records.size() * 2);
  for (const sim::JobRecord& r : result.records) {
    ESCHED_REQUIRE(r.start >= r.submit,
                   "job " + std::to_string(r.id) + " started before submit");
    ESCHED_REQUIRE(r.finish > r.start,
                   "job " + std::to_string(r.id) + " has no runtime");
    ESCHED_REQUIRE(r.nodes > 0 && r.nodes <= result.system_nodes,
                   "job " + std::to_string(r.id) + " size out of range");
    ESCHED_REQUIRE(r.submit >= result.horizon_begin &&
                       r.finish <= result.horizon_end,
                   "job " + std::to_string(r.id) + " outside the horizon");
    deltas.emplace_back(r.start, r.nodes);
    deltas.emplace_back(r.finish, -r.nodes);
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // releases before allocations
            });
  NodeCount busy = 0;
  for (const auto& [t, delta] : deltas) {
    busy += delta;
    ESCHED_REQUIRE(busy >= 0, "negative occupancy at t=" +
                                  std::to_string(t));
    ESCHED_REQUIRE(busy <= result.system_nodes,
                   "over-allocation at t=" + std::to_string(t));
  }
  ESCHED_REQUIRE(busy == 0, "occupancy did not return to zero");
}

}  // namespace esched::metrics
