// Report rendering shared by the experiment binaries: paper-style tables
// comparing policies month by month, and ASCII time-of-day curve plots for
// the Fig. 12/13 reproductions.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sim/result.hpp"
#include "util/table.hpp"

namespace esched::metrics {

/// Fig. 5/6-style table: one row per month, one column per policy, cells
/// are monthly utilization percentages. `results[0]` is the baseline.
Table monthly_utilization_table(std::span<const sim::SimResult> results,
                                std::size_t months);

/// Fig. 7/8-style table: monthly bill saving of each non-baseline policy
/// vs `results[0]`, plus an "average" footer row (mean of monthly savings,
/// matching how the paper reports averages).
Table monthly_saving_table(std::span<const sim::SimResult> results,
                           std::size_t months);

/// Fig. 9/10-style table: monthly mean wait seconds per policy.
Table monthly_wait_table(std::span<const sim::SimResult> results,
                         std::size_t months);

/// One-line summary of a result (policy, bill, utilization, mean wait).
std::string summary_line(const sim::SimResult& result);

/// ASCII plot of time-of-day curves (one column of values per result) at
/// `step` bins per printed row. `scale` converts raw curve values for
/// display (e.g. 1e-6 for W -> MW); `unit` labels the column.
Table daily_curve_table(std::span<const sim::SimResult> results,
                        bool utilization_curve, std::size_t step,
                        double scale, const std::string& unit);

}  // namespace esched::metrics
