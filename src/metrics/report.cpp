#include "metrics/report.hpp"

#include <cstdio>

#include "metrics/metrics.hpp"
#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::metrics {

namespace {
std::vector<std::string> policy_headers(
    std::span<const sim::SimResult> results, const std::string& first) {
  std::vector<std::string> headers{first};
  for (const sim::SimResult& r : results) headers.push_back(r.policy_name);
  return headers;
}
}  // namespace

Table monthly_utilization_table(std::span<const sim::SimResult> results,
                                std::size_t months) {
  ESCHED_REQUIRE(!results.empty(), "no results to tabulate");
  Table table(policy_headers(results, "Month"));
  std::vector<std::vector<double>> util;
  util.reserve(results.size());
  for (const sim::SimResult& r : results)
    util.push_back(monthly_utilization(r, months));
  for (std::size_t m = 0; m < months; ++m) {
    table.add_row();
    table.cell_int(static_cast<long long>(m + 1));
    for (const auto& u : util) table.cell_percent(u[m] * 100.0);
  }
  table.add_row();
  table.cell("overall");
  for (const sim::SimResult& r : results)
    table.cell_percent(overall_utilization(r) * 100.0);
  return table;
}

Table monthly_saving_table(std::span<const sim::SimResult> results,
                           std::size_t months) {
  ESCHED_REQUIRE(results.size() >= 2,
                 "need a baseline and at least one candidate");
  std::vector<std::string> headers{"Month"};
  for (std::size_t i = 1; i < results.size(); ++i)
    headers.push_back(results[i].policy_name + " vs " +
                      results[0].policy_name);
  Table table(headers);
  std::vector<std::vector<double>> saving;
  for (std::size_t i = 1; i < results.size(); ++i)
    saving.push_back(
        monthly_bill_saving_percent(results[0], results[i], months));
  for (std::size_t m = 0; m < months; ++m) {
    table.add_row();
    table.cell_int(static_cast<long long>(m + 1));
    for (const auto& s : saving) table.cell_percent(s[m]);
  }
  // The paper reports "average electricity bill saving" as the mean of the
  // monthly savings.
  table.add_row();
  table.cell("average");
  for (const auto& s : saving) {
    double total = 0.0;
    for (const double v : s) total += v;
    table.cell_percent(total / static_cast<double>(months));
  }
  return table;
}

Table monthly_wait_table(std::span<const sim::SimResult> results,
                         std::size_t months) {
  ESCHED_REQUIRE(!results.empty(), "no results to tabulate");
  Table table(policy_headers(results, "Month"));
  std::vector<std::vector<double>> wait;
  for (const sim::SimResult& r : results)
    wait.push_back(monthly_mean_wait(r, months));
  for (std::size_t m = 0; m < months; ++m) {
    table.add_row();
    table.cell_int(static_cast<long long>(m + 1));
    for (const auto& w : wait) table.cell(w[m], 1);
  }
  table.add_row();
  table.cell("overall");
  for (const sim::SimResult& r : results) table.cell(r.mean_wait_seconds(), 1);
  return table;
}

std::string summary_line(const sim::SimResult& result) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-10s bill=%.2f util=%.2f%% mean-wait=%.1fs energy=%.1f MWh",
                result.policy_name.c_str(), result.total_bill,
                overall_utilization(result) * 100.0,
                result.mean_wait_seconds(),
                joules_to_kwh(result.total_energy) / 1000.0);
  return buf;
}

Table daily_curve_table(std::span<const sim::SimResult> results,
                        bool utilization_curve, std::size_t step,
                        double scale, const std::string& unit) {
  ESCHED_REQUIRE(!results.empty(), "no results to tabulate");
  ESCHED_REQUIRE(step >= 1, "step must be >= 1");
  std::vector<std::string> headers{"Time"};
  for (const sim::SimResult& r : results)
    headers.push_back(r.policy_name + " (" + unit + ")");
  Table table(headers);

  const auto& first = utilization_curve ? results[0].utilization_curve
                                        : results[0].power_curve;
  const std::size_t bins = first.size();
  for (const sim::SimResult& r : results) {
    const auto& curve =
        utilization_curve ? r.utilization_curve : r.power_curve;
    ESCHED_REQUIRE(curve.size() == bins, "curve bin counts differ");
  }
  ESCHED_REQUIRE(bins > 0, "results carry no daily curves");

  const DurationSec bin_width =
      kSecondsPerDay / static_cast<DurationSec>(bins);
  for (std::size_t b = 0; b < bins; b += step) {
    table.add_row();
    table.cell(format_time_of_day(static_cast<DurationSec>(b) * bin_width));
    for (const sim::SimResult& r : results) {
      const auto& curve =
          utilization_curve ? r.utilization_curve : r.power_curve;
      // Average the bins covered by this printed row.
      double total = 0.0;
      std::size_t n = 0;
      for (std::size_t i = b; i < std::min(b + step, bins); ++i) {
        total += curve[i];
        ++n;
      }
      table.cell(total / static_cast<double>(n) * scale, 3);
    }
  }
  return table;
}

}  // namespace esched::metrics
