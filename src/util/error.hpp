// Error handling for the esched library.
//
// The library throws esched::Error for precondition violations and malformed
// input (e.g. an unparsable SWF line). Internal invariants use
// ESCHED_REQUIRE, which is active in all build types: a scheduling simulator
// that silently mis-accounts node allocations produces plausible-looking but
// wrong tables, so we always pay the (tiny) cost of the checks.
#pragma once

#include <stdexcept>
#include <string>

namespace esched {

/// Exception type thrown on precondition violations and malformed input.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw Error(std::string("requirement failed: ") + expr + " at " + file +
              ":" + std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace esched

/// Always-on invariant check; throws esched::Error with location info.
#define ESCHED_REQUIRE(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::esched::detail::require_failed(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                      \
  } while (false)
