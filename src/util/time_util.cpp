#include "util/time_util.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace esched {

namespace {
// Floor division / modulo that behave sanely for negative times.
std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
std::int64_t floor_mod(std::int64_t a, std::int64_t b) {
  return a - floor_div(a, b) * b;
}
}  // namespace

DurationSec second_of_day(TimeSec t) { return floor_mod(t, kSecondsPerDay); }

int hour_of_day(TimeSec t) {
  return static_cast<int>(second_of_day(t) / kSecondsPerHour);
}

std::int64_t day_index(TimeSec t) { return floor_div(t, kSecondsPerDay); }

std::int64_t month_index(TimeSec t) { return floor_div(t, kSecondsPerMonth); }

TimeSec start_of_day(TimeSec t) { return day_index(t) * kSecondsPerDay; }

TimeSec start_of_month(TimeSec t) {
  return month_index(t) * kSecondsPerMonth;
}

TimeSec next_tick_at_or_after(TimeSec t, DurationSec interval) {
  ESCHED_REQUIRE(interval > 0, "tick interval must be positive");
  const std::int64_t k = floor_div(t + interval - 1, interval);
  return k * interval;
}

std::string format_time(TimeSec t) {
  const std::int64_t day = day_index(t);
  const DurationSec sod = second_of_day(t);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lldd %02lld:%02lld:%02lld",
                static_cast<long long>(day),
                static_cast<long long>(sod / 3600),
                static_cast<long long>((sod % 3600) / 60),
                static_cast<long long>(sod % 60));
  return buf;
}

std::string format_time_of_day(DurationSec sec_of_day) {
  ESCHED_REQUIRE(sec_of_day >= 0 && sec_of_day < kSecondsPerDay,
                 "second-of-day out of range");
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02lld:%02lld",
                static_cast<long long>(sec_of_day / 3600),
                static_cast<long long>((sec_of_day % 3600) / 60));
  return buf;
}

std::string format_duration(DurationSec d) {
  const bool neg = d < 0;
  if (neg) d = -d;
  char buf[64];
  if (d >= kSecondsPerDay) {
    std::snprintf(buf, sizeof buf, "%s%lldd %lldh %02lldm",
                  neg ? "-" : "", static_cast<long long>(d / kSecondsPerDay),
                  static_cast<long long>((d % kSecondsPerDay) / 3600),
                  static_cast<long long>((d % 3600) / 60));
  } else if (d >= 3600) {
    std::snprintf(buf, sizeof buf, "%s%lldh %02lldm %02llds",
                  neg ? "-" : "", static_cast<long long>(d / 3600),
                  static_cast<long long>((d % 3600) / 60),
                  static_cast<long long>(d % 60));
  } else {
    std::snprintf(buf, sizeof buf, "%s%lldm %02llds", neg ? "-" : "",
                  static_cast<long long>(d / 60),
                  static_cast<long long>(d % 60));
  }
  return buf;
}

}  // namespace esched
