#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace esched {

namespace {
std::string bar(double fraction, std::size_t width) {
  const auto n = static_cast<std::size_t>(
      std::lround(fraction * static_cast<double>(width)));
  return std::string(std::min(n, width), '#');
}

std::string format_number(double v) {
  std::ostringstream os;
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os.precision(3);
    os << v;
  }
  return os.str();
}
}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  ESCHED_REQUIRE(bins >= 1, "Histogram needs at least one bin");
  ESCHED_REQUIRE(lo < hi, "Histogram needs lo < hi");
}

void Histogram::add(double value, double weight) {
  ESCHED_REQUIRE(weight >= 0.0, "Histogram: negative weight");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((value - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  ESCHED_REQUIRE(i < counts_.size(), "Histogram bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return bin_lo(i) + width;
}

double Histogram::bin_fraction(std::size_t i) const {
  ESCHED_REQUIRE(i < counts_.size(), "Histogram bin out of range");
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

std::string Histogram::render(const std::string& label,
                              std::size_t width) const {
  std::ostringstream os;
  os << label << " (n=" << format_number(total_) << ")\n";
  double max_frac = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    max_frac = std::max(max_frac, bin_fraction(i));
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double frac = bin_fraction(i);
    const double rel = max_frac > 0.0 ? frac / max_frac : 0.0;
    char buf[96];
    std::snprintf(buf, sizeof buf, "  [%8.1f, %8.1f) %6.2f%% |", bin_lo(i),
                  bin_hi(i), frac * 100.0);
    os << buf << bar(rel, width) << "\n";
  }
  return os.str();
}

CategoricalHistogram::CategoricalHistogram(std::vector<std::string> categories)
    : names_(std::move(categories)), counts_(names_.size(), 0.0) {
  ESCHED_REQUIRE(!names_.empty(), "CategoricalHistogram needs categories");
}

void CategoricalHistogram::add(std::size_t index, double weight) {
  ESCHED_REQUIRE(index < counts_.size(), "category index out of range");
  ESCHED_REQUIRE(weight >= 0.0, "CategoricalHistogram: negative weight");
  counts_[index] += weight;
  total_ += weight;
}

double CategoricalHistogram::fraction(std::size_t i) const {
  ESCHED_REQUIRE(i < counts_.size(), "category index out of range");
  return total_ > 0.0 ? counts_[i] / total_ : 0.0;
}

std::string CategoricalHistogram::render(const std::string& label,
                                         std::size_t width) const {
  std::ostringstream os;
  os << label << " (n=" << format_number(total_) << ")\n";
  std::size_t name_width = 0;
  for (const auto& n : names_) name_width = std::max(name_width, n.size());
  double max_frac = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    max_frac = std::max(max_frac, fraction(i));
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double frac = fraction(i);
    const double rel = max_frac > 0.0 ? frac / max_frac : 0.0;
    os << "  " << names_[i] << std::string(name_width - names_[i].size(), ' ');
    char buf[32];
    std::snprintf(buf, sizeof buf, " %6.2f%% |", frac * 100.0);
    os << buf << bar(rel, width) << "\n";
  }
  return os.str();
}

}  // namespace esched
