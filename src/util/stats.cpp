#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace esched {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double weighted_mean(std::span<const double> values,
                     std::span<const double> weights) {
  ESCHED_REQUIRE(values.size() == weights.size(),
                 "weighted_mean: size mismatch");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    ESCHED_REQUIRE(weights[i] >= 0.0, "weighted_mean: negative weight");
    num += values[i] * weights[i];
    den += weights[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

double quantile(std::span<const double> values, double q) {
  ESCHED_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q outside [0,1]");
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percent_change(double a, double b) {
  if (b == 0.0) return 0.0;
  return (a - b) / b * 100.0;
}

}  // namespace esched
