// Calendar helpers on the simulation clock (TimeSec, epoch = midnight of
// day 0). The simulator uses fixed 30-day months — the paper's traces are
// reported per month and nothing in the evaluation depends on real calendar
// month lengths.
#pragma once

#include <string>

#include "util/types.hpp"

namespace esched {

/// Second-of-day in [0, 86400).
DurationSec second_of_day(TimeSec t);

/// Hour-of-day in [0, 24).
int hour_of_day(TimeSec t);

/// Day index since epoch (floor division; negative times round down).
std::int64_t day_index(TimeSec t);

/// 30-day month index since epoch.
std::int64_t month_index(TimeSec t);

/// Start of the day containing t.
TimeSec start_of_day(TimeSec t);

/// Start of the 30-day month containing t.
TimeSec start_of_month(TimeSec t);

/// Smallest tick boundary >= t for ticks at epoch + k*interval.
TimeSec next_tick_at_or_after(TimeSec t, DurationSec interval);

/// "DdD HH:MM:SS" rendering, e.g. "12d 07:30:00".
std::string format_time(TimeSec t);

/// "HH:MM" rendering of a second-of-day value.
std::string format_time_of_day(DurationSec sec_of_day);

/// Human-readable duration, e.g. "2h 05m 10s".
std::string format_duration(DurationSec d);

}  // namespace esched
