// Small statistics helpers used by trace analysis and metric computation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace esched {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Number of observations added.
  std::size_t count() const { return n_; }
  /// Arithmetic mean; 0 when empty.
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Smallest observation; 0 when empty.
  double min() const { return n_ ? min_ : 0.0; }
  /// Largest observation; 0 when empty.
  double max() const { return n_ ? max_ : 0.0; }
  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Weighted mean of `values` with non-negative `weights` (same length).
/// Returns 0 when the total weight is zero.
double weighted_mean(std::span<const double> values,
                     std::span<const double> weights);

/// q-quantile (q in [0,1]) by linear interpolation on a *copy* of the data.
/// Returns 0 for empty input.
double quantile(std::span<const double> values, double q);

/// Relative difference (a - b) / b as a percentage; 0 when b == 0.
double percent_change(double a, double b);

}  // namespace esched
