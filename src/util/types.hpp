// Fundamental scalar types shared across the esched library.
//
// Simulation time is integral seconds since the simulation epoch (t = 0 is
// midnight of day 0). Integral time keeps event ordering exact and makes
// daily/price-period boundary arithmetic trivial, matching the 1-second
// resolution of the Standard Workload Format traces the paper uses.
#pragma once

#include <cstdint>

namespace esched {

/// Seconds since the simulation epoch (midnight of day 0).
using TimeSec = std::int64_t;

/// A duration in seconds.
using DurationSec = std::int64_t;

/// A count of compute nodes.
using NodeCount = std::int64_t;

/// Electrical power in watts.
using Watts = double;

/// Energy in joules (watt-seconds).
using Joules = double;

/// Money in abstract currency units. The paper only ever compares relative
/// bills, so the unit is irrelevant; we document it as dollars.
using Money = double;

/// Job identifier, unique within a trace (SWF job number).
using JobId = std::int64_t;

inline constexpr DurationSec kSecondsPerHour = 3600;
inline constexpr DurationSec kSecondsPerDay = 24 * kSecondsPerHour;
/// The simulator's calendar uses fixed 30-day months (see DESIGN.md §5).
inline constexpr DurationSec kDaysPerMonth = 30;
inline constexpr DurationSec kSecondsPerMonth = kDaysPerMonth * kSecondsPerDay;

/// Convert joules to kilowatt-hours (the unit electricity bills use).
constexpr double joules_to_kwh(Joules j) { return j / 3.6e6; }

}  // namespace esched
