#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace esched {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ESCHED_REQUIRE(!headers_.empty(), "Table needs at least one column");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void Table::set_align(std::size_t col, Align align) {
  ESCHED_REQUIRE(col < aligns_.size(), "Table column out of range");
  aligns_[col] = align;
}

void Table::add_row() { rows_.emplace_back(); }

void Table::cell(std::string value) {
  ESCHED_REQUIRE(!rows_.empty(), "Table::cell before add_row");
  ESCHED_REQUIRE(rows_.back().size() < headers_.size(),
                 "Table row has too many cells");
  rows_.back().push_back(std::move(value));
}

void Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  cell(std::string(buf));
}

void Table::cell_int(long long value) {
  cell(std::to_string(value));
}

void Table::cell_percent(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, value);
  cell(std::string(buf));
}

const std::string& Table::at(std::size_t row, std::size_t col) const {
  ESCHED_REQUIRE(row < rows_.size(), "Table row out of range");
  ESCHED_REQUIRE(col < rows_[row].size(), "Table cell out of range");
  return rows_[row][col];
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto pad = [&](const std::string& s, std::size_t c) {
    const std::size_t fill = widths[c] - s.size();
    return aligns_[c] == Align::kLeft ? s + std::string(fill, ' ')
                                      : std::string(fill, ' ') + s;
  };

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  rule();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << ' ' << pad(headers_[c], c) << " |";
  os << '\n';
  rule();
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << ' ' << pad(c < row.size() ? row[c] : std::string(), c) << " |";
    os << '\n';
  }
  rule();
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::render_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << csv_escape(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << (c ? "," : "")
         << csv_escape(c < row.size() ? row[c] : std::string());
    os << '\n';
  }
  return os.str();
}

}  // namespace esched
