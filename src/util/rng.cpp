#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace esched {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ESCHED_REQUIRE(lo < hi, "uniform(lo,hi) needs lo < hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ESCHED_REQUIRE(lo <= hi, "uniform_int(lo,hi) needs lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo);
  if (span == std::uint64_t(-1)) return static_cast<std::int64_t>(next_u64());
  // Debiased modulo (Lemire-style rejection).
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % bound;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return lo + static_cast<std::int64_t>(r % bound);
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sd) {
  ESCHED_REQUIRE(sd >= 0.0, "normal sd must be >= 0");
  return mean + sd * normal();
}

double Rng::truncated_normal(double mean, double sd, double lo, double hi) {
  ESCHED_REQUIRE(lo < hi, "truncated_normal needs lo < hi");
  if (sd == 0.0) {
    ESCHED_REQUIRE(mean >= lo && mean <= hi,
                   "degenerate truncated_normal outside [lo,hi]");
    return mean;
  }
  // Rejection sampling is exact and cheap for the mild truncations esched
  // uses (power profiles truncate at ~2 sd). Guard against pathological
  // parameters where acceptance would be astronomically rare.
  ESCHED_REQUIRE(mean > lo - 8.0 * sd && mean < hi + 8.0 * sd,
                 "truncated_normal: interval too far from mean");
  for (int i = 0; i < 100000; ++i) {
    const double x = normal(mean, sd);
    if (x >= lo && x <= hi) return x;
  }
  throw Error("truncated_normal: rejection sampling failed to converge");
}

double Rng::lognormal(double mu_log, double sd_log) {
  return std::exp(normal(mu_log, sd_log));
}

double Rng::exponential(double mean) {
  ESCHED_REQUIRE(mean > 0.0, "exponential mean must be > 0");
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) {
  ESCHED_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p outside [0,1]");
  return uniform() < p;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    ESCHED_REQUIRE(w >= 0.0, "weighted_index: negative weight");
    total += w;
  }
  ESCHED_REQUIRE(total > 0.0, "weighted_index: all weights zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: land on last bucket
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace esched
