// Minimal command-line flag parsing shared by the bench and example
// binaries. Supports "--name value", "--name=value" and boolean "--name".
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace esched {

/// Parsed command line: flags plus positional arguments.
class CliArgs {
 public:
  /// Parse argv (argv[0] is skipped). Throws esched::Error on a flag with a
  /// missing value only if later queried as valued; bare flags are booleans.
  static CliArgs parse(int argc, const char* const* argv);

  /// True if --name appeared (with or without a value).
  bool has(const std::string& name) const;

  /// String value of --name, or nullopt.
  std::optional<std::string> get(const std::string& name) const;

  /// String value of --name or `fallback`.
  std::string get_or(const std::string& name, const std::string& fallback) const;

  /// Integer value of --name or `fallback`; throws on malformed value.
  long long get_int_or(const std::string& name, long long fallback) const;

  /// Double value of --name or `fallback`; throws on malformed value.
  double get_double_or(const std::string& name, double fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace esched
