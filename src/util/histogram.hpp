// Fixed-bin and categorical histograms with ASCII rendering, used for the
// Fig. 1 / Fig. 4 distribution outputs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace esched {

/// Histogram over [lo, hi) with uniformly sized bins. Values outside the
/// range are clamped into the first/last bin (the paper's figures do the
/// same: the axis ends absorb the tails).
class Histogram {
 public:
  /// Creates `bins` uniform bins over [lo, hi). Requires bins >= 1, lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Add an observation with optional weight (default 1).
  void add(double value, double weight = 1.0);

  /// Number of bins.
  std::size_t bin_count() const { return counts_.size(); }
  /// Weight accumulated in bin i.
  double bin_weight(std::size_t i) const { return counts_.at(i); }
  /// Inclusive lower edge of bin i.
  double bin_lo(std::size_t i) const;
  /// Exclusive upper edge of bin i.
  double bin_hi(std::size_t i) const;
  /// Total accumulated weight.
  double total() const { return total_; }
  /// Fraction of total weight in bin i (0 if empty histogram).
  double bin_fraction(std::size_t i) const;

  /// Render as an ASCII bar chart, one bin per line. `label` precedes the
  /// chart; `width` is the maximum bar length in characters.
  std::string render(const std::string& label, std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Histogram over named categories in fixed insertion order (e.g. job-size
/// classes "1 rack", "2 racks", ...).
class CategoricalHistogram {
 public:
  /// Creates the categories; counts start at zero.
  explicit CategoricalHistogram(std::vector<std::string> categories);

  /// Add `weight` to category `index`.
  void add(std::size_t index, double weight = 1.0);

  std::size_t category_count() const { return counts_.size(); }
  const std::string& category(std::size_t i) const { return names_.at(i); }
  double weight(std::size_t i) const { return counts_.at(i); }
  double total() const { return total_; }
  double fraction(std::size_t i) const;

  /// Render as an ASCII bar chart, one category per line.
  std::string render(const std::string& label, std::size_t width = 50) const;

 private:
  std::vector<std::string> names_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace esched
