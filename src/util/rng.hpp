// Deterministic random number generation.
//
// Everything stochastic in esched (synthetic traces, power-profile
// assignment) flows through this header so that a given seed reproduces a
// bit-identical experiment on any platform. We therefore implement the
// distributions ourselves instead of using <random>'s, whose outputs are
// implementation-defined and differ between standard libraries.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via splitmix64 —
// the conventional pairing: splitmix64 decorrelates low-entropy seeds.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace esched {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic pseudo-random generator (xoshiro256**) plus the handful of
/// distributions esched needs. Copyable value type; copying forks the stream.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (caches the spare deviate).
  double normal();

  /// Normal with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);

  /// Normal truncated to [lo, hi] by rejection. Requires lo < hi and a
  /// non-degenerate overlap (mean within ~8 sd of the interval).
  double truncated_normal(double mean, double sd, double lo, double hi);

  /// Lognormal: exp(N(mu_log, sd_log)).
  double lognormal(double mu_log, double sd_log);

  /// Exponential with the given mean (> 0); used for Poisson arrival gaps.
  double exponential(double mean);

  /// Bernoulli trial with probability p in [0, 1].
  bool bernoulli(double p);

  /// Index drawn from the (unnormalised, non-negative) weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator; stable given call order.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace esched
