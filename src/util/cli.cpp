#include "util/cli.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace esched {

CliArgs CliArgs::parse(int argc, const char* const* argv) {
  CliArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      out.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      out.flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      out.flags_[body] = argv[++i];
    } else {
      out.flags_[body] = "";  // bare boolean flag
    }
  }
  return out;
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& name,
                            const std::string& fallback) const {
  const auto v = get(name);
  return v ? *v : fallback;
}

long long CliArgs::get_int_or(const std::string& name,
                              long long fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  ESCHED_REQUIRE(end && *end == '\0' && !v->empty(),
                 "flag --" + name + " expects an integer, got '" + *v + "'");
  return parsed;
}

double CliArgs::get_double_or(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  ESCHED_REQUIRE(end && *end == '\0' && !v->empty(),
                 "flag --" + name + " expects a number, got '" + *v + "'");
  return parsed;
}

}  // namespace esched
