// ASCII table / CSV rendering for the experiment binaries. Every bench in
// bench/ prints its paper table through this class so the output format is
// uniform and machine-parsable (--csv).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace esched {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// A simple row/column table builder. Cells are strings; numeric helpers
/// format with fixed precision. Rendering pads columns to their widest cell.
class Table {
 public:
  /// Creates a table with the given column headers (all right-aligned by
  /// default except the first, which is left-aligned — the usual layout for
  /// "label | numbers..." experiment tables).
  explicit Table(std::vector<std::string> headers);

  /// Override the alignment of column `col`.
  void set_align(std::size_t col, Align align);

  /// Start a new row; subsequent cell() calls fill it left to right.
  void add_row();

  /// Append a string cell to the current row.
  void cell(std::string value);

  /// Append a fixed-precision numeric cell.
  void cell(double value, int precision = 2);

  /// Append an integer cell.
  void cell_int(long long value);

  /// Append a percentage cell rendered as "12.34%".
  void cell_percent(double value, int precision = 2);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }
  /// Cell text at (row, col); throws if out of range or row is ragged.
  const std::string& at(std::size_t row, std::size_t col) const;

  /// Render with box-drawing rules:  header, separator, rows.
  std::string render() const;

  /// Render as CSV (RFC-4180-ish quoting for commas/quotes/newlines).
  std::string render_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace esched
