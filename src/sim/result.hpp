// Simulation outputs: per-job records plus billing, energy and time-of-day
// aggregates. Everything downstream (metrics, benches) is computed from
// this value type, so two SimResults fully determine a paper comparison.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace esched::sim {

/// The lifecycle of one completed job.
struct JobRecord {
  JobId id = 0;
  TimeSec submit = 0;
  TimeSec start = 0;
  TimeSec finish = 0;
  NodeCount nodes = 0;
  Watts power_per_node = 0.0;
  int user = 0;

  /// Queue wait (the paper's user-centric metric, §5.5).
  DurationSec wait() const { return start - submit; }
  /// Node-seconds of useful computation.
  double node_seconds() const {
    return static_cast<double>(nodes) * static_cast<double>(finish - start);
  }
};

/// Everything a simulation run produces.
struct SimResult {
  std::string policy_name;
  std::string trace_name;
  NodeCount system_nodes = 0;

  /// Accounting horizon: first submission to last completion.
  TimeSec horizon_begin = 0;
  TimeSec horizon_end = 0;

  /// One record per trace job, in trace (submit) order.
  std::vector<JobRecord> records;

  // Billing (currency units of the tariff) and energy (joules).
  Money total_bill = 0.0;
  Money bill_on_peak = 0.0;
  Money bill_off_peak = 0.0;
  Joules total_energy = 0.0;
  Joules energy_on_peak = 0.0;
  Joules energy_off_peak = 0.0;
  /// Raw IT energy (equals total_energy without a facility model).
  Joules it_energy = 0.0;
  /// Bill per day index (day 0 = simulation epoch).
  std::vector<Money> daily_bills;

  /// Average power (watts) per time-of-day bin — Fig. 13. Empty when curve
  /// recording is disabled.
  std::vector<double> power_curve;
  /// Average busy-node *fraction* per time-of-day bin — Fig. 12.
  std::vector<double> utilization_curve;

  // Simulator internals, for the overhead micro-benches.
  std::uint64_t scheduling_passes = 0;
  std::uint64_t ticks_processed = 0;
  /// Placement attempts rejected by the allocation model (always 0 under
  /// the paper's fungible pool; counts fragmentation misses under
  /// contiguous allocation).
  std::uint64_t placement_failures = 0;

  /// Mean job wait time in seconds (0 for an empty run).
  double mean_wait_seconds() const {
    if (records.empty()) return 0.0;
    double total = 0.0;
    for (const JobRecord& r : records)
      total += static_cast<double>(r.wait());
    return total / static_cast<double>(records.size());
  }
};

}  // namespace esched::sim
