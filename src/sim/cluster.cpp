#include "sim/cluster.hpp"

#include "util/error.hpp"

namespace esched::sim {

Cluster::Cluster(NodeCount total_nodes, Watts idle_watts_per_node)
    : total_(total_nodes),
      free_(total_nodes),
      idle_watts_per_node_(idle_watts_per_node) {
  ESCHED_REQUIRE(total_ > 0, "cluster needs at least one node");
  ESCHED_REQUIRE(idle_watts_per_node_ >= 0.0, "negative idle power");
}

void Cluster::allocate(JobId job, NodeCount nodes, Watts watts_per_node) {
  ESCHED_REQUIRE(nodes > 0, "allocation must take nodes");
  ESCHED_REQUIRE(watts_per_node >= 0.0, "negative job power");
  ESCHED_REQUIRE(fits(nodes), "allocation exceeds free nodes (job " +
                                  std::to_string(job) + ")");
  const bool inserted =
      allocations_.emplace(job, Allocation{nodes, watts_per_node}).second;
  ESCHED_REQUIRE(inserted,
                 "job " + std::to_string(job) + " is already running");
  free_ -= nodes;
  busy_power_ += watts_per_node * static_cast<double>(nodes);
}

void Cluster::release(JobId job) {
  const auto it = allocations_.find(job);
  ESCHED_REQUIRE(it != allocations_.end(),
                 "release of non-running job " + std::to_string(job));
  free_ += it->second.nodes;
  busy_power_ -=
      it->second.watts_per_node * static_cast<double>(it->second.nodes);
  if (busy_power_ < 0.0) busy_power_ = 0.0;  // guard fp drift at empty
  allocations_.erase(it);
  ESCHED_REQUIRE(free_ <= total_, "node accounting corrupted");
}

Watts Cluster::current_power() const {
  return busy_power_ + idle_watts_per_node_ * static_cast<double>(free_);
}

}  // namespace esched::sim
