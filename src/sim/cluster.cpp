#include "sim/cluster.hpp"

#include "util/error.hpp"

namespace esched::sim {

Cluster::Cluster(NodeCount total_nodes, Watts idle_watts_per_node)
    : total_(total_nodes),
      free_(total_nodes),
      idle_watts_per_node_(idle_watts_per_node) {
  ESCHED_REQUIRE(total_ > 0, "cluster needs at least one node");
  ESCHED_REQUIRE(idle_watts_per_node_ >= 0.0, "negative idle power");
}

void Cluster::reserve(std::size_t max_concurrent) {
  slot_nodes_.reserve(max_concurrent);
  slot_power_.reserve(max_concurrent);
  free_slots_.reserve(max_concurrent);
}

std::int32_t Cluster::allocate_slot(NodeCount nodes, Watts watts_per_node) {
  ESCHED_REQUIRE(nodes > 0, "allocation must take nodes");
  ESCHED_REQUIRE(watts_per_node >= 0.0, "negative job power");
  ESCHED_REQUIRE(fits(nodes), "allocation exceeds free nodes");
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slot_nodes_[static_cast<std::size_t>(slot)] = nodes;
    slot_power_[static_cast<std::size_t>(slot)] =
        watts_per_node * static_cast<double>(nodes);
  } else {
    slot = static_cast<std::int32_t>(slot_nodes_.size());
    slot_nodes_.push_back(nodes);
    slot_power_.push_back(watts_per_node * static_cast<double>(nodes));
  }
  free_ -= nodes;
  busy_power_ += slot_power_[static_cast<std::size_t>(slot)];
  ++running_;
  return slot;
}

void Cluster::release_slot(std::int32_t slot) {
  const auto s = static_cast<std::size_t>(slot);
  ESCHED_REQUIRE(slot >= 0 && s < slot_nodes_.size() && slot_nodes_[s] > 0,
                 "release of unallocated slot " + std::to_string(slot));
  free_ += slot_nodes_[s];
  busy_power_ -= slot_power_[s];
  if (busy_power_ < 0.0) busy_power_ = 0.0;  // guard fp drift at empty
  slot_nodes_[s] = 0;
  slot_power_[s] = 0.0;
  free_slots_.push_back(slot);
  --running_;
  ESCHED_REQUIRE(free_ <= total_, "node accounting corrupted");
}

void Cluster::allocate(JobId job, NodeCount nodes, Watts watts_per_node) {
  ESCHED_REQUIRE(id_to_slot_.find(job) == id_to_slot_.end(),
                 "job " + std::to_string(job) + " is already running");
  id_to_slot_.emplace(job, allocate_slot(nodes, watts_per_node));
}

void Cluster::release(JobId job) {
  const auto it = id_to_slot_.find(job);
  ESCHED_REQUIRE(it != id_to_slot_.end(),
                 "release of non-running job " + std::to_string(job));
  release_slot(it->second);
  id_to_slot_.erase(it);
}

Watts Cluster::current_power() const {
  return busy_power_ + idle_watts_per_node_ * static_cast<double>(free_);
}

}  // namespace esched::sim
