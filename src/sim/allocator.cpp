#include "sim/allocator.hpp"

#include <limits>

#include "util/error.hpp"

namespace esched::sim {

// ------------------------------------------------------------ Counting --

CountingAllocator::CountingAllocator(NodeCount total_nodes,
                                     Watts idle_watts_per_node)
    : cluster_(total_nodes, idle_watts_per_node) {}

NodeCount CountingAllocator::total_nodes() const {
  return cluster_.total_nodes();
}

NodeCount CountingAllocator::free_nodes() const {
  return cluster_.free_nodes();
}

void CountingAllocator::reserve(std::size_t max_concurrent) {
  cluster_.reserve(max_concurrent);
}

bool CountingAllocator::can_allocate(NodeCount nodes) const {
  return cluster_.fits(nodes);
}

std::int32_t CountingAllocator::try_allocate_slot(NodeCount nodes,
                                                  Watts watts_per_node) {
  if (!cluster_.fits(nodes)) return -1;
  return cluster_.allocate_slot(nodes, watts_per_node);
}

void CountingAllocator::release_slot(std::int32_t slot) {
  cluster_.release_slot(slot);
}

bool CountingAllocator::try_allocate(JobId job, NodeCount nodes,
                                     Watts watts_per_node) {
  if (!cluster_.fits(nodes)) return false;
  cluster_.allocate(job, nodes, watts_per_node);
  return true;
}

void CountingAllocator::release(JobId job) { cluster_.release(job); }

Watts CountingAllocator::current_power() const {
  return cluster_.current_power();
}

std::unique_ptr<NodeAllocator> CountingAllocator::clone() const {
  return std::make_unique<CountingAllocator>(*this);
}

// ---------------------------------------------------------- Contiguous --

ContiguousAllocator::ContiguousAllocator(NodeCount total_nodes,
                                         Watts idle_watts_per_node)
    : total_(total_nodes),
      free_(total_nodes),
      idle_watts_per_node_(idle_watts_per_node) {
  ESCHED_REQUIRE(total_ > 0, "allocator needs at least one node");
  ESCHED_REQUIRE(idle_watts_per_node_ >= 0.0, "negative idle power");
}

NodeCount ContiguousAllocator::total_nodes() const { return total_; }

NodeCount ContiguousAllocator::free_nodes() const { return free_; }

void ContiguousAllocator::reserve(std::size_t max_concurrent) {
  slot_start_.reserve(max_concurrent);
  free_slots_.reserve(max_concurrent);
}

std::pair<NodeCount, bool> ContiguousAllocator::best_fit(
    NodeCount nodes) const {
  NodeCount best_start = 0;
  NodeCount best_len = std::numeric_limits<NodeCount>::max();
  bool found = false;
  NodeCount cursor = 0;
  auto consider = [&](NodeCount hole_start, NodeCount hole_len) {
    if (hole_len >= nodes && hole_len < best_len) {
      best_start = hole_start;
      best_len = hole_len;
      found = true;
    }
  };
  for (const auto& [start, alloc] : by_start_) {
    if (start > cursor) consider(cursor, start - cursor);
    cursor = start + alloc.length;
  }
  if (cursor < total_) consider(cursor, total_ - cursor);
  return {best_start, found};
}

bool ContiguousAllocator::can_allocate(NodeCount nodes) const {
  ESCHED_REQUIRE(nodes > 0, "allocation must take nodes");
  return best_fit(nodes).second;
}

std::int32_t ContiguousAllocator::try_allocate_slot(NodeCount nodes,
                                                    Watts watts_per_node) {
  ESCHED_REQUIRE(nodes > 0, "allocation must take nodes");
  ESCHED_REQUIRE(watts_per_node >= 0.0, "negative job power");
  const auto [start, found] = best_fit(nodes);
  if (!found) return -1;
  by_start_.emplace(start, Allocation{start, nodes, watts_per_node});
  free_ -= nodes;
  busy_power_ += watts_per_node * static_cast<double>(nodes);
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slot_start_[static_cast<std::size_t>(slot)] = start;
  } else {
    slot = static_cast<std::int32_t>(slot_start_.size());
    slot_start_.push_back(start);
  }
  return slot;
}

void ContiguousAllocator::release_block(NodeCount start) {
  const auto block = by_start_.find(start);
  ESCHED_REQUIRE(block != by_start_.end(), "allocator state corrupted");
  free_ += block->second.length;
  busy_power_ -= block->second.watts_per_node *
                 static_cast<double>(block->second.length);
  if (busy_power_ < 0.0) busy_power_ = 0.0;
  by_start_.erase(block);
}

void ContiguousAllocator::release_slot(std::int32_t slot) {
  const auto s = static_cast<std::size_t>(slot);
  ESCHED_REQUIRE(slot >= 0 && s < slot_start_.size() && slot_start_[s] >= 0,
                 "release of unallocated slot " + std::to_string(slot));
  release_block(slot_start_[s]);
  slot_start_[s] = -1;
  free_slots_.push_back(slot);
}

bool ContiguousAllocator::try_allocate(JobId job, NodeCount nodes,
                                       Watts watts_per_node) {
  ESCHED_REQUIRE(nodes > 0, "allocation must take nodes");
  ESCHED_REQUIRE(watts_per_node >= 0.0, "negative job power");
  ESCHED_REQUIRE(job_to_start_.find(job) == job_to_start_.end(),
                 "job " + std::to_string(job) + " is already running");
  const auto [start, found] = best_fit(nodes);
  if (!found) return false;
  by_start_.emplace(start, Allocation{start, nodes, watts_per_node});
  job_to_start_.emplace(job, start);
  free_ -= nodes;
  busy_power_ += watts_per_node * static_cast<double>(nodes);
  return true;
}

void ContiguousAllocator::release(JobId job) {
  const auto it = job_to_start_.find(job);
  ESCHED_REQUIRE(it != job_to_start_.end(),
                 "release of non-running job " + std::to_string(job));
  release_block(it->second);
  job_to_start_.erase(it);
}

Watts ContiguousAllocator::current_power() const {
  return busy_power_ + idle_watts_per_node_ * static_cast<double>(free_);
}

std::unique_ptr<NodeAllocator> ContiguousAllocator::clone() const {
  return std::make_unique<ContiguousAllocator>(*this);
}

NodeCount ContiguousAllocator::largest_hole() const {
  NodeCount best = 0;
  NodeCount cursor = 0;
  for (const auto& [start, alloc] : by_start_) {
    best = std::max(best, start - cursor);
    cursor = start + alloc.length;
  }
  return std::max(best, total_ - cursor);
}

std::size_t ContiguousAllocator::hole_count() const {
  std::size_t holes = 0;
  NodeCount cursor = 0;
  for (const auto& [start, alloc] : by_start_) {
    if (start > cursor) ++holes;
    cursor = start + alloc.length;
  }
  if (cursor < total_) ++holes;
  return holes;
}

// -------------------------------------------------------------- Factory --

std::unique_ptr<NodeAllocator> make_allocator(bool contiguous,
                                              NodeCount total_nodes,
                                              Watts idle_watts_per_node) {
  if (contiguous) {
    return std::make_unique<ContiguousAllocator>(total_nodes,
                                                 idle_watts_per_node);
  }
  return std::make_unique<CountingAllocator>(total_nodes,
                                             idle_watts_per_node);
}

}  // namespace esched::sim
