#include "sim/allocator.hpp"

#include <limits>

#include "util/error.hpp"

namespace esched::sim {

// ------------------------------------------------------------ Counting --

CountingAllocator::CountingAllocator(NodeCount total_nodes,
                                     Watts idle_watts_per_node)
    : cluster_(total_nodes, idle_watts_per_node) {}

NodeCount CountingAllocator::total_nodes() const {
  return cluster_.total_nodes();
}

NodeCount CountingAllocator::free_nodes() const {
  return cluster_.free_nodes();
}

bool CountingAllocator::can_allocate(NodeCount nodes) const {
  return cluster_.fits(nodes);
}

bool CountingAllocator::try_allocate(JobId job, NodeCount nodes,
                                     Watts watts_per_node) {
  if (!cluster_.fits(nodes)) return false;
  cluster_.allocate(job, nodes, watts_per_node);
  return true;
}

void CountingAllocator::release(JobId job) { cluster_.release(job); }

Watts CountingAllocator::current_power() const {
  return cluster_.current_power();
}

// ---------------------------------------------------------- Contiguous --

ContiguousAllocator::ContiguousAllocator(NodeCount total_nodes,
                                         Watts idle_watts_per_node)
    : total_(total_nodes),
      free_(total_nodes),
      idle_watts_per_node_(idle_watts_per_node) {
  ESCHED_REQUIRE(total_ > 0, "allocator needs at least one node");
  ESCHED_REQUIRE(idle_watts_per_node_ >= 0.0, "negative idle power");
}

NodeCount ContiguousAllocator::total_nodes() const { return total_; }

NodeCount ContiguousAllocator::free_nodes() const { return free_; }

std::pair<NodeCount, bool> ContiguousAllocator::best_fit(
    NodeCount nodes) const {
  NodeCount best_start = 0;
  NodeCount best_len = std::numeric_limits<NodeCount>::max();
  bool found = false;
  NodeCount cursor = 0;
  auto consider = [&](NodeCount hole_start, NodeCount hole_len) {
    if (hole_len >= nodes && hole_len < best_len) {
      best_start = hole_start;
      best_len = hole_len;
      found = true;
    }
  };
  for (const auto& [start, alloc] : by_start_) {
    if (start > cursor) consider(cursor, start - cursor);
    cursor = start + alloc.length;
  }
  if (cursor < total_) consider(cursor, total_ - cursor);
  return {best_start, found};
}

bool ContiguousAllocator::can_allocate(NodeCount nodes) const {
  ESCHED_REQUIRE(nodes > 0, "allocation must take nodes");
  return best_fit(nodes).second;
}

bool ContiguousAllocator::try_allocate(JobId job, NodeCount nodes,
                                       Watts watts_per_node) {
  ESCHED_REQUIRE(nodes > 0, "allocation must take nodes");
  ESCHED_REQUIRE(watts_per_node >= 0.0, "negative job power");
  ESCHED_REQUIRE(job_to_start_.find(job) == job_to_start_.end(),
                 "job " + std::to_string(job) + " is already running");
  const auto [start, found] = best_fit(nodes);
  if (!found) return false;
  by_start_.emplace(start, Allocation{start, nodes, watts_per_node});
  job_to_start_.emplace(job, start);
  free_ -= nodes;
  busy_power_ += watts_per_node * static_cast<double>(nodes);
  return true;
}

void ContiguousAllocator::release(JobId job) {
  const auto it = job_to_start_.find(job);
  ESCHED_REQUIRE(it != job_to_start_.end(),
                 "release of non-running job " + std::to_string(job));
  const auto block = by_start_.find(it->second);
  ESCHED_REQUIRE(block != by_start_.end(), "allocator state corrupted");
  free_ += block->second.length;
  busy_power_ -= block->second.watts_per_node *
                 static_cast<double>(block->second.length);
  if (busy_power_ < 0.0) busy_power_ = 0.0;
  by_start_.erase(block);
  job_to_start_.erase(it);
}

Watts ContiguousAllocator::current_power() const {
  return busy_power_ + idle_watts_per_node_ * static_cast<double>(free_);
}

NodeCount ContiguousAllocator::largest_hole() const {
  NodeCount best = 0;
  NodeCount cursor = 0;
  for (const auto& [start, alloc] : by_start_) {
    best = std::max(best, start - cursor);
    cursor = start + alloc.length;
  }
  return std::max(best, total_ - cursor);
}

std::size_t ContiguousAllocator::hole_count() const {
  std::size_t holes = 0;
  NodeCount cursor = 0;
  for (const auto& [start, alloc] : by_start_) {
    if (start > cursor) ++holes;
    cursor = start + alloc.length;
  }
  if (cursor < total_) ++holes;
  return holes;
}

// -------------------------------------------------------------- Factory --

std::unique_ptr<NodeAllocator> make_allocator(bool contiguous,
                                              NodeCount total_nodes,
                                              Watts idle_watts_per_node) {
  if (contiguous) {
    return std::make_unique<ContiguousAllocator>(total_nodes,
                                                 idle_watts_per_node);
  }
  return std::make_unique<CountingAllocator>(total_nodes,
                                             idle_watts_per_node);
}

}  // namespace esched::sim
