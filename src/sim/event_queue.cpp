#include "sim/event_queue.hpp"

#include "util/error.hpp"

namespace esched::sim {

void EventQueue::push(TimeSec time, EventType type, std::size_t payload) {
  heap_.push(Event{time, type, payload, next_seq_++});
}

const Event& EventQueue::top() const {
  ESCHED_REQUIRE(!heap_.empty(), "top() on empty EventQueue");
  return heap_.top();
}

Event EventQueue::pop() {
  ESCHED_REQUIRE(!heap_.empty(), "pop() on empty EventQueue");
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace esched::sim
