#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace esched::sim {

void EventQueue::reserve(std::size_t events) { heap_.reserve(events); }

void EventQueue::push(TimeSec time, EventType type, std::size_t payload) {
  heap_.push_back(Event{time, type, payload, next_seq_++});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

const Event& EventQueue::top() const {
  ESCHED_REQUIRE(!heap_.empty(), "top() on empty EventQueue");
  return heap_.front();
}

Event EventQueue::pop() {
  ESCHED_REQUIRE(!heap_.empty(), "pop() on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event e = heap_.back();
  heap_.pop_back();
  return e;
}

}  // namespace esched::sim
