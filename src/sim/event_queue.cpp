#include "sim/event_queue.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "util/error.hpp"

namespace esched::sim {

namespace {

/// Smallest power of two >= n, clamped to [min_pow2, max_pow2].
std::size_t clamped_pow2(std::size_t n, std::size_t min_pow2,
                         std::size_t max_pow2) {
  std::size_t p = min_pow2;
  while (p < n && p < max_pow2) p <<= 1;
  return p;
}

// Lazy-init defaults when the caller never called configure(): a ~18-hour
// window of one-minute buckets. Any workload works (overflow + rebase
// handle everything); configure() only makes the common case faster.
constexpr DurationSec kDefaultWidth = 64;
constexpr std::size_t kDefaultBuckets = 1024;

}  // namespace

EventQueue::Backend EventQueue::backend_from_env() {
  if (const char* env = std::getenv("ESCHED_EVENTQ")) {
    if (std::string_view(env) == "heap") return Backend::kHeap;
  }
  return Backend::kCalendar;
}

EventQueue::EventQueue(Backend backend) : backend_(backend) {}

template <typename T>
void EventQueue::grow_aware_push(std::vector<T>& v, const T& e) {
  if (v.size() == v.capacity()) ++reallocs_;
  v.push_back(e);
}

void EventQueue::reserve(std::size_t events) {
  if (backend_ == Backend::kHeap) {
    heap_.reserve(events);
  } else {
    // The calendar spreads events across buckets; reserving the overflow
    // covers the worst case of a window that turns out too narrow.
    overflow_.reserve(events / 4 + 16);
  }
}

void EventQueue::configure(TimeSec start, DurationSec span,
                           std::size_t expected_events) {
  if (backend_ == Backend::kHeap) return;
  ESCHED_REQUIRE(size_ == 0, "EventQueue::configure on a non-empty queue");
  if (span < 1) span = 1;
  // Aim for ~2 events per bucket across the whole span so the cursor
  // rarely scans an empty bucket and never a long one. Bucket count is a
  // power of two for mask-based indexing, capped to bound memory on
  // huge-event traces (past the cap the window wraps, which stays cheap
  // because event streams are near-monotone).
  const std::size_t want =
      clamped_pow2(expected_events / 2 + 1, 64, std::size_t{1} << 20);
  buckets_.assign(want, {});
  width_ = std::max<DurationSec>(
      1, (span + static_cast<DurationSec>(want) - 1) /
             static_cast<DurationSec>(want));
  window_start_ = start;
  cur_ = 0;
  cur_pos_ = 0;
  cur_sorted_ = false;
}

void EventQueue::push(TimeSec time, EventType type, std::size_t payload) {
  push_event(Event{time, type, payload, next_seq_++});
}

void EventQueue::push_event(const Event& e) {
  if (backend_ == Backend::kHeap) {
    grow_aware_push(heap_, e);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++size_;
    return;
  }
  if (width_ == 0) calendar_init(e.time);
  ++size_;
  if (e.time < window_start_) {
    // Before the window — legal for the raw container, never produced by
    // the simulator (its pushes are at/after the current event time).
    grow_aware_push(overflow_, e);
    calendar_rebase(e.time);
    return;
  }
  calendar_insert(e);
}

void EventQueue::calendar_init(TimeSec first_time) {
  buckets_.assign(kDefaultBuckets, {});
  width_ = kDefaultWidth;
  window_start_ = first_time;
  cur_ = 0;
  cur_pos_ = 0;
  cur_sorted_ = false;
}

void EventQueue::calendar_insert(const Event& e) {
  if (e.time >= window_end()) {
    grow_aware_push(overflow_, e);
    return;
  }
  const std::size_t idx = bucket_index(e.time);
  std::vector<Event>& bucket = buckets_[idx];
  if (idx == cur_ && cur_sorted_) {
    // The cursor already sorted (and possibly partially consumed) this
    // bucket: keep the unconsumed tail ordered. For the simulator's
    // monotone pushes the position is always at/after cur_pos_; for a
    // non-monotone push upper_bound lands it at cur_pos_, which is
    // exactly the heap's behaviour (it would be popped next).
    if (bucket.size() == bucket.capacity()) ++reallocs_;
    bucket.insert(
        std::upper_bound(
            bucket.begin() + static_cast<std::ptrdiff_t>(cur_pos_),
            bucket.end(), e, Earlier{}),
        e);
    return;
  }
  if (idx < cur_) {
    // A bucket the cursor already passed: only a non-monotone push can
    // get here. Park it in overflow and rebase so the cursor restarts
    // below it — correctness over speed on the path the simulator never
    // takes.
    grow_aware_push(overflow_, e);
    calendar_rebase(window_start_);
    return;
  }
  grow_aware_push(bucket, e);
}

void EventQueue::calendar_rebase(TimeSec new_start) {
  ++reallocs_;  // rebases are the expensive path; keep them visible
  std::vector<Event> all;
  all.reserve(size_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    // The consumed prefix [0, cur_pos_) of the cursor bucket was already
    // popped; it is no longer part of the queue.
    const std::size_t begin = i == cur_ ? cur_pos_ : 0;
    all.insert(all.end(),
               buckets_[i].begin() + static_cast<std::ptrdiff_t>(begin),
               buckets_[i].end());
    buckets_[i].clear();
  }
  all.insert(all.end(), overflow_.begin(), overflow_.end());
  overflow_.clear();
  window_start_ = std::min(new_start, window_start_);
  cur_ = 0;
  cur_pos_ = 0;
  cur_sorted_ = false;
  for (const Event& e : all) {
    if (e.time >= window_end()) {
      overflow_.push_back(e);
    } else {
      buckets_[bucket_index(e.time)].push_back(e);
    }
  }
}

void EventQueue::calendar_settle() {
  for (;;) {
    if (cur_pos_ < buckets_[cur_].size()) {
      if (!cur_sorted_) {
        std::sort(
            buckets_[cur_].begin() + static_cast<std::ptrdiff_t>(cur_pos_),
            buckets_[cur_].end(), Earlier{});
        cur_sorted_ = true;
      }
      return;
    }
    // Bucket drained: move the cursor on.
    buckets_[cur_].clear();
    cur_pos_ = 0;
    cur_sorted_ = false;
    if (++cur_ < buckets_.size()) continue;

    // Window exhausted. Every remaining event sits in overflow (all
    // buckets were drained as the cursor passed them); advance the
    // window — skipping empty revolutions — and pull in what now fits.
    cur_ = 0;
    window_start_ = window_end();
    ESCHED_REQUIRE(!overflow_.empty(),
                   "calendar queue invariant violated: events lost");
    TimeSec min_time = overflow_.front().time;
    for (const Event& e : overflow_) min_time = std::min(min_time, e.time);
    if (min_time >= window_end()) {
      const DurationSec revolution =
          static_cast<DurationSec>(buckets_.size()) * width_;
      window_start_ +=
          ((min_time - window_start_) / revolution) * revolution;
    }
    std::vector<Event> keep;
    keep.reserve(overflow_.size());
    for (const Event& e : overflow_) {
      if (e.time < window_end()) {
        buckets_[bucket_index(e.time)].push_back(e);
      } else {
        keep.push_back(e);
      }
    }
    overflow_ = std::move(keep);
  }
}

const Event& EventQueue::top() const {
  ESCHED_REQUIRE(size_ > 0, "top() on empty EventQueue");
  if (backend_ == Backend::kHeap) return heap_.front();
  // settle() only advances cursors / sorts buckets; the queue's logical
  // content is unchanged, so top() stays logically const.
  auto* self = const_cast<EventQueue*>(this);
  self->calendar_settle();
  return buckets_[cur_][cur_pos_];
}

Event EventQueue::pop() {
  ESCHED_REQUIRE(size_ > 0, "pop() on empty EventQueue");
  if (backend_ == Backend::kHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event e = heap_.back();
    heap_.pop_back();
    --size_;
    return e;
  }
  calendar_settle();
  const Event e = buckets_[cur_][cur_pos_];
  ++cur_pos_;
  --size_;
  return e;
}

std::vector<Event> EventQueue::snapshot_events() const {
  std::vector<Event> events;
  events.reserve(size_);
  if (backend_ == Backend::kHeap) {
    events = heap_;
  } else {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const std::size_t begin = i == cur_ ? cur_pos_ : 0;
      events.insert(events.end(),
                    buckets_[i].begin() +
                        static_cast<std::ptrdiff_t>(begin),
                    buckets_[i].end());
    }
    events.insert(events.end(), overflow_.begin(), overflow_.end());
  }
  std::sort(events.begin(), events.end(), Earlier{});
  return events;
}

void EventQueue::restore(const std::vector<Event>& events,
                         std::uint64_t next_seq) {
  ESCHED_REQUIRE(size_ == 0, "EventQueue::restore on a non-empty queue");
  // push_event preserves each event's recorded seq (and counts sizes);
  // next_seq_ is then pinned so later pushes continue the original
  // numbering exactly.
  for (const Event& e : events) push_event(e);
  next_seq_ = next_seq;
}

}  // namespace esched::sim
