// The discrete-event core: a stable min-heap of simulation events.
//
// Ordering at equal timestamps matters for correctness: job completions
// must release nodes before a scheduler tick runs, and same-time
// submissions must be visible to that tick. EventType's enumerator order
// encodes exactly that priority; a monotone sequence number breaks the
// remaining ties so the simulation is fully deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace esched::sim {

/// Kinds of simulation events, in same-timestamp processing order.
enum class EventType : std::uint8_t {
  kJobFinish = 0,  ///< a running job completes (frees nodes first)
  kJobSubmit = 1,  ///< a job arrives into the wait queue
  kTick = 2,       ///< periodic scheduler invocation (sees the new state)
};

/// One simulation event. `payload` is a job index for submit/finish and
/// unused for ticks.
struct Event {
  TimeSec time = 0;
  EventType type = EventType::kTick;
  std::size_t payload = 0;
  std::uint64_t seq = 0;  ///< insertion order; final tie-breaker
};

/// Stable min-heap of events (earliest time first; see EventType for the
/// same-time ordering). Backed by a plain vector (std::push_heap /
/// std::pop_heap) so the simulator can pre-reserve the event storage.
class EventQueue {
 public:
  /// Pre-allocate storage for `events` entries (capacity hint).
  void reserve(std::size_t events);

  /// Add an event; `seq` is assigned internally.
  void push(TimeSec time, EventType type, std::size_t payload = 0);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// The earliest event without removing it. Requires non-empty.
  const Event& top() const;

  /// Remove and return the earliest event. Requires non-empty.
  Event pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.type != b.type) return a.type > b.type;
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;  // max-heap under Later == min-event first
  std::uint64_t next_seq_ = 0;
};

}  // namespace esched::sim
