// The discrete-event core: a stable priority queue of simulation events
// with two interchangeable backends.
//
// Ordering at equal timestamps matters for correctness: job completions
// must release nodes before a scheduler tick runs, and same-time
// submissions must be visible to that tick. EventType's enumerator order
// encodes exactly that priority; a monotone sequence number breaks the
// remaining ties so the simulation is fully deterministic.
//
// Backends (selectable per queue, or process-wide via ESCHED_EVENTQ):
//  * kCalendar (default) — a calendar queue [Brown '88]: a ring of
//    fixed-width time buckets covering a sliding window, with an
//    unsorted overflow list for events beyond it. The simulator's event
//    streams are near-monotone (submissions are pre-sorted, completions
//    and ticks always land in the future), so push is O(1) amortized and
//    pop is O(1) amortized: a bucket is sorted once when the cursor
//    enters it and then consumed in order. Ordering invariants:
//      - buckets partition the window into disjoint ascending time
//        ranges, so the front of the active bucket is the global
//        in-window minimum;
//      - overflow events are all >= the window end, so they can never
//        precede an in-window event;
//      - within a bucket, events sort by (time, type, seq) — the exact
//        heap comparator — and a push into the already-active bucket
//        ordered-inserts into the unconsumed tail, preserving it.
//    Pushing an event *earlier* than the window start (impossible for
//    the simulator, legal for the raw container) triggers a full rebase:
//    every stored event is re-bucketed around the new minimum. The pop
//    sequence is therefore identical to the heap backend's for any
//    push/pop interleaving (event_queue_test runs both differentially).
//  * kHeap — the reference std::push_heap/std::pop_heap binary heap
//    (O(log n)); selected with ESCHED_EVENTQ=heap for differential
//    testing and as the fallback should a calendar bug ever surface.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace esched::sim {

/// Kinds of simulation events, in same-timestamp processing order.
enum class EventType : std::uint8_t {
  kJobFinish = 0,  ///< a running job completes (frees nodes first)
  kJobSubmit = 1,  ///< a job arrives into the wait queue
  kTick = 2,       ///< periodic scheduler invocation (sees the new state)
};

/// One simulation event. `payload` is a job index for submit/finish and
/// unused for ticks.
struct Event {
  TimeSec time = 0;
  EventType type = EventType::kTick;
  std::size_t payload = 0;
  std::uint64_t seq = 0;  ///< insertion order; final tie-breaker
};

/// Stable priority queue of events (earliest time first; see EventType
/// for the same-time ordering).
class EventQueue {
 public:
  enum class Backend : std::uint8_t {
    kCalendar,  ///< O(1) amortized calendar queue (the default)
    kHeap,      ///< reference binary heap (ESCHED_EVENTQ=heap)
  };

  /// Backend selected by the ESCHED_EVENTQ environment variable:
  /// "heap" picks the binary heap, anything else (or unset) the calendar.
  static Backend backend_from_env();

  /// Default-constructed queues read ESCHED_EVENTQ (the simulator path);
  /// tests pass an explicit backend.
  EventQueue() : EventQueue(backend_from_env()) {}
  explicit EventQueue(Backend backend);

  Backend backend() const { return backend_; }

  /// Pre-allocate storage for `events` entries (capacity hint only — the
  /// queue still grows past it, counting each growth in reallocs()).
  void reserve(std::size_t events);

  /// Size the calendar for a known event horizon: events are expected in
  /// [start, start + span) and to number about `expected_events`. Sizes
  /// the bucket ring so the window covers the whole span with ~O(1)
  /// events per bucket. Must be called while empty; a no-op for the heap
  /// backend. Never required for correctness, only for speed.
  void configure(TimeSec start, DurationSec span,
                 std::size_t expected_events);

  /// Add an event; `seq` is assigned internally.
  void push(TimeSec time, EventType type, std::size_t payload = 0);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// The earliest event without removing it. Requires non-empty.
  const Event& top() const;

  /// Remove and return the earliest event. Requires non-empty.
  Event pop();

  /// Number of storage reallocations (vector growth, calendar rebases)
  /// since construction — flushed by the simulator into the
  /// `sim.eventq_reallocs` obs counter so hot-path allocation that a
  /// reserve()/configure() hint failed to cover stays visible.
  std::uint64_t reallocs() const { return reallocs_; }

  /// All pending events, in pop order, plus the next sequence number —
  /// the snapshot half of the simulator's snapshot/fork support.
  std::vector<Event> snapshot_events() const;
  std::uint64_t next_seq() const { return next_seq_; }

  /// Restore a snapshot taken with snapshot_events(). The queue must be
  /// empty; event seq fields are preserved verbatim so the pop order of
  /// the restored queue matches the snapshotted one exactly.
  void restore(const std::vector<Event>& events, std::uint64_t next_seq);

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.type != b.type) return a.type > b.type;
      return a.seq > b.seq;
    }
  };
  struct Earlier {  // ascending (time, type, seq) — the in-bucket order
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time < b.time;
      if (a.type != b.type) return a.type < b.type;
      return a.seq < b.seq;
    }
  };

  void push_event(const Event& e);
  template <typename T>
  void grow_aware_push(std::vector<T>& v, const T& e);

  // -- calendar internals --
  void calendar_init(TimeSec first_time);
  void calendar_insert(const Event& e);
  void calendar_rebase(TimeSec new_start);
  /// Advance cur_ to the first bucket with unconsumed events, wrapping
  /// the window and redistributing overflow as needed; sorts the bucket
  /// tail on first contact. Requires non-empty.
  void calendar_settle();
  std::size_t bucket_index(TimeSec t) const {
    return static_cast<std::size_t>((t - window_start_) / width_) &
           (buckets_.size() - 1);
  }
  TimeSec window_end() const {
    return window_start_ +
           static_cast<TimeSec>(buckets_.size()) * width_;
  }

  Backend backend_;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
  std::uint64_t reallocs_ = 0;

  // Heap backend: max-heap under Later == min-event first.
  std::vector<Event> heap_;

  // Calendar backend.
  std::vector<std::vector<Event>> buckets_;  ///< ring; empty until first use
  std::vector<Event> overflow_;   ///< events at/after window_end()
  TimeSec window_start_ = 0;      ///< inclusive start of bucket 0
  DurationSec width_ = 0;         ///< seconds per bucket (0 = uninitialized)
  std::size_t cur_ = 0;           ///< cursor bucket index
  std::size_t cur_pos_ = 0;       ///< consumed prefix of the cursor bucket
  bool cur_sorted_ = false;       ///< cursor bucket tail is sorted
};

}  // namespace esched::sim
