#include "sim/simulator.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "power/billing.hpp"
#include "sim/allocator.hpp"
#include "sim/daily_curve.hpp"
#include "sim/event_queue.hpp"
#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::sim {

namespace {

/// Internal engine; simulate() constructs one per run.
class Engine {
 public:
  Engine(const trace::Trace& trace, const power::PricingModel& pricing,
         core::SchedulingPolicy& policy, const SimConfig& config,
         power::PowerVisibility* visibility)
      : trace_(trace),
        pricing_(pricing),
        visibility_(visibility),
        scheduler_(policy, config.scheduler),
        config_(config),
        tracer_(config.tracer != nullptr && config.tracer->enabled()
                    ? config.tracer
                    : nullptr),
        alloc_(make_allocator(config.contiguous_allocation,
                              trace.system_nodes(),
                              config.idle_watts_per_node)),
        meter_(pricing, trace.empty() ? 0 : trace.first_submit(),
               config.facility_model),
        power_curve_(config.daily_curve_bins),
        util_curve_(config.daily_curve_bins) {
    ESCHED_REQUIRE(config_.tick_interval > 0,
                   "tick interval must be positive");
  }

  SimResult run() {
    trace_.validate();
    SimResult result;
    result.policy_name = scheduler_.policy().name();
    result.trace_name = trace_.name();
    result.system_nodes = trace_.system_nodes();
    if (tracer_ != nullptr) {
      sim_label_ = result.policy_name + "/" + result.trace_name;
    }
    obs::SpanGuard run_span(tracer_, "sim:" + sim_label_, "sim");
    if (trace_.empty()) return result;

    result.horizon_begin = trace_.first_submit();
    last_signal_time_ = result.horizon_begin;
    records_.resize(trace_.size());

    // Pre-size the per-run containers so the event loop never reallocates
    // in the common case: the wait queue is bounded by the trace, the
    // running set by the node count (every job needs >= 1 node), and the
    // event heap holds at most one submit + one finish per job plus a
    // handful of outstanding ticks.
    queue_.reserve(trace_.size());
    queue_trace_idx_.reserve(trace_.size());
    const std::size_t max_running = std::min(
        trace_.size(), static_cast<std::size_t>(trace_.system_nodes()));
    running_.reserve(max_running);
    running_ids_.reserve(max_running);
    running_pos_.reserve(max_running);
    events_.reserve(2 * trace_.size() + 16);

    // Workflow dependencies: a dependent job's submit event is deferred
    // until its predecessor finishes. Only predecessors appearing earlier
    // in the trace are honored (rules out cycles and dangling ids).
    std::unordered_map<JobId, std::size_t> index_of;
    if (config_.honor_dependencies) {
      index_of.reserve(trace_.size());
      dependents_.assign(trace_.size(), {});
    }
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const trace::Job& j = trace_[i];
      records_[i] = JobRecord{j.id,          j.submit, /*start=*/-1,
                              /*finish=*/-1, j.nodes,  j.power_per_node,
                              j.user};
      bool deferred = false;
      if (config_.honor_dependencies) {
        if (j.preceding != 0) {
          const auto it = index_of.find(j.preceding);
          if (it != index_of.end()) {
            dependents_[it->second].push_back(i);
            deferred = true;
          }
        }
        index_of.emplace(j.id, i);
      }
      if (!deferred) events_.push(j.submit, EventType::kJobSubmit, i);
    }

    {
      obs::SpanGuard loop_span(tracer_, "event_loop:" + sim_label_, "sim");
      while (!events_.empty()) {
        const Event ev = events_.pop();
        ++events_processed_;
        switch (ev.type) {
          case EventType::kJobSubmit:
            handle_submit(ev);
            break;
          case EventType::kJobFinish:
            handle_finish(ev);
            break;
          case EventType::kTick:
            handle_tick(ev, result);
            break;
        }
      }
    }

    // Every job must have completed — the machine can always eventually
    // run any valid job, so a leftover means a scheduler bug.
    for (const JobRecord& r : records_) {
      ESCHED_REQUIRE(r.finish >= 0,
                     "job " + std::to_string(r.id) + " never completed");
    }

    record_signals(horizon_end_);
    meter_.finish(horizon_end_);

    result.horizon_end = horizon_end_;
    result.records = std::move(records_);
    result.total_bill = meter_.total_bill();
    result.bill_on_peak = meter_.bill_in(power::PricePeriod::kOnPeak);
    result.bill_off_peak = meter_.bill_in(power::PricePeriod::kOffPeak);
    result.total_energy = meter_.total_energy();
    result.energy_on_peak = meter_.energy_in(power::PricePeriod::kOnPeak);
    result.energy_off_peak = meter_.energy_in(power::PricePeriod::kOffPeak);
    result.it_energy = meter_.it_energy();
    result.daily_bills = meter_.daily_bills();
    if (config_.record_daily_curves) {
      result.power_curve = power_curve_.averages();
      result.utilization_curve = util_curve_.averages();
      for (double& u : result.utilization_curve)
        u /= static_cast<double>(trace_.system_nodes());
    }
    result.scheduling_passes = scheduling_passes_;
    result.ticks_processed = ticks_processed_;
    result.placement_failures = placement_failures_;

    // One registry flush per run: the engine accumulates into plain
    // members (free when observability is off) and publishes the totals
    // here, so the event loop itself carries no atomic traffic.
    if (obs::counters_enabled()) {
      obs::Registry& reg = obs::Registry::global();
      reg.counter("sim.runs").add(1);
      reg.counter("sim.events_processed").add(events_processed_);
      reg.counter("sim.ticks_materialized").add(ticks_processed_);
      reg.counter("sim.tick_requests_deduped").add(tick_requests_deduped_);
      reg.counter("sim.duplicate_ticks_skipped")
          .add(duplicate_ticks_skipped_);
      reg.counter("sim.scheduler_passes").add(scheduling_passes_);
      reg.counter("sim.placement_failures").add(placement_failures_);
      reg.counter("sim.jobs_completed").add(trace_.size());
    }
    return result;
  }

 private:
  void handle_submit(const Event& ev) {
    const trace::Job& j = trace_[ev.payload];
    const Watts visible = visibility_ != nullptr
                              ? visibility_->visible_power_per_node(j)
                              : j.power_per_node;
    // records_[..].submit is the *effective* release time (it differs
    // from the trace submit for dependency-deferred jobs).
    const core::PendingJob pending{j.id,
                                   records_[ev.payload].submit,
                                   j.nodes,
                                   j.walltime,
                                   visible,
                                   j.queue};
    std::size_t pos = queue_.size();
    if (config_.honor_queue_priority) {
      // Insert before the first strictly lower-priority job; arrivals
      // within a class keep FCFS order (later submits insert after
      // earlier ones of the same class).
      while (pos > 0 && queue_[pos - 1].queue > pending.queue) --pos;
    }
    queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(pos),
                  pending);
    queue_trace_idx_.insert(
        queue_trace_idx_.begin() + static_cast<std::ptrdiff_t>(pos),
        ev.payload);
    request_tick(ev.time);
  }

  void handle_finish(const Event& ev) {
    const std::size_t idx = ev.payload;
    record_signals(ev.time);
    alloc_->release(records_[idx].id);
    remove_running(records_[idx].id);
    if (visibility_ != nullptr) visibility_->on_job_complete(trace_[idx]);
    records_[idx].finish = ev.time;
    horizon_end_ = std::max(horizon_end_, ev.time);
    meter_.set_power(ev.time, alloc_->current_power());
    if (config_.honor_dependencies && idx < dependents_.size()) {
      for (const std::size_t dep : dependents_[idx]) {
        // Effective release: never before the nominal submit time, and
        // only after the predecessor plus think time. The record's
        // submit is updated so wait() measures schedulable wait.
        const TimeSec release = std::max(
            records_[dep].submit, ev.time + trace_[dep].think_time);
        records_[dep].submit = release;
        events_.push(release, EventType::kJobSubmit, dep);
      }
    }
    if (!queue_.empty()) request_tick(ev.time);
  }

  void handle_tick(const Event& ev, SimResult&) {
    // Duplicate materialised ticks are possible (several events may each
    // request the same boundary); process each boundary once.
    if (ev.time == last_tick_done_) {
      ++duplicate_ticks_skipped_;
      return;
    }
    last_tick_done_ = ev.time;
    ++ticks_processed_;

    // Snapshot the decision inputs before the first pass mutates them.
    obs::TickRecord tick_trace;
    const bool tracing = tracer_ != nullptr && tracer_->enabled();
    if (tracing) {
      tick_trace.sim = sim_label_;
      tick_trace.time = ev.time;
      tick_trace.period =
          pricing_.period_at(ev.time) == power::PricePeriod::kOnPeak
              ? "on_peak"
              : "off_peak";
      tick_trace.free_before = alloc_->free_nodes();
      tick_trace.queue_length = queue_.size();
      const std::size_t w =
          std::min(config_.scheduler.window_size, queue_.size());
      tick_trace.window_ids.reserve(w);
      tick_trace.window_powers.reserve(w);
      for (std::size_t i = 0; i < w; ++i) {
        tick_trace.window_ids.push_back(queue_[i].id);
        tick_trace.window_powers.push_back(queue_[i].power_per_node);
      }
      tick_dispatched_.clear();
      log_dispatches_ = true;
    }

    // Re-run the scheduler until a pass starts nothing (so a fully
    // dispatched window refills within the tick), or until the configured
    // per-tick pass budget runs out (CQSim-style one-shot scheduling).
    std::size_t passes = 0;
    bool starts_exhausted = false;
    const char* stop_reason = queue_.empty()        ? "queue_empty"
                              : alloc_->free_nodes() <= 0 ? "machine_full"
                                                          : "queue_drained";
    while (!queue_.empty() && alloc_->free_nodes() > 0) {
      if (config_.max_passes_per_tick != 0 &&
          passes >= config_.max_passes_per_tick) {
        stop_reason = "pass_budget";
        break;
      }
      const core::ScheduleContext ctx{
          ev.time,           alloc_->free_nodes(),
          alloc_->total_nodes(), pricing_.period_at(ev.time),
          alloc_->current_power(), pricing_.next_price_change(ev.time)};
      ++scheduling_passes_;
      ++passes;
      const std::vector<std::size_t> starts =
          scheduler_.decide(ctx, queue_, running_);
      if (starts.empty()) {
        starts_exhausted = true;
        stop_reason = "no_starts";
        break;
      }
      if (apply_starts(ev.time, starts) == 0) {
        // Count-feasible but unplaceable (fragmentation under the
        // contiguous model): nothing changes until a release.
        starts_exhausted = true;
        stop_reason = "unplaceable";
        break;
      }
      stop_reason = queue_.empty() ? "queue_drained" : "machine_full";
    }

    if (tracing) {
      tick_trace.free_after = alloc_->free_nodes();
      tick_trace.passes = passes;
      tick_trace.dispatched = std::move(tick_dispatched_);
      tick_trace.reason = stop_reason;
      log_dispatches_ = false;
      tick_dispatched_.clear();
      tracer_->record_tick(tick_trace);
    }

    if (!queue_.empty()) {
      if (!starts_exhausted && alloc_->free_nodes() > 0) {
        // The pass budget cut scheduling short with work plausibly still
        // startable: the next tick must fire even without an event.
        request_tick_at_boundary(ev.time + 1);
      }
      // Nothing else changes until an event — except the price period.
      // Ensure a pass happens at (the first tick after) the next flip.
      request_tick_at_boundary(pricing_.next_price_change(ev.time));
    }
  }

  /// Returns the number of jobs actually placed (placement can fail
  /// under the contiguous model even though the count-based scheduler
  /// selected the job; such jobs stay queued).
  std::size_t apply_starts(TimeSec now,
                           const std::vector<std::size_t>& starts) {
    record_signals(now);
    std::size_t placed = 0;
    std::vector<bool> started(queue_.size(), false);
    for (const std::size_t qi : starts) {
      ESCHED_REQUIRE(qi < queue_.size(), "scheduler start out of range");
      ESCHED_REQUIRE(!started[qi], "scheduler started a job twice");
      const std::size_t trace_idx = queue_trace_idx_[qi];
      const core::PendingJob& pj = queue_[qi];
      // The allocator and meter always account ground-truth power; the
      // policy may have seen an estimate (pj.power_per_node).
      if (!alloc_->try_allocate(pj.id, pj.nodes,
                                trace_[trace_idx].power_per_node)) {
        ++placement_failures_;
        continue;
      }
      started[qi] = true;
      ++placed;
      if (log_dispatches_) tick_dispatched_.push_back(pj.id);
      add_running(pj.id, pj.nodes, now + pj.walltime);
      records_[trace_idx].start = now;
      events_.push(now + trace_[trace_idx].runtime, EventType::kJobFinish,
                   trace_idx);
    }
    meter_.set_power(now, alloc_->current_power());

    // Compact the wait queue, preserving arrival order.
    std::size_t out = 0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (!started[i]) {
        queue_[out] = queue_[i];
        queue_trace_idx_[out] = queue_trace_idx_[i];
        ++out;
      }
    }
    queue_.resize(out);
    queue_trace_idx_.resize(out);
    return placed;
  }

  // ---- tick materialisation ----

  void request_tick(TimeSec now) {
    request_tick_at_boundary(now);
  }

  void request_tick_at_boundary(TimeSec t) {
    const TimeSec tick = next_tick_at_or_after(t, config_.tick_interval);
    // Deduplicate the common case of many requests for the same boundary.
    if (tick == last_tick_requested_) {
      ++tick_requests_deduped_;
      return;
    }
    last_tick_requested_ = tick;
    events_.push(tick, EventType::kTick);
  }

  // ---- running-set bookkeeping (O(1) add/remove) ----

  void add_running(JobId id, NodeCount nodes, TimeSec est_end) {
    running_pos_[id] = running_.size();
    running_.push_back({nodes, est_end});
    running_ids_.push_back(id);
  }

  void remove_running(JobId id) {
    const auto it = running_pos_.find(id);
    ESCHED_REQUIRE(it != running_pos_.end(), "finish of unknown job");
    const std::size_t pos = it->second;
    const std::size_t last = running_.size() - 1;
    if (pos != last) {
      running_[pos] = running_[last];
      running_ids_[pos] = running_ids_[last];
      running_pos_[running_ids_[pos]] = pos;
    }
    running_.pop_back();
    running_ids_.pop_back();
    running_pos_.erase(it);
  }

  // ---- signal recording for Fig. 12/13 curves ----

  void record_signals(TimeSec now) {
    if (!config_.record_daily_curves) {
      last_signal_time_ = now;
      return;
    }
    if (now > last_signal_time_) {
      power_curve_.add_segment(last_signal_time_, now,
                               alloc_->current_power());
      util_curve_.add_segment(last_signal_time_, now,
                              static_cast<double>(alloc_->busy_nodes()));
    }
    last_signal_time_ = now;
  }

  const trace::Trace& trace_;
  const power::PricingModel& pricing_;
  power::PowerVisibility* visibility_;
  core::Scheduler scheduler_;
  SimConfig config_;
  obs::Tracer* tracer_;            // null = tracing off for this run
  std::string sim_label_;          // "<policy>/<trace>" (tracing only)
  std::vector<JobId> tick_dispatched_;  // job ids started this tick
  bool log_dispatches_ = false;

  std::unique_ptr<NodeAllocator> alloc_;
  power::BillingMeter meter_;
  EventQueue events_;

  std::vector<core::PendingJob> queue_;        // arrival order
  std::vector<std::size_t> queue_trace_idx_;   // parallel to queue_
  std::vector<core::RunningJob> running_;
  std::vector<JobId> running_ids_;             // parallel to running_
  std::unordered_map<JobId, std::size_t> running_pos_;

  std::vector<JobRecord> records_;
  std::vector<std::vector<std::size_t>> dependents_;
  TimeSec horizon_end_ = 0;
  TimeSec last_tick_done_ = -1;
  TimeSec last_tick_requested_ = -1;
  TimeSec last_signal_time_ = 0;
  std::uint64_t scheduling_passes_ = 0;
  std::uint64_t ticks_processed_ = 0;
  std::uint64_t placement_failures_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t tick_requests_deduped_ = 0;
  std::uint64_t duplicate_ticks_skipped_ = 0;

  DailyCurveAccumulator power_curve_;
  DailyCurveAccumulator util_curve_;
};

}  // namespace

SimResult simulate(const trace::Trace& trace,
                   const power::PricingModel& pricing,
                   core::SchedulingPolicy& policy, const SimConfig& config,
                   power::PowerVisibility* visibility) {
  Engine engine(trace, pricing, policy, config, visibility);
  return engine.run();
}

}  // namespace esched::sim
