#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "power/billing.hpp"
#include "sim/allocator.hpp"
#include "sim/daily_curve.hpp"
#include "sim/event_queue.hpp"
#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::sim {

namespace {
constexpr std::size_t kNoPred = std::numeric_limits<std::size_t>::max();
}  // namespace

/// The captured mutable state behind a SimSnapshot. Everything the event
/// loop reads or writes is here; static structure (trace, dependency CSR,
/// scheduler) is rebuilt by the forked simulation from its own arguments.
struct SimSnapshot::State {
  // Identity + behaviour-affecting config, for compatibility checks.
  std::string trace_name;
  std::size_t trace_size = 0;
  NodeCount system_nodes = 0;
  DurationSec tick_interval = 0;
  Watts idle_watts_per_node = 0.0;
  bool contiguous_allocation = false;
  bool honor_queue_priority = false;
  bool honor_dependencies = false;
  std::size_t max_passes_per_tick = 0;
  bool record_daily_curves = false;
  std::size_t daily_curve_bins = 0;

  // Event queue.
  std::vector<Event> events;
  std::uint64_t next_seq = 0;

  // Wait queue and running set.
  std::vector<core::PendingJob> queue;
  std::vector<std::size_t> queue_trace_idx;
  std::vector<core::RunningJob> running;
  std::vector<std::size_t> running_trace_idx;

  // Per-job SoA columns.
  std::vector<TimeSec> eff_submit;
  std::vector<TimeSec> start;
  std::vector<TimeSec> finish;
  std::vector<std::int32_t> alloc_slot;
  std::vector<std::int32_t> running_pos;

  // Machine, meter, curves.
  std::unique_ptr<NodeAllocator> alloc;
  power::BillingMeter::State meter;
  DailyCurveAccumulator power_curve{1};
  DailyCurveAccumulator util_curve{1};

  // Scalars and counters.
  TimeSec horizon_end = 0;
  TimeSec last_tick_done = -1;
  TimeSec last_tick_requested = -1;
  TimeSec last_signal_time = 0;
  std::uint64_t scheduling_passes = 0;
  std::uint64_t ticks_processed = 0;
  std::uint64_t placement_failures = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t tick_requests_deduped = 0;
  std::uint64_t duplicate_ticks_skipped = 0;
};

SimSnapshot::SimSnapshot() = default;
SimSnapshot::~SimSnapshot() = default;
SimSnapshot::SimSnapshot(SimSnapshot&&) noexcept = default;
SimSnapshot& SimSnapshot::operator=(SimSnapshot&&) noexcept = default;

/// The simulation engine. Hot per-job state lives in struct-of-arrays
/// columns indexed by trace index and pre-sized before the event loop
/// starts, so the loop streams over contiguous memory and performs no
/// hashing and (in the steady state) no allocation.
class Simulation::Impl {
 public:
  Impl(const trace::Trace& trace, const power::PricingModel& pricing,
       core::SchedulingPolicy& policy, const SimConfig& config,
       power::PowerVisibility* visibility, bool prime_events)
      : trace_(trace),
        pricing_(pricing),
        visibility_(visibility),
        scheduler_(policy, config.scheduler),
        config_(config),
        tracer_(config.tracer != nullptr && config.tracer->enabled()
                    ? config.tracer
                    : nullptr),
        alloc_(make_allocator(config.contiguous_allocation,
                              trace.system_nodes(),
                              config.idle_watts_per_node)),
        meter_(pricing, trace.empty() ? 0 : trace.first_submit(),
               config.facility_model),
        power_curve_(config.daily_curve_bins),
        util_curve_(config.daily_curve_bins) {
    ESCHED_REQUIRE(config_.tick_interval > 0,
                   "tick interval must be positive");
    trace_.validate();
    if (tracer_ != nullptr) {
      sim_label_ =
          scheduler_.policy().name() + "/" + std::string(trace_.name());
    }
    if (trace_.empty()) return;

    const std::size_t size = trace_.size();
    last_signal_time_ = trace_.first_submit();

    // Pre-size every per-run container so the event loop never
    // reallocates in the common case: the wait queue is bounded by the
    // trace, the running set by the node count (every job needs >= 1
    // node), and the event queue holds at most one submit + one finish
    // per job plus a handful of outstanding ticks. The calendar is sized
    // to the submit span; later events overflow and are redistributed
    // when the window wraps, which stays O(1) amortized.
    queue_.reserve(size);
    queue_trace_idx_.reserve(size);
    const std::size_t max_running =
        std::min(size, static_cast<std::size_t>(trace_.system_nodes()));
    running_.reserve(max_running);
    running_trace_idx_.reserve(max_running);
    alloc_->reserve(max_running);
    events_.configure(trace_.first_submit(),
                      trace_.last_submit() - trace_.first_submit() +
                          config_.tick_interval + 1,
                      2 * size + 16);
    events_.reserve(2 * size + 16);

    eff_submit_.resize(size);
    start_.assign(size, -1);
    finish_.assign(size, -1);
    alloc_slot_.assign(size, -1);
    running_pos_.assign(size, -1);
    for (std::size_t i = 0; i < size; ++i) eff_submit_[i] = trace_[i].submit;

    // Workflow dependencies, flattened to a CSR adjacency (predecessor ->
    // dependents, dependents in trace order). Only predecessors appearing
    // earlier in the trace are honored (rules out cycles and dangling
    // ids).
    std::vector<std::size_t> pred;
    if (config_.honor_dependencies) {
      pred.assign(size, kNoPred);
      std::unordered_map<JobId, std::size_t> index_of;
      index_of.reserve(size);
      std::vector<std::size_t> counts(size, 0);
      for (std::size_t i = 0; i < size; ++i) {
        const trace::Job& j = trace_[i];
        if (j.preceding != 0) {
          const auto it = index_of.find(j.preceding);
          if (it != index_of.end()) {
            pred[i] = it->second;
            ++counts[it->second];
          }
        }
        index_of.emplace(j.id, i);
      }
      dep_offsets_.resize(size + 1);
      dep_offsets_[0] = 0;
      for (std::size_t i = 0; i < size; ++i)
        dep_offsets_[i + 1] = dep_offsets_[i] + counts[i];
      dep_list_.resize(dep_offsets_[size]);
      std::vector<std::size_t> cursor(dep_offsets_.begin(),
                                      dep_offsets_.end() - 1);
      for (std::size_t i = 0; i < size; ++i)
        if (pred[i] != kNoPred) dep_list_[cursor[pred[i]]++] = i;
    }

    if (prime_events) {
      for (std::size_t i = 0; i < size; ++i) {
        if (pred.empty() || pred[i] == kNoPred)
          events_.push(trace_[i].submit, EventType::kJobSubmit, i);
      }
    }
  }

  bool done() const { return events_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }
  bool can_snapshot() const {
    return visibility_ == nullptr && tracer_ == nullptr;
  }
  void record_power_signal(PowerSignal* signal) { signal_ = signal; }

  bool step() {
    if (events_.empty()) return false;
    const Event ev = events_.pop();
    ++events_processed_;
    switch (ev.type) {
      case EventType::kJobSubmit:
        handle_submit(ev);
        break;
      case EventType::kJobFinish:
        handle_finish(ev);
        break;
      case EventType::kTick:
        handle_tick(ev);
        break;
    }
    return true;
  }

  SimResult finish() {
    ESCHED_REQUIRE(!finished_, "Simulation::finish called twice");
    finished_ = true;

    SimResult result;
    result.policy_name = scheduler_.policy().name();
    result.trace_name = trace_.name();
    result.system_nodes = trace_.system_nodes();
    obs::SpanGuard run_span(tracer_, "sim:" + sim_label_, "sim");
    if (trace_.empty()) return result;

    {
      obs::SpanGuard loop_span(tracer_, "event_loop:" + sim_label_, "sim");
      while (step()) {
      }
    }

    // Every job must have completed — the machine can always eventually
    // run any valid job, so a leftover means a scheduler bug.
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      ESCHED_REQUIRE(finish_[i] >= 0, "job " +
                                          std::to_string(trace_[i].id) +
                                          " never completed");
    }

    record_signals(horizon_end_);
    meter_.finish(horizon_end_);

    result.horizon_begin = trace_.first_submit();
    result.horizon_end = horizon_end_;
    result.records.resize(trace_.size());
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      const trace::Job& j = trace_[i];
      result.records[i] = JobRecord{j.id,       eff_submit_[i],
                                    start_[i],  finish_[i],
                                    j.nodes,    j.power_per_node,
                                    j.user};
    }
    result.total_bill = meter_.total_bill();
    result.bill_on_peak = meter_.bill_in(power::PricePeriod::kOnPeak);
    result.bill_off_peak = meter_.bill_in(power::PricePeriod::kOffPeak);
    result.total_energy = meter_.total_energy();
    result.energy_on_peak = meter_.energy_in(power::PricePeriod::kOnPeak);
    result.energy_off_peak = meter_.energy_in(power::PricePeriod::kOffPeak);
    result.it_energy = meter_.it_energy();
    result.daily_bills = meter_.daily_bills();
    if (config_.record_daily_curves) {
      result.power_curve = power_curve_.averages();
      result.utilization_curve = util_curve_.averages();
      for (double& u : result.utilization_curve)
        u /= static_cast<double>(trace_.system_nodes());
    }
    result.scheduling_passes = scheduling_passes_;
    result.ticks_processed = ticks_processed_;
    result.placement_failures = placement_failures_;

    // One registry flush per run: the engine accumulates into plain
    // members (free when observability is off) and publishes the totals
    // here, so the event loop itself carries no atomic traffic.
    if (obs::counters_enabled()) {
      obs::Registry& reg = obs::Registry::global();
      reg.counter("sim.runs").add(1);
      reg.counter("sim.events_processed").add(events_processed_);
      reg.counter("sim.ticks_materialized").add(ticks_processed_);
      reg.counter("sim.tick_requests_deduped").add(tick_requests_deduped_);
      reg.counter("sim.duplicate_ticks_skipped")
          .add(duplicate_ticks_skipped_);
      reg.counter("sim.scheduler_passes").add(scheduling_passes_);
      reg.counter("sim.placement_failures").add(placement_failures_);
      reg.counter("sim.jobs_completed").add(trace_.size());
      reg.counter("sim.eventq_reallocs").add(events_.reallocs());
    }
    return result;
  }

  SimSnapshot snapshot() const {
    ESCHED_REQUIRE(can_snapshot(),
                   "snapshot requires a simulation without visibility "
                   "model or tracer");
    ESCHED_REQUIRE(!finished_, "snapshot of a finished simulation");
    SimSnapshot snap;
    snap.state_ = std::make_unique<SimSnapshot::State>();
    SimSnapshot::State& s = *snap.state_;
    s.trace_name = trace_.name();
    s.trace_size = trace_.size();
    s.system_nodes = trace_.system_nodes();
    s.tick_interval = config_.tick_interval;
    s.idle_watts_per_node = config_.idle_watts_per_node;
    s.contiguous_allocation = config_.contiguous_allocation;
    s.honor_queue_priority = config_.honor_queue_priority;
    s.honor_dependencies = config_.honor_dependencies;
    s.max_passes_per_tick = config_.max_passes_per_tick;
    s.record_daily_curves = config_.record_daily_curves;
    s.daily_curve_bins = config_.daily_curve_bins;
    s.events = events_.snapshot_events();
    s.next_seq = events_.next_seq();
    s.queue = queue_;
    s.queue_trace_idx = queue_trace_idx_;
    s.running = running_;
    s.running_trace_idx = running_trace_idx_;
    s.eff_submit = eff_submit_;
    s.start = start_;
    s.finish = finish_;
    s.alloc_slot = alloc_slot_;
    s.running_pos = running_pos_;
    s.alloc = alloc_->clone();
    s.meter = meter_.state();
    s.power_curve = power_curve_;
    s.util_curve = util_curve_;
    s.horizon_end = horizon_end_;
    s.last_tick_done = last_tick_done_;
    s.last_tick_requested = last_tick_requested_;
    s.last_signal_time = last_signal_time_;
    s.scheduling_passes = scheduling_passes_;
    s.ticks_processed = ticks_processed_;
    s.placement_failures = placement_failures_;
    s.events_processed = events_processed_;
    s.tick_requests_deduped = tick_requests_deduped_;
    s.duplicate_ticks_skipped = duplicate_ticks_skipped_;
    return snap;
  }

  void restore(const SimSnapshot::State& s) {
    ESCHED_REQUIRE(s.trace_name == trace_.name() &&
                       s.trace_size == trace_.size() &&
                       s.system_nodes == trace_.system_nodes(),
                   "fork: snapshot was taken from a different trace");
    ESCHED_REQUIRE(
        s.tick_interval == config_.tick_interval &&
            s.idle_watts_per_node == config_.idle_watts_per_node &&
            s.contiguous_allocation == config_.contiguous_allocation &&
            s.honor_queue_priority == config_.honor_queue_priority &&
            s.honor_dependencies == config_.honor_dependencies &&
            s.max_passes_per_tick == config_.max_passes_per_tick &&
            s.record_daily_curves == config_.record_daily_curves &&
            s.daily_curve_bins == config_.daily_curve_bins,
        "fork: config differs from the snapshotting run's");
    events_.restore(s.events, s.next_seq);
    queue_ = s.queue;
    queue_trace_idx_ = s.queue_trace_idx;
    running_ = s.running;
    running_trace_idx_ = s.running_trace_idx;
    eff_submit_ = s.eff_submit;
    start_ = s.start;
    finish_ = s.finish;
    alloc_slot_ = s.alloc_slot;
    running_pos_ = s.running_pos;
    alloc_ = s.alloc->clone();
    meter_.restore(s.meter);
    power_curve_ = s.power_curve;
    util_curve_ = s.util_curve;
    horizon_end_ = s.horizon_end;
    last_tick_done_ = s.last_tick_done;
    last_tick_requested_ = s.last_tick_requested;
    last_signal_time_ = s.last_signal_time;
    scheduling_passes_ = s.scheduling_passes;
    ticks_processed_ = s.ticks_processed;
    placement_failures_ = s.placement_failures;
    events_processed_ = s.events_processed;
    tick_requests_deduped_ = s.tick_requests_deduped;
    duplicate_ticks_skipped_ = s.duplicate_ticks_skipped;
  }

 private:
  void handle_submit(const Event& ev) {
    const trace::Job& j = trace_[ev.payload];
    const Watts visible = visibility_ != nullptr
                              ? visibility_->visible_power_per_node(j)
                              : j.power_per_node;
    // eff_submit_ is the *effective* release time (it differs from the
    // trace submit for dependency-deferred jobs).
    const core::PendingJob pending{j.id,
                                   eff_submit_[ev.payload],
                                   j.nodes,
                                   j.walltime,
                                   visible,
                                   j.queue};
    std::size_t pos = queue_.size();
    if (config_.honor_queue_priority) {
      // Insert before the first strictly lower-priority job; arrivals
      // within a class keep FCFS order (later submits insert after
      // earlier ones of the same class).
      while (pos > 0 && queue_[pos - 1].queue > pending.queue) --pos;
    }
    queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(pos),
                  pending);
    queue_trace_idx_.insert(
        queue_trace_idx_.begin() + static_cast<std::ptrdiff_t>(pos),
        ev.payload);
    request_tick(ev.time);
  }

  void handle_finish(const Event& ev) {
    const std::size_t idx = ev.payload;
    record_signals(ev.time);
    alloc_->release_slot(alloc_slot_[idx]);
    alloc_slot_[idx] = -1;
    remove_running(idx);
    if (visibility_ != nullptr) visibility_->on_job_complete(trace_[idx]);
    finish_[idx] = ev.time;
    horizon_end_ = std::max(horizon_end_, ev.time);
    meter_set_power(ev.time, alloc_->current_power());
    if (config_.honor_dependencies) {
      for (std::size_t d = dep_offsets_[idx]; d < dep_offsets_[idx + 1];
           ++d) {
        const std::size_t dep = dep_list_[d];
        // Effective release: never before the nominal submit time, and
        // only after the predecessor plus think time. The effective
        // submit is updated so wait() measures schedulable wait.
        const TimeSec release = std::max(
            eff_submit_[dep], ev.time + trace_[dep].think_time);
        eff_submit_[dep] = release;
        events_.push(release, EventType::kJobSubmit, dep);
      }
    }
    if (!queue_.empty()) request_tick(ev.time);
  }

  void handle_tick(const Event& ev) {
    // Duplicate materialised ticks are possible (several events may each
    // request the same boundary); process each boundary once.
    if (ev.time == last_tick_done_) {
      ++duplicate_ticks_skipped_;
      return;
    }
    last_tick_done_ = ev.time;
    ++ticks_processed_;

    // Snapshot the decision inputs before the first pass mutates them.
    obs::TickRecord tick_trace;
    const bool tracing = tracer_ != nullptr && tracer_->enabled();
    if (tracing) {
      tick_trace.sim = sim_label_;
      tick_trace.time = ev.time;
      tick_trace.period =
          pricing_.period_at(ev.time) == power::PricePeriod::kOnPeak
              ? "on_peak"
              : "off_peak";
      tick_trace.free_before = alloc_->free_nodes();
      tick_trace.queue_length = queue_.size();
      const std::size_t w =
          std::min(config_.scheduler.window_size, queue_.size());
      tick_trace.window_ids.reserve(w);
      tick_trace.window_powers.reserve(w);
      for (std::size_t i = 0; i < w; ++i) {
        tick_trace.window_ids.push_back(queue_[i].id);
        tick_trace.window_powers.push_back(queue_[i].power_per_node);
      }
      tick_dispatched_.clear();
      log_dispatches_ = true;
    }

    // Re-run the scheduler until a pass starts nothing (so a fully
    // dispatched window refills within the tick), or until the configured
    // per-tick pass budget runs out (CQSim-style one-shot scheduling).
    std::size_t passes = 0;
    bool starts_exhausted = false;
    const char* stop_reason = queue_.empty()        ? "queue_empty"
                              : alloc_->free_nodes() <= 0 ? "machine_full"
                                                          : "queue_drained";
    while (!queue_.empty() && alloc_->free_nodes() > 0) {
      if (config_.max_passes_per_tick != 0 &&
          passes >= config_.max_passes_per_tick) {
        stop_reason = "pass_budget";
        break;
      }
      const core::ScheduleContext ctx{
          ev.time,           alloc_->free_nodes(),
          alloc_->total_nodes(), pricing_.period_at(ev.time),
          alloc_->current_power(), pricing_.next_price_change(ev.time)};
      ++scheduling_passes_;
      ++passes;
      const std::vector<std::size_t> starts =
          scheduler_.decide(ctx, queue_, running_);
      if (starts.empty()) {
        starts_exhausted = true;
        stop_reason = "no_starts";
        break;
      }
      if (apply_starts(ev.time, starts) == 0) {
        // Count-feasible but unplaceable (fragmentation under the
        // contiguous model): nothing changes until a release.
        starts_exhausted = true;
        stop_reason = "unplaceable";
        break;
      }
      stop_reason = queue_.empty() ? "queue_drained" : "machine_full";
    }

    if (tracing) {
      tick_trace.free_after = alloc_->free_nodes();
      tick_trace.passes = passes;
      tick_trace.dispatched = std::move(tick_dispatched_);
      tick_trace.reason = stop_reason;
      log_dispatches_ = false;
      tick_dispatched_.clear();
      tracer_->record_tick(tick_trace);
    }

    if (!queue_.empty()) {
      if (!starts_exhausted && alloc_->free_nodes() > 0) {
        // The pass budget cut scheduling short with work plausibly still
        // startable: the next tick must fire even without an event.
        request_tick_at_boundary(ev.time + 1);
      }
      // Nothing else changes until an event — except the price period.
      // Ensure a pass happens at (the first tick after) the next flip.
      request_tick_at_boundary(pricing_.next_price_change(ev.time));
    }
  }

  /// Returns the number of jobs actually placed (placement can fail
  /// under the contiguous model even though the count-based scheduler
  /// selected the job; such jobs stay queued).
  std::size_t apply_starts(TimeSec now,
                           const std::vector<std::size_t>& starts) {
    record_signals(now);
    std::size_t placed = 0;
    started_scratch_.assign(queue_.size(), 0);
    for (const std::size_t qi : starts) {
      ESCHED_REQUIRE(qi < queue_.size(), "scheduler start out of range");
      ESCHED_REQUIRE(started_scratch_[qi] == 0,
                     "scheduler started a job twice");
      const std::size_t trace_idx = queue_trace_idx_[qi];
      const core::PendingJob& pj = queue_[qi];
      // The allocator and meter always account ground-truth power; the
      // policy may have seen an estimate (pj.power_per_node).
      const std::int32_t slot = alloc_->try_allocate_slot(
          pj.nodes, trace_[trace_idx].power_per_node);
      if (slot < 0) {
        ++placement_failures_;
        continue;
      }
      started_scratch_[qi] = 1;
      ++placed;
      if (log_dispatches_) tick_dispatched_.push_back(pj.id);
      alloc_slot_[trace_idx] = slot;
      add_running(trace_idx, pj.nodes, now + pj.walltime);
      start_[trace_idx] = now;
      events_.push(now + trace_[trace_idx].runtime, EventType::kJobFinish,
                   trace_idx);
    }
    meter_set_power(now, alloc_->current_power());

    // Compact the wait queue, preserving arrival order.
    std::size_t out = 0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (started_scratch_[i] == 0) {
        queue_[out] = queue_[i];
        queue_trace_idx_[out] = queue_trace_idx_[i];
        ++out;
      }
    }
    queue_.resize(out);
    queue_trace_idx_.resize(out);
    return placed;
  }

  // ---- tick materialisation ----

  void request_tick(TimeSec now) { request_tick_at_boundary(now); }

  void request_tick_at_boundary(TimeSec t) {
    const TimeSec tick = next_tick_at_or_after(t, config_.tick_interval);
    // Deduplicate the common case of many requests for the same boundary.
    if (tick == last_tick_requested_) {
      ++tick_requests_deduped_;
      return;
    }
    last_tick_requested_ = tick;
    events_.push(tick, EventType::kTick);
  }

  // ---- running-set bookkeeping (O(1) add/remove, no hashing) ----

  void add_running(std::size_t trace_idx, NodeCount nodes, TimeSec est_end) {
    running_pos_[trace_idx] = static_cast<std::int32_t>(running_.size());
    running_.push_back({nodes, est_end});
    running_trace_idx_.push_back(trace_idx);
  }

  void remove_running(std::size_t trace_idx) {
    const std::int32_t pos = running_pos_[trace_idx];
    ESCHED_REQUIRE(pos >= 0, "finish of unknown job");
    const auto p = static_cast<std::size_t>(pos);
    const std::size_t last = running_.size() - 1;
    if (p != last) {
      running_[p] = running_[last];
      running_trace_idx_[p] = running_trace_idx_[last];
      running_pos_[running_trace_idx_[p]] = pos;
    }
    running_.pop_back();
    running_trace_idx_.pop_back();
    running_pos_[trace_idx] = -1;
  }

  // ---- metering (with optional signal recording) ----

  void meter_set_power(TimeSec t, Watts watts) {
    if (signal_ != nullptr) {
      signal_->times.push_back(t);
      signal_->watts.push_back(watts);
    }
    meter_.set_power(t, watts);
  }

  // ---- signal recording for Fig. 12/13 curves ----

  void record_signals(TimeSec now) {
    if (!config_.record_daily_curves) {
      last_signal_time_ = now;
      return;
    }
    if (now > last_signal_time_) {
      power_curve_.add_segment(last_signal_time_, now,
                               alloc_->current_power());
      util_curve_.add_segment(last_signal_time_, now,
                              static_cast<double>(alloc_->busy_nodes()));
    }
    last_signal_time_ = now;
  }

  const trace::Trace& trace_;
  const power::PricingModel& pricing_;
  power::PowerVisibility* visibility_;
  core::Scheduler scheduler_;
  SimConfig config_;
  obs::Tracer* tracer_;            // null = tracing off for this run
  std::string sim_label_;          // "<policy>/<trace>" (tracing only)
  std::vector<JobId> tick_dispatched_;  // job ids started this tick
  bool log_dispatches_ = false;
  bool finished_ = false;
  PowerSignal* signal_ = nullptr;  // optional meter-input recording

  std::unique_ptr<NodeAllocator> alloc_;
  power::BillingMeter meter_;
  EventQueue events_;

  std::vector<core::PendingJob> queue_;        // arrival order
  std::vector<std::size_t> queue_trace_idx_;   // parallel to queue_
  std::vector<core::RunningJob> running_;
  std::vector<std::size_t> running_trace_idx_;  // parallel to running_
  std::vector<char> started_scratch_;           // apply_starts workspace

  // Per-job SoA columns, indexed by trace index and sized once up front.
  std::vector<TimeSec> eff_submit_;  ///< effective release time
  std::vector<TimeSec> start_;       ///< -1 until started
  std::vector<TimeSec> finish_;      ///< -1 until finished
  std::vector<std::int32_t> alloc_slot_;   ///< allocator slot, -1 if idle
  std::vector<std::int32_t> running_pos_;  ///< index into running_, -1

  // Dependency CSR: dependents of job i are
  // dep_list_[dep_offsets_[i] .. dep_offsets_[i+1]).
  std::vector<std::size_t> dep_offsets_;
  std::vector<std::size_t> dep_list_;

  TimeSec horizon_end_ = 0;
  TimeSec last_tick_done_ = -1;
  TimeSec last_tick_requested_ = -1;
  TimeSec last_signal_time_ = 0;
  std::uint64_t scheduling_passes_ = 0;
  std::uint64_t ticks_processed_ = 0;
  std::uint64_t placement_failures_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t tick_requests_deduped_ = 0;
  std::uint64_t duplicate_ticks_skipped_ = 0;

  DailyCurveAccumulator power_curve_;
  DailyCurveAccumulator util_curve_;
};

// ------------------------------------------------- Simulation facade --

Simulation::Simulation(const trace::Trace& trace,
                       const power::PricingModel& pricing,
                       core::SchedulingPolicy& policy,
                       const SimConfig& config,
                       power::PowerVisibility* visibility)
    : impl_(std::make_unique<Impl>(trace, pricing, policy, config,
                                   visibility, /*prime_events=*/true)) {}

Simulation::Simulation(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
Simulation::~Simulation() = default;
Simulation::Simulation(Simulation&&) noexcept = default;
Simulation& Simulation::operator=(Simulation&&) noexcept = default;

bool Simulation::done() const { return impl_->done(); }
std::uint64_t Simulation::events_processed() const {
  return impl_->events_processed();
}
bool Simulation::step() { return impl_->step(); }

void Simulation::run_prefix(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events && impl_->step(); ++i) {
  }
}

void Simulation::record_power_signal(PowerSignal* signal) {
  impl_->record_power_signal(signal);
}

bool Simulation::can_snapshot() const { return impl_->can_snapshot(); }

SimSnapshot Simulation::snapshot() const { return impl_->snapshot(); }

Simulation Simulation::fork(const SimSnapshot& snap,
                            const trace::Trace& trace,
                            const power::PricingModel& pricing,
                            core::SchedulingPolicy& policy,
                            const SimConfig& config) {
  ESCHED_REQUIRE(snap.state_ != nullptr, "fork from an empty snapshot");
  auto impl = std::make_unique<Impl>(trace, pricing, policy, config,
                                     /*visibility=*/nullptr,
                                     /*prime_events=*/false);
  impl->restore(*snap.state_);
  return Simulation(std::move(impl));
}

SimResult Simulation::finish() { return impl_->finish(); }

// --------------------------------------------------- free functions --

SimResult simulate(const trace::Trace& trace,
                   const power::PricingModel& pricing,
                   core::SchedulingPolicy& policy, const SimConfig& config,
                   power::PowerVisibility* visibility) {
  Simulation sim(trace, pricing, policy, config, visibility);
  return sim.finish();
}

void rebill(SimResult& result, const PowerSignal& signal,
            const power::PricingModel& pricing,
            const power::FacilityModel* facility) {
  ESCHED_REQUIRE(signal.times.size() == signal.watts.size(),
                 "malformed power signal");
  power::BillingMeter meter(pricing, result.horizon_begin, facility);
  for (std::size_t i = 0; i < signal.times.size(); ++i)
    meter.set_power(signal.times[i], signal.watts[i]);
  meter.finish(result.horizon_end);
  result.total_bill = meter.total_bill();
  result.bill_on_peak = meter.bill_in(power::PricePeriod::kOnPeak);
  result.bill_off_peak = meter.bill_in(power::PricePeriod::kOffPeak);
  result.total_energy = meter.total_energy();
  result.energy_on_peak = meter.energy_in(power::PricePeriod::kOnPeak);
  result.energy_off_peak = meter.energy_in(power::PricePeriod::kOffPeak);
  result.it_energy = meter.it_energy();
  result.daily_bills = meter.daily_bills();
}

}  // namespace esched::sim
