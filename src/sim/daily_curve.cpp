#include "sim/daily_curve.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::sim {

DailyCurveAccumulator::DailyCurveAccumulator(std::size_t bins)
    : value_seconds_(bins, 0.0), observed_seconds_(bins, 0.0) {
  ESCHED_REQUIRE(bins >= 1, "need at least one bin");
  ESCHED_REQUIRE(kSecondsPerDay % static_cast<DurationSec>(bins) == 0,
                 "bins must divide the day evenly");
}

void DailyCurveAccumulator::add_segment(TimeSec t0, TimeSec t1,
                                        double value) {
  ESCHED_REQUIRE(t0 <= t1, "segment must run forward");
  const auto bins = static_cast<DurationSec>(value_seconds_.size());
  const DurationSec bin_width = kSecondsPerDay / bins;
  TimeSec t = t0;
  while (t < t1) {
    const DurationSec sod = second_of_day(t);
    const std::size_t bin = static_cast<std::size_t>(sod / bin_width);
    // End of this bin occurrence in absolute time.
    const TimeSec bin_end =
        t + (static_cast<DurationSec>(bin + 1) * bin_width - sod);
    const TimeSec seg_end = std::min(t1, bin_end);
    const auto dt = static_cast<double>(seg_end - t);
    value_seconds_[bin] += value * dt;
    observed_seconds_[bin] += dt;
    t = seg_end;
  }
}

DurationSec DailyCurveAccumulator::bin_start(std::size_t i) const {
  ESCHED_REQUIRE(i < value_seconds_.size(), "bin out of range");
  return static_cast<DurationSec>(i) *
         (kSecondsPerDay / static_cast<DurationSec>(value_seconds_.size()));
}

double DailyCurveAccumulator::average(std::size_t i) const {
  ESCHED_REQUIRE(i < value_seconds_.size(), "bin out of range");
  return observed_seconds_[i] > 0.0 ? value_seconds_[i] / observed_seconds_[i]
                                    : 0.0;
}

double DailyCurveAccumulator::coverage_seconds(std::size_t i) const {
  ESCHED_REQUIRE(i < observed_seconds_.size(), "bin out of range");
  return observed_seconds_[i];
}

std::vector<double> DailyCurveAccumulator::averages() const {
  std::vector<double> out(value_seconds_.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = average(i);
  return out;
}

}  // namespace esched::sim
