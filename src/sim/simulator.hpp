// The trace-driven scheduling simulator — the C++ counterpart of the
// paper's CQSim (§5.1).
//
// Event semantics match a production batch system: submissions and
// completions are asynchronous events; the scheduler runs only at periodic
// ticks (every `tick_interval` seconds — the paper studies 10/20/30 s).
// Nodes freed between ticks therefore wait for the next tick, which is
// precisely the accumulation effect behind the paper's Table 4. For
// efficiency the simulator only *materialises* ticks that can matter: ones
// following a state change (submit/finish) or a price-period flip; a tick
// at which nothing changed is provably a no-op and is never enqueued.
#pragma once

#include <memory>

#include "core/scheduler.hpp"
#include "power/facility.hpp"
#include "power/pricing.hpp"
#include "power/visibility.hpp"
#include "sim/result.hpp"
#include "trace/trace.hpp"

namespace esched::obs {
class Tracer;
}  // namespace esched::obs

namespace esched::sim {

/// Simulation parameters (paper defaults).
struct SimConfig {
  /// Scheduler invocation period in seconds (paper: 10-30 s, default 10).
  DurationSec tick_interval = 10;
  /// Window size, beyond-window backfilling, starvation guard.
  core::SchedulerConfig scheduler;
  /// Power drawn by each idle node (paper: 0; see the idle-power ablation).
  Watts idle_watts_per_node = 0.0;
  /// Optional facility (PUE/cooling) model: the meter then bills facility
  /// watts instead of raw IT watts (power/facility.hpp). Non-owning; must
  /// outlive the simulation.
  const power::FacilityModel* facility_model = nullptr;
  /// Allocate nodes as contiguous 1-D blocks (Blue Gene-style topology
  /// constraint) instead of the paper's fungible pool. Jobs selected by
  /// the scheduler that cannot be placed contiguously stay queued; see
  /// sim/allocator.hpp and bench/ablation_fragmentation.
  bool contiguous_allocation = false;
  /// Order the wait queue by (queue class, arrival) instead of pure
  /// arrival — the paper's §3 multi-queue setup. Lower Job::queue values
  /// are higher priority; within a class, FCFS order is preserved. Off by
  /// default (the paper's evaluation uses a single queue).
  bool honor_queue_priority = false;
  /// Honor SWF workflow dependencies (Job::preceding/think_time): a
  /// dependent job enters the wait queue only after its predecessor
  /// completes plus the think time. Off by default (the paper replays
  /// jobs independently). Dependencies on jobs that do not appear
  /// earlier in the trace are ignored.
  bool honor_dependencies = false;
  /// Maximum scheduler passes per tick. 0 (default) re-runs the scheduler
  /// until no further job starts, so a fully-dispatched window refills
  /// within the same tick. 1 emulates batch schedulers (and the paper's
  /// CQSim) that make one decision per period: leftover work waits for
  /// the next tick, which is what couples the scheduling frequency to
  /// batch size (the paper's Table 4/5 effect).
  std::size_t max_passes_per_tick = 0;
  /// Record Fig. 12/13-style time-of-day curves (small constant cost).
  bool record_daily_curves = true;
  /// Bins per day for those curves (must divide 86,400).
  std::size_t daily_curve_bins = 96;
  /// Optional decision tracer (obs/tracer.hpp): when non-null and open,
  /// the engine emits one JSONL record per scheduler tick plus Chrome
  /// trace spans for the run's phases. Non-owning; must outlive the
  /// simulation; safe to share across concurrent simulations (the tracer
  /// serializes internally). Null (the default) costs nothing; tracing
  /// never changes the SimResult.
  obs::Tracer* tracer = nullptr;
};

/// Run `policy` over `trace` under `pricing`. The trace must be finalized
/// and valid; every job must carry a power profile if the bill is to be
/// meaningful. Deterministic: same inputs, same SimResult.
///
/// `visibility` (optional) decouples the power profile the *scheduler*
/// sees from the ground truth the *meter* bills: pass a
/// power::ProfileEstimator to model online profile learning, a
/// NoisyVisibility for measurement error, or leave null for the paper's
/// perfect-knowledge assumption. Completions feed back into it.
SimResult simulate(const trace::Trace& trace,
                   const power::PricingModel& pricing,
                   core::SchedulingPolicy& policy,
                   const SimConfig& config = {},
                   power::PowerVisibility* visibility = nullptr);

}  // namespace esched::sim
