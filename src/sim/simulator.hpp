// The trace-driven scheduling simulator — the C++ counterpart of the
// paper's CQSim (§5.1).
//
// Event semantics match a production batch system: submissions and
// completions are asynchronous events; the scheduler runs only at periodic
// ticks (every `tick_interval` seconds — the paper studies 10/20/30 s).
// Nodes freed between ticks therefore wait for the next tick, which is
// precisely the accumulation effect behind the paper's Table 4. For
// efficiency the simulator only *materialises* ticks that can matter: ones
// following a state change (submit/finish) or a price-period flip; a tick
// at which nothing changed is provably a no-op and is never enqueued.
//
// Two entry points:
//  * simulate() — run a whole trace to completion (the common case);
//  * Simulation — the same engine, resumable: step() processes one event
//    at a time, snapshot() captures the complete mutable state, and
//    fork() resumes a new simulation from a snapshot. This is what lets a
//    parameter sweep simulate a shared warm-up prefix once and fork the
//    cells from it instead of replaying from t=0 (see run/sweep.cpp), and
//    what the fork-at-every-prefix property tests drive. Snapshot
//    compatibility rules are documented in DESIGN.md — in short, a fork
//    is bit-identical to a full replay iff trace, pricing, policy and
//    config are all identical to the snapshotting run's.
//
// A Simulation can also record the meter's input — the piecewise-constant
// system power signal — into a PowerSignal. rebill() then re-prices that
// signal under a different tariff without re-simulating: scheduling
// trajectories depend on the tariff only through its on/off-peak
// *boundaries* (policies see PricePeriod, never prices — see
// core/policy.hpp), so sweep cells that differ only in price levels share
// one trajectory and differ only in metering. That identity is what the
// sweep runner's prefix sharing exploits.
#pragma once

#include <cstdint>
#include <memory>

#include "core/scheduler.hpp"
#include "power/facility.hpp"
#include "power/pricing.hpp"
#include "power/visibility.hpp"
#include "sim/result.hpp"
#include "trace/trace.hpp"

namespace esched::obs {
class Tracer;
}  // namespace esched::obs

namespace esched::sim {

/// Simulation parameters (paper defaults).
struct SimConfig {
  /// Scheduler invocation period in seconds (paper: 10-30 s, default 10).
  DurationSec tick_interval = 10;
  /// Window size, beyond-window backfilling, starvation guard.
  core::SchedulerConfig scheduler;
  /// Power drawn by each idle node (paper: 0; see the idle-power ablation).
  Watts idle_watts_per_node = 0.0;
  /// Optional facility (PUE/cooling) model: the meter then bills facility
  /// watts instead of raw IT watts (power/facility.hpp). Non-owning; must
  /// outlive the simulation.
  const power::FacilityModel* facility_model = nullptr;
  /// Allocate nodes as contiguous 1-D blocks (Blue Gene-style topology
  /// constraint) instead of the paper's fungible pool. Jobs selected by
  /// the scheduler that cannot be placed contiguously stay queued; see
  /// sim/allocator.hpp and bench/ablation_fragmentation.
  bool contiguous_allocation = false;
  /// Order the wait queue by (queue class, arrival) instead of pure
  /// arrival — the paper's §3 multi-queue setup. Lower Job::queue values
  /// are higher priority; within a class, FCFS order is preserved. Off by
  /// default (the paper's evaluation uses a single queue).
  bool honor_queue_priority = false;
  /// Honor SWF workflow dependencies (Job::preceding/think_time): a
  /// dependent job enters the wait queue only after its predecessor
  /// completes plus the think time. Off by default (the paper replays
  /// jobs independently). Dependencies on jobs that do not appear
  /// earlier in the trace are ignored.
  bool honor_dependencies = false;
  /// Maximum scheduler passes per tick. 0 (default) re-runs the scheduler
  /// until no further job starts, so a fully-dispatched window refills
  /// within the same tick. 1 emulates batch schedulers (and the paper's
  /// CQSim) that make one decision per period: leftover work waits for
  /// the next tick, which is what couples the scheduling frequency to
  /// batch size (the paper's Table 4/5 effect).
  std::size_t max_passes_per_tick = 0;
  /// Record Fig. 12/13-style time-of-day curves (small constant cost).
  bool record_daily_curves = true;
  /// Bins per day for those curves (must divide 86,400).
  std::size_t daily_curve_bins = 96;
  /// Optional decision tracer (obs/tracer.hpp): when non-null and open,
  /// the engine emits one JSONL record per scheduler tick plus Chrome
  /// trace spans for the run's phases. Non-owning; must outlive the
  /// simulation; safe to share across concurrent simulations (the tracer
  /// serializes internally). Null (the default) costs nothing; tracing
  /// never changes the SimResult.
  obs::Tracer* tracer = nullptr;
};

/// The piecewise-constant total-system-power signal a simulation feeds
/// its billing meter: change-point i says "power becomes watts[i] at
/// times[i]". Recorded via Simulation::record_power_signal(), re-priced
/// under another tariff via rebill().
struct PowerSignal {
  std::vector<TimeSec> times;
  std::vector<Watts> watts;
};

/// An opaque deep copy of a Simulation's complete mutable state (event
/// queue, wait queue, running set, per-job arrays, allocator, meter,
/// curves, counters). Move-only; one snapshot can seed any number of
/// forks.
class SimSnapshot {
 public:
  SimSnapshot();
  ~SimSnapshot();
  SimSnapshot(SimSnapshot&&) noexcept;
  SimSnapshot& operator=(SimSnapshot&&) noexcept;
  SimSnapshot(const SimSnapshot&) = delete;
  SimSnapshot& operator=(const SimSnapshot&) = delete;

 private:
  friend class Simulation;
  struct State;
  std::unique_ptr<State> state_;
};

/// A resumable simulation run. Construct with the same arguments as
/// simulate(), then either call finish() directly (identical behaviour)
/// or interleave step()/run_prefix() with snapshot().
class Simulation {
 public:
  /// See simulate() for the argument contract. All references must
  /// outlive the Simulation.
  Simulation(const trace::Trace& trace, const power::PricingModel& pricing,
             core::SchedulingPolicy& policy, const SimConfig& config = {},
             power::PowerVisibility* visibility = nullptr);
  ~Simulation();
  Simulation(Simulation&&) noexcept;
  Simulation& operator=(Simulation&&) noexcept;

  /// True once every event has been processed.
  bool done() const;
  /// Events processed so far (every prefix length in [0, total] is a
  /// legal snapshot point).
  std::uint64_t events_processed() const;

  /// Process the next event; returns false (and does nothing) when done.
  bool step();
  /// Process up to `max_events` further events.
  void run_prefix(std::uint64_t max_events);

  /// Record every meter change-point into `signal` (append-only; caller
  /// owns it and must keep it alive). Pass nullptr to stop recording.
  /// Enable before the first step() to capture the whole signal.
  void record_power_signal(PowerSignal* signal);

  /// Snapshots capture engine state but not the visibility model's or
  /// tracer's, so they require both to be absent.
  bool can_snapshot() const;
  /// Deep-copy the current state. Requires can_snapshot().
  SimSnapshot snapshot() const;

  /// Resume a new simulation from `snap`. The trace must be the one the
  /// snapshot was taken from (same name, size and node count — enforced)
  /// and the config must match on every behaviour-affecting knob
  /// (enforced field-by-field); pricing and policy must be semantically
  /// identical to the original's for the fork to be bit-identical to a
  /// full replay (not enforceable — see DESIGN.md for the rules).
  static Simulation fork(const SimSnapshot& snap, const trace::Trace& trace,
                         const power::PricingModel& pricing,
                         core::SchedulingPolicy& policy,
                         const SimConfig& config = {});

  /// Drain all remaining events and assemble the result. Call once.
  SimResult finish();

 private:
  class Impl;
  explicit Simulation(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Run `policy` over `trace` under `pricing`. The trace must be finalized
/// and valid; every job must carry a power profile if the bill is to be
/// meaningful. Deterministic: same inputs, same SimResult.
///
/// `visibility` (optional) decouples the power profile the *scheduler*
/// sees from the ground truth the *meter* bills: pass a
/// power::ProfileEstimator to model online profile learning, a
/// NoisyVisibility for measurement error, or leave null for the paper's
/// perfect-knowledge assumption. Completions feed back into it.
SimResult simulate(const trace::Trace& trace,
                   const power::PricingModel& pricing,
                   core::SchedulingPolicy& policy,
                   const SimConfig& config = {},
                   power::PowerVisibility* visibility = nullptr);

/// Recompute `result`'s meter-derived fields (bills, energies, daily
/// bills) by replaying `signal` under `pricing`/`facility`. Produces
/// bit-identical values to a full simulation under that tariff whenever
/// the tariff's period boundaries match the one `signal` was recorded
/// under (trajectories, and hence the signal, depend only on boundaries).
void rebill(SimResult& result, const PowerSignal& signal,
            const power::PricingModel& pricing,
            const power::FacilityModel* facility = nullptr);

}  // namespace esched::sim
