// Node-allocation models.
//
// The paper's scheduler is deliberately topology-agnostic ("a generic job
// power aware scheduling mechanism for various HPC systems", §2) — its
// machine model is a fungible node pool. Its predecessors targeted Blue
// Gene machines where a job needs nodes wired into a specific shape
// [Tang'11], and fragmentation then makes placement fail even with enough
// free nodes. The NodeAllocator seam lets the simulator run under either
// model; ContiguousAllocator is the classic 1-D contiguous-block
// simplification of such partitioned machines, so the fragmentation cost
// of topology constraints can be measured (bench/ablation_fragmentation).
//
// Two parallel APIs:
//  * slot handles (try_allocate_slot/release_slot) — the simulator's hot
//    path: the engine keeps the returned handle in its own per-job arrays
//    and releases by handle, so no allocator ever hashes a JobId per
//    event;
//  * JobId keys (try_allocate/release) — convenience for tests and cold
//    paths, with duplicate-id detection.
// The two must not be mixed for the same allocation. clone() deep-copies
// the allocator for simulator snapshots.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/cluster.hpp"
#include "util/types.hpp"

namespace esched::sim {

/// Abstract allocation model the simulation engine drives.
class NodeAllocator {
 public:
  virtual ~NodeAllocator() = default;

  virtual NodeCount total_nodes() const = 0;
  virtual NodeCount free_nodes() const = 0;
  NodeCount busy_nodes() const { return total_nodes() - free_nodes(); }

  /// Pre-size internal storage for up to `max_concurrent` simultaneous
  /// allocations (capacity hint only).
  virtual void reserve(std::size_t /*max_concurrent*/) {}

  /// Whether a job of this size can be placed right now (model-specific:
  /// may be false despite free_nodes() >= nodes under fragmentation).
  virtual bool can_allocate(NodeCount nodes) const = 0;

  /// Hot path: place a job and return its slot handle, or -1 when
  /// placement fails (the engine leaves the job queued). Never partially
  /// allocates.
  virtual std::int32_t try_allocate_slot(NodeCount nodes,
                                         Watts watts_per_node) = 0;

  /// Hot path: release the allocation behind `slot`; throws if invalid.
  virtual void release_slot(std::int32_t slot) = 0;

  /// Place a job keyed by id; returns false when placement fails.
  virtual bool try_allocate(JobId job, NodeCount nodes,
                            Watts watts_per_node) = 0;

  /// Release a running job's nodes by id; throws if unknown.
  virtual void release(JobId job) = 0;

  /// Aggregate electrical power right now (busy + idle draw).
  virtual Watts current_power() const = 0;

  /// Deep copy, for simulator snapshots.
  virtual std::unique_ptr<NodeAllocator> clone() const = 0;

  /// Display name for reports.
  virtual std::string name() const = 0;
};

/// The paper's model: a fungible pool — any free nodes serve any job.
/// Thin adapter over Cluster.
class CountingAllocator final : public NodeAllocator {
 public:
  explicit CountingAllocator(NodeCount total_nodes,
                             Watts idle_watts_per_node = 0.0);
  NodeCount total_nodes() const override;
  NodeCount free_nodes() const override;
  void reserve(std::size_t max_concurrent) override;
  bool can_allocate(NodeCount nodes) const override;
  std::int32_t try_allocate_slot(NodeCount nodes,
                                 Watts watts_per_node) override;
  void release_slot(std::int32_t slot) override;
  bool try_allocate(JobId job, NodeCount nodes,
                    Watts watts_per_node) override;
  void release(JobId job) override;
  Watts current_power() const override;
  std::unique_ptr<NodeAllocator> clone() const override;
  std::string name() const override { return "counting"; }

 private:
  Cluster cluster_;
};

/// 1-D contiguous-block allocation: nodes form a line, a job occupies a
/// contiguous range, placement is best-fit (smallest hole that fits —
/// the standard fragmentation-limiting heuristic). can_allocate() can be
/// false with plenty of free nodes; that gap is the fragmentation cost.
class ContiguousAllocator final : public NodeAllocator {
 public:
  explicit ContiguousAllocator(NodeCount total_nodes,
                               Watts idle_watts_per_node = 0.0);
  NodeCount total_nodes() const override;
  NodeCount free_nodes() const override;
  void reserve(std::size_t max_concurrent) override;
  bool can_allocate(NodeCount nodes) const override;
  std::int32_t try_allocate_slot(NodeCount nodes,
                                 Watts watts_per_node) override;
  void release_slot(std::int32_t slot) override;
  bool try_allocate(JobId job, NodeCount nodes,
                    Watts watts_per_node) override;
  void release(JobId job) override;
  Watts current_power() const override;
  std::unique_ptr<NodeAllocator> clone() const override;
  std::string name() const override { return "contiguous"; }

  /// Size of the largest free contiguous block.
  NodeCount largest_hole() const;
  /// Number of maximal free blocks (1 when unfragmented or empty... 0
  /// when completely full).
  std::size_t hole_count() const;

 private:
  struct Allocation {
    NodeCount start;
    NodeCount length;
    Watts watts_per_node;
  };
  /// Find the best-fit hole for `nodes`; returns (start, found).
  std::pair<NodeCount, bool> best_fit(NodeCount nodes) const;
  /// Remove the block starting at `start` and return its nodes.
  void release_block(NodeCount start);

  NodeCount total_;
  NodeCount free_;
  Watts idle_watts_per_node_;
  Watts busy_power_ = 0.0;
  /// Allocations keyed by block start (ordered -> linear hole scan).
  std::map<NodeCount, Allocation> by_start_;
  std::map<JobId, NodeCount> job_to_start_;
  /// Slot columns: slot -> block start (-1 marks a free slot).
  std::vector<NodeCount> slot_start_;
  std::vector<std::int32_t> free_slots_;
};

/// Factory used by the simulator config.
std::unique_ptr<NodeAllocator> make_allocator(bool contiguous,
                                              NodeCount total_nodes,
                                              Watts idle_watts_per_node);

}  // namespace esched::sim
