// The machine model: a space-shared pool of identical nodes.
//
// The paper's scheduling mechanism is deliberately generic ("for various
// HPC systems"): allocation is by node count only, with no topology
// constraints (their earlier Blue Gene-specific work handled partition
// shapes; this paper drops that requirement). The cluster tracks free
// nodes, per-job allocations, and the aggregate electrical power of the
// running mix, including an optional idle power per free node.
#pragma once

#include <unordered_map>

#include "util/types.hpp"

namespace esched::sim {

/// Space-shared node pool with power accounting.
class Cluster {
 public:
  /// A machine of `total_nodes` nodes; `idle_watts_per_node` is drawn by
  /// every free node (the paper sets this to 0 and shows the relative
  /// results are insensitive to it; see the ablation bench).
  explicit Cluster(NodeCount total_nodes, Watts idle_watts_per_node = 0.0);

  NodeCount total_nodes() const { return total_; }
  NodeCount free_nodes() const { return free_; }
  NodeCount busy_nodes() const { return total_ - free_; }
  std::size_t running_jobs() const { return allocations_.size(); }

  /// True if `nodes` more nodes can be allocated right now.
  bool fits(NodeCount nodes) const { return nodes <= free_; }

  /// Allocate `nodes` nodes to job `job` drawing `watts_per_node` each.
  /// Throws if the job is already running or does not fit.
  void allocate(JobId job, NodeCount nodes, Watts watts_per_node);

  /// Release job `job`'s nodes. Throws if it is not running.
  void release(JobId job);

  /// Aggregate electrical power right now: running jobs plus idle draw.
  Watts current_power() const;

 private:
  struct Allocation {
    NodeCount nodes;
    Watts watts_per_node;
  };

  NodeCount total_;
  NodeCount free_;
  Watts idle_watts_per_node_;
  Watts busy_power_ = 0.0;  ///< sum over running jobs of nodes*watts
  std::unordered_map<JobId, Allocation> allocations_;
};

}  // namespace esched::sim
