// The machine model: a space-shared pool of identical nodes.
//
// The paper's scheduling mechanism is deliberately generic ("for various
// HPC systems"): allocation is by node count only, with no topology
// constraints (their earlier Blue Gene-specific work handled partition
// shapes; this paper drops that requirement). The cluster tracks free
// nodes, per-allocation state, and the aggregate electrical power of the
// running mix, including an optional idle power per free node.
//
// Storage is struct-of-arrays slot columns: an allocation is a small
// integer slot handle into parallel vectors, recycled through a free
// list, so the simulator's hot loop never hashes a JobId. A JobId-keyed
// convenience API (allocate/release) remains for tests and cold paths;
// the two APIs must not be mixed for the same allocation. The whole
// object is plainly copyable, which is what makes simulator snapshots
// cheap.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace esched::sim {

/// Space-shared node pool with power accounting.
class Cluster {
 public:
  /// A machine of `total_nodes` nodes; `idle_watts_per_node` is drawn by
  /// every free node (the paper sets this to 0 and shows the relative
  /// results are insensitive to it; see the ablation bench).
  explicit Cluster(NodeCount total_nodes, Watts idle_watts_per_node = 0.0);

  /// Pre-size the slot columns for up to `max_concurrent` simultaneous
  /// allocations (a hint; the columns still grow on demand).
  void reserve(std::size_t max_concurrent);

  NodeCount total_nodes() const { return total_; }
  NodeCount free_nodes() const { return free_; }
  NodeCount busy_nodes() const { return total_ - free_; }
  std::size_t running_jobs() const { return running_; }

  /// True if `nodes` more nodes can be allocated right now.
  bool fits(NodeCount nodes) const { return nodes <= free_; }

  /// Hot path: allocate `nodes` nodes drawing `watts_per_node` each and
  /// return the slot handle. Throws if the request does not fit — callers
  /// check fits() first (the engine always does).
  std::int32_t allocate_slot(NodeCount nodes, Watts watts_per_node);

  /// Hot path: release the allocation behind `slot`. Throws on a slot
  /// that is not currently allocated.
  void release_slot(std::int32_t slot);

  /// Convenience: allocate keyed by job id. Throws if the job is already
  /// running (via this API) or does not fit.
  void allocate(JobId job, NodeCount nodes, Watts watts_per_node);

  /// Convenience: release job `job`'s nodes. Throws if it is not running.
  void release(JobId job);

  /// Aggregate electrical power right now: running jobs plus idle draw.
  Watts current_power() const;

 private:
  NodeCount total_;
  NodeCount free_;
  Watts idle_watts_per_node_;
  Watts busy_power_ = 0.0;  ///< sum over running jobs of nodes*watts
  std::size_t running_ = 0;

  // Slot columns (parallel). slot_nodes_[s] == 0 marks a free slot.
  std::vector<NodeCount> slot_nodes_;
  std::vector<Watts> slot_power_;  ///< nodes * watts_per_node, per slot
  std::vector<std::int32_t> free_slots_;

  // Only the JobId convenience API touches this map.
  std::unordered_map<JobId, std::int32_t> id_to_slot_;
};

}  // namespace esched::sim
