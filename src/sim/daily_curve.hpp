// Time-of-day averaging of a piecewise-constant signal — the machinery
// behind the paper's Fig. 12 (average daily utilization) and Fig. 13
// (average daily power): "utilization at each time point is calculated as
// the average over the month".
//
// The accumulator receives constant-value segments [t0, t1) and integrates
// them exactly into time-of-day bins; average(i) is then the time-weighted
// mean of the signal over bin i across all observed days.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace esched::sim {

/// Exact time-of-day binned average of a piecewise-constant signal.
class DailyCurveAccumulator {
 public:
  /// `bins` uniform bins over the 24-hour day (default 96 = 15 minutes).
  /// kSecondsPerDay must be divisible by `bins`.
  explicit DailyCurveAccumulator(std::size_t bins = 96);

  /// Integrate a constant `value` over [t0, t1). Segments may span any
  /// number of days and may be fed in any order.
  void add_segment(TimeSec t0, TimeSec t1, double value);

  std::size_t bin_count() const { return value_seconds_.size(); }
  /// First second-of-day covered by bin i.
  DurationSec bin_start(std::size_t i) const;
  /// Time-weighted mean of the signal in bin i; 0 if the bin was never
  /// covered.
  double average(std::size_t i) const;
  /// Seconds of signal observed in bin i (across all days).
  double coverage_seconds(std::size_t i) const;

  /// The full curve as a vector of bin averages.
  std::vector<double> averages() const;

 private:
  std::vector<double> value_seconds_;     // ∫ value dt per bin
  std::vector<double> observed_seconds_;  // ∫ dt per bin
};

}  // namespace esched::sim
