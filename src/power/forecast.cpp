#include "power/forecast.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace esched::power {

MisforecastTariff::MisforecastTariff(const PricingModel& truth,
                                     double error_rate, std::uint64_t seed,
                                     DurationSec bucket)
    : truth_(truth), error_rate_(error_rate), seed_(seed), bucket_(bucket) {
  ESCHED_REQUIRE(error_rate_ >= 0.0 && error_rate_ <= 1.0,
                 "error rate outside [0,1]");
  ESCHED_REQUIRE(bucket_ > 0, "forecast bucket must be positive");
}

bool MisforecastTariff::flipped_at(TimeSec t) const {
  if (error_rate_ <= 0.0) return false;
  // One deterministic uniform draw per bucket.
  std::uint64_t h =
      seed_ ^ (0x9e3779b97f4a7c15ULL *
               (static_cast<std::uint64_t>(t / bucket_) + 1));
  Rng rng(splitmix64(h));
  return rng.uniform() < error_rate_;
}

Money MisforecastTariff::price_at(TimeSec t) const {
  return truth_.price_at(t);
}

PricePeriod MisforecastTariff::period_at(TimeSec t) const {
  const PricePeriod actual = truth_.period_at(t);
  if (!flipped_at(t)) return actual;
  return actual == PricePeriod::kOnPeak ? PricePeriod::kOffPeak
                                        : PricePeriod::kOnPeak;
}

TimeSec MisforecastTariff::next_price_change(TimeSec t) const {
  // The forecast can change at bucket edges even when the truth doesn't.
  const TimeSec bucket_edge = (t / bucket_ + 1) * bucket_;
  return std::min(truth_.next_price_change(t), bucket_edge);
}

std::string MisforecastTariff::name() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "misforecast(%.0f%%, %s)",
                error_rate_ * 100.0, truth_.name().c_str());
  return buf;
}

}  // namespace esched::power
