// Online power-profile learning — the paper's future-work item
// ("integrating our design with the work on environmental data analysis
// ... for automatically obtaining job power profiles").
//
// Rationale from §3: HPC jobs are repetitive and identifiable by user and
// size, so a batch scheduler can learn profiles from history. The
// estimator keeps running means at three granularities and predicts with
// the most specific one that has enough samples:
//   (user, size-class)  ->  user  ->  global  ->  configured default.
// Size classes are power-of-two node buckets (matching how partitioned
// machines allocate). Plugged into the simulator as a PowerVisibility, it
// starts ignorant and converges as jobs complete; the ablation bench
// measures how quickly the savings follow.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "power/visibility.hpp"
#include "util/stats.hpp"

namespace esched::power {

/// Learns per-(user, size-class) mean power from completed jobs.
class ProfileEstimator final : public PowerVisibility {
 public:
  struct Config {
    /// Prediction when no history exists at any granularity.
    Watts default_watts = 40.0;
    /// Samples a bucket needs before its mean is trusted.
    std::size_t min_samples = 3;
  };

  ProfileEstimator();  // default Config
  explicit ProfileEstimator(Config config);

  Watts visible_power_per_node(const trace::Job& job) override;
  void on_job_complete(const trace::Job& job) override;
  std::string name() const override { return "estimator"; }

  /// Completed jobs observed so far.
  std::size_t observations() const { return observations_; }
  /// Fraction of predictions served from the most specific bucket.
  double specific_hit_rate() const;
  /// Fraction of predictions that fell through to the default.
  double default_rate() const;

  /// Power-of-two size class of a node count (0 for 1 node, 1 for 2,
  /// 2 for 3-4, ...). Exposed for tests.
  static int size_class(NodeCount nodes);

 private:
  Config config_;
  std::map<std::pair<int, int>, RunningStats> by_user_class_;
  std::map<int, RunningStats> by_user_;
  RunningStats global_;
  std::size_t observations_ = 0;
  std::size_t predictions_ = 0;
  std::size_t specific_hits_ = 0;
  std::size_t default_falls_ = 0;
};

}  // namespace esched::power
