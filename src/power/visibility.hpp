// What the scheduler *believes* about job power, decoupled from what the
// electricity meter bills.
//
// The paper assumes the batch scheduler knows each job's power profile
// (extracted from historical data, §3) and lists automatic profile
// extraction as future work. This seam makes that assumption a variable:
// the simulator asks a PowerVisibility for the per-node watts the
// scheduler sees when prioritising, while billing always uses the trace's
// ground truth. Implementations model perfect knowledge, measurement
// noise, profile-blind scheduling, and online learning
// (power/profile_estimator.hpp).
#pragma once

#include "trace/job.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace esched::power {

/// The scheduler's view of job power. Stateful implementations learn from
/// completions; all implementations must be deterministic.
class PowerVisibility {
 public:
  virtual ~PowerVisibility() = default;

  /// Per-node watts the scheduler should assume for this job.
  virtual Watts visible_power_per_node(const trace::Job& job) = 0;

  /// Ground-truth feedback when a job completes (power measured by the
  /// machine's environmental sensors, as on BG/Q).
  virtual void on_job_complete(const trace::Job& job) { (void)job; }

  /// Display name for reports.
  virtual std::string name() const = 0;
};

/// Perfect knowledge (the paper's assumption; also the simulator default).
class TruthVisibility final : public PowerVisibility {
 public:
  Watts visible_power_per_node(const trace::Job& job) override {
    return job.power_per_node;
  }
  std::string name() const override { return "truth"; }
};

/// Profile-blind scheduling: every job looks like `assumed_watts`. Under
/// this view the power-aware policies lose their signal entirely — the
/// floor of the estimation-quality sweep.
class BlindVisibility final : public PowerVisibility {
 public:
  explicit BlindVisibility(Watts assumed_watts = 40.0)
      : assumed_(assumed_watts) {}
  Watts visible_power_per_node(const trace::Job&) override {
    return assumed_;
  }
  std::string name() const override { return "blind"; }

 private:
  Watts assumed_;
};

/// Multiplicative lognormal measurement error: each job's visible power
/// is truth * exp(N(0, sigma)), fixed per job (deterministic in the job
/// id and seed, so repeated queries agree).
class NoisyVisibility final : public PowerVisibility {
 public:
  /// `sigma_log` ~ relative error scale (0.1 ≈ ±10%, 0.3 ≈ ±35%).
  NoisyVisibility(double sigma_log, std::uint64_t seed);
  Watts visible_power_per_node(const trace::Job& job) override;
  std::string name() const override;

 private:
  double sigma_;
  std::uint64_t seed_;
};

}  // namespace esched::power
