// Price-period forecast error.
//
// A production deployment schedules against a day-ahead tariff forecast,
// not an oracle. MisforecastTariff wraps a ground-truth tariff and flips
// the *period classification* the scheduler sees with a configurable
// error rate, one decision per forecast bucket (default: hourly),
// deterministically in (bucket, seed). Billing is untouched — price_at()
// passes the true price through — so using this as the simulation tariff
// means "the scheduler misjudges cheap/expensive windows, the meter
// doesn't". Note the on-/off-peak *attribution* of energy in SimResult
// follows the forecast (it is classified via period_at); total bills are
// always ground truth.
#pragma once

#include <cstdint>
#include <memory>

#include "power/pricing.hpp"

namespace esched::power {

/// Wraps a tariff with deterministic period-forecast errors.
class MisforecastTariff final : public PricingModel {
 public:
  /// Flip the wrapped tariff's period with probability `error_rate` in
  /// each `bucket` of time (seconds; default 1 hour). `truth` must
  /// outlive this object.
  MisforecastTariff(const PricingModel& truth, double error_rate,
                    std::uint64_t seed, DurationSec bucket = 3600);

  Money price_at(TimeSec t) const override;        // ground truth
  PricePeriod period_at(TimeSec t) const override; // possibly flipped
  TimeSec next_price_change(TimeSec t) const override;
  std::string name() const override;

  /// Whether the forecast at time t is wrong (exposed for tests).
  bool flipped_at(TimeSec t) const;

 private:
  const PricingModel& truth_;
  double error_rate_;
  std::uint64_t seed_;
  DurationSec bucket_;
};

}  // namespace esched::power
