// Dynamic electricity pricing models.
//
// The paper's evaluation uses a two-level tariff: off-peak from midnight to
// noon, on-peak from noon to midnight, with on/off price ratios 3-5x
// (§5.3). The scheduler only consumes the *period* (on- vs off-peak); the
// billing meter consumes the actual price. We also provide a multi-tier
// time-of-use tariff and an arbitrary hourly price series (real-time
// wholesale markets vary hourly by up to 10x [Qureshi'09]) as extensions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace esched::power {

/// Coarse price regime visible to the scheduler.
enum class PricePeriod {
  kOffPeak,  ///< cheap electricity: schedule power-hungry jobs
  kOnPeak,   ///< expensive electricity: schedule power-frugal jobs
};

/// Render a PricePeriod for reports.
std::string to_string(PricePeriod period);

/// Interface of an electricity tariff on the simulation clock.
class PricingModel {
 public:
  virtual ~PricingModel() = default;

  /// Price in $/kWh at time t.
  virtual Money price_at(TimeSec t) const = 0;

  /// Coarse regime at time t (what the scheduler keys its policy on).
  virtual PricePeriod period_at(TimeSec t) const = 0;

  /// Smallest boundary strictly after t at which the price can change.
  /// Billing integrates piecewise-constant power between boundaries, so
  /// this must never skip a price change; returning earlier times (e.g.
  /// hourly even for a 12-hour tariff) is allowed, just slower.
  virtual TimeSec next_price_change(TimeSec t) const = 0;

  /// Display name for reports.
  virtual std::string name() const = 0;
};

/// Constant price (degenerate tariff; baseline for "pricing off" ablations).
class FlatPricing final : public PricingModel {
 public:
  explicit FlatPricing(Money price_per_kwh);
  Money price_at(TimeSec t) const override;
  PricePeriod period_at(TimeSec t) const override;
  TimeSec next_price_change(TimeSec t) const override;
  std::string name() const override;

 private:
  Money price_;
};

/// The paper's tariff: off-peak [00:00, 12:00), on-peak [12:00, 24:00),
/// repeating daily. Constructed from the off-peak price and the on/off
/// ratio (the paper only ever varies the ratio).
class OnOffPeakPricing final : public PricingModel {
 public:
  /// `ratio` is on-peak price / off-peak price (paper default 3).
  /// `on_peak_start`/`on_peak_end` are seconds-of-day; the on-peak window
  /// must not wrap midnight (the off-peak window is its complement).
  /// With `weekends_off_peak`, days 5 and 6 of each week are entirely
  /// off-peak — the common utility-tariff shape (demand is industrial).
  OnOffPeakPricing(Money off_peak_price_per_kwh, double ratio,
                   DurationSec on_peak_start = 12 * kSecondsPerHour,
                   DurationSec on_peak_end = 24 * kSecondsPerHour,
                   bool weekends_off_peak = false);

  Money price_at(TimeSec t) const override;
  PricePeriod period_at(TimeSec t) const override;
  TimeSec next_price_change(TimeSec t) const override;
  std::string name() const override;

  Money off_peak_price() const { return off_price_; }
  Money on_peak_price() const { return on_price_; }

 private:
  Money off_price_;
  Money on_price_;
  DurationSec on_start_;
  DurationSec on_end_;
  bool weekends_off_peak_;
};

/// Multi-tier time-of-use tariff: a daily schedule of (start-second, price)
/// tiers. Periods at or above `on_peak_threshold` (a price) count as
/// on-peak for the scheduler.
class TouPricing final : public PricingModel {
 public:
  struct Tier {
    DurationSec start_of_day;  ///< first second-of-day of this tier
    Money price_per_kwh;
  };

  /// Tiers must start at 0, be strictly increasing, and stay within a day.
  TouPricing(std::vector<Tier> tiers, Money on_peak_threshold);

  Money price_at(TimeSec t) const override;
  PricePeriod period_at(TimeSec t) const override;
  TimeSec next_price_change(TimeSec t) const override;
  std::string name() const override;

 private:
  const Tier& tier_at(TimeSec t) const;
  std::vector<Tier> tiers_;
  Money threshold_;
};

/// An explicit hourly price series (e.g. a wholesale market tape). Prices
/// repeat cyclically past the end of the series. On-peak is defined as
/// price >= the series' median.
class HourlyPriceSeries final : public PricingModel {
 public:
  /// `hourly_prices[h]` applies to simulation hours h, h + len, ... .
  explicit HourlyPriceSeries(std::vector<Money> hourly_prices);

  Money price_at(TimeSec t) const override;
  PricePeriod period_at(TimeSec t) const override;
  TimeSec next_price_change(TimeSec t) const override;
  std::string name() const override;

  Money median_price() const { return median_; }

 private:
  std::vector<Money> prices_;
  Money median_;
};

/// Convenience: the paper's default tariff — off-peak $0.03/kWh, on/off
/// ratio as given (default 3).
std::unique_ptr<PricingModel> make_paper_tariff(double ratio = 3.0);

/// Construct a tariff by name — the registry that lets a declarative
/// run::PricingSpec cross a process boundary (a worker rebuilds the model
/// from name + parameters). Known names: "paper"/"onoff" (OnOffPeakPricing
/// at `off_peak_price` and `ratio`) and "flat" (FlatPricing at
/// `off_peak_price`; `ratio` ignored). Throws esched::Error listing the
/// valid names for anything else.
std::unique_ptr<PricingModel> make_pricing_by_name(const std::string& name,
                                                   Money off_peak_price,
                                                   double ratio);

}  // namespace esched::power
