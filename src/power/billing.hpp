// Electricity billing: exact integration of price(t) * power(t).
//
// System power is piecewise constant between job start/finish events, so
// the meter integrates each constant-power segment against the tariff,
// splitting at every price change and at day boundaries (the paper's
// simulator "sums up electricity bill on a daily basis", §5.5). All
// accumulation is exact up to floating point; there is no sampling error.
#pragma once

#include <vector>

#include "power/facility.hpp"
#include "power/pricing.hpp"
#include "util/types.hpp"

namespace esched::power {

/// Integrates the electricity bill of a piecewise-constant power signal.
/// Feed monotone (time, power) change-points via set_power(), then call
/// finish() once with the end of the accounting horizon.
class BillingMeter {
 public:
  /// Accounting starts at `start` with zero power. `pricing` (and
  /// `facility`, when given) must outlive the meter. With a facility
  /// model, set_power() still receives *IT* watts; the meter bills
  /// facility watts (see power/facility.hpp for the exactness contract)
  /// and every energy/bill accessor reports facility quantities;
  /// it_energy() reports the raw IT integral.
  BillingMeter(const PricingModel& pricing, TimeSec start,
               const FacilityModel* facility = nullptr);

  /// Record that total system power becomes `watts` at time `t` (t must be
  /// >= the previous change-point). The interval since the previous
  /// change-point is billed at the previous power level.
  void set_power(TimeSec t, Watts watts);

  /// Close the accounting horizon at `t`, billing the final segment.
  /// Further set_power calls are rejected.
  void finish(TimeSec t);

  /// Total bill so far (currency units of the tariff).
  Money total_bill() const { return bill_total_; }
  /// Total billed (facility) energy so far in joules.
  Joules total_energy() const { return energy_total_; }
  /// Raw IT energy (equals total_energy() without a facility model).
  Joules it_energy() const { return it_energy_total_; }
  /// Bill accrued during the given price period.
  Money bill_in(PricePeriod period) const;
  /// Energy consumed during the given price period (joules).
  Joules energy_in(PricePeriod period) const;

  /// Bill per day index (day 0 = simulation epoch). Days the meter never
  /// touched are 0.
  const std::vector<Money>& daily_bills() const { return daily_; }

  /// Daily bills aggregated into 30-day months; `months` sets the output
  /// length (later days are folded into the last month so nothing is lost).
  std::vector<Money> monthly_bills(std::size_t months) const;

  /// The meter's complete mutable state, for simulator snapshots. The
  /// pricing/facility references are deliberately not part of it: a
  /// restored meter keeps its own models, which is what lets a forked
  /// simulation resume metering under its own tariff objects.
  struct State {
    TimeSec cursor = 0;
    Watts power = 0.0;
    bool finished = false;
    Money bill_total = 0.0;
    Joules energy_total = 0.0;
    Joules it_energy_total = 0.0;
    Money bill_on = 0.0;
    Money bill_off = 0.0;
    Joules energy_on = 0.0;
    Joules energy_off = 0.0;
    std::vector<Money> daily;
  };
  State state() const;
  void restore(const State& s);

 private:
  void integrate_to(TimeSec t);
  /// Recompute the segment cache for the segment containing cursor_.
  void refresh_segment();

  const PricingModel& pricing_;
  const FacilityModel* facility_;
  TimeSec cursor_;
  Watts power_ = 0.0;
  bool finished_ = false;

  /// Cache of the current homogeneous segment [seg_begin_, seg_end_):
  /// no price change or day boundary inside, so price/period/day are
  /// constant across it. Pure memoization of values integrate_to would
  /// recompute — identical values, identical FP operations — so the
  /// accumulated totals are bit-identical with or without it. Not part
  /// of State (restore() just invalidates).
  TimeSec seg_begin_ = 0;
  TimeSec seg_end_ = 0;  ///< begin == end marks the cache invalid
  Money seg_price_ = 0.0;
  PricePeriod seg_period_ = PricePeriod::kOffPeak;
  std::size_t seg_day_ = 0;

  Money bill_total_ = 0.0;
  Joules energy_total_ = 0.0;
  Joules it_energy_total_ = 0.0;
  Money bill_on_ = 0.0;
  Money bill_off_ = 0.0;
  Joules energy_on_ = 0.0;
  Joules energy_off_ = 0.0;
  std::vector<Money> daily_;
};

}  // namespace esched::power
