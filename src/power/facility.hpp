// Facility power models: what the utility actually bills.
//
// The meter so far integrates IT power; a real data center also pays for
// cooling and distribution losses, summarised as PUE (power usage
// effectiveness = facility watts / IT watts, typically 1.1-2.0).
// Crucially, cooling is *worse in the afternoon* — exactly the on-peak
// hours — so a PUE that tracks the tariff period amplifies the paper's
// savings mechanism. PeriodPue models that; ConstantPue is the
// conventional flat multiplier.
//
// Exactness contract: BillingMeter integrates piecewise-constant segments
// split at price changes and day boundaries, so a facility model must be
// constant *within* those segments — i.e. its value may depend on the
// price period and the calendar day, but not on finer structure. Both
// provided models satisfy this by construction.
#pragma once

#include <string>

#include "power/pricing.hpp"
#include "util/types.hpp"

namespace esched::power {

/// Maps IT power to facility (billed) power at a given time.
class FacilityModel {
 public:
  virtual ~FacilityModel() = default;

  /// Facility watts drawn when the IT equipment draws `it_watts` at `t`.
  /// Must be constant within any interval where the associated tariff's
  /// price and the calendar day are constant (see header).
  virtual Watts facility_watts(Watts it_watts, TimeSec t) const = 0;

  /// Display name for reports.
  virtual std::string name() const = 0;
};

/// Flat PUE: facility = pue * IT.
class ConstantPue final : public FacilityModel {
 public:
  explicit ConstantPue(double pue);
  Watts facility_watts(Watts it_watts, TimeSec t) const override;
  std::string name() const override;
  double pue() const { return pue_; }

 private:
  double pue_;
};

/// Period-tracking PUE: one value during the tariff's off-peak hours
/// (cool nights), a higher one during on-peak (hot afternoons). Keyed on
/// the same tariff the meter bills, so segment-constancy holds exactly.
class PeriodPue final : public FacilityModel {
 public:
  /// `tariff` must outlive this model. Typical values: off 1.15, on 1.45.
  PeriodPue(const PricingModel& tariff, double off_peak_pue,
            double on_peak_pue);
  Watts facility_watts(Watts it_watts, TimeSec t) const override;
  std::string name() const override;

 private:
  const PricingModel& tariff_;
  double off_pue_;
  double on_pue_;
};

}  // namespace esched::power
