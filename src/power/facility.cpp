#include "power/facility.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace esched::power {

ConstantPue::ConstantPue(double pue) : pue_(pue) {
  ESCHED_REQUIRE(pue_ >= 1.0, "PUE below 1 is unphysical");
}

Watts ConstantPue::facility_watts(Watts it_watts, TimeSec) const {
  return it_watts * pue_;
}

std::string ConstantPue::name() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "pue(%.2f)", pue_);
  return buf;
}

PeriodPue::PeriodPue(const PricingModel& tariff, double off_peak_pue,
                     double on_peak_pue)
    : tariff_(tariff), off_pue_(off_peak_pue), on_pue_(on_peak_pue) {
  ESCHED_REQUIRE(off_pue_ >= 1.0 && on_pue_ >= 1.0,
                 "PUE below 1 is unphysical");
}

Watts PeriodPue::facility_watts(Watts it_watts, TimeSec t) const {
  const double pue =
      tariff_.period_at(t) == PricePeriod::kOnPeak ? on_pue_ : off_pue_;
  return it_watts * pue;
}

std::string PeriodPue::name() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "pue(off=%.2f,on=%.2f)", off_pue_,
                on_pue_);
  return buf;
}

}  // namespace esched::power
