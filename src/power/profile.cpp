#include "power/profile.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace esched::power {

void assign_profiles(trace::Trace& trace, const ProfileConfig& cfg,
                     std::uint64_t seed) {
  ESCHED_REQUIRE(cfg.min_watts_per_node > 0.0,
                 "minimum power must be positive");
  ESCHED_REQUIRE(cfg.ratio >= 1.0, "power ratio must be >= 1");
  ESCHED_REQUIRE(cfg.per_user_correlation >= 0.0 &&
                     cfg.per_user_correlation <= 1.0,
                 "per_user_correlation outside [0,1]");

  const Watts lo = cfg.min_watts_per_node;
  const Watts hi = cfg.max_watts_per_node();
  const double mean = 0.5 * (lo + hi);
  const double sd = (hi - lo) / 6.0;

  Rng rng(seed);
  std::unordered_map<int, double> user_mean;
  for (trace::Job& j : trace.mutable_jobs()) {
    double draw;
    if (hi == lo) {
      draw = lo;
    } else {
      draw = rng.truncated_normal(mean, sd, lo, hi);
      if (cfg.per_user_correlation > 0.0) {
        auto [it, inserted] = user_mean.try_emplace(j.user, 0.0);
        if (inserted) it->second = rng.truncated_normal(mean, sd, lo, hi);
        draw = cfg.per_user_correlation * it->second +
               (1.0 - cfg.per_user_correlation) * draw;
      }
    }
    j.power_per_node = draw;
  }
}

void rescale_profiles(trace::Trace& trace, Watts new_min, double new_ratio) {
  ESCHED_REQUIRE(new_min > 0.0, "minimum power must be positive");
  ESCHED_REQUIRE(new_ratio >= 1.0, "power ratio must be >= 1");
  Watts old_lo = 1e300;
  Watts old_hi = -1e300;
  for (const trace::Job& j : trace.jobs()) {
    old_lo = std::min(old_lo, j.power_per_node);
    old_hi = std::max(old_hi, j.power_per_node);
  }
  if (trace.empty()) return;
  const Watts new_max = new_min * new_ratio;
  for (trace::Job& j : trace.mutable_jobs()) {
    const double q = old_hi > old_lo
                         ? (j.power_per_node - old_lo) / (old_hi - old_lo)
                         : 0.5;
    j.power_per_node = new_min + q * (new_max - new_min);
  }
}

}  // namespace esched::power
