// Job power-profile assignment.
//
// SWF traces carry no power data, so the paper assigns each job a power
// profile drawn from a normal distribution over [20, 60] W/node shaped
// like the measured Mira distribution (Fig. 1), and studies max/min power
// ratios of 1:2, 1:3, 1:4 (§5.4, §6.2). We reproduce that assignment
// deterministically. Repetitive jobs are recognisable by user in real
// traces; `per_user_correlation` optionally makes a user's jobs cluster
// around a per-user mean, modelling the paper's "repetitive jobs have
// extractable profiles" observation.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace esched::power {

/// Parameters of the synthetic power-profile assignment.
struct ProfileConfig {
  /// Lowest power profile in W/node (paper default 20).
  Watts min_watts_per_node = 20.0;
  /// max/min ratio (paper default 3, i.e. 20-60 W/node).
  double ratio = 3.0;
  /// Fraction of a job's profile inherited from its user's mean (0 = fully
  /// independent draws, the paper's setting; 0.7 models repetitive jobs).
  double per_user_correlation = 0.0;

  Watts max_watts_per_node() const { return min_watts_per_node * ratio; }
};

/// Assign every job in `trace` a power profile: a normal draw centred on
/// the range midpoint with sd = range/6 (≈99.7% mass inside), truncated to
/// [min, max]. Deterministic in (config, seed). Overwrites existing
/// profiles.
void assign_profiles(trace::Trace& trace, const ProfileConfig& config,
                     std::uint64_t seed);

/// Rescale existing profiles into [min, max*ratio] preserving each job's
/// quantile — used to re-ratio a trace (e.g. a Mira log) without redrawing.
void rescale_profiles(trace::Trace& trace, Watts new_min, double new_ratio);

}  // namespace esched::power
