#include "power/billing.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::power {

BillingMeter::BillingMeter(const PricingModel& pricing, TimeSec start,
                           const FacilityModel* facility)
    : pricing_(pricing), facility_(facility), cursor_(start) {}

void BillingMeter::set_power(TimeSec t, Watts watts) {
  ESCHED_REQUIRE(!finished_, "BillingMeter already finished");
  ESCHED_REQUIRE(t >= cursor_, "BillingMeter fed out-of-order time");
  ESCHED_REQUIRE(watts >= 0.0, "negative system power");
  integrate_to(t);
  power_ = watts;
}

void BillingMeter::finish(TimeSec t) {
  ESCHED_REQUIRE(!finished_, "BillingMeter already finished");
  ESCHED_REQUIRE(t >= cursor_, "BillingMeter fed out-of-order time");
  integrate_to(t);
  finished_ = true;
}

void BillingMeter::integrate_to(TimeSec t) {
  while (cursor_ < t) {
    // Split at price changes *and* day boundaries: per-day bills need the
    // day split even when the price is continuous across midnight.
    const TimeSec price_edge = pricing_.next_price_change(cursor_);
    ESCHED_REQUIRE(price_edge > cursor_,
                   "pricing model returned a non-advancing boundary");
    const TimeSec day_edge = start_of_day(cursor_) + kSecondsPerDay;
    const TimeSec seg_end = std::min({t, price_edge, day_edge});

    const auto seconds = static_cast<double>(seg_end - cursor_);
    const Watts billed_watts =
        facility_ != nullptr ? facility_->facility_watts(power_, cursor_)
                             : power_;
    const Joules joules = billed_watts * seconds;
    const Money price = pricing_.price_at(cursor_);
    const Money cost = joules_to_kwh(joules) * price;

    energy_total_ += joules;
    it_energy_total_ += power_ * seconds;
    bill_total_ += cost;
    if (pricing_.period_at(cursor_) == PricePeriod::kOnPeak) {
      energy_on_ += joules;
      bill_on_ += cost;
    } else {
      energy_off_ += joules;
      bill_off_ += cost;
    }
    const auto day = static_cast<std::size_t>(day_index(cursor_));
    if (daily_.size() <= day) daily_.resize(day + 1, 0.0);
    daily_[day] += cost;

    cursor_ = seg_end;
  }
}

Money BillingMeter::bill_in(PricePeriod period) const {
  return period == PricePeriod::kOnPeak ? bill_on_ : bill_off_;
}

Joules BillingMeter::energy_in(PricePeriod period) const {
  return period == PricePeriod::kOnPeak ? energy_on_ : energy_off_;
}

std::vector<Money> BillingMeter::monthly_bills(std::size_t months) const {
  ESCHED_REQUIRE(months > 0, "need at least one month");
  std::vector<Money> out(months, 0.0);
  for (std::size_t day = 0; day < daily_.size(); ++day) {
    const std::size_t m =
        std::min(months - 1, day / static_cast<std::size_t>(kDaysPerMonth));
    out[m] += daily_[day];
  }
  return out;
}

}  // namespace esched::power
