#include "power/billing.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::power {

BillingMeter::BillingMeter(const PricingModel& pricing, TimeSec start,
                           const FacilityModel* facility)
    : pricing_(pricing), facility_(facility), cursor_(start) {}

void BillingMeter::set_power(TimeSec t, Watts watts) {
  ESCHED_REQUIRE(!finished_, "BillingMeter already finished");
  ESCHED_REQUIRE(t >= cursor_, "BillingMeter fed out-of-order time");
  ESCHED_REQUIRE(watts >= 0.0, "negative system power");
  integrate_to(t);
  power_ = watts;
}

void BillingMeter::finish(TimeSec t) {
  ESCHED_REQUIRE(!finished_, "BillingMeter already finished");
  ESCHED_REQUIRE(t >= cursor_, "BillingMeter fed out-of-order time");
  integrate_to(t);
  finished_ = true;
}

void BillingMeter::refresh_segment() {
  // Split at price changes *and* day boundaries: per-day bills need the
  // day split even when the price is continuous across midnight.
  const TimeSec price_edge = pricing_.next_price_change(cursor_);
  ESCHED_REQUIRE(price_edge > cursor_,
                 "pricing model returned a non-advancing boundary");
  const TimeSec day_edge = start_of_day(cursor_) + kSecondsPerDay;
  seg_begin_ = cursor_;
  seg_end_ = std::min(price_edge, day_edge);
  seg_price_ = pricing_.price_at(cursor_);
  seg_period_ = pricing_.period_at(cursor_);
  seg_day_ = static_cast<std::size_t>(day_index(cursor_));
}

void BillingMeter::integrate_to(TimeSec t) {
  while (cursor_ < t) {
    if (cursor_ >= seg_end_ || cursor_ < seg_begin_) refresh_segment();
    const TimeSec seg_end = std::min(t, seg_end_);

    const auto seconds = static_cast<double>(seg_end - cursor_);
    const Watts billed_watts =
        facility_ != nullptr ? facility_->facility_watts(power_, cursor_)
                             : power_;
    const Joules joules = billed_watts * seconds;
    const Money cost = joules_to_kwh(joules) * seg_price_;

    energy_total_ += joules;
    it_energy_total_ += power_ * seconds;
    bill_total_ += cost;
    if (seg_period_ == PricePeriod::kOnPeak) {
      energy_on_ += joules;
      bill_on_ += cost;
    } else {
      energy_off_ += joules;
      bill_off_ += cost;
    }
    if (daily_.size() <= seg_day_) daily_.resize(seg_day_ + 1, 0.0);
    daily_[seg_day_] += cost;

    cursor_ = seg_end;
  }
}

BillingMeter::State BillingMeter::state() const {
  return State{cursor_,   power_,     finished_, bill_total_,
               energy_total_, it_energy_total_, bill_on_,  bill_off_,
               energy_on_,    energy_off_,      daily_};
}

void BillingMeter::restore(const State& s) {
  cursor_ = s.cursor;
  seg_begin_ = 0;
  seg_end_ = 0;  // invalidate the segment cache; it is derived state
  power_ = s.power;
  finished_ = s.finished;
  bill_total_ = s.bill_total;
  energy_total_ = s.energy_total;
  it_energy_total_ = s.it_energy_total;
  bill_on_ = s.bill_on;
  bill_off_ = s.bill_off;
  energy_on_ = s.energy_on;
  energy_off_ = s.energy_off;
  daily_ = s.daily;
}

Money BillingMeter::bill_in(PricePeriod period) const {
  return period == PricePeriod::kOnPeak ? bill_on_ : bill_off_;
}

Joules BillingMeter::energy_in(PricePeriod period) const {
  return period == PricePeriod::kOnPeak ? energy_on_ : energy_off_;
}

std::vector<Money> BillingMeter::monthly_bills(std::size_t months) const {
  ESCHED_REQUIRE(months > 0, "need at least one month");
  std::vector<Money> out(months, 0.0);
  for (std::size_t day = 0; day < daily_.size(); ++day) {
    const std::size_t m =
        std::min(months - 1, day / static_cast<std::size_t>(kDaysPerMonth));
    out[m] += daily_[day];
  }
  return out;
}

}  // namespace esched::power
