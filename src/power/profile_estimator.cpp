#include "power/profile_estimator.hpp"

#include "util/error.hpp"

namespace esched::power {

ProfileEstimator::ProfileEstimator() : ProfileEstimator(Config{}) {}

ProfileEstimator::ProfileEstimator(Config config) : config_(config) {
  ESCHED_REQUIRE(config_.default_watts > 0.0,
                 "default power must be positive");
  ESCHED_REQUIRE(config_.min_samples >= 1, "min_samples must be >= 1");
}

int ProfileEstimator::size_class(NodeCount nodes) {
  ESCHED_REQUIRE(nodes > 0, "size class of non-positive node count");
  int cls = 0;
  NodeCount edge = 1;
  while (edge < nodes) {
    edge *= 2;
    ++cls;
  }
  return cls;
}

Watts ProfileEstimator::visible_power_per_node(const trace::Job& job) {
  ++predictions_;
  const auto key = std::make_pair(job.user, size_class(job.nodes));
  if (const auto it = by_user_class_.find(key);
      it != by_user_class_.end() && it->second.count() >= config_.min_samples) {
    ++specific_hits_;
    return it->second.mean();
  }
  if (const auto it = by_user_.find(job.user);
      it != by_user_.end() && it->second.count() >= config_.min_samples) {
    return it->second.mean();
  }
  if (global_.count() >= config_.min_samples) return global_.mean();
  ++default_falls_;
  return config_.default_watts;
}

void ProfileEstimator::on_job_complete(const trace::Job& job) {
  ++observations_;
  const Watts truth = job.power_per_node;
  by_user_class_[{job.user, size_class(job.nodes)}].add(truth);
  by_user_[job.user].add(truth);
  global_.add(truth);
}

double ProfileEstimator::specific_hit_rate() const {
  return predictions_ > 0 ? static_cast<double>(specific_hits_) /
                                static_cast<double>(predictions_)
                          : 0.0;
}

double ProfileEstimator::default_rate() const {
  return predictions_ > 0 ? static_cast<double>(default_falls_) /
                                static_cast<double>(predictions_)
                          : 0.0;
}

}  // namespace esched::power
