#include "power/pricing.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::power {

std::string to_string(PricePeriod period) {
  return period == PricePeriod::kOnPeak ? "on-peak" : "off-peak";
}

// ---------------------------------------------------------------- Flat ----

FlatPricing::FlatPricing(Money price_per_kwh) : price_(price_per_kwh) {
  ESCHED_REQUIRE(price_ > 0.0, "flat price must be positive");
}

Money FlatPricing::price_at(TimeSec) const { return price_; }

PricePeriod FlatPricing::period_at(TimeSec) const {
  return PricePeriod::kOffPeak;
}

TimeSec FlatPricing::next_price_change(TimeSec t) const {
  // No changes ever; report the next day boundary so billing still splits
  // per day (it needs day boundaries for per-day bills anyway).
  return start_of_day(t) + kSecondsPerDay;
}

std::string FlatPricing::name() const { return "flat"; }

// ----------------------------------------------------------- On/Off-peak --

OnOffPeakPricing::OnOffPeakPricing(Money off_peak_price_per_kwh, double ratio,
                                   DurationSec on_peak_start,
                                   DurationSec on_peak_end,
                                   bool weekends_off_peak)
    : off_price_(off_peak_price_per_kwh),
      on_price_(off_peak_price_per_kwh * ratio),
      on_start_(on_peak_start),
      on_end_(on_peak_end),
      weekends_off_peak_(weekends_off_peak) {
  ESCHED_REQUIRE(off_price_ > 0.0, "off-peak price must be positive");
  ESCHED_REQUIRE(ratio >= 1.0, "on/off ratio must be >= 1");
  ESCHED_REQUIRE(on_start_ >= 0 && on_start_ < on_end_ &&
                     on_end_ <= kSecondsPerDay,
                 "on-peak window must lie within one day");
}

PricePeriod OnOffPeakPricing::period_at(TimeSec t) const {
  if (weekends_off_peak_ && day_index(t) % 7 >= 5) {
    return PricePeriod::kOffPeak;
  }
  const DurationSec sod = second_of_day(t);
  return (sod >= on_start_ && sod < on_end_) ? PricePeriod::kOnPeak
                                             : PricePeriod::kOffPeak;
}

Money OnOffPeakPricing::price_at(TimeSec t) const {
  return period_at(t) == PricePeriod::kOnPeak ? on_price_ : off_price_;
}

TimeSec OnOffPeakPricing::next_price_change(TimeSec t) const {
  const TimeSec day = start_of_day(t);
  if (weekends_off_peak_ && day_index(t) % 7 >= 5) {
    // Flat all weekend; the next possible change is the next midnight.
    return day + kSecondsPerDay;
  }
  const DurationSec sod = second_of_day(t);
  if (sod < on_start_) return day + on_start_;
  if (sod < on_end_ && on_end_ < kSecondsPerDay) return day + on_end_;
  return day + kSecondsPerDay;
}

std::string OnOffPeakPricing::name() const {
  return "on/off-peak(" + format_time_of_day(on_start_) + "-" +
         (on_end_ == kSecondsPerDay ? "24:00" : format_time_of_day(on_end_)) +
         ")";
}

// ------------------------------------------------------------------ TOU ---

TouPricing::TouPricing(std::vector<Tier> tiers, Money on_peak_threshold)
    : tiers_(std::move(tiers)), threshold_(on_peak_threshold) {
  ESCHED_REQUIRE(!tiers_.empty(), "TOU tariff needs at least one tier");
  ESCHED_REQUIRE(tiers_.front().start_of_day == 0,
                 "first TOU tier must start at midnight");
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    ESCHED_REQUIRE(tiers_[i].price_per_kwh > 0.0,
                   "TOU tier price must be positive");
    ESCHED_REQUIRE(tiers_[i].start_of_day >= 0 &&
                       tiers_[i].start_of_day < kSecondsPerDay,
                   "TOU tier start outside the day");
    if (i > 0) {
      ESCHED_REQUIRE(tiers_[i].start_of_day > tiers_[i - 1].start_of_day,
                     "TOU tiers must be strictly increasing");
    }
  }
}

const TouPricing::Tier& TouPricing::tier_at(TimeSec t) const {
  const DurationSec sod = second_of_day(t);
  // Last tier whose start <= sod.
  auto it = std::upper_bound(
      tiers_.begin(), tiers_.end(), sod,
      [](DurationSec v, const Tier& tier) { return v < tier.start_of_day; });
  return *(it - 1);
}

Money TouPricing::price_at(TimeSec t) const {
  return tier_at(t).price_per_kwh;
}

PricePeriod TouPricing::period_at(TimeSec t) const {
  return price_at(t) >= threshold_ ? PricePeriod::kOnPeak
                                   : PricePeriod::kOffPeak;
}

TimeSec TouPricing::next_price_change(TimeSec t) const {
  const TimeSec day = start_of_day(t);
  const DurationSec sod = second_of_day(t);
  for (const Tier& tier : tiers_) {
    if (tier.start_of_day > sod) return day + tier.start_of_day;
  }
  return day + kSecondsPerDay;
}

std::string TouPricing::name() const {
  return "tou(" + std::to_string(tiers_.size()) + " tiers)";
}

// --------------------------------------------------------- Hourly series --

HourlyPriceSeries::HourlyPriceSeries(std::vector<Money> hourly_prices)
    : prices_(std::move(hourly_prices)) {
  ESCHED_REQUIRE(!prices_.empty(), "price series must be non-empty");
  for (const Money p : prices_)
    ESCHED_REQUIRE(p > 0.0, "series prices must be positive");
  std::vector<Money> sorted = prices_;
  std::sort(sorted.begin(), sorted.end());
  median_ = sorted[sorted.size() / 2];
}

Money HourlyPriceSeries::price_at(TimeSec t) const {
  ESCHED_REQUIRE(t >= 0, "price series starts at t=0");
  const auto hour = static_cast<std::size_t>(
      (t / kSecondsPerHour) % static_cast<TimeSec>(prices_.size()));
  return prices_[hour];
}

PricePeriod HourlyPriceSeries::period_at(TimeSec t) const {
  return price_at(t) >= median_ ? PricePeriod::kOnPeak
                                : PricePeriod::kOffPeak;
}

TimeSec HourlyPriceSeries::next_price_change(TimeSec t) const {
  return (t / kSecondsPerHour + 1) * kSecondsPerHour;
}

std::string HourlyPriceSeries::name() const {
  return "hourly-series(" + std::to_string(prices_.size()) + "h)";
}

// ------------------------------------------------------------ Convenience -

std::unique_ptr<PricingModel> make_paper_tariff(double ratio) {
  // $0.03/kWh off-peak is a representative wholesale floor; the paper only
  // interprets relative bills, so the absolute level is immaterial (§5.3).
  return std::make_unique<OnOffPeakPricing>(0.03, ratio);
}

std::unique_ptr<PricingModel> make_pricing_by_name(const std::string& name,
                                                   Money off_peak_price,
                                                   double ratio) {
  if (name == "paper" || name == "onoff") {
    return std::make_unique<OnOffPeakPricing>(off_peak_price, ratio);
  }
  if (name == "flat") return std::make_unique<FlatPricing>(off_peak_price);
  throw Error("unknown pricing name \"" + name +
              "\" (known: paper, onoff, flat)");
}

}  // namespace esched::power
