#include "power/visibility.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace esched::power {

NoisyVisibility::NoisyVisibility(double sigma_log, std::uint64_t seed)
    : sigma_(sigma_log), seed_(seed) {
  ESCHED_REQUIRE(sigma_ >= 0.0, "noise sigma must be >= 0");
}

Watts NoisyVisibility::visible_power_per_node(const trace::Job& job) {
  // A per-job deterministic draw: seed a tiny generator from (seed, id).
  std::uint64_t h = seed_ ^ (0x9e3779b97f4a7c15ULL *
                             static_cast<std::uint64_t>(job.id + 1));
  Rng rng(splitmix64(h));
  const double factor = std::exp(rng.normal(0.0, sigma_));
  return job.power_per_node * factor;
}

std::string NoisyVisibility::name() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "noisy(sigma=%.2f)", sigma_);
  return buf;
}

}  // namespace esched::power
