#include "trace/estimates.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace esched::trace {

Trace with_exact_estimates(const Trace& input) {
  Trace out(input.name() + "+exact-est", input.system_nodes());
  for (const Job& src : input.jobs()) {
    Job j = src;
    j.walltime = j.runtime;
    out.add_job(j);
  }
  return out;
}

Trace with_estimate_factor(const Trace& input, double factor) {
  ESCHED_REQUIRE(factor >= 1.0, "estimate factor must be >= 1");
  Trace out(input.name() + "+est*" + std::to_string(factor),
            input.system_nodes());
  for (const Job& src : input.jobs()) {
    Job j = src;
    j.walltime = static_cast<DurationSec>(
        std::ceil(static_cast<double>(j.runtime) * factor));
    out.add_job(j);
  }
  return out;
}

Trace with_menu_estimates(const Trace& input, double sloppy_fraction,
                          std::uint64_t seed) {
  ESCHED_REQUIRE(sloppy_fraction >= 0.0 && sloppy_fraction <= 1.0,
                 "sloppy fraction outside [0,1]");
  // The request menu, in seconds: the round numbers users actually type.
  constexpr std::array<DurationSec, 10> kMenu = {
      1800,          3600,          2 * 3600,  4 * 3600,  8 * 3600,
      12 * 3600,     24 * 3600,     36 * 3600, 48 * 3600, 72 * 3600};

  DurationSec max_walltime = 0;
  for (const Job& j : input.jobs())
    max_walltime = std::max(max_walltime, j.runtime);
  const auto sloppy_it = std::find_if(
      kMenu.begin(), kMenu.end(),
      [&](DurationSec m) { return m >= max_walltime; });
  const DurationSec sloppy_request =
      sloppy_it != kMenu.end() ? *sloppy_it : max_walltime;

  Rng rng(seed);
  Trace out(input.name() + "+menu-est", input.system_nodes());
  for (const Job& src : input.jobs()) {
    Job j = src;
    if (rng.bernoulli(sloppy_fraction)) {
      j.walltime = sloppy_request;
    } else {
      const auto it = std::find_if(
          kMenu.begin(), kMenu.end(),
          [&](DurationSec m) { return m >= j.runtime; });
      j.walltime = it != kMenu.end() ? *it : sloppy_request;
    }
    j.walltime = std::max(j.walltime, j.runtime);
    out.add_job(j);
  }
  return out;
}

double estimate_accuracy(const Trace& trace) {
  if (trace.empty()) return 1.0;
  double total = 0.0;
  for (const Job& j : trace.jobs()) {
    total += static_cast<double>(j.runtime) /
             static_cast<double>(j.walltime);
  }
  return total / static_cast<double>(trace.size());
}

}  // namespace esched::trace
