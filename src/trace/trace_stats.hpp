// Descriptive statistics of a trace: the numbers behind Figs. 1, 4 and 11.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace esched::trace {

/// Summary statistics of a workload trace.
struct TraceStats {
  std::size_t job_count = 0;
  TimeSec span_begin = 0;
  TimeSec span_end = 0;  ///< last submit + that job's runtime
  RunningStats nodes;
  RunningStats runtime;
  RunningStats power_per_node;
  /// Offered utilization: arriving node-seconds / (N * span).
  double offered_utilization = 0.0;
};

/// Compute summary statistics.
TraceStats compute_stats(const Trace& trace);

/// Offered utilization per 30-day month (node-seconds attributed to the
/// month of *submission*, matching how the generators are calibrated).
std::vector<double> monthly_offered_utilization(const Trace& trace,
                                                std::size_t months);

/// Job-size distribution over power-of-two buckets, as in Fig. 4. Bucket i
/// covers sizes (2^(i-1), 2^i]; bucket 0 covers size 1.
CategoricalHistogram size_distribution(const Trace& trace);

/// Job *count* distribution over size classes expressed in racks, weighted
/// by per-rack power — the Fig. 1 view. `nodes_per_rack` converts node
/// counts to racks (jobs below one rack count as one rack).
Histogram power_distribution_kw_per_rack(const Trace& trace,
                                         NodeCount nodes_per_rack,
                                         std::size_t bins = 10);

/// One line per month: count, mean size, mean runtime — the Fig. 11-style
/// temporal summary.
std::string monthly_summary(const Trace& trace);

}  // namespace esched::trace
