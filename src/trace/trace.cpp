#include "trace/trace.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"

namespace esched::trace {

Trace::Trace(std::string name, NodeCount system_nodes)
    : name_(std::move(name)), system_nodes_(system_nodes) {
  ESCHED_REQUIRE(system_nodes_ > 0, "trace system size must be positive");
}

void Trace::add_job(Job job) {
  ESCHED_REQUIRE(job.nodes > 0, "job must request at least one node");
  ESCHED_REQUIRE(job.nodes <= system_nodes_,
                 "job " + std::to_string(job.id) + " requests " +
                     std::to_string(job.nodes) + " nodes but system has " +
                     std::to_string(system_nodes_));
  ESCHED_REQUIRE(job.runtime > 0, "job runtime must be positive");
  ESCHED_REQUIRE(job.walltime > 0, "job walltime must be positive");
  ESCHED_REQUIRE(job.submit >= 0, "job submit time must be non-negative");
  ESCHED_REQUIRE(job.power_per_node >= 0.0, "job power must be non-negative");
  const bool in_order =
      jobs_.empty() || jobs_.back().submit < job.submit ||
      (jobs_.back().submit == job.submit && jobs_.back().id < job.id);
  jobs_.push_back(job);
  if (!in_order) finalize();
}

void Trace::finalize() {
  std::stable_sort(jobs_.begin(), jobs_.end(),
                   [](const Job& a, const Job& b) {
                     if (a.submit != b.submit) return a.submit < b.submit;
                     return a.id < b.id;
                   });
}

TimeSec Trace::first_submit() const {
  return jobs_.empty() ? 0 : jobs_.front().submit;
}

TimeSec Trace::last_submit() const {
  return jobs_.empty() ? 0 : jobs_.back().submit;
}

void Trace::validate() const {
  ESCHED_REQUIRE(system_nodes_ > 0, "trace has no system size");
  std::unordered_set<JobId> seen;
  seen.reserve(jobs_.size());
  const Job* prev = nullptr;
  for (const Job& j : jobs_) {
    ESCHED_REQUIRE(j.nodes > 0 && j.nodes <= system_nodes_,
                   "job " + std::to_string(j.id) + ": bad node count");
    ESCHED_REQUIRE(j.runtime > 0,
                   "job " + std::to_string(j.id) + ": bad runtime");
    ESCHED_REQUIRE(j.walltime > 0,
                   "job " + std::to_string(j.id) + ": bad walltime");
    ESCHED_REQUIRE(j.submit >= 0,
                   "job " + std::to_string(j.id) + ": negative submit");
    ESCHED_REQUIRE(j.power_per_node >= 0.0,
                   "job " + std::to_string(j.id) + ": negative power");
    ESCHED_REQUIRE(seen.insert(j.id).second,
                   "duplicate job id " + std::to_string(j.id));
    if (prev != nullptr) {
      ESCHED_REQUIRE(prev->submit <= j.submit, "trace not sorted by submit");
    }
    prev = &j;
  }
}

}  // namespace esched::trace
