#include "trace/trace_stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/time_util.hpp"

namespace esched::trace {

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  s.job_count = trace.size();
  if (trace.empty()) return s;
  s.span_begin = trace.first_submit();
  double node_seconds = 0.0;
  for (const Job& j : trace.jobs()) {
    s.nodes.add(static_cast<double>(j.nodes));
    s.runtime.add(static_cast<double>(j.runtime));
    s.power_per_node.add(j.power_per_node);
    s.span_end = std::max(s.span_end, j.submit + j.runtime);
    node_seconds += j.node_seconds();
  }
  const double span = static_cast<double>(s.span_end - s.span_begin);
  if (span > 0.0) {
    s.offered_utilization =
        node_seconds / (static_cast<double>(trace.system_nodes()) * span);
  }
  return s;
}

std::vector<double> monthly_offered_utilization(const Trace& trace,
                                                std::size_t months) {
  ESCHED_REQUIRE(months > 0, "need at least one month");
  std::vector<double> node_seconds(months, 0.0);
  for (const Job& j : trace.jobs()) {
    const auto m = static_cast<std::size_t>(month_index(j.submit));
    if (m < months) node_seconds[m] += j.node_seconds();
  }
  std::vector<double> util(months);
  const double capacity = static_cast<double>(trace.system_nodes()) *
                          static_cast<double>(kSecondsPerMonth);
  for (std::size_t m = 0; m < months; ++m)
    util[m] = node_seconds[m] / capacity;
  return util;
}

CategoricalHistogram size_distribution(const Trace& trace) {
  // Buckets: 1, 2, (2,4], (4,8], ... up to the system size.
  std::size_t max_bucket = 0;
  NodeCount limit = 1;
  while (limit < trace.system_nodes()) {
    limit *= 2;
    ++max_bucket;
  }
  std::vector<std::string> names;
  names.reserve(max_bucket + 1);
  names.push_back("1");
  NodeCount hi = 1;
  for (std::size_t b = 1; b <= max_bucket; ++b) {
    hi *= 2;
    names.push_back("<=" + std::to_string(hi));
  }
  CategoricalHistogram hist(std::move(names));
  for (const Job& j : trace.jobs()) {
    std::size_t bucket = 0;
    NodeCount edge = 1;
    while (edge < j.nodes) {
      edge *= 2;
      ++bucket;
    }
    hist.add(bucket);
  }
  return hist;
}

Histogram power_distribution_kw_per_rack(const Trace& trace,
                                         NodeCount nodes_per_rack,
                                         std::size_t bins) {
  ESCHED_REQUIRE(nodes_per_rack > 0, "nodes_per_rack must be positive");
  double lo = 1e300;
  double hi = -1e300;
  for (const Job& j : trace.jobs()) {
    const double kw =
        j.power_per_node * static_cast<double>(nodes_per_rack) / 1000.0;
    lo = std::min(lo, kw);
    hi = std::max(hi, kw);
  }
  if (trace.empty() || lo >= hi) {
    lo = 0.0;
    hi = 1.0;
  }
  Histogram hist(lo, hi * (1.0 + 1e-9), bins);
  for (const Job& j : trace.jobs()) {
    const double kw =
        j.power_per_node * static_cast<double>(nodes_per_rack) / 1000.0;
    hist.add(kw);
  }
  return hist;
}

std::string monthly_summary(const Trace& trace) {
  if (trace.empty()) return "(empty trace)\n";
  const auto months = static_cast<std::size_t>(
      month_index(trace.last_submit()) + 1);
  std::vector<RunningStats> size_stats(months);
  std::vector<RunningStats> runtime_stats(months);
  std::vector<std::size_t> counts(months, 0);
  for (const Job& j : trace.jobs()) {
    const auto m = static_cast<std::size_t>(month_index(j.submit));
    size_stats[m].add(static_cast<double>(j.nodes));
    runtime_stats[m].add(static_cast<double>(j.runtime));
    ++counts[m];
  }
  std::ostringstream os;
  for (std::size_t m = 0; m < months; ++m) {
    os << "month " << m << ": " << counts[m] << " jobs, mean size "
       << std::llround(size_stats[m].mean()) << " nodes, mean runtime "
       << format_duration(
              static_cast<DurationSec>(runtime_stats[m].mean()))
       << "\n";
  }
  return os.str();
}

}  // namespace esched::trace
