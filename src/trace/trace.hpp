// A workload trace: an ordered list of jobs plus the machine it ran on.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "trace/job.hpp"
#include "util/types.hpp"

namespace esched::trace {

/// A workload trace. Jobs are kept sorted by submit time (ties broken by
/// id); mutating accessors re-establish this ordering on demand.
class Trace {
 public:
  Trace() = default;

  /// Creates a trace for a machine of `system_nodes` nodes. Jobs may be
  /// appended afterwards; call finalize() (or let add_job keep order) before
  /// simulation.
  Trace(std::string name, NodeCount system_nodes);

  /// Machine size in nodes (N in the paper).
  NodeCount system_nodes() const { return system_nodes_; }
  /// Human-readable trace name (e.g. "ANL-BGP-like").
  const std::string& name() const { return name_; }

  /// Append a job. Throws if the job requests more nodes than the system
  /// has, has non-positive size/runtime, or a negative submit time.
  void add_job(Job job);

  /// Sorts jobs by (submit, id). Idempotent.
  void finalize();

  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }
  const Job& operator[](std::size_t i) const { return jobs_[i]; }
  std::span<const Job> jobs() const { return jobs_; }
  /// Mutable access for transforms; callers must finalize() afterwards if
  /// they change submit times.
  std::vector<Job>& mutable_jobs() { return jobs_; }

  /// Earliest submit time (0 for an empty trace).
  TimeSec first_submit() const;
  /// Latest submit time (0 for an empty trace).
  TimeSec last_submit() const;

  /// Throws esched::Error describing the first validation failure, if any:
  /// unsorted jobs, duplicate ids, out-of-range sizes, negative times.
  void validate() const;

 private:
  std::string name_ = "unnamed";
  NodeCount system_nodes_ = 0;
  std::vector<Job> jobs_;
};

}  // namespace esched::trace
