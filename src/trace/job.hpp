// The job model: what a batch scheduler knows about one submitted job.
//
// Field names follow the paper's nomenclature (Table 1): `nodes` is n_i,
// `power_per_node` is p_i. Times are simulation seconds (util/types.hpp).
#pragma once

#include <string>

#include "util/types.hpp"

namespace esched::trace {

/// One batch job. Value type; a Trace owns a vector of these.
struct Job {
  /// Unique id within its trace (SWF job number, 1-based in SWF files).
  JobId id = 0;

  /// Submission (arrival) time.
  TimeSec submit = 0;

  /// Actual runtime once started. The simulator ends the job exactly
  /// `runtime` seconds after dispatch.
  DurationSec runtime = 0;

  /// User-requested walltime (runtime estimate). Schedulers only ever see
  /// this, never `runtime`; backfilling reservations are computed from it.
  /// Users habitually overestimate, so walltime >= runtime is typical but
  /// not required (overruns in real traces are truncated at walltime by the
  /// resource manager; our generators keep walltime >= runtime).
  DurationSec walltime = 0;

  /// Number of nodes requested (n_i). Space-shared: the nodes are dedicated
  /// from start to finish.
  NodeCount nodes = 0;

  /// Average power draw per allocated node in watts (p_i). Assigned from
  /// historical/synthetic profiles (power/profile.hpp); 0 means "unknown".
  Watts power_per_node = 0.0;

  /// Submitting user (opaque id; used by fairness-oriented extensions).
  int user = 0;

  /// Batch queue class (SWF field 15). The paper notes systems may run
  /// "multiple job queues with different priorities" (§3); by esched
  /// convention lower numbers are higher priority and 0 is the default
  /// queue. Only honored when SimConfig::honor_queue_priority is set.
  int queue = 0;

  /// Workflow dependency (SWF field 17): this job may only be submitted
  /// after job `preceding` completes, plus `think_time` seconds of user
  /// delay (SWF field 18). 0 means no dependency. Only honored when
  /// SimConfig::honor_dependencies is set and the predecessor appears
  /// *earlier* in the trace (which rules out cycles by construction).
  JobId preceding = 0;
  DurationSec think_time = 0;

  /// Total power drawn while running.
  Watts total_power() const {
    return power_per_node * static_cast<double>(nodes);
  }

  /// Node-seconds of useful computation delivered by this job.
  double node_seconds() const {
    return static_cast<double>(nodes) * static_cast<double>(runtime);
  }
};

}  // namespace esched::trace
