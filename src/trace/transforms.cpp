#include "trace/transforms.hpp"

#include <cmath>

#include "util/error.hpp"

namespace esched::trace {

Trace scale_arrivals(const Trace& input, double factor) {
  ESCHED_REQUIRE(factor > 0.0, "arrival scale factor must be positive");
  Trace out(input.name() + "+arrivals*" + std::to_string(factor),
            input.system_nodes());
  if (input.empty()) return out;
  // Accumulate scaled gaps in double and round once per job so the error
  // never exceeds half a second regardless of trace length.
  const auto base = static_cast<double>(input[0].submit);
  double scaled_offset = 0.0;
  TimeSec prev_submit = input[0].submit;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const Job& src = input[i];
    scaled_offset +=
        static_cast<double>(src.submit - prev_submit) * factor;
    prev_submit = src.submit;
    Job j = src;
    j.submit = static_cast<TimeSec>(std::llround(base + scaled_offset));
    out.add_job(j);
  }
  out.finalize();
  return out;
}

Trace clip_window(const Trace& input, TimeSec begin, TimeSec end) {
  ESCHED_REQUIRE(begin < end, "clip_window needs begin < end");
  Trace out(input.name() + "+clip", input.system_nodes());
  for (const Job& j : input.jobs()) {
    if (j.submit >= begin && j.submit < end) out.add_job(j);
  }
  return out;
}

Trace take_first(const Trace& input, std::size_t count) {
  Trace out(input.name() + "+head", input.system_nodes());
  const std::size_t n = std::min(count, input.size());
  for (std::size_t i = 0; i < n; ++i) out.add_job(input[i]);
  return out;
}

Trace rebase(const Trace& input, TimeSec new_start) {
  ESCHED_REQUIRE(new_start >= 0, "rebase target must be non-negative");
  Trace out(input.name(), input.system_nodes());
  if (input.empty()) return out;
  const TimeSec shift = new_start - input[0].submit;
  for (const Job& src : input.jobs()) {
    Job j = src;
    j.submit += shift;
    out.add_job(j);
  }
  return out;
}

Trace renumber(const Trace& input) {
  Trace out(input.name(), input.system_nodes());
  JobId next = 1;
  for (const Job& src : input.jobs()) {
    Job j = src;
    j.id = next++;
    out.add_job(j);
  }
  return out;
}

}  // namespace esched::trace
