// Trace transformations used by the paper's methodology:
//  * arrival-interval scaling ("input shaking", Tsafrir et al. [27]) — the
//    paper shrinks ANL-BGP inter-arrival gaps by 40% to restore realistic
//    utilization after extracting a 2-rack sub-trace;
//  * time-window clipping (take the first K months);
//  * job-count truncation and id renumbering.
// All transforms return new traces; inputs are never mutated.
#pragma once

#include "trace/trace.hpp"

namespace esched::trace {

/// Scale every inter-arrival gap by `factor` (0 < factor). The first job
/// keeps its submit time; factor 0.6 reproduces the paper's "decrease job
/// arrival intervals by 40%".
Trace scale_arrivals(const Trace& input, double factor);

/// Keep only jobs submitted in [begin, end).
Trace clip_window(const Trace& input, TimeSec begin, TimeSec end);

/// Keep only the first `count` jobs (by submit order).
Trace take_first(const Trace& input, std::size_t count);

/// Shift all submit times so the first job arrives at `new_start`.
Trace rebase(const Trace& input, TimeSec new_start);

/// Renumber job ids 1..n in submit order (keeps everything else).
Trace renumber(const Trace& input);

}  // namespace esched::trace
