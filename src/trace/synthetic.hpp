// Synthetic workload generators.
//
// The paper evaluates on three production traces we cannot redistribute:
// SDSC-BLUE (Blue Horizon, Parallel Workloads Archive), a 2-rack ANL-BGP
// (Intrepid) extract, and Mira's December-2012 job log with measured power.
// These generators produce statistically matched equivalents — the job-size
// mixes, utilization levels, and (for Mira) the half-acceptance/half-early-
// science temporal structure that the paper's conclusions depend on — per
// the substitution policy in DESIGN.md §4. Everything is deterministic
// given a seed. Real SWF traces can be used instead via trace::swf::load().
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace esched::trace {

/// One job-size class of a synthetic workload.
struct SizeClass {
  /// Nodes requested by jobs of this class.
  NodeCount nodes = 1;
  /// Relative frequency (unnormalised).
  double weight = 1.0;
  /// Median runtime in seconds of the class's lognormal runtime law.
  double runtime_median_sec = 1800.0;
  /// Log-space sigma of the runtime law.
  double runtime_sigma = 1.0;
};

/// Full description of a synthetic workload.
struct SyntheticConfig {
  std::string name = "synthetic";
  NodeCount system_nodes = 1024;
  /// Target *offered* utilization per 30-day month; the vector length sets
  /// the trace duration. Offered utilization is arriving node-seconds over
  /// capacity node-seconds; achieved utilization then depends on scheduling.
  std::vector<double> monthly_utilization = {0.7};
  std::vector<SizeClass> size_classes;
  /// Runtime clamp (seconds) applied after sampling the lognormal.
  DurationSec min_runtime = 60;
  DurationSec max_runtime = 2 * kSecondsPerDay;
  /// Walltime = runtime * U(walltime_factor_lo, walltime_factor_hi),
  /// rounded up to 5-minute multiples (users request round numbers).
  double walltime_factor_lo = 1.1;
  double walltime_factor_hi = 3.0;
  /// Hour-of-day submission intensity (24 values, mean-normalised inside
  /// the generator). Empty means flat.
  std::vector<double> diurnal;
  /// Arrival intensity multiplier on days 5 and 6 of each week.
  double weekend_factor = 0.7;
  /// Number of distinct submitting users.
  int user_count = 100;
};

/// Generate a workload from the config. Jobs have ids 1..n, sorted by
/// submit time; power profiles are left at 0 (assign with
/// power::assign_profiles or a custom rule). Deterministic in (config, seed).
Trace generate(const SyntheticConfig& config, std::uint64_t seed);

/// A typical hour-of-day submission profile: low at night, peaking during
/// working hours. Suitable default for `SyntheticConfig::diurnal`.
std::vector<double> default_diurnal_profile();

/// SDSC-BLUE-like capacity workload: 1,152 nodes, 71% of jobs below 32
/// nodes, ~70% offered utilization, `months` x 30 days.
Trace make_sdsc_blue_like(std::size_t months = 5, std::uint64_t seed = 2001);

/// ANL-BGP-like capability workload: 2,048 nodes, size mix
/// {512: 38%, 1024: 19%, 2048: 8%, remainder <= 256}, month utilization
/// sweeping 39%-88% as in the paper's shrunken Intrepid extract.
Trace make_anl_bgp_like(std::size_t months = 5, std::uint64_t seed = 2009);

/// Configuration knobs for the Mira-like December-2012 case-study trace.
struct MiraConfig {
  /// Racks in the machine (Mira: 48) and nodes per rack (1024).
  NodeCount racks = 48;
  NodeCount nodes_per_rack = 1024;
  /// Total jobs over the month (paper: 3,333).
  std::size_t job_count = 3333;
  /// Fraction of the month devoted to acceptance testing (large jobs).
  double acceptance_fraction = 0.5;
  /// Power draw bounds per rack in kW (Fig. 1: ~40-90 kW/rack).
  double min_kw_per_rack = 40.0;
  double max_kw_per_rack = 90.0;
  /// Offered load of each phase as a multiple of its capacity. Acceptance
  /// testing ran the machine with a standing backlog (the paper's Fig. 12
  /// shows consistently high utilization), so it defaults above 1; the
  /// early-science phase ran close to full. Runtime medians are derived
  /// from these.
  double acceptance_offered = 2.0;
  double science_offered = 0.9;
};

/// Mira-like trace: rack-granular jobs over one 30-day month; first half
/// large acceptance-testing jobs, second half mostly single-rack
/// early-science jobs with near-identical power profiles (the structure
/// that explains the paper's Fig. 12/13). Power profiles are assigned by
/// the generator (kW/rack converted to W/node).
Trace make_mira_like(const MiraConfig& config = {},
                     std::uint64_t seed = 2012);

/// Construct one of the named synthetic workloads — the registry that lets
/// a declarative run::TraceSpec cross a process boundary (a worker rebuilds
/// the trace from the name alone; the generators are deterministic in
/// (name, months, seed), so the rebuilt trace is bit-identical). Known
/// names: "sdsc-blue", "anl-bgp", "mira" (months ignored — one month by
/// construction). `seed` 0 selects each workload's canonical seed
/// (2001 / 2009 / 2012). Throws esched::Error listing the valid names for
/// anything else.
Trace make_workload_by_name(const std::string& name, std::size_t months,
                            std::uint64_t seed = 0);

}  // namespace esched::trace
