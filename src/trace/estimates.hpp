// Walltime (runtime-estimate) quality transforms.
//
// Backfilling — both the baseline's and the window policies'
// beyond-window pass — plans around user walltime estimates, which are
// notoriously loose. The paper's own group showed that adjusting these
// estimates improves Blue Gene scheduling (Tang et al. [24][25]); these
// transforms let experiments sweep estimate quality from oracle to
// useless and measure what it does to backfilling and to the
// power-aware savings (bench/ablation_estimates). All return modified
// copies; walltime >= runtime is preserved.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace esched::trace {

/// Perfect estimates: walltime = runtime.
Trace with_exact_estimates(const Trace& input);

/// Uniform overestimation: walltime = ceil(runtime * factor), factor >= 1.
Trace with_estimate_factor(const Trace& input, double factor);

/// Archive-realistic estimates: users pick from a small menu of round
/// request lengths (30 min, 1 h, 2 h, 4 h, ...), choosing the smallest
/// menu entry >= their job's runtime, then a fraction of users
/// (`sloppy_fraction`) instead request the trace's maximum. This mimics
/// the clustered estimate distributions of real SWF logs [Tsafrir].
/// Deterministic in `seed`.
Trace with_menu_estimates(const Trace& input, double sloppy_fraction,
                          std::uint64_t seed);

/// Per-trace estimate accuracy: mean of runtime/walltime over jobs
/// (1 = perfect, -> 0 = useless).
double estimate_accuracy(const Trace& trace);

}  // namespace esched::trace
