// Standard Workload Format (SWF v2) reader/writer.
//
// SWF is the Parallel Workloads Archive format the paper's traces
// (SDSC-BLUE, ANL-BGP/Intrepid) are published in: one job per line with 18
// whitespace-separated fields, '-1' for missing values, and ';'-prefixed
// header comments. We read the fields esched needs (job number, submit,
// run time, allocated/requested processors, requested time, user) and pass
// header metadata through. Power profiles are not part of SWF; they are
// assigned separately (power/profile.hpp) or encoded in a sidecar column
// via the non-standard header key "; PowerColumn: true", in which case a
// 19th column holds watts per node.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace esched::trace::swf {

/// Options controlling SWF ingestion.
struct LoadOptions {
  /// Jobs with status != 1 (failed/cancelled) are skipped when true; the
  /// paper's simulator replays completed jobs only.
  bool completed_only = true;
  /// Fallback system size when the header lacks "MaxNodes"/"MaxProcs".
  NodeCount default_system_nodes = 0;
  /// When a job's requested processors is missing, fall back to allocated.
  bool allow_allocated_as_requested = true;
};

/// Parse an SWF stream. Malformed input — a non-numeric token, a
/// truncated line with fewer fields than the format requires — throws
/// esched::Error positioned as "<source>:<line>: message" (`source`
/// defaults to `trace_name`; load_file passes the file path). Recoverable
/// oddities — unusable records the archive marks with -1/0 sizes or
/// runtimes, fallbacks for missing requested-processor or walltime
/// fields, clamped negative queue numbers, jobs wider than the machine —
/// are repaired or skipped exactly as before, but each *kind* of repair
/// is reported once per load on stderr with the first offending
/// "<source>:<line>" and a trailing total, instead of happening silently.
Trace load(std::istream& in, const std::string& trace_name,
           const LoadOptions& options = {}, const std::string& source = "");

/// Parse an SWF file from disk. Errors and warnings are positioned
/// against `path` ("<path>:<line>: message").
Trace load_file(const std::string& path, const LoadOptions& options = {});

/// Write a trace as SWF. If `with_power_column` is true, appends the
/// non-standard 19th watts-per-node column and the "; PowerColumn: true"
/// header so load() can round-trip power profiles.
void save(std::ostream& out, const Trace& trace, bool with_power_column);

/// Write a trace to disk as SWF.
void save_file(const std::string& path, const Trace& trace,
               bool with_power_column);

}  // namespace esched::trace::swf
