#include "trace/synthetic.hpp"

#include "trace/transforms.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/time_util.hpp"

namespace esched::trace {

namespace {

constexpr std::size_t kCalibrationSamples = 20000;

// Sample a runtime for `cls`, clamped to the config bounds.
DurationSec sample_runtime(Rng& rng, const SizeClass& cls,
                           const SyntheticConfig& cfg) {
  const double mu_log = std::log(cls.runtime_median_sec);
  const double r = rng.lognormal(mu_log, cls.runtime_sigma);
  const auto clamped = std::clamp<double>(
      r, static_cast<double>(cfg.min_runtime),
      static_cast<double>(cfg.max_runtime));
  return std::max<DurationSec>(1, std::llround(clamped));
}

// Round a walltime up to the next 5-minute multiple.
DurationSec round_walltime(double w) {
  const auto five_min = 300.0;
  return static_cast<DurationSec>(std::ceil(w / five_min) * five_min);
}

// Mean node-seconds per arriving job, estimated by Monte Carlo from the
// configured class mix (captures the clamping bias exactly).
double mean_node_seconds(const SyntheticConfig& cfg, Rng rng) {
  std::vector<double> weights;
  weights.reserve(cfg.size_classes.size());
  for (const auto& c : cfg.size_classes) weights.push_back(c.weight);
  double total = 0.0;
  for (std::size_t i = 0; i < kCalibrationSamples; ++i) {
    const auto& cls = cfg.size_classes[rng.weighted_index(weights)];
    total += static_cast<double>(cls.nodes) *
             static_cast<double>(sample_runtime(rng, cls, cfg));
  }
  return total / static_cast<double>(kCalibrationSamples);
}

// Hour-of-day intensity factor, mean-normalised.
std::vector<double> normalised_diurnal(const SyntheticConfig& cfg) {
  if (cfg.diurnal.empty()) return std::vector<double>(24, 1.0);
  ESCHED_REQUIRE(cfg.diurnal.size() == 24,
                 "diurnal profile needs 24 hourly values");
  const double mean =
      std::accumulate(cfg.diurnal.begin(), cfg.diurnal.end(), 0.0) / 24.0;
  ESCHED_REQUIRE(mean > 0.0, "diurnal profile must have positive mean");
  std::vector<double> out(24);
  for (std::size_t h = 0; h < 24; ++h) {
    ESCHED_REQUIRE(cfg.diurnal[h] >= 0.0, "diurnal factors must be >= 0");
    out[h] = cfg.diurnal[h] / mean;
  }
  return out;
}

}  // namespace

std::vector<double> default_diurnal_profile() {
  // Hourly submission intensity: quiet overnight, ramping from 8am, peak
  // mid-afternoon, tapering in the evening. Shape matches the submission
  // clustering visible in Parallel Workloads Archive traces.
  return {0.35, 0.30, 0.28, 0.28, 0.30, 0.35, 0.50, 0.80,
          1.20, 1.50, 1.65, 1.70, 1.60, 1.65, 1.75, 1.70,
          1.55, 1.40, 1.20, 1.00, 0.85, 0.70, 0.55, 0.45};
}

Trace generate(const SyntheticConfig& cfg, std::uint64_t seed) {
  ESCHED_REQUIRE(!cfg.size_classes.empty(), "generator needs size classes");
  ESCHED_REQUIRE(!cfg.monthly_utilization.empty(),
                 "generator needs at least one month");
  ESCHED_REQUIRE(cfg.system_nodes > 0, "generator needs a system size");
  for (const auto& c : cfg.size_classes) {
    ESCHED_REQUIRE(c.nodes > 0 && c.nodes <= cfg.system_nodes,
                   "size class outside the machine");
    ESCHED_REQUIRE(c.weight >= 0.0, "size class weight must be >= 0");
    ESCHED_REQUIRE(c.runtime_median_sec > 0.0 && c.runtime_sigma >= 0.0,
                   "bad runtime law");
  }
  ESCHED_REQUIRE(cfg.walltime_factor_lo >= 1.0 &&
                     cfg.walltime_factor_hi >= cfg.walltime_factor_lo,
                 "walltime factors must satisfy 1 <= lo <= hi");
  ESCHED_REQUIRE(cfg.weekend_factor > 0.0, "weekend factor must be > 0");
  ESCHED_REQUIRE(cfg.user_count > 0, "need at least one user");

  Rng rng(seed);
  const double ns_per_job = mean_node_seconds(cfg, rng.fork());
  const std::vector<double> diurnal = normalised_diurnal(cfg);
  std::vector<double> weights;
  weights.reserve(cfg.size_classes.size());
  for (const auto& c : cfg.size_classes) weights.push_back(c.weight);

  Trace out(cfg.name, cfg.system_nodes);
  JobId next_id = 1;
  const auto months = cfg.monthly_utilization.size();
  for (std::size_t m = 0; m < months; ++m) {
    const double util = cfg.monthly_utilization[m];
    ESCHED_REQUIRE(util > 0.0 && util <= 1.5,
                   "monthly utilization must be in (0, 1.5]");
    // Arrivals/second that make offered node-seconds hit the target. The
    // weekend damping lowers the week-averaged acceptance rate below the
    // weekday rate, so compensate for it (the diurnal profile is already
    // mean-normalised and needs none).
    const double weekly_mean = (5.0 + 2.0 * cfg.weekend_factor) / 7.0;
    const double base_rate = util *
                             static_cast<double>(cfg.system_nodes) /
                             ns_per_job / weekly_mean;
    const TimeSec month_begin = static_cast<TimeSec>(m) * kSecondsPerMonth;
    const TimeSec month_end = month_begin + kSecondsPerMonth;

    // Non-homogeneous Poisson by thinning against the peak intensity.
    double peak = 0.0;
    for (const double d : diurnal) peak = std::max(peak, d);
    peak = std::max(peak, 1.0);  // weekend factor <= 1 in practice
    const double thinning_rate = base_rate * peak;
    double t = static_cast<double>(month_begin);
    while (true) {
      t += rng.exponential(1.0 / thinning_rate);
      if (t >= static_cast<double>(month_end)) break;
      const auto ts = static_cast<TimeSec>(t);
      double intensity = diurnal[static_cast<std::size_t>(hour_of_day(ts))];
      if (day_index(ts) % 7 >= 5) intensity *= cfg.weekend_factor;
      if (!rng.bernoulli(std::min(1.0, intensity / peak))) continue;

      const auto& cls = cfg.size_classes[rng.weighted_index(weights)];
      Job j;
      j.id = next_id++;
      j.submit = ts;
      j.nodes = cls.nodes;
      j.runtime = sample_runtime(rng, cls, cfg);
      const double factor =
          cfg.walltime_factor_lo == cfg.walltime_factor_hi
              ? cfg.walltime_factor_lo
              : rng.uniform(cfg.walltime_factor_lo, cfg.walltime_factor_hi);
      j.walltime = std::max<DurationSec>(
          j.runtime, round_walltime(static_cast<double>(j.runtime) * factor));
      j.user = static_cast<int>(rng.uniform_int(0, cfg.user_count - 1));
      out.add_job(j);
    }
  }
  out.finalize();
  return out;
}

Trace make_sdsc_blue_like(std::size_t months, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.name = "SDSC-BLUE-like";
  cfg.system_nodes = 1152;
  // ~70% utilization with mild monthly variation, as in the 2001 trace.
  cfg.monthly_utilization.assign(months, 0.70);
  const double wiggle[5] = {0.68, 0.72, 0.75, 0.66, 0.70};
  for (std::size_t m = 0; m < months; ++m)
    cfg.monthly_utilization[m] = wiggle[m % 5];
  // Capacity computing: 71% of jobs below 32 nodes (paper Fig. 4B).
  cfg.size_classes = {
      {1, 0.13, 900.0, 1.5},    {2, 0.10, 900.0, 1.5},
      {4, 0.12, 1200.0, 1.5},   {8, 0.20, 1500.0, 1.4},
      {16, 0.16, 1800.0, 1.4},  {32, 0.11, 2400.0, 1.3},
      {64, 0.08, 3000.0, 1.2},  {128, 0.055, 3600.0, 1.2},
      {256, 0.03, 4200.0, 1.1}, {512, 0.012, 5400.0, 1.0},
      {1024, 0.003, 7200.0, 1.0},
  };
  cfg.min_runtime = 60;
  cfg.max_runtime = 36 * kSecondsPerHour;
  cfg.diurnal = default_diurnal_profile();
  cfg.user_count = 250;
  return generate(cfg, seed);
}

Trace make_anl_bgp_like(std::size_t months, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.name = "ANL-BGP-like";
  cfg.system_nodes = 2048;
  // The shrunken Intrepid extract spans utilizations of 39%-88% across its
  // five months; we sweep the same range.
  const double paper_months[5] = {0.45, 0.62, 0.88, 0.70, 0.39};
  cfg.monthly_utilization.resize(months);
  for (std::size_t m = 0; m < months; ++m)
    cfg.monthly_utilization[m] = paper_months[m % 5];
  // Capability computing: 38% at 512 nodes, 19% at 1024, 8% at 2048
  // (paper Fig. 4A); the remaining 35% are small partition jobs.
  cfg.size_classes = {
      {64, 0.10, 1200.0, 1.2},  {128, 0.10, 1500.0, 1.2},
      {256, 0.15, 1800.0, 1.2}, {512, 0.38, 2400.0, 1.1},
      {1024, 0.19, 3000.0, 1.0}, {2048, 0.08, 3600.0, 0.9},
  };
  cfg.min_runtime = 300;
  cfg.max_runtime = 12 * kSecondsPerHour;
  cfg.diurnal = default_diurnal_profile();
  cfg.user_count = 120;
  return generate(cfg, seed);
}

Trace make_mira_like(const MiraConfig& mc, std::uint64_t seed) {
  ESCHED_REQUIRE(mc.racks > 0 && mc.nodes_per_rack > 0,
                 "Mira config needs positive rack geometry");
  ESCHED_REQUIRE(mc.job_count > 0, "Mira config needs jobs");
  ESCHED_REQUIRE(mc.acceptance_fraction >= 0.0 &&
                     mc.acceptance_fraction <= 1.0,
                 "acceptance fraction outside [0,1]");
  ESCHED_REQUIRE(mc.min_kw_per_rack > 0.0 &&
                     mc.max_kw_per_rack > mc.min_kw_per_rack,
                 "bad kW/rack bounds");

  Rng rng(seed);
  const NodeCount total_nodes = mc.racks * mc.nodes_per_rack;
  Trace out("Mira-like-Dec2012", total_nodes);

  const TimeSec split =
      static_cast<TimeSec>(mc.acceptance_fraction *
                           static_cast<double>(kSecondsPerMonth));
  // Job counts: acceptance jobs are few and large (full-system shakeout
  // runs); early-science jobs dominate the count (paper: "most jobs are
  // small sized such as single rack" in the second half). The 10%/90%
  // count split keeps each phase's offered load near its capacity rather
  // than drowning the month in acceptance backlog. A degenerate split
  // assigns everything to the one phase that exists.
  std::size_t accept_jobs =
      split > 0 ? static_cast<std::size_t>(
                      std::llround(static_cast<double>(mc.job_count) * 0.10))
                : 0;
  if (split >= kSecondsPerMonth) accept_jobs = mc.job_count;
  const std::size_t science_jobs = mc.job_count - accept_jobs;

  // Acceptance phase: large rack-counts, long runs.
  const std::vector<NodeCount> accept_sizes = {8, 12, 16, 24, 32, 48};
  const std::vector<double> accept_weights = {0.25, 0.20, 0.25,
                                              0.15, 0.10, 0.05};
  // Early-science phase: overwhelmingly single-rack.
  const std::vector<NodeCount> science_sizes = {1, 2, 4, 8};
  const std::vector<double> science_weights = {0.80, 0.12, 0.06, 0.02};

  JobId next_id = 1;
  auto emit = [&](std::size_t count, TimeSec begin, TimeSec end,
                  const std::vector<NodeCount>& sizes,
                  const std::vector<double>& weights, double median_runtime,
                  double sigma, double power_sd) {
    for (std::size_t i = 0; i < count; ++i) {
      const auto racks_used =
          sizes[rng.weighted_index(std::span<const double>(weights))];
      Job j;
      j.id = next_id++;
      j.submit = begin + rng.uniform_int(0, end - begin - 1);
      j.nodes = racks_used * mc.nodes_per_rack;
      const double r = rng.lognormal(std::log(median_runtime), sigma);
      j.runtime = static_cast<DurationSec>(
          std::clamp(r, 600.0, 24.0 * 3600.0));
      j.walltime = std::max<DurationSec>(
          j.runtime,
          round_walltime(static_cast<double>(j.runtime) *
                         rng.uniform(1.2, 2.0)));
      // Fig. 1: per-rack power spans ~40-90 kW; bigger jobs trend hotter
      // (full-system runs push all networks and memories), small jobs
      // cluster tightly — which is exactly why the paper's on-peak curve
      // shows no FCFS/Knapsack difference in the science half.
      const double mean_kw =
          52.0 + 6.5 * std::log2(static_cast<double>(racks_used) + 1.0);
      const double kw = rng.truncated_normal(
          mean_kw, power_sd, mc.min_kw_per_rack, mc.max_kw_per_rack);
      j.power_per_node = kw * 1000.0 / static_cast<double>(mc.nodes_per_rack);
      j.user = static_cast<int>(rng.uniform_int(0, 39));
      out.add_job(j);
    }
  };

  // Runtime medians are derived from the configured per-phase offered
  // loads: median = offered * capacity / (jobs * mean_racks * exp(s^2/2)).
  auto runtime_median = [&](double offered, std::size_t jobs,
                            std::span<const NodeCount> sizes,
                            std::span<const double> weights,
                            DurationSec duration, double sigma) {
    double mean_racks = 0.0;
    double total_w = 0.0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      mean_racks += static_cast<double>(sizes[i]) * weights[i];
      total_w += weights[i];
    }
    mean_racks /= total_w;
    const double capacity_rack_sec = static_cast<double>(mc.racks) *
                                     static_cast<double>(duration);
    const double mean_rt = offered * capacity_rack_sec /
                           (static_cast<double>(jobs) * mean_racks);
    return mean_rt / std::exp(0.5 * sigma * sigma);
  };

  ESCHED_REQUIRE(mc.acceptance_offered > 0.0 && mc.science_offered > 0.0,
                 "phase offered loads must be positive");
  if (split > 0 && accept_jobs > 0) {
    const double sigma = 0.8;
    emit(accept_jobs, 0, split, accept_sizes, accept_weights,
         runtime_median(mc.acceptance_offered, accept_jobs, accept_sizes,
                        accept_weights, split, sigma),
         sigma, /*power_sd=*/9.0);
  }
  if (split < kSecondsPerMonth && science_jobs > 0) {
    const double sigma = 0.9;
    emit(science_jobs, split, kSecondsPerMonth, science_sizes,
         science_weights,
         runtime_median(mc.science_offered, science_jobs, science_sizes,
                        science_weights, kSecondsPerMonth - split, sigma),
         sigma, /*power_sd=*/2.5);
  }
  out.finalize();
  return renumber(out);
}

Trace make_workload_by_name(const std::string& name, std::size_t months,
                            std::uint64_t seed) {
  if (name == "sdsc-blue") {
    return make_sdsc_blue_like(months, seed != 0 ? seed : 2001);
  }
  if (name == "anl-bgp") {
    return make_anl_bgp_like(months, seed != 0 ? seed : 2009);
  }
  if (name == "mira") {
    return make_mira_like(MiraConfig{}, seed != 0 ? seed : 2012);
  }
  throw Error("unknown workload name \"" + name +
              "\" (known: sdsc-blue, anl-bgp, mira)");
}

}  // namespace esched::trace
