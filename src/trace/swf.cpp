#include "trace/swf.hpp"

#include <array>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace esched::trace::swf {

namespace {

// SWF v2 field indices (0-based).
enum Field : std::size_t {
  kJobNumber = 0,
  kSubmitTime = 1,
  kWaitTime = 2,
  kRunTime = 3,
  kAllocatedProcs = 4,
  kAvgCpuTime = 5,
  kUsedMemory = 6,
  kRequestedProcs = 7,
  kRequestedTime = 8,
  kRequestedMemory = 9,
  kStatus = 10,
  kUserId = 11,
  kGroupId = 12,
  kExecutable = 13,
  kQueueNumber = 14,
  kPartition = 15,
  kPrecedingJob = 16,
  kThinkTime = 17,
  kFieldCount = 18,
};

// Parse one whitespace-separated numeric token list. Errors carry the
// "<source>:<line>:" position so a bad record in a 100k-line archive
// file is findable without bisection.
std::vector<double> split_numbers(const std::string& line, int line_no,
                                  const std::string& source) {
  std::vector<double> out;
  out.reserve(kFieldCount + 1);
  const char* p = line.c_str();
  while (*p != '\0') {
    while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
    if (*p == '\0') break;
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    ESCHED_REQUIRE(end != p, source + ":" + std::to_string(line_no) +
                                 ": non-numeric token near '" +
                                 std::string(p).substr(0, 16) + "'");
    out.push_back(v);
    p = end;
  }
  return out;
}

/// Capped stderr reporting for recoverable record repairs: the first
/// occurrence of each *kind* prints in full with its "<source>:<line>"
/// position, later ones only count, and finish() emits one total per
/// kind. Silent repairs cost real debugging time (a trace that "loads
/// fine" but dropped half its jobs); unbounded ones would bury the
/// terminal under a big archive file. One instance per load call, so the
/// caps are per file, deterministic, and test-observable.
class FieldWarner {
 public:
  explicit FieldWarner(const std::string& source) : source_(source) {}

  void warn(const std::string& kind, int line_no,
            const std::string& message) {
    for (Entry& e : entries_) {
      if (e.kind == kind) {
        ++e.total;
        return;
      }
    }
    entries_.push_back({kind, 1});
    if (line_no > 0) {
      std::fprintf(stderr,
                   "swf: %s:%d: %s (first '%s'; further occurrences "
                   "counted, not printed)\n",
                   source_.c_str(), line_no, message.c_str(), kind.c_str());
    } else {
      std::fprintf(stderr,
                   "swf: %s: %s (first '%s'; further occurrences counted, "
                   "not printed)\n",
                   source_.c_str(), message.c_str(), kind.c_str());
    }
  }

  void finish() const {
    for (const Entry& e : entries_) {
      if (e.total > 1) {
        std::fprintf(stderr, "swf: %s: %zu records total with '%s'\n",
                     source_.c_str(), e.total, e.kind.c_str());
      }
    }
  }

 private:
  struct Entry {
    std::string kind;
    std::size_t total = 0;
  };
  std::vector<Entry> entries_;  ///< a handful of kinds; linear scan is fine
  std::string source_;
};

// Extract "Key: value" from an SWF header comment line "; Key: value".
bool parse_header(const std::string& line, std::string& key,
                  std::string& value) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ';' || std::isspace(
                                 static_cast<unsigned char>(line[i]))))
    ++i;
  const auto colon = line.find(':', i);
  if (colon == std::string::npos) return false;
  key = line.substr(i, colon - i);
  while (!key.empty() && std::isspace(static_cast<unsigned char>(key.back())))
    key.pop_back();
  std::size_t v = colon + 1;
  while (v < line.size() &&
         std::isspace(static_cast<unsigned char>(line[v])))
    ++v;
  value = line.substr(v);
  while (!value.empty() &&
         std::isspace(static_cast<unsigned char>(value.back())))
    value.pop_back();
  return !key.empty();
}

}  // namespace

Trace load(std::istream& in, const std::string& trace_name,
           const LoadOptions& options, const std::string& source) {
  const std::string& src = source.empty() ? trace_name : source;
  FieldWarner warner(src);
  NodeCount system_nodes = options.default_system_nodes;
  bool power_column = false;
  std::vector<Job> jobs;
  std::string line;
  int line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == ';') {
      std::string key;
      std::string value;
      if (parse_header(line, key, value)) {
        if (key == "MaxNodes" || (key == "MaxProcs" && system_nodes == 0)) {
          system_nodes = std::strtoll(value.c_str(), nullptr, 10);
        } else if (key == "PowerColumn") {
          power_column = (value == "true" || value == "1");
        }
      }
      continue;
    }

    const std::vector<double> f = split_numbers(line, line_no, src);
    if (f.empty()) continue;
    const std::size_t expected = kFieldCount + (power_column ? 1u : 0u);
    ESCHED_REQUIRE(f.size() >= expected,
                   src + ":" + std::to_string(line_no) +
                       ": truncated record: expected " +
                       std::to_string(expected) + " fields, got " +
                       std::to_string(f.size()));

    const auto status = static_cast<int>(f[kStatus]);
    if (options.completed_only && status != 1 && status != -1) continue;

    Job job;
    job.id = static_cast<JobId>(f[kJobNumber]);
    job.submit = static_cast<TimeSec>(f[kSubmitTime]);
    job.runtime = static_cast<DurationSec>(f[kRunTime]);
    auto procs = static_cast<NodeCount>(f[kRequestedProcs]);
    if (procs <= 0 && options.allow_allocated_as_requested) {
      procs = static_cast<NodeCount>(f[kAllocatedProcs]);
      if (procs > 0) {
        warner.warn("requested-procs-missing", line_no,
                    "requested processors missing; using allocated");
      }
    }
    job.nodes = procs;
    job.walltime = static_cast<DurationSec>(f[kRequestedTime]);
    if (job.walltime <= 0) {
      job.walltime = job.runtime;
      warner.warn("walltime-missing", line_no,
                  "requested time missing; using actual runtime");
    }
    job.user = static_cast<int>(f[kUserId]);
    const auto queue_field = static_cast<int>(f[kQueueNumber]);
    if (queue_field < 0) {
      warner.warn("queue-negative", line_no,
                  "negative queue number clamped to 0");
    }
    job.queue = queue_field >= 0 ? queue_field : 0;
    const auto preceding = static_cast<JobId>(f[kPrecedingJob]);
    job.preceding = preceding > 0 ? preceding : 0;
    const auto think = static_cast<DurationSec>(f[kThinkTime]);
    job.think_time = (job.preceding != 0 && think > 0) ? think : 0;
    if (power_column) job.power_per_node = f[kFieldCount];

    // The archive marks unusable records with -1/0 sizes or runtimes;
    // skipping them is correct, skipping them *silently* is how half a
    // trace goes missing without anyone noticing.
    if (job.nodes <= 0) {
      warner.warn("record-without-size", line_no,
                  "record skipped: no usable processor count");
      continue;
    }
    if (job.runtime <= 0) {
      warner.warn("record-without-runtime", line_no,
                  "record skipped: no usable runtime");
      continue;
    }
    if (job.submit < 0) {
      warner.warn("record-negative-submit", line_no,
                  "record skipped: negative submit time");
      continue;
    }
    jobs.push_back(job);
  }

  ESCHED_REQUIRE(system_nodes > 0,
                 src + ": SWF header lacks MaxNodes/MaxProcs and no "
                       "default_system_nodes was given");
  Trace trace(trace_name, system_nodes);
  for (Job& j : jobs) {
    if (j.nodes > system_nodes) {
      j.nodes = system_nodes;  // archive quirk
      warner.warn("job-wider-than-machine", 0,
                  "job wider than the machine clamped to " +
                      std::to_string(system_nodes) + " nodes");
    }
    trace.add_job(j);
  }
  warner.finish();
  trace.finalize();
  return trace;
}

Trace load_file(const std::string& path, const LoadOptions& options) {
  std::ifstream in(path);
  ESCHED_REQUIRE(in.good(), "cannot open SWF file: " + path);
  // Trace name = file basename; errors/warnings name the full path.
  auto slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return load(in, name, options, path);
}

void save(std::ostream& out, const Trace& trace, bool with_power_column) {
  out << "; SWF trace written by esched\n";
  out << "; MaxNodes: " << trace.system_nodes() << "\n";
  out << "; MaxProcs: " << trace.system_nodes() << "\n";
  if (with_power_column) out << "; PowerColumn: true\n";
  char buf[256];
  for (const Job& j : trace.jobs()) {
    // Fields we do not model are emitted as -1 per the SWF convention.
    std::snprintf(buf, sizeof buf,
                  "%lld %lld -1 %lld %lld -1 -1 %lld %lld -1 1 %d -1 -1 %d "
                  "-1 %lld %lld",
                  static_cast<long long>(j.id),
                  static_cast<long long>(j.submit),
                  static_cast<long long>(j.runtime),
                  static_cast<long long>(j.nodes),
                  static_cast<long long>(j.nodes),
                  static_cast<long long>(j.walltime), j.user, j.queue,
                  j.preceding > 0 ? static_cast<long long>(j.preceding)
                                  : -1LL,
                  j.preceding > 0 && j.think_time > 0
                      ? static_cast<long long>(j.think_time)
                      : -1LL);
    out << buf;
    if (with_power_column) {
      std::snprintf(buf, sizeof buf, " %.6f", j.power_per_node);
      out << buf;
    }
    out << "\n";
  }
}

void save_file(const std::string& path, const Trace& trace,
               bool with_power_column) {
  std::ofstream out(path);
  ESCHED_REQUIRE(out.good(), "cannot write SWF file: " + path);
  save(out, trace, with_power_column);
  ESCHED_REQUIRE(out.good(), "error writing SWF file: " + path);
}

}  // namespace esched::trace::swf
