#include "core/energy_knapsack_policy.hpp"

#include <algorithm>

namespace esched::core {

std::string EnergyKnapsackPolicy::name() const { return "EnergyKnapsack"; }

KnapsackSolution EnergyKnapsackPolicy::select(
    std::span<const PendingJob> window, const ScheduleContext& ctx) const {
  items_.clear();
  items_.reserve(window.size());
  for (const PendingJob& job : window) {
    // Seconds of this job expected to land in the current price period.
    // Without a known boundary, weight by the full walltime estimate
    // (equivalent to the base policy up to a constant for same-walltime
    // mixes, and strictly more informative otherwise).
    const double overlap =
        ctx.period_end > ctx.now
            ? static_cast<double>(
                  std::min(job.walltime, ctx.period_end - ctx.now))
            : static_cast<double>(job.walltime);
    items_.push_back({job.nodes, job.total_power() * overlap});
  }
  const auto objective = ctx.period == power::PricePeriod::kOnPeak
                             ? KnapsackObjective::kMaximizeWeightMinimizeValue
                             : KnapsackObjective::kMaximizeValue;
  return solve_knapsack(items_, ctx.free_nodes, objective, workspace_);
}

std::vector<std::size_t> EnergyKnapsackPolicy::prioritize(
    std::span<const PendingJob> window, const ScheduleContext& ctx) {
  const KnapsackSolution solution = select(window, ctx);
  std::vector<bool> chosen(window.size(), false);
  for (const std::size_t i : solution.chosen) chosen[i] = true;
  std::vector<std::size_t> order;
  order.reserve(window.size());
  for (std::size_t i = 0; i < window.size(); ++i)
    if (chosen[i]) order.push_back(i);
  for (std::size_t i = 0; i < window.size(); ++i)
    if (!chosen[i]) order.push_back(i);
  return order;
}

}  // namespace esched::core
