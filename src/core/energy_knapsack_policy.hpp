// Extension policy: knapsack over *period-overlapped energy* instead of
// instantaneous power.
//
// The paper's Knapsack policy values a job at its aggregate power
// n_i * p_i, ignoring how long the job will actually draw that power
// inside the current price period: a 10-minute hot job placed off-peak
// buys almost nothing, while a 10-hour one buys a lot. This variant
// values each job by the energy it is estimated to consume before the
// period flips:
//
//   value_i = n_i * p_i * min(walltime_i, period_end - now)
//
// Off-peak: maximise that value (pack the most cheap energy). On-peak:
// maximise packed nodes, tie-broken by minimum period-overlapped energy
// (same fill-then-minimise construction as the base policy, so the
// utilization rule still holds). Falls back to the base behaviour when
// the caller does not provide ctx.period_end.
#pragma once

#include "core/knapsack.hpp"
#include "core/policy.hpp"

namespace esched::core {

/// Knapsack on estimated within-period energy (extension; see header).
/// Holds reusable solver scratch space; one instance per thread.
class EnergyKnapsackPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override;
  std::vector<std::size_t> prioritize(std::span<const PendingJob> window,
                                      const ScheduleContext& ctx) override;

  /// The raw selection, exposed for tests.
  KnapsackSolution select(std::span<const PendingJob> window,
                          const ScheduleContext& ctx) const;

 private:
  mutable KnapsackWorkspace workspace_;
  mutable std::vector<KnapsackItem> items_;
};

}  // namespace esched::core
