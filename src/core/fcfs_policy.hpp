// The baseline: first-come-first-serve. Combined with the scheduler's
// strict-order dispatch path this is "FCFS with (EASY) backfilling", the
// production policy the paper compares against [Feitelson & Weil '98].
#pragma once

#include "core/policy.hpp"

namespace esched::core {

/// Arrival-order policy; requests strict-order (EASY) dispatch.
class FcfsPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override;
  std::vector<std::size_t> prioritize(std::span<const PendingJob> window,
                                      const ScheduleContext& ctx) override;
  bool strict_order() const override { return true; }
};

}  // namespace esched::core
