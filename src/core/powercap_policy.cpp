#include "core/powercap_policy.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace esched::core {

PowerCapPolicy::PowerCapPolicy(Watts on_peak_budget_watts)
    : budget_(on_peak_budget_watts) {
  ESCHED_REQUIRE(budget_ > 0.0, "power budget must be positive");
}

std::string PowerCapPolicy::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "PowerCap(%.0fkW)", budget_ / 1000.0);
  return buf;
}

std::vector<std::size_t> PowerCapPolicy::prioritize(
    std::span<const PendingJob> window, const ScheduleContext& ctx) {
  return greedy_.prioritize(window, ctx);
}

Watts PowerCapPolicy::power_budget(const ScheduleContext& ctx) const {
  return ctx.period == power::PricePeriod::kOnPeak ? budget_
                                                   : kNoPowerBudget;
}

}  // namespace esched::core
