#include "core/policy.hpp"

#include <memory>
#include <vector>

#include "core/fcfs_policy.hpp"
#include "core/greedy_policy.hpp"
#include "core/knapsack_policy.hpp"
#include "util/error.hpp"

namespace esched::core {

void require_permutation(std::span<const std::size_t> order, std::size_t n) {
  ESCHED_REQUIRE(order.size() == n,
                 "policy returned " + std::to_string(order.size()) +
                     " indices for a window of " + std::to_string(n));
  std::vector<bool> seen(n, false);
  for (const std::size_t idx : order) {
    ESCHED_REQUIRE(idx < n, "policy returned out-of-range index");
    ESCHED_REQUIRE(!seen[idx], "policy returned duplicate index");
    seen[idx] = true;
  }
}

std::unique_ptr<SchedulingPolicy> make_policy_by_name(
    const std::string& name) {
  if (name == "fcfs") return std::make_unique<FcfsPolicy>();
  if (name == "greedy") {
    return std::make_unique<GreedyPowerPolicy>(GreedyKey::kPowerPerNode);
  }
  if (name == "greedy-total") {
    return std::make_unique<GreedyPowerPolicy>(GreedyKey::kTotalPower);
  }
  if (name == "knapsack") return std::make_unique<KnapsackPolicy>();
  throw Error("unknown policy name \"" + name +
              "\" (known: fcfs, greedy, greedy-total, knapsack)");
}

}  // namespace esched::core
