#include "core/policy.hpp"

#include <vector>

#include "util/error.hpp"

namespace esched::core {

void require_permutation(std::span<const std::size_t> order, std::size_t n) {
  ESCHED_REQUIRE(order.size() == n,
                 "policy returned " + std::to_string(order.size()) +
                     " indices for a window of " + std::to_string(n));
  std::vector<bool> seen(n, false);
  for (const std::size_t idx : order) {
    ESCHED_REQUIRE(idx < n, "policy returned out-of-range index");
    ESCHED_REQUIRE(!seen[idx], "policy returned duplicate index");
    seen[idx] = true;
  }
}

}  // namespace esched::core
