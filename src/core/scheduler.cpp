#include "core/scheduler.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/error.hpp"

namespace esched::core {

namespace {

// Backfill outcome accounting: attempts are candidate jobs tested against
// the reservation, hits the ones actually started. Accumulated locally by
// the decide paths and flushed once per pass, so the scheduling hot loop
// stays atomic-free when observability is off.
void flush_backfill_counters(std::uint64_t attempts, std::uint64_t hits) {
  if (attempts == 0 || !obs::counters_enabled()) return;
  static obs::Counter& attempts_counter =
      obs::Registry::global().counter("sched.backfill_attempts");
  static obs::Counter& hits_counter =
      obs::Registry::global().counter("sched.backfill_hits");
  attempts_counter.add(attempts);
  hits_counter.add(hits);
}

}  // namespace

Scheduler::Scheduler(SchedulingPolicy& policy, const SchedulerConfig& config)
    : policy_(&policy), config_(config) {
  ESCHED_REQUIRE(config_.window_size >= 1, "window size must be >= 1");
  ESCHED_REQUIRE(config_.starvation_age >= 0,
                 "starvation age must be >= 0");
}

std::vector<std::size_t> Scheduler::decide(
    const ScheduleContext& ctx, std::span<const PendingJob> queue,
    std::span<const RunningJob> running) const {
  ESCHED_REQUIRE(ctx.free_nodes >= 0 && ctx.free_nodes <= ctx.system_nodes,
                 "free nodes outside [0, N]");
  if (queue.empty() || ctx.free_nodes == 0) return {};
  if (!policy_->strict_order()) return decide_window(ctx, queue, running);
  return config_.backfill_mode == BackfillMode::kConservative
             ? decide_conservative(ctx, queue, running)
             : decide_easy(ctx, queue, running);
}

std::vector<std::size_t> Scheduler::decide_conservative(
    const ScheduleContext& ctx, std::span<const PendingJob> queue,
    std::span<const RunningJob> running) const {
  AvailabilityProfile profile(ctx.now, ctx.system_nodes);
  NodeCount accounted = ctx.free_nodes;
  for (const RunningJob& r : running) {
    // Overdue jobs (est_end <= now) could end any moment; reserve one
    // second so they still occupy nodes *now* without blocking forever.
    const TimeSec end = std::max(r.est_end, ctx.now + 1);
    profile.reserve(ctx.now, end, r.nodes);
    accounted += r.nodes;
  }
  if (accounted < ctx.system_nodes) {
    // The caller's running snapshot does not cover all busy nodes (legal
    // for direct API users): park the unaccounted nodes for a long time
    // so the profile never over-promises.
    profile.reserve(ctx.now, ctx.now + 365 * kSecondsPerDay,
                    ctx.system_nodes - accounted);
  }

  std::vector<std::size_t> starts;
  const std::size_t depth =
      std::min(queue.size(), config_.conservative_depth);
  for (std::size_t i = 0; i < depth; ++i) {
    const TimeSec at =
        profile.find_earliest(queue[i].nodes, queue[i].walltime);
    profile.reserve(at, at + queue[i].walltime, queue[i].nodes);
    if (at == ctx.now) starts.push_back(i);
  }
  return starts;
}

std::vector<std::size_t> Scheduler::decide_easy(
    const ScheduleContext& ctx, std::span<const PendingJob> queue,
    std::span<const RunningJob> running) const {
  std::vector<std::size_t> starts;
  NodeCount free = ctx.free_nodes;
  // All started jobs join the running set for the reservation computation.
  std::vector<RunningJob> occupancy(running.begin(), running.end());

  std::size_t i = 0;
  while (i < queue.size() && queue[i].nodes <= free) {
    starts.push_back(i);
    free -= queue[i].nodes;
    occupancy.push_back({queue[i].nodes, ctx.now + queue[i].walltime});
    ++i;
  }
  if (i == queue.size()) return starts;

  // queue[i] is the blocker; protect it with a reservation and backfill.
  // If the caller's running-set snapshot cannot account for enough nodes
  // (possible when callers pass partial occupancy information), no
  // reservation is computable — fail open by not backfilling.
  NodeCount accounted = free;
  for (const RunningJob& r : occupancy) accounted += r.nodes;
  if (accounted < queue[i].nodes) return starts;
  Reservation reservation =
      compute_reservation(queue[i].nodes, free, ctx.now, occupancy);
  std::uint64_t attempts = 0;
  std::uint64_t hits = 0;
  for (std::size_t j = i + 1; j < queue.size(); ++j) {
    if (free == 0) break;
    ++attempts;
    if (!can_backfill(queue[j], free, ctx.now, reservation)) continue;
    // Backfills admitted via the extra-nodes clause consume them (they
    // still hold the nodes at shadow time); shadow-terminating backfills
    // leave the reservation untouched.
    if (ctx.now + queue[j].walltime > reservation.shadow_time) {
      reservation.extra_nodes -= queue[j].nodes;
    }
    starts.push_back(j);
    ++hits;
    free -= queue[j].nodes;
  }
  flush_backfill_counters(attempts, hits);
  return starts;
}

std::vector<std::size_t> Scheduler::decide_window(
    const ScheduleContext& ctx, std::span<const PendingJob> queue,
    std::span<const RunningJob> running) const {
  const std::size_t w = std::min(config_.window_size, queue.size());
  const std::span<const PendingJob> window = queue.subspan(0, w);

  std::vector<std::size_t> order = policy_->prioritize(window, ctx);
  require_permutation(order, w);

  if (config_.starvation_age > 0) {
    // Promote starved jobs to the front, oldest first (stable partition
    // preserves the policy's relative order inside each class; within the
    // starved class window indices are arrival-ordered already, so sort).
    auto starved = [&](std::size_t idx) {
      return ctx.now - window[idx].submit >= config_.starvation_age;
    };
    std::stable_partition(order.begin(), order.end(), starved);
    const auto mid = std::find_if(
        order.begin(), order.end(),
        [&](std::size_t idx) { return !starved(idx); });
    std::sort(order.begin(), mid);
  }

  std::vector<std::size_t> starts;
  NodeCount free = ctx.free_nodes;
  const Watts budget = policy_->power_budget(ctx);
  Watts power = ctx.current_power;
  std::vector<bool> started(w, false);
  for (const std::size_t idx : order) {
    if (window[idx].nodes <= free &&
        power + window[idx].total_power() <= budget) {
      starts.push_back(idx);
      started[idx] = true;
      free -= window[idx].nodes;
      power += window[idx].total_power();
    }
  }

  if (!config_.backfill_beyond_window || w == queue.size() || free == 0) {
    return starts;
  }

  // Some queue remains beyond the window. If a window job is still
  // blocked, protect the oldest such job with a reservation and backfill
  // from beyond the window; if the whole window started, the beyond-window
  // jobs are simply next in line and handled by the caller's re-invocation
  // (the scheduler loop runs until no job starts).
  std::size_t oldest_unstarted = w;
  for (std::size_t idx = 0; idx < w; ++idx) {
    if (!started[idx]) {
      oldest_unstarted = idx;
      break;
    }
  }
  if (oldest_unstarted == w) return starts;

  std::vector<RunningJob> occupancy(running.begin(), running.end());
  for (const std::size_t idx : starts) {
    occupancy.push_back({window[idx].nodes, ctx.now + window[idx].walltime});
  }
  NodeCount accounted = free;
  for (const RunningJob& r : occupancy) accounted += r.nodes;
  if (accounted < window[oldest_unstarted].nodes) return starts;
  Reservation reservation = compute_reservation(
      window[oldest_unstarted].nodes, free, ctx.now, occupancy);
  std::uint64_t attempts = 0;
  std::uint64_t hits = 0;
  for (std::size_t j = w; j < queue.size(); ++j) {
    if (free == 0) break;
    ++attempts;
    if (!can_backfill(queue[j], free, ctx.now, reservation)) continue;
    if (power + queue[j].total_power() > budget) continue;
    if (ctx.now + queue[j].walltime > reservation.shadow_time) {
      reservation.extra_nodes -= queue[j].nodes;
    }
    starts.push_back(j);
    ++hits;
    free -= queue[j].nodes;
    power += queue[j].total_power();
  }
  flush_backfill_counters(attempts, hits);
  return starts;
}

}  // namespace esched::core
