#include "core/knapsack_policy.hpp"

#include <algorithm>

namespace esched::core {

std::string KnapsackPolicy::name() const { return "Knapsack"; }

KnapsackSolution KnapsackPolicy::select(std::span<const PendingJob> window,
                                        const ScheduleContext& ctx) const {
  items_.clear();
  items_.reserve(window.size());
  for (const PendingJob& job : window) {
    items_.push_back({job.nodes, job.total_power()});
  }
  const auto objective = ctx.period == power::PricePeriod::kOnPeak
                             ? KnapsackObjective::kMaximizeWeightMinimizeValue
                             : KnapsackObjective::kMaximizeValue;
  return solve_knapsack(items_, ctx.free_nodes, objective, workspace_);
}

std::vector<std::size_t> KnapsackPolicy::prioritize(
    std::span<const PendingJob> window, const ScheduleContext& ctx) {
  const KnapsackSolution solution = select(window, ctx);
  std::vector<bool> chosen(window.size(), false);
  for (const std::size_t i : solution.chosen) chosen[i] = true;

  std::vector<std::size_t> order;
  order.reserve(window.size());
  // `chosen` indices are ascending == arrival order within the window.
  for (std::size_t i = 0; i < window.size(); ++i)
    if (chosen[i]) order.push_back(i);
  for (std::size_t i = 0; i < window.size(); ++i)
    if (!chosen[i]) order.push_back(i);
  return order;
}

}  // namespace esched::core
