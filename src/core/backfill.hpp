// EASY backfilling support [Feitelson & Weil '98].
//
// When the highest-priority waiting job ("blocker") does not fit, EASY
// computes a reservation for it — the earliest time enough nodes will be
// free, assuming running jobs end at their walltime estimates — and then
// starts any later job that fits now *and* does not delay that
// reservation: either it is estimated to finish before the shadow time, or
// it uses only nodes that will still be spare once the blocker starts.
#pragma once

#include <span>
#include <vector>

#include "core/policy.hpp"
#include "util/types.hpp"

namespace esched::core {

/// A job currently occupying nodes, as seen by the reservation computation.
struct RunningJob {
  NodeCount nodes = 0;
  /// Estimated completion (start + walltime estimate). May lie in the past
  /// for jobs overrunning their estimate; the computation clamps to now.
  TimeSec est_end = 0;
};

/// A reservation for a blocked job.
struct Reservation {
  /// Earliest time the blocker can start, by the estimates ("shadow time").
  TimeSec shadow_time = 0;
  /// Nodes still idle at shadow_time once the blocker has started; a
  /// backfilled job of at most this size can never delay the blocker.
  NodeCount extra_nodes = 0;
};

/// Compute the EASY reservation for a blocker needing `blocker_nodes`
/// given `free_nodes` idle now and the running set. Requires that the
/// blocker fits the machine (free + running nodes >= blocker_nodes).
Reservation compute_reservation(NodeCount blocker_nodes,
                                NodeCount free_nodes, TimeSec now,
                                std::span<const RunningJob> running);

/// EASY admission test: can `job` start now without delaying `reservation`?
/// (Requires job.nodes <= free_nodes; checked.)
bool can_backfill(const PendingJob& job, NodeCount free_nodes, TimeSec now,
                  const Reservation& reservation);

}  // namespace esched::core
