// Power-capping baseline (the approach of the authors' earlier work,
// Zhou et al., JSSPP'13 [30], which this paper explicitly moves away
// from): during on-peak pricing the scheduler enforces an aggregate power
// budget — power-frugal jobs first, and nothing starts once the budget is
// reached, even with nodes idle. Off-peak it behaves like the Greedy
// policy with no cap.
//
// The paper's critique is that the budget "degrades system utilization
// slightly during on-peak periods"; this policy exists so the comparison
// can be run (bench/ablation_powercap) rather than taken on faith.
#pragma once

#include "core/greedy_policy.hpp"
#include "core/policy.hpp"

namespace esched::core {

/// Greedy power ordering plus an on-peak aggregate power budget.
class PowerCapPolicy final : public SchedulingPolicy {
 public:
  /// `on_peak_budget_watts` caps total running power during on-peak
  /// periods; must be positive. Off-peak is uncapped.
  explicit PowerCapPolicy(Watts on_peak_budget_watts);

  std::string name() const override;
  std::vector<std::size_t> prioritize(std::span<const PendingJob> window,
                                      const ScheduleContext& ctx) override;
  Watts power_budget(const ScheduleContext& ctx) const override;

  Watts on_peak_budget() const { return budget_; }

 private:
  GreedyPowerPolicy greedy_;
  Watts budget_;
};

}  // namespace esched::core
