// The paper's Greedy policy (§4.2.1): sort the scheduling window by power
// profile — power-frugal jobs first during on-peak pricing, power-hungry
// jobs first during off-peak — and dispatch first-fit in that order.
// O(n log n) per decision.
//
// Note on the paper text: §4.2.1 says jobs are sorted "in a decreasing
// order [of power] during on-peak", which contradicts the design intent
// stated in §1 and §3 ("dispatch the jobs with higher power consumption
// during the off-peak period, and the jobs with lower power consumption
// during the on-peak period") and would *increase* the bill. We implement
// the intent: ascending power during on-peak, descending during off-peak.
#pragma once

#include "core/policy.hpp"

namespace esched::core {

/// Sort key for the greedy ordering.
enum class GreedyKey {
  /// Per-node power profile p_i — the paper's "sorted by their power
  /// profiles" reading.
  kPowerPerNode,
  /// Aggregate power n_i * p_i — an ablation: order by what the job adds
  /// to the system's power draw.
  kTotalPower,
};

/// Power-sorted window ordering.
class GreedyPowerPolicy final : public SchedulingPolicy {
 public:
  explicit GreedyPowerPolicy(GreedyKey key = GreedyKey::kPowerPerNode);
  std::string name() const override;
  std::vector<std::size_t> prioritize(std::span<const PendingJob> window,
                                      const ScheduleContext& ctx) override;

 private:
  GreedyKey key_;
};

}  // namespace esched::core
