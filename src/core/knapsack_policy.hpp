// The paper's 0-1 Knapsack policy (§4.2.2): select the subset of window
// jobs that fits into the free nodes N_t while maximising aggregate power
// Σ n_i·p_i during off-peak pricing, or packing maximally with minimum
// aggregate power during on-peak pricing (Eq. 2 plus the utilization rule;
// see knapsack.hpp for why on-peak is fill-then-minimise rather than a bare
// minimisation, which would trivially select nothing).
//
// prioritize() returns the chosen subset first (in arrival order — fairness
// among selected jobs), followed by the unchosen jobs (arrival order). The
// scheduler's first-fit dispatch then starts the selection and, because the
// selection is maximal, the trailing jobs only start in rare corner cases
// (they act as a utilization safety net).
#pragma once

#include "core/knapsack.hpp"
#include "core/policy.hpp"

namespace esched::core {

/// Knapsack-based window ordering. O(window * N_t / gcd) per decision.
/// Instances hold reusable solver scratch space, so they are cheap to call
/// every tick but not thread-safe: use one instance per thread (the sweep
/// runner constructs policies per task for exactly this reason).
class KnapsackPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override;
  std::vector<std::size_t> prioritize(std::span<const PendingJob> window,
                                      const ScheduleContext& ctx) override;

  /// The knapsack selection itself (indices into `window`, ascending);
  /// exposed for tests and for callers that want the raw subset.
  KnapsackSolution select(std::span<const PendingJob> window,
                          const ScheduleContext& ctx) const;

 private:
  // Scratch reused across scheduling passes (mutable: select() is
  // logically const — it computes a value — but warms these buffers).
  mutable KnapsackWorkspace workspace_;
  mutable std::vector<KnapsackItem> items_;
};

}  // namespace esched::core
