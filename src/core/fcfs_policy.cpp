#include "core/fcfs_policy.hpp"

#include <numeric>

namespace esched::core {

std::string FcfsPolicy::name() const { return "FCFS"; }

std::vector<std::size_t> FcfsPolicy::prioritize(
    std::span<const PendingJob> window, const ScheduleContext&) {
  // The window arrives in queue (arrival) order; keep it.
  std::vector<std::size_t> order(window.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

}  // namespace esched::core
