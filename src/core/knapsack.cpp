#include "core/knapsack.hpp"

#include <algorithm>
#include <numeric>

#include "obs/registry.hpp"
#include "util/error.hpp"

namespace esched::core {

namespace {

// Scale weights by gcd(all weights, capacity) to shrink the DP table.
std::int64_t common_divisor(std::span<const KnapsackItem> items,
                            std::int64_t capacity) {
  std::int64_t g = capacity;
  for (const auto& item : items) g = std::gcd(g, item.weight);
  return g > 0 ? g : 1;
}

// Lexicographic comparison for kMaximizeWeightMinimizeValue: is (w1, v1)
// better than (w2, v2)?
bool fill_better(std::int64_t w1, double v1, std::int64_t w2, double v2) {
  if (w1 != w2) return w1 > w2;
  return v1 < v2;
}

}  // namespace

KnapsackSolution solve_knapsack(std::span<const KnapsackItem> items,
                                std::int64_t capacity,
                                KnapsackObjective objective) {
  KnapsackWorkspace workspace;
  return solve_knapsack(items, capacity, objective, workspace);
}

KnapsackSolution solve_knapsack(std::span<const KnapsackItem> items,
                                std::int64_t capacity,
                                KnapsackObjective objective,
                                KnapsackWorkspace& workspace) {
  ESCHED_REQUIRE(capacity >= 0, "knapsack capacity must be >= 0");
  for (const auto& item : items) {
    ESCHED_REQUIRE(item.weight > 0, "knapsack weights must be positive");
    ESCHED_REQUIRE(item.value >= 0.0, "knapsack values must be >= 0");
  }

  KnapsackSolution solution;
  if (capacity == 0 || items.empty()) return solution;

  const std::int64_t gcd = common_divisor(items, capacity);
  const auto cap = static_cast<std::size_t>(capacity / gcd);
  const std::size_t n = items.size();
  const std::size_t row = cap + 1;

  // A "warm" workspace already holds buffers big enough for this problem:
  // the assign() calls below then reuse capacity instead of allocating.
  // The hit/solve ratio is the observable payoff of workspace reuse.
  const bool workspace_warm = workspace.taken.capacity() >= n * row &&
                              workspace.best_value.capacity() >= row &&
                              workspace.best_weight.capacity() >= row;
  std::uint64_t dp_cells = 0;

  // DP over capacities. For kMaximizeValue: best[w] = max value using
  // capacity exactly <= w (classic relaxed form). For the fill objective we
  // track best (weight, value) pairs per capacity bound. `taken[i*row + w]`
  // is the reconstruction table: did item i join the optimum for bound w?
  // Memory: n * (cap+1) bytes — window <= a few hundred, cap <= system
  // nodes / gcd, i.e. a few MiB worst case — held as one contiguous
  // workspace buffer so a warm workspace allocates nothing per call.
  std::vector<double>& best_value = workspace.best_value;
  std::vector<std::int64_t>& best_weight = workspace.best_weight;
  std::vector<std::uint8_t>& taken = workspace.taken;
  best_value.assign(row, 0.0);
  best_weight.assign(row, 0);
  taken.assign(n * row, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const auto w_i = static_cast<std::size_t>(items[i].weight / gcd);
    const double v_i = items[i].value;
    if (w_i > cap) continue;
    dp_cells += static_cast<std::uint64_t>(cap - w_i + 1);
    std::uint8_t* taken_row = taken.data() + i * row;
    // Descending capacity loop: each item used at most once.
    for (std::size_t w = cap; w >= w_i; --w) {
      const double cand_value = best_value[w - w_i] + v_i;
      const std::int64_t cand_weight =
          best_weight[w - w_i] + items[i].weight;
      bool better;
      if (objective == KnapsackObjective::kMaximizeValue) {
        better = cand_value > best_value[w];
      } else {
        better = fill_better(cand_weight, cand_value, best_weight[w],
                             best_value[w]);
      }
      if (better) {
        best_value[w] = cand_value;
        best_weight[w] = cand_weight;
        taken_row[w] = 1;
      }
      if (w == w_i) break;  // std::size_t cannot go below 0
    }
  }

  // Reconstruct by walking items backwards from the full capacity.
  std::size_t w = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (taken[i * row + w]) {
      solution.chosen.push_back(i);
      solution.total_weight += items[i].weight;
      solution.total_value += items[i].value;
      w -= static_cast<std::size_t>(items[i].weight / gcd);
    }
  }
  std::reverse(solution.chosen.begin(), solution.chosen.end());

  if (obs::counters_enabled()) {
    // References resolved once; the registry guarantees stable addresses.
    static obs::Counter& solves =
        obs::Registry::global().counter("knapsack.solves");
    static obs::Counter& cells =
        obs::Registry::global().counter("knapsack.dp_cells");
    static obs::Counter& reuse_hits =
        obs::Registry::global().counter("knapsack.workspace_reuse_hits");
    solves.add(1);
    cells.add(dp_cells);
    if (workspace_warm) reuse_hits.add(1);
  }
  return solution;
}

KnapsackSolution solve_knapsack_bruteforce(std::span<const KnapsackItem> items,
                                           std::int64_t capacity,
                                           KnapsackObjective objective) {
  ESCHED_REQUIRE(items.size() <= 25, "brute force limited to 25 items");
  ESCHED_REQUIRE(capacity >= 0, "knapsack capacity must be >= 0");
  const std::size_t n = items.size();
  std::uint32_t best_mask = 0;
  std::int64_t best_w = 0;
  double best_v = 0.0;
  bool have_best = false;

  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::int64_t w = 0;
    double v = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        w += items[i].weight;
        v += items[i].value;
      }
    }
    if (w > capacity) continue;
    bool better;
    if (!have_best) {
      better = true;
    } else if (objective == KnapsackObjective::kMaximizeValue) {
      better = v > best_v;
    } else {
      better = fill_better(w, v, best_w, best_v);
    }
    if (better) {
      best_mask = mask;
      best_w = w;
      best_v = v;
      have_best = true;
    }
  }

  KnapsackSolution solution;
  for (std::size_t i = 0; i < n; ++i) {
    if (best_mask & (1u << i)) solution.chosen.push_back(i);
  }
  solution.total_weight = best_w;
  solution.total_value = best_v;
  return solution;
}

}  // namespace esched::core
