#include "core/greedy_policy.hpp"

#include <algorithm>
#include <numeric>

namespace esched::core {

GreedyPowerPolicy::GreedyPowerPolicy(GreedyKey key) : key_(key) {}

std::string GreedyPowerPolicy::name() const {
  return key_ == GreedyKey::kPowerPerNode ? "Greedy" : "Greedy(total-power)";
}

std::vector<std::size_t> GreedyPowerPolicy::prioritize(
    std::span<const PendingJob> window, const ScheduleContext& ctx) {
  std::vector<std::size_t> order(window.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  auto power_key = [&](std::size_t i) {
    return key_ == GreedyKey::kPowerPerNode ? window[i].power_per_node
                                            : window[i].total_power();
  };
  const bool ascending = ctx.period == power::PricePeriod::kOnPeak;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double ka = power_key(a);
                     const double kb = power_key(b);
                     if (ka != kb) return ascending ? ka < kb : ka > kb;
                     // Tie: preserve arrival order (stable sort keeps it,
                     // this comparator just declares ties equal).
                     return false;
                   });
  return order;
}

}  // namespace esched::core
