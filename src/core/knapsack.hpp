// Reusable 0-1 knapsack solver (the paper's Eq. 2 dynamic program).
//
// Items have integral weights (node counts) and real values (aggregate
// power n_i * p_i). The solver supports both objectives the paper needs:
// maximise value (off-peak) and "fill-then-minimise" (on-peak: maximise
// node usage, breaking ties by minimum aggregate power — the paper's
// "minimise the total value ... with the constraint of knapsack size"
// combined with its utilization rule, which forbids leaving a fitting job
// unscheduled). Weights are divided by their GCD with the capacity first,
// which keeps the DP table small on rack-granular machines like Mira
// (weights in multiples of 1,024 nodes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace esched::core {

/// One knapsack item.
struct KnapsackItem {
  std::int64_t weight = 0;  ///< nodes requested; must be > 0
  double value = 0.0;       ///< aggregate power; must be >= 0
};

/// Solver result: chosen item indices (ascending), total weight and value.
struct KnapsackSolution {
  std::vector<std::size_t> chosen;
  std::int64_t total_weight = 0;
  double total_value = 0.0;
};

/// Objective variants.
enum class KnapsackObjective {
  /// Maximise total value subject to the capacity (Eq. 2 as written; the
  /// paper's off-peak selection). All values >= 0, so the optimum is
  /// automatically maximal: no unchosen item fits in the leftover space.
  kMaximizeValue,
  /// Lexicographically (max total weight, then min total value): pack as
  /// many nodes as possible, preferring the cheapest-power packing. The
  /// paper's on-peak selection under the no-idle-nodes rule.
  kMaximizeWeightMinimizeValue,
};

/// Reusable scratch buffers for solve_knapsack. The solver is called every
/// scheduling pass (tens of thousands of times per simulation), and the
/// reconstruction table alone is items x (capacity/gcd + 1) bytes; keeping
/// one workspace per policy instance makes those allocations one-time
/// capacity growth instead of per-call heap traffic. A warm workspace
/// (same or smaller problem size) allocates nothing (knapsack_test pins
/// this down by asserting stable buffer addresses).
///
/// Not thread-safe: one workspace per thread/policy instance — which the
/// sweep runner guarantees by constructing policies per task.
struct KnapsackWorkspace {
  std::vector<double> best_value;        ///< DP value per capacity bound
  std::vector<std::int64_t> best_weight; ///< DP weight per capacity bound
  std::vector<std::uint8_t> taken;       ///< flattened n x (cap+1) table
};

/// Solve 0-1 knapsack over `items` with the given capacity and objective.
/// O(items * capacity / gcd) time and space. Items with weight > capacity
/// are never chosen. Deterministic: among equal-objective solutions the
/// DP prefers *not* taking later items, so earlier (lower-index = older)
/// jobs win ties.
KnapsackSolution solve_knapsack(std::span<const KnapsackItem> items,
                                std::int64_t capacity,
                                KnapsackObjective objective);

/// As above, but with caller-owned scratch space: zero heap allocations
/// for the DP tables once `workspace` has grown to the problem size.
KnapsackSolution solve_knapsack(std::span<const KnapsackItem> items,
                                std::int64_t capacity,
                                KnapsackObjective objective,
                                KnapsackWorkspace& workspace);

/// Exponential-time exact reference (<= ~25 items) used by tests to verify
/// the DP. Ties may be broken differently than solve_knapsack; compare
/// objective values (total_weight/total_value), not chosen sets.
KnapsackSolution solve_knapsack_bruteforce(std::span<const KnapsackItem> items,
                                           std::int64_t capacity,
                                           KnapsackObjective objective);

}  // namespace esched::core
