// Reusable 0-1 knapsack solver (the paper's Eq. 2 dynamic program).
//
// Items have integral weights (node counts) and real values (aggregate
// power n_i * p_i). The solver supports both objectives the paper needs:
// maximise value (off-peak) and "fill-then-minimise" (on-peak: maximise
// node usage, breaking ties by minimum aggregate power — the paper's
// "minimise the total value ... with the constraint of knapsack size"
// combined with its utilization rule, which forbids leaving a fitting job
// unscheduled). Weights are divided by their GCD with the capacity first,
// which keeps the DP table small on rack-granular machines like Mira
// (weights in multiples of 1,024 nodes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace esched::core {

/// One knapsack item.
struct KnapsackItem {
  std::int64_t weight = 0;  ///< nodes requested; must be > 0
  double value = 0.0;       ///< aggregate power; must be >= 0
};

/// Solver result: chosen item indices (ascending), total weight and value.
struct KnapsackSolution {
  std::vector<std::size_t> chosen;
  std::int64_t total_weight = 0;
  double total_value = 0.0;
};

/// Objective variants.
enum class KnapsackObjective {
  /// Maximise total value subject to the capacity (Eq. 2 as written; the
  /// paper's off-peak selection). All values >= 0, so the optimum is
  /// automatically maximal: no unchosen item fits in the leftover space.
  kMaximizeValue,
  /// Lexicographically (max total weight, then min total value): pack as
  /// many nodes as possible, preferring the cheapest-power packing. The
  /// paper's on-peak selection under the no-idle-nodes rule.
  kMaximizeWeightMinimizeValue,
};

/// Solve 0-1 knapsack over `items` with the given capacity and objective.
/// O(items * capacity / gcd) time and space. Items with weight > capacity
/// are never chosen. Deterministic: among equal-objective solutions the
/// DP prefers *not* taking later items, so earlier (lower-index = older)
/// jobs win ties.
KnapsackSolution solve_knapsack(std::span<const KnapsackItem> items,
                                std::int64_t capacity,
                                KnapsackObjective objective);

/// Exponential-time exact reference (<= ~25 items) used by tests to verify
/// the DP. Ties may be broken differently than solve_knapsack; compare
/// objective values (total_weight/total_value), not chosen sets.
KnapsackSolution solve_knapsack_bruteforce(std::span<const KnapsackItem> items,
                                           std::int64_t capacity,
                                           KnapsackObjective objective);

}  // namespace esched::core
