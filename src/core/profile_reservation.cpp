#include "core/profile_reservation.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace esched::core {

AvailabilityProfile::AvailabilityProfile(TimeSec now, NodeCount total)
    : now_(now), total_(total) {
  ESCHED_REQUIRE(total_ > 0, "profile needs a positive node count");
  steps_.push_back({now_, total_});
}

std::size_t AvailabilityProfile::step_index(TimeSec t) const {
  ESCHED_REQUIRE(t >= now_, "query before the profile start");
  // Last step with time <= t.
  const auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](TimeSec v, const Step& s) { return v < s.time; });
  return static_cast<std::size_t>(it - steps_.begin()) - 1;
}

NodeCount AvailabilityProfile::free_at(TimeSec t) const {
  return steps_[step_index(t)].free;
}

void AvailabilityProfile::reserve(TimeSec t0, TimeSec t1, NodeCount nodes) {
  ESCHED_REQUIRE(t0 >= now_ && t0 < t1, "bad reservation interval");
  ESCHED_REQUIRE(nodes > 0, "reservation must take nodes");

  // Ensure breakpoints exist at t0 and t1.
  auto split_at = [&](TimeSec t) {
    const std::size_t i = step_index(t);
    if (steps_[i].time != t) {
      steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                    {t, steps_[i].free});
    }
  };
  split_at(t0);
  split_at(t1);

  for (std::size_t i = step_index(t0); steps_[i].time < t1; ++i) {
    ESCHED_REQUIRE(steps_[i].free >= nodes,
                   "over-reservation in availability profile");
    steps_[i].free -= nodes;
  }
}

TimeSec AvailabilityProfile::find_earliest(NodeCount nodes,
                                           DurationSec duration) const {
  ESCHED_REQUIRE(nodes > 0 && nodes <= total_,
                 "request outside the machine");
  ESCHED_REQUIRE(duration > 0, "request needs a duration");

  // Scan candidate starts: the profile's step boundaries.
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].free < nodes) continue;
    const TimeSec start = steps_[i].time;
    const TimeSec end = start + duration;
    // Check the whole window [start, end) stays feasible.
    bool ok = true;
    for (std::size_t j = i; j < steps_.size() && steps_[j].time < end;
         ++j) {
      if (steps_[j].free < nodes) {
        ok = false;
        break;
      }
    }
    if (ok) return start;
  }
  // Unreachable: the final step has total_ free... unless reservations
  // extend it; then the step after the last reservation end qualifies.
  throw Error("availability profile exhausted (internal error)");
}

}  // namespace esched::core
