// Availability profile: the data structure behind conservative
// backfilling.
//
// EASY backfilling (backfill.hpp) protects only the head job's
// reservation; *conservative* backfilling [Mu'alem & Feitelson '01] gives
// every queued job a reservation, so no backfill can delay anyone. That
// requires knowing, for any (start, duration, nodes) request, the
// earliest start at which enough nodes are free given the running jobs
// and all reservations made so far — which is what this profile answers.
//
// The profile is a step function of available nodes over time, stored as
// breakpoints. Reserving an interval subtracts nodes between two
// breakpoints. Sizes stay small because callers cap the reservation depth
// (SchedulerConfig::conservative_depth).
#pragma once

#include <vector>

#include "util/types.hpp"

namespace esched::core {

/// Step function of free nodes over [now, infinity), supporting interval
/// reservations and earliest-fit queries.
class AvailabilityProfile {
 public:
  /// Starts with `total` nodes free everywhere from `now` on.
  AvailabilityProfile(TimeSec now, NodeCount total);

  /// Subtract `nodes` over [t0, t1). Requires the interval to have at
  /// least `nodes` free (i.e. reserve only what find_earliest granted).
  void reserve(TimeSec t0, TimeSec t1, NodeCount nodes);

  /// Earliest t >= now() such that `nodes` are free during the whole of
  /// [t, t + duration). Always exists (the profile tail is unbounded).
  TimeSec find_earliest(NodeCount nodes, DurationSec duration) const;

  /// Free nodes at time t (t >= now()).
  NodeCount free_at(TimeSec t) const;

  TimeSec now() const { return now_; }

 private:
  struct Step {
    TimeSec time;     ///< step start
    NodeCount free;   ///< free nodes from this step to the next
  };
  /// Index of the step containing t.
  std::size_t step_index(TimeSec t) const;

  TimeSec now_;
  NodeCount total_;
  std::vector<Step> steps_;  ///< sorted by time; last step extends forever
};

}  // namespace esched::core
