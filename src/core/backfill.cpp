#include "core/backfill.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace esched::core {

Reservation compute_reservation(NodeCount blocker_nodes,
                                NodeCount free_nodes, TimeSec now,
                                std::span<const RunningJob> running) {
  ESCHED_REQUIRE(blocker_nodes > 0, "blocker must need nodes");
  ESCHED_REQUIRE(free_nodes >= 0, "negative free nodes");

  if (blocker_nodes <= free_nodes) {
    // Not actually blocked; it can start immediately.
    return {now, free_nodes - blocker_nodes};
  }

  std::vector<RunningJob> by_end(running.begin(), running.end());
  for (RunningJob& r : by_end) r.est_end = std::max(r.est_end, now);
  std::sort(by_end.begin(), by_end.end(),
            [](const RunningJob& a, const RunningJob& b) {
              return a.est_end < b.est_end;
            });

  NodeCount avail = free_nodes;
  for (const RunningJob& r : by_end) {
    avail += r.nodes;
    if (avail >= blocker_nodes) {
      return {r.est_end, avail - blocker_nodes};
    }
  }
  throw Error("blocker larger than the whole machine (" +
              std::to_string(blocker_nodes) + " nodes)");
}

bool can_backfill(const PendingJob& job, NodeCount free_nodes, TimeSec now,
                  const Reservation& reservation) {
  if (job.nodes > free_nodes) return false;
  // Ends (by estimate) before the blocker needs the nodes?
  if (now + job.walltime <= reservation.shadow_time) return true;
  // Or small enough to use only the shadow-time spare nodes?
  return job.nodes <= reservation.extra_nodes;
}

}  // namespace esched::core
