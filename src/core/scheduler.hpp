// The window-based scheduler (§4.1 of the paper).
//
// One decide() call is one scheduling pass at a tick. The scheduler
// consumes the wait queue in arrival order, forms the scheduling window
// (the first `window_size` jobs — arrival-ordered, which is what preserves
// fairness), lets the policy order the window, and dispatches first-fit.
// For strict-order policies (FCFS) it instead runs classic EASY over the
// whole queue: in-order starts plus reservation-protected backfilling.
//
// decide() is a pure function of its arguments — no hidden state — which
// makes every scheduling decision unit-testable in isolation and keeps the
// simulator trivially deterministic.
#pragma once

#include <span>
#include <vector>

#include "core/backfill.hpp"
#include "core/policy.hpp"
#include "core/profile_reservation.hpp"

namespace esched::core {

/// How the strict-order (FCFS) path protects queued jobs while
/// backfilling.
enum class BackfillMode {
  /// EASY [Feitelson & Weil '98]: one reservation for the head job;
  /// anything that cannot delay it may jump. The paper's baseline.
  kEasy,
  /// Conservative [Mu'alem & Feitelson '01]: every queued job (up to
  /// `conservative_depth`) gets a reservation; backfills may delay no
  /// one. Lower utilization, stronger fairness guarantee.
  kConservative,
};

/// Scheduler knobs (paper defaults).
struct SchedulerConfig {
  /// Scheduling window size w (paper recommends 10-30; default 20).
  std::size_t window_size = 20;
  /// For window policies: after the window pass, EASY-backfill jobs from
  /// beyond the window against a reservation for the oldest unstarted
  /// window job. On by default: the paper's baseline backfills over the
  /// whole queue, and matching that scope is what keeps the window
  /// policies' wait times within the paper's "negligible impact" claim on
  /// backlogged workloads (see the ablation bench for the effect of
  /// turning it off).
  bool backfill_beyond_window = true;
  /// Reservation discipline of the strict-order (FCFS) dispatch path.
  BackfillMode backfill_mode = BackfillMode::kEasy;
  /// Reservation-book depth for conservative backfilling: queued jobs
  /// beyond this many get no reservation and simply wait (bounds the
  /// O(depth^2) profile work per pass).
  std::size_t conservative_depth = 100;
  /// Starvation guard (extension, disabled by default = 0): window jobs
  /// that have waited at least this long are dispatched in arrival order
  /// ahead of the policy's ordering, bounding the extra wait a power-based
  /// reordering can inflict on any single job.
  DurationSec starvation_age = 0;
};

/// Stateless scheduling decision engine wrapping a policy.
class Scheduler {
 public:
  /// `policy` must outlive the scheduler.
  Scheduler(SchedulingPolicy& policy, const SchedulerConfig& config);

  /// One scheduling pass. `queue` holds waiting jobs in arrival order;
  /// `running` describes jobs currently on the machine (for reservations).
  /// Returns indices into `queue` to start now, in dispatch order; the
  /// returned jobs are guaranteed to fit in ctx.free_nodes collectively.
  std::vector<std::size_t> decide(const ScheduleContext& ctx,
                                  std::span<const PendingJob> queue,
                                  std::span<const RunningJob> running) const;

  const SchedulingPolicy& policy() const { return *policy_; }
  const SchedulerConfig& config() const { return config_; }

 private:
  std::vector<std::size_t> decide_easy(const ScheduleContext& ctx,
                                       std::span<const PendingJob> queue,
                                       std::span<const RunningJob> running)
      const;
  std::vector<std::size_t> decide_conservative(
      const ScheduleContext& ctx, std::span<const PendingJob> queue,
      std::span<const RunningJob> running) const;
  std::vector<std::size_t> decide_window(const ScheduleContext& ctx,
                                         std::span<const PendingJob> queue,
                                         std::span<const RunningJob> running)
      const;

  SchedulingPolicy* policy_;
  SchedulerConfig config_;
};

}  // namespace esched::core
