// The scheduling-policy interface: how a policy orders the scheduling
// window for dispatch (§4 of the paper).
//
// A policy is a pure prioritisation function: given the jobs in the window
// and the scheduling context (free nodes, price period), it returns the
// order in which the scheduler should *attempt* to start them. The
// scheduler (scheduler.hpp) then dispatches first-fit in that order, which
// simultaneously enforces the paper's utilization rule — no job waits while
// it fits — because every window job is eventually attempted.
#pragma once

#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "power/pricing.hpp"
#include "util/types.hpp"

namespace esched::core {

/// What a policy may know about one waiting job. Note `walltime` is the
/// user estimate; policies never see actual runtimes.
struct PendingJob {
  JobId id = 0;
  TimeSec submit = 0;
  NodeCount nodes = 0;          ///< n_i
  DurationSec walltime = 0;     ///< user runtime estimate
  Watts power_per_node = 0.0;   ///< p_i
  int queue = 0;                ///< queue class (lower = higher priority)

  /// Aggregate power n_i * p_i — the knapsack "value".
  Watts total_power() const {
    return power_per_node * static_cast<double>(nodes);
  }
};

/// Context of one scheduling decision.
struct ScheduleContext {
  TimeSec now = 0;
  NodeCount free_nodes = 0;       ///< N_t
  NodeCount system_nodes = 0;     ///< N
  power::PricePeriod period = power::PricePeriod::kOffPeak;
  /// Aggregate power of the jobs currently running (watts). Lets policies
  /// reason about budgets (PowerCapPolicy); 0 when the caller does not
  /// track power.
  Watts current_power = 0.0;
  /// When the current price period ends (the next tariff boundary).
  /// Lets policies weigh how much of a job's run overlaps the current
  /// period (EnergyKnapsackPolicy). 0 means "unknown/far away".
  TimeSec period_end = 0;
};

/// Base class for window-ordering policies.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Display name for reports ("FCFS", "Greedy", "Knapsack", ...).
  virtual std::string name() const = 0;

  /// Return a permutation of [0, window.size()): the order in which the
  /// scheduler should attempt to dispatch the window jobs.
  virtual std::vector<std::size_t> prioritize(
      std::span<const PendingJob> window, const ScheduleContext& ctx) = 0;

  /// True for policies with strict queue-order semantics (FCFS): the
  /// scheduler then uses classic EASY dispatch over the whole queue —
  /// in-order starts plus reservation-protected backfilling — instead of
  /// window-scoped first-fit.
  virtual bool strict_order() const { return false; }

  /// Aggregate power cap (watts) the dispatcher must respect right now:
  /// a job only starts if running power + its power stays at or below
  /// this. Infinity (the default) disables capping — the paper's design
  /// point; PowerCapPolicy models the budgeted prior work it compares
  /// against.
  virtual Watts power_budget(const ScheduleContext&) const {
    return kNoPowerBudget;
  }

  /// Sentinel for "no cap".
  static constexpr Watts kNoPowerBudget =
      std::numeric_limits<double>::infinity();
};

/// Validate that `order` is a permutation of [0, n); throws otherwise.
/// Policies are user-extensible, so the scheduler checks their output.
void require_permutation(std::span<const std::size_t> order, std::size_t n);

/// Construct one of the built-in policies by name — the registry that lets
/// a declarative run::PolicySpec cross a process boundary (the worker
/// rebuilds the policy from its name alone). Known names: "fcfs",
/// "greedy" (per-node power, the paper's reading), "greedy-total"
/// (aggregate power ablation), "knapsack". Throws esched::Error listing
/// the valid names for anything else.
std::unique_ptr<SchedulingPolicy> make_policy_by_name(
    const std::string& name);

}  // namespace esched::core
