#include "obs/tracer.hpp"

#include <cstdio>
#include <limits>

#include "util/error.hpp"

namespace esched::obs {

namespace {

/// Process-wide trace-track id per OS thread. Chrome's B/E pairing is
/// per-tid, and span nesting is only guaranteed well-formed within one
/// thread, so the thread IS the track. Ids are dealt at first use; 0 is
/// reserved so tids read naturally in the viewer.
std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// Same minimal escaping contract as metrics/export.cpp: ASCII-safe JSON
// strings without a JSON library.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

Tracer::~Tracer() {
  // Destruction must not throw; close() only throws while enabled, and
  // a close() failure at destruction time has nobody left to tell.
  try {
    close();
  } catch (const Error&) {
  }
}

void Tracer::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  ESCHED_REQUIRE(!enabled_.load(std::memory_order_relaxed) &&
                     chrome_.rdbuf()->is_open() == false,
                 "Tracer::open called twice");
  path_ = path;
  jsonl_path_ = path + kDecisionLogSuffix;
  chrome_.open(path_);
  ESCHED_REQUIRE(chrome_.good(), "cannot open trace file " + path_);
  jsonl_.open(jsonl_path_);
  ESCHED_REQUIRE(jsonl_.good(),
                 "cannot open decision log " + jsonl_path_);
  chrome_ << "{\"traceEvents\": [\n";
  jsonl_.precision(std::numeric_limits<double>::max_digits10);
  first_event_ = true;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::emit_event(const std::string& name, const char* category,
                        char phase) {
  // tid is read outside the lock (thread_local), timestamp inside it so
  // ts is monotone in file order per thread.
  const std::uint32_t tid = this_thread_tid();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const double ts =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", ts);
  chrome_ << (first_event_ ? "" : ",\n") << "{\"name\": \""
          << json_escape(name) << "\", \"cat\": \"" << category
          << "\", \"ph\": \"" << phase
          << "\", \"pid\": 1, \"tid\": " << tid << ", \"ts\": " << buf
          << "}";
  first_event_ = false;
}

void Tracer::begin_span(const std::string& name, const char* category) {
  emit_event(name, category, 'B');
}

void Tracer::end_span(const std::string& name, const char* category) {
  emit_event(name, category, 'E');
}

void Tracer::complete_span(const std::string& name, const char* category,
                           std::chrono::steady_clock::time_point begin,
                           std::chrono::steady_clock::time_point end,
                           std::uint32_t track) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (begin < epoch_) begin = epoch_;
  if (end < begin) end = begin;
  const double ts =
      std::chrono::duration<double, std::micro>(begin - epoch_).count();
  const double dur =
      std::chrono::duration<double, std::micro>(end - begin).count();
  char ts_buf[64];
  char dur_buf[64];
  std::snprintf(ts_buf, sizeof ts_buf, "%.3f", ts);
  std::snprintf(dur_buf, sizeof dur_buf, "%.3f", dur);
  chrome_ << (first_event_ ? "" : ",\n") << "{\"name\": \""
          << json_escape(name) << "\", \"cat\": \"" << category
          << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << track
          << ", \"ts\": " << ts_buf << ", \"dur\": " << dur_buf << "}";
  first_event_ = false;
}

void Tracer::record_tick(const TickRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  // Fixed key order — the JSONL schema documented in DESIGN.md; tests
  // (and humans with grep) rely on it.
  jsonl_ << "{\"sim\": \"" << json_escape(record.sim)
         << "\", \"t\": " << record.time << ", \"period\": \""
         << record.period << "\", \"free_before\": " << record.free_before
         << ", \"free_after\": " << record.free_after
         << ", \"queue\": " << record.queue_length
         << ", \"passes\": " << record.passes << ", \"window\": [";
  for (std::size_t i = 0; i < record.window_ids.size(); ++i) {
    jsonl_ << (i == 0 ? "" : ", ") << "{\"id\": " << record.window_ids[i]
           << ", \"power\": " << record.window_powers[i] << "}";
  }
  jsonl_ << "], \"dispatched\": [";
  for (std::size_t i = 0; i < record.dispatched.size(); ++i) {
    jsonl_ << (i == 0 ? "" : ", ") << record.dispatched[i];
  }
  jsonl_ << "], \"reason\": \"" << record.reason << "\"}\n";
  // Crash hygiene: every completed decision record reaches the disk
  // before the next tick runs, so a process killed mid-simulation (a
  // SIGKILLed sweep worker, an OOMed bench) leaves a parseable JSONL
  // prefix and a recoverable Chrome-event prefix instead of a torn line
  // in a stdio buffer. Tracing is not a hot path by contract.
  jsonl_.flush();
  chrome_.flush();
}

void Tracer::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  enabled_.store(false, std::memory_order_release);
  chrome_ << "\n]}\n";
  chrome_.flush();
  jsonl_.flush();
  const bool chrome_ok = chrome_.good();
  const bool jsonl_ok = jsonl_.good();
  chrome_.close();
  jsonl_.close();
  ESCHED_REQUIRE(chrome_ok, "failed writing trace file " + path_);
  ESCHED_REQUIRE(jsonl_ok, "failed writing decision log " + jsonl_path_);
}

}  // namespace esched::obs
