// Structured decision tracing for the simulation stack.
//
// A Tracer owns two sinks, both opened by open(path):
//  * `<path>` — a Chrome trace_event JSON file ({"traceEvents": [...]})
//    of duration spans ("B"/"E" pairs) for simulation phases and sweep
//    tasks. Load it in Perfetto or chrome://tracing to see how a sweep's
//    tasks packed onto workers and where each simulation spent its time.
//  * `<path>.jsonl` — one JSON object per line, one line per *scheduler
//    tick*: simulation label, tick time, price period, free nodes before
//    and after, the scheduling window (job ids and per-node watts), the
//    dispatched job ids and why the tick stopped scheduling. This is the
//    record that lets a bench row be audited decision by decision
//    (EXPERIMENTS.md shows a worked example for the Fig. 7/8 bench).
//
// A default-constructed Tracer is disabled: every record call is one
// branch on an atomic load and nothing else, so `SimConfig::tracer` can
// stay wired in release binaries at no cost. All record calls are
// thread-safe (one mutex around the sinks — tracing is explicitly not a
// hot path; the simulator emits at tick granularity, not event
// granularity). Tracing never feeds back into scheduling: results with
// tracing on are bit-identical to results with tracing off
// (sweep_runner_test pins this).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace esched::obs {

/// Everything the simulator knows about one scheduler tick, for the JSONL
/// decision log. Window vectors are parallel (ids[i] draws powers[i]
/// watts per node).
struct TickRecord {
  std::string sim;            ///< "<policy>/<trace>" label
  TimeSec time = 0;           ///< tick time (simulation seconds)
  const char* period = "";    ///< "on_peak" or "off_peak"
  NodeCount free_before = 0;  ///< idle nodes entering the tick
  NodeCount free_after = 0;   ///< idle nodes after dispatch
  std::size_t queue_length = 0;  ///< waiting jobs entering the tick
  std::size_t passes = 0;        ///< scheduler passes run this tick
  std::vector<JobId> window_ids;     ///< first-pass scheduling window
  std::vector<Watts> window_powers;  ///< per-node watts, parallel to ids
  std::vector<JobId> dispatched;     ///< job ids started this tick
  const char* reason = "";  ///< why scheduling stopped (see DESIGN.md)
};

/// Thread-safe two-sink trace writer. See the file comment for the model.
class Tracer {
 public:
  /// Suffix appended to the Chrome-trace path for the decision log.
  static constexpr const char* kDecisionLogSuffix = ".jsonl";

  Tracer() = default;  ///< disabled until open()
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Open `<path>` (Chrome trace) and `<path>.jsonl` (decision log);
  /// throws esched::Error naming the path on failure. May be called once.
  void open(const std::string& path);

  bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }
  const std::string& path() const { return path_; }
  const std::string& decision_log_path() const { return jsonl_path_; }

  /// Emit a "B" (span begin) event on the calling thread's trace track.
  /// Every begin must be matched by an end_span with the same name from
  /// the same thread; SpanGuard does this structurally.
  void begin_span(const std::string& name, const char* category);
  /// Emit the matching "E" event.
  void end_span(const std::string& name, const char* category);

  /// Emit a Chrome "X" (complete) event spanning [begin, end] on an
  /// explicit track id. For durations a supervisor measures on behalf of
  /// *other processes* (worker lifetimes, task round-trips in
  /// run/proc.hpp): those overlap freely, so they cannot use the calling
  /// thread's B/E track, whose events must nest. Times before open() are
  /// clamped to the trace epoch.
  void complete_span(const std::string& name, const char* category,
                     std::chrono::steady_clock::time_point begin,
                     std::chrono::steady_clock::time_point end,
                     std::uint32_t track);

  /// Append one line to the decision log. Both sinks are flushed after
  /// every record (crash hygiene: a worker killed mid-run leaves a valid
  /// JSONL prefix and a recoverable Chrome-trace prefix on disk).
  void record_tick(const TickRecord& record);

  /// Write the Chrome-trace footer and close both sinks; further record
  /// calls become no-ops. Idempotent (the destructor calls it). Throws
  /// esched::Error if either sink reports a write failure.
  void close();

 private:
  void emit_event(const std::string& name, const char* category,
                  char phase);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::ofstream chrome_;
  std::ofstream jsonl_;
  bool first_event_ = true;
  std::chrono::steady_clock::time_point epoch_{};
  std::string path_;
  std::string jsonl_path_;
};

/// RAII span: begins on construction (when the tracer is non-null and
/// enabled), ends on destruction. Safe to construct with tracer == null.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, std::string name, const char* category)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(std::move(name)),
        category_(category) {
    if (tracer_ != nullptr) tracer_->begin_span(name_, category_);
  }
  ~SpanGuard() {
    if (tracer_ != nullptr) tracer_->end_span(name_, category_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_;
  std::string name_;
  const char* category_;
};

}  // namespace esched::obs
