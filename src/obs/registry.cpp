#include "obs/registry.hpp"

#include <chrono>
#include <fstream>
#include <limits>
#include <ostream>

#include "util/error.hpp"

namespace esched::obs {

namespace {

/// Stable per-thread shard index: threads are dealt shards round-robin at
/// first use, so a worker always hits the same cache line and up to
/// kShards concurrent writers never collide.
std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards;
  return shard;
}

std::uint64_t steady_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void Counter::add(std::uint64_t n) noexcept {
  shards_[this_thread_shard()].value.fetch_add(n,
                                               std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Timer& timer)
    : timer_(counters_enabled() ? &timer : nullptr) {
  if (timer_ != nullptr) start_nanos_ = steady_nanos();
}

ScopedTimer::~ScopedTimer() {
  if (timer_ != nullptr) timer_->record(steady_nanos() - start_nanos_);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Timer& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[name];
  if (slot == nullptr) slot = std::make_unique<Timer>();
  return *slot;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, t] : timers_) {
    snap.timers[name] = TimerValue{t->count(), t->total_nanos()};
  }
  return snap;
}

void Registry::write_json(std::ostream& out) const {
  const Snapshot snap = snapshot();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"timers\": {";
  first = true;
  for (const auto& [name, value] : snap.timers) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": {\"count\": " << value.count
        << ", \"total_nanos\": " << value.total_nanos << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void Registry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  ESCHED_REQUIRE(out.good(), "cannot open metrics file " + path);
  write_json(out);
  out.flush();
  ESCHED_REQUIRE(out.good(), "failed writing metrics file " + path);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : counters_) entry.second->reset();
  for (const auto& entry : gauges_) entry.second->reset();
  for (const auto& entry : timers_) entry.second->reset();
}

}  // namespace esched::obs
