// Lightweight observability: a process-wide registry of named counters,
// gauges and timers, instrumented into the simulator's hot paths (event
// processing, scheduler passes, knapsack DP work, backfill outcomes).
//
// Design constraints, in priority order:
//  1. Near-zero cost when off. Everything is gated on one global flag
//     (`counters_enabled()`, a relaxed atomic load). Instrumentation sites
//     accumulate into plain locals on the stack and flush once per
//     pass/solve/run, so the flag check is the *only* per-site cost when
//     observability is disabled — the <2% overhead contract in DESIGN.md.
//  2. Thread-safe under the sweep runner. Counters are sharded across
//     cache-line-padded atomic slots indexed by a per-thread id, so N
//     workers bumping the same counter never contend on one cache line;
//     snapshot() sums the shards. TSan runs of the threaded tests keep
//     this honest (scripts/tier1.sh).
//  3. Deterministic simulation. Nothing here feeds back into scheduling
//     decisions or SimResult; enabling counters cannot change results.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace esched::obs {

/// Global switch for counter/timer instrumentation (off by default).
/// Relaxed atomics: flipping mid-run only risks losing in-flight bumps.
namespace detail {
inline std::atomic<bool> g_counters_enabled{false};
}  // namespace detail

inline bool counters_enabled() {
  return detail::g_counters_enabled.load(std::memory_order_relaxed);
}
inline void set_counters_enabled(bool on) {
  detail::g_counters_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic event count, sharded to keep concurrent writers off each
/// other's cache lines. add() is wait-free; value() is a sum over shards
/// (exact once writers quiesce, approximate while they run).
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t n = 1) noexcept;
  std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-write-wins instantaneous value (e.g. configured worker count).
class Gauge {
 public:
  void set(double v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated duration: number of recorded intervals and their total
/// nanoseconds. Record frequency is per-phase, not per-event, so two
/// counters (no sharding subtlety beyond Counter's) are plenty.
class Timer {
 public:
  void record(std::uint64_t nanos) noexcept {
    count_.add(1);
    nanos_.add(nanos);
  }
  std::uint64_t count() const noexcept { return count_.value(); }
  std::uint64_t total_nanos() const noexcept { return nanos_.value(); }
  void reset() noexcept {
    count_.reset();
    nanos_.reset();
  }

 private:
  Counter count_;
  Counter nanos_;
};

/// RAII interval recorder. Reads the clock only when counters are enabled
/// at construction, so a disabled ScopedTimer is two branches.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;  ///< null when counters were disabled at construction
  std::uint64_t start_nanos_ = 0;
};

/// Named instrument registry. Instruments are created on first lookup and
/// never destroyed until the registry is, so a site may cache the returned
/// reference (`static obs::Counter& c = Registry::global().counter(...)`)
/// and pay the map lookup once.
class Registry {
 public:
  /// The process-wide registry every instrumentation site uses.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. Thread-safe; the reference stays valid for the
  /// registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);

  struct TimerValue {
    std::uint64_t count = 0;
    std::uint64_t total_nanos = 0;
  };
  /// Point-in-time copy of every instrument, keys sorted (std::map).
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, TimerValue> timers;
  };
  Snapshot snapshot() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "timers": {...}}
  /// with keys in sorted order (stable across runs; no dependency).
  void write_json(std::ostream& out) const;

  /// write_json to `path`; throws esched::Error naming the path when the
  /// file cannot be opened or fully written.
  void write_json_file(const std::string& path) const;

  /// Zero every registered instrument (names stay registered).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

}  // namespace esched::obs
