#include "run/thread_pool.hpp"

namespace esched::run {

namespace {
thread_local std::size_t t_worker_index = ThreadPool::npos;
}  // namespace

std::size_t ThreadPool::current_index() { return t_worker_index; }

ThreadPool::ThreadPool(std::size_t threads) {
  ESCHED_REQUIRE(threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      t_worker_index = i;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

std::size_t ThreadPool::tasks_run() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_run_;
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ESCHED_REQUIRE(accepting_, "submit() on a shut-down thread pool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!accepting_ && workers_.empty()) return;
    accepting_ = false;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return !queue_.empty() || !accepting_; });
      if (queue_.empty()) return;  // shutdown and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task captures any exception into the future; a raw callable
    // that throws would terminate, so submit() always wraps.
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++tasks_run_;
    }
  }
}

}  // namespace esched::run
