// Multi-process sweep execution: a pool of esched-worker subprocesses
// driven over pipes by a single-threaded poll() supervisor.
//
// Why processes when run/sweep.hpp already has threads: isolation. A
// worker that segfaults, leaks until the OOM killer arrives, or wedges in
// a pathological cell takes down *one task attempt*, not the whole sweep.
// The supervisor owns the full failure model:
//
//  * Worker death — signal, nonzero exit, or EOF/short read mid-frame —
//    is detected from the pipe, classified via waitpid, and the in-flight
//    task is requeued onto a freshly spawned worker.
//  * Protocol corruption — bad magic/version/length or a payload CRC
//    mismatch (run/wire.hpp) — is treated like a death: the worker can no
//    longer be trusted, so it is killed and replaced.
//  * Hangs — a per-task wall-clock timeout (SubprocessPoolConfig::
//    task_timeout_seconds) after which the worker is SIGKILLed and the
//    task requeued.
//  * Retries use capped exponential backoff and a per-task attempt
//    budget; exhausting the budget raises esched::Error naming the cell
//    and every failed attempt. A kError frame (deterministic failure:
//    bad spec, invalid trace) fails fast instead — retrying a
//    deterministic failure can only fail the same way again.
//
// Determinism: workers rebuild each cell from its declarative JobSpec
// (run/spec.hpp), every builder is deterministic in the spec, and results
// are returned in submission order — so a multi-process sweep is
// bit-identical (results_identical) to the in-process 1-thread reference,
// including under injected faults (run/fault.hpp), because a retried
// attempt reruns the same deterministic simulation.
//
// The supervisor itself is single-threaded: one poll() loop multiplexes
// every worker pipe, timeout deadline and retry ready-time. No locks, no
// signal handlers (SIGPIPE is ignored for the duration of run()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "run/spec.hpp"
#include "run/sweep.hpp"
#include "sim/result.hpp"

namespace esched::obs {
class Tracer;
}  // namespace esched::obs

namespace esched::run {

/// Supervisor knobs. The defaults match the bench CLI defaults
/// (bench/common.cpp) so drivers and tests agree on behaviour.
struct SubprocessPoolConfig {
  /// Worker process count; 0 = SweepRunner::default_jobs() (ESCHED_JOBS
  /// or hardware concurrency), capped at the task count.
  std::size_t workers = 0;
  /// Per-task wall-clock timeout in seconds; expiry SIGKILLs the worker
  /// and requeues the task. 0 disables the timeout.
  double task_timeout_seconds = 0.0;
  /// Attempt budget per task (first run + retries). Must be >= 1.
  std::uint32_t max_attempts = 3;
  /// Backoff before retry k (1-based) is
  /// min(backoff_max_seconds, backoff_initial_seconds * 2^(k-1)).
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;
  /// esched-worker binary; empty = find_worker().
  std::string worker_path;
};

/// The multi-process twin of SweepRunner. One instance may run() multiple
/// sweeps; workers are spawned per run and reaped before run returns.
class SubprocessPool {
 public:
  explicit SubprocessPool(SubprocessPoolConfig config = {});

  /// Locate the esched-worker binary: the ESCHED_WORKER environment
  /// variable if set, else next to this executable, else one directory
  /// up (the build-tree layout). Returns "" when none is executable.
  static std::string find_worker();

  /// True when multi-process execution can work here: find_worker()
  /// succeeds (fork/pipe are assumed on any platform this builds on).
  static bool available();

  /// Execute every spec; results in submission order, bit-identical to
  /// the in-process reference. Throws esched::Error when a cell
  /// exhausts its attempt budget (naming the cell and each failure),
  /// when a worker reports a deterministic kError, or when the worker
  /// binary cannot be spawned. All workers are reaped before any throw.
  std::vector<sim::SimResult> run(const std::vector<JobSpec>& sweep);

  /// Counters from the most recent run(). cpu_seconds and the per-task
  /// durations measure supervisor-observed round-trip times (dispatch to
  /// answer) of *successful* attempts.
  const SweepStats& last_stats() const { return stats_; }

  /// Same contract as SweepRunner::set_progress. Calls arrive on the
  /// supervising thread; a throwing callback settles the pool (workers
  /// reaped) before the exception propagates.
  void set_progress(ProgressCallback callback) {
    progress_ = std::move(callback);
  }

  /// Optional tracer: worker lifetimes and task round-trips are emitted
  /// as Chrome "X" complete spans on per-worker tracks (1000 + slot).
  /// Non-owning; must outlive run().
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  const SubprocessPoolConfig& config() const { return config_; }

 private:
  SubprocessPoolConfig config_;
  SweepStats stats_;
  ProgressCallback progress_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace esched::run
