#include "run/proc.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include <unordered_map>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "run/endpoint.hpp"
#include "run/wire.hpp"
#include "util/error.hpp"

namespace esched::run {

namespace {

using Clock = EndpointClock;

/// Worker-lifetime / task spans go on tracks 1000+slot so they never
/// collide with the per-thread B/E tracks of the in-process runner.
constexpr std::uint32_t kTrackBase = 1000;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Pool instrumentation, gated like every other obs site.
void bump(const char* name) {
  if (!obs::counters_enabled()) return;
  obs::Registry::global().counter(name).add();
}

/// One worker subprocess and the supervisor's view of it: the process
/// handle, the shared in-flight bookkeeping, and the partial-frame
/// reassembly buffer (all from run/endpoint.hpp).
struct Worker {
  WorkerProcess proc;
  Endpoint ep;
  FrameAssembler frames;
  Clock::time_point spawned{};
};

/// The single-run supervisor state machine. A throwing path anywhere in
/// step() leaves workers running; SubprocessPool::run catches, force-kills
/// and reaps every worker, then rethrows — no zombies, ever.
class Supervisor {
 public:
  Supervisor(const SubprocessPoolConfig& config, std::string worker_path,
             const std::vector<JobSpec>& sweep, SweepStats& stats,
             const ProgressCallback& progress, obs::Tracer* tracer)
      : config_(config),
        worker_path_(std::move(worker_path)),
        sweep_(sweep),
        stats_(stats),
        progress_(progress),
        tracer_(tracer) {}

  std::vector<sim::SimResult> run() {
    const std::size_t n = sweep_.size();
    results_.resize(n);
    payloads_.reserve(n);
    for (const JobSpec& spec : sweep_) {
      payloads_.push_back(wire::encode_job(spec));  // throws on bad spec
    }
    wall_start_ = Clock::now();
    RetryPolicy retry;
    retry.max_attempts = config_.max_attempts;
    retry.backoff_initial_seconds = config_.backoff_initial_seconds;
    retry.backoff_max_seconds = config_.backoff_max_seconds;
    ledger_.emplace(sweep_, retry, wall_start_);

    const std::size_t worker_count = std::max<std::size_t>(
        1, std::min(config_.workers != 0 ? config_.workers
                                         : SweepRunner::default_jobs(),
                    n));
    stats_.threads = worker_count;
    stats_.worker_busy_seconds.assign(worker_count, 0.0);
    workers_.resize(worker_count);
    for (std::size_t slot = 0; slot < worker_count; ++slot) {
      spawn(slot);
    }

    while (!ledger_->all_done()) step();

    shutdown(/*force=*/false);
    stats_.wall_seconds = seconds_since(wall_start_);
    finalize_task_stats();
    std::vector<sim::SimResult> out;
    out.reserve(n);
    for (sim::SimResult& r : results_) out.push_back(std::move(r));
    return out;
  }

  /// Kill and reap every still-live worker. Idempotent; never throws.
  void shutdown(bool force) noexcept {
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      Worker& w = workers_[slot];
      if (!w.proc.alive()) continue;
      if (force) {
        ::kill(w.proc.pid, SIGKILL);
      } else if (w.proc.to_child >= 0) {
        // Graceful: EOF on stdin is the worker's shutdown signal.
        ::close(w.proc.to_child);
        w.proc.to_child = -1;
      }
      reap(slot);
    }
  }

 private:
  // ---- lifecycle ------------------------------------------------------

  void spawn(std::size_t slot) {
    Worker& w = workers_[slot];
    w.proc = spawn_worker(worker_path_);
    w.frames.reset();
    w.ep.clear();
    w.spawned = Clock::now();
    bump("pool.spawns");
  }

  /// reap_worker + emit the worker-lifetime span. Returns the death
  /// description ("exited with status 0", "killed by signal 9").
  std::string reap(std::size_t slot) noexcept {
    Worker& w = workers_[slot];
    if (!w.proc.alive()) return "already reaped";
    const pid_t pid = w.proc.pid;
    const std::string death = reap_worker(w.proc, &exit_status_);
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->complete_span("worker:" + std::to_string(slot) + " pid " +
                                 std::to_string(pid),
                             "pool", w.spawned, Clock::now(),
                             kTrackBase + static_cast<std::uint32_t>(slot));
    }
    w.frames.reset();
    return death;
  }

  // ---- dispatch -------------------------------------------------------

  void assign_ready(Clock::time_point now) {
    for (std::size_t slot = 0;
         slot < workers_.size() && ledger_->has_pending(); ++slot) {
      Worker& w = workers_[slot];
      if (!w.proc.alive() || w.ep.busy()) continue;
      const std::size_t task = ledger_->claim_ready(now);
      if (task == kNoTask) return;  // all gated on backoff
      dispatch(slot, task);
    }
  }

  void dispatch(std::size_t slot, std::size_t task) {
    Worker& w = workers_[slot];
    const std::uint32_t attempt = ledger_->begin_attempt(task);
    w.ep.begin(task, attempt, Clock::now(), config_.task_timeout_seconds);
    const std::vector<std::uint8_t> frame =
        wire::encode_frame(wire::FrameType::kJob,
                           static_cast<std::uint32_t>(task), attempt,
                           payloads_[task]);
    if (!write_all_fd(w.proc.to_child, frame.data(), frame.size())) {
      // The worker died before accepting the job (EPIPE): same handling
      // as a death mid-task, which also classifies exec failures.
      fail_attempt(slot, "died before accepting the job (" +
                             describe_death(slot) + ")");
    }
  }

  // ---- failure handling -----------------------------------------------

  /// SIGKILL (if still alive) + reap, returning the death description.
  std::string describe_death(std::size_t slot) {
    Worker& w = workers_[slot];
    if (w.proc.alive()) ::kill(w.proc.pid, SIGKILL);
    return reap(slot);
  }

  [[noreturn]] void throw_exec_failure() const {
    throw Error("SubprocessPool: cannot execute worker binary \"" +
                worker_path_ +
                "\" (exit 127 from exec); set ESCHED_WORKER or build "
                "the esched-worker target");
  }

  /// An attempt on `slot`'s in-flight task failed for `reason`: record
  /// it, enforce the attempt budget, requeue with backoff, respawn the
  /// worker. Throws esched::Error when the budget is exhausted or the
  /// worker binary cannot exec.
  void fail_attempt(std::size_t slot, const std::string& reason) {
    Worker& w = workers_[slot];
    const std::size_t task = w.ep.task;
    w.ep.clear();
    if (exit_status_ == 127) throw_exec_failure();
    bump("pool.worker_deaths");
    ledger_->fail_attempt(task, reason, Clock::now());  // throws on budget
    bump("pool.retries");
    spawn(slot);
    bump("pool.respawns");
  }

  // ---- the poll loop --------------------------------------------------

  void step() {
    Clock::time_point now = Clock::now();
    assign_ready(now);

    std::vector<struct pollfd> fds;
    std::vector<std::size_t> slots;
    fds.reserve(workers_.size());
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      if (!workers_[slot].proc.alive()) continue;
      fds.push_back({workers_[slot].proc.from_child, POLLIN, 0});
      slots.push_back(slot);
    }
    ESCHED_REQUIRE(!fds.empty(), "SubprocessPool: no live workers");

    const int timeout_ms = next_timeout_ms(now);
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw Error("SubprocessPool: poll failed: " +
                  std::string(std::strerror(errno)));
    }
    if (rc > 0) {
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        on_readable(slots[i]);
        if (ledger_->all_done()) return;
      }
    }
    // Deadlines, after any answers that beat the clock were consumed.
    now = Clock::now();
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      Worker& w = workers_[slot];
      if (!w.proc.alive() || !w.ep.deadline_expired(now)) continue;
      bump("pool.timeouts");
      const std::string death = describe_death(slot);
      fail_attempt(slot, "timed out after " +
                             format_seconds(config_.task_timeout_seconds) +
                             "s (" + death + ")");
    }
  }

  /// Nearest of every worker deadline and every backoff ready-time, as a
  /// poll timeout; -1 (wait forever) when neither applies.
  int next_timeout_ms(Clock::time_point now) const {
    bool have = false;
    Clock::time_point nearest{};
    const auto consider = [&](Clock::time_point tp) {
      if (!have || tp < nearest) {
        nearest = tp;
        have = true;
      }
    };
    for (const Worker& w : workers_) {
      if (w.proc.alive() && w.ep.busy() && w.ep.has_deadline) {
        consider(w.ep.deadline);
      }
    }
    Clock::time_point ready{};
    if (ledger_->next_ready_at(ready)) consider(ready);
    if (!have) return -1;
    const double sec =
        std::chrono::duration<double>(nearest - now).count();
    if (sec <= 0.0) return 0;
    const double ms = std::ceil(sec * 1000.0);
    return ms > 60000.0 ? 60000 : static_cast<int>(ms);
  }

  void on_readable(std::size_t slot) {
    Worker& w = workers_[slot];
    std::uint8_t chunk[65536];
    const ssize_t n = ::read(w.proc.from_child, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) return;
      on_worker_gone(slot, "read failed: " +
                               std::string(std::strerror(errno)));
      return;
    }
    if (n == 0) {
      on_worker_gone(slot, w.frames.mid_frame() ? "mid-frame" : "");
      return;
    }
    w.frames.append(chunk, static_cast<std::size_t>(n));
    process_frames(slot);
  }

  /// EOF (or read error) on a worker pipe: classify the death and either
  /// requeue its in-flight task or, for an idle worker, just respawn.
  void on_worker_gone(std::size_t slot, const std::string& detail) {
    Worker& w = workers_[slot];
    const bool had_task = w.ep.busy();
    std::string death = reap(slot);
    if (!detail.empty()) death += ", " + detail;
    if (exit_status_ == 127) throw_exec_failure();
    if (had_task) {
      fail_attempt(slot, "worker " + death + " before answering");
    } else if (!ledger_->all_done()) {
      bump("pool.worker_deaths");
      spawn(slot);
      bump("pool.respawns");
    }
  }

  void on_corrupt(std::size_t slot, const std::string& what) {
    bump("pool.corrupt_frames");
    const std::string death = describe_death(slot);
    Worker& w = workers_[slot];
    if (!w.ep.busy()) {
      // Garbage from an idle worker: nothing to requeue, just replace it.
      bump("pool.worker_deaths");
      spawn(slot);
      bump("pool.respawns");
      return;
    }
    fail_attempt(slot, "protocol corruption (" + what + "; worker " +
                           death + ")");
  }

  void process_frames(std::size_t slot) {
    Worker& w = workers_[slot];
    while (w.proc.alive()) {
      wire::FrameHeader header;
      std::vector<std::uint8_t> body;
      std::string corrupt;
      const FrameAssembler::Status status = w.frames.next(header, body, corrupt);
      if (status == FrameAssembler::Status::kNeedMore) return;
      if (status == FrameAssembler::Status::kCorrupt) {
        on_corrupt(slot, corrupt);
        return;
      }
      if (!w.ep.busy() ||
          header.task_id != static_cast<std::uint32_t>(w.ep.task) ||
          header.attempt != w.ep.attempt) {
        on_corrupt(slot, "answer for a task this worker does not hold");
        return;
      }
      if (header.type == wire::FrameType::kError) {
        std::string message;
        try {
          message = wire::decode_error(body);
        } catch (const Error&) {
          message = "(undecodable error payload)";
        }
        // Deterministic failure: retrying reruns the same deterministic
        // simulation, so fail the sweep fast with the worker's message.
        ledger_->fail_deterministic(w.ep.task, message);
      }
      sim::SimResult result;
      try {
        ESCHED_REQUIRE(header.type == wire::FrameType::kResult,
                       "unexpected frame type");
        result = wire::decode_result(body);
      } catch (const Error& e) {
        on_corrupt(slot, e.what());
        return;
      }
      complete(slot, std::move(result));
    }
  }

  void complete(std::size_t slot, sim::SimResult result) {
    Worker& w = workers_[slot];
    const std::size_t task = w.ep.task;
    const double seconds = seconds_since(w.ep.dispatched);
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->complete_span(
          "task:" +
              (sweep_[task].label.empty() ? std::to_string(task)
                                          : sweep_[task].label) +
              "#" + std::to_string(w.ep.attempt),
          "pool", w.ep.dispatched, Clock::now(),
          kTrackBase + static_cast<std::uint32_t>(slot));
    }
    w.ep.clear();
    results_[task] = std::move(result);
    ledger_->complete(task);
    task_seconds_.push_back(seconds);
    stats_.worker_busy_seconds[slot] += seconds;
    if (progress_) {
      SweepProgress p;
      p.done = ledger_->done_count();
      p.total = sweep_.size();
      p.elapsed_seconds = seconds_since(wall_start_);
      p.eta_seconds = p.elapsed_seconds / static_cast<double>(p.done) *
                      static_cast<double>(p.total - p.done);
      progress_(p);
    }
  }

  void finalize_task_stats() {
    stats_.tasks = sweep_.size();
    if (task_seconds_.empty()) return;
    stats_.task_min_seconds = task_seconds_.front();
    stats_.task_max_seconds = task_seconds_.front();
    for (const double s : task_seconds_) {
      stats_.cpu_seconds += s;
      stats_.task_min_seconds = std::min(stats_.task_min_seconds, s);
      stats_.task_max_seconds = std::max(stats_.task_max_seconds, s);
    }
    stats_.task_mean_seconds =
        stats_.cpu_seconds / static_cast<double>(task_seconds_.size());
  }

  static std::string format_seconds(double s) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", s);
    return buf;
  }

  const SubprocessPoolConfig& config_;
  const std::string worker_path_;
  const std::vector<JobSpec>& sweep_;
  SweepStats& stats_;
  const ProgressCallback& progress_;
  obs::Tracer* tracer_;

  std::vector<Worker> workers_;
  std::optional<TaskLedger> ledger_;
  std::vector<std::vector<std::uint8_t>> payloads_;
  std::vector<sim::SimResult> results_;
  std::vector<double> task_seconds_;
  int exit_status_ = -1;  ///< last reaped worker's exit status (or -1)
  Clock::time_point wall_start_{};
};

}  // namespace

SubprocessPool::SubprocessPool(SubprocessPoolConfig config)
    : config_(std::move(config)) {
  ESCHED_REQUIRE(config_.max_attempts >= 1,
                 "SubprocessPool: max_attempts must be >= 1");
}

std::string SubprocessPool::find_worker() {
  return find_sibling_binary("ESCHED_WORKER", "esched-worker");
}

bool SubprocessPool::available() { return !find_worker().empty(); }

std::vector<sim::SimResult> SubprocessPool::run(
    const std::vector<JobSpec>& sweep) {
  stats_ = SweepStats{};
  stats_.tasks = sweep.size();
  if (sweep.empty()) return {};
  std::string worker = config_.worker_path;
  if (worker.empty()) worker = find_worker();
  ESCHED_REQUIRE(!worker.empty(),
                 "SubprocessPool: esched-worker binary not found (set "
                 "ESCHED_WORKER or pass SubprocessPoolConfig::worker_path)");

  // Identical-cell dedup: dispatch one representative per distinct
  // cell_key and copy its result into the duplicates (equal cell_key
  // implies bit-identical results). Trajectory sharing stays in-process
  // only — a leader's recorded power signal cannot cross the wire.
  // ESCHED_PREFIX_SHARE=off disables this too (differential testing).
  const CellGroups groups =
      group_cells(sweep, SweepRunner::prefix_sharing_default());
  std::vector<JobSpec> uniques;
  uniques.reserve(groups.unique_indices.size());
  for (const std::size_t i : groups.unique_indices) {
    uniques.push_back(sweep[i]);
  }

  // The supervisor reports progress against the deduped sweep; rescale
  // to the caller-visible total (duplicates settle after the run).
  ProgressCallback progress;
  if (progress_) {
    progress = [this, total = sweep.size()](const SweepProgress& inner) {
      SweepProgress p = inner;
      p.total = total;
      p.eta_seconds = p.done > 0 ? p.elapsed_seconds /
                                       static_cast<double>(p.done) *
                                       static_cast<double>(total - p.done)
                                 : 0.0;
      progress_(p);
    };
  }

  SigpipeGuard sigpipe;
  Supervisor supervisor(config_, std::move(worker), uniques, stats_,
                        progress, tracer_);
  std::vector<sim::SimResult> unique_results;
  try {
    unique_results = supervisor.run();
  } catch (...) {
    // Any failure — budget exhaustion, deterministic kError, a throwing
    // progress callback — settles the pool before propagating: every
    // worker killed and reaped, no zombies, no half-read pipes.
    supervisor.shutdown(/*force=*/true);
    throw;
  }

  const auto wall_start = Clock::now();  // for duplicate progress stamps
  std::vector<sim::SimResult> results;
  results.reserve(sweep.size());
  std::size_t done = uniques.size();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    results.push_back(unique_results[groups.rep[i]]);
    if (groups.unique_indices[groups.rep[i]] == i) continue;
    // A duplicate: count it toward progress now that it has a result.
    if (progress_) {
      SweepProgress p;
      p.done = ++done;
      p.total = sweep.size();
      p.elapsed_seconds = stats_.wall_seconds + seconds_since(wall_start);
      p.eta_seconds = 0.0;
      progress_(p);
    }
  }
  stats_.tasks = sweep.size();
  stats_.simulated_cells = uniques.size();
  stats_.copied_cells = sweep.size() - uniques.size();
  return results;
}

}  // namespace esched::run
