#include "run/proc.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "run/wire.hpp"
#include "util/error.hpp"

namespace esched::run {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kNoTask = std::numeric_limits<std::size_t>::max();
/// Worker-lifetime / task spans go on tracks 1000+slot so they never
/// collide with the per-thread B/E tracks of the in-process runner.
constexpr std::uint32_t kTrackBase = 1000;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Pool instrumentation, gated like every other obs site.
void bump(const char* name) {
  if (!obs::counters_enabled()) return;
  obs::Registry::global().counter(name).add();
}

/// Ignore SIGPIPE for the duration of a run: writing a job to a worker
/// that just died must surface as EPIPE (a classifiable failure), not
/// kill the supervisor. Restores the previous disposition on scope exit.
class SigpipeGuard {
 public:
  SigpipeGuard() { previous_ = ::signal(SIGPIPE, SIG_IGN); }
  ~SigpipeGuard() { ::signal(SIGPIPE, previous_); }
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  void (*previous_)(int) = SIG_DFL;
};

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::string exe_directory() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  const std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// One worker subprocess and the supervisor's view of it.
struct Worker {
  pid_t pid = -1;
  int to_child = -1;    ///< supervisor writes kJob frames
  int from_child = -1;  ///< supervisor reads kResult/kError frames
  std::vector<std::uint8_t> buf;  ///< partial inbound frame bytes
  std::size_t task = kNoTask;     ///< in-flight task, kNoTask when idle
  std::uint32_t attempt = 0;      ///< attempt number of the in-flight task
  bool has_deadline = false;
  Clock::time_point deadline{};
  Clock::time_point dispatched{};
  Clock::time_point spawned{};
};

/// Per-task retry bookkeeping.
struct TaskState {
  std::uint32_t attempts = 0;  ///< attempts started (dispatched) so far
  std::vector<std::string> failures;  ///< one line per failed attempt
  Clock::time_point ready_at{};       ///< backoff gate for redispatch
  bool queued = false;
  bool done = false;
};

/// The single-run supervisor state machine. A throwing path anywhere in
/// step() leaves workers running; SubprocessPool::run catches, force-kills
/// and reaps every worker, then rethrows — no zombies, ever.
class Supervisor {
 public:
  Supervisor(const SubprocessPoolConfig& config, std::string worker_path,
             const std::vector<JobSpec>& sweep, SweepStats& stats,
             const ProgressCallback& progress, obs::Tracer* tracer)
      : config_(config),
        worker_path_(std::move(worker_path)),
        sweep_(sweep),
        stats_(stats),
        progress_(progress),
        tracer_(tracer) {}

  std::vector<sim::SimResult> run() {
    const std::size_t n = sweep_.size();
    results_.resize(n);
    tasks_.resize(n);
    payloads_.reserve(n);
    for (const JobSpec& spec : sweep_) {
      payloads_.push_back(wire::encode_job(spec));  // throws on bad spec
    }
    wall_start_ = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      tasks_[i].ready_at = wall_start_;
      tasks_[i].queued = true;
      pending_.push_back(i);
    }

    const std::size_t worker_count = std::max<std::size_t>(
        1, std::min(config_.workers != 0 ? config_.workers
                                         : SweepRunner::default_jobs(),
                    n));
    stats_.threads = worker_count;
    stats_.worker_busy_seconds.assign(worker_count, 0.0);
    workers_.resize(worker_count);
    for (std::size_t slot = 0; slot < worker_count; ++slot) {
      spawn(slot);
    }

    while (done_ < n) step();

    shutdown(/*force=*/false);
    stats_.wall_seconds = seconds_since(wall_start_);
    finalize_task_stats();
    std::vector<sim::SimResult> out;
    out.reserve(n);
    for (sim::SimResult& r : results_) out.push_back(std::move(r));
    return out;
  }

  /// Kill and reap every still-live worker. Idempotent; never throws.
  void shutdown(bool force) noexcept {
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      Worker& w = workers_[slot];
      if (w.pid < 0) continue;
      if (force) {
        ::kill(w.pid, SIGKILL);
      } else if (w.to_child >= 0) {
        // Graceful: EOF on stdin is the worker's shutdown signal.
        ::close(w.to_child);
        w.to_child = -1;
      }
      reap(slot);
    }
  }

 private:
  // ---- lifecycle ------------------------------------------------------

  void spawn(std::size_t slot) {
    Worker& w = workers_[slot];
    // CLOEXEC on every end: a sibling worker forked later must not
    // inherit this worker's pipes, or its death would never read as EOF.
    const auto cloexec_pipe = [](int fds[2]) {
      if (::pipe(fds) != 0) return false;
      ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
      ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
      return true;
    };
    int to_child[2];
    int from_child[2];
    ESCHED_REQUIRE(cloexec_pipe(to_child),
                   "SubprocessPool: pipe failed: " +
                       std::string(std::strerror(errno)));
    if (!cloexec_pipe(from_child)) {
      ::close(to_child[0]);
      ::close(to_child[1]);
      throw Error("SubprocessPool: pipe failed: " +
                  std::string(std::strerror(errno)));
    }
    const pid_t pid = ::fork();
    ESCHED_REQUIRE(pid >= 0, "SubprocessPool: fork failed: " +
                                 std::string(std::strerror(errno)));
    if (pid == 0) {
      // Child. dup2 clears O_CLOEXEC on the duplicated fds — exactly the
      // two ends the worker must keep.
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      char* argv[] = {const_cast<char*>(worker_path_.c_str()), nullptr};
      ::execv(worker_path_.c_str(), argv);
      ::_exit(127);  // the supervisor maps 127 to "exec failed"
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    w.pid = pid;
    w.to_child = to_child[1];
    w.from_child = from_child[0];
    w.buf.clear();
    w.task = kNoTask;
    w.has_deadline = false;
    w.spawned = Clock::now();
    bump("pool.spawns");
  }

  /// waitpid + close fds + emit the worker-lifetime span. Returns a
  /// human-readable death description ("exited with status 0", "killed
  /// by signal 9").
  std::string reap(std::size_t slot) noexcept {
    Worker& w = workers_[slot];
    if (w.pid < 0) return "already reaped";
    exit_status_ = -1;
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(w.pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    if (w.to_child >= 0) ::close(w.to_child);
    if (w.from_child >= 0) ::close(w.from_child);
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->complete_span("worker:" + std::to_string(slot) + " pid " +
                                 std::to_string(w.pid),
                             "pool", w.spawned, Clock::now(),
                             kTrackBase + static_cast<std::uint32_t>(slot));
    }
    const pid_t pid = w.pid;
    w.pid = -1;
    w.to_child = -1;
    w.from_child = -1;
    w.buf.clear();
    if (r != pid) return "waitpid failed";
    if (WIFSIGNALED(status)) {
      return "killed by signal " + std::to_string(WTERMSIG(status));
    }
    if (WIFEXITED(status)) {
      exit_status_ = WEXITSTATUS(status);
      return "exited with status " + std::to_string(exit_status_);
    }
    return "ended with wait status " + std::to_string(status);
  }

  // ---- dispatch -------------------------------------------------------

  void assign_ready(Clock::time_point now) {
    for (std::size_t slot = 0;
         slot < workers_.size() && !pending_.empty(); ++slot) {
      Worker& w = workers_[slot];
      if (w.pid < 0 || w.task != kNoTask) continue;
      // First pending task whose backoff has elapsed, in requeue order.
      std::size_t pick = pending_.size();
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (tasks_[pending_[i]].ready_at <= now) {
          pick = i;
          break;
        }
      }
      if (pick == pending_.size()) return;  // all gated on backoff
      const std::size_t task = pending_[pick];
      pending_.erase(pending_.begin() +
                     static_cast<std::ptrdiff_t>(pick));
      tasks_[task].queued = false;
      dispatch(slot, task);
    }
  }

  void dispatch(std::size_t slot, std::size_t task) {
    Worker& w = workers_[slot];
    TaskState& t = tasks_[task];
    w.task = task;
    w.attempt = t.attempts;
    ++t.attempts;
    w.dispatched = Clock::now();
    w.has_deadline = config_.task_timeout_seconds > 0.0;
    if (w.has_deadline) {
      w.deadline =
          w.dispatched + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 config_.task_timeout_seconds));
    }
    const std::vector<std::uint8_t> frame =
        wire::encode_frame(wire::FrameType::kJob,
                           static_cast<std::uint32_t>(task), w.attempt,
                           payloads_[task]);
    if (!write_all(w.to_child, frame.data(), frame.size())) {
      // The worker died before accepting the job (EPIPE): same handling
      // as a death mid-task, which also classifies exec failures.
      fail_attempt(slot, "died before accepting the job (" +
                             describe_death(slot) + ")");
    }
  }

  // ---- failure handling -----------------------------------------------

  /// SIGKILL (if still alive) + reap, returning the death description.
  std::string describe_death(std::size_t slot) {
    Worker& w = workers_[slot];
    if (w.pid >= 0) ::kill(w.pid, SIGKILL);
    return reap(slot);
  }

  /// An attempt on `slot`'s in-flight task failed for `reason`: record
  /// it, enforce the attempt budget, requeue with backoff, respawn the
  /// worker. Throws esched::Error when the budget is exhausted or the
  /// worker binary cannot exec.
  void fail_attempt(std::size_t slot, const std::string& reason) {
    Worker& w = workers_[slot];
    const std::size_t task = w.task;
    w.task = kNoTask;
    w.has_deadline = false;
    if (exit_status_ == 127) {
      throw Error("SubprocessPool: cannot execute worker binary \"" +
                  worker_path_ +
                  "\" (exit 127 from exec); set ESCHED_WORKER or build "
                  "the esched-worker target");
    }
    bump("pool.worker_deaths");
    TaskState& t = tasks_[task];
    t.failures.push_back("attempt " + std::to_string(t.attempts) + ": " +
                         reason);
    if (t.attempts >= config_.max_attempts) {
      throw Error("sweep cell \"" + sweep_[task].label + "\" (task " +
                  std::to_string(task) + ") failed after " +
                  std::to_string(t.attempts) + " attempt(s): " +
                  join_failures(t.failures));
    }
    bump("pool.retries");
    const double backoff =
        std::min(config_.backoff_max_seconds,
                 config_.backoff_initial_seconds *
                     std::ldexp(1.0, static_cast<int>(t.attempts) - 1));
    t.ready_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(backoff));
    t.queued = true;
    pending_.push_back(task);
    spawn(slot);
    bump("pool.respawns");
  }

  static std::string join_failures(const std::vector<std::string>& lines) {
    std::string out;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      out += (i == 0 ? "[" : "; [") + lines[i] + "]";
    }
    return out;
  }

  // ---- the poll loop --------------------------------------------------

  void step() {
    Clock::time_point now = Clock::now();
    assign_ready(now);

    std::vector<struct pollfd> fds;
    std::vector<std::size_t> slots;
    fds.reserve(workers_.size());
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      if (workers_[slot].pid < 0) continue;
      fds.push_back({workers_[slot].from_child, POLLIN, 0});
      slots.push_back(slot);
    }
    ESCHED_REQUIRE(!fds.empty(), "SubprocessPool: no live workers");

    const int timeout_ms = next_timeout_ms(now);
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      throw Error("SubprocessPool: poll failed: " +
                  std::string(std::strerror(errno)));
    }
    now = Clock::now();
    if (rc > 0) {
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        on_readable(slots[i]);
        if (done_ >= sweep_.size()) return;
      }
    }
    // Deadlines, after any answers that beat the clock were consumed.
    now = Clock::now();
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      Worker& w = workers_[slot];
      if (w.pid < 0 || w.task == kNoTask || !w.has_deadline) continue;
      if (w.deadline > now) continue;
      bump("pool.timeouts");
      const std::string death = describe_death(slot);
      fail_attempt(slot, "timed out after " +
                             format_seconds(config_.task_timeout_seconds) +
                             "s (" + death + ")");
    }
  }

  /// Nearest of every worker deadline and every backoff ready-time, as a
  /// poll timeout; -1 (wait forever) when neither applies.
  int next_timeout_ms(Clock::time_point now) const {
    bool have = false;
    Clock::time_point nearest{};
    const auto consider = [&](Clock::time_point tp) {
      if (!have || tp < nearest) {
        nearest = tp;
        have = true;
      }
    };
    for (const Worker& w : workers_) {
      if (w.pid >= 0 && w.task != kNoTask && w.has_deadline) {
        consider(w.deadline);
      }
    }
    for (const std::size_t task : pending_) {
      consider(tasks_[task].ready_at);
    }
    if (!have) return -1;
    const double sec =
        std::chrono::duration<double>(nearest - now).count();
    if (sec <= 0.0) return 0;
    const double ms = std::ceil(sec * 1000.0);
    return ms > 60000.0 ? 60000 : static_cast<int>(ms);
  }

  void on_readable(std::size_t slot) {
    Worker& w = workers_[slot];
    std::uint8_t chunk[65536];
    const ssize_t n = ::read(w.from_child, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) return;
      on_worker_gone(slot, "read failed: " +
                               std::string(std::strerror(errno)));
      return;
    }
    if (n == 0) {
      on_worker_gone(slot, w.buf.empty() ? "" : "mid-frame");
      return;
    }
    w.buf.insert(w.buf.end(), chunk, chunk + n);
    process_frames(slot);
  }

  /// EOF (or read error) on a worker pipe: classify the death and either
  /// requeue its in-flight task or, for an idle worker, just respawn.
  void on_worker_gone(std::size_t slot, const std::string& detail) {
    Worker& w = workers_[slot];
    const bool had_task = w.task != kNoTask;
    std::string death = reap(slot);
    if (!detail.empty()) death += ", " + detail;
    if (exit_status_ == 127) {
      throw Error("SubprocessPool: cannot execute worker binary \"" +
                  worker_path_ +
                  "\" (exit 127 from exec); set ESCHED_WORKER or build "
                  "the esched-worker target");
    }
    if (had_task) {
      fail_attempt(slot, "worker " + death + " before answering");
    } else if (done_ < sweep_.size()) {
      bump("pool.worker_deaths");
      spawn(slot);
      bump("pool.respawns");
    }
  }

  void on_corrupt(std::size_t slot, const std::string& what) {
    bump("pool.corrupt_frames");
    const std::string death = describe_death(slot);
    Worker& w = workers_[slot];
    if (w.task == kNoTask) {
      // Garbage from an idle worker: nothing to requeue, just replace it.
      bump("pool.worker_deaths");
      spawn(slot);
      bump("pool.respawns");
      return;
    }
    fail_attempt(slot, "protocol corruption (" + what + "; worker " +
                           death + ")");
  }

  void process_frames(std::size_t slot) {
    Worker& w = workers_[slot];
    while (w.pid >= 0) {
      if (w.buf.size() < wire::kHeaderSize) return;
      wire::FrameHeader header;
      try {
        header = wire::decode_header(w.buf.data());
      } catch (const Error& e) {
        on_corrupt(slot, e.what());
        return;
      }
      const std::size_t frame_size = wire::kHeaderSize + header.payload_size;
      if (w.buf.size() < frame_size) return;
      const std::uint8_t* payload = w.buf.data() + wire::kHeaderSize;
      if (!wire::verify_payload(header, payload)) {
        on_corrupt(slot, "payload CRC mismatch");
        return;
      }
      if (w.task == kNoTask ||
          header.task_id != static_cast<std::uint32_t>(w.task) ||
          header.attempt != w.attempt) {
        on_corrupt(slot, "answer for a task this worker does not hold");
        return;
      }
      const std::vector<std::uint8_t> body(payload,
                                           payload + header.payload_size);
      w.buf.erase(w.buf.begin(),
                  w.buf.begin() + static_cast<std::ptrdiff_t>(frame_size));
      if (header.type == wire::FrameType::kError) {
        std::string message;
        try {
          message = wire::decode_error(body);
        } catch (const Error&) {
          message = "(undecodable error payload)";
        }
        // Deterministic failure: retrying reruns the same deterministic
        // simulation, so fail the sweep fast with the worker's message.
        throw Error("sweep cell \"" + sweep_[w.task].label + "\" (task " +
                    std::to_string(w.task) + ") failed: " + message);
      }
      sim::SimResult result;
      try {
        ESCHED_REQUIRE(header.type == wire::FrameType::kResult,
                       "unexpected frame type");
        result = wire::decode_result(body);
      } catch (const Error& e) {
        on_corrupt(slot, e.what());
        return;
      }
      complete(slot, std::move(result));
    }
  }

  void complete(std::size_t slot, sim::SimResult result) {
    Worker& w = workers_[slot];
    const std::size_t task = w.task;
    const double seconds = seconds_since(w.dispatched);
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->complete_span(
          "task:" +
              (sweep_[task].label.empty() ? std::to_string(task)
                                          : sweep_[task].label) +
              "#" + std::to_string(w.attempt),
          "pool", w.dispatched, Clock::now(),
          kTrackBase + static_cast<std::uint32_t>(slot));
    }
    w.task = kNoTask;
    w.has_deadline = false;
    results_[task] = std::move(result);
    tasks_[task].done = true;
    task_seconds_.push_back(seconds);
    stats_.worker_busy_seconds[slot] += seconds;
    ++done_;
    if (progress_) {
      SweepProgress p;
      p.done = done_;
      p.total = sweep_.size();
      p.elapsed_seconds = seconds_since(wall_start_);
      p.eta_seconds = p.elapsed_seconds / static_cast<double>(done_) *
                      static_cast<double>(sweep_.size() - done_);
      progress_(p);
    }
  }

  void finalize_task_stats() {
    stats_.tasks = sweep_.size();
    if (task_seconds_.empty()) return;
    stats_.task_min_seconds = task_seconds_.front();
    stats_.task_max_seconds = task_seconds_.front();
    for (const double s : task_seconds_) {
      stats_.cpu_seconds += s;
      stats_.task_min_seconds = std::min(stats_.task_min_seconds, s);
      stats_.task_max_seconds = std::max(stats_.task_max_seconds, s);
    }
    stats_.task_mean_seconds =
        stats_.cpu_seconds / static_cast<double>(task_seconds_.size());
  }

  static std::string format_seconds(double s) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", s);
    return buf;
  }

  const SubprocessPoolConfig& config_;
  const std::string worker_path_;
  const std::vector<JobSpec>& sweep_;
  SweepStats& stats_;
  const ProgressCallback& progress_;
  obs::Tracer* tracer_;

  std::vector<Worker> workers_;
  std::vector<TaskState> tasks_;
  std::vector<std::vector<std::uint8_t>> payloads_;
  std::vector<std::size_t> pending_;
  std::vector<sim::SimResult> results_;
  std::vector<double> task_seconds_;
  std::size_t done_ = 0;
  int exit_status_ = -1;  ///< last reaped worker's exit status (or -1)
  Clock::time_point wall_start_{};
};

}  // namespace

SubprocessPool::SubprocessPool(SubprocessPoolConfig config)
    : config_(std::move(config)) {
  ESCHED_REQUIRE(config_.max_attempts >= 1,
                 "SubprocessPool: max_attempts must be >= 1");
}

std::string SubprocessPool::find_worker() {
  if (const char* env = std::getenv("ESCHED_WORKER")) {
    if (*env != '\0' && ::access(env, X_OK) == 0) return env;
    return {};
  }
  const std::string dir = exe_directory();
  if (dir.empty()) return {};
  for (const char* rel : {"/esched-worker", "/../esched-worker"}) {
    const std::string candidate = dir + rel;
    if (::access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return {};
}

bool SubprocessPool::available() { return !find_worker().empty(); }

std::vector<sim::SimResult> SubprocessPool::run(
    const std::vector<JobSpec>& sweep) {
  stats_ = SweepStats{};
  stats_.tasks = sweep.size();
  if (sweep.empty()) return {};
  std::string worker = config_.worker_path;
  if (worker.empty()) worker = find_worker();
  ESCHED_REQUIRE(!worker.empty(),
                 "SubprocessPool: esched-worker binary not found (set "
                 "ESCHED_WORKER or pass SubprocessPoolConfig::worker_path)");

  SigpipeGuard sigpipe;
  Supervisor supervisor(config_, std::move(worker), sweep, stats_,
                        progress_, tracer_);
  try {
    return supervisor.run();
  } catch (...) {
    // Any failure — budget exhaustion, deterministic kError, a throwing
    // progress callback — settles the pool before propagating: every
    // worker killed and reaped, no zombies, no half-read pipes.
    supervisor.shutdown(/*force=*/true);
    throw;
  }
}

}  // namespace esched::run
