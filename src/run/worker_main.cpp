// esched-worker: the child half of the multi-process sweep (run/proc.hpp).
//
// Protocol: read kJob frames from stdin, rebuild the cell from its
// declarative JobSpec (run/spec.hpp), simulate, answer with one kResult
// frame on stdout; repeat until EOF on stdin (the supervisor closing the
// pipe is the graceful shutdown signal). A deterministic simulation error
// (bad spec, invalid trace) is answered with a kError frame — the
// supervisor fails fast on those, because retrying a deterministic
// failure can only fail again.
//
// Nothing else may touch stdout (the frame stream); diagnostics go to
// stderr, which the worker inherits from the supervisor.
//
// ESCHED_FAULT (run/fault.hpp) injects deterministic faults per
// (task_id, attempt) for CI: raise SIGKILL mid-task, hang until the
// supervisor's timeout kills us, or answer with a CRC-corrupted frame.
#include <csignal>
#include <cstdio>
#include <chrono>
#include <thread>
#include <vector>

#include <unistd.h>

#include "run/fault.hpp"
#include "run/spec.hpp"
#include "run/wire.hpp"
#include "util/error.hpp"

namespace {

using namespace esched;

/// Exit codes: 0 clean EOF shutdown, 2 protocol/configuration error.
/// (127 is reserved for "exec failed" in the supervisor's spawn path.)
constexpr int kProtocolError = 2;

/// Read exactly `size` bytes; returns false on clean EOF at offset 0,
/// dies (exit 2) on a partial frame — a supervisor never truncates.
bool read_exact(std::uint8_t* buf, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(STDIN_FILENO, buf + done, size - done);
    if (n == 0) {
      if (done == 0) return false;
      std::fprintf(stderr, "esched-worker: truncated frame (%zu/%zu)\n",
                   done, size);
      std::exit(kProtocolError);
    }
    if (n < 0) {
      std::perror("esched-worker: read");
      std::exit(kProtocolError);
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void write_all(const std::vector<std::uint8_t>& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n =
        ::write(STDOUT_FILENO, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      std::perror("esched-worker: write");
      std::exit(kProtocolError);
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

int main() {
  run::FaultPlan faults;
  try {
    faults = run::FaultPlan::from_env();
  } catch (const Error& e) {
    std::fprintf(stderr, "esched-worker: %s\n", e.what());
    return kProtocolError;
  }

  std::vector<std::uint8_t> header(run::wire::kHeaderSize);
  for (;;) {
    if (!read_exact(header.data(), header.size())) return 0;  // clean EOF
    run::wire::FrameHeader frame;
    try {
      frame = run::wire::decode_header(header.data());
    } catch (const Error& e) {
      std::fprintf(stderr, "esched-worker: %s\n", e.what());
      return kProtocolError;
    }
    std::vector<std::uint8_t> payload(frame.payload_size);
    if (frame.payload_size > 0 &&
        !read_exact(payload.data(), payload.size())) {
      return kProtocolError;
    }
    if (!run::wire::verify_payload(frame, payload.data()) ||
        frame.type != run::wire::FrameType::kJob) {
      std::fprintf(stderr, "esched-worker: corrupt or unexpected frame\n");
      return kProtocolError;
    }

    const run::FaultPlan::Action fault =
        faults.decide(frame.task_id, frame.attempt);
    if (fault == run::FaultPlan::Action::kCrash) {
      // Die the hard way, mid-task: no flush, no exit handlers — exactly
      // what a segfault or OOM kill looks like to the supervisor.
      ::raise(SIGKILL);
    }
    if (fault == run::FaultPlan::Action::kHang) {
      // Stop responding; only the supervisor's timeout kill ends this.
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }

    std::vector<std::uint8_t> reply;
    run::wire::FrameType reply_type = run::wire::FrameType::kResult;
    try {
      const run::JobSpec spec = run::wire::decode_job(payload);
      reply = run::wire::encode_result(run::execute_job_spec(spec));
    } catch (const std::exception& e) {
      reply_type = run::wire::FrameType::kError;
      reply = run::wire::encode_error(e.what());
    }
    std::vector<std::uint8_t> out = run::wire::encode_frame(
        reply_type, frame.task_id, frame.attempt, reply);
    if (fault == run::FaultPlan::Action::kGarbage && !reply.empty()) {
      // Flip one payload byte after the CRC was computed: a well-framed
      // answer whose corruption only the checksum can catch.
      out[run::wire::kHeaderSize] ^= 0xFF;
    }
    write_all(out);
  }
}
