// The failure model shared by every sweep transport.
//
// PR 3's subprocess supervisor (run/proc.hpp) and the TCP coordinator
// (net/distributed.hpp) face the same problem shape: task attempts are
// dispatched to *endpoints* — a worker pipe, an agent connection — that
// can die mid-answer, answer garbage, or hang; failed attempts must be
// requeued with capped exponential backoff under a per-task budget; and
// inbound bytes arrive in arbitrary chunks that must be reassembled into
// CRC-verified frames before anything trusts them. This header holds the
// one implementation of each of those pieces, so the proc and tcp paths
// classify failures identically instead of drifting apart:
//
//  * FrameAssembler — incremental frame reassembly over any byte stream
//    (pipe reads, socket reads), distinguishing "need more bytes" from
//    "complete verified frame" from "corruption" exactly like the
//    supervisor's original inline loop did.
//  * RetryPolicy / TaskLedger — per-task attempt accounting: backoff
//    gating, requeue ordering, attempt budgets, and the exhaustion
//    diagnostic naming the cell and every failed attempt (the message
//    format proc_pool_test pins).
//  * Endpoint — the in-flight-attempt bookkeeping every transport slot
//    carries: which (task, attempt) it holds, when it was dispatched,
//    and its wall-clock deadline.
//  * SigpipeGuard — writes to a dead peer must surface as EPIPE, not
//    kill the supervising process.
#pragma once

#include <chrono>
#include <cstdint>
#include <csignal>
#include <limits>
#include <string>
#include <vector>

#include "run/spec.hpp"
#include "run/wire.hpp"

namespace esched::run {

/// Sentinel for "this endpoint holds no task".
inline constexpr std::size_t kNoTask = std::numeric_limits<std::size_t>::max();

using EndpointClock = std::chrono::steady_clock;

/// Incremental reassembly of wire frames from a byte stream delivered in
/// arbitrary chunks. append() buffers; next() extracts at most one
/// complete, CRC-verified frame per call. Corruption (bad magic/version/
/// type/length, CRC mismatch) is terminal for the stream: the buffer can
/// no longer be trusted, so the caller must discard the endpoint.
class FrameAssembler {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< one verified frame extracted
    kCorrupt,   ///< stream corrupt; endpoint must be discarded
  };

  void append(const std::uint8_t* data, std::size_t size) {
    buf_.insert(buf_.end(), data, data + size);
  }

  /// Extract the next frame into header/payload. On kCorrupt,
  /// `corrupt_reason` describes the first defect found.
  Status next(wire::FrameHeader& header, std::vector<std::uint8_t>& payload,
              std::string& corrupt_reason);

  /// True when bytes of an incomplete frame are buffered (distinguishes
  /// "EOF between frames" from "EOF mid-frame").
  bool mid_frame() const { return !buf_.empty(); }

  void reset() { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Retry/backoff knobs shared by SubprocessPoolConfig and
/// DistributedPoolConfig.
struct RetryPolicy {
  /// Attempt budget per task (first run + retries). Must be >= 1.
  std::uint32_t max_attempts = 3;
  /// Backoff before retry k (1-based) is
  /// min(backoff_max_seconds, backoff_initial_seconds * 2^(k-1)).
  double backoff_initial_seconds = 0.05;
  double backoff_max_seconds = 2.0;

  /// The capped-exponential delay after `attempts_made` failed attempts.
  double backoff_seconds(std::uint32_t attempts_made) const;
};

/// Per-task attempt/retry bookkeeping for one sweep run, transport
/// agnostic. The ledger owns the pending queue (requeue order preserved),
/// the backoff gates, the attempt budget, and the exhaustion diagnostic;
/// transports own dispatching and failure *classification* (the reason
/// strings recorded here).
class TaskLedger {
 public:
  /// References `sweep` for cell labels; must outlive the ledger. Every
  /// task starts pending with its backoff gate already open.
  TaskLedger(const std::vector<JobSpec>& sweep, RetryPolicy policy,
             EndpointClock::time_point now);

  std::size_t size() const { return tasks_.size(); }
  std::size_t done_count() const { return done_; }
  bool all_done() const { return done_ >= tasks_.size(); }
  bool has_pending() const { return !pending_.empty(); }

  /// Pop the first pending task whose backoff has elapsed (requeue
  /// order), or kNoTask when every pending task is still gated.
  std::size_t claim_ready(EndpointClock::time_point now);

  /// Start an attempt on a claimed task; returns the 0-based attempt
  /// number (what fault injection and the wire header key on).
  std::uint32_t begin_attempt(std::size_t task);

  /// Mark a task's in-flight attempt successful.
  void complete(std::size_t task);

  /// Record a failed attempt and requeue with backoff. Throws
  /// esched::Error naming the cell and every failed attempt when the
  /// budget is exhausted — the message format proc_pool_test pins.
  void fail_attempt(std::size_t task, const std::string& reason,
                    EndpointClock::time_point now);

  /// Fail fast on a deterministic error: throws esched::Error naming the
  /// cell with the transport-reported message, never retrying.
  [[noreturn]] void fail_deterministic(std::size_t task,
                                       const std::string& message) const;

  /// Earliest backoff ready-time among pending tasks; false when none.
  bool next_ready_at(EndpointClock::time_point& out) const;

 private:
  struct TaskState {
    std::uint32_t attempts = 0;  ///< attempts started (dispatched) so far
    std::vector<std::string> failures;  ///< one line per failed attempt
    EndpointClock::time_point ready_at{};  ///< backoff gate for redispatch
    bool done = false;
  };

  const std::vector<JobSpec>& sweep_;
  RetryPolicy policy_;
  std::vector<TaskState> tasks_;
  std::vector<std::size_t> pending_;
  std::size_t done_ = 0;
};

/// The in-flight bookkeeping common to every transport slot: one worker
/// pipe (run/proc) or one remote agent slot (net/distributed) holds at
/// most one task attempt with an optional wall-clock deadline.
struct Endpoint {
  std::size_t task = kNoTask;  ///< in-flight task, kNoTask when idle
  std::uint32_t attempt = 0;   ///< attempt number of the in-flight task
  bool has_deadline = false;
  EndpointClock::time_point deadline{};
  EndpointClock::time_point dispatched{};

  bool busy() const { return task != kNoTask; }

  /// Begin an attempt: record dispatch time and arm the deadline
  /// (timeout_seconds <= 0 disables it).
  void begin(std::size_t task_index, std::uint32_t attempt_number,
             EndpointClock::time_point now, double timeout_seconds);

  /// Return to idle.
  void clear() {
    task = kNoTask;
    has_deadline = false;
  }

  bool deadline_expired(EndpointClock::time_point now) const {
    return busy() && has_deadline && deadline <= now;
  }
};

/// Ignore SIGPIPE for a scope: writing to a peer that just died must
/// surface as EPIPE (a classifiable failure), not kill the process.
/// Restores the previous disposition on scope exit.
class SigpipeGuard {
 public:
  SigpipeGuard() { previous_ = ::signal(SIGPIPE, SIG_IGN); }
  ~SigpipeGuard() { ::signal(SIGPIPE, previous_); }
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  void (*previous_)(int) = SIG_DFL;
};

/// One spawned esched-worker child and its pipe ends — the process
/// primitive shared by the SubprocessPool supervisor and esched-agentd.
struct WorkerProcess {
  pid_t pid = -1;
  int to_child = -1;    ///< parent writes kJob frames
  int from_child = -1;  ///< parent reads kResult/kError frames

  bool alive() const { return pid >= 0; }
};

/// fork/exec `worker_path` with CLOEXEC pipes wired to its stdin/stdout.
/// Throws esched::Error when pipe/fork fail; an exec failure surfaces
/// later as exit status 127 from reap_worker.
WorkerProcess spawn_worker(const std::string& worker_path);

/// waitpid + close both pipe ends, returning a human-readable death
/// description ("exited with status 0", "killed by signal 9").
/// `exit_status` (optional) receives the exit code, or -1 when the worker
/// did not exit normally. Never throws; idempotent.
std::string reap_worker(WorkerProcess& worker, int* exit_status) noexcept;

/// SIGKILL (if still alive) + reap_worker.
std::string kill_and_reap_worker(WorkerProcess& worker,
                                 int* exit_status) noexcept;

/// Loop a full write over EINTR; false on any other error (e.g. EPIPE).
bool write_all_fd(int fd, const std::uint8_t* data, std::size_t size);

/// Directory holding the running executable ("" when unknown).
std::string exe_directory();

/// Locate a sibling binary: `name` next to this executable, else one
/// directory up (the build-tree layout), else "". `env_var` (when
/// non-null) takes precedence: its value is returned if executable,
/// "" otherwise.
std::string find_sibling_binary(const char* env_var, const std::string& name);

}  // namespace esched::run
