// Declarative sweep-cell specifications.
//
// The in-process SweepRunner hands tasks around as pointers and closures
// (run/sweep.hpp) — fine inside one address space, useless across a
// process boundary. A JobSpec is the declarative twin of a SimJob: the
// trace is named (workload generator + months + seed, or an SWF path),
// the tariff and policy are named with their parameters, and the
// SimConfig travels by value. Everything a spec references is
// *constructible by name* in its home layer (trace::make_workload_by_name,
// power::make_pricing_by_name, core::make_policy_by_name), and every
// constructor involved is deterministic in the spec's fields — which is
// what makes the multi-process sweep (run/proc.hpp) bit-identical to the
// in-process one: a worker that rebuilds the cell from the spec reproduces
// the parent's inputs exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "power/pricing.hpp"
#include "sim/result.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace esched::run {

/// How to (re)construct a workload trace, mirroring the bench loader's
/// semantics (bench::load_workload delegates to build_trace, so the two
/// can never drift apart).
struct TraceSpec {
  /// "sdsc-blue" | "anl-bgp" | "mira" (synthetic generators), or "swf".
  std::string source = "sdsc-blue";
  /// Trace file path when source == "swf".
  std::string swf_path;
  /// Trace length in 30-day months (synthetic sources).
  std::uint64_t months = 5;
  /// Generator seed; 0 selects the workload's canonical seed.
  std::uint64_t seed = 0;
  /// Power-profile max/min ratio used when profiles are (re)assigned.
  double power_ratio = 3.0;
  /// Rescale even when the trace carries real profiles (the explicit
  /// --power-ratio semantics); otherwise real profiles are kept.
  bool force_power_ratio = false;
  /// Seed for synthetic profile assignment; 0 selects the canonical one.
  std::uint64_t power_seed = 0;

  bool operator==(const TraceSpec&) const = default;
};

/// How to (re)construct a tariff (power::make_pricing_by_name).
struct PricingSpec {
  std::string model = "paper";  ///< "paper" | "onoff" | "flat"
  Money off_peak_price = 0.03;
  double ratio = 3.0;

  bool operator==(const PricingSpec&) const = default;
};

/// How to (re)construct a policy (core::make_policy_by_name).
struct PolicySpec {
  std::string name = "fcfs";

  bool operator==(const PolicySpec&) const = default;
};

/// One fully declarative sweep cell — what the wire codec (run/wire.hpp)
/// ships to an esched-worker process. `config.tracer` does not cross the
/// wire (tracing never changes results); a non-null
/// `config.facility_model` makes the spec non-serializable (the wire
/// codec rejects it), so facility sweeps stay in-process.
struct JobSpec {
  TraceSpec trace;
  PricingSpec pricing;
  PolicySpec policy;
  sim::SimConfig config;
  std::string label;
};

/// Build the trace a spec names, including its power-profile handling:
/// profiles are assigned (synthetic draw) when the trace carries none,
/// kept when it does, and rescaled when `force_power_ratio` asks for it.
/// Deterministic in the spec.
trace::Trace build_trace(const TraceSpec& spec);

/// Build the tariff a spec names.
std::unique_ptr<power::PricingModel> build_pricing(const PricingSpec& spec);

/// Build the policy a spec names (fresh instance; policies are stateful).
std::unique_ptr<core::SchedulingPolicy> build_policy(const PolicySpec& spec);

/// Rebuild everything a spec names and run the simulation — the worker
/// process's entire job. The returned result is bit-identical to running
/// the same cell in-process (results_identical), because every builder is
/// deterministic in the spec.
sim::SimResult execute_job_spec(const JobSpec& spec);

/// Trajectory-sharing key (the snapshot-compatibility key the sweep
/// runners group by). Two spec cells with equal share_key provably
/// produce identical scheduling trajectories — same trace, same policy,
/// same behaviour-affecting config, and a tariff with the same
/// *period-boundary structure* (the scheduler only ever sees
/// PricePeriod and next_price_change, never prices; see
/// core/policy.hpp) — and can therefore differ only in metering. The
/// in-process runner simulates one leader per group and re-bills the
/// rest from the leader's recorded power signal (sim::rebill).
std::string share_key(const JobSpec& spec);

/// Full-identity key: cells with equal cell_key produce bit-identical
/// SimResults (share_key plus the tariff's actual price levels). The
/// proc/tcp pools dispatch one representative per distinct cell_key and
/// copy its result into the duplicates.
std::string cell_key(const JobSpec& spec);

/// Identical-cell grouping of a spec sweep (by cell_key) for the
/// multi-process pools, which can exploit full identity but not
/// trajectory sharing (a recorded power signal cannot cross the wire).
struct CellGroups {
  /// For each sweep index, the position in `unique_indices` of the
  /// representative whose result it shares (its own position when it is
  /// the representative).
  std::vector<std::size_t> rep;
  /// Sweep indices of the representatives, ascending.
  std::vector<std::size_t> unique_indices;
};

/// Group a sweep by cell_key. When `enabled` is false — or a cell
/// carries a facility model or tracer, which cell_key cannot see —
/// the affected cells are each their own representative. Safe to copy
/// across a group because equal cell_key implies bit-identical results.
CellGroups group_cells(const std::vector<JobSpec>& sweep, bool enabled);

}  // namespace esched::run
