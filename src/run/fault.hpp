// Deterministic fault injection for esched-worker processes.
//
// The supervisor's whole robustness story — death detection, timeouts,
// protocol-corruption handling, retry with backoff — is only trustworthy
// if every path is exercised in CI, and CI cannot rely on real crashes or
// flaky sleeps. ESCHED_FAULT makes workers misbehave *on purpose and
// reproducibly*:
//
//   ESCHED_FAULT=crash:0.3,hang:0.1,garbage:0.2,seed:42
//
// Each worker draws one deterministic uniform number per (task_id,
// attempt) pair — not per process — so the same sweep with the same plan
// always injects the same faults on the same cells, regardless of which
// worker a cell lands on, and a retried attempt re-rolls (which is what
// lets a crash-on-first-attempt cell succeed on its second). Probability
// bands are checked in order crash, hang, garbage.
//
//   crash:<p>    raise SIGKILL mid-task (after reading the job frame) —
//                the "worker killed by SIGKILL" acceptance path
//   hang:<p>     stop responding (sleep forever) until the supervisor's
//                task timeout kills the worker
//   garbage:<p>  complete the task but answer with a CRC-corrupted frame
//   seed:<s>     seed of the deterministic draw (default 0)
//
// The network faults act at the esched-agentd layer (src/net), so every
// DistributedPool failure path is CI-testable without a flaky real
// network. They share the same per-(task_id, attempt) draw, so a plan
// mixing worker and network faults injects at most one fault per attempt
// and stays deterministic regardless of which agent a cell lands on:
//
//   netdrop:<p>     close the coordinator connection on receiving the
//                   job — the "agent died mid-sweep" requeue path
//   netslow:<p>     hold every outbound frame of the connection (results
//                   *and* heartbeat pongs) for netslow_seconds — the
//                   task-timeout and missed-heartbeat paths
//   netgarbage:<p>  answer the task with a CRC-corrupted frame — the
//                   protocol-corruption path over TCP
//   netslow_seconds:<s>  hold duration for netslow (default 2.0)
//
// A process only acts on the faults of its layer: esched-worker ignores
// net* decisions (the attempt runs clean), esched-agentd ignores
// crash/hang/garbage (its workers, which inherit ESCHED_FAULT, act on
// those). Probability bands are checked in order crash, hang, garbage,
// netdrop, netslow, netgarbage.
#pragma once

#include <cstdint>
#include <string>

namespace esched::run {

/// Parsed ESCHED_FAULT plan. Default-constructed = no faults.
struct FaultPlan {
  double crash = 0.0;
  double hang = 0.0;
  double garbage = 0.0;
  double net_drop = 0.0;
  double net_slow = 0.0;
  double net_garbage = 0.0;
  double net_slow_seconds = 2.0;
  std::uint64_t seed = 0;

  bool any() const {
    return crash > 0.0 || hang > 0.0 || garbage > 0.0 || net_drop > 0.0 ||
           net_slow > 0.0 || net_garbage > 0.0;
  }

  enum class Action {
    kNone,
    kCrash,
    kHang,
    kGarbage,
    kNetDrop,
    kNetSlow,
    kNetGarbage,
  };

  /// The (deterministic) fault for one task attempt.
  Action decide(std::uint32_t task_id, std::uint32_t attempt) const;

  /// Parse "crash:<p>,hang:<p>,garbage:<p>,seed:<s>" (any subset, any
  /// order). Throws esched::Error naming the offending token on malformed
  /// input or probabilities outside [0, 1].
  static FaultPlan parse(const std::string& text);

  /// Plan from the ESCHED_FAULT environment variable (empty/unset = no
  /// faults). Throws like parse() — a worker with a typo'd plan must die
  /// loudly, not silently run fault-free.
  static FaultPlan from_env();
};

}  // namespace esched::run
