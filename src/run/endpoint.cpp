#include "run/endpoint.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/error.hpp"

namespace esched::run {

FrameAssembler::Status FrameAssembler::next(wire::FrameHeader& header,
                                            std::vector<std::uint8_t>& payload,
                                            std::string& corrupt_reason) {
  if (buf_.size() < wire::kHeaderSize) return Status::kNeedMore;
  try {
    header = wire::decode_header(buf_.data());
  } catch (const Error& e) {
    corrupt_reason = e.what();
    return Status::kCorrupt;
  }
  const std::size_t frame_size = wire::kHeaderSize + header.payload_size;
  if (buf_.size() < frame_size) return Status::kNeedMore;
  const std::uint8_t* body = buf_.data() + wire::kHeaderSize;
  if (!wire::verify_payload(header, body)) {
    corrupt_reason = "payload CRC mismatch";
    return Status::kCorrupt;
  }
  payload.assign(body, body + header.payload_size);
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(frame_size));
  return Status::kFrame;
}

double RetryPolicy::backoff_seconds(std::uint32_t attempts_made) const {
  const int exponent =
      attempts_made == 0 ? 0 : static_cast<int>(attempts_made) - 1;
  return std::min(backoff_max_seconds,
                  backoff_initial_seconds * std::ldexp(1.0, exponent));
}

namespace {

std::string join_failures(const std::vector<std::string>& lines) {
  std::string out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out += (i == 0 ? "[" : "; [") + lines[i] + "]";
  }
  return out;
}

}  // namespace

TaskLedger::TaskLedger(const std::vector<JobSpec>& sweep, RetryPolicy policy,
                       EndpointClock::time_point now)
    : sweep_(sweep), policy_(policy) {
  ESCHED_REQUIRE(policy_.max_attempts >= 1,
                 "TaskLedger: max_attempts must be >= 1");
  tasks_.resize(sweep.size());
  pending_.reserve(sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    tasks_[i].ready_at = now;
    pending_.push_back(i);
  }
}

std::size_t TaskLedger::claim_ready(EndpointClock::time_point now) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (tasks_[pending_[i]].ready_at <= now) {
      const std::size_t task = pending_[i];
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      return task;
    }
  }
  return kNoTask;
}

std::uint32_t TaskLedger::begin_attempt(std::size_t task) {
  TaskState& t = tasks_[task];
  const std::uint32_t attempt = t.attempts;
  ++t.attempts;
  return attempt;
}

void TaskLedger::complete(std::size_t task) {
  TaskState& t = tasks_[task];
  if (!t.done) {
    t.done = true;
    ++done_;
  }
}

void TaskLedger::fail_attempt(std::size_t task, const std::string& reason,
                              EndpointClock::time_point now) {
  TaskState& t = tasks_[task];
  t.failures.push_back("attempt " + std::to_string(t.attempts) + ": " +
                       reason);
  if (t.attempts >= policy_.max_attempts) {
    throw Error("sweep cell \"" + sweep_[task].label + "\" (task " +
                std::to_string(task) + ") failed after " +
                std::to_string(t.attempts) + " attempt(s): " +
                join_failures(t.failures));
  }
  t.ready_at = now + std::chrono::duration_cast<EndpointClock::duration>(
                         std::chrono::duration<double>(
                             policy_.backoff_seconds(t.attempts)));
  pending_.push_back(task);
}

void TaskLedger::fail_deterministic(std::size_t task,
                                    const std::string& message) const {
  throw Error("sweep cell \"" + sweep_[task].label + "\" (task " +
              std::to_string(task) + ") failed: " + message);
}

bool TaskLedger::next_ready_at(EndpointClock::time_point& out) const {
  bool have = false;
  for (const std::size_t task : pending_) {
    if (!have || tasks_[task].ready_at < out) {
      out = tasks_[task].ready_at;
      have = true;
    }
  }
  return have;
}

void Endpoint::begin(std::size_t task_index, std::uint32_t attempt_number,
                     EndpointClock::time_point now, double timeout_seconds) {
  task = task_index;
  attempt = attempt_number;
  dispatched = now;
  has_deadline = timeout_seconds > 0.0;
  if (has_deadline) {
    deadline = now + std::chrono::duration_cast<EndpointClock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  }
}

WorkerProcess spawn_worker(const std::string& worker_path) {
  // CLOEXEC on every end: a sibling worker forked later must not inherit
  // this worker's pipes, or its death would never read as EOF.
  const auto cloexec_pipe = [](int fds[2]) {
    if (::pipe(fds) != 0) return false;
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
    return true;
  };
  int to_child[2];
  int from_child[2];
  ESCHED_REQUIRE(cloexec_pipe(to_child),
                 "spawn_worker: pipe failed: " +
                     std::string(std::strerror(errno)));
  if (!cloexec_pipe(from_child)) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw Error("spawn_worker: pipe failed: " +
                std::string(std::strerror(errno)));
  }
  const pid_t pid = ::fork();
  ESCHED_REQUIRE(pid >= 0, "spawn_worker: fork failed: " +
                               std::string(std::strerror(errno)));
  if (pid == 0) {
    // Child. dup2 clears O_CLOEXEC on the duplicated fds — exactly the
    // two ends the worker must keep.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    char* argv[] = {const_cast<char*>(worker_path.c_str()), nullptr};
    ::execv(worker_path.c_str(), argv);
    ::_exit(127);  // the parent maps 127 to "exec failed"
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  WorkerProcess w;
  w.pid = pid;
  w.to_child = to_child[1];
  w.from_child = from_child[0];
  return w;
}

std::string reap_worker(WorkerProcess& worker, int* exit_status) noexcept {
  if (exit_status != nullptr) *exit_status = -1;
  if (worker.pid < 0) return "already reaped";
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(worker.pid, &status, 0);
  } while (r < 0 && errno == EINTR);
  if (worker.to_child >= 0) ::close(worker.to_child);
  if (worker.from_child >= 0) ::close(worker.from_child);
  const pid_t pid = worker.pid;
  worker.pid = -1;
  worker.to_child = -1;
  worker.from_child = -1;
  if (r != pid) return "waitpid failed";
  if (WIFSIGNALED(status)) {
    return "killed by signal " + std::to_string(WTERMSIG(status));
  }
  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (exit_status != nullptr) *exit_status = code;
    return "exited with status " + std::to_string(code);
  }
  return "ended with wait status " + std::to_string(status);
}

std::string kill_and_reap_worker(WorkerProcess& worker,
                                 int* exit_status) noexcept {
  if (worker.pid >= 0) ::kill(worker.pid, SIGKILL);
  return reap_worker(worker, exit_status);
}

bool write_all_fd(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::string exe_directory() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  const std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string find_sibling_binary(const char* env_var,
                                const std::string& name) {
  if (env_var != nullptr) {
    if (const char* env = std::getenv(env_var)) {
      if (*env != '\0' && ::access(env, X_OK) == 0) return env;
      return {};
    }
  }
  const std::string dir = exe_directory();
  if (dir.empty()) return {};
  for (const char* rel : {"/", "/../"}) {
    const std::string candidate = dir + rel + name;
    if (::access(candidate.c_str(), X_OK) == 0) return candidate;
  }
  return {};
}

}  // namespace esched::run
