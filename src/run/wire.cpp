#include "run/wire.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace esched::run::wire {

namespace {

/// CRC-32 lookup table for the IEEE 802.3 (reflected 0xEDB88320)
/// polynomial, built once at first use.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_le(std::vector<std::uint8_t>& buf, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_le(const std::uint8_t* p, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

[[noreturn]] void wire_error(const std::string& what) {
  throw Error("wire: " + what);
}

// SimConfig fields that cross the wire, in encode order. The two pointer
// members (facility_model, tracer) deliberately do not.
void encode_config(ByteWriter& w, const sim::SimConfig& config) {
  w.i64(config.tick_interval);
  w.u64(config.scheduler.window_size);
  w.u8(config.scheduler.backfill_beyond_window ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(config.scheduler.backfill_mode));
  w.u64(config.scheduler.conservative_depth);
  w.i64(config.scheduler.starvation_age);
  w.f64(config.idle_watts_per_node);
  w.u8(config.contiguous_allocation ? 1 : 0);
  w.u8(config.honor_queue_priority ? 1 : 0);
  w.u8(config.honor_dependencies ? 1 : 0);
  w.u64(config.max_passes_per_tick);
  w.u8(config.record_daily_curves ? 1 : 0);
  w.u64(config.daily_curve_bins);
}

sim::SimConfig decode_config(ByteReader& r) {
  sim::SimConfig config;
  config.tick_interval = r.i64();
  config.scheduler.window_size = static_cast<std::size_t>(r.u64());
  config.scheduler.backfill_beyond_window = r.u8() != 0;
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(core::BackfillMode::kConservative)) {
    wire_error("bad backfill mode " + std::to_string(mode));
  }
  config.scheduler.backfill_mode = static_cast<core::BackfillMode>(mode);
  config.scheduler.conservative_depth = static_cast<std::size_t>(r.u64());
  config.scheduler.starvation_age = r.i64();
  config.idle_watts_per_node = r.f64();
  config.contiguous_allocation = r.u8() != 0;
  config.honor_queue_priority = r.u8() != 0;
  config.honor_dependencies = r.u8() != 0;
  config.max_passes_per_tick = static_cast<std::size_t>(r.u64());
  config.record_daily_curves = r.u8() != 0;
  config.daily_curve_bins = static_cast<std::size_t>(r.u64());
  return config;
}

void encode_f64_vector(ByteWriter& w, const std::vector<double>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const double x : v) w.f64(x);
}

std::vector<double> decode_f64_vector(ByteReader& r) {
  const std::uint32_t n = r.u32();
  if (static_cast<std::size_t>(n) * 8 > r.remaining()) {
    wire_error("vector length " + std::to_string(n) +
               " exceeds remaining payload");
  }
  std::vector<double> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r.f64());
  return v;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void ByteWriter::u32(std::uint32_t v) { put_le(buf_, v, 4); }
void ByteWriter::u64(std::uint64_t v) { put_le(buf_, v, 8); }
void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t ByteReader::u8() {
  if (pos_ + 1 > size_) wire_error("truncated payload (u8)");
  return data_[pos_++];
}

std::uint32_t ByteReader::u32() {
  if (pos_ + 4 > size_) wire_error("truncated payload (u32)");
  const std::uint32_t v =
      static_cast<std::uint32_t>(get_le(data_ + pos_, 4));
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  if (pos_ + 8 > size_) wire_error("truncated payload (u64)");
  const std::uint64_t v = get_le(data_ + pos_, 8);
  pos_ += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  if (pos_ + n > size_) wire_error("truncated payload (string)");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void ByteReader::expect_end() const {
  if (pos_ != size_) {
    wire_error(std::to_string(size_ - pos_) +
               " trailing bytes after payload");
  }
}

std::vector<std::uint8_t> encode_frame(
    FrameType type, std::uint32_t task_id, std::uint32_t attempt,
    const std::vector<std::uint8_t>& payload) {
  ESCHED_REQUIRE(payload.size() <= kMaxPayload, "wire: payload too large");
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderSize + payload.size());
  put_le(frame, kMagic, 4);
  put_le(frame, kVersion, 2);
  frame.push_back(static_cast<std::uint8_t>(type));
  frame.push_back(0);  // reserved
  put_le(frame, task_id, 4);
  put_le(frame, attempt, 4);
  put_le(frame, static_cast<std::uint32_t>(payload.size()), 4);
  put_le(frame, crc32(payload.data(), payload.size()), 4);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

FrameHeader decode_header(const std::uint8_t* bytes) {
  const auto magic = static_cast<std::uint32_t>(get_le(bytes, 4));
  if (magic != kMagic) {
    wire_error("bad magic 0x" + std::to_string(magic));
  }
  const auto version = static_cast<std::uint16_t>(get_le(bytes + 4, 2));
  if (version != kVersion) {
    wire_error("unsupported protocol version " + std::to_string(version));
  }
  const std::uint8_t type = bytes[6];
  if (type < static_cast<std::uint8_t>(FrameType::kJob) ||
      type > static_cast<std::uint8_t>(FrameType::kFail)) {
    wire_error("unknown frame type " + std::to_string(type));
  }
  if (bytes[7] != 0) wire_error("nonzero reserved byte");
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  header.task_id = static_cast<std::uint32_t>(get_le(bytes + 8, 4));
  header.attempt = static_cast<std::uint32_t>(get_le(bytes + 12, 4));
  header.payload_size = static_cast<std::uint32_t>(get_le(bytes + 16, 4));
  header.payload_crc = static_cast<std::uint32_t>(get_le(bytes + 20, 4));
  if (header.payload_size > kMaxPayload) {
    wire_error("payload size " + std::to_string(header.payload_size) +
               " exceeds limit");
  }
  return header;
}

bool verify_payload(const FrameHeader& header, const std::uint8_t* payload) {
  return crc32(payload, header.payload_size) == header.payload_crc;
}

std::vector<std::uint8_t> encode_job(const JobSpec& spec) {
  ESCHED_REQUIRE(spec.config.facility_model == nullptr,
                 "wire: a facility model cannot cross the wire; facility "
                 "sweeps must run in-process");
  ByteWriter w;
  w.str(spec.trace.source);
  w.str(spec.trace.swf_path);
  w.u64(spec.trace.months);
  w.u64(spec.trace.seed);
  w.f64(spec.trace.power_ratio);
  w.u8(spec.trace.force_power_ratio ? 1 : 0);
  w.u64(spec.trace.power_seed);
  w.str(spec.pricing.model);
  w.f64(spec.pricing.off_peak_price);
  w.f64(spec.pricing.ratio);
  w.str(spec.policy.name);
  encode_config(w, spec.config);
  w.str(spec.label);
  return w.take();
}

JobSpec decode_job(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  JobSpec spec;
  spec.trace.source = r.str();
  spec.trace.swf_path = r.str();
  spec.trace.months = r.u64();
  spec.trace.seed = r.u64();
  spec.trace.power_ratio = r.f64();
  spec.trace.force_power_ratio = r.u8() != 0;
  spec.trace.power_seed = r.u64();
  spec.pricing.model = r.str();
  spec.pricing.off_peak_price = r.f64();
  spec.pricing.ratio = r.f64();
  spec.policy.name = r.str();
  spec.config = decode_config(r);
  spec.label = r.str();
  r.expect_end();
  return spec;
}

std::vector<std::uint8_t> encode_result(const sim::SimResult& result) {
  ByteWriter w;
  w.str(result.policy_name);
  w.str(result.trace_name);
  w.i64(result.system_nodes);
  w.i64(result.horizon_begin);
  w.i64(result.horizon_end);
  w.u32(static_cast<std::uint32_t>(result.records.size()));
  for (const sim::JobRecord& rec : result.records) {
    w.i64(rec.id);
    w.i64(rec.submit);
    w.i64(rec.start);
    w.i64(rec.finish);
    w.i64(rec.nodes);
    w.f64(rec.power_per_node);
    w.u32(static_cast<std::uint32_t>(rec.user));
  }
  w.f64(result.total_bill);
  w.f64(result.bill_on_peak);
  w.f64(result.bill_off_peak);
  w.f64(result.total_energy);
  w.f64(result.energy_on_peak);
  w.f64(result.energy_off_peak);
  w.f64(result.it_energy);
  encode_f64_vector(w, result.daily_bills);
  encode_f64_vector(w, result.power_curve);
  encode_f64_vector(w, result.utilization_curve);
  w.u64(result.scheduling_passes);
  w.u64(result.ticks_processed);
  w.u64(result.placement_failures);
  return w.take();
}

sim::SimResult decode_result(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  sim::SimResult result;
  result.policy_name = r.str();
  result.trace_name = r.str();
  result.system_nodes = r.i64();
  result.horizon_begin = r.i64();
  result.horizon_end = r.i64();
  const std::uint32_t records = r.u32();
  // Each record is 52 bytes; reject impossible counts before reserving.
  if (static_cast<std::size_t>(records) * 52 > r.remaining()) {
    wire_error("record count " + std::to_string(records) +
               " exceeds remaining payload");
  }
  result.records.reserve(records);
  for (std::uint32_t i = 0; i < records; ++i) {
    sim::JobRecord rec;
    rec.id = r.i64();
    rec.submit = r.i64();
    rec.start = r.i64();
    rec.finish = r.i64();
    rec.nodes = r.i64();
    rec.power_per_node = r.f64();
    rec.user = static_cast<int>(r.u32());
    result.records.push_back(rec);
  }
  result.total_bill = r.f64();
  result.bill_on_peak = r.f64();
  result.bill_off_peak = r.f64();
  result.total_energy = r.f64();
  result.energy_on_peak = r.f64();
  result.energy_off_peak = r.f64();
  result.it_energy = r.f64();
  result.daily_bills = decode_f64_vector(r);
  result.power_curve = decode_f64_vector(r);
  result.utilization_curve = decode_f64_vector(r);
  result.scheduling_passes = r.u64();
  result.ticks_processed = r.u64();
  result.placement_failures = r.u64();
  r.expect_end();
  return result;
}

std::vector<std::uint8_t> encode_error(const std::string& message) {
  ByteWriter w;
  w.str(message);
  return w.take();
}

std::string decode_error(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  std::string message = r.str();
  r.expect_end();
  return message;
}

}  // namespace esched::run::wire
