#include "run/spec.hpp"

#include "power/profile.hpp"
#include "trace/swf.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"

namespace esched::run {

namespace {

/// Canonical seed for synthetic power-profile assignment when neither the
/// spec nor the workload seed pins one (the bench loader's historical
/// default; changing it would silently change every default bench table).
constexpr std::uint64_t kCanonicalPowerSeed = 0xe5c4edULL;

}  // namespace

trace::Trace build_trace(const TraceSpec& spec) {
  trace::Trace trace =
      spec.source == "swf"
          ? trace::swf::load_file(spec.swf_path)
          : trace::make_workload_by_name(
                spec.source, static_cast<std::size_t>(spec.months),
                spec.seed);

  // Power-profile policy, shared verbatim with bench::load_workload (which
  // delegates here): keep real profiles (a PowerColumn SWF, the Mira
  // generator) unless the ratio was forced; assign the paper's synthetic
  // draw when the trace carries none.
  bool has_power = false;
  for (const trace::Job& j : trace.jobs()) {
    if (j.power_per_node > 0.0) {
      has_power = true;
      break;
    }
  }
  if (!has_power || spec.force_power_ratio) {
    power::ProfileConfig cfg;
    cfg.ratio = spec.power_ratio;
    if (has_power) {
      power::rescale_profiles(trace, cfg.min_watts_per_node, cfg.ratio);
    } else {
      power::assign_profiles(
          trace, cfg,
          spec.power_seed != 0 ? spec.power_seed : kCanonicalPowerSeed);
    }
  }
  return trace;
}

std::unique_ptr<power::PricingModel> build_pricing(const PricingSpec& spec) {
  return power::make_pricing_by_name(spec.model, spec.off_peak_price,
                                     spec.ratio);
}

std::unique_ptr<core::SchedulingPolicy> build_policy(const PolicySpec& spec) {
  return core::make_policy_by_name(spec.name);
}

sim::SimResult execute_job_spec(const JobSpec& spec) {
  const trace::Trace trace = build_trace(spec.trace);
  const std::unique_ptr<power::PricingModel> pricing =
      build_pricing(spec.pricing);
  const std::unique_ptr<core::SchedulingPolicy> policy =
      build_policy(spec.policy);
  sim::SimConfig config = spec.config;
  // Pointers never cross the wire; a decoded spec has both null already,
  // but execute may also be handed a locally built spec.
  config.tracer = nullptr;
  config.facility_model = nullptr;
  return sim::simulate(trace, *pricing, *policy, config);
}

}  // namespace esched::run
